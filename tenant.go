package p2pbound

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/core"
	"p2pbound/internal/packet"
)

// TenantConfig registers one subscriber network with a TenantManager.
type TenantConfig struct {
	// ID labels the tenant in stats and telemetry. Defaults to the
	// network CIDR string.
	ID string
	// Network is the subscriber's CIDR prefix. Its prefix length must
	// equal the manager's PrefixBits — uniform subscriber geometry is
	// what makes per-packet tenant routing a single shifted map lookup.
	Network string
}

// TenantManagerConfig parameterizes a TenantManager.
type TenantManagerConfig struct {
	// Tenant is the template limiter configuration every subscriber
	// runs: thresholds, filter geometry, hash construction, reorder
	// tolerance. ClientNetwork and Telemetry are ignored (the network
	// comes from each TenantConfig; telemetry attaches at the manager).
	// Seed seeds tenant 0; tenant i uses Seed+i, mirroring NewSharded.
	Tenant Config

	// PrefixBits is the uniform subscriber prefix length (1–32). Every
	// tenant network must be exactly this wide; the per-packet route is
	// then addr >> (32−PrefixBits) into an immutable map.
	PrefixBits int

	// Shards is the number of tenant shards — independent single-writer
	// islands, each with its own bit-vector arena, aggregate uplink
	// budget slice, and hydration LRU. Tenants are assigned round-robin
	// by route key. Default 1; a TenantPipeline runs one worker per
	// shard.
	Shards int

	// AggregateLowMbps and AggregateHighMbps are the edge-wide
	// hierarchical-RED thresholds: the whole uplink's Equation 1 ramp,
	// split evenly across shards (like ShardedLimiter thresholds) and
	// combined with each tenant's own P_d via red.Combine. Both zero
	// disables the aggregate budget, leaving every tenant's ramp
	// bit-identical to a bare Limiter.
	AggregateLowMbps  float64
	AggregateHighMbps float64

	// MaxHydratedPerShard caps how many tenants may hold live filter
	// vectors per shard; hydrating past the cap evicts the shard's
	// least-recently-active tenants first. 0 means uncapped.
	MaxHydratedPerShard int

	// SlabVectors is the arena growth unit (vectors per slab); 0 selects
	// the bitvec default.
	SlabVectors int

	// Telemetry, when non-nil, attaches manager-level series (tenant
	// population, hydration churn, aggregate budget, arena occupancy)
	// labeled by tenant shard.
	Telemetry *Telemetry
	// PerTenantTelemetry additionally registers per-tenant packet and
	// drop counters labeled tenant=<ID>. Intended for small populations
	// or debugging — 100k tenants would register 500k series.
	PerTenantTelemetry bool
}

// tenant is one subscriber's control block. The shell Limiter (meter,
// P_d cache, clamp state, folded counters) is always resident — a few
// hundred bytes — while the bitmap filter, the dominant cost, exists
// only while the tenant is hydrated. Evicting spills the filter into
// the v2+CRC32C snapshot format (or, for an empty filter, just the
// rotation and rng state) and recycles its vectors into the shard
// arena.
type tenant struct {
	id   string
	net  packet.Network
	seed uint64
	sh   *tshard
	lim  *Limiter

	hydrated bool //p2p:confined tenantshard
	// spilled marks that rot/rngState hold a real suspended position (a
	// tenant that was hydrated at least once); a never-hydrated tenant
	// starts from the fresh-filter state instead.
	spilled     bool               //p2p:confined tenantshard
	spillBitmap []byte             //p2p:confined tenantshard // v2 core snapshot, nil when empty
	rot         core.RotationState //p2p:confined tenantshard
	rngState    []byte             //p2p:confined tenantshard

	// lastActive is the shard activity clock value of the tenant's most
	// recent packet; the intrusive LRU list below is ordered by it
	// (head = most recent) because the clock is monotone.
	lastActive time.Duration //p2p:confined tenantshard
	prev, next *tenant       //p2p:confined tenantshard
}

// tshard is one single-writer island of the manager: only one goroutine
// at a time may process packets, hydrate, or evict on a given shard
// (the caller's goroutine under direct Process/ProcessBatch, the
// shard's worker under a TenantPipeline). Scrape-facing fields are
// atomics, as everywhere else.
type tshard struct {
	idx   int
	arena *bitvec.Arena
	agg   *aggBudget // nil when the aggregate budget is disabled

	now     time.Duration //p2p:confined tenantshard // monotone activity clock (max packet ts seen)
	lruHead *tenant       //p2p:confined tenantshard
	lruTail *tenant       //p2p:confined tenantshard

	hydrated   atomic.Int64 //p2p:atomic
	hydrations atomic.Int64 //p2p:atomic
	evictions  atomic.Int64 //p2p:atomic
	spillBytes atomic.Int64 //p2p:atomic
}

// routeTable is the immutable per-packet routing state, swapped
// copy-on-write by AddTenants so the lookup takes no lock and performs
// no allocation.
type routeTable struct {
	shift uint
	byKey map[uint32]*tenant
}

// TenantManager multiplexes per-subscriber limiters — O(100k) on one
// process — behind a single Process/ProcessBatch surface: packets are
// routed to their subscriber by CIDR, each subscriber runs the paper's
// full bitmap-filter + RED pipeline against its own thresholds, and
// every subscriber's drop probability is nested under a shared uplink
// budget (hierarchical RED) so one seeding tenant cannot starve the
// edge. Idle tenants spill their filters to the checksummed snapshot
// format and rehydrate verdict-exactly on their next packet.
//
// Concurrency contract: packet processing, hydration, and eviction are
// single-writer per shard (use TenantPipeline for one worker per
// shard); AddTenants, SaveState, and RestoreState are control-plane
// calls that must not run concurrently with processing; Stats,
// TenantStats, and telemetry scrapes may run at any time.
type TenantManager struct {
	cfg     TenantManagerConfig
	tmpl    Config
	coreCfg core.Config
	netMask packet.Addr

	routes atomic.Pointer[routeTable] //p2p:atomic

	shards []*tshard

	mu      sync.Mutex
	tenants []*tenant
	byID    map[string]*tenant

	noTenant         atomic.Int64 //p2p:atomic
	unroutable       atomic.Int64 //p2p:atomic
	hydrateFallbacks atomic.Int64 //p2p:atomic
}

// NewTenantManager builds an empty manager; register subscribers with
// AddTenants.
func NewTenantManager(cfg TenantManagerConfig) (*TenantManager, error) {
	if cfg.PrefixBits < 1 || cfg.PrefixBits > 32 {
		return nil, fmt.Errorf("p2pbound: tenant PrefixBits must be in [1,32], got %d", cfg.PrefixBits)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("p2pbound: tenant Shards must be non-negative, got %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if (cfg.AggregateLowMbps == 0) != (cfg.AggregateHighMbps == 0) {
		return nil, fmt.Errorf("p2pbound: aggregate thresholds must both be set or both zero")
	}
	tmpl := cfg.Tenant
	tmpl.Telemetry = nil
	// Resolve the template's core geometry once by building (and
	// discarding) a probe shell; every tenant shares it, seed aside.
	probe := tmpl
	probe.ClientNetwork = "0.0.0.0/0"
	_, coreCfg, err := newShell(probe)
	if err != nil {
		return nil, err
	}
	window := tmpl.MeterWindow
	if window <= 0 {
		window = 5 * time.Second
	}
	m := &TenantManager{
		cfg:     cfg,
		tmpl:    tmpl,
		coreCfg: coreCfg,
		netMask: packet.Addr(^uint32(0) << (32 - cfg.PrefixBits)),
		shards:  make([]*tshard, cfg.Shards),
		byID:    make(map[string]*tenant),
	}
	for i := range m.shards {
		sh := &tshard{
			idx:   i,
			arena: bitvec.NewArena(1<<coreCfg.NBits, cfg.SlabVectors),
		}
		if cfg.AggregateHighMbps > 0 {
			n := float64(cfg.Shards)
			agg, err := newAggBudget(cfg.AggregateLowMbps*1e6/n, cfg.AggregateHighMbps*1e6/n, window)
			if err != nil {
				return nil, fmt.Errorf("p2pbound: aggregate budget: %w", err)
			}
			sh.agg = agg
		}
		m.shards[i] = sh
	}
	m.routes.Store(&routeTable{
		shift: uint(32 - cfg.PrefixBits),
		byKey: map[uint32]*tenant{},
	})
	if cfg.Telemetry != nil {
		cfg.Telemetry.attachTenantManager(m)
	}
	return m, nil
}

// AddTenant registers one subscriber network.
func (m *TenantManager) AddTenant(tc TenantConfig) error {
	return m.AddTenants([]TenantConfig{tc})
}

// AddTenants registers a batch of subscriber networks. The route table
// is cloned once per call — registering 100k tenants in one batch costs
// one copy, not 100k — and published atomically, so processing on other
// shards may continue while tenants are added; the new tenants become
// routable when the call returns. Tenants start cold: no filter
// vectors are allocated until their first packet hydrates them.
func (m *TenantManager) AddTenants(tcs []TenantConfig) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.routes.Load()
	byKey := make(map[uint32]*tenant, len(old.byKey)+len(tcs))
	for k, v := range old.byKey {
		byKey[k] = v
	}
	// Everything below stages into locals; m is mutated only after the
	// whole batch validates, so a failed AddTenants registers nothing.
	added := make([]*tenant, 0, len(tcs))
	newIDs := make(map[string]bool, len(tcs))
	for _, tc := range tcs {
		net, err := packet.ParseNetwork(tc.Network)
		if err != nil {
			return fmt.Errorf("p2pbound: tenant %q: %w", tc.ID, err)
		}
		if net.Mask != m.netMask {
			return fmt.Errorf("p2pbound: tenant %q: network %s is not a /%d (manager PrefixBits)",
				tc.ID, tc.Network, m.cfg.PrefixBits)
		}
		id := tc.ID
		if id == "" {
			id = net.String()
		}
		if _, dup := m.byID[id]; dup || newIDs[id] {
			return fmt.Errorf("p2pbound: duplicate tenant id %q", id)
		}
		newIDs[id] = true
		key := uint32(net.Prefix) >> old.shift
		if _, dup := byKey[key]; dup {
			return fmt.Errorf("p2pbound: tenant %q: network %s overlaps a registered tenant", id, tc.Network)
		}
		idx := len(m.tenants) + len(added)
		cfg := m.tmpl
		cfg.ClientNetwork = tc.Network
		cfg.Seed = m.tmpl.Seed + uint64(idx)
		lim, _, err := newShell(cfg)
		if err != nil {
			return fmt.Errorf("p2pbound: tenant %q: %w", id, err)
		}
		sh := m.shards[int(key)%len(m.shards)]
		lim.agg = sh.agg
		t := &tenant{id: id, net: net, seed: cfg.Seed, sh: sh, lim: lim}
		byKey[key] = t
		added = append(added, t)
	}
	for _, t := range added {
		m.byID[t.id] = t
		m.tenants = append(m.tenants, t)
	}
	m.routes.Store(&routeTable{shift: old.shift, byKey: byKey})
	if m.cfg.Telemetry != nil && m.cfg.PerTenantTelemetry {
		for _, t := range added {
			m.cfg.Telemetry.attachTenant(t)
		}
	}
	return nil
}

// route resolves a packet to its tenant: the source subscriber if the
// source address is registered (the outbound view, matching
// packet.Classify's source preference), else the destination
// subscriber. ok is false for unclassifiable (non-IPv4) packets. The
// lookup is lock-free and allocation-free: one atomic load, a shift,
// and at most two reads of an immutable map.
//
//p2p:hotpath
func (m *TenantManager) route(p *Packet) (t *tenant, ok bool) {
	if !p.SrcAddr.Is4() || !p.DstAddr.Is4() {
		return nil, false
	}
	rt := m.routes.Load()
	s := p.SrcAddr.As4()
	if t := rt.byKey[uint32(packet.AddrFrom4(s[0], s[1], s[2], s[3]))>>rt.shift]; t != nil {
		return t, true
	}
	d := p.DstAddr.As4()
	if t := rt.byKey[uint32(packet.AddrFrom4(d[0], d[1], d[2], d[3]))>>rt.shift]; t != nil {
		return t, true
	}
	return nil, true
}

// Process routes and decides one packet. A packet matching no
// registered subscriber is dropped defensively (counted in
// Stats.NoTenant), exactly as a bare Limiter defensively drops
// unclassifiable packets; a non-IPv4 packet is counted in
// Stats.Unroutable. Single-writer per shard — see the type comment.
//
//p2p:confined tenantshard entry
func (m *TenantManager) Process(p Packet) Decision {
	t, ok := m.route(&p)
	if t == nil {
		if ok {
			m.noTenant.Add(1)
		} else {
			m.unroutable.Add(1)
		}
		return Drop
	}
	m.touch(t, p.Timestamp)
	return t.lim.Process(p)
}

// ProcessBatch routes and decides a timestamp-sorted slice of packets,
// appending one Decision per packet to dst. Consecutive packets of the
// same tenant are decided as one run through the tenant limiter's
// two-pass batch path, so a single-tenant batch costs exactly what the
// bare Limiter.ProcessBatch costs, while a many-tenant interleaving
// degrades gracefully to per-packet decisions.
//
//p2p:confined tenantshard entry
func (m *TenantManager) ProcessBatch(pkts []Packet, dst []Decision) []Decision {
	var run *tenant
	start := 0
	for i := range pkts {
		t, ok := m.route(&pkts[i])
		if t == nil {
			if ok {
				m.noTenant.Add(1)
			} else {
				m.unroutable.Add(1)
			}
		}
		if t != run {
			dst = m.flushRun(run, pkts[start:i], dst)
			run, start = t, i
		}
	}
	return m.flushRun(run, pkts[start:], dst)
}

// flushRun decides one same-tenant run (or defensively drops a
// no-tenant run).
//
//p2p:confined tenantshard
func (m *TenantManager) flushRun(t *tenant, run []Packet, dst []Decision) []Decision {
	if len(run) == 0 {
		return dst
	}
	if t == nil {
		for range run {
			dst = append(dst, Drop)
		}
		return dst
	}
	m.touch(t, run[len(run)-1].Timestamp)
	if len(run) == 1 {
		return append(dst, t.lim.Process(run[0]))
	}
	return t.lim.ProcessBatch(run, dst)
}

// touch advances the shard activity clock, hydrates the tenant if its
// filter is spilled, and keeps the shard LRU ordered.
//
//p2p:confined tenantshard
func (m *TenantManager) touch(t *tenant, ts time.Duration) {
	sh := t.sh
	if ts > sh.now {
		sh.now = ts
	}
	t.lastActive = sh.now
	if !t.hydrated {
		m.hydrate(t)
		return
	}
	if sh.lruHead != t {
		sh.lruRemove(t)
		sh.lruPushFront(t)
	}
}

// hydrate gives t live filter vectors from its shard arena, restoring
// the spilled bitmap, rotation schedule, clamp high-water mark, and rng
// position when the tenant was evicted before — the rehydrated filter's
// subsequent verdicts are bit-identical to one that never left memory.
// Hydrating past MaxHydratedPerShard first evicts the shard's
// least-recently-active tenants.
//
//p2p:confined tenantshard
func (m *TenantManager) hydrate(t *tenant) {
	sh := t.sh
	if max := m.cfg.MaxHydratedPerShard; max > 0 {
		for int(sh.hydrated.Load()) >= max && sh.lruTail != nil {
			m.evict(sh.lruTail)
		}
	}
	var f *core.Filter
	if t.spillBitmap != nil {
		got, err := core.ReadFilterWith(bytes.NewReader(t.spillBitmap), sh.arena)
		if err == nil {
			f = got
		} else {
			// The spill was produced by this process, so a decode failure
			// is memory corruption or a bug; recover fail-closed-ish with
			// a fresh filter (losing marks can only re-challenge flows,
			// never admit unmarked ones) and surface it in stats.
			m.hydrateFallbacks.Add(1)
		}
		sh.spillBytes.Add(-int64(len(t.spillBitmap)))
	}
	if f == nil {
		cfg := m.coreCfg
		cfg.Seed = t.seed
		got, err := core.NewWith(cfg, sh.arena)
		if err != nil {
			// The geometry was validated at construction; this cannot
			// fail without a programming error.
			panic("p2pbound: tenant hydrate: " + err.Error())
		}
		f = got
	}
	if t.spilled {
		if err := f.SetRotationState(t.rot); err != nil {
			panic("p2pbound: tenant hydrate: " + err.Error())
		}
		if t.rngState != nil {
			if err := f.SetRNGState(t.rngState); err != nil {
				m.hydrateFallbacks.Add(1)
			}
		}
	}
	f.SetReorderTolerance(m.coreCfg.ReorderTolerance)
	t.lim.swapFilter(f)
	t.spillBitmap = nil
	t.hydrated = true
	sh.lruPushFront(t)
	sh.hydrated.Add(1)
	sh.hydrations.Add(1)
}

// evict spills t's filter and recycles its vectors into the shard
// arena. An empty filter — the common case for a tenant idle past its
// expiry horizon, since the due-rotation jump clears every vector —
// spills only the ~30-byte rotation/rng record; a filter still holding
// marks spills the full v2+CRC32C snapshot so no admitted flow is
// forgotten. The tenant's counters are folded into its limiter's base
// (monotone Stats across any number of evict/rehydrate cycles).
//
//p2p:confined tenantshard
func (m *TenantManager) evict(t *tenant) {
	if !t.hydrated {
		return
	}
	sh := t.sh
	f := t.lim.filter.Load()
	if f.Empty() {
		t.spillBitmap = nil
	} else {
		var buf bytes.Buffer
		buf.Grow(f.Bytes() + 512)
		if _, err := f.WriteTo(&buf); err != nil {
			// bytes.Buffer writes cannot fail; keep the tenant hydrated
			// rather than lose marks if that ever changes.
			return
		}
		t.spillBitmap = buf.Bytes()
		sh.spillBytes.Add(int64(len(t.spillBitmap)))
	}
	t.rot = f.RotationState()
	if b, err := f.RNGState(); err == nil {
		t.rngState = b
	}
	t.spilled = true
	t.lim.swapFilter(nil)
	if err := f.ReleaseVectors(sh.arena); err != nil {
		panic("p2pbound: tenant evict: " + err.Error())
	}
	sh.lruRemove(t)
	t.hydrated = false
	sh.hydrated.Add(-1)
	sh.evictions.Add(1)
}

// EvictIdle evicts every hydrated tenant whose last packet is at least
// idle behind its shard's activity clock, returning how many were
// evicted. idle 0 evicts everything. Like processing, it is
// single-writer per shard: call it from the processing goroutine,
// between batches (a TenantPipeline does this automatically).
//
//p2p:confined tenantshard entry
func (m *TenantManager) EvictIdle(idle time.Duration) int {
	n := 0
	for _, sh := range m.shards {
		n += m.evictIdleShard(sh, idle)
	}
	return n
}

// evictIdleShard walks one shard's LRU from the cold end; the list is
// ordered by lastActive (the activity clock is monotone), so the walk
// stops at the first warm tenant.
//
//p2p:confined tenantshard
func (m *TenantManager) evictIdleShard(sh *tshard, idle time.Duration) int {
	n := 0
	for t := sh.lruTail; t != nil; {
		prev := t.prev
		if sh.now-t.lastActive < idle {
			break
		}
		m.evict(t)
		n++
		t = prev
	}
	return n
}

// lruPushFront makes t the most-recently-active entry. Shard LRU lists
// are intrusive — no allocation per touch.
//
//p2p:confined tenantshard
func (sh *tshard) lruPushFront(t *tenant) {
	t.prev = nil
	t.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = t
	}
	sh.lruHead = t
	if sh.lruTail == nil {
		sh.lruTail = t
	}
}

// lruRemove unlinks t.
//
//p2p:confined tenantshard
func (sh *tshard) lruRemove(t *tenant) {
	if t.prev != nil {
		t.prev.next = t.next
	} else if sh.lruHead == t {
		sh.lruHead = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else if sh.lruTail == t {
		sh.lruTail = t.prev
	}
	t.prev, t.next = nil, nil
}

// TenantManagerStats summarizes a manager's population and control
// plane; per-tenant activity is available via TenantStats.
type TenantManagerStats struct {
	Tenants  int // registered subscribers
	Hydrated int // tenants currently holding live filter vectors
	// NoTenant counts packets matching no registered subscriber, dropped
	// defensively; Unroutable counts non-IPv4 packets.
	NoTenant   int64
	Unroutable int64
	Hydrations int64 // tenants given live vectors (cumulative)
	Evictions  int64 // tenants spilled (cumulative)
	SpillBytes int64 // bytes currently held in spilled bitmap snapshots
	// HydrateFallbacks counts rehydrations that could not decode their
	// spill and restarted from a fresh filter; always zero short of
	// memory corruption.
	HydrateFallbacks int64
	// ArenaBytes is the total slab storage backing all shards' vectors.
	ArenaBytes int64
}

// Stats returns the manager-level summary. Safe at any time.
func (m *TenantManager) Stats() TenantManagerStats {
	m.mu.Lock()
	tenants := len(m.tenants)
	m.mu.Unlock()
	s := TenantManagerStats{
		Tenants:          tenants,
		NoTenant:         m.noTenant.Load(),
		Unroutable:       m.unroutable.Load(),
		HydrateFallbacks: m.hydrateFallbacks.Load(),
	}
	for _, sh := range m.shards {
		s.Hydrated += int(sh.hydrated.Load())
		s.Hydrations += sh.hydrations.Load()
		s.Evictions += sh.evictions.Load()
		s.SpillBytes += sh.spillBytes.Load()
		s.ArenaBytes += int64(sh.arena.FootprintBytes())
	}
	return s
}

// TenantStats returns one subscriber's limiter counters. Safe at any
// time; counters are monotone across hydration cycles because eviction
// folds them into the limiter's base.
func (m *TenantManager) TenantStats(id string) (Stats, bool) {
	m.mu.Lock()
	t := m.byID[id]
	m.mu.Unlock()
	if t == nil {
		return Stats{}, false
	}
	return t.lim.Stats(), true
}

// TenantIDs returns the registered tenant IDs in registration order.
func (m *TenantManager) TenantIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, len(m.tenants))
	for i, t := range m.tenants {
		ids[i] = t.id
	}
	return ids
}

// Shards returns the number of tenant shards.
func (m *TenantManager) Shards() int { return len(m.shards) }

// shardOf returns the tenant shard index a packet routes to, or -1 for
// packets with no tenant; a TenantPipeline uses it to pick the worker
// ring.
//
//p2p:hotpath
func (m *TenantManager) shardOf(p *Packet) int {
	t, _ := m.route(p)
	if t == nil {
		return -1
	}
	return t.sh.idx
}
