package p2pbound

import (
	"fmt"
	"net/netip"
	"testing"
	"time"
)

// benchTenantManager builds n /20 subscribers under one manager. The
// address plan keeps every tenant prefix disjoint from the remote
// addresses the packets use, so routing is always a real lookup.
func benchTenantManager(b *testing.B, n int) *TenantManager {
	b.Helper()
	m, err := NewTenantManager(TenantManagerConfig{
		Tenant: Config{
			LowMbps: 1, HighMbps: 5,
			Vectors: 4, VectorBits: 12,
			RotateEvery:      time.Hour,
			ReorderTolerance: time.Hour, // timestamps replay across iterations
			Seed:             9,
		},
		PrefixBits: 20,
		Shards:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tcs := make([]TenantConfig, n)
	for i := range tcs {
		base := 0x0A000000 + uint32(i)<<12
		tcs[i] = TenantConfig{Network: fmt.Sprintf("%d.%d.%d.%d/20",
			byte(base>>24), byte(base>>16), byte(base>>8), byte(base))}
	}
	if err := m.AddTenants(tcs); err != nil {
		b.Fatal(err)
	}
	return m
}

// benchTenantBatch builds one reusable batch of outbound packets spread
// round-robin over the first active tenants — the idle-mostly shape of
// an ISP edge, where most of a 100k population is spilled and only a
// working set touches the hot path.
func benchTenantBatch(size, tenants, active int) []Packet {
	if active > tenants {
		active = tenants
	}
	pkts := make([]Packet, size)
	for i := range pkts {
		base := 0x0A000000 + uint32(i%active)<<12
		pkts[i] = Packet{
			Timestamp: time.Duration(i) * 10 * time.Microsecond,
			Protocol:  TCP,
			SrcAddr:   netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base) | 9}),
			SrcPort:   uint16(30000 + i%1000),
			DstAddr:   netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)}),
			DstPort:   6881,
			Size:      1200,
		}
	}
	return pkts
}

// BenchmarkTenantManagerProcessBatch measures per-packet cost of the
// multi-tenant hot path at three population scales. The 100k case is
// the acceptance bar for the control plane: an idle-mostly population
// two orders of magnitude larger than the active set must still route
// and decide with zero allocations per operation.
func BenchmarkTenantManagerProcessBatch(b *testing.B) {
	for _, tenants := range []int{1, 1000, 100000} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			m := benchTenantManager(b, tenants)
			const batchSize = 4096
			pkts := benchTenantBatch(batchSize, tenants, 256)
			dst := make([]Decision, 0, batchSize)
			dst = m.ProcessBatch(pkts, dst[:0]) // hydrate the working set
			b.SetBytes(int64(batchSize))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = m.ProcessBatch(pkts, dst[:0])
			}
			b.StopTimer()
			if s := m.Stats(); s.NoTenant != 0 || s.Unroutable != 0 {
				b.Fatalf("benchmark traffic missed the tenant set: %+v", s)
			}
		})
	}
}

// BenchmarkTenantHydrationCycle measures one full evict-and-rehydrate
// round trip for a tenant with a marked filter — the cost a spilled
// subscriber pays on its first packet back.
func BenchmarkTenantHydrationCycle(b *testing.B) {
	m := benchTenantManager(b, 1)
	out := benchTenantBatch(1, 1, 1)[0]
	m.Process(out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvictIdle(0)
		m.Process(out)
	}
}
