// Quickstart: build a limiter for a client network, feed it a handful of
// packets, and watch the positive-listing behaviour — outbound requests
// and their responses pass, unsolicited inbound requests are dropped once
// the uplink is busy.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"p2pbound"
)

func main() {
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: "192.168.0.0/16",
		// Drop probability ramps from 0 at 1 Mbps of upload to 1 at
		// 2 Mbps (tiny thresholds so this demo saturates instantly).
		LowMbps:  1,
		HighMbps: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	client := netip.MustParseAddr("192.168.1.10")
	webServer := netip.MustParseAddr("93.184.216.34")
	peer := netip.MustParseAddr("81.40.2.17")

	show := func(label string, pkt p2pbound.Packet) {
		fmt.Printf("%-42s -> %s   (uplink %.2f Mbps, P_d %.2f)\n",
			label, limiter.Process(pkt), limiter.UplinkMbps(), limiter.DropProbability())
	}

	// The client browses the web: outbound request, inbound response.
	show("client -> web server (HTTP request)", p2pbound.Packet{
		Timestamp: 0, Protocol: p2pbound.TCP,
		SrcAddr: client, SrcPort: 40000, DstAddr: webServer, DstPort: 80,
		Size: 400,
	})
	show("web server -> client (HTTP response)", p2pbound.Packet{
		Timestamp: 50 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: webServer, SrcPort: 80, DstAddr: client, DstPort: 40000,
		Size: 1500,
	})

	// The client seeds a torrent hard enough to saturate the uplink
	// (≈2.9 Mbps over the 5-second measurement window, beyond H).
	for i := 0; i < 1200; i++ {
		limiter.Process(p2pbound.Packet{
			Timestamp: 100*time.Millisecond + time.Duration(i)*time.Millisecond,
			Protocol:  p2pbound.TCP,
			SrcAddr:   client, SrcPort: 6881, DstAddr: peer, DstPort: 51234,
			Size: 1500,
		})
	}
	fmt.Printf("\nafter seeding a torrent for a while: uplink %.2f Mbps, P_d %.2f\n\n",
		limiter.UplinkMbps(), limiter.DropProbability())

	// A stranger peer now tries to open a connection to the client: this
	// is the P2P upload trigger the filter exists to bound.
	show("stranger peer -> client (unsolicited SYN)", p2pbound.Packet{
		Timestamp: 2 * time.Second, Protocol: p2pbound.TCP,
		SrcAddr: netip.MustParseAddr("45.9.9.9"), SrcPort: 50000,
		DstAddr: client, DstPort: 6881,
		Size: 60,
	})
	// The response to the client's own traffic still passes.
	show("known peer -> client (ACK on seeded flow)", p2pbound.Packet{
		Timestamp: 2 * time.Second, Protocol: p2pbound.TCP,
		SrcAddr: peer, SrcPort: 51234, DstAddr: client, DstPort: 6881,
		Size: 60,
	})

	s := limiter.Stats()
	fmt.Printf("\nstats: %d outbound, %d inbound (%d matched), %d dropped, %d rotations\n",
		s.OutboundPackets, s.InboundPackets, s.InboundMatched, s.Dropped, s.Rotations)
	fmt.Printf("filter memory: %d KiB, expiry horizon: %v\n",
		limiter.MemoryBytes()/1024, limiter.ExpiryHorizon())
}
