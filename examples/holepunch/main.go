// Hole punching: Section 4.2's partial-tuple hashing in action. A client
// behind the limiter performs a UDP rendezvous (STUN style): it punches a
// hole toward a peer's public endpoint, but the peer's datagrams arrive
// from a different source port because a symmetric NAT on the peer's side
// rewrites it. With full-tuple hashing the session breaks under load; with
// HolePunch enabled it survives.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"p2pbound"
)

func main() {
	for _, holePunch := range []bool{false, true} {
		fmt.Printf("=== limiter with HolePunch=%v ===\n", holePunch)
		if err := rendezvous(holePunch); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func rendezvous(holePunch bool) error {
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: "192.168.0.0/16",
		// Minuscule thresholds: the uplink registers as saturated, so
		// every unmatched inbound packet faces P_d = 1 — the regime
		// where hole-punch support decides whether VoIP-style apps work.
		LowMbps:   0.0001,
		HighMbps:  0.0002,
		HolePunch: holePunch,
	})
	if err != nil {
		return err
	}

	var (
		client = netip.MustParseAddr("192.168.4.2")
		peer   = netip.MustParseAddr("203.0.113.77")
	)
	const (
		clientPort     = 41000
		peerSignalPort = 30000 // the endpoint learned via the rendezvous server
		peerRealPort   = 30007 // what the peer's symmetric NAT actually uses
	)

	// Saturate the meter so P_d = 1 for unmatched inbound packets.
	limiter.Process(p2pbound.Packet{
		Timestamp: 0, Protocol: p2pbound.UDP,
		SrcAddr: client, SrcPort: clientPort, DstAddr: peer, DstPort: peerSignalPort,
		Size: 1_000_000,
	})
	fmt.Printf("uplink saturated: P_d = %.0f\n", limiter.DropProbability())

	// The client punches toward the signalled endpoint.
	punch := p2pbound.Packet{
		Timestamp: 100 * time.Millisecond, Protocol: p2pbound.UDP,
		SrcAddr: client, SrcPort: clientPort, DstAddr: peer, DstPort: peerSignalPort,
		Size: 64,
	}
	fmt.Printf("client punches %v:%d -> %v:%d: %v\n",
		client, clientPort, peer, peerSignalPort, limiter.Process(punch))

	// The peer's media packets arrive from its real (rewritten) port.
	delivered, dropped := 0, 0
	for i := 0; i < 50; i++ {
		media := p2pbound.Packet{
			Timestamp: 150*time.Millisecond + time.Duration(i)*20*time.Millisecond,
			Protocol:  p2pbound.UDP,
			SrcAddr:   peer, SrcPort: peerRealPort,
			DstAddr: client, DstPort: clientPort,
			Size: 172, // an RTP-ish voice frame
		}
		if limiter.Process(media) == p2pbound.Pass {
			delivered++
		} else {
			dropped++
		}
	}
	fmt.Printf("peer media from rewritten port %d: %d delivered, %d dropped\n",
		peerRealPort, delivered, dropped)
	if delivered > 0 {
		fmt.Println("-> the punched hole admits the shifted-port flow")
	} else {
		fmt.Println("-> full-tuple hashing breaks NAT traversal under load")
	}
	return nil
}
