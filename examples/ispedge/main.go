// ISP edge: the usage model of Figure 6. An ISP aggregates several client
// networks — a DSL pool, a wireless network, and a campus — and installs
// one limiter per edge router, each with its own thresholds. The example
// replays a distinct synthetic workload into each edge and prints a
// per-network report, showing constant limiter memory regardless of the
// network's connection count.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"p2pbound"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
	"p2pbound/internal/trace"
)

// edge is one client network behind an edge router.
type edge struct {
	name     string
	cidr     string
	scale    float64 // relative traffic volume
	lowMbps  float64
	highMbps float64
}

func main() {
	edges := []edge{
		{name: "dsl-pool", cidr: "10.8.0.0/16", scale: 0.03, lowMbps: 1.0, highMbps: 2.0},
		{name: "wireless", cidr: "10.9.0.0/16", scale: 0.02, lowMbps: 0.8, highMbps: 1.5},
		{name: "campus", cidr: "140.112.0.0/16", scale: 0.06, lowMbps: 2.5, highMbps: 5.0},
	}

	rows := make([][]string, 0, len(edges))
	for i, e := range edges {
		row, err := runEdge(e, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
	}
	fmt.Println("ISP edge deployment (one bitmap filter per edge router, Figure 6):")
	fmt.Println(stats.Table([]string{
		"network", "conns", "up before", "up after", "dropped", "filter mem",
	}, rows))
	fmt.Println("every edge uses the same fixed 512 KiB of filter state, independent of its flow count.")
}

func runEdge(e edge, seed uint64) ([]string, error) {
	clientNet, err := packet.ParseNetwork(e.cidr)
	if err != nil {
		return nil, err
	}
	cfg := trace.DefaultConfig(45*time.Second, e.scale, seed)
	cfg.ClientNet = clientNet
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}

	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: e.cidr,
		LowMbps:       e.lowMbps,
		HighMbps:      e.highMbps,
		Seed:          seed,
	})
	if err != nil {
		return nil, err
	}

	before, err := stats.NewTimeSeries(time.Second)
	if err != nil {
		return nil, err
	}
	after, err := stats.NewTimeSeries(time.Second)
	if err != nil {
		return nil, err
	}
	// Blocked-connection memory (Section 5.3): dropping one packet of a
	// connection blocks the whole connection in both directions — that is
	// what turns inbound drops into bounded upload.
	blocked := make(map[packet.SocketPair]bool)
	var dropped int64
	for i := range tr.Packets {
		pkt := &tr.Packets[i]
		if pkt.Dir == packet.Outbound {
			before.Add(pkt.TS, pkt.Len)
		}
		if blocked[pkt.Pair] || blocked[pkt.Pair.Inverse()] {
			continue
		}
		d := limiter.Process(p2pbound.Packet{
			Timestamp: pkt.TS,
			Protocol:  p2pbound.Protocol(pkt.Pair.Proto),
			SrcAddr:   toNetip(pkt.Pair.SrcAddr), SrcPort: pkt.Pair.SrcPort,
			DstAddr: toNetip(pkt.Pair.DstAddr), DstPort: pkt.Pair.DstPort,
			Size: pkt.Len,
		})
		if d == p2pbound.Drop {
			dropped++
			blocked[pkt.Pair] = true
			continue
		}
		if pkt.Dir == packet.Outbound {
			after.Add(pkt.TS, pkt.Len)
		}
	}
	return []string{
		e.name,
		fmt.Sprintf("%d", len(tr.Flows)),
		stats.Mbps(before.MeanRate()),
		stats.Mbps(after.MeanRate()),
		fmt.Sprintf("%d", dropped),
		fmt.Sprintf("%d KiB", limiter.MemoryBytes()/1024),
	}, nil
}

func toNetip(a packet.Addr) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}
