// ISP edge: the usage model of Figure 6, multi-tenant. One process
// hosts every client network behind the edge — a DSL pool, a wireless
// network, and a campus — as tenants of a single TenantManager: each
// subscriber runs the paper's full bitmap-filter + RED pipeline against
// the shared template thresholds, every subscriber's drop probability
// is nested under one aggregate uplink budget, and idle subscribers
// spill their filters to compact snapshots instead of holding vector
// memory. The example replays a merged synthetic workload through the
// manager and prints a per-tenant report plus the control-plane
// footprint, showing that resident filter memory tracks the *active*
// population, not the registered one.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sort"
	"time"

	"p2pbound"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
	"p2pbound/internal/trace"
)

// subscriber is one client network behind the edge.
type subscriber struct {
	name  string
	cidr  string
	scale float64 // relative traffic volume
}

func main() {
	subs := []subscriber{
		{name: "dsl-pool", cidr: "10.8.0.0/16", scale: 0.03},
		{name: "wireless", cidr: "10.9.0.0/16", scale: 0.02},
		{name: "campus", cidr: "140.112.0.0/16", scale: 0.06},
	}

	mgr, err := p2pbound.NewTenantManager(p2pbound.TenantManagerConfig{
		Tenant: p2pbound.Config{
			LowMbps:  1.0,
			HighMbps: 2.0,
			Seed:     100,
		},
		PrefixBits: 16,
		// The whole uplink's hierarchical-RED budget: even a tenant
		// below its own thresholds sheds unmatched inbound when the
		// aggregate saturates.
		AggregateLowMbps:  4.0,
		AggregateHighMbps: 8.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range subs {
		if err := mgr.AddTenant(p2pbound.TenantConfig{ID: s.name, Network: s.cidr}); err != nil {
			log.Fatal(err)
		}
	}

	// One merged packet stream, as the edge router sees it.
	pkts, flows, before, err := mergedWorkload(subs)
	if err != nil {
		log.Fatal(err)
	}

	// Blocked-connection memory (Section 5.3): dropping one packet of a
	// connection blocks the whole connection in both directions — that
	// is what turns inbound drops into bounded upload.
	blocked := make(map[[2]string]bool)
	after := make(map[string]*stats.TimeSeries)
	for _, s := range subs {
		ts, err := stats.NewTimeSeries(time.Second)
		if err != nil {
			log.Fatal(err)
		}
		after[s.name] = ts
	}
	for i := range pkts {
		p := &pkts[i]
		key := flowKey(&p.pub)
		if blocked[key] {
			continue
		}
		if mgr.Process(p.pub) == p2pbound.Drop {
			blocked[key] = true
			continue
		}
		if p.outbound {
			after[p.tenant].Add(p.pub.Timestamp, p.pub.Size)
		}
	}

	rows := make([][]string, 0, len(subs))
	for _, s := range subs {
		ts, _ := mgr.TenantStats(s.name)
		rows = append(rows, []string{
			s.name,
			fmt.Sprintf("%d", flows[s.name]),
			stats.Mbps(before[s.name].MeanRate()),
			stats.Mbps(after[s.name].MeanRate()),
			fmt.Sprintf("%d", ts.Dropped),
		})
	}
	fmt.Println("Multi-tenant ISP edge (one TenantManager, one aggregate uplink budget):")
	fmt.Println(stats.Table([]string{
		"tenant", "conns", "up before", "up after", "dropped",
	}, rows))

	// The control-plane view: spill the now-idle population and show
	// that vector memory is a property of the active set.
	resident := mgr.Stats()
	evicted := mgr.EvictIdle(0)
	spilled := mgr.Stats()
	fmt.Printf("hydrated while active: %d tenants, %d KiB of pooled vectors\n",
		resident.Hydrated, resident.ArenaBytes/1024)
	fmt.Printf("after idling out:      %d evicted, %d KiB spilled snapshots, vectors recycled for the next active set\n",
		evicted, spilled.SpillBytes/1024)
}

// edgePacket is one packet of the merged stream, annotated with its
// tenant for reporting.
type edgePacket struct {
	pub      p2pbound.Packet
	tenant   string
	outbound bool
}

// mergedWorkload generates a per-subscriber synthetic trace, converts
// everything to public packets, and merges by timestamp.
func mergedWorkload(subs []subscriber) ([]edgePacket, map[string]int, map[string]*stats.TimeSeries, error) {
	var merged []edgePacket
	flows := make(map[string]int)
	before := make(map[string]*stats.TimeSeries)
	for i, s := range subs {
		clientNet, err := packet.ParseNetwork(s.cidr)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg := trace.DefaultConfig(45*time.Second, s.scale, uint64(100+i))
		cfg.ClientNet = clientNet
		tr, err := trace.Generate(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		flows[s.name] = len(tr.Flows)
		up, err := stats.NewTimeSeries(time.Second)
		if err != nil {
			return nil, nil, nil, err
		}
		for j := range tr.Packets {
			pkt := &tr.Packets[j]
			if pkt.Dir == packet.Outbound {
				up.Add(pkt.TS, pkt.Len)
			}
			merged = append(merged, edgePacket{
				pub: p2pbound.Packet{
					Timestamp: pkt.TS,
					Protocol:  p2pbound.Protocol(pkt.Pair.Proto),
					SrcAddr:   toNetip(pkt.Pair.SrcAddr), SrcPort: pkt.Pair.SrcPort,
					DstAddr: toNetip(pkt.Pair.DstAddr), DstPort: pkt.Pair.DstPort,
					Size: pkt.Len,
				},
				tenant:   s.name,
				outbound: pkt.Dir == packet.Outbound,
			})
		}
		before[s.name] = up
	}
	sort.SliceStable(merged, func(a, b int) bool {
		return merged[a].pub.Timestamp < merged[b].pub.Timestamp
	})
	return merged, flows, before, nil
}

// flowKey identifies a connection independent of direction.
func flowKey(p *p2pbound.Packet) [2]string {
	a := fmt.Sprintf("%s:%d", p.SrcAddr, p.SrcPort)
	b := fmt.Sprintf("%s:%d", p.DstAddr, p.DstPort)
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func toNetip(a packet.Addr) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}
