// Campus: the paper's end-to-end scenario on one machine. Generate a
// synthetic campus trace with the Section 3.3 traffic mix, run the traffic
// analyzer over it (Table 2 and the Figure 4/5 distributions), then replay
// it through a p2pbound.Limiter and compare upload throughput before and
// after filtering — the Figure 9 experiment against the public API.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"p2pbound"
	"p2pbound/internal/experiments"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
)

func main() {
	const (
		duration = 90 * time.Second
		scale    = 0.06 // ≈8.8 Mbps average load
		seed     = 2006
	)
	fmt.Printf("generating %v campus trace at %.0f%% of the paper's load...\n\n", duration, scale*100)
	suite, err := experiments.NewSuite(experiments.DefaultTraceConfig(duration, scale, seed))
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the measurement study of Section 3.3.
	fmt.Println(suite.RunSummary().Render())
	fmt.Println(suite.RunT2().Render())
	fmt.Println(suite.RunF4().Render())
	fmt.Println(suite.RunF5().Render())

	// Part 2: bound the upload through the public limiter API.
	low, high := 50*scale, 100*scale // the paper's 50/100 Mbps, scaled
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: suite.Trace.Config.ClientNet.String(),
		LowMbps:       low,
		HighMbps:      high,
		Seed:          seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	before, err := stats.NewTimeSeries(time.Second)
	if err != nil {
		log.Fatal(err)
	}
	after, err := stats.NewTimeSeries(time.Second)
	if err != nil {
		log.Fatal(err)
	}
	blocked := make(map[packet.SocketPair]bool)
	var dropped, blockedPkts int64
	for i := range suite.Trace.Packets {
		pkt := &suite.Trace.Packets[i]
		isUp := pkt.Dir == packet.Outbound
		if isUp {
			before.Add(pkt.TS, pkt.Len)
		}
		// Blocked-connection memory (Section 5.3): a connection whose
		// packet was dropped stays dropped, in both directions.
		if blocked[pkt.Pair] || blocked[pkt.Pair.Inverse()] {
			blockedPkts++
			continue
		}
		decision := limiter.Process(p2pbound.Packet{
			Timestamp: pkt.TS,
			Protocol:  p2pbound.Protocol(pkt.Pair.Proto),
			SrcAddr:   toNetip(pkt.Pair.SrcAddr), SrcPort: pkt.Pair.SrcPort,
			DstAddr: toNetip(pkt.Pair.DstAddr), DstPort: pkt.Pair.DstPort,
			Size: pkt.Len,
		})
		if decision == p2pbound.Drop {
			dropped++
			blocked[pkt.Pair] = true
			continue
		}
		if isUp {
			after.Add(pkt.TS, pkt.Len)
		}
	}

	fmt.Printf("F9 (via public API): L=%.1f Mbps, H=%.1f Mbps\n", low, high)
	fmt.Printf("  upload before filtering: mean %s, peak %s\n",
		stats.Mbps(before.MeanRate()), stats.Mbps(before.MaxRate()))
	fmt.Printf("  upload after  filtering: mean %s, peak %s\n",
		stats.Mbps(after.MeanRate()), stats.Mbps(after.MaxRate()))
	fmt.Printf("  limiter drops: %d, blocked-connection drops: %d\n", dropped, blockedPkts)
}

func toNetip(a packet.Addr) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}
