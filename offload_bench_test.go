// BenchmarkOffloadEndToEnd measures the two-tier kernel-offload split
// (DESIGN.md §17): an offload.FastPath probing the flat verdict map
// first, with misses travelling the bounded ring to the Go slow path.
// Two tiers bound the design space:
//
//	tier=fastpath-hit  — steady state for established traffic: every
//	                     probe answers from the flat map alone (the
//	                     XDP analogue: no Go limiter involvement, no
//	                     allocation). This is the number to compare
//	                     against BenchmarkIngestEndToEnd's full path.
//	tier=escalate-all  — worst case: a cold map escalates every packet
//	                     through the miss ring to Limiter.Process, so
//	                     the split costs probe + ring on top of the
//	                     full slow path.
package p2pbound

import (
	"testing"
	"time"

	"p2pbound/internal/offload"
)

// offloadBenchTrace is the shared probe workload: the differential
// tests' deterministic flow mix at ingest-bench scale.
func offloadBenchTrace() []offPkt {
	return offTraffic(40000, 25*time.Microsecond)
}

func BenchmarkOffloadEndToEnd(b *testing.B) {
	pkts := offloadBenchTrace()

	b.Run("tier=fastpath-hit", func(b *testing.B) {
		// Warm a slow limiter with the whole trace, publish its state,
		// and keep only the packets the published map can decide: the
		// steady-state hit population (tracked flows' inbound replies).
		slow, err := New(offConfig(time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		slow.SetFailClosed(true)
		for i := range pkts {
			slow.Process(pkts[i].pub)
		}
		om, err := slow.NewOffloadMap()
		if err != nil {
			b.Fatal(err)
		}
		if err := slow.PublishOffload(om); err != nil {
			b.Fatal(err)
		}
		fp, err := offload.NewFastPath(om)
		if err != nil {
			b.Fatal(err)
		}
		hot := make([]offPkt, 0, len(pkts))
		for i := range pkts {
			if fp.Probe(pkts[i].pair, pkts[i].dir) == offload.Hit {
				hot = append(hot, pkts[i])
			}
		}
		if len(hot) < len(pkts)/2 {
			b.Fatalf("hit population degenerate: %d of %d", len(hot), len(pkts))
		}

		ring := offload.NewMissRing[Packet](256)
		preEsc := fp.Escalations() // the prefilter pass's misses
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for j := range hot {
				if fp.Probe(hot[j].pair, hot[j].dir) != offload.Hit {
					// Unreachable by construction; the branch keeps the
					// loop shaped like the real split.
					ring.TryPush(hot[j].pub)
				}
			}
		}
		elapsed := time.Since(start)
		if esc := fp.Escalations() - preEsc; esc != 0 {
			b.Fatalf("hit tier escalated %d probes", esc)
		}
		b.ReportMetric(float64(len(hot))*float64(b.N)/elapsed.Seconds(), "packets/sec")
		b.ReportMetric(float64(len(hot)), "packets/op")
	})

	b.Run("tier=escalate-all", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		escalated := make([]Packet, 0, 8)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// A cold split per iteration: live but empty map, fresh
			// slow path — every probe misses and rides the ring.
			slow, err := New(offConfig(time.Hour))
			if err != nil {
				b.Fatal(err)
			}
			slow.SetFailClosed(true)
			om, err := slow.NewOffloadMap()
			if err != nil {
				b.Fatal(err)
			}
			if err := slow.PublishOffload(om); err != nil {
				b.Fatal(err)
			}
			fp, err := offload.NewFastPath(om)
			if err != nil {
				b.Fatal(err)
			}
			ring := offload.NewMissRing[Packet](256)
			b.StartTimer()
			for j := range pkts {
				if fp.Probe(pkts[j].pair, pkts[j].dir) != offload.Hit {
					if !ring.TryPush(pkts[j].pub) {
						b.Fatal("ring overflow with per-packet drain")
					}
					escalated = ring.Drain(escalated[:0])
					for k := range escalated {
						slow.Process(escalated[k])
					}
				}
			}
			if fp.Hits() != 0 {
				b.Fatalf("cold map answered %d probes", fp.Hits())
			}
		}
		elapsed := time.Since(start)
		b.ReportMetric(float64(len(pkts))*float64(b.N)/elapsed.Seconds(), "packets/sec")
		b.ReportMetric(float64(len(pkts)), "packets/op")
	})
}

// BenchmarkOffloadProbe isolates one flat-map probe — the per-packet
// cost a kernel-resident fast path would pay — over the hit
// population's pairs. Must stay at 0 allocs/op: the probe path is the
// whole point of the offload tier.
func BenchmarkOffloadProbe(b *testing.B) {
	pkts := offloadBenchTrace()
	slow, err := New(offConfig(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	slow.SetFailClosed(true)
	for i := range pkts {
		slow.Process(pkts[i].pub)
	}
	om, err := slow.NewOffloadMap()
	if err != nil {
		b.Fatal(err)
	}
	if err := slow.PublishOffload(om); err != nil {
		b.Fatal(err)
	}
	fp, err := offload.NewFastPath(om)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &pkts[i%len(pkts)]
		fp.Probe(p.pair, p.dir)
	}
}
