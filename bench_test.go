// Benchmarks regenerating every table and figure of the paper (see the
// per-experiment index in DESIGN.md) plus the Section 5.2 performance
// claims: constant-time per-packet processing for the bitmap filter and
// O(N) rotation.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package p2pbound

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2pbound/internal/analyzer"
	"p2pbound/internal/core"
	"p2pbound/internal/experiments"
	"p2pbound/internal/hashes"
	"p2pbound/internal/l7"
	"p2pbound/internal/naive"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
	"p2pbound/internal/spi"
	"p2pbound/internal/trace"
)

// benchTrace lazily generates the shared benchmark workload: 60 simulated
// seconds at 5 % of the paper's load (≈40k packets).
var benchTrace = sync.OnceValue(func() *trace.Trace {
	tr, err := trace.Generate(trace.DefaultConfig(60*time.Second, 0.05, 77))
	if err != nil {
		panic(err)
	}
	return tr
})

func benchPair(i uint32) packet.SocketPair {
	return packet.SocketPair{
		Proto:   packet.TCP,
		SrcAddr: packet.AddrFrom4(140, 112, byte(i>>8), byte(i)),
		SrcPort: uint16(30000 + i%20000),
		DstAddr: packet.AddrFrom4(9, byte(i>>16), byte(i>>8), byte(i)),
		DstPort: uint16(10000 + i%30000),
	}
}

// --- Table 1: signature matching -------------------------------------

// BenchmarkTable1PatternMatch measures the Table 1 signature library over
// a representative payload mix (matching and non-matching).
func BenchmarkTable1PatternMatch(b *testing.B) {
	lib := l7.NewLibrary()
	payloads := [][]byte{
		append([]byte{0x13}, []byte("BitTorrent protocol.....................................")...),
		{0xe3, 0x29, 0, 0, 0, 0x01, 0xaa, 0xbb, 0xcc},
		[]byte("GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire\r\n\r\n"),
		[]byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"),
		[]byte("220 ProFTPD 1.3.0 Server (FTP) ready.\r\n"),
		{0x7f, 0x11, 0x99, 0x42, 0x37, 0x5b, 0x02, 0x60, 0x12, 0x7d}, // opaque
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lib.MatchPayload(payloads[i%len(payloads)])
	}
}

// --- Table 2 + Figures 2-5: the traffic analyzer ----------------------

// BenchmarkTable2Analyzer measures the full Section 3.2 analyzer pipeline
// (connection tracking, identification, delay measurement) in packets/op.
func BenchmarkTable2Analyzer(b *testing.B) {
	tr := benchTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := analyzer.New(analyzer.DefaultConfig(tr.Config.ClientNet))
		if err != nil {
			b.Fatal(err)
		}
		for j := range tr.Packets {
			a.Feed(&tr.Packets[j])
		}
		a.FinalizePortIdent()
	}
	b.ReportMetric(float64(len(tr.Packets)), "packets/op")
}

// BenchmarkFig2to5Report measures building the Table 2 / Figure 2–5
// report from an analyzed trace.
func BenchmarkFig2to5Report(b *testing.B) {
	tr := benchTrace()
	a, err := analyzer.New(analyzer.DefaultConfig(tr.Config.ClientNet))
	if err != nil {
		b.Fatal(err)
	}
	for j := range tr.Packets {
		a.Feed(&tr.Packets[j])
	}
	a.FinalizePortIdent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.BuildReport()
	}
}

// --- Section 5.1 analysis (A1) ----------------------------------------

// BenchmarkA1Analysis measures the closed-form capacity bounds plus the
// Monte-Carlo cross-check.
func BenchmarkA1Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 5.2 performance (P1) --------------------------------------

// BenchmarkOutboundMark measures processing one outbound packet: m hashes
// plus marking m bits in all k vectors — O(m·t_h) + O(m·k·t_m).
func BenchmarkOutboundMark(b *testing.B) {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]packet.Packet, 1024)
	for i := range pkts {
		pkts[i] = packet.Packet{Pair: benchPair(uint32(i)), Dir: packet.Outbound, Len: 1500}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(&pkts[i%len(pkts)], 1)
	}
}

// BenchmarkInboundHit measures an inbound packet matching tracked state:
// m hashes plus m bit checks in the current vector — O(m·t_h) + O(m·t_c).
func BenchmarkInboundHit(b *testing.B) {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]packet.Packet, 1024)
	for i := range pkts {
		pair := benchPair(uint32(i))
		f.Mark(pair)
		pkts[i] = packet.Packet{Pair: pair.Inverse(), Dir: packet.Inbound, Len: 1500}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(&pkts[i%len(pkts)], 0)
	}
}

// BenchmarkInboundMiss measures an unmatched inbound packet with P_d = 1
// (drop path).
func BenchmarkInboundMiss(b *testing.B) {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]packet.Packet, 1024)
	for i := range pkts {
		pkts[i] = packet.Packet{Pair: benchPair(uint32(i)).Inverse(), Dir: packet.Inbound, Len: 1500}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(&pkts[i%len(pkts)], 1)
	}
}

// BenchmarkRotate measures b.rotate for the paper's 2^20-bit vectors: the
// only non-constant operation, O(N) but a single contiguous memory clear.
func BenchmarkRotate(b *testing.B) {
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Rotate()
	}
}

// BenchmarkSPIProcess is the baseline comparison: exact per-flow state
// with hash-table lookups (the O(n)-storage alternative).
func BenchmarkSPIProcess(b *testing.B) {
	f, err := spi.New(spi.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]packet.Packet, 2048)
	for i := range pkts {
		pair := benchPair(uint32(i / 2))
		if i%2 == 0 {
			pkts[i] = packet.Packet{Pair: pair, Dir: packet.Outbound, Len: 1500}
		} else {
			pkts[i] = packet.Packet{Pair: pair.Inverse(), Dir: packet.Inbound, Len: 1500}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(&pkts[i%len(pkts)], 1)
	}
}

// BenchmarkNaiveProcess is the exact timer-table reference of Section 4.2.
func BenchmarkNaiveProcess(b *testing.B) {
	f, err := naive.New(20*time.Second, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([]packet.Packet, 2048)
	for i := range pkts {
		pair := benchPair(uint32(i / 2))
		if i%2 == 0 {
			pkts[i] = packet.Packet{Pair: pair, Dir: packet.Outbound, Len: 1500}
		} else {
			pkts[i] = packet.Packet{Pair: pair.Inverse(), Dir: packet.Inbound, Len: 1500}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Process(&pkts[i%len(pkts)], 1)
	}
}

// --- Figures 8 and 9: the Section 5.3 simulations ----------------------

// BenchmarkFig8Replay measures the full SPI-vs-bitmap drop-rate
// comparison.
func BenchmarkFig8Replay(b *testing.B) {
	tr := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunF8(tr.Packets, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Packets)), "packets/op")
}

// BenchmarkFig9Replay measures the throughput-limiting simulation with
// blocked-connection memory.
func BenchmarkFig9Replay(b *testing.B) {
	tr := benchTrace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunF9(tr.Packets, 2.5e6, 5e6, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Packets)), "packets/op")
}

// --- Substrates ---------------------------------------------------------

// BenchmarkTraceGenerate measures the synthetic workload generator.
func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.DefaultConfig(10*time.Second, 0.05, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPcapWrite measures tcpdump-format serialization with checksums.
func BenchmarkPcapWrite(b *testing.B) {
	tr := benchTrace()
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := discardWriter{}
		pw, err := pcap.NewWriter(w, 0, base)
		if err != nil {
			b.Fatal(err)
		}
		for j := range tr.Packets {
			if err := pw.WritePacket(&tr.Packets[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(tr.Packets)), "packets/op")
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// --- The public API ------------------------------------------------------

// BenchmarkLimiterProcess measures the end-to-end public Limiter path:
// address conversion, throughput metering, P_d computation, and the
// bitmap filter.
func BenchmarkLimiterProcess(b *testing.B) {
	l, err := New(Config{ClientNetwork: "140.112.0.0/16"})
	if err != nil {
		b.Fatal(err)
	}
	client := netip.MustParseAddr("140.112.1.2")
	remote := netip.MustParseAddr("8.8.8.8")
	pkts := make([]Packet, 1024)
	for i := range pkts {
		if i%2 == 0 {
			pkts[i] = Packet{
				Protocol: TCP,
				SrcAddr:  client, SrcPort: uint16(30000 + i),
				DstAddr: remote, DstPort: 80,
				Size: 1500,
			}
		} else {
			pkts[i] = Packet{
				Protocol: TCP,
				SrcAddr:  remote, SrcPort: 80,
				DstAddr: client, DstPort: uint16(30000 + i - 1),
				Size: 1500,
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Process(pkts[i%len(pkts)])
	}
}

// benchPublicTrace converts the shared benchmark workload to public
// Packets once.
var benchPublicTrace = sync.OnceValue(func() []Packet {
	return toPublic(benchTrace().Packets)
})

// BenchmarkHotPath replays the shared 60 s bench trace through the
// public Limiter one packet at a time — the end-to-end per-packet cost
// of the zero-allocation hot path, and the sequential baseline the
// pipeline speedup is measured against. CI runs this as its smoke
// benchmark.
func BenchmarkHotPath(b *testing.B) {
	pkts := benchPublicTrace()
	l, err := New(Config{ClientNetwork: "140.112.0.0/16"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Process(pkts[i%len(pkts)])
	}
}

// BenchmarkFilterProcessBatch is the acceptance benchmark of the
// cache-line-blocked layout: the core filter's two-pass batch path at a
// production table size (k=3 vectors of 2^24 bits = 6 MiB, far beyond
// L2), m=4, alternating outbound marks and inbound hits in 256-packet
// batches with P_d = 0. The sub-benchmarks isolate each optimization
// stage: per-index hashing in the classic layout (the paper's
// construction), one-shot hashing in the classic layout (hash cost cut,
// memory behaviour unchanged), and the blocked layout (all m bits in
// one cache line per vector).
func BenchmarkFilterProcessBatch(b *testing.B) {
	run := func(scheme hashes.Scheme, layout hashes.Layout) func(*testing.B) {
		return func(b *testing.B) {
			f, err := core.New(core.Config{
				K: 3, NBits: 24, M: 4, DeltaT: time.Hour,
				HashScheme: scheme, Layout: layout,
			})
			if err != nil {
				b.Fatal(err)
			}
			f.Advance(0)
			const chunk = 256
			pkts := make([]packet.Packet, 1<<16)
			for i := range pkts {
				pair := benchPair(uint32(i / 2))
				if i%2 == 0 {
					pkts[i] = packet.Packet{Pair: pair, Dir: packet.Outbound, Len: 1500}
				} else {
					pkts[i] = packet.Packet{Pair: pair.Inverse(), Dir: packet.Inbound, Len: 1500}
				}
			}
			dst := make([]core.Verdict, 0, chunk)
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for n < b.N {
				lo := n % len(pkts)
				hi := lo + chunk
				if hi > len(pkts) {
					hi = len(pkts)
				}
				dst = f.ProcessBatch(pkts[lo:hi], 0, dst[:0])
				n += hi - lo
			}
		}
	}
	b.Run("layout=classic/scheme=perindex", run(hashes.SchemePerIndex, hashes.LayoutClassic))
	b.Run("layout=classic/scheme=oneshot", run(hashes.SchemeOneShot, hashes.LayoutClassic))
	b.Run("layout=blocked", run(0, hashes.LayoutBlocked))
}

// BenchmarkLimiterProcessBatch measures the batch form of the hot path
// over the same trace in fixed-size chunks.
func BenchmarkLimiterProcessBatch(b *testing.B) {
	pkts := benchPublicTrace()
	l, err := New(Config{ClientNetwork: "140.112.0.0/16"})
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 256
	dst := make([]Decision, 0, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		lo := n % len(pkts)
		hi := lo + chunk
		if hi > len(pkts) {
			hi = len(pkts)
		}
		dst = l.ProcessBatch(pkts[lo:hi], dst[:0])
		n += hi - lo
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	}
}

// BenchmarkLimiterProcessBatchTelemetry is BenchmarkLimiterProcessBatch
// with the full observability layer attached (telemetry registry, drop
// P_d histogram, batch latency, sampled tracing). Compare the two to
// measure the observability overhead; the acceptance budget is <= 5%.
func BenchmarkLimiterProcessBatchTelemetry(b *testing.B) {
	pkts := benchPublicTrace()
	var traced int64
	l, err := New(Config{
		ClientNetwork: "140.112.0.0/16",
		Telemetry:     NewTelemetry(),
		TraceEveryN:   1024,
		TraceFunc:     func(DropTrace) { traced++ },
	})
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 256
	dst := make([]Decision, 0, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		lo := n % len(pkts)
		hi := lo + chunk
		if hi > len(pkts) {
			hi = len(pkts)
		}
		dst = l.ProcessBatch(pkts[lo:hi], dst[:0])
		n += hi - lo
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	}
}

// BenchmarkPipeline replays the shared 60 s bench trace through the
// 4-shard concurrent Pipeline (SubmitBatch + Drain per iteration). One
// op is one full-trace replay. The setup replays the same trace through
// the same sharded limiter sequentially, both to cross-check that the
// pipeline's verdict counts are identical and to time the
// single-goroutine baseline; the measured ratio is reported as
// "x-vs-sequential" alongside "cores" (GOMAXPROCS). The pipeline buys
// throughput with parallelism, so the ratio scales with cores: on one
// core it is < 1 (routing and ring hand-off cost with no parallelism to
// spend it on); ≥ 2× needs ≥ 4 cores for the 4 shard workers.
func BenchmarkPipeline(b *testing.B) {
	pkts := benchPublicTrace()
	cfg := Config{ClientNetwork: "140.112.0.0/16"}
	const shards = 4

	seq, err := NewSharded(cfg, shards)
	if err != nil {
		b.Fatal(err)
	}
	seqStart := time.Now()
	var seqPassed, seqDropped int64
	for i := range pkts {
		if seq.Process(pkts[i]) == Pass {
			seqPassed++
		} else {
			seqDropped++
		}
	}
	seqSecs := time.Since(seqStart).Seconds()

	pipe, err := NewPipeline(cfg, PipelineConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer pipe.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.SubmitBatch(pkts)
		pipe.Drain()
		if i == 0 {
			passed, dropped := pipe.Verdicts()
			if passed != seqPassed || dropped != seqDropped {
				b.Fatalf("pipeline verdicts pass=%d drop=%d, sequential pass=%d drop=%d",
					passed, dropped, seqPassed, seqDropped)
			}
		}
	}
	b.StopTimer()
	pipeRate := float64(b.N) * float64(len(pkts)) / b.Elapsed().Seconds()
	b.ReportMetric(float64(len(pkts)), "packets/op")
	b.ReportMetric(pipeRate, "packets/sec")
	if seqSecs > 0 {
		seqRate := float64(len(pkts)) / seqSecs
		b.ReportMetric(pipeRate/seqRate, "x-vs-sequential")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// BenchmarkShardedLimiterParallel drives the sharded limiter with one
// goroutine per shard — the multi-queue deployment shape.
func BenchmarkShardedLimiterParallel(b *testing.B) {
	const shards = 4
	s, err := NewSharded(Config{ClientNetwork: "140.112.0.0/16"}, shards)
	if err != nil {
		b.Fatal(err)
	}
	client := netip.MustParseAddr("140.112.1.2")
	perShard := make([][]Packet, shards)
	for i := 0; i < 8192; i++ {
		p := Packet{
			Protocol: TCP,
			SrcAddr:  client, SrcPort: uint16(20000 + i%40000),
			DstAddr: netip.AddrFrom4([4]byte{9, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstPort: 80,
			Size:    1500,
		}
		sh := s.ShardOf(p)
		perShard[sh] = append(perShard[sh], p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		sh := int(next.Add(1)-1) % shards
		i := 0
		for pb.Next() {
			pkts := perShard[sh]
			s.ProcessOnShard(sh, pkts[i%len(pkts)])
			i++
		}
	})
}
