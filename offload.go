package p2pbound

import (
	"fmt"
	"sort"

	"p2pbound/internal/offload"
)

// This file bridges the limiter tiers to the kernel-offload flat map
// (internal/offload, DESIGN.md §17). Each tier exports its filters
// into map sections the in-process FastPath simulator — or a real
// XDP/DPDK stage fed the serialized image — probes without touching
// the Go data structures:
//
//   - Limiter: one section, published from the processing goroutine.
//   - ShardedLimiter / Pipeline: one section per shard, keyed by shard
//     index; each pipeline worker publishes its own section on a batch
//     cadence, so publication needs no cross-shard coordination.
//   - TenantManager: one section per registered tenant, keyed by the
//     BMTM route key (subscriber prefix >> (32−PrefixBits)) and the
//     tenant-id hash, published control-plane like SaveState.

// NewOffloadMap allocates a single-section flat map matching the
// limiter's filter geometry. Publish into it with PublishOffload.
func (l *Limiter) NewOffloadMap() (*offload.Map, error) {
	f := l.filter.Load()
	m, err := offload.NewMap(offload.GeometryOf(f.Config()), 1, 0)
	if err != nil {
		return nil, err
	}
	m.SetSectionKey(0, 0, l.clientNet.String())
	return m, nil
}

// PublishOffload exports the limiter's current filter state into
// section 0 of an offload map created by NewOffloadMap. Call it from
// the processing goroutine between batches — publication is
// incremental (cost ∝ bits marked or cleared since the last publish)
// and never blocks concurrent FastPath readers.
//
//p2p:confined limproc entry
func (l *Limiter) PublishOffload(m *offload.Map) error {
	return m.Section(0).Publish(l.filter.Load())
}

// NewOffloadMap allocates a flat map with one section per shard, keyed
// by shard index. All shards share one geometry, so the whole sharded
// limiter exports as a single buffer; a consumer routes a packet to
// its section with the same ShardOf fanout the pipeline uses.
func (s *ShardedLimiter) NewOffloadMap() (*offload.Map, error) {
	g := offload.GeometryOf(s.shards[0].filter.Load().Config())
	m, err := offload.NewMap(g, len(s.shards), 0)
	if err != nil {
		return nil, err
	}
	for i := range s.shards {
		m.SetSectionKey(i, uint32(i), fmt.Sprintf("shard-%d", i))
	}
	return m, nil
}

// PublishOffloadShard exports shard sh's filter into its map section.
// Single-writer per shard, like processing: each shard's owning
// goroutine publishes only its own section, so a pipeline's workers
// publish concurrently without coordination.
//
//p2p:confined limproc entry
func (s *ShardedLimiter) PublishOffloadShard(m *offload.Map, sh int) error {
	return m.Section(sh).Publish(s.shards[sh].filter.Load())
}

// OffloadMap returns the flat map the pipeline's workers publish into,
// or nil when PipelineConfig.OffloadEvery was zero. Probe it with
// offload.NewFastPath; route probes to sections by ShardOf order
// (section index == shard index).
func (p *Pipeline) OffloadMap() *offload.Map { return p.offloadMap }

// TenantOffload exports a TenantManager's per-tenant filters into one
// flat map, one section per tenant in ascending route-key order (the
// directory layout FastPath.SectionFor binary-searches). The map is
// sized at construction: tenants registered after NewOffload are not
// covered until a new TenantOffload is built — the same rebuild
// discipline as the manager's own SaveState snapshots.
type TenantOffload struct {
	mgr *TenantManager
	m   *offload.Map
	// byTenant pairs each map section with its tenant, in section order.
	byTenant []*tenant
}

// NewOffload builds a flat map covering every currently registered
// tenant. Control-plane call: do not run it concurrently with packet
// processing (like AddTenants).
func (m *TenantManager) NewOffload() (*TenantOffload, error) {
	m.mu.Lock()
	tenants := make([]*tenant, len(m.tenants))
	copy(tenants, m.tenants)
	m.mu.Unlock()
	if len(tenants) == 0 {
		return nil, fmt.Errorf("p2pbound: NewOffload on a manager with no tenants")
	}
	shift := uint(32 - m.cfg.PrefixBits)
	sort.Slice(tenants, func(i, j int) bool {
		return uint32(tenants[i].net.Prefix)>>shift < uint32(tenants[j].net.Prefix)>>shift
	})
	om, err := offload.NewMap(offload.GeometryOf(m.coreCfg), len(tenants), m.cfg.PrefixBits)
	if err != nil {
		return nil, err
	}
	for i, t := range tenants {
		om.SetSectionKey(i, uint32(t.net.Prefix)>>shift, t.id)
	}
	return &TenantOffload{mgr: m, m: om, byTenant: tenants}, nil
}

// Map returns the flat map, for probing or serialization.
func (to *TenantOffload) Map() *offload.Map { return to.m }

// Publish exports every hydrated tenant's filter into its section and
// marks evicted tenants' sections dead (their stale bits become
// unreachable — probes escalate, and the slow path rehydrates the
// tenant exactly as it would without an offload tier). Single-writer
// per shard like processing: call it between batches from the
// processing goroutine, or under the same exclusion as EvictIdle.
//
//p2p:confined tenantshard entry
func (to *TenantOffload) Publish() error {
	for i, t := range to.byTenant {
		sec := to.m.Section(i)
		if !t.hydrated {
			if sec.Live() {
				sec.SetLive(false)
			}
			continue
		}
		if err := sec.Publish(t.lim.filter.Load()); err != nil {
			return fmt.Errorf("p2pbound: offload publish tenant %q: %w", t.id, err)
		}
	}
	return nil
}
