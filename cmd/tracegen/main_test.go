package main

import (
	"bufio"
	"os"
	"path/filepath"
	"testing"

	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

func TestRunWritesReadablePcap(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.pcap")
	err := run([]string{
		"-o", out,
		"-duration", "5s",
		"-scale", "0.02",
		"-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	clientNet := packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)
	packets, err := pcap.ReadAll(bufio.NewReader(f), clientNet, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) < 100 {
		t.Fatalf("pcap holds only %d packets", len(packets))
	}
}

func TestRunCustomNetwork(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.pcap")
	err := run([]string{
		"-o", out,
		"-duration", "2s",
		"-scale", "0.02",
		"-net", "10.50.0.0/16",
		"-clients", "10",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	clientNet := packet.CIDR(packet.AddrFrom4(10, 50, 0, 0), 16)
	packets, err := pcap.ReadAll(bufio.NewReader(f), clientNet, false)
	if err != nil {
		t.Fatal(err)
	}
	// Every packet must have exactly one endpoint inside the network.
	for i := range packets {
		p := &packets[i]
		srcIn := clientNet.Contains(p.Pair.SrcAddr)
		dstIn := clientNet.Contains(p.Pair.DstAddr)
		if srcIn == dstIn {
			t.Fatalf("packet %d does not cross the network edge: %v", i, p.Pair)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -o accepted")
	}
	if err := run([]string{"-o", "x.pcap", "-net", "garbage"}); err == nil {
		t.Fatal("bad network accepted")
	}
	if err := run([]string{"-o", filepath.Join(t.TempDir(), "nodir", "x.pcap"), "-duration", "1s", "-scale", "0.01"}); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
