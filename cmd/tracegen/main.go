// Command tracegen generates a synthetic client-network packet trace with
// the paper's Section 3.3 traffic characteristics and writes it as a
// tcpdump-compatible pcap file.
//
// Usage:
//
//	tracegen -o trace.pcap [-duration 60s] [-scale 0.08] [-seed 42]
//	         [-snaplen 256] [-net 140.112.0.0/16] [-clients 200]
//
// A snaplen of 96 approximates the paper's header traces (layer 2–4
// headers only); larger snap lengths keep the application handshakes the
// analyzer's pattern stage needs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out      = fs.String("o", "", "output pcap path (required)")
		duration = fs.Duration("duration", 60*time.Second, "simulated trace duration")
		scale    = fs.Float64("scale", 0.08, "load scale relative to the paper's trace")
		seed     = fs.Uint64("seed", 42, "deterministic generator seed")
		snaplen  = fs.Int("snaplen", pcap.DefaultSnaplen, "bytes captured per packet")
		netCIDR  = fs.String("net", "", "client network CIDR (default 140.112.0.0/16)")
		clients  = fs.Int("clients", 0, "number of client hosts (default 200)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -o output path")
	}

	cfg := trace.DefaultConfig(*duration, *scale, *seed)
	if *netCIDR != "" {
		net, err := packet.ParseNetwork(*netCIDR)
		if err != nil {
			return err
		}
		cfg.ClientNet = net
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}

	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(w, tr.Packets, *snaplen, base); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("wrote %d packets (%d flows, %v) to %s\n",
		len(tr.Packets), len(tr.Flows), cfg.Duration, *out)
	return nil
}
