// Command bitmapsim replays a pcap trace through an edge filter — the
// bitmap filter, the SPI baseline, or the exact naive timer table — and
// reports drop rates and pre/post-filter throughput, reproducing the
// Section 5.3 simulations on arbitrary traces.
//
// Usage:
//
//	bitmapsim -i trace.pcap [-filter bitmap|spi|naive] [-net CIDR]
//	          [-low 50] [-high 100] [-block] [-k 4] [-n 20] [-m 3]
//	          [-dt 5s] [-holepunch] [-series]
//
// With -low/-high 0 the filter drops every stateless inbound packet
// (P_d = 1, the Figure 8 configuration); otherwise P_d ramps between the
// thresholds (Mbps) as in Figure 9. -block enables the blocked-connection
// memory.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/ingest"
	"p2pbound/internal/metrics"
	"p2pbound/internal/naive"
	"p2pbound/internal/netsim"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
	"p2pbound/internal/red"
	"p2pbound/internal/spi"
	"p2pbound/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bitmapsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bitmapsim", flag.ContinueOnError)
	var (
		in        = fs.String("i", "", "input pcap path (required)")
		filterSel = fs.String("filter", "bitmap", "filter to install: bitmap, spi, or naive")
		netCIDR   = fs.String("net", "140.112.0.0/16", "client network CIDR")
		lowMbps   = fs.Float64("low", 0, "P_d low threshold L in Mbps (0 with -high 0 = always drop)")
		highMbps  = fs.Float64("high", 0, "P_d high threshold H in Mbps")
		block     = fs.Bool("block", false, "remember dropped socket pairs and block the whole connection")
		k         = fs.Int("k", 4, "bitmap: number of bit vectors")
		n         = fs.Uint("n", 20, "bitmap: bits per vector = 2^n")
		m         = fs.Int("m", 3, "bitmap: hash functions")
		dt        = fs.Duration("dt", 5*time.Second, "bitmap: rotation period Δt")
		holePunch = fs.Bool("holepunch", false, "bitmap/naive: partial-tuple hashing")
		idle      = fs.Duration("idle", 240*time.Second, "spi: idle timeout")
		seed      = fs.Uint64("seed", 42, "seed for probabilistic drops")
		series    = fs.Bool("series", false, "print the per-second drop-rate series")
		listen    = fs.String("listen", "", "serve /metrics and /debug/pprof/ on this address during the replay (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input path")
	}
	clientNet, err := packet.ParseNetwork(*netCIDR)
	if err != nil {
		return err
	}

	var filter netsim.Filter
	var memory func() int
	switch *filterSel {
	case "bitmap":
		bm, err := core.New(core.Config{
			K: *k, NBits: *n, M: *m, DeltaT: *dt,
			HolePunch: *holePunch, Seed: *seed,
		})
		if err != nil {
			return err
		}
		filter = bm
		memory = bm.Bytes
	case "spi":
		sp, err := spi.New(spi.Config{IdleTimeout: *idle, Seed: *seed})
		if err != nil {
			return err
		}
		filter = sp
		memory = sp.Bytes
	case "naive":
		nv, err := naive.New(time.Duration(*k)**dt, *holePunch, *seed)
		if err != nil {
			return err
		}
		filter = nv
		memory = func() int { return nv.Len() * 32 }
	default:
		return fmt.Errorf("unknown filter %q", *filterSel)
	}

	cfg := netsim.Config{BlockConnections: *block}
	if *highMbps > 0 {
		prober, err := red.NewLinear(*lowMbps*1e6, *highMbps*1e6)
		if err != nil {
			return err
		}
		cfg.Prober = prober
	}

	if *listen != "" {
		obs := newObservedFilter(filter, *filterSel, memory)
		filter = obs
		if cfg.Prober != nil {
			// The RED ramp is observable too: every computed P_d updates
			// the gauge the scrape reads.
			cfg.Prober = red.Observed{Prober: cfg.Prober, Fn: obs.observePd}
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: obs.reg.Handler()}
		go func() {
			if serveErr := srv.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "bitmapsim: metrics server: %v\n", serveErr)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if shutErr := srv.Shutdown(ctx); shutErr != nil {
				srv.Close()
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	// Open the input only after the metrics server is listening: with a
	// streaming source (a FIFO fed by tcpdump), the replay phase is the
	// long part, and the endpoints should be reachable throughout it.
	// Regular files replay through the zero-copy mmap walker; pipes and
	// FIFOs stream through the buffered reader. Either way the trace is
	// never materialized in memory — only one ingest batch is live.
	var (
		src       ingest.Ingest
		malformed func() int64
	)
	if fi, statErr := os.Stat(*in); statErr == nil && fi.Mode().IsRegular() {
		ms, err := ingest.OpenMMap(*in, clientNet, true)
		if err != nil {
			return err
		}
		defer ms.Close()
		src, malformed = ms, ms.Malformed
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		reader, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20), clientNet)
		if err != nil {
			return err
		}
		reader.VerifyChecksums = true
		rs := ingest.NewReaderSource(reader)
		src, malformed = rs, rs.Malformed
	}

	start := time.Now()
	res, err := netsim.ReplayIngest(src, filter, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("bitmapsim: %s filter over %d packets from %s\n", *filterSel, res.TotalPackets, *in)
	fmt.Printf("  replay wall time %v (%.2fM packets/sec)\n",
		elapsed.Round(time.Millisecond), float64(res.TotalPackets)/elapsed.Seconds()/1e6)
	fmt.Printf("  outbound %d, inbound %d\n", res.OutboundPackets, res.InboundPackets)
	fmt.Printf("  filter drops %d, blocked drops %d (overall %s)\n",
		res.FilterDropped, res.Blocked, stats.Pct(res.DropRate()))
	fmt.Printf("  upload   original %s -> filtered %s\n",
		stats.Mbps(res.OriginalUp.MeanRate()), stats.Mbps(res.FilteredUp.MeanRate()))
	fmt.Printf("  download original %s -> filtered %s\n",
		stats.Mbps(res.OriginalDown.MeanRate()), stats.Mbps(res.FilteredDown.MeanRate()))
	fmt.Printf("  filter state at end: %d bytes\n", memory())
	if n := malformed(); n > 0 {
		fmt.Printf("  skipped %d malformed or corrupt frames\n", n)
	}
	if *series {
		fmt.Println("  per-second drop rates:")
		for i, r := range res.DropRateSeries() {
			fmt.Printf("    %4ds  %s\n", i, stats.Pct(r))
		}
	}
	return nil
}

// observedFilter instruments a netsim.Filter for live scraping during a
// replay: verdict counters, the simulated clock, the memory footprint,
// and (via observePd on a red.Observed wrapper) the current P_d. The
// replay is single-threaded, so everything records on stripe 0; the HTTP
// scrape goroutine only ever reads atomics.
type observedFilter struct {
	netsim.Filter
	reg       *metrics.Registry
	processed *metrics.Counter
	dropped   *metrics.Counter
	clock     *metrics.Gauge
	pd        *metrics.Gauge
	mem       *metrics.Gauge
	memory    func() int
}

func newObservedFilter(f netsim.Filter, name string, memory func() int) *observedFilter {
	reg := metrics.NewRegistry()
	lbl := metrics.L("filter", name)
	return &observedFilter{
		Filter:    f,
		reg:       reg,
		memory:    memory,
		processed: reg.Counter("bitmapsim_packets_total", "Packets decided by the replay filter.", 1, lbl),
		dropped:   reg.Counter("bitmapsim_dropped_total", "Packets the replay filter dropped.", 1, lbl),
		clock:     reg.Gauge("bitmapsim_trace_seconds", "Simulated trace time reached by the replay.", lbl),
		pd:        reg.Gauge("bitmapsim_pd", "Drop probability most recently computed by the prober.", lbl),
		mem:       reg.Gauge("bitmapsim_filter_bytes", "Memory footprint of the filter state.", lbl),
	}
}

func (o *observedFilter) Advance(ts time.Duration) {
	o.clock.Set(ts.Seconds())
	// Sampled on the replay goroutine, not at scrape time: the SPI and
	// naive baselines compute their footprint from mutable tables.
	o.mem.Set(float64(o.memory()))
	o.Filter.Advance(ts)
}

func (o *observedFilter) Process(pkt *packet.Packet, pd float64) core.Verdict {
	v := o.Filter.Process(pkt, pd)
	o.processed.Inc(0)
	if v == core.Drop {
		o.dropped.Inc(0)
	}
	return v
}

func (o *observedFilter) observePd(_, pd float64) { o.pd.Set(pd) }
