package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

// writeTestPcap materializes a small synthetic trace for the CLI tests.
func writeTestPcap(t *testing.T) string {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig(5*time.Second, 0.02, 8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(f, tr.Packets, 0, base); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllFilters(t *testing.T) {
	path := writeTestPcap(t)
	for _, filter := range []string{"bitmap", "spi", "naive"} {
		if err := run([]string{"-i", path, "-filter", filter}); err != nil {
			t.Errorf("filter %s: %v", filter, err)
		}
	}
}

func TestRunWithThresholdsAndBlocking(t *testing.T) {
	path := writeTestPcap(t)
	if err := run([]string{"-i", path, "-low", "1", "-high", "2", "-block", "-series"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomBitmapGeometry(t *testing.T) {
	path := writeTestPcap(t)
	if err := run([]string{"-i", path, "-k", "2", "-n", "14", "-m", "2", "-dt", "1s", "-holepunch"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -i accepted")
	}
	if err := run([]string{"-i", "does-not-exist.pcap"}); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTestPcap(t)
	if err := run([]string{"-i", path, "-filter", "nonsense"}); err == nil {
		t.Fatal("unknown filter accepted")
	}
	if err := run([]string{"-i", path, "-net", "garbage"}); err == nil {
		t.Fatal("bad network accepted")
	}
	if err := run([]string{"-i", path, "-low", "5", "-high", "2"}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}
