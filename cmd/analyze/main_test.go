package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

func writeTestPcap(t *testing.T) string {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig(5*time.Second, 0.02, 4))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(f, tr.Packets, 0, base); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyzesPcap(t *testing.T) {
	path := writeTestPcap(t)
	if err := run([]string{"-i", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithoutVerification(t *testing.T) {
	path := writeTestPcap(t)
	if err := run([]string{"-i", path, "-verify=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -i accepted")
	}
	if err := run([]string{"-i", "missing.pcap"}); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTestPcap(t)
	if err := run([]string{"-i", path, "-net", "garbage"}); err == nil {
		t.Fatal("bad network accepted")
	}
}
