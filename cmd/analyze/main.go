// Command analyze runs the Section 3.2 traffic analyzer over a pcap trace
// and prints the Section 3.3 measurements: the aggregate summary, the
// Table 2 protocol distribution, the Figure 2/3 port CDFs, the Figure 4
// lifetime distribution, and the Figure 5 out-in delay distribution.
//
// Usage:
//
//	analyze -i trace.pcap [-net 140.112.0.0/16] [-verify]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"p2pbound/internal/experiments"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		in      = fs.String("i", "", "input pcap path (required)")
		netCIDR = fs.String("net", "140.112.0.0/16", "client network CIDR")
		verify  = fs.Bool("verify", true, "skip packets with bad checksums, as the paper's analyzer does")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input path")
	}
	clientNet, err := packet.ParseNetwork(*netCIDR)
	if err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	packets, err := pcap.ReadAll(bufio.NewReaderSize(f, 1<<20), clientNet, *verify)
	if err != nil {
		return err
	}
	fmt.Printf("analyze: %d packets from %s\n\n", len(packets), *in)

	suite, err := experiments.SuiteFromPackets(packets, clientNet)
	if err != nil {
		return err
	}
	fmt.Println(suite.RunSummary().Render())
	fmt.Println(suite.RunT2().Render())
	fmt.Println(suite.RunF2().Render())
	fmt.Println(suite.RunF3().Render())
	fmt.Println(suite.RunF4().Render())
	fmt.Println(suite.RunF5().Render())
	return nil
}
