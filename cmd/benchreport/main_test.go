package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-run", "S0,T2,A1,X3",
		"-duration", "20s",
		"-scale", "0.03",
		"-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"S0: trace aggregates",
		"T2: protocol distribution",
		"bittorrent",
		"A1: capacity bounds",
		"167000",
		"X3: hole-punching",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, skip := range []string{"F8:", "F9:", "X1:"} {
		if strings.Contains(out, skip) {
			t.Errorf("output contains unselected section %q", skip)
		}
	}
}

func TestRunUnknownFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunReplayExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("replay experiments are slow")
	}
	var buf bytes.Buffer
	err := run([]string{
		"-run", "F8,F9,X2",
		"-duration", "20s",
		"-scale", "0.03",
		"-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"F8: SPI vs bitmap", "F9: upload limiting", "X2: bitmap vs exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWritesDataFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-run", "F2,F3,F4,F5,F8,F9",
		"-duration", "15s",
		"-scale", "0.03",
		"-seed", "5",
		"-data", dir,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"f2_all.dat", "f2_p2p.dat", "f2_nonp2p.dat", "f2_unknown.dat",
		"f3_all.dat",
		"f4_lifetime_cdf.dat", "f5_delay_cdf.dat",
		"f8_scatter.dat", "f9_upload.dat",
	} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing data file %s: %v", name, err)
			continue
		}
		if st.Size() < 20 {
			t.Errorf("data file %s suspiciously small (%d bytes)", name, st.Size())
		}
	}
}
