// Command benchreport regenerates every table and figure of the paper's
// evaluation (plus this reproduction's ablations) from a freshly generated
// synthetic trace and prints the rows the paper reports next to the
// published values.
//
// Usage:
//
//	benchreport [-run T2,F2,F3,F4,F5,A1,F8,F9,X1,X2,X3] [-duration 120s]
//	            [-scale 0.08] [-seed 42] [-low 4] [-high 8]
//
// The -low/-high flags are the Figure 9 thresholds in Mbps; the defaults
// scale the paper's 50/100 Mbps to the default trace scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"p2pbound/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

type renderer interface{ Render() string }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "all", "comma-separated experiment ids (S0,T1,T2,F2,F3,F4,F5,A1,F8,F9,X1,X2,X3,X4) or 'all'")
		duration = fs.Duration("duration", 120*time.Second, "simulated trace duration")
		scale    = fs.Float64("scale", 0.08, "load scale relative to the paper's 146.7 Mbps / 250 conns-per-second trace")
		seed     = fs.Uint64("seed", 42, "deterministic generator seed")
		lowMbps  = fs.Float64("low", 0, "Figure 9 low threshold L in Mbps (0 = 50 Mbps × scale)")
		highMbps = fs.Float64("high", 0, "Figure 9 high threshold H in Mbps (0 = 100 Mbps × scale)")
		dataDir  = fs.String("data", "", "directory to write plot-ready .dat series for each figure (empty = skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lowMbps == 0 {
		*lowMbps = 50 * *scale
	}
	if *highMbps == 0 {
		*highMbps = 100 * *scale
	}

	want := make(map[string]bool)
	all := *runList == "all"
	for _, id := range strings.Split(*runList, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	sel := func(id string) bool { return all || want[id] }

	fmt.Fprintf(out, "benchreport: duration=%v scale=%.3f seed=%d (L=%.1f Mbps, H=%.1f Mbps)\n\n",
		*duration, *scale, *seed, *lowMbps, *highMbps)

	suite, err := experiments.NewSuite(experiments.DefaultTraceConfig(*duration, *scale, *seed))
	if err != nil {
		return err
	}
	data, err := newDataWriter(*dataDir)
	if err != nil {
		return err
	}

	emit := func(id string, r renderer) {
		fmt.Fprintln(out, r.Render())
	}
	if sel("S0") {
		emit("S0", suite.RunSummary())
	}
	if sel("T1") {
		emit("T1", suite.RunT1Accuracy())
	}
	if sel("T2") {
		emit("T2", suite.RunT2())
	}
	if sel("F2") {
		res := suite.RunF2()
		if err := data.portCDFs(res); err != nil {
			return err
		}
		emit("F2", res)
	}
	if sel("F3") {
		res := suite.RunF3()
		if err := data.portCDFs(res); err != nil {
			return err
		}
		emit("F3", res)
	}
	if sel("F4") {
		res := suite.RunF4()
		if err := data.writePoints("f4_lifetime_cdf.dat", "connection lifetime CDF: seconds, F(t)", res.Histogram); err != nil {
			return err
		}
		emit("F4", res)
	}
	if sel("F5") {
		res := suite.RunF5()
		if err := data.writePoints("f5_delay_cdf.dat", "out-in delay CDF: seconds, F(t)", res.CDF); err != nil {
			return err
		}
		emit("F5", res)
	}
	if sel("A1") {
		res, err := experiments.RunA1(*seed)
		if err != nil {
			return err
		}
		emit("A1", res)
	}
	if sel("F8") {
		res, err := experiments.RunF8(suite.Trace.Packets, *seed)
		if err != nil {
			return err
		}
		if err := data.f8Scatter(res); err != nil {
			return err
		}
		emit("F8", res)
	}
	if sel("F9") {
		res, err := experiments.RunF9(suite.Trace.Packets, *lowMbps*1e6, *highMbps*1e6, *seed)
		if err != nil {
			return err
		}
		if err := data.f9Series(res); err != nil {
			return err
		}
		emit("F9", res)
	}
	if sel("X1") {
		res, err := experiments.RunX1(suite.Trace.Packets, *seed)
		if err != nil {
			return err
		}
		emit("X1", res)
	}
	if sel("X2") {
		res, err := experiments.RunX2(suite.Trace.Packets, *seed)
		if err != nil {
			return err
		}
		emit("X2", res)
	}
	if sel("X4") {
		res, err := experiments.RunX4(suite.Trace.Packets, *seed)
		if err != nil {
			return err
		}
		emit("X4", res)
	}
	if sel("X3") {
		res, err := experiments.RunX3(10_000, *seed)
		if err != nil {
			return err
		}
		emit("X3", res)
	}
	return nil
}
