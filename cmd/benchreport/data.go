package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"p2pbound/internal/experiments"
	"p2pbound/internal/stats"
)

// dataWriter materializes each figure's underlying series as plain
// two-column .dat files (gnuplot/matplotlib ready) under one directory.
// A nil dataWriter writes nothing.
type dataWriter struct {
	dir string
}

func newDataWriter(dir string) (*dataWriter, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create data dir: %w", err)
	}
	return &dataWriter{dir: dir}, nil
}

// writePoints writes one (x, y) series with a comment header.
func (d *dataWriter) writePoints(name, header string, pts []stats.Point) error {
	if d == nil {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", header)
	for _, p := range pts {
		fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
	}
	return os.WriteFile(filepath.Join(d.dir, name), []byte(b.String()), 0o644)
}

// writeSeries writes an indexed series (bucket number vs value).
func (d *dataWriter) writeSeries(name, header string, values []float64) error {
	if d == nil {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", header)
	for i, v := range values {
		fmt.Fprintf(&b, "%d\t%g\n", i, v)
	}
	return os.WriteFile(filepath.Join(d.dir, name), []byte(b.String()), 0o644)
}

// portCDFs writes one file per class for a Figure 2/3 result.
func (d *dataWriter) portCDFs(res *experiments.PortCDFResult) error {
	if d == nil {
		return nil
	}
	classes := make([]string, 0, len(res.Classes))
	for class := range res.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		name := fmt.Sprintf("%s_%s.dat", strings.ToLower(res.Figure),
			strings.ToLower(strings.ReplaceAll(class, "-", "")))
		header := fmt.Sprintf("%s port CDF, class %s: port, F(port)", res.Figure, class)
		if err := d.writePoints(name, header, res.Classes[class]); err != nil {
			return err
		}
	}
	return nil
}

// f8Scatter writes the SPI-vs-bitmap drop-rate scatter.
func (d *dataWriter) f8Scatter(res *experiments.F8Result) error {
	if d == nil {
		return nil
	}
	return d.writePoints("f8_scatter.dat",
		"per-second drop rates: SPI (x) vs bitmap (y)", res.Scatter)
}

// f9Series writes the original and filtered upload series.
func (d *dataWriter) f9Series(res *experiments.F9Result) error {
	if d == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("# second, original upload (bps), filtered upload (bps)\n")
	for i, p := range res.UpSeries {
		fmt.Fprintf(&b, "%d\t%g\t%g\n", i, p.X, p.Y)
	}
	return os.WriteFile(filepath.Join(d.dir, "f9_upload.dat"), []byte(b.String()), 0o644)
}
