// Command p2pvet runs the project's static-analysis suite: the
// analyzers that prove the hot-path invariants (no allocation, no
// locks, no wall clock), the //p2p:atomic field discipline, enum-switch
// exhaustiveness, the packet-path import policy, atomic publication
// immutability, //p2p:confined goroutine ownership, lock-hold
// discipline, and encoder/decoder field parity.
//
// Two modes share the same analyzers:
//
//	go run ./cmd/p2pvet ./...              # standalone, loads via go list
//	go vet -vettool=$(which p2pvet) ./...  # vet backend, fully build-cached
//
// In vet mode the tool speaks the go command's vettool protocol:
// -V=full prints the build identity, -flags describes the (empty) flag
// set, and a trailing *.cfg argument selects single-unit analysis.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/atomicfield"
	"p2pbound/internal/analysis/bannedimport"
	"p2pbound/internal/analysis/codecparity"
	"p2pbound/internal/analysis/confine"
	"p2pbound/internal/analysis/driver"
	"p2pbound/internal/analysis/exhaustive"
	"p2pbound/internal/analysis/hotpath"
	"p2pbound/internal/analysis/lockhold"
	"p2pbound/internal/analysis/publish"
)

// suite is the full p2pvet analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	hotpath.Analyzer,
	atomicfield.Analyzer,
	exhaustive.Analyzer,
	bannedimport.Analyzer,
	publish.Analyzer,
	confine.Analyzer,
	lockhold.Analyzer,
	codecparity.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Build-system protocol first: the go command probes the tool with
	// these before ever handing it a compilation unit.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			if err := driver.Handshake(os.Stdout, progname); err != nil {
				fmt.Fprintln(os.Stderr, progname+":", err)
				os.Exit(1)
			}
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			usage(progname)
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(driver.Vet(os.Stderr, args[0], suite))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(driver.Standalone(os.Stderr, patterns, suite))
}

func usage(progname string) {
	fmt.Printf(`%[1]s proves the p2pbound hot-path invariants statically.

Usage:
	%[1]s [packages]                 analyze packages (default ./...)
	go vet -vettool=$(which %[1]s) ./...   run under go vet with build caching

Analyzers:
`, progname)
	for _, a := range suite {
		fmt.Printf("	%-14s %s\n", a.Name, a.Doc)
	}
}
