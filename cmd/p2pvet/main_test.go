package main

import (
	"testing"

	"p2pbound/internal/analysis/driver"
)

// TestModuleClean pins the "p2pvet runs clean on HEAD" invariant: the
// full analyzer suite over the whole module must report nothing. A
// regression here means either a new violation slipped into the tree or
// an analyzer started misfiring; both block the CI gate that runs the
// same suite.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module via go list")
	}
	diags, err := driver.Load([]string{"p2pbound/..."}, suite)
	if err != nil {
		t.Fatalf("p2pvet load: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
}
