package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: p2pbound
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFilterProcessBatch/layout=classic/scheme=perindex         	24801018	        97.67 ns/op	       0 B/op	       0 allocs/op
BenchmarkFilterProcessBatch/layout=blocked                         	43117920	        56.83 ns/op	       0 B/op	       0 allocs/op
BenchmarkLimiterProcessBatch-4   	 5000000	       120.4 ns/op	  8300000 packets/sec	       0 B/op	       0 allocs/op
BenchmarkNoMem   	 1000	       42.5 ns/op
PASS
ok  	p2pbound	7.632s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "p2pbound" {
		t.Fatalf("header context wrong: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkFilterProcessBatch/layout=blocked" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.Iterations != 43117920 || b.NsPerOp != 56.83 {
		t.Fatalf("iterations/ns wrong: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 0 || b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields wrong: %+v", b)
	}
	// Custom ReportMetric units land in extra.
	lim := rep.Benchmarks[2]
	if got := lim.Extra["packets/sec"]; got != 8300000 {
		t.Fatalf("packets/sec = %v", got)
	}
	// A line without -benchmem leaves the memory fields absent, not zero.
	nomem := rep.Benchmarks[3]
	if nomem.BytesPerOp != nil || nomem.AllocsPerOp != nil {
		t.Fatalf("memory fields should be nil without -benchmem: %+v", nomem)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok p2pbound 1.0s\n")); err == nil {
		t.Fatal("empty benchmark output accepted")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	in := "BenchmarkFoo: some log output\nBenchmarkBar   	 100	 5.0 ns/op\n"
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkBar" {
		t.Fatalf("got %+v", rep.Benchmarks)
	}
}
