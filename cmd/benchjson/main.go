// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, so benchmark results can be committed,
// diffed, and regression-checked in CI instead of living in terminal
// scrollback.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_p2pbound.json
//
// Each benchmark line contributes one entry with the iteration count,
// ns/op, and — when -benchmem is in effect — B/op and allocs/op; any
// further metric pairs (e.g. packets/sec from b.ReportMetric) land in
// "extra" keyed by unit. The goos/goarch/pkg/cpu header lines are
// captured so a committed report records what machine produced it.
// Exits nonzero when the input contains no benchmark results, so a
// failed benchmark run cannot silently produce an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Report is the top-level JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkX  N  v unit [v unit ...]` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
	}
}

// parse reads go test benchmark output and collects header context and
// result lines. Unrecognized lines (test output, PASS, ok) are skipped.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin (did the benchmark run fail?)")
	}
	return rep, nil
}

// parseResult parses one result line: name, iteration count, then
// (value, unit) pairs. Returns ok=false for lines that merely start
// with "Benchmark" (e.g. a benchmark's own log output).
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, seen
}
