// Command p2pboundd is the deployment form of the limiter: it consumes a
// pcap stream (a file, or tcpdump piped to stdin), runs every packet
// through a p2pbound.Limiter, and emits the verdict stream plus periodic
// statistics. With -state it restores the bitmap filter from a previous
// snapshot on startup and writes a fresh snapshot on exit, so restarts
// keep admitting tracked flows.
//
// The daemon is built to run unattended at the network edge:
//
//   - A corrupt, truncated, or geometry-mismatched snapshot is reported
//     and degraded to a cold start — never a refusal to boot.
//   - -snapshot writes periodic atomic snapshots (trace time), so a
//     crash or SIGKILL loses at most one interval of admission state.
//   - SIGINT/SIGTERM trigger a graceful shutdown: the pending batch is
//     flushed, the final stats line is printed, and the state file is
//     written before exit.
//   - A mid-stream read error still flushes pending packets and reports
//     final stats, so an aborted run tells you what it decided.
//
// Usage:
//
//	tcpdump -i eth0 -w - | p2pboundd -net 140.112.0.0/16 -low 50 -high 100
//	p2pboundd -i trace.pcap -net 140.112.0.0/16 -state /var/lib/p2pbound.state
//
// Output: one line per dropped packet (suppress with -quiet) and a stats
// line every -report interval of trace time.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"path/filepath"
	"syscall"
	"time"

	"p2pbound"
	"p2pbound/internal/ingest"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p2pboundd:", err)
		os.Exit(1)
	}
}

// run wires OS signals and delegates to runSig, the testable core.
func run(args []string, out io.Writer) error {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	return runSig(args, out, sigc)
}

func runSig(args []string, out io.Writer, sigc <-chan os.Signal) error {
	fs := flag.NewFlagSet("p2pboundd", flag.ContinueOnError)
	var (
		in         = fs.String("i", "-", "input pcap path, or - for stdin")
		netCIDR    = fs.String("net", "", "client network CIDR (required)")
		lowMbps    = fs.Float64("low", 50, "P_d low threshold L in Mbps")
		highMbps   = fs.Float64("high", 100, "P_d high threshold H in Mbps")
		holePunch  = fs.Bool("holepunch", false, "partial-tuple hashing for NAT traversal")
		statePath  = fs.String("state", "", "bitmap snapshot file: restored on start, written on exit")
		stateAdopt = fs.Bool("state-adopt", false, "adopt a snapshot whose geometry differs from the configured one")
		snapEvery  = fs.Duration("snapshot", 0, "trace-time interval between periodic state snapshots (0 = only on exit)")
		report     = fs.Duration("report", 10*time.Second, "trace-time interval between stats lines")
		quiet      = fs.Bool("quiet", false, "do not print per-drop lines")
		seed       = fs.Uint64("seed", 0, "seed for probabilistic drops")
		tolerance  = fs.Duration("reorder-tolerance", 10*time.Millisecond, "capture reorder window before a backward timestamp counts as an anomaly")
		stopAfter  = fs.Int64("stop-after", 0, "gracefully stop after N packets, as if signalled (0 = run to EOF)")
		listen     = fs.String("listen", "", "serve /metrics, /metrics.json, and /debug/pprof/ on this address (empty = disabled)")
		peers      = fs.Int("peers", 1, "in-process replicated fleet size: shard the stream across N limiters synced after every batch (1 = single limiter)")
		traceEvery = fs.Int("trace-every", 0, "print a TRACE line for every Nth dropped packet (0 = disabled)")

		offloadPath  = fs.String("offload-map", "", "publish the kernel-offload flat verdict map to this file (written atomically), for an external fast-path stage to probe")
		offloadEvery = fs.Duration("offload-every", time.Second, "trace-time interval between -offload-map publications")

		tenantsPath = fs.String("tenants", "", "multi-tenant mode: file of subscriber networks, one '[id] CIDR' per line; runs a TenantManager instead of a single limiter (-net then only classifies capture direction)")
		tenantBits  = fs.Int("tenant-prefix", 24, "uniform subscriber prefix length for -tenants")
		tenantEvict = fs.Duration("tenant-evict", 0, "spill tenants idle for this much trace time after every batch (0 = never evict)")
		aggLow      = fs.Float64("agg-low", 0, "aggregate uplink low threshold in Mbps: hierarchical RED across all -tenants (0 with -agg-high 0 = disabled)")
		aggHigh     = fs.Float64("agg-high", 0, "aggregate uplink high threshold in Mbps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *netCIDR == "" {
		return errors.New("missing -net client network")
	}
	clientNet, err := packet.ParseNetwork(*netCIDR)
	if err != nil {
		return err
	}

	cfg := p2pbound.Config{
		ClientNetwork:    *netCIDR,
		LowMbps:          *lowMbps,
		HighMbps:         *highMbps,
		HolePunch:        *holePunch,
		Seed:             *seed,
		ReorderTolerance: *tolerance,
	}
	var tel *p2pbound.Telemetry
	if *listen != "" {
		tel = p2pbound.NewTelemetry()
		cfg.Telemetry = tel
	}
	if *traceEvery > 0 {
		cfg.TraceEveryN = *traceEvery
		cfg.TraceFunc = func(tr p2pbound.DropTrace) {
			// Runs synchronously on the processing goroutine, so it shares
			// out with the drop and stats lines without extra locking.
			fmt.Fprintf(out, "TRACE t=%v proto=%d %s:%d->%s:%d pd=%.3f uplink=%.2fMbps epoch=%d\n",
				tr.Timestamp, tr.Protocol, tr.SrcAddr, tr.SrcPort, tr.DstAddr, tr.DstPort,
				tr.Pd, tr.UplinkMbps, tr.Epoch)
		}
	}
	var (
		limiter *p2pbound.Limiter
		fleet   *p2pbound.Fleet
		mgr     *p2pbound.TenantManager
		stats   func() p2pbound.Stats
		uplink  func() float64
		dropPd  func() float64
	)
	switch {
	case *peers < 1:
		return fmt.Errorf("-peers must be positive, got %d", *peers)
	case *tenantsPath != "" && *peers > 1:
		return errors.New("-tenants and -peers are mutually exclusive: a tenant shard is already a single-writer island")
	case *tenantsPath != "":
		tcs, err := loadTenants(*tenantsPath)
		if err != nil {
			return err
		}
		m, err := p2pbound.NewTenantManager(p2pbound.TenantManagerConfig{
			Tenant:            cfg,
			PrefixBits:        *tenantBits,
			AggregateLowMbps:  *aggLow,
			AggregateHighMbps: *aggHigh,
			Telemetry:         tel,
		})
		if err != nil {
			return err
		}
		if err := m.AddTenants(tcs); err != nil {
			return err
		}
		mgr = m
		// The per-report line in tenant mode comes from mgr.Stats; the
		// final accounting sums the population.
		stats = func() p2pbound.Stats {
			var sum p2pbound.Stats
			for _, id := range m.TenantIDs() {
				s, _ := m.TenantStats(id)
				sum.OutboundPackets += s.OutboundPackets
				sum.InboundPackets += s.InboundPackets
				sum.InboundMatched += s.InboundMatched
				sum.InboundUnmatched += s.InboundUnmatched
				sum.Dropped += s.Dropped
				sum.Rotations += s.Rotations
				sum.Unroutable += s.Unroutable
				sum.TimeAnomalies += s.TimeAnomalies
			}
			return sum
		}
		uplink = func() float64 { return 0 }
		dropPd = func() float64 { return 0 }
		fmt.Fprintf(out, "multi-tenant edge: %d subscribers (/%d each)\n", len(tcs), *tenantBits)
	case *peers > 1:
		// Fleet mode: the stream is sharded across replicated members
		// over an in-process loopback transport, synced after every
		// batch. Snapshot restore is a single-box workflow — a fleet
		// member rejoins empty and heals via anti-entropy repair — so
		// -state is rejected rather than silently ignored.
		if *statePath != "" {
			return errors.New("-state is not supported with -peers: a fleet member rejoins empty and heals via repair")
		}
		fl, err := p2pbound.NewFleet(cfg, p2pbound.FleetConfig{Replicas: *peers, DigestEvery: 1})
		if err != nil {
			return err
		}
		fleet = fl
		stats = fl.Stats
		uplink = func() float64 {
			total := 0.0
			for i := 0; i < fl.Replicas(); i++ {
				total += fl.Limiter(i).UplinkMbps()
			}
			return total
		}
		dropPd = func() float64 { return fl.Limiter(0).DropProbability() }
		// Two lossless loopback rounds exchange the empty-state digests
		// so every member is Ready before the first packet.
		fl.Sync()
		fl.Sync()
	default:
		l, err := p2pbound.New(cfg)
		if err != nil {
			return err
		}
		limiter = l
		stats, uplink, dropPd = l.Stats, l.UplinkMbps, l.DropProbability
	}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: tel.Handler()}
		go func() {
			if serveErr := srv.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "p2pboundd: metrics server: %v\n", serveErr)
			}
		}()
		// Graceful HTTP shutdown on every exit path (EOF, signal, read
		// error): in-flight scrapes finish, then the listener closes.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if shutErr := srv.Shutdown(ctx); shutErr != nil {
				srv.Close()
			}
		}()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", ln.Addr())
	}
	// The offload map publishes from the processing goroutine between
	// batches — the single-writer position Section.Publish requires —
	// then lands on disk through the same atomic tmp+rename as state
	// snapshots, so an external fast-path consumer never maps a torn
	// file.
	var publishOffload func() error
	if *offloadPath != "" {
		switch {
		case fleet != nil:
			return errors.New("-offload-map is not supported with -peers: publish from one member's own daemon instead")
		case mgr != nil:
			to, err := mgr.NewOffload()
			if err != nil {
				return err
			}
			publishOffload = func() error {
				if err := to.Publish(); err != nil {
					return err
				}
				return writeSnapshotAtomic(*offloadPath, func(w io.Writer) error {
					_, err := to.Map().WriteTo(w)
					return err
				})
			}
		default:
			om, err := limiter.NewOffloadMap()
			if err != nil {
				return err
			}
			publishOffload = func() error {
				if err := limiter.PublishOffload(om); err != nil {
					return err
				}
				return writeSnapshotAtomic(*offloadPath, func(w io.Writer) error {
					_, err := om.WriteTo(w)
					return err
				})
			}
		}
	}
	if *statePath != "" {
		restore := func() error { return restoreState(limiter, *statePath, *stateAdopt) }
		if mgr != nil {
			restore = func() error { return restoreTenantState(mgr, *statePath) }
		}
		switch restoreErr := restore(); {
		case restoreErr == nil:
			fmt.Fprintf(out, "restored state from %s\n", *statePath)
		case errors.Is(restoreErr, os.ErrNotExist):
			// First boot: nothing to restore.
		default:
			// A corrupt or mismatched snapshot must not keep the edge
			// from booting: report it and degrade to a cold start. The
			// filter challenges unmatched inbound traffic for the first
			// T_e, exactly as on first boot.
			fmt.Fprintf(os.Stderr, "p2pboundd: state restore failed (%v); cold start\n", restoreErr)
		}
	}

	// Regular files ingest through the zero-copy mmap walker; stdin and
	// FIFOs (a live tcpdump pipe) stream through the buffered reader.
	// Both deliver decoded batches, so the daemon never holds more than
	// one batch of packets regardless of capture size.
	var (
		src       ingest.Ingest
		clockRegs func() int64
	)
	if *in != "-" {
		if fi, statErr := os.Stat(*in); statErr == nil && fi.Mode().IsRegular() {
			ms, err := ingest.OpenMMap(*in, clientNet, false)
			if err != nil {
				return err
			}
			defer ms.Close()
			src, clockRegs = ms, ms.ClockRegressions
		} else {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			reader, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20), clientNet)
			if err != nil {
				return err
			}
			rs := ingest.NewReaderSource(reader)
			src, clockRegs = rs, rs.ClockRegressions
		}
	} else {
		reader, err := pcap.NewReader(bufio.NewReaderSize(os.Stdin, 1<<20), clientNet)
		if err != nil {
			return err
		}
		rs := ingest.NewReaderSource(reader)
		src, clockRegs = rs, rs.ClockRegressions
	}

	// Each ingest batch is decided through Limiter.ProcessBatch — the
	// amortized hot path — reusing the same translation and verdict
	// slices for the life of the stream so steady state does not
	// allocate. The ingest batch itself doubles as the raw-packet view
	// for the drop and stats lines.
	const batchCap = 512
	var (
		total, dropped int64
		readCount      int64
		nextReport     = *report
		nextSnap       = *snapEvery
		nextOffload    = *offloadEvery
		b              = ingest.NewBatch(batchCap)
		batch          = make([]p2pbound.Packet, 0, batchCap)
		verdicts       = make([]p2pbound.Decision, 0, batchCap)
	)
	save := func() error {
		if mgr != nil {
			return saveTenantStateFn(mgr, *statePath)
		}
		return saveStateFn(limiter, *statePath)
	}
	snapshot := func() {
		if *statePath == "" {
			return
		}
		if err := save(); err != nil {
			// A failed periodic snapshot is an operational warning, not
			// a reason to stop filtering: the previous snapshot is still
			// intact because saveState writes atomically.
			fmt.Fprintf(os.Stderr, "p2pboundd: periodic snapshot failed: %v\n", err)
		}
	}
	flush := func(raw []packet.Packet) {
		batch = batch[:0]
		for i := range raw {
			pkt := &raw[i]
			batch = append(batch, p2pbound.Packet{
				Timestamp: pkt.TS,
				Protocol:  p2pbound.Protocol(pkt.Pair.Proto),
				SrcAddr:   toNetip(pkt.Pair.SrcAddr), SrcPort: pkt.Pair.SrcPort,
				DstAddr: toNetip(pkt.Pair.DstAddr), DstPort: pkt.Pair.DstPort,
				Size: pkt.Len,
			})
		}
		switch {
		case fleet != nil:
			// Verdicts stay in arrival order: each packet is decided on
			// the member its connection hashes to, then one sync round
			// replicates the batch's marks fleet-wide.
			verdicts = verdicts[:0]
			for i := range batch {
				verdicts = append(verdicts, fleet.Process(batch[i]))
			}
			fleet.Sync()
		case mgr != nil:
			verdicts = mgr.ProcessBatch(batch, verdicts[:0])
			if *tenantEvict > 0 {
				// Between batches is the single-writer window; idle
				// tenants spill their filters and recycle their vectors.
				mgr.EvictIdle(*tenantEvict)
			}
		default:
			verdicts = limiter.ProcessBatch(batch, verdicts[:0])
		}
		snapDue := false
		offloadDue := false
		for i, decision := range verdicts {
			pkt := &raw[i]
			total++
			if decision == p2pbound.Drop {
				dropped++
				if !*quiet {
					fmt.Fprintf(out, "DROP %v %s\n", pkt.TS, pkt.Pair)
				}
			}
			if *report > 0 && pkt.TS >= nextReport {
				s := stats()
				if mgr != nil {
					ms := mgr.Stats()
					fmt.Fprintf(out, "stats t=%v packets=%d dropped=%d tenants=%d hydrated=%d evictions=%d spill=%dKiB matched=%d anomalies=%d\n",
						pkt.TS.Truncate(time.Second), total, dropped,
						ms.Tenants, ms.Hydrated, ms.Evictions, ms.SpillBytes/1024,
						s.InboundMatched, s.TimeAnomalies)
				} else {
					fmt.Fprintf(out, "stats t=%v packets=%d dropped=%d uplink=%.2fMbps pd=%.2f matched=%d unroutable=%d anomalies=%d\n",
						pkt.TS.Truncate(time.Second), total, dropped,
						uplink(), dropPd(), s.InboundMatched, s.Unroutable, s.TimeAnomalies)
				}
				for pkt.TS >= nextReport {
					nextReport += *report
				}
			}
			if *snapEvery > 0 && pkt.TS >= nextSnap {
				snapDue = true
				for pkt.TS >= nextSnap {
					nextSnap += *snapEvery
				}
			}
			if publishOffload != nil && *offloadEvery > 0 && pkt.TS >= nextOffload {
				offloadDue = true
				for pkt.TS >= nextOffload {
					nextOffload += *offloadEvery
				}
			}
		}
		// Snapshot after the batch so the state file reflects every
		// verdict already reported.
		if snapDue {
			snapshot()
		}
		if offloadDue {
			if err := publishOffload(); err != nil {
				// Like a failed periodic snapshot: the previous map file
				// is intact, the fast path just runs staler — which only
				// costs escalations, never verdicts.
				fmt.Fprintf(os.Stderr, "p2pboundd: offload map publish failed: %v\n", err)
			}
		}
	}
	// finish emits the final accounting line; it is shared by the EOF,
	// signal, and read-error exits so an aborted run reports exactly
	// like a completed one. (Every decoded batch is flushed before the
	// exits run, so there is no pending work to drain.)
	finish := func(reason string) {
		s := stats()
		fmt.Fprintf(out, "%s: %d packets, %d dropped, %d matched, %d anomalies, %d clock regressions\n",
			reason, total, dropped, s.InboundMatched, s.TimeAnomalies, clockRegs())
	}
	saveFinal := func() error {
		if publishOffload != nil {
			// Final publish so the on-disk map covers every decided
			// packet; a consumer restarted after the daemon exits probes
			// the complete state.
			if err := publishOffload(); err != nil {
				fmt.Fprintf(os.Stderr, "p2pboundd: final offload map publish failed: %v\n", err)
			}
		}
		if *statePath == "" {
			return nil
		}
		return save()
	}
	// Graceful-shutdown latch: a pending signal or -stop-after trips it;
	// the loop checks it between packets so shutdown always lands on a
	// packet boundary with the batch flushed and the state file written.
	// (Polling is exact here: a signal can't interrupt a blocked pcap
	// read anyway, so a watcher goroutine would add races, not latency.)
	stopping := false
	for {
		select {
		case <-sigc:
			stopping = true
		default:
		}
		if stopping {
			finish("signal: stopping")
			return saveFinal()
		}
		n, err := src.ReadBatch(b)
		pkts := b.Pkts[:n]
		// -stop-after lands exactly on the Nth packet: the tail of the
		// batch beyond it is never decided, as if the signal had
		// arrived on that packet boundary.
		if *stopAfter > 0 && readCount+int64(n) >= *stopAfter {
			pkts = pkts[:*stopAfter-readCount]
			stopping = true
		}
		readCount += int64(len(pkts))
		if len(pkts) > 0 {
			flush(pkts)
		}
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			if stopping {
				finish("signal: stopping")
			} else {
				finish("done")
			}
			return saveFinal()
		default:
			// A mid-stream read error (torn capture file, dying tcpdump
			// pipe) must not swallow decided-but-unreported packets: the
			// batch read so far was flushed above; report, snapshot
			// best-effort, then surface the error.
			finish("aborted")
			if saveErr := saveFinal(); saveErr != nil {
				fmt.Fprintf(os.Stderr, "p2pboundd: final snapshot failed: %v\n", saveErr)
			}
			return fmt.Errorf("read error after %d packets: %w", total, err)
		}
	}
}

// loadTenants parses a -tenants file: one subscriber per line, either
// "CIDR" (the CIDR doubles as the id) or "id CIDR". Blank lines and
// #-comments are skipped.
func loadTenants(path string) ([]p2pbound.TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tcs []p2pbound.TenantConfig
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch fields := strings.Fields(line); len(fields) {
		case 1:
			tcs = append(tcs, p2pbound.TenantConfig{Network: fields[0]})
		case 2:
			tcs = append(tcs, p2pbound.TenantConfig{ID: fields[0], Network: fields[1]})
		default:
			return nil, fmt.Errorf("tenants file %s:%d: want '[id] CIDR', got %q", path, lineNo+1, line)
		}
	}
	if len(tcs) == 0 {
		return nil, fmt.Errorf("tenants file %s: no subscribers", path)
	}
	return tcs, nil
}

// restoreState loads the snapshot at path. os.ErrNotExist passes through
// for the caller's first-boot handling; adopt selects AdoptState, which
// accepts a snapshot whose geometry differs from the configured one.
func restoreState(l *p2pbound.Limiter, path string, adopt bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	if adopt {
		return l.AdoptState(r)
	}
	return l.RestoreState(r)
}

// restoreTenantState is the -tenants analogue of restoreState.
func restoreTenantState(m *p2pbound.TenantManager, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.RestoreTenantState(bufio.NewReader(f))
}

// saveStateFn and saveTenantStateFn indirect the snapshot writers so
// tests can observe periodic snapshot cadence without racing the
// filesystem.
var (
	saveStateFn       = saveState
	saveTenantStateFn = saveTenantState
)

func saveState(l *p2pbound.Limiter, path string) error {
	return writeSnapshotAtomic(path, l.SaveState)
}

func saveTenantState(m *p2pbound.TenantManager, path string) error {
	return writeSnapshotAtomic(path, m.SaveTenantState)
}

// writeSnapshotAtomic writes a snapshot atomically and durably: the
// bytes are written to a temp file, fsynced, renamed over the target,
// and the directory entry fsynced — so a crash at any point leaves
// either the old snapshot or the new one, never a torn or missing file.
// On failure the temp file is removed rather than leaked.
func writeSnapshotAtomic(path string, saveTo func(io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriter(f)
	if err = saveTo(w); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Best-effort: some filesystems reject directory fsync, and losing the
// rename durability there only costs one snapshot interval.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

func toNetip(a packet.Addr) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}
