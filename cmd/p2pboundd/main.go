// Command p2pboundd is the deployment form of the limiter: it consumes a
// pcap stream (a file, or tcpdump piped to stdin), runs every packet
// through a p2pbound.Limiter, and emits the verdict stream plus periodic
// statistics. With -state it restores the bitmap filter from a previous
// snapshot on startup and writes a fresh snapshot on exit, so restarts
// keep admitting tracked flows.
//
// Usage:
//
//	tcpdump -i eth0 -w - | p2pboundd -net 140.112.0.0/16 -low 50 -high 100
//	p2pboundd -i trace.pcap -net 140.112.0.0/16 -state /var/lib/p2pbound.state
//
// Output: one line per dropped packet (suppress with -quiet) and a stats
// line every -report interval of trace time.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"p2pbound"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p2pboundd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2pboundd", flag.ContinueOnError)
	var (
		in        = fs.String("i", "-", "input pcap path, or - for stdin")
		netCIDR   = fs.String("net", "", "client network CIDR (required)")
		lowMbps   = fs.Float64("low", 50, "P_d low threshold L in Mbps")
		highMbps  = fs.Float64("high", 100, "P_d high threshold H in Mbps")
		holePunch = fs.Bool("holepunch", false, "partial-tuple hashing for NAT traversal")
		statePath = fs.String("state", "", "bitmap snapshot file: restored on start, written on exit")
		report    = fs.Duration("report", 10*time.Second, "trace-time interval between stats lines")
		quiet     = fs.Bool("quiet", false, "do not print per-drop lines")
		seed      = fs.Uint64("seed", 0, "seed for probabilistic drops")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *netCIDR == "" {
		return errors.New("missing -net client network")
	}
	clientNet, err := packet.ParseNetwork(*netCIDR)
	if err != nil {
		return err
	}

	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: *netCIDR,
		LowMbps:       *lowMbps,
		HighMbps:      *highMbps,
		HolePunch:     *holePunch,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	if *statePath != "" {
		if err := restoreState(limiter, *statePath); err != nil {
			return err
		}
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	reader, err := pcap.NewReader(bufio.NewReaderSize(src, 1<<20), clientNet)
	if err != nil {
		return err
	}

	// The read loop accumulates packets and decides them through
	// Limiter.ProcessBatch — the amortized hot path — reusing the same
	// three slices for the life of the stream so steady state does not
	// allocate. Raw packets ride along with the batch for the drop and
	// stats lines.
	const batchCap = 512
	var (
		total, dropped int64
		nextReport     = *report
		batch          = make([]p2pbound.Packet, 0, batchCap)
		raw            = make([]packet.Packet, 0, batchCap)
		verdicts       = make([]p2pbound.Decision, 0, batchCap)
	)
	flush := func() {
		verdicts = limiter.ProcessBatch(batch, verdicts[:0])
		for i, decision := range verdicts {
			pkt := &raw[i]
			total++
			if decision == p2pbound.Drop {
				dropped++
				if !*quiet {
					fmt.Fprintf(out, "DROP %v %s\n", pkt.TS, pkt.Pair)
				}
			}
			if *report > 0 && pkt.TS >= nextReport {
				s := limiter.Stats()
				fmt.Fprintf(out, "stats t=%v packets=%d dropped=%d uplink=%.2fMbps pd=%.2f matched=%d unroutable=%d\n",
					pkt.TS.Truncate(time.Second), total, dropped,
					limiter.UplinkMbps(), limiter.DropProbability(), s.InboundMatched, s.Unroutable)
				for pkt.TS >= nextReport {
					nextReport += *report
				}
			}
		}
		batch, raw = batch[:0], raw[:0]
	}
	for {
		pkt, err := reader.ReadPacket()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			flush()
			fmt.Fprintf(out, "done: %d packets, %d dropped\n", total, dropped)
			if *statePath != "" {
				return saveState(limiter, *statePath)
			}
			return nil
		case errors.Is(err, pcap.ErrBadChecksum):
			continue
		default:
			return err
		}

		raw = append(raw, *pkt)
		batch = append(batch, p2pbound.Packet{
			Timestamp: pkt.TS,
			Protocol:  p2pbound.Protocol(pkt.Pair.Proto),
			SrcAddr:   toNetip(pkt.Pair.SrcAddr), SrcPort: pkt.Pair.SrcPort,
			DstAddr: toNetip(pkt.Pair.DstAddr), DstPort: pkt.Pair.DstPort,
			Size: pkt.Len,
		})
		if len(batch) == batchCap {
			flush()
		}
	}
}

func restoreState(l *p2pbound.Limiter, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first boot
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return l.RestoreState(bufio.NewReader(f))
}

func saveState(l *p2pbound.Limiter, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := l.SaveState(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func toNetip(a packet.Addr) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}
