package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

// syncBuffer makes the daemon's output readable from the test goroutine
// while runSig is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRunServesMetricsMidReplay is the end-to-end observability smoke
// test: the daemon reads from a FIFO (so the replay genuinely blocks
// mid-stream), the test scrapes /metrics, /metrics.json, and
// /debug/pprof/ while packets are still pending, then delivers a signal
// and verifies the graceful exit also shuts the HTTP server down.
func TestRunServesMetricsMidReplay(t *testing.T) {
	fifo := filepath.Join(t.TempDir(), "in.fifo")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Skipf("mkfifo unavailable: %v", err)
	}

	tr, err := trace.Generate(trace.DefaultConfig(15*time.Second, 0.03, 51))
	if err != nil {
		t.Fatal(err)
	}

	sigc := make(chan os.Signal, 1)
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- runSig([]string{
			"-i", fifo,
			"-net", "140.112.0.0/16",
			"-low", "0.5", "-high", "1",
			"-quiet", "-report", "0s",
			"-listen", "127.0.0.1:0",
			"-trace-every", "1",
		}, out, sigc)
	}()

	// Opening the write side unblocks the daemon's open of the read side.
	// All but the last packet go in up front; the FIFO then stays open, so
	// the daemon blocks in ReadPacket with its HTTP server live.
	w, err := os.OpenFile(fifo, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	pw, err := pcap.NewWriter(w, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Packets[:len(tr.Packets)-1] {
		if err := pw.WritePacket(&tr.Packets[i]); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, "listen address line", func() bool {
		return strings.Contains(out.String(), "metrics on http://")
	})
	line := out.String()
	start := strings.Index(line, "metrics on http://") + len("metrics on ")
	url := strings.TrimSpace(strings.SplitN(line[start:], "\n", 2)[0])
	url = strings.TrimSuffix(url, "/metrics")

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Scrape mid-replay: packet counters are live while the input blocks.
	waitFor(t, "nonzero packet counter", func() bool {
		_, body := get("/metrics")
		return strings.Contains(body, `p2pbound_packets_total{dir="outbound",shard="0"}`) &&
			!strings.Contains(body, `p2pbound_packets_total{dir="outbound",shard="0"} 0`)
	})
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "# TYPE p2pbound_pd gauge") ||
		!strings.Contains(body, "p2pbound_uplink_bytes_total") {
		t.Fatalf("bad /metrics response (%d):\n%s", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"p2pbound_packets_total"`) {
		t.Fatalf("bad /metrics.json response (%d):\n%s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("bad /debug/pprof/ response (%d):\n%s", code, body)
	}

	// Deliver the signal while the daemon is blocked reading, then feed
	// one final packet so the read returns and the loop reaches its
	// shutdown check — the polling latch always lands on a packet
	// boundary.
	sigc <- os.Interrupt
	if err := pw.WritePacket(&tr.Packets[len(tr.Packets)-1]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("runSig: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop after signal")
	}
	if !strings.Contains(out.String(), "signal: stopping:") {
		t.Fatalf("missing graceful-stop line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "TRACE t=") {
		t.Fatalf("missing sampled drop trace lines:\n%s", out.String())
	}

	// The deferred shutdown closed the listener with the daemon.
	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Fatal("metrics server still reachable after graceful shutdown")
	}
}
