package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

func writeTestPcap(t *testing.T, seed uint64) string {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig(15*time.Second, 0.03, seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(f, tr.Packets, 0, base); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProcessesTrace(t *testing.T) {
	path := writeTestPcap(t, 31)
	var buf bytes.Buffer
	err := run([]string{
		"-i", path,
		"-net", "140.112.0.0/16",
		"-low", "0.5", "-high", "1",
		"-report", "5s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "done:") {
		t.Fatalf("missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "stats t=") {
		t.Fatalf("missing periodic stats:\n%s", out)
	}
	if !strings.Contains(out, "DROP ") {
		t.Fatalf("expected drops at these tiny thresholds:\n%s", out)
	}
}

func TestRunQuietSuppressesDropLines(t *testing.T) {
	path := writeTestPcap(t, 32)
	var buf bytes.Buffer
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-low", "0.5", "-high", "1",
		"-quiet", "-report", "0s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "DROP ") {
		t.Fatal("quiet mode printed drop lines")
	}
}

func TestRunStateRoundTrip(t *testing.T) {
	path := writeTestPcap(t, 33)
	state := filepath.Join(t.TempDir(), "bitmap.state")

	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(state)
	if err != nil {
		t.Fatalf("state file not written: %v", err)
	}
	if st.Size() < 512*1024 {
		t.Fatalf("state file too small: %d bytes", st.Size())
	}
	// A second run restores the snapshot without error.
	buf.Reset()
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing -net accepted")
	}
	if err := run([]string{"-net", "garbage"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad network accepted")
	}
	if err := run([]string{"-net", "10.0.0.0/8", "-i", "missing.pcap"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing input accepted")
	}
	path := writeTestPcap(t, 34)
	if err := run([]string{"-net", "10.0.0.0/8", "-i", path, "-low", "5", "-high", "2"}, &bytes.Buffer{}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}
