package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"p2pbound"
	"p2pbound/internal/offload"
	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

func writeTestPcap(t *testing.T, seed uint64) string {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig(15*time.Second, 0.03, seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(f, tr.Packets, 0, base); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProcessesTrace(t *testing.T) {
	path := writeTestPcap(t, 31)
	var buf bytes.Buffer
	err := run([]string{
		"-i", path,
		"-net", "140.112.0.0/16",
		"-low", "0.5", "-high", "1",
		"-report", "5s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "done:") {
		t.Fatalf("missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "stats t=") {
		t.Fatalf("missing periodic stats:\n%s", out)
	}
	if !strings.Contains(out, "DROP ") {
		t.Fatalf("expected drops at these tiny thresholds:\n%s", out)
	}
}

func TestRunQuietSuppressesDropLines(t *testing.T) {
	path := writeTestPcap(t, 32)
	var buf bytes.Buffer
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-low", "0.5", "-high", "1",
		"-quiet", "-report", "0s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "DROP ") {
		t.Fatal("quiet mode printed drop lines")
	}
}

func TestRunStateRoundTrip(t *testing.T) {
	path := writeTestPcap(t, 33)
	state := filepath.Join(t.TempDir(), "bitmap.state")

	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(state)
	if err != nil {
		t.Fatalf("state file not written: %v", err)
	}
	if st.Size() < 512*1024 {
		t.Fatalf("state file too small: %d bytes", st.Size())
	}
	// A second run restores the snapshot without error.
	buf.Reset()
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
}

// truncateTestPcap copies the pcap at path with its last few bytes cut
// off, leaving a torn final record — the file a SIGKILLed tcpdump leaves
// behind.
func truncateTestPcap(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.pcap")
	if err := os.WriteFile(trunc, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	return trunc
}

func TestRunSignalGracefulShutdown(t *testing.T) {
	path := writeTestPcap(t, 35)
	state := filepath.Join(t.TempDir(), "bitmap.state")
	sigc := make(chan os.Signal, 1)
	sigc <- os.Interrupt
	var buf bytes.Buffer
	err := runSig([]string{
		"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state,
	}, &buf, sigc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "signal: stopping:") {
		t.Fatalf("missing graceful-stop line:\n%s", buf.String())
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state not saved on signal: %v", err)
	}
}

func TestRunStopAfterResumesFromSnapshot(t *testing.T) {
	path := writeTestPcap(t, 36)
	state := filepath.Join(t.TempDir(), "bitmap.state")

	// First run stops gracefully partway through, as if SIGTERMed.
	var buf bytes.Buffer
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16", "-quiet",
		"-state", state, "-stop-after", "100",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "signal: stopping: 100 packets") {
		t.Fatalf("expected stop after exactly 100 packets:\n%s", buf.String())
	}

	// The restart resumes from the snapshot the first run wrote.
	buf.Reset()
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "restored state from "+state) {
		t.Fatalf("restart did not restore snapshot:\n%s", buf.String())
	}
}

func TestRunAbortFlushesAndReports(t *testing.T) {
	path := writeTestPcap(t, 37)
	trunc := truncateTestPcap(t, path)
	var buf bytes.Buffer
	err := run([]string{"-i", trunc, "-net", "140.112.0.0/16", "-quiet", "-report", "0s"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "read error after") {
		t.Fatalf("truncated capture did not surface a read error: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "aborted:") {
		t.Fatalf("aborted run missing final stats line:\n%s", out)
	}
	if strings.Contains(out, "aborted: 0 packets") {
		t.Fatalf("abort path lost the pending batch:\n%s", out)
	}
}

func TestRunPeriodicSnapshotCadence(t *testing.T) {
	path := writeTestPcap(t, 38)
	state := filepath.Join(t.TempDir(), "bitmap.state")

	saves := 0
	saveStateFn = func(l *p2pbound.Limiter, p string) error {
		saves++
		return saveState(l, p)
	}
	defer func() { saveStateFn = saveState }()

	// 15 s of trace at a 2 s snapshot interval: several periodic saves
	// plus the final one.
	var buf bytes.Buffer
	if err := run([]string{
		"-i", path, "-net", "140.112.0.0/16", "-quiet",
		"-state", state, "-snapshot", "2s",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if saves < 3 {
		t.Fatalf("expected periodic snapshots, got %d saves", saves)
	}

	// Without -snapshot only the exit save runs.
	saves = 0
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	if saves != 1 {
		t.Fatalf("expected exactly the final save, got %d", saves)
	}
}

func TestRunPeriodicSnapshotSurvivesAbort(t *testing.T) {
	path := writeTestPcap(t, 39)
	trunc := truncateTestPcap(t, path)
	state := filepath.Join(t.TempDir(), "bitmap.state")

	// The aborted run still leaves a usable snapshot behind (periodic
	// saves ran before the torn record, and the abort path saves too).
	var buf bytes.Buffer
	err := run([]string{
		"-i", trunc, "-net", "140.112.0.0/16", "-quiet",
		"-state", state, "-snapshot", "2s", "-report", "0s",
	}, &buf)
	if err == nil {
		t.Fatal("truncated capture did not surface a read error")
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("no snapshot survived the abort: %v", err)
	}

	// A restart over the intact capture restores it cleanly.
	buf.Reset()
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "restored state from "+state) {
		t.Fatalf("restart did not restore snapshot:\n%s", buf.String())
	}
}

func TestRunCorruptStateColdStarts(t *testing.T) {
	path := writeTestPcap(t, 40)
	state := filepath.Join(t.TempDir(), "bitmap.state")
	if err := os.WriteFile(state, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatalf("corrupt snapshot kept the daemon from running: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "restored state from") {
		t.Fatalf("corrupt snapshot reported as restored:\n%s", out)
	}
	if !strings.Contains(out, "done:") {
		t.Fatalf("cold-start run did not complete:\n%s", out)
	}
}

func TestRunStateAdoptFlag(t *testing.T) {
	path := writeTestPcap(t, 41)
	state := filepath.Join(t.TempDir(), "bitmap.state")

	// Save without hole punching, restore with it: the hash geometry
	// differs, so a strict restore cold-starts…
	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-holepunch", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "restored state from") {
		t.Fatalf("geometry mismatch silently restored:\n%s", buf.String())
	}

	// …while -state-adopt accepts the snapshot's geometry.
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-quiet", "-holepunch", "-state-adopt", "-state", state}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "restored state from") {
		t.Fatalf("-state-adopt did not restore:\n%s", buf.String())
	}
}

func TestSaveStateRemovesTmpOnFailure(t *testing.T) {
	limiter, err := p2pbound.New(p2pbound.Config{ClientNetwork: "10.0.0.0/8"})
	if err != nil {
		t.Fatal(err)
	}
	// The rename target is an existing directory, so the final rename
	// fails after the temp file was fully written.
	dir := t.TempDir()
	target := filepath.Join(dir, "state")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := saveState(limiter, target); err == nil {
		t.Fatal("rename over a directory succeeded")
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file leaked after failed save: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing -net accepted")
	}
	if err := run([]string{"-net", "garbage"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad network accepted")
	}
	if err := run([]string{"-net", "10.0.0.0/8", "-i", "missing.pcap"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing input accepted")
	}
	path := writeTestPcap(t, 34)
	if err := run([]string{"-net", "10.0.0.0/8", "-i", path, "-low", "5", "-high", "2"}, &bytes.Buffer{}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

// TestRunPeersFleet runs the same trace through a single limiter and a
// -peers 3 fleet: the fleet completes, reports the same total packet
// count, and — because every batch's marks replicate before the next —
// drops no flow a single box would have admitted by match.
func TestRunPeersFleet(t *testing.T) {
	path := writeTestPcap(t, 35)
	var single, fleet bytes.Buffer
	args := func(extra ...string) []string {
		return append([]string{
			"-i", path, "-net", "140.112.0.0/16",
			"-low", "0.5", "-high", "1",
			"-quiet", "-report", "0s",
		}, extra...)
	}
	if err := run(args(), &single); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-peers", "3"), &fleet); err != nil {
		t.Fatal(err)
	}
	want := regexp.MustCompile(`done: (\d+) packets`)
	ms, mf := want.FindStringSubmatch(single.String()), want.FindStringSubmatch(fleet.String())
	if ms == nil || mf == nil {
		t.Fatalf("missing done lines:\n%s\n%s", single.String(), fleet.String())
	}
	if ms[1] != mf[1] {
		t.Fatalf("fleet decided %s packets, single box %s", mf[1], ms[1])
	}
	matched := regexp.MustCompile(`(\d+) matched`)
	gm := matched.FindStringSubmatch(fleet.String())
	if gm == nil || gm[1] == "0" {
		t.Fatalf("fleet matched no inbound traffic:\n%s", fleet.String())
	}
}

// writeTenantsFile writes a -tenants subscriber file covering the test
// trace's client network, plus a quiet second subscriber, exercising
// both the bare-CIDR and the 'id CIDR' line forms.
func writeTenantsFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.txt")
	content := strings.Join([]string{
		"# subscribers, one per line",
		"campus 140.112.0.0/16",
		"",
		"10.99.0.0/16", // bare CIDR: the network doubles as the id
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunTenantsMode replays the trace through a TenantManager: the
// campus subscriber absorbs all traffic, the quiet subscriber stays
// cold, and the tenant-mode stats line replaces the single-box one.
func TestRunTenantsMode(t *testing.T) {
	path := writeTestPcap(t, 42)
	tenants := writeTenantsFile(t)
	var buf bytes.Buffer
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-tenants", tenants, "-tenant-prefix", "16",
		"-tenant-evict", "30s", // exercised, but the active tenant never idles out
		"-low", "0.5", "-high", "1",
		"-report", "5s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "multi-tenant edge: 2 subscribers (/16 each)") {
		t.Fatalf("missing tenant-mode banner:\n%s", out)
	}
	if !strings.Contains(out, "tenants=2 hydrated=1") {
		t.Fatalf("expected only the campus tenant hydrated:\n%s", out)
	}
	if !strings.Contains(out, "DROP ") {
		t.Fatalf("expected drops at these tiny thresholds:\n%s", out)
	}
	if !strings.Contains(out, "done:") {
		t.Fatalf("missing completion line:\n%s", out)
	}
	if m := regexp.MustCompile(`done: \d+ packets, \d+ dropped, (\d+) matched`).FindStringSubmatch(out); m == nil || m[1] == "0" {
		t.Fatalf("tenant mode matched no inbound traffic:\n%s", out)
	}
}

// TestRunTenantsStateRoundTrip: tenant mode writes a BMTM snapshot on
// exit and restores the whole population from it on restart.
func TestRunTenantsStateRoundTrip(t *testing.T) {
	path := writeTestPcap(t, 43)
	tenants := writeTenantsFile(t)
	state := filepath.Join(t.TempDir(), "tenants.state")
	args := []string{
		"-i", path, "-net", "140.112.0.0/16",
		"-tenants", tenants, "-tenant-prefix", "16",
		"-quiet", "-state", state,
	}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("tenant state file not written: %v", err)
	}
	buf.Reset()
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "restored state from "+state) {
		t.Fatalf("restart did not restore tenant snapshot:\n%s", buf.String())
	}
}

// TestRunTenantsErrors: malformed subscriber files and incompatible
// flag combinations are rejected up front, not discovered mid-stream.
func TestRunTenantsErrors(t *testing.T) {
	path := writeTestPcap(t, 44)
	tenants := writeTenantsFile(t)
	dir := t.TempDir()
	file := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := []string{"-i", path, "-net", "140.112.0.0/16"}
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"with-peers", []string{"-tenants", tenants, "-peers", "2"}, "mutually exclusive"},
		{"missing-file", []string{"-tenants", filepath.Join(dir, "nope.txt")}, "no such file"},
		{"empty-file", []string{"-tenants", file("empty.txt", "# only comments\n\n")}, "no subscribers"},
		{"bad-line", []string{"-tenants", file("bad.txt", "a b c\n")}, "want '[id] CIDR'"},
		{"bad-cidr", []string{"-tenants", file("cidr.txt", "campus not-a-cidr\n")}, ""},
	} {
		err := run(append(append([]string{}, base...), tc.args...), &bytes.Buffer{})
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRunPeersRejectsState: -state with -peers is unsupported, not
// silently ignored.
func TestRunPeersRejectsState(t *testing.T) {
	path := writeTestPcap(t, 36)
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-peers", "2", "-state", filepath.Join(t.TempDir(), "s.state"),
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-state is not supported with -peers") {
		t.Fatalf("want -state/-peers rejection, got %v", err)
	}
	if err := run([]string{"-i", path, "-net", "140.112.0.0/16", "-peers", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-peers 0 accepted")
	}
}

// TestRunOffloadMapPublishes: -offload-map leaves a decodable flat
// verdict map on disk whose single section was actually published (the
// trace runs 15s against the default 1s cadence, so periodic
// publication fires many times before the final one).
func TestRunOffloadMapPublishes(t *testing.T) {
	path := writeTestPcap(t, 51)
	mapPath := filepath.Join(t.TempDir(), "verdicts.map")
	var buf bytes.Buffer
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-low", "0.5", "-high", "1",
		"-quiet", "-offload-map", mapPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mapPath)
	if err != nil {
		t.Fatalf("offload map not written: %v", err)
	}
	m, err := offload.OpenBytes(data)
	if err != nil {
		t.Fatalf("offload map does not decode: %v", err)
	}
	if m.Sections() != 1 || m.PrefixBits() != 0 {
		t.Fatalf("sections=%d prefixBits=%d, want 1/0", m.Sections(), m.PrefixBits())
	}
	if !m.Section(0).Live() {
		t.Fatal("published section is not live")
	}
	if m.Section(0).Generation() == 0 {
		t.Fatal("section was never published")
	}
	if _, err := offload.NewFastPath(m); err != nil {
		t.Fatalf("map not probeable: %v", err)
	}
}

// TestRunOffloadTenantsMode: tenant mode exports one section per
// subscriber with routed directory keys; the active tenant's section
// is live, the idle (never-hydrated) one is not.
func TestRunOffloadTenantsMode(t *testing.T) {
	path := writeTestPcap(t, 52)
	tenants := writeTenantsFile(t)
	mapPath := filepath.Join(t.TempDir(), "tenants.map")
	var buf bytes.Buffer
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-tenants", tenants, "-tenant-prefix", "16",
		"-low", "0.5", "-high", "1",
		"-quiet", "-offload-map", mapPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mapPath)
	if err != nil {
		t.Fatalf("offload map not written: %v", err)
	}
	m, err := offload.OpenBytes(data)
	if err != nil {
		t.Fatalf("offload map does not decode: %v", err)
	}
	if m.Sections() != 2 || m.PrefixBits() != 16 {
		t.Fatalf("sections=%d prefixBits=%d, want 2/16", m.Sections(), m.PrefixBits())
	}
	live := 0
	for i := 0; i < m.Sections(); i++ {
		if m.Section(i).Live() {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d live sections, want exactly the campus tenant", live)
	}
}

// TestRunOffloadRejectsPeers: the offload map has a single publisher
// per section; fleet mode must refuse it rather than publish torn.
func TestRunOffloadRejectsPeers(t *testing.T) {
	path := writeTestPcap(t, 53)
	err := run([]string{
		"-i", path, "-net", "140.112.0.0/16",
		"-peers", "2", "-offload-map", filepath.Join(t.TempDir(), "m.map"),
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-offload-map is not supported with -peers") {
		t.Fatalf("want -offload-map/-peers rejection, got %v", err)
	}
}
