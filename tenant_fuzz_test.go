package p2pbound

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// fuzzTenantManager builds the small fixed manager every fuzz execution
// restores into: two /24 subscribers on a tiny filter geometry, one of
// them holding a marked flow and the other spilled, so a restore has
// live state to corrupt in every hydration state the format encodes.
func fuzzTenantManager(tb testing.TB) *TenantManager {
	tb.Helper()
	m, err := NewTenantManager(TenantManagerConfig{
		Tenant: Config{
			LowMbps: 0.1, HighMbps: 0.5,
			Vectors: 2, VectorBits: 8, HashFunctions: 2,
			RotateEvery: time.Hour, Seed: 42,
		},
		PrefixBits: 24,
	})
	if err != nil {
		tb.Fatal(err)
	}
	err = m.AddTenants([]TenantConfig{
		{ID: "alpha", Network: "10.0.0.0/24"},
		{ID: "beta", Network: "10.0.1.0/24"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	m.Process(tenantOutbound(0, 1, 0))                // alpha: hydrated, marked
	m.Process(tenantOutbound(1, 1, time.Millisecond)) // beta: marked...
	m.EvictIdle(0)
	m.Process(tenantInbound(0, 1, time.Second)) // ...and alpha rehydrated
	return m
}

// fuzzTenantSeeds returns the named seed inputs: one valid snapshot in
// each interesting shape, plus the classic corruptions. The same map
// feeds f.Add and the checked-in corpus regeneration.
func fuzzTenantSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	m := fuzzTenantManager(tb)
	var full bytes.Buffer
	if err := m.SaveTenantState(&full); err != nil {
		tb.Fatal(err)
	}
	valid := full.Bytes()

	// A snapshot with no per-tenant state at all (fresh manager).
	fresh, err := NewTenantManager(TenantManagerConfig{
		Tenant: Config{
			LowMbps: 0.1, HighMbps: 0.5,
			Vectors: 2, VectorBits: 8, HashFunctions: 2,
			RotateEvery: time.Hour, Seed: 42,
		},
		PrefixBits: 24,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := fresh.AddTenants([]TenantConfig{
		{ID: "alpha", Network: "10.0.0.0/24"},
		{ID: "beta", Network: "10.0.1.0/24"},
	}); err != nil {
		tb.Fatal(err)
	}
	var cold bytes.Buffer
	if err := fresh.SaveTenantState(&cold); err != nil {
		tb.Fatal(err)
	}

	mut := func(f func(b []byte)) []byte {
		c := append([]byte(nil), valid...)
		f(c)
		return c
	}
	return map[string][]byte{
		"valid":          valid,
		"valid-cold":     cold.Bytes(),
		"empty":          {},
		"header-only":    valid[:16],
		"bad-magic":      mut(func(b []byte) { b[0] ^= 0xff }),
		"bad-version":    mut(func(b []byte) { b[4] = 0x7f }),
		"bad-count":      mut(func(b []byte) { b[12] = 0xee }),
		"flipped-body":   mut(func(b []byte) { b[len(b)/2] ^= 0x20 }),
		"flipped-crc":    mut(func(b []byte) { b[len(b)-2] ^= 0x01 }),
		"truncated-mid":  valid[:len(valid)*2/3],
		"truncated-tail": valid[:len(valid)-3],
	}
}

// FuzzTenantSnapshot pins the restore contract on arbitrary input:
// RestoreTenantState either succeeds, or fails with exactly one of the
// typed sentinels — and a failure leaves the manager byte-for-byte
// untouched: stats unchanged, previously marked flows still matching,
// and a subsequent save identical to one taken before the attempt.
func FuzzTenantSnapshot(f *testing.F) {
	for _, data := range fuzzTenantSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzTenantManager(t)
		var before bytes.Buffer
		if err := m.SaveTenantState(&before); err != nil {
			t.Fatal(err)
		}
		statsBefore := m.Stats()

		err := m.RestoreTenantState(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTenantSnapshotMagic) &&
				!errors.Is(err, ErrTenantSnapshotVersion) &&
				!errors.Is(err, ErrTenantSnapshotCorrupt) &&
				!errors.Is(err, ErrTenantSnapshotChecksum) &&
				!errors.Is(err, ErrUnknownTenant) &&
				!errors.Is(err, ErrGeometryMismatch) {
				t.Fatalf("untyped restore error: %v", err)
			}
			if got := m.Stats(); got != statsBefore {
				t.Fatalf("failed restore mutated stats: %+v -> %+v", statsBefore, got)
			}
			var after bytes.Buffer
			if err := m.SaveTenantState(&after); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before.Bytes(), after.Bytes()) {
				t.Fatal("failed restore mutated tenant state")
			}
		}
		// Whatever happened, the manager must still be coherent: the
		// flow alpha marked before the restore attempt is only required
		// to survive a *failed* restore (a successful one installs the
		// input's own state, which also carries the mark for our seeds
		// but need not for arbitrary accepted inputs), and processing
		// must not panic either way.
		if err != nil {
			if got := m.Process(tenantInbound(0, 1, 2*time.Second)); got != Pass {
				t.Fatalf("marked flow lost after failed restore: %v", got)
			}
		} else {
			m.Process(tenantInbound(0, 1, 2*time.Second))
			// An accepted stream must itself round-trip.
			var again bytes.Buffer
			if err := m.SaveTenantState(&again); err != nil {
				t.Fatalf("save after accepted restore: %v", err)
			}
			if err := m.RestoreTenantState(bytes.NewReader(again.Bytes())); err != nil {
				t.Fatalf("round-trip of accepted restore: %v", err)
			}
		}
	})
}

// TestTenantFuzzSeedsDecode runs every seed through the fuzz body once
// under plain `go test`, so the corpus is exercised even where the fuzz
// engine never runs.
func TestTenantFuzzSeedsDecode(t *testing.T) {
	for name, data := range fuzzTenantSeeds(t) {
		m := fuzzTenantManager(t)
		err := m.RestoreTenantState(bytes.NewReader(data))
		switch name {
		case "valid", "valid-cold":
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
		default:
			if err == nil {
				t.Errorf("%s: corrupt seed accepted", name)
			}
		}
	}
}

// TestRegenTenantFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzTenantSnapshot, mirroring the f.Add seeds so CI
// machines — which run seeds but not the mutation engine — exercise
// every snapshot shape and the classic corruptions from a cold
// checkout. Run with
//
//	P2PBOUND_REGEN_CORPUS=1 go test -run TestRegenTenantFuzzCorpus .
//
// after changing the tenant snapshot format, and commit the result.
func TestRegenTenantFuzzCorpus(t *testing.T) {
	if os.Getenv("P2PBOUND_REGEN_CORPUS") == "" {
		t.Skip("set P2PBOUND_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTenantSnapshot")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fuzzTenantSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
