package p2pbound

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"p2pbound/internal/metrics"
	"p2pbound/internal/offload"
	"p2pbound/internal/packet"
)

// ShedPolicy selects what a saturated Pipeline does with a packet whose
// shard ring is full. Whatever the choice, the capture loop never
// stalls indefinitely behind a slow shard by accident: overload
// degrades by explicit policy.
type ShedPolicy int

const (
	// ShedBlock applies backpressure: Submit and SubmitBatch block until
	// the shard worker frees a slot. The default — lossless, but a
	// saturated shard transfers its stall to the producer.
	ShedBlock ShedPolicy = iota
	// ShedFailOpen passes overflow packets undecided: the shed packet is
	// treated as admitted and counted in Stats.ShedPassed. The safe
	// choice when dropping legitimate traffic is worse than briefly
	// under-enforcing the P2P bound.
	ShedFailOpen
	// ShedFailClosed drops overflow packets: the shed packet is treated
	// as denied and counted in Stats.ShedDropped. The safe choice when
	// an attacker could saturate the pipeline to smuggle traffic past
	// the filter.
	ShedFailClosed
)

// String names the policy.
func (s ShedPolicy) String() string {
	switch s {
	case ShedBlock:
		return "block"
	case ShedFailOpen:
		return "fail-open"
	case ShedFailClosed:
		return "fail-closed"
	default:
		return fmt.Sprintf("shedpolicy(%d)", int(s))
	}
}

// PipelineConfig parameterizes a Pipeline. The zero value of every field
// selects a sensible default.
type PipelineConfig struct {
	// Shards is the number of independent Limiter shards, each owned by
	// one worker goroutine. Default: GOMAXPROCS.
	Shards int
	// RingSize is the per-shard ring-buffer capacity in packets,
	// rounded up to a power of two. Default 2048. A full ring exerts
	// backpressure: Submit blocks until the shard worker frees a slot.
	RingSize int
	// BatchSize is the maximum number of packets a shard worker drains
	// and decides per wakeup. Default 256.
	BatchSize int
	// OnOverload selects the shed policy for packets arriving at a full
	// shard ring. Default ShedBlock (backpressure).
	OnOverload ShedPolicy

	// OffloadEvery, when positive, allocates a kernel-offload flat map
	// (one section per shard — see OffloadMap) and has each shard worker
	// republish its section after every OffloadEvery batches, so the
	// exported verdict map lags the live filters by a bounded number of
	// batches. Zero disables the offload tier.
	OffloadEvery int

	// testGate, when non-nil, holds every shard worker at startup until
	// the channel is closed. Chaos tests use it to saturate the rings
	// deterministically; it must be closed before Close is called.
	testGate <-chan struct{}
}

// Pipeline is the concurrent driver for a ShardedLimiter: one worker
// goroutine per shard, each fed by a fixed-capacity single-consumer ring
// buffer. Producers route packets to their shard ring (both directions
// of a connection always reach the same shard, so per-shard decisions
// are identical to running that shard's Limiter sequentially); workers
// drain their ring in batches through Limiter.ProcessBatch.
//
// Multiple goroutines may Submit/SubmitBatch concurrently — the producer
// side of each ring is mutex-serialized — but per-shard packet order
// then follows arrival order, so keeping each flow's packets on one
// producer preserves its timestamp order. Verdict counts are exactly
// those of feeding the same per-shard sequences through ShardedLimiter
// sequentially; concurrency changes scheduling, never decisions.
//
// Decisions are asynchronous. Callers that need per-packet verdicts use
// the Limiter or ShardedLimiter directly; the Pipeline is the shape for
// bulk replay and for deployments where the verdict is applied by the
// shard worker itself (e.g. one NIC queue per shard).
type Pipeline struct {
	sharded *ShardedLimiter
	// clientNet is the parsed ClientNetwork, kept so the pcap ingestion
	// entry points can classify packet direction at decode time.
	clientNet packet.Network
	rings     []*ring
	scratch   sync.Pool // *routeScratch
	wg        sync.WaitGroup
	closed    atomic.Bool //p2p:atomic
	policy    ShedPolicy
	gate      <-chan struct{}

	// offloadMap, when non-nil, is the flat verdict map the shard
	// workers publish into every offloadEvery batches (section index ==
	// shard index). Readers attach via OffloadMap at any time.
	offloadMap   *offload.Map
	offloadEvery int

	// Verdict and shed counters are striped per shard (cache-line-padded
	// atomic cells), so concurrent shard workers never contend on a
	// counter cache line. Shed counts packets a full ring turned away by
	// policy; they were never decided by a Limiter and appear in no
	// per-shard limiter counter.
	passed      *metrics.Counter
	dropped     *metrics.Counter
	shedPassed  *metrics.Counter
	shedDropped *metrics.Counter
}

// NewPipeline builds the sharded limiter and starts one worker per
// shard. Close must be called to stop the workers.
func NewPipeline(cfg Config, pcfg PipelineConfig) (*Pipeline, error) {
	shards := pcfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sharded, err := NewSharded(cfg, shards)
	if err != nil {
		return nil, err
	}
	size := pcfg.RingSize
	if size == 0 {
		size = 2048
	}
	if size < 2 {
		size = 2
	}
	// Round up to a power of two so ring indices wrap with a mask.
	for size&(size-1) != 0 {
		size += size & -size
	}
	batch := pcfg.BatchSize
	if batch <= 0 {
		batch = 256
	}
	clientNet, err := packet.ParseNetwork(cfg.ClientNetwork)
	if err != nil {
		return nil, fmt.Errorf("p2pbound: %w", err)
	}
	p := &Pipeline{
		sharded:     sharded,
		clientNet:   clientNet,
		rings:       make([]*ring, shards),
		policy:      pcfg.OnOverload,
		gate:        pcfg.testGate,
		passed:      metrics.NewCounter(shards),
		dropped:     metrics.NewCounter(shards),
		shedPassed:  metrics.NewCounter(shards),
		shedDropped: metrics.NewCounter(shards),
	}
	if pcfg.OffloadEvery > 0 {
		om, err := sharded.NewOffloadMap()
		if err != nil {
			return nil, err
		}
		p.offloadMap = om
		p.offloadEvery = pcfg.OffloadEvery
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.attachPipeline(p)
	}
	p.scratch.New = func() any {
		sc := &routeScratch{byShard: make([][]Packet, shards)}
		for i := range sc.byShard {
			sc.byShard[i] = make([]Packet, 0, submitChunk)
		}
		return sc
	}
	for i := range p.rings {
		p.rings[i] = newRing(size)
	}
	p.wg.Add(shards)
	for i := 0; i < shards; i++ {
		go p.worker(i, batch)
	}
	return p, nil
}

// Shards returns the number of shard workers.
func (p *Pipeline) Shards() int { return p.sharded.Shards() }

// Submit routes one packet to its shard ring. Under the default
// ShedBlock policy it blocks while the ring is full; under ShedFailOpen
// or ShedFailClosed a packet arriving at a full ring is shed by policy
// and counted instead of enqueued. It must not be called after Close.
func (p *Pipeline) Submit(pkt Packet) {
	if p.closed.Load() {
		panic("p2pbound: Submit on closed Pipeline")
	}
	sh := p.sharded.ShardOf(pkt)
	r := p.rings[sh]
	if p.policy == ShedBlock {
		r.mu.Lock()
		r.push(pkt)
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	ok := r.tryPush(pkt)
	r.mu.Unlock()
	if !ok {
		p.shed(sh, 1)
	}
}

// TrySubmit attempts a non-blocking enqueue, regardless of the shed
// policy. It reports false when the shard ring is full, in which case
// the packet was not taken and nothing was counted — the caller owns the
// overflow decision (retry, spill to a secondary queue, apply its own
// verdict). It must not be called after Close.
func (p *Pipeline) TrySubmit(pkt Packet) bool {
	if p.closed.Load() {
		panic("p2pbound: TrySubmit on closed Pipeline")
	}
	r := p.rings[p.sharded.ShardOf(pkt)]
	r.mu.Lock()
	ok := r.tryPush(pkt)
	r.mu.Unlock()
	return ok
}

// shed records n packets bound for shard sh turned away by the overload
// policy.
func (p *Pipeline) shed(sh, n int) {
	if n <= 0 {
		return
	}
	if p.policy == ShedFailOpen {
		p.shedPassed.Add(sh, int64(n))
	} else {
		p.shedDropped.Add(sh, int64(n))
	}
}

// submitChunk bounds the staging buffer SubmitBatch classifies into
// before publishing to the shard rings.
const submitChunk = 8192

// SubmitBatch routes a slice of packets. Instead of locking a ring per
// packet it classifies a chunk into per-shard staging buffers and then
// publishes each shard's group with one lock acquisition and one ring
// cursor update — the amortization that lets a single producer outrun
// several shard workers. Packets must be in non-decreasing timestamp
// order (per producer, as with Submit). Under a non-blocking shed
// policy, packets that do not fit a full shard ring are shed by policy
// and counted instead of enqueued. It must not be called after Close.
func (p *Pipeline) SubmitBatch(pkts []Packet) {
	if p.closed.Load() {
		panic("p2pbound: SubmitBatch on closed Pipeline")
	}
	sc := p.scratch.Get().(*routeScratch)
	for len(pkts) > 0 {
		n := len(pkts)
		if n > submitChunk {
			n = submitChunk
		}
		chunk := pkts[:n]
		pkts = pkts[n:]
		for i := range sc.byShard {
			sc.byShard[i] = sc.byShard[i][:0]
		}
		for i := range chunk {
			sh := p.sharded.ShardOf(chunk[i])
			sc.byShard[sh] = append(sc.byShard[sh], chunk[i])
		}
		for sh, group := range sc.byShard {
			if len(group) == 0 {
				continue
			}
			r := p.rings[sh]
			r.mu.Lock()
			if p.policy == ShedBlock {
				r.pushAll(group)
				r.mu.Unlock()
				continue
			}
			accepted := r.tryPushAll(group)
			r.mu.Unlock()
			p.shed(sh, len(group)-accepted)
		}
	}
	p.scratch.Put(sc)
}

// routeScratch is the reusable per-SubmitBatch staging area, pooled so
// steady-state batch submission does not allocate.
type routeScratch struct {
	byShard [][]Packet
}

// Drain blocks until every packet submitted before the call has been
// decided. Concurrent Submits are allowed; packets submitted while Drain
// is waiting may or may not be covered.
func (p *Pipeline) Drain() {
	for _, r := range p.rings {
		target := r.tail.Load()
		for spin := 0; r.done.Load() < target; spin++ {
			idleWait(spin)
		}
	}
}

// Close drains the rings, stops every worker, and waits for them to
// exit. No Submit or SubmitBatch may be issued after (or concurrently
// with) Close. Close is idempotent.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		p.wg.Wait()
		return
	}
	p.wg.Wait()
}

// Verdicts returns the number of passed and dropped packets decided so
// far. Shed packets were never decided and are reported separately by
// Shed. It is safe to call at any time, including concurrently with
// submission.
func (p *Pipeline) Verdicts() (passed, dropped int64) {
	return p.passed.Value(), p.dropped.Value()
}

// Shed returns the number of packets turned away undecided by the
// overload policy: fail-open sheds count as passed, fail-closed sheds as
// dropped. Both are zero under ShedBlock. Safe to call at any time.
func (p *Pipeline) Shed() (passed, dropped int64) {
	return p.shedPassed.Value(), p.shedDropped.Value()
}

// Stats sums the per-shard activity counters and adds the pipeline's
// shed counts (Stats.ShedPassed / Stats.ShedDropped — packets the
// overload policy turned away without a Limiter decision). Every counter
// is an atomic, so Stats is safe to call at any time, including while
// workers are deciding packets; a live snapshot is a consistent lower
// bound per counter, but cross-counter identities (matched + unmatched
// == inbound) are only guaranteed on a quiescent pipeline — after Close,
// or after a Drain with no concurrent submissions.
func (p *Pipeline) Stats() Stats {
	s := p.sharded.Stats()
	s.ShedPassed = p.shedPassed.Value()
	s.ShedDropped = p.shedDropped.Value()
	return s
}

// MemoryBytes returns the total bitmap memory across shards.
func (p *Pipeline) MemoryBytes() int { return p.sharded.MemoryBytes() }

// ExpiryHorizon returns the shared T_e of the shards.
func (p *Pipeline) ExpiryHorizon() time.Duration { return p.sharded.ExpiryHorizon() }

// worker owns shard sh: it drains the shard ring in batches, decides
// them on the shard Limiter, and publishes verdict counts. Batches flow
// through Limiter.ProcessBatch, so each core.BatchChunk-sized chunk gets
// the two-pass hash/probe treatment (pass A overlaps the DRAM fetches
// for the whole chunk, pass B decides against warm cache lines — see
// DESIGN.md §12). The `done` cursor advances only after the batch is
// decided, which is what Drain synchronizes on.
//
//p2p:confined pipeworker
func (p *Pipeline) worker(sh int, batchSize int) {
	defer p.wg.Done()
	if p.gate != nil {
		<-p.gate
	}
	r := p.rings[sh]
	limiter := p.sharded.shards[sh]
	batch := make([]Packet, 0, batchSize)
	verdicts := make([]Decision, 0, batchSize)
	spin := 0
	sinceOffload := 0
	for {
		batch = r.take(batch[:0], batchSize)
		if len(batch) == 0 {
			if p.closed.Load() {
				// Re-check after observing closed: any Submit that
				// returned before Close is visible to this take.
				if batch = r.take(batch[:0], batchSize); len(batch) == 0 {
					if p.offloadMap != nil {
						// Final publish so the exported map reflects every
						// decided packet once the pipeline is quiescent.
						_ = p.sharded.PublishOffloadShard(p.offloadMap, sh)
					}
					return
				}
			} else {
				idleWait(spin)
				spin++
				continue
			}
		}
		spin = 0
		verdicts = limiter.ProcessBatch(batch, verdicts[:0])
		if p.offloadMap != nil {
			if sinceOffload++; sinceOffload >= p.offloadEvery {
				// Between batches, on the shard's owning goroutine — the
				// single-writer position Section.Publish requires. A
				// publish error (impossible for a geometry-matched map)
				// only leaves the section stale, which escalation covers.
				_ = p.sharded.PublishOffloadShard(p.offloadMap, sh)
				sinceOffload = 0
			}
		}
		var pass, drop int64
		for _, v := range verdicts {
			if v == Pass {
				pass++
			} else {
				drop++
			}
		}
		p.passed.Add(sh, pass)
		p.dropped.Add(sh, drop)
		r.done.Add(uint64(len(batch)))
	}
}

// ring is a fixed-capacity single-consumer packet queue. The consumer
// side is lock-free; the producer side is serialized by mu (uncontended
// in the common single-producer deployment). tail is the next slot to
// write, head the next to read, done the count of decided packets.
type ring struct {
	buf  []Packet
	mask uint64
	mu   sync.Mutex

	// The three cursors live on separate cache lines so the producer's
	// tail stores do not false-share with the consumer's head/done.
	tail atomic.Uint64 //p2p:atomic
	_    [7]uint64
	head atomic.Uint64 //p2p:atomic
	_    [7]uint64
	done atomic.Uint64 //p2p:atomic
}

func newRing(size int) *ring {
	return &ring{
		buf:  make([]Packet, size),
		mask: uint64(size - 1),
	}
}

// push appends one packet, spinning while the ring is full. Callers hold
// r.mu.
func (r *ring) push(p Packet) {
	t := r.tail.Load()
	for spin := 0; t-r.head.Load() >= uint64(len(r.buf)); spin++ {
		idleWait(spin)
	}
	r.buf[t&r.mask] = p
	r.tail.Store(t + 1)
}

// tryPush appends one packet if the ring has a free slot, reporting
// whether it did. Callers hold r.mu.
func (r *ring) tryPush(p Packet) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = p
	r.tail.Store(t + 1)
	return true
}

// tryPushAll appends as much of the group as fits without waiting and
// returns the count accepted; the caller sheds the remainder. Callers
// hold r.mu.
func (r *ring) tryPushAll(pkts []Packet) int {
	t := r.tail.Load()
	free := uint64(len(r.buf)) - (t - r.head.Load())
	n := uint64(len(pkts))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = pkts[i]
	}
	if n > 0 {
		r.tail.Store(t + n)
	}
	return int(n)
}

// pushAll appends a group of packets, publishing the tail cursor once
// per contiguous free span instead of once per packet. When the group
// exceeds the free space it publishes what fits and waits for the
// consumer, so oversized groups drain incrementally rather than
// deadlocking. Callers hold r.mu.
func (r *ring) pushAll(pkts []Packet) {
	t := r.tail.Load()
	for len(pkts) > 0 {
		free := uint64(len(r.buf)) - (t - r.head.Load())
		for spin := 0; free == 0; spin++ {
			idleWait(spin)
			free = uint64(len(r.buf)) - (t - r.head.Load())
		}
		n := uint64(len(pkts))
		if n > free {
			n = free
		}
		for i := uint64(0); i < n; i++ {
			r.buf[(t+i)&r.mask] = pkts[i]
		}
		t += n
		r.tail.Store(t)
		pkts = pkts[n:]
	}
}

// take moves up to max available packets into dst. Only the consumer
// goroutine (a shard worker) may call it. Slots are released (head
// advanced) as soon as the packets are copied out; completion is
// published separately via done.
//
//p2p:confined pipeworker
func (r *ring) take(dst []Packet, max int) []Packet {
	h := r.head.Load()
	avail := r.tail.Load() - h
	if avail == 0 {
		return dst
	}
	if avail > uint64(max) {
		avail = uint64(max)
	}
	// The span wraps the ring at most once, so two bulk copies replace
	// the per-packet masked loop — memmove keeps the drain cost per
	// packet flat as BatchSize grows.
	lo := h & r.mask
	n := uint64(len(r.buf)) - lo
	if n > avail {
		n = avail
	}
	dst = append(dst, r.buf[lo:lo+n]...)
	dst = append(dst, r.buf[:avail-n]...)
	r.head.Store(h + avail)
	return dst
}

// idleWait is the shared backoff: yield the processor for a while, then
// sleep briefly so an idle pipeline does not burn a core.
func idleWait(spin int) {
	if spin < 128 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}
