package p2pbound

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PipelineConfig parameterizes a Pipeline. The zero value of every field
// selects a sensible default.
type PipelineConfig struct {
	// Shards is the number of independent Limiter shards, each owned by
	// one worker goroutine. Default: GOMAXPROCS.
	Shards int
	// RingSize is the per-shard ring-buffer capacity in packets,
	// rounded up to a power of two. Default 2048. A full ring exerts
	// backpressure: Submit blocks until the shard worker frees a slot.
	RingSize int
	// BatchSize is the maximum number of packets a shard worker drains
	// and decides per wakeup. Default 256.
	BatchSize int
}

// Pipeline is the concurrent driver for a ShardedLimiter: one worker
// goroutine per shard, each fed by a fixed-capacity single-consumer ring
// buffer. Producers route packets to their shard ring (both directions
// of a connection always reach the same shard, so per-shard decisions
// are identical to running that shard's Limiter sequentially); workers
// drain their ring in batches through Limiter.ProcessBatch.
//
// Multiple goroutines may Submit/SubmitBatch concurrently — the producer
// side of each ring is mutex-serialized — but per-shard packet order
// then follows arrival order, so keeping each flow's packets on one
// producer preserves its timestamp order. Verdict counts are exactly
// those of feeding the same per-shard sequences through ShardedLimiter
// sequentially; concurrency changes scheduling, never decisions.
//
// Decisions are asynchronous. Callers that need per-packet verdicts use
// the Limiter or ShardedLimiter directly; the Pipeline is the shape for
// bulk replay and for deployments where the verdict is applied by the
// shard worker itself (e.g. one NIC queue per shard).
type Pipeline struct {
	sharded *ShardedLimiter
	rings   []*ring
	scratch sync.Pool // *routeScratch
	wg      sync.WaitGroup
	closed  atomic.Bool

	passed  atomic.Int64
	dropped atomic.Int64
}

// NewPipeline builds the sharded limiter and starts one worker per
// shard. Close must be called to stop the workers.
func NewPipeline(cfg Config, pcfg PipelineConfig) (*Pipeline, error) {
	shards := pcfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sharded, err := NewSharded(cfg, shards)
	if err != nil {
		return nil, err
	}
	size := pcfg.RingSize
	if size == 0 {
		size = 2048
	}
	if size < 2 {
		size = 2
	}
	// Round up to a power of two so ring indices wrap with a mask.
	for size&(size-1) != 0 {
		size += size & -size
	}
	batch := pcfg.BatchSize
	if batch <= 0 {
		batch = 256
	}
	p := &Pipeline{
		sharded: sharded,
		rings:   make([]*ring, shards),
	}
	p.scratch.New = func() any {
		sc := &routeScratch{byShard: make([][]Packet, shards)}
		for i := range sc.byShard {
			sc.byShard[i] = make([]Packet, 0, submitChunk)
		}
		return sc
	}
	for i := range p.rings {
		p.rings[i] = newRing(size)
	}
	p.wg.Add(shards)
	for i := 0; i < shards; i++ {
		go p.worker(i, batch)
	}
	return p, nil
}

// Shards returns the number of shard workers.
func (p *Pipeline) Shards() int { return p.sharded.Shards() }

// Submit routes one packet to its shard ring, blocking while the ring is
// full. It must not be called after Close.
func (p *Pipeline) Submit(pkt Packet) {
	if p.closed.Load() {
		panic("p2pbound: Submit on closed Pipeline")
	}
	r := p.rings[p.sharded.ShardOf(pkt)]
	r.mu.Lock()
	r.push(pkt)
	r.mu.Unlock()
}

// submitChunk bounds the staging buffer SubmitBatch classifies into
// before publishing to the shard rings.
const submitChunk = 8192

// SubmitBatch routes a slice of packets. Instead of locking a ring per
// packet it classifies a chunk into per-shard staging buffers and then
// publishes each shard's group with one lock acquisition and one ring
// cursor update — the amortization that lets a single producer outrun
// several shard workers. Packets must be in non-decreasing timestamp
// order (per producer, as with Submit). It must not be called after
// Close.
func (p *Pipeline) SubmitBatch(pkts []Packet) {
	if p.closed.Load() {
		panic("p2pbound: SubmitBatch on closed Pipeline")
	}
	sc := p.scratch.Get().(*routeScratch)
	for len(pkts) > 0 {
		n := len(pkts)
		if n > submitChunk {
			n = submitChunk
		}
		chunk := pkts[:n]
		pkts = pkts[n:]
		for i := range sc.byShard {
			sc.byShard[i] = sc.byShard[i][:0]
		}
		for i := range chunk {
			sh := p.sharded.ShardOf(chunk[i])
			sc.byShard[sh] = append(sc.byShard[sh], chunk[i])
		}
		for sh, group := range sc.byShard {
			if len(group) == 0 {
				continue
			}
			r := p.rings[sh]
			r.mu.Lock()
			r.pushAll(group)
			r.mu.Unlock()
		}
	}
	p.scratch.Put(sc)
}

// routeScratch is the reusable per-SubmitBatch staging area, pooled so
// steady-state batch submission does not allocate.
type routeScratch struct {
	byShard [][]Packet
}

// Drain blocks until every packet submitted before the call has been
// decided. Concurrent Submits are allowed; packets submitted while Drain
// is waiting may or may not be covered.
func (p *Pipeline) Drain() {
	for _, r := range p.rings {
		target := r.tail.Load()
		for spin := 0; r.done.Load() < target; spin++ {
			idleWait(spin)
		}
	}
}

// Close drains the rings, stops every worker, and waits for them to
// exit. No Submit or SubmitBatch may be issued after (or concurrently
// with) Close. Close is idempotent.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		p.wg.Wait()
		return
	}
	p.wg.Wait()
}

// Verdicts returns the number of passed and dropped packets decided so
// far. It is safe to call at any time, including concurrently with
// submission.
func (p *Pipeline) Verdicts() (passed, dropped int64) {
	return p.passed.Load(), p.dropped.Load()
}

// Stats sums the per-shard activity counters. The shard limiters are
// owned by the worker goroutines, so Stats must only be called when the
// pipeline is quiescent: after Close, or after a Drain with no
// concurrent submissions.
func (p *Pipeline) Stats() Stats { return p.sharded.Stats() }

// MemoryBytes returns the total bitmap memory across shards.
func (p *Pipeline) MemoryBytes() int { return p.sharded.MemoryBytes() }

// ExpiryHorizon returns the shared T_e of the shards.
func (p *Pipeline) ExpiryHorizon() time.Duration { return p.sharded.ExpiryHorizon() }

// worker owns shard sh: it drains the shard ring in batches, decides
// them on the shard Limiter, and publishes verdict counts. The `done`
// cursor advances only after the batch is decided, which is what Drain
// synchronizes on.
func (p *Pipeline) worker(sh int, batchSize int) {
	defer p.wg.Done()
	r := p.rings[sh]
	limiter := p.sharded.shards[sh]
	batch := make([]Packet, 0, batchSize)
	verdicts := make([]Decision, 0, batchSize)
	spin := 0
	for {
		batch = r.take(batch[:0], batchSize)
		if len(batch) == 0 {
			if p.closed.Load() {
				// Re-check after observing closed: any Submit that
				// returned before Close is visible to this take.
				if batch = r.take(batch[:0], batchSize); len(batch) == 0 {
					return
				}
			} else {
				idleWait(spin)
				spin++
				continue
			}
		}
		spin = 0
		verdicts = limiter.ProcessBatch(batch, verdicts[:0])
		var pass, drop int64
		for _, v := range verdicts {
			if v == Pass {
				pass++
			} else {
				drop++
			}
		}
		p.passed.Add(pass)
		p.dropped.Add(drop)
		r.done.Add(uint64(len(batch)))
	}
}

// ring is a fixed-capacity single-consumer packet queue. The consumer
// side is lock-free; the producer side is serialized by mu (uncontended
// in the common single-producer deployment). tail is the next slot to
// write, head the next to read, done the count of decided packets.
type ring struct {
	buf  []Packet
	mask uint64
	mu   sync.Mutex

	// The three cursors live on separate cache lines so the producer's
	// tail stores do not false-share with the consumer's head/done.
	tail atomic.Uint64
	_    [7]uint64
	head atomic.Uint64
	_    [7]uint64
	done atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{
		buf:  make([]Packet, size),
		mask: uint64(size - 1),
	}
}

// push appends one packet, spinning while the ring is full. Callers hold
// r.mu.
func (r *ring) push(p Packet) {
	t := r.tail.Load()
	for spin := 0; t-r.head.Load() >= uint64(len(r.buf)); spin++ {
		idleWait(spin)
	}
	r.buf[t&r.mask] = p
	r.tail.Store(t + 1)
}

// pushAll appends a group of packets, publishing the tail cursor once
// per contiguous free span instead of once per packet. When the group
// exceeds the free space it publishes what fits and waits for the
// consumer, so oversized groups drain incrementally rather than
// deadlocking. Callers hold r.mu.
func (r *ring) pushAll(pkts []Packet) {
	t := r.tail.Load()
	for len(pkts) > 0 {
		free := uint64(len(r.buf)) - (t - r.head.Load())
		for spin := 0; free == 0; spin++ {
			idleWait(spin)
			free = uint64(len(r.buf)) - (t - r.head.Load())
		}
		n := uint64(len(pkts))
		if n > free {
			n = free
		}
		for i := uint64(0); i < n; i++ {
			r.buf[(t+i)&r.mask] = pkts[i]
		}
		t += n
		r.tail.Store(t)
		pkts = pkts[n:]
	}
}

// take moves up to max available packets into dst. Only the consumer
// goroutine may call it. Slots are released (head advanced) as soon as
// the packets are copied out; completion is published separately via
// done.
func (r *ring) take(dst []Packet, max int) []Packet {
	h := r.head.Load()
	avail := r.tail.Load() - h
	if avail == 0 {
		return dst
	}
	if avail > uint64(max) {
		avail = uint64(max)
	}
	for i := uint64(0); i < avail; i++ {
		dst = append(dst, r.buf[(h+i)&r.mask])
	}
	r.head.Store(h + avail)
	return dst
}

// idleWait is the shared backoff: yield the processor for a while, then
// sleep briefly so an idle pipeline does not burn a core.
func idleWait(spin int) {
	if spin < 128 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}
