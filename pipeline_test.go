package p2pbound

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"p2pbound/internal/packet"
	"p2pbound/internal/trace"
)

// publicTrace renders a seeded synthetic trace as public Packets.
func publicTrace(t testing.TB, dur time.Duration, scale float64, seed uint64) []Packet {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig(dur, scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	return toPublic(tr.Packets)
}

func toPublic(pkts []packet.Packet) []Packet {
	out := make([]Packet, len(pkts))
	for i := range pkts {
		p := &pkts[i]
		out[i] = Packet{
			Timestamp: p.TS,
			Protocol:  Protocol(p.Pair.Proto),
			SrcAddr:   addrToNetip(p.Pair.SrcAddr), SrcPort: p.Pair.SrcPort,
			DstAddr: addrToNetip(p.Pair.DstAddr), DstPort: p.Pair.DstPort,
			Size: p.Len,
		}
	}
	return out
}

const testNet = "140.112.0.0/16"

// TestBatchMatchesSequential pins Limiter.ProcessBatch to Process: same
// seeded trace, same config, chunked batches — every verdict and every
// counter must agree exactly.
func TestBatchMatchesSequential(t *testing.T) {
	pkts := publicTrace(t, 20*time.Second, 0.02, 11)
	cfg := Config{ClientNetwork: testNet, LowMbps: 0.1, HighMbps: 0.5, Seed: 3}

	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	want := make([]Decision, 0, len(pkts))
	for i := range pkts {
		want = append(want, seq.Process(pkts[i]))
	}

	got := make([]Decision, 0, len(pkts))
	for lo := 0; lo < len(pkts); lo += 193 { // deliberately odd chunking
		hi := lo + 193
		if hi > len(pkts) {
			hi = len(pkts)
		}
		got = bat.ProcessBatch(pkts[lo:hi], got)
	}

	if len(got) != len(want) {
		t.Fatalf("verdict count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: batch %v, sequential %v", i, got[i], want[i])
		}
	}
	if seq.Stats() != bat.Stats() {
		t.Fatalf("stats diverged:\nsequential %+v\nbatch      %+v", seq.Stats(), bat.Stats())
	}
}

// TestPipelineMatchesSequentialSharded is the pipeline's differential
// anchor: replaying the same seeded trace through a sequential
// ShardedLimiter and through the concurrent Pipeline (same config, same
// shard count) must produce identical aggregate stats and verdict
// counts — concurrency must change scheduling, never decisions.
func TestPipelineMatchesSequentialSharded(t *testing.T) {
	pkts := publicTrace(t, 20*time.Second, 0.02, 29)
	cfg := Config{ClientNetwork: testNet, LowMbps: 0.05, HighMbps: 0.2, Seed: 9}
	const shards = 4

	seq, err := NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	var seqPassed, seqDropped int64
	for i := range pkts {
		if seq.Process(pkts[i]) == Pass {
			seqPassed++
		} else {
			seqDropped++
		}
	}

	pipe, err := NewPipeline(cfg, PipelineConfig{Shards: shards, RingSize: 512, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SubmitBatch(pkts)
	pipe.Drain()
	passed, dropped := pipe.Verdicts()
	pipe.Close()

	if passed != seqPassed || dropped != seqDropped {
		t.Fatalf("verdict counts diverged: pipeline pass=%d drop=%d, sequential pass=%d drop=%d",
			passed, dropped, seqPassed, seqDropped)
	}
	if got, want := pipe.Stats(), seq.Stats(); got != want {
		t.Fatalf("stats diverged:\npipeline   %+v\nsequential %+v", got, want)
	}
}

// TestPipelineMatchesSingleLimiterAllHit compares the Pipeline against a
// single sequential Limiter on a trace where every inbound packet is the
// prompt reply to an outbound one. Bloom filters have no false
// negatives, so every inbound packet is a hit in both systems regardless
// of shard partitioning, and the verdicts and match counts must agree
// exactly. (On general traffic the sharded meters partition the RED
// thresholds, so single-vs-sharded is an approximation by design; see
// ShardedLimiter.)
func TestPipelineMatchesSingleLimiterAllHit(t *testing.T) {
	client := netip.MustParseAddr("140.112.3.4")
	var pkts []Packet
	ts := time.Duration(0)
	for i := 0; i < 5000; i++ {
		remote := netip.AddrFrom4([4]byte{9, 8, byte(i >> 8), byte(i)})
		sport := uint16(20000 + i%30000)
		out := Packet{
			Timestamp: ts,
			Protocol:  TCP,
			SrcAddr:   client, SrcPort: sport,
			DstAddr: remote, DstPort: 443,
			Size: 1400,
		}
		in := Packet{
			Timestamp: ts + time.Millisecond,
			Protocol:  TCP,
			SrcAddr:   remote, SrcPort: 443,
			DstAddr: client, DstPort: sport,
			Size: 1400,
		}
		pkts = append(pkts, out, in)
		ts += 3 * time.Millisecond
	}

	cfg := Config{ClientNetwork: testNet, LowMbps: 0.001, HighMbps: 0.002, Seed: 5}
	single, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var passed, dropped int64
	for i := range pkts {
		if single.Process(pkts[i]) == Pass {
			passed++
		} else {
			dropped++
		}
	}

	pipe, err := NewPipeline(cfg, PipelineConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SubmitBatch(pkts)
	pipe.Close()
	pPassed, pDropped := pipe.Verdicts()

	if pPassed != passed || pDropped != dropped {
		t.Fatalf("verdicts diverged: pipeline pass=%d drop=%d, single pass=%d drop=%d",
			pPassed, pDropped, passed, dropped)
	}
	ss, ps := single.Stats(), pipe.Stats()
	if ps.OutboundPackets != ss.OutboundPackets ||
		ps.InboundPackets != ss.InboundPackets ||
		ps.InboundMatched != ss.InboundMatched ||
		ps.Dropped != ss.Dropped {
		t.Fatalf("packet counters diverged:\npipeline %+v\nsingle   %+v", ps, ss)
	}
	if ss.InboundMatched != ss.InboundPackets {
		t.Fatalf("all-hit trace had misses: %+v", ss)
	}
}

// TestPipelineConcurrentProducers exercises the producer mutex and ring
// backpressure under -race: several goroutines submitting concurrently,
// with a ring small enough to force producer blocking, must neither race
// nor lose packets.
func TestPipelineConcurrentProducers(t *testing.T) {
	cfg := Config{ClientNetwork: testNet, Seed: 1}
	pipe, err := NewPipeline(cfg, PipelineConfig{Shards: 3, RingSize: 64, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const perProducer = 5000
	var wg sync.WaitGroup
	wg.Add(producers)
	for g := 0; g < producers; g++ {
		go func(g int) {
			defer wg.Done()
			client := netip.AddrFrom4([4]byte{140, 112, byte(g), 1})
			for i := 0; i < perProducer; i++ {
				pipe.Submit(Packet{
					Timestamp: time.Duration(i) * time.Millisecond,
					Protocol:  UDP,
					SrcAddr:   client, SrcPort: uint16(1000 + i%60000),
					DstAddr: netip.AddrFrom4([4]byte{9, byte(g), byte(i >> 8), byte(i)}),
					DstPort: 6881,
					Size:    512,
				})
			}
		}(g)
	}
	wg.Wait()
	pipe.Close()
	passed, dropped := pipe.Verdicts()
	if passed+dropped != producers*perProducer {
		t.Fatalf("decided %d packets, want %d", passed+dropped, producers*perProducer)
	}
	s := pipe.Stats()
	if s.OutboundPackets+s.InboundPackets != producers*perProducer {
		t.Fatalf("stats lost packets: %+v", s)
	}
}

// TestPipelineUnroutable routes non-IPv4 packets through the pipeline;
// they must be counted and dropped, not panic the shard router.
func TestPipelineUnroutable(t *testing.T) {
	cfg := Config{ClientNetwork: testNet, Seed: 1}
	pipe, err := NewPipeline(cfg, PipelineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	v6 := netip.MustParseAddr("2001:db8::1")
	pipe.Submit(Packet{
		Protocol: TCP,
		SrcAddr:  v6, SrcPort: 1,
		DstAddr: netip.MustParseAddr("140.112.0.9"), DstPort: 2,
		Size: 100,
	})
	pipe.Close()
	if got := pipe.Stats().Unroutable; got != 1 {
		t.Fatalf("Unroutable = %d, want 1", got)
	}
	if _, dropped := pipe.Verdicts(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

// TestPipelineCloseIdempotent double-Close and post-Close Stats.
func TestPipelineCloseIdempotent(t *testing.T) {
	pipe, err := NewPipeline(Config{ClientNetwork: testNet}, PipelineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	pipe.Close()
	if s := pipe.Stats(); s != (Stats{}) {
		t.Fatalf("fresh pipeline has stats %+v", s)
	}
}
