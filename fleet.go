package p2pbound

import (
	"fmt"
	"time"

	"p2pbound/internal/replica"
)

// FleetTransport moves replication frames between fleet members.
// Addresses are replica indexes 0..Replicas-1. Send is called with a
// frame buffer that is reused by the sender — implementations must
// copy it before returning. Deliver drains every frame queued for a
// replica, in order, invoking fn once per frame.
//
// netsim.Mesh satisfies this interface, so the chaos fabric can be
// plugged straight under a Fleet; the default (Transport nil) is an
// in-process lossless loopback.
type FleetTransport interface {
	Send(from, to int, frame []byte)
	Deliver(to int, fn func(frame []byte))
}

// loopback is the default FleetTransport: per-replica FIFO queues in
// memory, no loss, no reordering.
type loopback struct {
	queues [][][]byte
}

func (t *loopback) Send(from, to int, frame []byte) {
	t.queues[to] = append(t.queues[to], append([]byte(nil), frame...))
}

func (t *loopback) Deliver(to int, fn func(frame []byte)) {
	// Handlers may reply via Send — including back onto this queue for
	// a later round — so swap the slice out before draining.
	q := t.queues[to]
	t.queues[to] = nil
	for _, fr := range q {
		fn(fr)
	}
}

// FleetConfig sizes a replicated fleet of limiters.
type FleetConfig struct {
	// Replicas is the fleet size. Each replica is a full Limiter with
	// the complete RED thresholds — fleet members are independent edge
	// boxes that each see their own slice of the traffic, unlike
	// ShardedLimiter shards which split one box's uplink.
	Replicas int
	// DigestEvery / SuspectAfter tune the per-node anti-entropy
	// cadence and liveness horizon, in Sync rounds. Zero means the
	// replica package defaults.
	DigestEvery  int
	SuspectAfter int
	// Transport carries frames between members. Nil means an
	// in-process lossless loopback.
	Transport FleetTransport
}

// Fleet is a set of Limiter replicas sharing one logical {k×N}-bitmap
// via delta-encoded sync and anti-entropy repair (internal/replica).
// A flow marked on any member is admitted by every member once the
// fleet converges; replication can only add false positives, never
// false negatives.
//
// Concurrency contract: like ShardedLimiter, each replica index may be
// driven from its own goroutine via ProcessOnReplica, but Sync mutates
// every member's filter and node state, so it must run while no
// processing is in flight (a batch barrier). Members that have not
// completed their first full digest round run fail-closed (P_d = 1).
type Fleet struct {
	limiters  []*Limiter
	nodes     []*replica.Node
	transport FleetTransport
}

// NewFleet builds fc.Replicas limiters from cfg (replica i uses
// cfg.Seed+i so drop draws stay reproducible) and wires their filters
// into a replication fleet. Multi-member fleets start fail-closed
// until the first digest round completes; a fleet of one is ready
// immediately.
func NewFleet(cfg Config, fc FleetConfig) (*Fleet, error) {
	if fc.Replicas <= 0 {
		return nil, fmt.Errorf("p2pbound: fleet size must be positive, got %d", fc.Replicas)
	}
	fl := &Fleet{transport: fc.Transport}
	if fl.transport == nil {
		fl.transport = &loopback{queues: make([][][]byte, fc.Replicas)}
	}
	ids := make([]uint32, fc.Replicas)
	for i := range ids {
		ids[i] = uint32(i + 1) // replica IDs are 1-based on the wire
	}
	for i := 0; i < fc.Replicas; i++ {
		memberCfg := cfg
		memberCfg.Seed = cfg.Seed + uint64(i)
		l, err := New(memberCfg)
		if err != nil {
			return nil, err
		}
		peers := make([]uint32, 0, fc.Replicas-1)
		for _, id := range ids {
			if id != ids[i] {
				peers = append(peers, id)
			}
		}
		// The node owns the limiter's current filter; fleet members
		// must not RestoreState/AdoptState (that would swap the filter
		// out from under the node). Restore-by-snapshot is a single-box
		// workflow — a fleet member rejoins empty and heals via repair.
		node, err := replica.NewNode(l.filter.Load(), replica.Config{
			ID:           ids[i],
			Peers:        peers,
			DigestEvery:  fc.DigestEvery,
			SuspectAfter: fc.SuspectAfter,
		})
		if err != nil {
			return nil, err
		}
		l.SetFailClosed(!node.Ready())
		fl.limiters = append(fl.limiters, l)
		fl.nodes = append(fl.nodes, node)
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.attachReplicas(fl)
	}
	return fl, nil
}

// Replicas returns the fleet size.
func (fl *Fleet) Replicas() int { return len(fl.limiters) }

// ReplicaOf returns the member index packet p belongs to, by the same
// order-independent connection hash ShardedLimiter uses, so a test or
// daemon fanning one traffic source across the fleet keeps both
// directions of a connection on the same member. Real deployments
// route by topology instead; any member gives the same verdict after
// convergence. Unroutable packets map to replica 0.
func (fl *Fleet) ReplicaOf(p Packet) int {
	if !p.SrcAddr.Is4() || !p.DstAddr.Is4() {
		return 0
	}
	return int(connHash(p) % uint64(len(fl.limiters)))
}

// ProcessOnReplica decides a packet on member i. The caller must
// ensure each member index is used from one goroutine at a time, with
// non-decreasing per-member timestamps, and that Sync is not running.
func (fl *Fleet) ProcessOnReplica(i int, p Packet) Decision {
	return fl.limiters[i].Process(p)
}

// Process routes the packet to its member and decides it — the
// single-goroutine convenience form.
func (fl *Fleet) Process(p Packet) Decision {
	return fl.ProcessOnReplica(fl.ReplicaOf(p), p)
}

// Sync runs one replication round: every member emits its pending
// deltas (and, on its digest cadence, range digests), then drains its
// inbox, then its fail-closed gate is refreshed from readiness.
// Call it between batches, from a single goroutine, with no
// processing in flight. On a lossless transport a new mark is visible
// fleet-wide after one round.
func (fl *Fleet) Sync() {
	for i, n := range fl.nodes {
		n.Tick(fl.outboxFor(i))
	}
	for i, n := range fl.nodes {
		node, out := n, fl.outboxFor(i)
		fl.transport.Deliver(i, func(frame []byte) {
			// Rejected frames are counted in the node's FramesRejected
			// metric; a lossy transport makes them routine, so they are
			// not fatal here.
			_ = node.Handle(frame, out)
		})
	}
	for i, n := range fl.nodes {
		fl.limiters[i].SetFailClosed(!n.Ready())
	}
}

// outboxFor adapts member i's node Outbox onto the transport
// (replica IDs are 1-based, transport addresses 0-based).
func (fl *Fleet) outboxFor(i int) replica.Outbox {
	return func(to uint32, frame []byte) {
		fl.transport.Send(i, int(to)-1, frame)
	}
}

// Ready reports whether member i has completed its first full digest
// round and serves traffic un-degraded.
func (fl *Fleet) Ready(i int) bool { return fl.nodes[i].Ready() }

// ReplicaMetrics snapshots member i's replication telemetry.
func (fl *Fleet) ReplicaMetrics(i int) replica.Metrics { return fl.nodes[i].Metrics() }

// Limiter returns member i's limiter, for stats and state inspection.
// Do not call RestoreState/AdoptState on a fleet member.
func (fl *Fleet) Limiter(i int) *Limiter { return fl.limiters[i] }

// MemoryBytes returns the total bitmap memory across members.
func (fl *Fleet) MemoryBytes() int {
	total := 0
	for _, l := range fl.limiters {
		total += l.MemoryBytes()
	}
	return total
}

// ExpiryHorizon returns the shared T_e of the members.
func (fl *Fleet) ExpiryHorizon() time.Duration { return fl.limiters[0].ExpiryHorizon() }

// Stats sums the per-member activity counters.
func (fl *Fleet) Stats() Stats {
	var sum Stats
	for _, l := range fl.limiters {
		st := l.Stats()
		sum.OutboundPackets += st.OutboundPackets
		sum.InboundPackets += st.InboundPackets
		sum.InboundMatched += st.InboundMatched
		sum.InboundUnmatched += st.InboundUnmatched
		sum.Dropped += st.Dropped
		sum.Rotations += st.Rotations
		sum.Unroutable += st.Unroutable
		sum.TimeAnomalies += st.TimeAnomalies
	}
	return sum
}
