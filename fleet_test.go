package p2pbound

import (
	"strings"
	"testing"
	"time"

	"p2pbound/internal/netsim"
)

func fleetCfg() Config {
	return Config{
		ClientNetwork: "140.112.0.0/16",
		// Saturate the uplink immediately so unmatched inbound traffic
		// is always dropped: the tests below then read admissions as
		// proof of replicated marks, not of an idle RED ramp.
		LowMbps: 1e-9, HighMbps: 2e-9,
		VectorBits: 12,
	}
}

func newFleet(t *testing.T, fc FleetConfig) *Fleet {
	t.Helper()
	fl, err := NewFleet(fleetCfg(), fc)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestFleetMarksReplicate: an outbound flow marked on one member is
// admitted by every member after a sync round — the fleet acts as one
// logical filter.
func TestFleetMarksReplicate(t *testing.T) {
	fl := newFleet(t, FleetConfig{Replicas: 3, DigestEvery: 1})
	// Two rounds: digests cross in round one, readiness promotes on
	// the exchange, and an empty fleet agrees trivially.
	fl.Sync()
	fl.Sync()
	for i := 0; i < fl.Replicas(); i++ {
		if !fl.Ready(i) {
			t.Fatalf("member %d not ready after empty-state digest rounds", i)
		}
	}
	// Saturate every member's meter so P_d = 1 and any admission below
	// is the filter's doing.
	for i := 0; i < fl.Replicas(); i++ {
		fl.ProcessOnReplica(i, outPkt(0, 50000, 80, 1500))
	}
	// Mark 40 flows, each on the member its connection hashes to.
	ts := 10 * time.Millisecond
	for f := 0; f < 40; f++ {
		p := outPkt(ts, uint16(40000+f), 6881, 1500)
		if d := fl.Process(p); d != Pass {
			t.Fatalf("outbound flow %d dropped: %v", f, d)
		}
	}
	fl.Sync()
	// Every member must now admit the responses — including members
	// that never saw the outbound packet.
	ts = 20 * time.Millisecond
	for f := 0; f < 40; f++ {
		for i := 0; i < fl.Replicas(); i++ {
			p := inPkt(ts, 6881, uint16(40000+f), 1500)
			if d := fl.ProcessOnReplica(i, p); d != Pass {
				t.Fatalf("response for flow %d dropped on member %d", f, i)
			}
		}
	}
	// An unmarked flow is still dropped everywhere (the fleet did not
	// fail open).
	for i := 0; i < fl.Replicas(); i++ {
		if d := fl.ProcessOnReplica(i, inPkt(ts, 9999, 1, 1500)); d != Drop {
			t.Fatalf("unmarked inbound passed on member %d", i)
		}
	}
	m := fl.ReplicaMetrics(0)
	if m.DeltaBytesSent == 0 || m.DigestFramesSent == 0 {
		t.Fatalf("replication telemetry silent: %+v", m)
	}
}

// TestFleetFailClosedUntilReady: a multi-member fleet that has never
// completed a digest round drops every unmatched inbound packet even
// with an idle uplink — the joining member cannot fail open.
func TestFleetFailClosedUntilReady(t *testing.T) {
	cfg := fleetCfg()
	cfg.LowMbps, cfg.HighMbps = 50, 100 // idle uplink: RED ramp alone would pass everything
	fl, err := NewFleet(cfg, FleetConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Ready(0) || fl.Ready(1) {
		t.Fatal("fresh multi-member fleet claims readiness")
	}
	if d := fl.ProcessOnReplica(0, inPkt(0, 6881, 40000, 1500)); d != Drop {
		t.Fatalf("not-ready member admitted unmatched inbound: %v", d)
	}
	fl.Sync()
	fl.Sync()
	if !fl.Ready(0) || !fl.Ready(1) {
		t.Fatal("fleet not ready after loopback digest rounds")
	}
	// Ready and idle: the RED ramp takes over and unmatched inbound
	// passes again (P_d = 0 below LowMbps).
	if d := fl.ProcessOnReplica(0, inPkt(time.Second, 6881, 40000, 1500)); d != Pass {
		t.Fatalf("ready idle member dropped inbound: %v", d)
	}
}

// TestFleetSingleMemberReadyImmediately: a fleet of one has no peers
// to agree with and serves from the start.
func TestFleetSingleMemberReadyImmediately(t *testing.T) {
	fl := newFleet(t, FleetConfig{Replicas: 1})
	if !fl.Ready(0) {
		t.Fatal("single-member fleet not ready")
	}
}

// TestFleetOverNetsimMesh proves netsim.Mesh satisfies FleetTransport
// structurally and the fleet converges across a lossy fabric.
func TestFleetOverNetsimMesh(t *testing.T) {
	mesh := netsim.NewMesh(3, netsim.LinkConfig{LossProb: 0.3, Seed: 7})
	fl, err := NewFleet(fleetCfg(), FleetConfig{Replicas: 3, DigestEvery: 1, Transport: mesh})
	if err != nil {
		t.Fatal(err)
	}
	fl.ProcessOnReplica(0, outPkt(0, 50000, 80, 1500)) // saturate member 0's meter
	for f := 0; f < 20; f++ {
		fl.ProcessOnReplica(0, outPkt(10*time.Millisecond, uint16(41000+f), 6881, 1500))
	}
	for r := 0; r < 30; r++ {
		fl.Sync()
		mesh.NextRound()
	}
	for i := 0; i < fl.Replicas(); i++ {
		if !fl.Ready(i) {
			t.Fatalf("member %d not ready across lossy mesh", i)
		}
	}
	// Member 2 saw none of the outbound traffic; saturate its meter and
	// check it admits the replicated flows.
	fl.ProcessOnReplica(2, outPkt(20*time.Millisecond, 50001, 80, 1500))
	for f := 0; f < 20; f++ {
		if d := fl.ProcessOnReplica(2, inPkt(30*time.Millisecond, 6881, uint16(41000+f), 1500)); d != Pass {
			t.Fatalf("replicated flow %d dropped on member 2", f)
		}
	}
}

// TestFleetTelemetry: the replica series appear in a Prometheus scrape
// with per-member labels.
func TestFleetTelemetry(t *testing.T) {
	tel := NewTelemetry()
	cfg := fleetCfg()
	cfg.Telemetry = tel
	fl, err := NewFleet(cfg, FleetConfig{Replicas: 2, DigestEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fl.ProcessOnReplica(0, outPkt(0, 40000, 6881, 1500))
	fl.Sync()
	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{
		"p2pbound_replica_delta_bytes_total",
		"p2pbound_replica_digest_frames_total",
		"p2pbound_replica_ready",
		`replica="1"`,
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("scrape missing %q", series)
		}
	}
}

// TestFleetValidation covers constructor rejections.
func TestFleetValidation(t *testing.T) {
	if _, err := NewFleet(fleetCfg(), FleetConfig{Replicas: 0}); err == nil {
		t.Fatal("zero-size fleet accepted")
	}
	if _, err := NewFleet(Config{}, FleetConfig{Replicas: 2}); err == nil {
		t.Fatal("invalid limiter config accepted")
	}
}
