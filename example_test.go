package p2pbound_test

import (
	"fmt"
	"net/netip"
	"time"

	"p2pbound"
)

// The basic flow: outbound requests always pass and create admission
// state; once the uplink saturates, unsolicited inbound packets drop
// while responses to the client's own traffic keep flowing.
func Example() {
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: "192.168.0.0/16",
		LowMbps:       0.001, // tiny thresholds so the example saturates
		HighMbps:      0.002,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	client := netip.MustParseAddr("192.168.1.10")
	server := netip.MustParseAddr("93.184.216.34")
	stranger := netip.MustParseAddr("45.9.9.9")

	// The client sends a request — heavy enough to saturate the uplink.
	request := p2pbound.Packet{
		Timestamp: 0, Protocol: p2pbound.TCP,
		SrcAddr: client, SrcPort: 40000, DstAddr: server, DstPort: 80,
		Size: 1_000_000,
	}
	fmt.Println("request:", limiter.Process(request))

	// The server's response matches tracked state and passes.
	response := p2pbound.Packet{
		Timestamp: 50 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: server, SrcPort: 80, DstAddr: client, DstPort: 40000,
		Size: 1500,
	}
	fmt.Println("response:", limiter.Process(response))

	// A stranger's unsolicited connection attempt is dropped.
	unsolicited := p2pbound.Packet{
		Timestamp: 60 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: stranger, SrcPort: 50000, DstAddr: client, DstPort: 6881,
		Size: 60,
	}
	fmt.Println("unsolicited:", limiter.Process(unsolicited))

	// Output:
	// request: PASS
	// response: PASS
	// unsolicited: DROP
}

// Custom geometry: a small filter for an embedded edge device — 2 vectors
// of 2^14 bits with a 2-second rotation, 4 KiB in total.
func ExampleNew_customGeometry() {
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: "10.0.0.0/8",
		Vectors:       2,
		VectorBits:    14,
		HashFunctions: 4,
		RotateEvery:   2 * time.Second,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d KiB, T_e = %v\n", limiter.MemoryBytes()/1024, limiter.ExpiryHorizon())
	// Output:
	// 4 KiB, T_e = 4s
}

// Sharding for multi-queue pipelines: both directions of a connection
// always land on the same shard.
func ExampleShardedLimiter() {
	sharded, err := p2pbound.NewSharded(p2pbound.Config{
		ClientNetwork: "10.0.0.0/8",
	}, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fwd := p2pbound.Packet{
		Protocol: p2pbound.TCP,
		SrcAddr:  netip.MustParseAddr("10.1.2.3"), SrcPort: 40000,
		DstAddr: netip.MustParseAddr("8.8.8.8"), DstPort: 443,
	}
	rev := p2pbound.Packet{
		Protocol: p2pbound.TCP,
		SrcAddr:  netip.MustParseAddr("8.8.8.8"), SrcPort: 443,
		DstAddr: netip.MustParseAddr("10.1.2.3"), DstPort: 40000,
	}
	fmt.Println("same shard:", sharded.ShardOf(fwd) == sharded.ShardOf(rev))
	// Output:
	// same shard: true
}
