package p2pbound_test

import (
	"fmt"
	"net/netip"
	"time"

	"p2pbound"
)

// The basic flow: outbound requests always pass and create admission
// state; once the uplink saturates, unsolicited inbound packets drop
// while responses to the client's own traffic keep flowing.
func Example() {
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: "192.168.0.0/16",
		LowMbps:       0.001, // tiny thresholds so the example saturates
		HighMbps:      0.002,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	client := netip.MustParseAddr("192.168.1.10")
	server := netip.MustParseAddr("93.184.216.34")
	stranger := netip.MustParseAddr("45.9.9.9")

	// The client sends a request — heavy enough to saturate the uplink.
	request := p2pbound.Packet{
		Timestamp: 0, Protocol: p2pbound.TCP,
		SrcAddr: client, SrcPort: 40000, DstAddr: server, DstPort: 80,
		Size: 1_000_000,
	}
	fmt.Println("request:", limiter.Process(request))

	// The server's response matches tracked state and passes.
	response := p2pbound.Packet{
		Timestamp: 50 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: server, SrcPort: 80, DstAddr: client, DstPort: 40000,
		Size: 1500,
	}
	fmt.Println("response:", limiter.Process(response))

	// A stranger's unsolicited connection attempt is dropped.
	unsolicited := p2pbound.Packet{
		Timestamp: 60 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: stranger, SrcPort: 50000, DstAddr: client, DstPort: 6881,
		Size: 60,
	}
	fmt.Println("unsolicited:", limiter.Process(unsolicited))

	// Output:
	// request: PASS
	// response: PASS
	// unsolicited: DROP
}

// Custom geometry: a small filter for an embedded edge device — 2 vectors
// of 2^14 bits with a 2-second rotation, 4 KiB in total.
func ExampleNew_customGeometry() {
	limiter, err := p2pbound.New(p2pbound.Config{
		ClientNetwork: "10.0.0.0/8",
		Vectors:       2,
		VectorBits:    14,
		HashFunctions: 4,
		RotateEvery:   2 * time.Second,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d KiB, T_e = %v\n", limiter.MemoryBytes()/1024, limiter.ExpiryHorizon())
	// Output:
	// 4 KiB, T_e = 4s
}

// Multi-tenant edge: one manager hosts many subscriber networks, each
// with its own filter, and idle subscribers spill their state instead of
// holding vector memory. A flow admitted before an eviction still
// matches after the tenant rehydrates.
func ExampleTenantManager() {
	mgr, err := p2pbound.NewTenantManager(p2pbound.TenantManagerConfig{
		Tenant: p2pbound.Config{
			LowMbps:  0.001, // tiny thresholds so the example saturates
			HighMbps: 0.002,
		},
		PrefixBits: 24,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, t := range []p2pbound.TenantConfig{
		{ID: "alice", Network: "100.64.1.0/24"},
		{ID: "bob", Network: "100.64.2.0/24"},
	} {
		if err := mgr.AddTenant(t); err != nil {
			fmt.Println(err)
			return
		}
	}

	alice := netip.MustParseAddr("100.64.1.10")
	server := netip.MustParseAddr("93.184.216.34")
	stranger := netip.MustParseAddr("45.9.9.9")

	// Alice's request saturates her uplink and marks the flow.
	fmt.Println("request:", mgr.Process(p2pbound.Packet{
		Timestamp: 0, Protocol: p2pbound.TCP,
		SrcAddr: alice, SrcPort: 40000, DstAddr: server, DstPort: 80,
		Size: 1_000_000,
	}))

	// Alice idles out: her filter spills, its vectors return to the pool.
	mgr.EvictIdle(0)

	// The server's response rehydrates her tenant and still matches.
	fmt.Println("response:", mgr.Process(p2pbound.Packet{
		Timestamp: 50 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: server, SrcPort: 80, DstAddr: alice, DstPort: 40000,
		Size: 1500,
	}))

	// A stranger's unsolicited packet to the saturated subscriber drops;
	// Bob's quiet network is untouched by Alice's load.
	fmt.Println("unsolicited:", mgr.Process(p2pbound.Packet{
		Timestamp: 60 * time.Millisecond, Protocol: p2pbound.TCP,
		SrcAddr: stranger, SrcPort: 50000, DstAddr: alice, DstPort: 6881,
		Size: 60,
	}))
	s := mgr.Stats()
	fmt.Printf("tenants: %d, hydrated: %d, hydrations: %d\n",
		s.Tenants, s.Hydrated, s.Hydrations)
	// Output:
	// request: PASS
	// response: PASS
	// unsolicited: DROP
	// tenants: 2, hydrated: 1, hydrations: 2
}

// Sharding for multi-queue pipelines: both directions of a connection
// always land on the same shard.
func ExampleShardedLimiter() {
	sharded, err := p2pbound.NewSharded(p2pbound.Config{
		ClientNetwork: "10.0.0.0/8",
	}, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fwd := p2pbound.Packet{
		Protocol: p2pbound.TCP,
		SrcAddr:  netip.MustParseAddr("10.1.2.3"), SrcPort: 40000,
		DstAddr: netip.MustParseAddr("8.8.8.8"), DstPort: 443,
	}
	rev := p2pbound.Packet{
		Protocol: p2pbound.TCP,
		SrcAddr:  netip.MustParseAddr("8.8.8.8"), SrcPort: 443,
		DstAddr: netip.MustParseAddr("10.1.2.3"), DstPort: 40000,
	}
	fmt.Println("same shard:", sharded.ShardOf(fwd) == sharded.ShardOf(rev))
	// Output:
	// same shard: true
}
