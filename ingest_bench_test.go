// BenchmarkIngestEndToEnd measures the ingestion tier: bytes of a pcap
// capture in, filter verdicts out, reported as packets/sec. Three
// sub-benchmarks replay the same capture through the same bitmap
// filter; only the ingestion path differs:
//
//	source=readall+process  — the pre-batching path: pcap.ReadAll
//	                          materializes the whole trace (one payload
//	                          allocation per packet), then netsim.Replay
//	                          walks the slice.
//	source=mmap+batch       — ingest.MMapSource decodes frames in place
//	                          out of the mapped file and hands batches
//	                          to netsim.ReplayIngest; zero per-packet
//	                          allocations, constant memory.
//	source=stream+batch     — ingest.ReaderSource over pcap.Reader:
//	                          the io.Reader path (stdin, FIFOs) with
//	                          batch delivery and reused packet storage.
package p2pbound

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/ingest"
	"p2pbound/internal/netsim"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

var ingestBenchNet = packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)

// ingestBenchCapture renders the shared benchmark trace (see benchTrace)
// to pcap bytes once: ≈40k packets, a few MB of capture.
var ingestBenchCapture = sync.OnceValue(func() []byte {
	var buf bytes.Buffer
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(&buf, benchTrace().Packets, 0, base); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

func ingestBenchFilter(b *testing.B) *core.Filter {
	b.Helper()
	f, err := core.New(core.Config{K: 4, NBits: 20, M: 3, DeltaT: time.Second, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// replayMetrics reports throughput and cross-checks the verdict counts
// against the readall reference so a faster path that decodes or
// classifies differently fails instead of "winning".
func replayMetrics(b *testing.B, res *netsim.Result, wantDropped int64, elapsed time.Duration) {
	b.Helper()
	if res.TotalPackets == 0 {
		b.Fatal("replay produced no packets")
	}
	if res.FilterDropped != wantDropped {
		b.Fatalf("verdicts diverged: dropped %d, reference %d", res.FilterDropped, wantDropped)
	}
	pps := float64(res.TotalPackets) * float64(b.N) / elapsed.Seconds()
	b.ReportMetric(pps, "packets/sec")
	b.ReportMetric(float64(res.TotalPackets), "packets/op")
}

// ingestRefDropped computes the reference verdict count once, via the
// slice path every sub-benchmark is compared against.
var ingestRefDropped = sync.OnceValue(func() int64 {
	pkts, err := pcap.ReadAll(bytes.NewReader(ingestBenchCapture()), ingestBenchNet, false)
	if err != nil {
		panic(err)
	}
	f, err := core.New(core.Config{K: 4, NBits: 20, M: 3, DeltaT: time.Second, Seed: 7})
	if err != nil {
		panic(err)
	}
	res, err := netsim.Replay(pkts, f, netsim.Config{})
	if err != nil {
		panic(err)
	}
	return res.FilterDropped
})

func BenchmarkIngestEndToEnd(b *testing.B) {
	data := ingestBenchCapture()
	want := ingestRefDropped()

	b.Run("source=readall+process", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		var res *netsim.Result
		start := time.Now()
		for i := 0; i < b.N; i++ {
			pkts, err := pcap.ReadAll(bytes.NewReader(data), ingestBenchNet, false)
			if err != nil {
				b.Fatal(err)
			}
			res, err = netsim.Replay(pkts, ingestBenchFilter(b), netsim.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		replayMetrics(b, res, want, time.Since(start))
	})

	b.Run("source=mmap+batch", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		var res *netsim.Result
		start := time.Now()
		for i := 0; i < b.N; i++ {
			src, err := ingest.NewMemSource(data, ingestBenchNet, false)
			if err != nil {
				b.Fatal(err)
			}
			res, err = netsim.ReplayIngest(src, ingestBenchFilter(b), netsim.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		replayMetrics(b, res, want, time.Since(start))
	})

	b.Run("source=stream+batch", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		var res *netsim.Result
		start := time.Now()
		for i := 0; i < b.N; i++ {
			r, err := pcap.NewReader(bytes.NewReader(data), ingestBenchNet)
			if err != nil {
				b.Fatal(err)
			}
			res, err = netsim.ReplayIngest(ingest.NewReaderSource(r), ingestBenchFilter(b), netsim.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		replayMetrics(b, res, want, time.Since(start))
	})
}
