package p2pbound

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
	"testing"
	"time"
)

// testTenantTemplate is the per-subscriber limiter template the tenant
// tests share: tiny filter geometry so churn tests can afford thousands
// of tenants, a long rotation period so no mark expires mid-test unless
// a test advances time deliberately.
func testTenantTemplate() Config {
	return Config{
		LowMbps:       0.1,
		HighMbps:      0.5,
		Vectors:       4,
		VectorBits:    10,
		HashFunctions: 3,
		RotateEvery:   time.Hour,
		Seed:          99,
	}
}

// tenantNet24 returns the /24 assigned to tenant index i.
func tenantNet24(i int) string {
	return fmt.Sprintf("10.%d.%d.0/24", (i>>8)&255, i&255)
}

// tenantID24 is the matching tenant id.
func tenantID24(i int) string { return fmt.Sprintf("t%04d", i) }

// newTestManager builds a manager with n /24 subscribers.
func newTestManager(t testing.TB, n int, mutate func(*TenantManagerConfig)) *TenantManager {
	t.Helper()
	cfg := TenantManagerConfig{
		Tenant:     testTenantTemplate(),
		PrefixBits: 24,
		Shards:     1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewTenantManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcs := make([]TenantConfig, n)
	for i := range tcs {
		tcs[i] = TenantConfig{ID: tenantID24(i), Network: tenantNet24(i)}
	}
	if err := m.AddTenants(tcs); err != nil {
		t.Fatal(err)
	}
	return m
}

// tenantOutbound builds an outbound packet of tenant i's flow f.
func tenantOutbound(i, f int, ts time.Duration) Packet {
	return Packet{
		Timestamp: ts, Protocol: TCP,
		SrcAddr: netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 5}),
		SrcPort: uint16(20000 + f),
		DstAddr: netip.AddrFrom4([4]byte{203, 0, byte(f >> 8), byte(f)}),
		DstPort: 6881,
		Size:    120,
	}
}

// tenantInbound is the matching response of tenantOutbound(i, f, _).
func tenantInbound(i, f int, ts time.Duration) Packet {
	o := tenantOutbound(i, f, ts)
	return Packet{
		Timestamp: ts, Protocol: TCP,
		SrcAddr: o.DstAddr, SrcPort: o.DstPort,
		DstAddr: o.SrcAddr, DstPort: o.SrcPort,
		Size: 1400,
	}
}

func TestTenantManagerValidation(t *testing.T) {
	tmpl := testTenantTemplate()
	bad := []TenantManagerConfig{
		{Tenant: tmpl, PrefixBits: 0},
		{Tenant: tmpl, PrefixBits: 33},
		{Tenant: tmpl, PrefixBits: 24, Shards: -1},
		{Tenant: tmpl, PrefixBits: 24, AggregateLowMbps: 10}, // one-sided
		{Tenant: tmpl, PrefixBits: 24, AggregateHighMbps: 10},
	}
	for i, cfg := range bad {
		if _, err := NewTenantManager(cfg); err == nil {
			t.Errorf("config %d: expected error, got nil", i)
		}
	}

	m, err := NewTenantManager(TenantManagerConfig{Tenant: tmpl, PrefixBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddTenant(TenantConfig{ID: "a", Network: "10.0.0.0/24"}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []TenantConfig{
		{ID: "b", Network: "10.1.0.0/16"},    // wrong prefix width
		{ID: "c", Network: "not-a-network"},  // unparsable
		{ID: "a", Network: "10.0.1.0/24"},    // duplicate id
		{ID: "d", Network: "10.0.0.0/24"},    // overlapping network
		{ID: "e", Network: "2001:db8::/24"},  // not IPv4
	} {
		if err := m.AddTenant(tc); err == nil {
			t.Errorf("tenant %+v: expected error, got nil", tc)
		}
	}
	// A failed batch must not register its earlier entries.
	err = m.AddTenants([]TenantConfig{
		{ID: "f", Network: "10.0.2.0/24"},
		{ID: "g", Network: "10.1.0.0/16"},
	})
	if err == nil {
		t.Fatal("expected batch error")
	}
	if m.Process(tenantOutbound(2, 1, 0)) != Drop {
		t.Fatal("tenant from failed batch is routable")
	}
}

func TestTenantManagerRouting(t *testing.T) {
	m := newTestManager(t, 2, nil)

	// Outbound routes by source, inbound by destination — both to the
	// same tenant.
	if got := m.Process(tenantOutbound(1, 7, 0)); got != Pass {
		t.Fatalf("outbound verdict = %v", got)
	}
	if got := m.Process(tenantInbound(1, 7, time.Millisecond)); got != Pass {
		t.Fatalf("matched inbound verdict = %v", got)
	}
	s, ok := m.TenantStats(tenantID24(1))
	if !ok {
		t.Fatal("tenant stats missing")
	}
	if s.OutboundPackets != 1 || s.InboundMatched != 1 {
		t.Fatalf("tenant stats = %+v", s)
	}
	if s, _ := m.TenantStats(tenantID24(0)); s.OutboundPackets+s.InboundPackets != 0 {
		t.Fatal("idle tenant saw traffic")
	}

	// No registered subscriber on either end: defensive drop.
	if got := m.Process(tenantOutbound(99, 1, 0)); got != Drop {
		t.Fatalf("no-tenant verdict = %v", got)
	}
	// Non-IPv4: unroutable.
	v6 := Packet{Timestamp: 0, Protocol: TCP, SrcAddr: netip.MustParseAddr("2001:db8::1"), DstAddr: netip.MustParseAddr("2001:db8::2"), Size: 100}
	if got := m.Process(v6); got != Drop {
		t.Fatalf("unroutable verdict = %v", got)
	}
	ms := m.Stats()
	if ms.NoTenant != 1 || ms.Unroutable != 1 || ms.Tenants != 2 {
		t.Fatalf("manager stats = %+v", ms)
	}
	if ids := m.TenantIDs(); len(ids) != 2 || ids[0] != tenantID24(0) {
		t.Fatalf("tenant ids = %v", ids)
	}
}

// TestTenantLifecycle walks one subscriber through the full hydration
// lifecycle: cold start, marked flow, spill with a live bitmap, verdict-
// exact rehydration, and monotone stats throughout.
func TestTenantLifecycle(t *testing.T) {
	m := newTestManager(t, 1, nil)
	id := tenantID24(0)

	if s := m.Stats(); s.Hydrated != 0 {
		t.Fatalf("cold manager hydrated = %d", s.Hydrated)
	}
	m.Process(tenantOutbound(0, 1, 0))
	s := m.Stats()
	if s.Hydrated != 1 || s.Hydrations != 1 {
		t.Fatalf("after first packet: %+v", s)
	}
	if s.ArenaBytes == 0 {
		t.Fatal("no arena storage after hydration")
	}

	if n := m.EvictIdle(0); n != 1 {
		t.Fatalf("EvictIdle evicted %d", n)
	}
	s = m.Stats()
	if s.Hydrated != 0 || s.Evictions != 1 {
		t.Fatalf("after evict: %+v", s)
	}
	if s.SpillBytes == 0 {
		t.Fatal("marked filter spilled no bitmap")
	}

	// The flow marked before eviction must still match after
	// rehydration: zero false negatives across the spill.
	if got := m.Process(tenantInbound(0, 1, time.Second)); got != Pass {
		t.Fatalf("post-rehydrate matched inbound = %v", got)
	}
	ts, _ := m.TenantStats(id)
	if ts.InboundMatched != 1 || ts.OutboundPackets != 1 {
		t.Fatalf("post-rehydrate stats = %+v", ts)
	}
	s = m.Stats()
	if s.Hydrated != 1 || s.Hydrations != 2 || s.SpillBytes != 0 {
		t.Fatalf("after rehydrate: %+v", s)
	}
	if s.HydrateFallbacks != 0 {
		t.Fatalf("hydrate fallbacks = %d", s.HydrateFallbacks)
	}
}

// TestTenantEmptyEvictFastPath: a tenant hydrated by inbound-only
// traffic holds no marks, so its eviction spills only the rotation/rng
// record — no bitmap bytes.
func TestTenantEmptyEvictFastPath(t *testing.T) {
	m := newTestManager(t, 1, nil)
	m.Process(tenantInbound(0, 1, 0)) // unmatched inbound, P_d=0 → Pass, marks nothing
	if n := m.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d", n)
	}
	if s := m.Stats(); s.SpillBytes != 0 {
		t.Fatalf("empty filter spilled %d bytes", s.SpillBytes)
	}
	// Rehydrates cleanly from the stateless record.
	if got := m.Process(tenantOutbound(0, 2, time.Second)); got != Pass {
		t.Fatalf("post-rehydrate outbound = %v", got)
	}
	if got := m.Process(tenantInbound(0, 2, 2*time.Second)); got != Pass {
		t.Fatalf("post-rehydrate matched inbound = %v", got)
	}
}

// TestTenantMaxHydratedLRU: the hydration cap evicts the least-recently-
// active tenant first.
func TestTenantMaxHydratedLRU(t *testing.T) {
	m := newTestManager(t, 3, func(c *TenantManagerConfig) { c.MaxHydratedPerShard = 2 })
	m.Process(tenantOutbound(0, 1, 1*time.Second))
	m.Process(tenantOutbound(1, 1, 2*time.Second))
	m.Process(tenantOutbound(0, 2, 3*time.Second)) // t0 now most recent
	m.Process(tenantOutbound(2, 1, 4*time.Second)) // cap hit: t1 (coldest) evicts

	if m.byID[tenantID24(1)].hydrated {
		t.Fatal("LRU victim t1 still hydrated")
	}
	if !m.byID[tenantID24(0)].hydrated || !m.byID[tenantID24(2)].hydrated {
		t.Fatal("wrong tenant evicted")
	}
	s := m.Stats()
	if s.Hydrated != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The evicted tenant's mark survives the forced spill.
	if got := m.Process(tenantInbound(1, 1, 5*time.Second)); got != Pass {
		t.Fatalf("evicted tenant's marked inbound = %v", got)
	}
	if s := m.Stats(); s.Hydrated != 2 || s.Evictions != 2 {
		t.Fatalf("stats after rehydrate = %+v", s)
	}
}

// TestTenantArenaRecycling: hydration churn reuses arena spans instead
// of growing slabs without bound.
func TestTenantArenaRecycling(t *testing.T) {
	m := newTestManager(t, 8, nil)
	for i := 0; i < 8; i++ {
		m.Process(tenantOutbound(i, 1, time.Duration(i)*time.Millisecond))
	}
	grown := m.Stats().ArenaBytes
	for round := 0; round < 20; round++ {
		m.EvictIdle(0)
		for i := 0; i < 8; i++ {
			m.Process(tenantOutbound(i, round+2, time.Duration(round*10+i)*time.Millisecond))
		}
	}
	if got := m.Stats().ArenaBytes; got != grown {
		t.Fatalf("arena grew under steady churn: %d -> %d bytes", grown, got)
	}
}

// TestTenantSnapshotRoundTrip: SaveTenantState/RestoreTenantState carry
// every tenant's marks across a process boundary, whatever hydration
// state each tenant was in, and fold counters monotonically.
func TestTenantSnapshotRoundTrip(t *testing.T) {
	build := func() *TenantManager { return newTestManager(t, 3, nil) }

	a := build()
	a.Process(tenantOutbound(0, 1, 0))              // t0: hydrated with marks
	a.Process(tenantOutbound(1, 1, time.Millisecond)) // t1: marked, then evicted
	a.EvictIdle(0)
	// t2 never hydrated.
	var snap bytes.Buffer
	if err := a.SaveTenantState(&snap); err != nil {
		t.Fatal(err)
	}

	b := build()
	// Pre-restore traffic so the restore must fold live state.
	b.Process(tenantOutbound(0, 9, 0))
	before, _ := b.TenantStats(tenantID24(0))
	if err := b.RestoreTenantState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	after, _ := b.TenantStats(tenantID24(0))
	if after.OutboundPackets < before.OutboundPackets {
		t.Fatalf("restore rewound stats: %+v -> %+v", before, after)
	}

	// Marks from manager A admit inbound on manager B.
	for i := 0; i < 2; i++ {
		if got := b.Process(tenantInbound(i, 1, time.Second)); got != Pass {
			t.Fatalf("tenant %d restored inbound = %v", i, got)
		}
		s, _ := b.TenantStats(tenantID24(i))
		if s.InboundMatched == 0 {
			t.Fatalf("tenant %d inbound did not match restored bitmap: %+v", i, s)
		}
	}
	// t2 was never hydrated; it restores to the fresh state.
	if b.byID[tenantID24(2)].spilled {
		t.Fatal("never-hydrated tenant restored as spilled")
	}

	// A's own state is unharmed by saving (serialized in place).
	if got := a.Process(tenantInbound(0, 1, time.Second)); got != Pass {
		t.Fatalf("source manager inbound after save = %v", got)
	}
}

// TestTenantSnapshotErrors: every malformed stream is rejected with its
// typed sentinel and leaves the manager byte-for-byte untouched.
func TestTenantSnapshotErrors(t *testing.T) {
	m := newTestManager(t, 2, nil)
	m.Process(tenantOutbound(0, 1, 0))
	var snap bytes.Buffer
	if err := m.SaveTenantState(&snap); err != nil {
		t.Fatal(err)
	}
	valid := snap.Bytes()

	reseal := func(b []byte) []byte {
		// Recompute the trailer so structural mutations survive the
		// checksum gate and exercise the deeper validation.
		body := b[:len(b)-4]
		out := append(append([]byte(nil), body...), 0, 0, 0, 0)
		sum := crc32.Checksum(body, tenantCastagnoli)
		out[len(out)-4], out[len(out)-3], out[len(out)-2], out[len(out)-1] =
			byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
		return out
	}

	mutate := func(b []byte, f func([]byte)) []byte {
		c := append([]byte(nil), b...)
		f(c)
		return c
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTenantSnapshotCorrupt},
		{"bad magic", mutate(valid, func(b []byte) { b[0] ^= 0xff }), ErrTenantSnapshotMagic},
		{"future version", reseal(mutate(valid, func(b []byte) { b[4] = 99 })), ErrTenantSnapshotVersion},
		{"flipped payload", mutate(valid, func(b []byte) { b[20] ^= 0x10 }), ErrTenantSnapshotChecksum},
		{"flipped trailer", mutate(valid, func(b []byte) { b[len(b)-1] ^= 0x80 }), ErrTenantSnapshotChecksum},
		{"count exceeds stream", reseal(mutate(valid, func(b []byte) { b[12] = 0xff })), ErrTenantSnapshotCorrupt},
		{"truncated frame", reseal(valid[:len(valid)-10]), ErrTenantSnapshotCorrupt},
		{"prefix bits out of range", reseal(mutate(valid, func(b []byte) { b[8] = 0 })), ErrTenantSnapshotCorrupt},
	}
	for _, tc := range cases {
		before := m.Stats()
		err := m.RestoreTenantState(bytes.NewReader(tc.data))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if after := m.Stats(); after != before {
			t.Errorf("%s: failed restore mutated the manager: %+v -> %+v", tc.name, before, after)
		}
	}

	// Unknown tenant: structurally valid snapshot from a manager with a
	// subscriber this one lacks.
	m3 := newTestManager(t, 3, nil)
	var snap3 bytes.Buffer
	if err := m3.SaveTenantState(&snap3); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreTenantState(bytes.NewReader(snap3.Bytes())); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", err)
	}

	// Prefix-width mismatch.
	m16, err := NewTenantManager(TenantManagerConfig{Tenant: testTenantTemplate(), PrefixBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := m16.RestoreTenantState(bytes.NewReader(valid)); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("prefix width err = %v", err)
	}

	// Embedded filter geometry mismatch: same tenants, different vector
	// size.
	mGeom := newTestManager(t, 2, func(c *TenantManagerConfig) { c.Tenant.VectorBits = 12 })
	if err := mGeom.RestoreTenantState(bytes.NewReader(valid)); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("filter geometry err = %v", err)
	}

	// The survivor still works.
	if got := m.Process(tenantInbound(0, 1, time.Second)); got != Pass {
		t.Fatalf("manager broken after rejected restores: %v", got)
	}
}

// TestTenantPipelineMatchesDirect: the pipeline decides exactly what
// direct manager calls decide — per-shard single-writer order makes the
// verdict totals deterministic for a single producer.
func TestTenantPipelineMatchesDirect(t *testing.T) {
	pkts := make([]Packet, 0, 4096)
	for i := 0; i < 1024; i++ {
		ten := i % 8
		ts := time.Duration(i) * time.Millisecond
		pkts = append(pkts, tenantOutbound(ten, i/8, ts), tenantInbound(ten, i/8, ts+time.Millisecond))
		if i%64 == 0 {
			pkts = append(pkts, tenantOutbound(200, 0, ts)) // no such tenant
		}
	}

	direct := newTestManager(t, 8, func(c *TenantManagerConfig) { c.Shards = 2 })
	var dPass, dDrop int64
	verdicts := direct.ProcessBatch(pkts, nil)
	for _, v := range verdicts {
		if v == Pass {
			dPass++
		} else {
			dDrop++
		}
	}

	piped := newTestManager(t, 8, func(c *TenantManagerConfig) { c.Shards = 2 })
	p := NewTenantPipeline(piped, TenantPipelineConfig{RingSize: 256, BatchSize: 64})
	p.SubmitBatch(pkts)
	p.Drain()
	p.Close()
	pPass, pDrop := p.Verdicts()
	if pPass != dPass || pDrop != dDrop {
		t.Fatalf("pipeline verdicts (%d pass, %d drop) != direct (%d pass, %d drop)", pPass, pDrop, dPass, dDrop)
	}
	if ds, ps := direct.Stats(), piped.Stats(); ds.NoTenant != ps.NoTenant {
		t.Fatalf("no-tenant counts diverge: %d != %d", ds.NoTenant, ps.NoTenant)
	}
}

// TestTenantPipelineEvictAfter: shard workers spill idle tenants on
// their own once the ring runs dry.
func TestTenantPipelineEvictAfter(t *testing.T) {
	m := newTestManager(t, 2, nil)
	p := NewTenantPipeline(m, TenantPipelineConfig{EvictAfter: time.Second})
	defer p.Close()
	p.Submit(tenantOutbound(0, 1, 0))
	p.Submit(tenantOutbound(1, 1, time.Millisecond))
	// Advance the shard activity clock far past the horizon for t0/t1,
	// keeping t1 warm.
	p.Submit(tenantOutbound(1, 2, 10*time.Second))
	p.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never evicted the idle tenant")
		}
		time.Sleep(time.Millisecond)
	}
	if s := m.Stats(); s.Hydrated != 1 {
		t.Fatalf("stats after idle eviction: %+v", s)
	}
}

// TestTenantProcessZeroAlloc holds the acceptance bar for per-packet
// tenant routing: steady-state Process and ProcessBatch through the
// manager allocate nothing.
func TestTenantProcessZeroAlloc(t *testing.T) {
	m := newTestManager(t, 4, nil)
	var seq int
	mk := func() (Packet, Packet) {
		seq++
		ts := time.Duration(seq) * time.Millisecond
		return tenantOutbound(seq%4, seq, ts), tenantInbound(seq%4, seq, ts)
	}
	// Hydrate everyone before measuring.
	for i := 0; i < 8; i++ {
		o, in := mk()
		m.Process(o)
		m.Process(in)
	}
	if avg := testing.AllocsPerRun(200, func() {
		o, in := mk()
		if m.Process(o) != Pass {
			t.Fatal("outbound dropped")
		}
		m.Process(in)
	}); avg != 0 {
		t.Fatalf("Process allocates %.1f/op", avg)
	}

	batch := make([]Packet, 0, 64)
	for i := 0; i < 64; i++ {
		o, _ := mk()
		batch = append(batch, o)
	}
	dst := make([]Decision, 0, len(batch))
	if avg := testing.AllocsPerRun(100, func() {
		dst = m.ProcessBatch(batch, dst[:0])
	}); avg != 0 {
		t.Fatalf("ProcessBatch allocates %.1f/op", avg)
	}
}

// TestTenantHierarchicalRED: pressure from one seeding tenant raises
// every shard-mate's drop probability through the aggregate budget,
// while a disabled budget leaves tenants fully independent.
func TestTenantHierarchicalRED(t *testing.T) {
	run := func(aggLow, aggHigh float64) (quietDropped int64) {
		m := newTestManager(t, 2, func(c *TenantManagerConfig) {
			c.Tenant.LowMbps = 1000 // per-tenant ramp never engages
			c.Tenant.HighMbps = 2000
			c.AggregateLowMbps = aggLow
			c.AggregateHighMbps = aggHigh
		})
		ts := time.Duration(0)
		for i := 0; i < 4000; i++ {
			ts += 50 * time.Microsecond
			// Tenant 0 seeds hard: large outbound packets drive the
			// shared meter.
			seeder := tenantOutbound(0, i, ts)
			seeder.Size = 60000
			m.Process(seeder)
			// Tenant 1 receives unmatched inbound (P2P-request shape).
			m.Process(tenantInbound(1, i+50000, ts))
		}
		s, _ := m.TenantStats(tenantID24(1))
		if s.InboundUnmatched == 0 {
			t.Fatal("no unmatched inbound generated")
		}
		return s.Dropped
	}
	if d := run(0, 0); d != 0 {
		t.Fatalf("disabled aggregate dropped %d quiet-tenant packets", d)
	}
	if d := run(0.5, 2); d == 0 {
		t.Fatal("aggregate pressure never reached the quiet tenant")
	}
}

// TestTenantManagerTelemetry: the manager's control-plane series land
// in the registry, including per-tenant series when opted in.
func TestTenantManagerTelemetry(t *testing.T) {
	tel := NewTelemetry()
	m := newTestManager(t, 2, func(c *TenantManagerConfig) {
		c.Telemetry = tel
		c.PerTenantTelemetry = true
		c.AggregateLowMbps = 1
		c.AggregateHighMbps = 2
	})
	m.Process(tenantOutbound(0, 1, 0))
	m.EvictIdle(0)
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"p2pbound_tenants",
		"p2pbound_tenants_hydrated",
		"p2pbound_tenant_hydrations_total",
		"p2pbound_tenant_evictions_total",
		"p2pbound_tenant_arena_bytes",
		"p2pbound_aggregate_pd",
		`p2pbound_tenant_packets_total{dir="outbound",tenant="t0000"}`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("telemetry missing %q", want)
		}
	}
}
