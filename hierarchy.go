package p2pbound

import (
	"math"
	"sync/atomic"
	"time"

	"p2pbound/internal/red"
	"p2pbound/internal/throughput"
)

// aggBudget is one shard's slice of the edge-wide uplink budget in the
// hierarchical-RED composition: every tenant limiter on the shard feeds
// its passed outbound bytes into the shared meter, and every tenant's
// drop probability is red.Combine-d with the ramp over the shared rate.
// One seeding subscriber therefore raises pressure on all of its
// shard's tenants proportionally instead of starving them silently —
// the Andreica & Tapuş resource-allocation framing applied to the
// paper's Equation 1.
//
// Like the tenants it serves, an aggBudget is single-writer: only the
// shard's processing goroutine touches the meter and cache. The atomic
// mirrors exist for scrape goroutines, exactly as in Limiter.
type aggBudget struct {
	meter  *throughput.Meter
	prober red.Prober

	// P_d cache over the shared meter, same discipline as Limiter.pd:
	// recompute only after outbound bytes land or simulated time crosses
	// a meter bucket.
	bucketWidth time.Duration
	pdUntil     time.Duration
	pdValid     bool
	cachedPd    float64

	pdBits     atomic.Uint64 //p2p:atomic
	uplinkBits atomic.Uint64 //p2p:atomic
}

// newAggBudget builds one shard's aggregate budget with the given
// Equation 1 thresholds (bits per second) over a window-sized meter.
func newAggBudget(lowBps, highBps float64, window time.Duration) (*aggBudget, error) {
	prober, err := red.NewLinear(lowBps, highBps)
	if err != nil {
		return nil, err
	}
	buckets := int(window / time.Second)
	if buckets < 1 {
		buckets = 1
	}
	meter, err := throughput.NewMeter(window/time.Duration(buckets), buckets)
	if err != nil {
		return nil, err
	}
	return &aggBudget{
		meter:       meter,
		prober:      prober,
		bucketWidth: window / time.Duration(buckets),
	}, nil
}

// add feeds passed outbound bytes into the shared meter and invalidates
// the cached aggregate P_d.
//
//p2p:hotpath
func (a *aggBudget) add(ts time.Duration, n int) {
	a.meter.Add(ts, n)
	a.pdValid = false
}

// pd returns the aggregate drop probability at simulated time ts.
//
//p2p:hotpath
func (a *aggBudget) pd(ts time.Duration) float64 {
	if !a.pdValid || ts >= a.pdUntil {
		crossed := ts >= a.pdUntil
		rate := a.meter.Rate(ts)
		a.cachedPd = a.prober.Pd(rate)
		a.pdUntil = ts - ts%a.bucketWidth + a.bucketWidth
		a.pdValid = true
		if crossed {
			a.pdBits.Store(math.Float64bits(a.cachedPd))
			a.uplinkBits.Store(math.Float64bits(rate))
		}
	}
	return a.cachedPd
}
