package p2pbound

import (
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// goldenStats is the exact end state of the golden trace below. The
// numbers are pinned on purpose: any change to verdict accounting, the
// P_d draw sequence, rotation cadence, or the anomaly/unroutable paths
// shows up here as a diff, not as silent drift.
var goldenStats = Stats{
	OutboundPackets:  3204,
	InboundPackets:   1794,
	InboundMatched:   1737,
	InboundUnmatched: 57,
	Dropped:          51,
	Rotations:        3,
	Unroutable:       1,
	TimeAnomalies:    1,
}

// goldenTrace is the fixed input: a seeded synthetic trace plus one
// unroutable packet and one beyond-tolerance clock regression appended,
// so every counter the telemetry layer exports is exercised.
func goldenTrace(t testing.TB) []Packet {
	pkts := publicTrace(t, 20*time.Second, 0.02, 11)
	last := pkts[len(pkts)-1].Timestamp
	pkts = append(pkts, Packet{
		Timestamp: last, Protocol: TCP,
		SrcAddr: netip.MustParseAddr("2001:db8::1"), SrcPort: 1,
		DstAddr: clientAddr, DstPort: 2, Size: 60,
	})
	pkts = append(pkts, outPkt(last-time.Second, 50000, 80, 1500))
	return pkts
}

func goldenConfig() Config {
	return Config{ClientNetwork: testNet, LowMbps: 0.1, HighMbps: 0.5, Seed: 3}
}

// TestGoldenMetricsLimiter replays the golden trace through a
// telemetry-attached Limiter and asserts the exact end-state counters
// twice: once through Stats, and once through the Prometheus exposition
// — so removing either the counter wiring or the telemetry export breaks
// the test.
func TestGoldenMetricsLimiter(t *testing.T) {
	pkts := goldenTrace(t)
	tel := NewTelemetry()
	cfg := goldenConfig()
	cfg.Telemetry = tel
	var traces int
	cfg.TraceEveryN = 10
	cfg.TraceFunc = func(DropTrace) { traces++ }
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Decision, 0, len(pkts))
	l.ProcessBatch(pkts, dst)

	if got := l.Stats(); got != goldenStats {
		t.Fatalf("golden stats drifted:\n got %+v\nwant %+v", got, goldenStats)
	}
	if want := int(goldenStats.Dropped) / 10; traces != want {
		t.Fatalf("sampled %d drop traces, want %d", traces, want)
	}

	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`p2pbound_packets_total{dir="outbound",shard="0"} 3204`,
		`p2pbound_packets_total{dir="inbound",shard="0"} 1794`,
		`p2pbound_inbound_total{result="matched",shard="0"} 1737`,
		`p2pbound_inbound_total{result="unmatched",shard="0"} 57`,
		`p2pbound_dropped_total{shard="0"} 51`,
		`p2pbound_rotations_total{shard="0"} 3`,
		`p2pbound_unroutable_total{shard="0"} 1`,
		`p2pbound_time_anomalies_total{shard="0"} 1`,
		`p2pbound_drop_pd_count 51`,
		`p2pbound_batch_seconds_count 1`,
		`p2pbound_filter_info{hash_scheme="per-index",layout="classic",shard="0"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q", line)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestGoldenMetricsPipeline drives a deterministic overload through a
// telemetry-attached Pipeline: the workers are gated, every packet
// shares one socket pair (one shard), and the fail-closed ring has room
// for exactly ringSize packets — so accepted and shed counts are exact,
// not timing-dependent.
func TestGoldenMetricsPipeline(t *testing.T) {
	const ringSize = 4
	const total = 32
	tel := NewTelemetry()
	cfg := goldenConfig()
	cfg.Telemetry = tel
	gate := make(chan struct{})
	p, err := NewPipeline(cfg, PipelineConfig{
		Shards:     2,
		RingSize:   ringSize,
		OnOverload: ShedFailClosed,
		testGate:   gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		p.Submit(outPkt(time.Duration(i)*time.Millisecond, 40000, 80, 1500))
	}
	close(gate)
	p.Drain()
	p.Close()

	s := p.Stats()
	if s.ShedDropped != total-ringSize {
		t.Fatalf("ShedDropped = %d, want %d", s.ShedDropped, total-ringSize)
	}
	if s.ShedPassed != 0 {
		t.Fatalf("ShedPassed = %d, want 0", s.ShedPassed)
	}
	passed, dropped := p.Verdicts()
	if passed+dropped != ringSize {
		t.Fatalf("decided %d packets, want %d", passed+dropped, ringSize)
	}
	if s.OutboundPackets != ringSize {
		t.Fatalf("OutboundPackets = %d, want %d", s.OutboundPackets, ringSize)
	}

	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`p2pbound_pipeline_verdicts_total{verdict="pass",pipeline="0"} 4`,
		`p2pbound_pipeline_verdicts_total{verdict="drop",pipeline="0"} 0`,
		`p2pbound_pipeline_shed_total{verdict="pass",pipeline="0"} 0`,
		`p2pbound_pipeline_shed_total{verdict="drop",pipeline="0"} 28`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q\nfull exposition:\n%s", line, out)
		}
	}
}

// TestProcessAllocationFreeWithTelemetry re-pins the zero-allocation hot
// path with the full observability layer attached: telemetry counters,
// the drop-P_d histogram, batch latency, and sampled drop tracing must
// all record without a single heap allocation per packet.
func TestProcessAllocationFreeWithTelemetry(t *testing.T) {
	mk := func() *Limiter {
		tel := NewTelemetry()
		cfg := goldenConfig()
		cfg.Telemetry = tel
		cfg.TraceEveryN = 64
		var traced int64
		cfg.TraceFunc = func(DropTrace) { traced++ }
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	pkts := make([]Packet, 256)
	for i := range pkts {
		if i%2 == 0 {
			pkts[i] = outPkt(0, uint16(30000+i), 80, 1500)
		} else {
			pkts[i] = inPkt(0, 80, uint16(40000+i), 1500)
		}
	}

	l := mk()
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		l.Process(pkts[i%len(pkts)])
		i++
	}); avg != 0 {
		t.Fatalf("Process with telemetry allocates %.2f allocs/op, want 0", avg)
	}

	lb := mk()
	dst := make([]Decision, 0, len(pkts))
	if avg := testing.AllocsPerRun(100, func() {
		dst = lb.ProcessBatch(pkts, dst[:0])
	}); avg != 0 {
		t.Fatalf("ProcessBatch with telemetry allocates %.2f allocs/op, want 0", avg)
	}
}

// statsFields flattens a Stats for the monotonicity check.
func statsFields(s Stats) [10]int64 {
	return [10]int64{
		s.OutboundPackets, s.InboundPackets, s.InboundMatched,
		s.InboundUnmatched, s.Dropped, s.Rotations,
		s.Unroutable, s.TimeAnomalies, s.ShedPassed, s.ShedDropped,
	}
}

// TestStatsMonotonicUnderLoad is the torn-read regression test: while
// one goroutine processes packets, concurrent snapshots via Stats and
// concurrent Prometheus scrapes must observe every counter as
// monotonically non-decreasing. Before the counters were atomics, a
// snapshot could see a torn or stale value under -race.
func TestStatsMonotonicUnderLoad(t *testing.T) {
	pkts := goldenTrace(t)
	tel := NewTelemetry()
	cfg := goldenConfig()
	cfg.Telemetry = tel
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		prev := statsFields(l.Stats())
		for !done.Load() {
			cur := statsFields(l.Stats())
			for i := range cur {
				if cur[i] < prev[i] {
					t.Errorf("counter %d regressed: %d -> %d", i, prev[i], cur[i])
					return
				}
			}
			prev = cur
		}
	}()
	go func() {
		defer wg.Done()
		for !done.Load() {
			var b strings.Builder
			if err := tel.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	dst := make([]Decision, 0, 256)
	for rounds := 0; rounds < 20; rounds++ {
		base := time.Duration(rounds) * 21 * time.Second
		for start := 0; start < len(pkts); start += 256 {
			end := start + 256
			if end > len(pkts) {
				end = len(pkts)
			}
			chunk := make([]Packet, end-start)
			copy(chunk, pkts[start:end])
			for i := range chunk {
				chunk[i].Timestamp += base
			}
			dst = l.ProcessBatch(chunk, dst[:0])
		}
	}
	done.Store(true)
	wg.Wait()
}
