package p2pbound

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func newLimiter(t *testing.T, cfg Config) *Limiter {
	t.Helper()
	if cfg.ClientNetwork == "" {
		cfg.ClientNetwork = "140.112.0.0/16"
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

var (
	clientAddr = netip.MustParseAddr("140.112.1.10")
	remoteAddr = netip.MustParseAddr("8.8.8.8")
)

func outPkt(ts time.Duration, srcPort, dstPort uint16, size int) Packet {
	return Packet{
		Timestamp: ts, Protocol: TCP,
		SrcAddr: clientAddr, SrcPort: srcPort,
		DstAddr: remoteAddr, DstPort: dstPort,
		Size: size,
	}
}

func inPkt(ts time.Duration, srcPort, dstPort uint16, size int) Packet {
	return Packet{
		Timestamp: ts, Protocol: TCP,
		SrcAddr: remoteAddr, SrcPort: srcPort,
		DstAddr: clientAddr, DstPort: dstPort,
		Size: size,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing client network accepted")
	}
	if _, err := New(Config{ClientNetwork: "not-a-cidr"}); err == nil {
		t.Fatal("bad CIDR accepted")
	}
	if _, err := New(Config{ClientNetwork: "10.0.0.0/8", LowMbps: 100, HighMbps: 50}); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	l := newLimiter(t, Config{})
	if got := l.MemoryBytes(); got != 512*1024 {
		t.Fatalf("default memory = %d, want 512 KiB", got)
	}
	if got := l.ExpiryHorizon(); got != 20*time.Second {
		t.Fatalf("default T_e = %v, want 20s", got)
	}
}

func TestOutboundAlwaysPasses(t *testing.T) {
	l := newLimiter(t, Config{})
	for i := 0; i < 100; i++ {
		if d := l.Process(outPkt(0, uint16(40000+i), 80, 1500)); d != Pass {
			t.Fatalf("outbound packet dropped: %v", d)
		}
	}
	if s := l.Stats(); s.OutboundPackets != 100 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestResponsesAdmittedUnderLoad(t *testing.T) {
	// Thresholds low enough that the uplink is "full" immediately.
	l := newLimiter(t, Config{LowMbps: 0.001, HighMbps: 0.002})
	l.Process(outPkt(0, 40000, 80, 100_000))
	l.Process(outPkt(time.Second, 40000, 80, 100_000))
	if got := l.DropProbability(); got != 1 {
		t.Fatalf("P_d = %g, want 1 under full load", got)
	}
	// The response to our own request still passes.
	if d := l.Process(inPkt(time.Second+time.Millisecond, 80, 40000, 1500)); d != Pass {
		t.Fatalf("response dropped: %v", d)
	}
	// An unsolicited inbound request is dropped.
	if d := l.Process(inPkt(time.Second+2*time.Millisecond, 50000, 31337, 1500)); d != Drop {
		t.Fatalf("unsolicited inbound = %v, want Drop", d)
	}
}

func TestNoDropsBelowLowThreshold(t *testing.T) {
	l := newLimiter(t, Config{LowMbps: 1000, HighMbps: 2000})
	dropped := 0
	for i := 0; i < 500; i++ {
		if l.Process(inPkt(0, uint16(50000+i), uint16(20000+i), 1500)) == Drop {
			dropped++
		}
	}
	if dropped != 0 {
		t.Fatalf("%d packets dropped below the low threshold", dropped)
	}
	if got := l.DropProbability(); got != 0 {
		t.Fatalf("P_d = %g", got)
	}
}

func TestUplinkMeterTracksPassedTraffic(t *testing.T) {
	l := newLimiter(t, Config{})
	for s := 0; s < 5; s++ {
		// 1 MB/s of upload.
		l.Process(outPkt(time.Duration(s)*time.Second, 40000, 80, 1_000_000))
	}
	got := l.UplinkMbps()
	if got < 7 || got > 9 {
		t.Fatalf("uplink = %.2f Mbps, want ≈8", got)
	}
}

func TestHolePunchConfig(t *testing.T) {
	for _, hp := range []bool{false, true} {
		l := newLimiter(t, Config{HolePunch: hp, LowMbps: 0.0001, HighMbps: 0.0002})
		punch := Packet{
			Timestamp: 0, Protocol: UDP,
			SrcAddr: clientAddr, SrcPort: 4500,
			DstAddr: remoteAddr, DstPort: 3478,
			Size: 10_000_000, // saturate the meter so P_d = 1
		}
		l.Process(punch)
		reply := Packet{
			Timestamp: 10 * time.Millisecond, Protocol: UDP,
			SrcAddr: remoteAddr, SrcPort: 9999, // shifted source port
			DstAddr: clientAddr, DstPort: 4500,
			Size: 60,
		}
		got := l.Process(reply)
		want := Drop
		if hp {
			want = Pass
		}
		if got != want {
			t.Errorf("holePunch=%v: shifted reply = %v, want %v", hp, got, want)
		}
	}
}

func TestNonIPv4Dropped(t *testing.T) {
	l := newLimiter(t, Config{})
	v6 := Packet{
		Timestamp: 0, Protocol: TCP,
		SrcAddr: netip.MustParseAddr("2001:db8::1"), SrcPort: 1,
		DstAddr: clientAddr, DstPort: 2,
		Size: 60,
	}
	if d := l.Process(v6); d != Drop {
		t.Fatalf("IPv6 packet = %v, want defensive Drop", d)
	}
	s := l.Stats()
	if s.Unroutable != 1 {
		t.Fatalf("Unroutable = %d, want 1", s.Unroutable)
	}
	// The defensive drop appears in no other counter.
	if s.InboundPackets != 0 || s.OutboundPackets != 0 || s.Dropped != 0 {
		t.Fatalf("unroutable packet leaked into other counters: %+v", s)
	}
	// IPv4-mapped IPv6 is also rejected (Is4 is false for 4-in-6).
	mapped := v6
	mapped.SrcAddr = netip.MustParseAddr("::ffff:8.8.8.8")
	if d := l.Process(mapped); d != Drop {
		t.Fatalf("4-in-6 packet = %v, want defensive Drop", d)
	}
	if got := l.Stats().Unroutable; got != 2 {
		t.Fatalf("Unroutable = %d, want 2", got)
	}
}

// TestProcessAllocationFree pins the zero-allocation hot path: the
// public Limiter.Process and ProcessBatch must not heap-allocate per
// packet.
func TestProcessAllocationFree(t *testing.T) {
	l := newLimiter(t, Config{})
	client := netip.MustParseAddr("140.112.1.2")
	remote := netip.MustParseAddr("8.8.8.8")
	pkts := make([]Packet, 256)
	for i := range pkts {
		if i%2 == 0 {
			pkts[i] = Packet{
				Protocol: TCP,
				SrcAddr:  client, SrcPort: uint16(30000 + i),
				DstAddr: remote, DstPort: 80,
				Size: 1500,
			}
		} else {
			pkts[i] = Packet{
				Protocol: TCP,
				SrcAddr:  remote, SrcPort: 80,
				DstAddr: client, DstPort: uint16(30000 + i - 1),
				Size: 1500,
			}
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		l.Process(pkts[i%len(pkts)])
		i++
	}); avg != 0 {
		t.Fatalf("Process allocates %.2f allocs/op, want 0", avg)
	}

	lb := newLimiter(t, Config{})
	dst := make([]Decision, 0, len(pkts))
	if avg := testing.AllocsPerRun(100, func() {
		dst = lb.ProcessBatch(pkts, dst[:0])
	}); avg != 0 {
		t.Fatalf("ProcessBatch allocates %.2f allocs/op, want 0", avg)
	}
}

func TestCustomGeometry(t *testing.T) {
	l := newLimiter(t, Config{
		Vectors:       2,
		VectorBits:    12,
		HashFunctions: 4,
		RotateEvery:   time.Second,
	})
	if got := l.MemoryBytes(); got != 2*(1<<12)/8 {
		t.Fatalf("memory = %d", got)
	}
	if got := l.ExpiryHorizon(); got != 2*time.Second {
		t.Fatalf("T_e = %v", got)
	}
}

func TestDecisionString(t *testing.T) {
	if Pass.String() != "PASS" || Drop.String() != "DROP" || Decision(7).String() != "decision(7)" {
		t.Fatal("decision names wrong")
	}
}

func TestStatsSnapshot(t *testing.T) {
	l := newLimiter(t, Config{LowMbps: 0.0001, HighMbps: 0.0002})
	l.Process(outPkt(0, 40000, 80, 1_000_000))
	l.Process(inPkt(time.Millisecond, 80, 40000, 100))   // matched
	l.Process(inPkt(2*time.Millisecond, 81, 40001, 100)) // unsolicited
	s := l.Stats()
	if s.OutboundPackets != 1 || s.InboundPackets != 2 || s.InboundMatched != 1 || s.Dropped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSaveRestoreState(t *testing.T) {
	l := newLimiter(t, Config{LowMbps: 0.0001, HighMbps: 0.0002})
	// Track a flow and saturate the meter.
	l.Process(outPkt(0, 40000, 80, 10_000_000))

	var buf bytes.Buffer
	if err := l.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A "restarted" limiter without state challenges the response...
	fresh := newLimiter(t, Config{LowMbps: 0.0001, HighMbps: 0.0002})
	fresh.Process(outPkt(time.Second, 49999, 81, 10_000_000)) // saturate meter
	if d := fresh.Process(inPkt(time.Second+time.Millisecond, 80, 40000, 100)); d != Drop {
		t.Fatalf("fresh limiter admitted unknown flow: %v", d)
	}
	// ...but after restoring the snapshot it admits it again.
	if err := fresh.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d := fresh.Process(inPkt(time.Second+2*time.Millisecond, 80, 40000, 100)); d != Pass {
		t.Fatalf("restored limiter dropped a tracked flow: %v", d)
	}
}

func TestRestoreStateRejectsGarbage(t *testing.T) {
	l := newLimiter(t, Config{})
	if err := l.RestoreState(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
