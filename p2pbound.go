// Package p2pbound bounds peer-to-peer upload traffic in client networks
// without inspecting packet payloads, implementing the bitmap filter of
// Huang & Lei, "Bounding Peer-to-Peer Upload Traffic in Client Networks"
// (DSN 2007).
//
// A Limiter is installed at the edge of a client network (an edge or core
// router of Figure 6) and sees every packet's five tuple, direction, and
// size. Outbound packets are always passed and mark their socket pair in a
// {k×N}-bitmap of rotating bloom filters; inbound packets that match a
// recently seen outbound socket pair are passed, while unmatched inbound
// packets are dropped with a probability that ramps from 0 to 1 as the
// measured uplink throughput climbs from a low to a high threshold.
// Because P2P upload traffic is predominantly triggered by inbound
// requests, throttling unmatched inbound packets bounds the upload
// bandwidth P2P applications can consume while leaving client-initiated
// traffic untouched — all in constant memory and constant time per packet.
//
// Basic usage:
//
//	limiter, err := p2pbound.New(p2pbound.Config{
//		ClientNetwork: "140.112.0.0/16",
//		LowMbps:       50,
//		HighMbps:      100,
//	})
//	...
//	switch limiter.Process(pkt) {
//	case p2pbound.Pass: // forward the packet
//	case p2pbound.Drop: // discard it
//	}
package p2pbound

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
	"p2pbound/internal/red"
	"p2pbound/internal/throughput"
)

// Protocol is an IP transport protocol.
type Protocol uint8

// Transport protocols the limiter filters. Other protocols should be
// handled by a conventional policy outside the limiter.
const (
	TCP Protocol = 6
	UDP Protocol = 17
)

// Decision is the limiter's verdict for a packet.
type Decision int

// Verdicts. Outbound packets always Pass.
const (
	Pass Decision = iota + 1
	Drop
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Pass:
		return "PASS"
	case Drop:
		return "DROP"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// HashScheme selects how the m filter indexes are derived per packet.
type HashScheme int

// Hash schemes. The zero value selects HashPerIndex.
const (
	// HashPerIndex runs m independent hash computations per key — the
	// paper's construction.
	HashPerIndex HashScheme = iota + 1
	// HashOneShot hashes each key once into 64 bits and derives all m
	// indexes arithmetically (Kirsch–Mitzenmacher), so per-packet hash
	// cost is independent of m.
	HashOneShot
)

// Layout selects where a key's m bits land in each bit vector.
type Layout int

// Bit layouts. The zero value selects LayoutClassic.
const (
	// LayoutClassic scatters the m bits across the whole vector.
	LayoutClassic Layout = iota + 1
	// LayoutBlocked confines each key's m bits to one 512-bit cache
	// line per vector, cutting the per-packet memory stalls from m·k to
	// k at production table sizes, for a bounded false-positive-rate
	// increase (see DESIGN.md §12). Implies HashOneShot.
	LayoutBlocked
)

// Packet is one observed packet. Timestamp is an offset from any fixed
// origin (trace start, limiter start); the limiter is driven entirely by
// these timestamps, so replayed traces behave identically to live traffic.
type Packet struct {
	Timestamp time.Duration
	Protocol  Protocol
	SrcAddr   netip.Addr
	SrcPort   uint16
	DstAddr   netip.Addr
	DstPort   uint16
	// Size is the packet's total length in bytes, used for throughput
	// accounting.
	Size int
}

// Config parameterizes a Limiter. The zero value of every optional field
// selects the paper's evaluation settings.
type Config struct {
	// ClientNetwork is the CIDR prefix of the protected client network;
	// packets sourced inside it are outbound. Required.
	ClientNetwork string

	// LowMbps and HighMbps are the RED-style thresholds of Equation 1:
	// below LowMbps of uplink throughput no unmatched inbound packet is
	// dropped; above HighMbps all are. Defaults: 50 and 100, the paper's
	// Figure 9 configuration.
	LowMbps  float64
	HighMbps float64

	// Vectors is k, the number of bloom-filter bit vectors (default 4).
	Vectors int
	// VectorBits is n: each bit vector holds 2^n bits (default 20, i.e.
	// 1 Mbit per vector — a 512 KiB filter at k=4).
	VectorBits uint
	// HashFunctions is m, the number of shared hash functions
	// (default 3).
	HashFunctions int
	// RotateEvery is Δt, the rotation period (default 5 s). Together
	// with Vectors it sets the expiry horizon T_e = k·Δt.
	RotateEvery time.Duration

	// HashScheme selects how the m indexes are derived from each key
	// (default HashPerIndex, the paper's construction; HashOneShot
	// derives all m from one 64-bit hash).
	HashScheme HashScheme
	// Layout selects where a key's m bits land in each vector (default
	// LayoutClassic; LayoutBlocked confines them to one cache line and
	// implies HashOneShot). Snapshots record both choices, so restores
	// across a scheme or layout change are rejected like any other
	// geometry mismatch.
	Layout Layout

	// HolePunch hashes partial tuples (remote port excluded) so NAT
	// hole punching keeps working behind the limiter.
	HolePunch bool

	// MeterWindow is the uplink throughput averaging window feeding the
	// drop probability (default 5 s).
	MeterWindow time.Duration

	// Seed makes the probabilistic drop decisions reproducible.
	Seed uint64

	// ReorderTolerance is the capture-reorder window for backward
	// timestamps. The limiter never requires monotonic input: a packet
	// timestamped behind the high-water mark of previous packets is
	// processed against clamped (high-water) time, and only a regression
	// larger than this window counts in Stats.TimeAnomalies. The default
	// 0 counts every backward step. Small values (a few ms) absorb
	// multi-queue NIC reordering; the clamp itself is unconditional.
	ReorderTolerance time.Duration

	// Telemetry, when non-nil, attaches the limiter to a metrics registry:
	// every counter in Stats, the current P_d, and the uplink rate become
	// scrapeable series (see Telemetry). Shards built through NewSharded or
	// NewPipeline attach in shard order and carry a shard label. Nil keeps
	// the limiter free of any observability cost beyond its own counters.
	Telemetry *Telemetry

	// TraceEveryN enables sampled decision tracing: every Nth packet the
	// filter drops is reported to TraceFunc with its socket pair, the P_d
	// in effect, the measured uplink rate, and the rotation epoch. Zero
	// (or a nil TraceFunc) disables tracing. Unroutable defensive drops
	// are counted but not traced — they never reach a P_d decision.
	TraceEveryN int
	// TraceFunc receives sampled drop traces. It is called synchronously
	// on the processing goroutine, so it must be fast and must not block;
	// it must not call back into the limiter.
	TraceFunc func(DropTrace)
}

// Stats is a snapshot of a Limiter's activity counters.
//
// Accounting invariant: InboundMatched + InboundUnmatched ==
// InboundPackets, and every processed packet lands in exactly one of
// OutboundPackets, InboundPackets, or Unroutable — chaos tests hold the
// limiter to this under reordered, duplicated, and clock-regressed
// input.
type Stats struct {
	OutboundPackets int64
	InboundPackets  int64
	InboundMatched  int64 // inbound packets matching tracked outbound state
	// InboundUnmatched counts inbound packets with at least one unmarked
	// filter bit; Dropped is the subset that lost a P_d draw.
	InboundUnmatched int64
	Dropped          int64
	Rotations        int64
	// Unroutable counts packets the limiter could not classify (a
	// non-IPv4 source or destination address). They are dropped
	// defensively and appear in no other counter.
	Unroutable int64
	// TimeAnomalies counts packets whose timestamp regressed behind the
	// limiter's high-water mark by more than Config.ReorderTolerance.
	// Their clocks were clamped forward; the packets were still decided.
	TimeAnomalies int64
	// ShedPassed and ShedDropped count packets a saturated Pipeline shed
	// by policy instead of deciding (see ShedPolicy). Always zero for a
	// plain Limiter or ShardedLimiter.
	ShedPassed  int64
	ShedDropped int64
}

// Limiter bounds P2P upload traffic for one client network. Packet
// processing is not safe for concurrent use — shard by flow hash for
// multi-queue pipelines (see ShardedLimiter and Pipeline) — but Stats,
// telemetry scrapes, and RestoreState/AdoptState may run concurrently
// with processing: the filter hangs off an atomic pointer and a state
// swap folds the outgoing filter's counters into a base so Stats stays
// monotone across the swap.
type Limiter struct {
	// filter is the live bitmap filter. The hot path loads it once per
	// Process call (or per batch chunk) and never touches a lock;
	// RestoreState/AdoptState publish a replacement via swapFilter.
	filter atomic.Pointer[core.Filter] //p2p:atomic

	// statsMu serializes filter swaps against Stats snapshots;
	// baseStats accumulates the counters of every retired filter so
	// totals never move backward when a swap installs a fresh filter.
	// Neither is touched by the packet path.
	statsMu   sync.Mutex
	baseStats core.Stats

	// failClosed, when set, forces P_d to 1: every unmatched inbound
	// packet is dropped regardless of uplink rate. A replicated fleet
	// sets it while a member is joining or partitioned (not Ready), so
	// a stale filter can never admit traffic the fleet already marked.
	// Owned by the processing goroutine, like the rest of the limiter.
	failClosed bool //p2p:confined limproc

	prober    red.Prober
	meter     *throughput.Meter
	clientNet packet.Network
	now       time.Duration //p2p:confined limproc

	// unroutable and timeAnomalies are atomic for the same reason as the
	// filter's counters: one writer (the processing goroutine), any number
	// of concurrent Stats/scrape readers.
	unroutable atomic.Int64 //p2p:atomic

	// Monotonic clock guard: maxTS is the high-water mark of processed
	// timestamps, tolerance the reorder window, timeAnomalies the count
	// of beyond-tolerance regressions (see Config.ReorderTolerance).
	maxTS         time.Duration //p2p:confined limproc
	tsStarted     bool          //p2p:confined limproc
	tolerance     time.Duration
	timeAnomalies atomic.Int64 //p2p:atomic

	// Telemetry wiring (nil/zero when Config.Telemetry is unset). pdBits
	// and uplinkBits mirror the P_d cache as atomic float bits so scrape
	// goroutines can read the live values without touching the meter.
	tel        *Telemetry
	telShard   int
	pdBits     atomic.Uint64 //p2p:atomic
	uplinkBits atomic.Uint64 //p2p:atomic

	// Sampled drop tracing (see Config.TraceEveryN).
	traceEvery int64
	traceFn    func(DropTrace)
	dropSeen   int64 //p2p:confined limproc

	// scratch is the two-pass batch scratch: one chunk of converted
	// internal packets and their routability flags, indexed in lockstep
	// with the filter's hash scratch (see processChunk). It is allocated
	// on the first ProcessBatch call rather than inline in the struct:
	// the fixed arrays dominate the limiter's resident size (~4.5 KiB of
	// the ~5 KiB struct), and a multi-tenant control plane keeps hundreds
	// of thousands of mostly-idle limiters resident whose packets arrive
	// through the manager's own batching, never through their private
	// scratch.
	scratch *batchScratch //p2p:confined limproc

	// agg, when non-nil, nests this limiter's P_d under a shared
	// aggregate uplink budget (hierarchical RED): outbound bytes feed the
	// aggregate meter too, and the effective drop probability becomes
	// red.Combine(own, aggregate). Nil — every limiter outside a
	// TenantManager — leaves the ramp bit-identical to the paper's.
	agg *aggBudget

	// P_d cache. The linear prober is a pure function of the metered
	// uplink rate, and the rate only changes when bytes are added or
	// simulated time crosses a meter bucket boundary — so the drop
	// probability is recomputed only at those points instead of per
	// packet. pdUntil is the exclusive end of the bucket for which
	// cachedPd is valid; meter.Add invalidates it.
	bucketWidth time.Duration
	pdUntil     time.Duration //p2p:confined limproc
	pdValid     bool          //p2p:confined limproc
	cachedPd    float64       //p2p:confined limproc
}

// batchScratch is the per-chunk conversion scratch behind ProcessBatch;
// see Limiter.scratch for why it lives behind a pointer.
type batchScratch struct {
	bpkts [core.BatchChunk]packet.Packet
	bok   [core.BatchChunk]bool
}

// New builds a Limiter from cfg, applying the paper's defaults to every
// unset optional field.
func New(cfg Config) (*Limiter, error) {
	l, coreCfg, err := newShell(cfg)
	if err != nil {
		return nil, err
	}
	filter, err := core.New(coreCfg)
	if err != nil {
		return nil, fmt.Errorf("p2pbound: %w", err)
	}
	l.filter.Store(filter)
	if cfg.Telemetry != nil {
		cfg.Telemetry.attach(l)
	}
	return l, nil
}

// newShell builds everything of a Limiter except its bitmap filter and
// telemetry attachment, returning the resolved core configuration so
// the caller chooses how the filter is built — core.New for a
// standalone limiter, core.NewWith over a shared arena for the tenant
// manager's per-subscriber fleet, or no filter at all for a tenant
// created in the spilled (evicted) state.
func newShell(cfg Config) (*Limiter, core.Config, error) {
	clientNet, err := packet.ParseNetwork(cfg.ClientNetwork)
	if err != nil {
		return nil, core.Config{}, fmt.Errorf("p2pbound: %w", err)
	}
	if cfg.LowMbps == 0 && cfg.HighMbps == 0 {
		cfg.LowMbps, cfg.HighMbps = 50, 100
	}
	prober, err := red.NewLinear(cfg.LowMbps*1e6, cfg.HighMbps*1e6)
	if err != nil {
		return nil, core.Config{}, fmt.Errorf("p2pbound: %w", err)
	}
	coreCfg := core.DefaultConfig()
	if cfg.Vectors != 0 {
		coreCfg.K = cfg.Vectors
	}
	if cfg.VectorBits != 0 {
		coreCfg.NBits = cfg.VectorBits
	}
	if cfg.HashFunctions != 0 {
		coreCfg.M = cfg.HashFunctions
	}
	if cfg.RotateEvery != 0 {
		coreCfg.DeltaT = cfg.RotateEvery
	}
	coreCfg.HashScheme = hashes.Scheme(cfg.HashScheme)
	coreCfg.Layout = hashes.Layout(cfg.Layout)
	coreCfg.HolePunch = cfg.HolePunch
	coreCfg.Seed = cfg.Seed
	coreCfg.ReorderTolerance = cfg.ReorderTolerance
	window := cfg.MeterWindow
	if window <= 0 {
		window = 5 * time.Second
	}
	buckets := int(window / time.Second)
	if buckets < 1 {
		buckets = 1
	}
	meter, err := throughput.NewMeter(window/time.Duration(buckets), buckets)
	if err != nil {
		return nil, core.Config{}, fmt.Errorf("p2pbound: %w", err)
	}
	l := &Limiter{
		prober:      prober,
		meter:       meter,
		clientNet:   clientNet,
		bucketWidth: window / time.Duration(buckets),
		tolerance:   cfg.ReorderTolerance,
	}
	if cfg.TraceEveryN > 0 && cfg.TraceFunc != nil {
		l.traceEvery = int64(cfg.TraceEveryN)
		l.traceFn = cfg.TraceFunc
	}
	return l, coreCfg, nil
}

// Process decides one packet's fate. Packets should be fed in timestamp
// order, but the limiter is hardened against capture-clock anomalies: a
// backward or duplicate timestamp is clamped to the high-water mark of
// earlier packets (so rotation, metering, and the P_d cache only ever
// move forward) and the packet is decided normally. Regressions beyond
// Config.ReorderTolerance are counted in Stats.TimeAnomalies.
//
// Defensive-drop policy: a packet the limiter cannot classify (a
// non-IPv4 source or destination address) is treated as unmatched
// inbound under full load and dropped, because passing unclassifiable
// traffic would hand P2P applications a trivial bypass. Such packets are
// counted in Stats.Unroutable and nowhere else; route non-IPv4 traffic
// to a conventional policy outside the limiter if it must be carried.
//
// The call is allocation-free: the packet travels the whole internal
// chain by value.
//
//p2p:hotpath
//p2p:confined limproc entry
func (l *Limiter) Process(p Packet) Decision {
	var pkt packet.Packet
	if !l.toInternal(p, &pkt) {
		l.unroutable.Add(1)
		return Drop
	}
	l.clampTS(&pkt)
	f := l.filter.Load()
	f.Advance(pkt.TS)
	pd := l.pd(pkt.TS)
	return l.decide(f, &p, &pkt, pd, f.Process(&pkt, pd))
}

// clampTS applies the monotonic clock guard to pkt and advances the
// limiter's notion of now (see Config.ReorderTolerance).
//
//p2p:hotpath
//p2p:confined limproc
func (l *Limiter) clampTS(pkt *packet.Packet) {
	if l.tsStarted && pkt.TS < l.maxTS {
		if l.maxTS-pkt.TS > l.tolerance {
			l.timeAnomalies.Add(1)
		}
		pkt.TS = l.maxTS
	} else {
		l.maxTS = pkt.TS
		l.tsStarted = true
	}
	l.now = pkt.TS
}

// decide applies the post-verdict bookkeeping — uplink metering, P_d
// cache invalidation, drop telemetry, and sampled tracing — shared by
// Process and ProcessBatch, and maps the filter verdict to a Decision.
//
//p2p:hotpath
//p2p:confined limproc
func (l *Limiter) decide(f *core.Filter, p *Packet, pkt *packet.Packet, pd float64, verdict core.Verdict) Decision {
	if verdict == core.Pass && pkt.Dir == packet.Outbound {
		l.meter.Add(pkt.TS, p.Size)
		l.pdValid = false
		if l.agg != nil {
			l.agg.add(pkt.TS, p.Size)
		}
	}
	if verdict == core.Drop {
		if l.tel != nil {
			l.tel.dropPd.Observe(l.telShard, pd)
		}
		if l.traceFn != nil {
			l.dropSeen++
			if l.dropSeen%l.traceEvery == 0 {
				l.traceFn(DropTrace{
					Timestamp:  p.Timestamp,
					Protocol:   p.Protocol,
					SrcAddr:    p.SrcAddr,
					SrcPort:    p.SrcPort,
					DstAddr:    p.DstAddr,
					DstPort:    p.DstPort,
					Pd:         pd,
					UplinkMbps: l.meter.Rate(pkt.TS) / 1e6,
					Epoch:      f.Rotations(),
				})
			}
		}
		return Drop
	}
	return Pass
}

// ProcessBatch decides a timestamp-sorted slice of packets, appending
// one Decision per packet to dst and returning the extended slice.
// Passing a reusable dst[:0] keeps the call allocation-free. Verdicts
// and counters are identical to feeding the same packets through Process
// one at a time; internally the batch runs in two passes per chunk of
// core.BatchChunk packets — pass A converts and hashes every packet and
// touches the target cache lines so the DRAM fetches overlap, pass B
// replays the per-packet decision sequence against warm lines (see
// DESIGN.md §12). The split is invisible in the results because index
// derivation depends only on key bytes and configuration, never on
// rotation or meter state.
//
//p2p:confined limproc entry
func (l *Limiter) ProcessBatch(pkts []Packet, dst []Decision) []Decision {
	var start time.Time
	if l.tel != nil {
		start = time.Now()
	}
	if l.scratch == nil && len(pkts) > 0 {
		// One-time, off the annotated hot path: testing.AllocsPerRun's
		// warm-up run absorbs it, and steady state never re-allocates.
		l.scratch = new(batchScratch)
	}
	for lo := 0; lo < len(pkts); lo += core.BatchChunk {
		hi := lo + core.BatchChunk
		if hi > len(pkts) {
			hi = len(pkts)
		}
		dst = l.processChunk(pkts[lo:hi], dst)
	}
	if l.tel != nil && len(pkts) > 0 {
		l.tel.batchSeconds.Observe(l.telShard, time.Since(start).Seconds())
	}
	return dst
}

// processChunk runs one two-pass chunk of at most core.BatchChunk
// packets. Unroutable packets keep their slot — they are hashed as the
// zero packet in pass A (harmless: the indexes are never used) and
// defensively dropped in pass B — so the chunk index always equals the
// filter's scratch index.
//
//p2p:hotpath
//p2p:confined limproc
func (l *Limiter) processChunk(chunk []Packet, dst []Decision) []Decision {
	f := l.filter.Load()
	sc := l.scratch
	for i := range chunk {
		sc.bok[i] = l.toInternal(chunk[i], &sc.bpkts[i])
		if !sc.bok[i] {
			sc.bpkts[i] = packet.Packet{}
		}
	}
	f.HashBatch(sc.bpkts[:len(chunk)])
	for i := range chunk {
		if !sc.bok[i] {
			l.unroutable.Add(1)
			dst = append(dst, Drop) //p2p:bounded cap(dst) is caller-owned; ProcessBatch appends exactly len(pkts)
			continue
		}
		pkt := &sc.bpkts[i]
		l.clampTS(pkt)
		f.Advance(pkt.TS)
		pd := l.pd(pkt.TS)
		dst = append(dst, l.decide(f, &chunk[i], pkt, pd, f.ProcessHashed(i, pkt, pd))) //p2p:bounded cap(dst) is caller-owned; ProcessBatch appends exactly len(pkts)
	}
	f.FlushStats()
	return dst
}

// pd returns the drop probability at simulated time ts, recomputing the
// metered rate only when the cached value can no longer be current: on
// the first call, after an outbound packet added bytes to the meter, or
// when ts enters a new meter bucket. Process and ProcessBatch share this
// path, so batch and per-packet runs draw identical P_d sequences.
//
//p2p:hotpath
//p2p:confined limproc
func (l *Limiter) pd(ts time.Duration) float64 {
	if l.failClosed {
		return 1
	}
	if !l.pdValid || ts >= l.pdUntil {
		crossed := ts >= l.pdUntil
		rate := l.meter.Rate(ts)
		l.cachedPd = l.prober.Pd(rate)
		l.pdUntil = ts - ts%l.bucketWidth + l.bucketWidth
		l.pdValid = true
		if l.tel != nil && crossed {
			// Mirror the fresh values as atomic bits so scrapes read a
			// live P_d and rate without touching the (unsynchronized)
			// meter. Gated on bucket crossings — once per bucketWidth of
			// trace time — because outbound traffic invalidates the cache
			// per packet and an atomic store is a full fence on the hot
			// path; within-bucket drift is invisible at scrape cadence.
			l.pdBits.Store(math.Float64bits(l.cachedPd))
			l.uplinkBits.Store(math.Float64bits(rate))
		}
	}
	if l.agg != nil {
		// Hierarchical RED: nest this limiter's ramp under the shared
		// uplink budget. Combine's exact early-outs keep a zero aggregate
		// pressure bit-identical to the bare ramp.
		return red.Combine(l.cachedPd, l.agg.pd(ts))
	}
	return l.cachedPd
}

// UplinkMbps returns the current measured uplink throughput in megabits
// per second. Reads processing-goroutine state (the clock high-water
// mark); call it from that goroutine, between batches.
//
//p2p:confined limproc entry
func (l *Limiter) UplinkMbps() float64 {
	return l.meter.Rate(l.now) / 1e6
}

// DropProbability returns the P_d currently applied to unmatched inbound
// packets. Like UplinkMbps, a processing-goroutine call.
//
//p2p:confined limproc entry
func (l *Limiter) DropProbability() float64 {
	return l.prober.Pd(l.meter.Rate(l.now))
}

// MemoryBytes returns the fixed size of the bitmap in bytes.
func (l *Limiter) MemoryBytes() int { return l.filter.Load().Bytes() }

// ExpiryHorizon returns T_e = k·Δt, the maximum idle time after which an
// outbound flow's inbound packets face the drop probability.
func (l *Limiter) ExpiryHorizon() time.Duration { return l.filter.Load().TE() }

// SetFailClosed switches the limiter between normal RED-ramp operation
// and fail-closed mode (P_d pinned to 1; see Limiter.failClosed). Must
// be called from the processing goroutine, like Process itself — the
// replicated fleet flips it from its sync pump between batches.
//
//p2p:confined limproc entry
func (l *Limiter) SetFailClosed(on bool) { l.failClosed = on }

// FailClosed reports whether SetFailClosed(true) is in effect.
//
//p2p:confined limproc entry
func (l *Limiter) FailClosed() bool { return l.failClosed }

// Stats returns a snapshot of the activity counters. Unlike Process, it
// may be called from any goroutine, concurrently with processing: every
// counter is an atomic, so each value is torn-free and monotone. A
// snapshot taken mid-packet may catch the accounting invariant between
// increments (e.g. InboundPackets bumped before the matched/unmatched
// split); quiesce the limiter before asserting cross-counter identities.
func (l *Limiter) Stats() Stats {
	l.statsMu.Lock()
	var s core.Stats
	// A nil filter is a tenant limiter in the evicted state: its counters
	// were folded into baseStats when the filter was spilled, so the base
	// alone is the complete, monotone history.
	if f := l.filter.Load(); f != nil {
		s = f.Stats()
	}
	b := l.baseStats
	l.statsMu.Unlock()
	return Stats{
		OutboundPackets:  b.OutboundPackets + s.OutboundPackets,
		InboundPackets:   b.InboundPackets + s.InboundPackets,
		InboundMatched:   b.InboundHits + s.InboundHits,
		InboundUnmatched: b.InboundMisses + s.InboundMisses,
		Dropped:          b.Dropped + s.Dropped,
		Rotations:        b.Rotations + s.Rotations,
		Unroutable:       l.unroutable.Load(),
		// The limiter clamps timestamps before they reach the filter, so
		// the filter's own counter stays zero on this path; it is summed
		// anyway so direct core.Filter restores never lose anomalies.
		TimeAnomalies: l.timeAnomalies.Load() + b.TimeAnomalies + s.TimeAnomalies,
	}
}

// swapFilter atomically publishes a replacement filter, folding the
// outgoing filter's counters into the base so Stats stays monotone: a
// reader can never observe totals lower than any earlier snapshot.
// (Packets mid-flight on the processing goroutine may still decide
// against the outgoing filter; their counter increments land on the
// retired instance after the fold and are the one thing a swap can
// lose — bounded by a single batch chunk, and never negative.)
func (l *Limiter) swapFilter(filter *core.Filter) {
	l.statsMu.Lock()
	// Swapping a nil in (tenant eviction) folds the final counters and
	// leaves only the base; swapping out of nil (rehydration) has nothing
	// to fold.
	if old := l.filter.Load(); old != nil {
		s := old.Stats()
		l.baseStats.OutboundPackets += s.OutboundPackets
		l.baseStats.InboundPackets += s.InboundPackets
		l.baseStats.InboundHits += s.InboundHits
		l.baseStats.InboundMisses += s.InboundMisses
		l.baseStats.Dropped += s.Dropped
		l.baseStats.Rotations += s.Rotations
		l.baseStats.TimeAnomalies += s.TimeAnomalies
	}
	l.filter.Store(filter)
	l.statsMu.Unlock()
}

// toInternal converts a public Packet into dst. It reports false — and
// leaves dst undefined — when either address is not IPv4. Writing
// through a caller-owned value keeps the hot path free of heap
// allocations (the internal packet never escapes).
//
//p2p:hotpath
func (l *Limiter) toInternal(p Packet, dst *packet.Packet) bool {
	if !p.SrcAddr.Is4() || !p.DstAddr.Is4() {
		return false
	}
	s, d := p.SrcAddr.As4(), p.DstAddr.As4()
	pair := packet.SocketPair{
		Proto:   packet.Proto(p.Protocol),
		SrcAddr: packet.AddrFrom4(s[0], s[1], s[2], s[3]), SrcPort: p.SrcPort,
		DstAddr: packet.AddrFrom4(d[0], d[1], d[2], d[3]), DstPort: p.DstPort,
	}
	dst.TS = p.Timestamp
	dst.Pair = pair
	dst.Dir = packet.Classify(pair, l.clientNet)
	dst.Len = p.Size
	return true
}

// SaveState serializes the limiter's bitmap filter — the flow-admission
// state — so a restarted process can resume admitting the flows it was
// already tracking instead of challenging every client for the first T_e
// after boot. Thresholds and the throughput meter are not persisted; the
// meter refills within its window.
func (l *Limiter) SaveState(w io.Writer) error {
	if _, err := l.filter.Load().WriteTo(w); err != nil {
		return fmt.Errorf("p2pbound: save state: %w", err)
	}
	return nil
}

// RestoreState replaces the limiter's bitmap filter with one deserialized
// from a SaveState stream. The snapshot's geometry (k, N, m, Δt, hash
// construction, hole-punch mode) must match the limiter's configured
// geometry; a mismatch returns a descriptive error and leaves the
// limiter untouched, because silently adopting a stale geometry changes
// the false-positive rate and expiry horizon the operator configured.
// Use AdoptState to deliberately take over a snapshot's geometry.
func (l *Limiter) RestoreState(r io.Reader) error {
	filter, err := core.ReadFilter(r)
	if err != nil {
		return fmt.Errorf("p2pbound: restore state: %w", err)
	}
	if err := geometryMismatch(l.filter.Load().Config(), filter.Config()); err != nil {
		return fmt.Errorf("p2pbound: restore state: %w (use AdoptState to accept the snapshot geometry)", err)
	}
	filter.SetReorderTolerance(l.tolerance)
	l.swapFilter(filter)
	return nil
}

// AdoptState is RestoreState without the geometry guard: the snapshot's
// geometry (k, N, m, Δt, hash construction, hole-punch mode) becomes the
// limiter's geometry. Intended for explicit operator action — migrating
// state across a reconfiguration — not for the routine restart path.
func (l *Limiter) AdoptState(r io.Reader) error {
	filter, err := core.ReadFilter(r)
	if err != nil {
		return fmt.Errorf("p2pbound: adopt state: %w", err)
	}
	filter.SetReorderTolerance(l.tolerance)
	l.swapFilter(filter)
	return nil
}

// ErrGeometryMismatch is the typed rejection RestoreState returns when
// a snapshot's geometry differs from the limiter's configured geometry;
// match it with errors.Is to distinguish "wrong geometry" (an operator
// decision: reconfigure or AdoptState) from a corrupt or unreadable
// snapshot (see the core.ErrSnapshot* sentinels, which also satisfy
// errors.Is through the same error chain).
var ErrGeometryMismatch = errors.New("snapshot geometry mismatch")

// geometryMismatch compares the geometry-bearing fields of two filter
// configurations, ignoring operational knobs (seed, reorder tolerance).
// Zero HashKind, HashScheme, and Layout mean the default construction,
// so they are normalized before comparing — snapshots always store the
// resolved values.
func geometryMismatch(want, got core.Config) error {
	if want.HashKind == 0 {
		want.HashKind = hashes.FNVDouble
	}
	if got.HashKind == 0 {
		got.HashKind = hashes.FNVDouble
	}
	want.HashScheme, want.Layout, _ = hashes.ResolveSchemeLayout(want.HashScheme, want.Layout)
	got.HashScheme, got.Layout, _ = hashes.ResolveSchemeLayout(got.HashScheme, got.Layout)
	switch {
	case want.K != got.K:
		return fmt.Errorf("%w: k=%d, configured k=%d", ErrGeometryMismatch, got.K, want.K)
	case want.NBits != got.NBits:
		return fmt.Errorf("%w: n=%d, configured n=%d", ErrGeometryMismatch, got.NBits, want.NBits)
	case want.M != got.M:
		return fmt.Errorf("%w: m=%d, configured m=%d", ErrGeometryMismatch, got.M, want.M)
	case want.DeltaT != got.DeltaT:
		return fmt.Errorf("%w: Δt=%v, configured Δt=%v", ErrGeometryMismatch, got.DeltaT, want.DeltaT)
	case want.HashKind != got.HashKind:
		return fmt.Errorf("%w: hash kind %d, configured %d", ErrGeometryMismatch, got.HashKind, want.HashKind)
	case want.HashScheme != got.HashScheme:
		return fmt.Errorf("%w: hash scheme %v, configured %v", ErrGeometryMismatch, got.HashScheme, want.HashScheme)
	case want.Layout != got.Layout:
		return fmt.Errorf("%w: layout %v, configured %v", ErrGeometryMismatch, got.Layout, want.Layout)
	case want.HolePunch != got.HolePunch:
		return fmt.Errorf("%w: holepunch=%v, configured holepunch=%v", ErrGeometryMismatch, got.HolePunch, want.HolePunch)
	}
	return nil
}
