package p2pbound

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2pbound/internal/ingest"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

// TestSubmitIngestMatchesSubmitBatch pins the ingest producer path to
// the slice path: draining a capture through SubmitIngest must yield
// exactly the verdict totals of SubmitBatch over the same packets.
func TestSubmitIngestMatchesSubmitBatch(t *testing.T) {
	tr, err := trace.Generate(trace.DefaultConfig(20*time.Second, 0.02, 17))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pcap.WriteAll(&buf, tr.Packets, 0, time.Unix(1_163_000_000, 0)); err != nil {
		t.Fatal(err)
	}
	clientNet := packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)
	cfg := Config{ClientNetwork: testNet, LowMbps: 0.1, HighMbps: 0.5, Seed: 3}

	// The reference packets are the round-tripped ones: pcap framing
	// truncates timestamps to microseconds, and both paths must see the
	// same clock to make the same verdicts.
	decoded, err := pcap.ReadAll(bytes.NewReader(buf.Bytes()), clientNet, false)
	if err != nil {
		t.Fatal(err)
	}

	run := func(submit func(t *testing.T, p *Pipeline) int64) (int64, int64, int64) {
		p, err := NewPipeline(cfg, PipelineConfig{Shards: 1, RingSize: 512, BatchSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		n := submit(t, p)
		p.Close()
		passed, dropped := p.Verdicts()
		return n, passed, dropped
	}

	wantN, wantPassed, wantDropped := run(func(t *testing.T, p *Pipeline) int64 {
		p.SubmitBatch(toPublic(decoded))
		return int64(len(decoded))
	})
	check := func(name string, gotN, gotPassed, gotDropped int64) {
		t.Helper()
		if gotN != wantN {
			t.Fatalf("%s submitted %d packets, SubmitBatch %d", name, gotN, wantN)
		}
		if gotPassed != wantPassed || gotDropped != wantDropped {
			t.Fatalf("%s verdicts diverged: %d/%d, batch %d/%d",
				name, gotPassed, gotDropped, wantPassed, wantDropped)
		}
		if gotPassed+gotDropped != gotN {
			t.Fatalf("%s verdict total %d != submitted %d", name, gotPassed+gotDropped, gotN)
		}
	}

	n, passed, dropped := run(func(t *testing.T, p *Pipeline) int64 {
		src, err := ingest.NewMemSource(buf.Bytes(), clientNet, false)
		if err != nil {
			t.Fatal(err)
		}
		n, err := p.submitIngest(src)
		if err != nil {
			t.Fatalf("submitIngest: %v", err)
		}
		return n
	})
	check("submitIngest", n, passed, dropped)

	path := filepath.Join(t.TempDir(), "capture.pcap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	n, passed, dropped = run(func(t *testing.T, p *Pipeline) int64 {
		n, err := p.SubmitPcapFile(path)
		if err != nil {
			t.Fatalf("SubmitPcapFile: %v", err)
		}
		return n
	})
	check("SubmitPcapFile", n, passed, dropped)

	n, passed, dropped = run(func(t *testing.T, p *Pipeline) int64 {
		n, err := p.SubmitPcapStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("SubmitPcapStream: %v", err)
		}
		return n
	})
	check("SubmitPcapStream", n, passed, dropped)
}
