package p2pbound

import (
	"fmt"
	"time"
)

// ShardedLimiter distributes packets across independent Limiter shards by
// connection hash, giving a goroutine-safe limiter for multi-queue packet
// pipelines (one RSS queue per shard is the natural deployment).
//
// Both directions of a connection always land on the same shard — the
// shard hash uses the connection's canonical (order-independent) endpoint
// pair — so the positive-listing semantics are preserved exactly. Each
// shard meters only the uplink traffic it passes, and the RED thresholds
// are split evenly across shards; with hash-balanced traffic the aggregate
// behaviour approximates a single limiter with the full thresholds, while
// each shard remains single-threaded and lock-free on its hot path.
type ShardedLimiter struct {
	shards []*Limiter
}

// NewSharded builds n independent shards from cfg. The per-shard RED
// thresholds are cfg.LowMbps/n and cfg.HighMbps/n; everything else is
// inherited. Shard i uses cfg.Seed+i so drop draws stay reproducible.
func NewSharded(cfg Config, n int) (*ShardedLimiter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("p2pbound: shard count must be positive, got %d", n)
	}
	if cfg.LowMbps == 0 && cfg.HighMbps == 0 {
		cfg.LowMbps, cfg.HighMbps = 50, 100
	}
	shardCfg := cfg
	shardCfg.LowMbps = cfg.LowMbps / float64(n)
	shardCfg.HighMbps = cfg.HighMbps / float64(n)
	shards := make([]*Limiter, n)
	for i := range shards {
		shardCfg.Seed = cfg.Seed + uint64(i)
		l, err := New(shardCfg)
		if err != nil {
			return nil, err
		}
		shards[i] = l
	}
	return &ShardedLimiter{shards: shards}, nil
}

// Shards returns the number of shards.
func (s *ShardedLimiter) Shards() int { return len(s.shards) }

// ShardOf returns the shard index packet p belongs to. Callers running one
// goroutine per shard route packets with this and then call
// ProcessOnShard from the owning goroutine. Unroutable packets (non-IPv4
// addresses) all map to shard 0, whose Limiter counts and drops them.
func (s *ShardedLimiter) ShardOf(p Packet) int {
	if !p.SrcAddr.Is4() || !p.DstAddr.Is4() {
		return 0
	}
	// Order-independent endpoint hash: σ and σ̄ must agree.
	h := connHash(p)
	return int(h % uint64(len(s.shards)))
}

// ProcessOnShard decides a packet on the given shard. The caller must
// ensure that each shard index is only ever used from one goroutine at a
// time, and that per-shard timestamps are non-decreasing.
func (s *ShardedLimiter) ProcessOnShard(shard int, p Packet) Decision {
	return s.shards[shard].Process(p)
}

// Process routes the packet to its shard and decides it. This convenience
// form is for single-goroutine use; concurrent pipelines should route via
// ShardOf and own one shard per goroutine.
func (s *ShardedLimiter) Process(p Packet) Decision {
	return s.ProcessOnShard(s.ShardOf(p), p)
}

// MemoryBytes returns the total bitmap memory across shards.
func (s *ShardedLimiter) MemoryBytes() int {
	total := 0
	for _, l := range s.shards {
		total += l.MemoryBytes()
	}
	return total
}

// ExpiryHorizon returns the shared T_e of the shards.
func (s *ShardedLimiter) ExpiryHorizon() time.Duration {
	return s.shards[0].ExpiryHorizon()
}

// Stats sums the per-shard activity counters. Safe to call from any
// goroutine concurrently with processing — every counter is an atomic —
// but cross-counter identities only hold on a quiescent limiter.
func (s *ShardedLimiter) Stats() Stats {
	var sum Stats
	for _, l := range s.shards {
		st := l.Stats()
		sum.OutboundPackets += st.OutboundPackets
		sum.InboundPackets += st.InboundPackets
		sum.InboundMatched += st.InboundMatched
		sum.InboundUnmatched += st.InboundUnmatched
		sum.Dropped += st.Dropped
		sum.Rotations += st.Rotations
		sum.Unroutable += st.Unroutable
		sum.TimeAnomalies += st.TimeAnomalies
	}
	return sum
}

// UplinkMbps sums the measured uplink throughput across shards.
func (s *ShardedLimiter) UplinkMbps() float64 {
	total := 0.0
	for _, l := range s.shards {
		total += l.UplinkMbps()
	}
	return total
}

// connHash hashes the unordered endpoint pair of a packet so both
// directions of a connection agree.
func connHash(p Packet) uint64 {
	a := endpointHash(p.SrcAddr.As4(), p.SrcPort)
	b := endpointHash(p.DstAddr.As4(), p.DstPort)
	// Commutative combine, then protocol, then mix.
	h := a ^ b + uint64(p.Protocol)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func endpointHash(addr [4]byte, port uint16) uint64 {
	v := uint64(addr[0])<<40 | uint64(addr[1])<<32 | uint64(addr[2])<<24 |
		uint64(addr[3])<<16 | uint64(port)
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}
