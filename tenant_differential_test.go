package p2pbound

import (
	"testing"
	"time"

	"p2pbound/internal/faultinject"
)

// diffConfig is the limiter configuration the differential tests run on
// both sides: small filter geometry (cheap eviction churn), a rotation
// period short enough that a 30-second trace crosses several rotation
// boundaries, and non-trivial RED thresholds so unmatched inbound
// exercises the P_d draw path (where rng-position divergence would
// show).
func diffConfig() Config {
	return Config{
		ClientNetwork: testNet,
		LowMbps:       0.1,
		HighMbps:      0.5,
		Vectors:       4,
		VectorBits:    14,
		RotateEvery:   5 * time.Second,
		Seed:          7,
	}
}

// diffManager wraps diffConfig in a single-tenant TenantManager whose
// tenant covers exactly the bare limiter's client network. Tenant 0's
// seed is the template seed + 0, so both sides draw identical P_d
// variates.
func diffManager(t *testing.T, mutate func(*TenantManagerConfig)) *TenantManager {
	t.Helper()
	cfg := TenantManagerConfig{Tenant: diffConfig(), PrefixBits: 16, Shards: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewTenantManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddTenant(TenantConfig{ID: "campus", Network: testNet}); err != nil {
		t.Fatal(err)
	}
	return m
}

// runDifferential feeds the same packet stream to a bare Limiter and a
// 1-tenant TenantManager and requires every verdict and every counter to
// agree exactly. evictEvery > 0 forces a full spill/rehydrate cycle on
// the manager side every that many packets — the bare limiter never
// evicts, so equality proves eviction is verdict-invisible.
func runDifferential(t *testing.T, pkts []Packet, mgr *TenantManager, evictEvery int) {
	t.Helper()
	bare, err := New(diffConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		want := bare.Process(pkts[i])
		got := mgr.Process(pkts[i])
		if got != want {
			t.Fatalf("packet %d (ts %v): manager says %v, bare limiter says %v", i, pkts[i].Timestamp, got, want)
		}
		if evictEvery > 0 && (i+1)%evictEvery == 0 {
			if n := mgr.EvictIdle(0); n != 1 {
				t.Fatalf("packet %d: EvictIdle evicted %d tenants", i, n)
			}
		}
	}
	checkDifferentialStats(t, bare, mgr, evictEvery)
}

func checkDifferentialStats(t *testing.T, bare *Limiter, mgr *TenantManager, evictEvery int) {
	t.Helper()
	want := bare.Stats()
	got, ok := mgr.TenantStats("campus")
	if !ok {
		t.Fatal("tenant stats missing")
	}
	if got != want {
		t.Fatalf("stats diverge:\nmanager %+v\nbare    %+v", got, want)
	}
	if want.InboundUnmatched == 0 {
		t.Fatal("trace produced no unmatched inbound; the P_d path was never compared")
	}
	ms := mgr.Stats()
	if ms.NoTenant != 0 || ms.Unroutable != 0 {
		t.Fatalf("trace leaked outside the tenant: %+v", ms)
	}
	if evictEvery > 0 && ms.Evictions == 0 {
		t.Fatal("eviction schedule never fired")
	}
}

// TestTenantDifferentialSequential: per-packet verdict and counter
// equality with the tenant permanently resident.
func TestTenantDifferentialSequential(t *testing.T) {
	pkts := publicTrace(t, 30*time.Second, 0.02, 21)
	runDifferential(t, pkts, diffManager(t, nil), 0)
}

// TestTenantDifferentialWithEviction: equality survives a forced
// spill/rehydrate cycle every 64 packets — hundreds of evictions across
// several filter rotations. This is the pin on the hydration contract:
// a rehydrated filter's verdicts, rotation schedule, clamp state, and
// P_d draw sequence are bit-identical to a filter that never left
// memory.
func TestTenantDifferentialWithEviction(t *testing.T) {
	pkts := publicTrace(t, 30*time.Second, 0.02, 22)
	runDifferential(t, pkts, diffManager(t, nil), 64)
}

// TestTenantDifferentialClockRegress: equality holds on a fault-injected
// stream where ~5% of timestamps regress by up to 2Δt, with eviction
// churn on top — the reorder-clamp high-water mark is part of the
// spilled state, so both sides clamp identically.
func TestTenantDifferentialClockRegress(t *testing.T) {
	pkts := publicTrace(t, 30*time.Second, 0.02, 23)
	faultinject.ClockRegress(pkts, func(p *Packet) *time.Duration { return &p.Timestamp }, 0.05, 10*time.Second, 23)
	runDifferential(t, pkts, diffManager(t, nil), 97)
}

// TestTenantDifferentialIdleAggregate: an aggregate budget whose ramp
// never engages (thresholds far above the trace's offered load) must
// leave every verdict bit-identical to a bare limiter — red.Combine's
// exact zero short-circuit, observed end to end.
func TestTenantDifferentialIdleAggregate(t *testing.T) {
	pkts := publicTrace(t, 30*time.Second, 0.02, 24)
	mgr := diffManager(t, func(c *TenantManagerConfig) {
		c.AggregateLowMbps = 1000
		c.AggregateHighMbps = 2000
	})
	runDifferential(t, pkts, mgr, 128)
}

// TestTenantDifferentialBatch: ProcessBatch equality in odd-sized
// chunks. A single-tenant batch is one run through the tenant limiter's
// batch path, so chunking parity with the bare limiter is exact.
func TestTenantDifferentialBatch(t *testing.T) {
	pkts := publicTrace(t, 30*time.Second, 0.02, 25)
	bare, err := New(diffConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr := diffManager(t, nil)

	const chunk = 509
	want := make([]Decision, 0, chunk)
	got := make([]Decision, 0, chunk)
	for lo := 0; lo < len(pkts); lo += chunk {
		hi := lo + chunk
		if hi > len(pkts) {
			hi = len(pkts)
		}
		want = bare.ProcessBatch(pkts[lo:hi], want[:0])
		got = mgr.ProcessBatch(pkts[lo:hi], got[:0])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk at %d, packet %d: manager says %v, bare limiter says %v", lo, i, got[i], want[i])
			}
		}
		mgr.EvictIdle(0) // spill between every chunk
	}
	checkDifferentialStats(t, bare, mgr, 1)
}
