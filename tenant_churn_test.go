package p2pbound

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"p2pbound/internal/faultinject"
)

// TestTenantChurn is the tenant-scale chaos battery: thousands of
// subscribers hammered through hydration churn (a hydration cap two
// orders of magnitude below the population, plus forced EvictIdle
// sweeps), fault-injected clock regressions, and a mid-traffic snapshot
// restore, with a concurrent stats/telemetry scraper racing the whole
// run. The invariants pinned:
//
//   - zero false negatives: a flow marked before any number of
//     evictions, rehydrations, or a snapshot restore still matches —
//     every matched inbound passes, deterministically;
//   - per-tenant counters are monotone across eviction folding and
//     restore folding;
//   - manager accounting stays coherent (hydration cap respected,
//     spill bytes return to the arena, no packet leaks out of the
//     tenant set).
func TestTenantChurn(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1500
	}
	tel := NewTelemetry()
	cfg := TenantManagerConfig{
		Tenant: Config{
			// Thresholds far below any offered load: every tenant's own
			// RED ramp saturates, so a lost mark would also show up as a
			// drop, not just a counter skew.
			LowMbps:       1e-6,
			HighMbps:      2e-6,
			Vectors:       4,
			VectorBits:    10,
			HashFunctions: 3,
			RotateEvery:   time.Hour, // no mark expires during the run
			Seed:          1234,
		},
		PrefixBits:          24,
		Shards:              4,
		MaxHydratedPerShard: 64, // ~2.5% of the population resident
		Telemetry:           tel,
	}
	m, err := NewTenantManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcs := make([]TenantConfig, n)
	for i := range tcs {
		tcs[i] = TenantConfig{ID: tenantID24(i), Network: tenantNet24(i)}
	}
	if err := m.AddTenants(tcs); err != nil {
		t.Fatal(err)
	}

	// Concurrent scraper: races Stats, TenantStats, and a Prometheus
	// scrape against processing, eviction, and restore for the whole
	// test, asserting the cumulative counters never move backwards.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev TenantManagerStats
		for {
			s := m.Stats()
			if s.Hydrations < prev.Hydrations || s.Evictions < prev.Evictions ||
				s.NoTenant < prev.NoTenant || s.Unroutable < prev.Unroutable {
				t.Errorf("manager counters regressed: %+v -> %+v", prev, s)
				return
			}
			prev = s
			for i := 0; i < n; i += n / 7 {
				if _, ok := m.TenantStats(tenantID24(i)); !ok {
					t.Errorf("tenant %d stats vanished", i)
					return
				}
			}
			if err := tel.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			select {
			case <-done:
				return
			default:
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	defer wg.Wait()
	defer close(done)

	process := func(pkts []Packet, wantPass bool, label string) {
		dst := make([]Decision, 0, 256)
		for lo := 0; lo < len(pkts); lo += 256 {
			hi := lo + 256
			if hi > len(pkts) {
				hi = len(pkts)
			}
			dst = m.ProcessBatch(pkts[lo:hi], dst[:0])
			if wantPass {
				for i, v := range dst {
					if v != Pass {
						t.Fatalf("%s: packet %d dropped — false negative after churn", label, lo+i)
					}
				}
			}
			if lo%(256*5) == 0 {
				m.EvictIdle(0) // full spill sweep mid-stream
			}
		}
	}

	// Phase 1: every tenant marks one outbound flow, under clock chaos
	// and rolling eviction.
	out1 := make([]Packet, n)
	for i := range out1 {
		out1[i] = tenantOutbound(i, i, time.Duration(i)*50*time.Microsecond)
	}
	faultinject.ClockRegress(out1, func(p *Packet) *time.Duration { return &p.Timestamp }, 0.1, 100*time.Millisecond, 77)
	process(out1, true, "phase1 outbound") // outbound always passes

	// Snapshot the whole population mid-run, spills and live filters
	// alike.
	var snap bytes.Buffer
	if err := m.SaveTenantState(&snap); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the inverse packet of every phase-1 flow must match and
	// pass — across at least one forced eviction per tenant.
	in2 := make([]Packet, n)
	for i := range in2 {
		in2[i] = tenantInbound(i, i, time.Second+time.Duration(i)*50*time.Microsecond)
	}
	process(in2, true, "phase2 inbound")
	for i := 0; i < n; i++ {
		s, ok := m.TenantStats(tenantID24(i))
		if !ok || s.InboundMatched != 1 {
			t.Fatalf("tenant %d: InboundMatched = %d after churn, want 1", i, s.InboundMatched)
		}
	}

	// Phase 3: more traffic, then restore the phase-1 snapshot
	// mid-stream. Counters must fold monotonically; flows marked before
	// the snapshot must still match after it.
	out3 := make([]Packet, n)
	for i := range out3 {
		out3[i] = tenantOutbound(i, i+n, 2*time.Second+time.Duration(i)*50*time.Microsecond)
	}
	faultinject.ClockRegress(out3, func(p *Packet) *time.Duration { return &p.Timestamp }, 0.1, 100*time.Millisecond, 78)
	process(out3[:n/2], true, "phase3 outbound")

	sampled := make(map[int]Stats)
	for i := 0; i < n; i += n / 11 {
		s, _ := m.TenantStats(tenantID24(i))
		sampled[i] = s
	}
	if err := m.RestoreTenantState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, before := range sampled {
		after, _ := m.TenantStats(tenantID24(i))
		if after.OutboundPackets < before.OutboundPackets || after.InboundMatched < before.InboundMatched ||
			after.Dropped < before.Dropped || after.TimeAnomalies < before.TimeAnomalies {
			t.Fatalf("tenant %d: restore rewound counters %+v -> %+v", i, before, after)
		}
	}
	process(out3[n/2:], true, "phase3 outbound tail")

	// Phase-1 marks came back with the snapshot.
	in4 := make([]Packet, n)
	for i := range in4 {
		in4[i] = tenantInbound(i, i, 3*time.Second+time.Duration(i)*50*time.Microsecond)
	}
	process(in4, true, "phase4 inbound post-restore")
	for i := 0; i < n; i += 97 {
		s, _ := m.TenantStats(tenantID24(i))
		if s.InboundMatched < 2 {
			t.Fatalf("tenant %d: mark lost across snapshot restore: %+v", i, s)
		}
	}

	// Final accounting coherence.
	ms := m.Stats()
	if ms.Tenants != n {
		t.Fatalf("population = %d, want %d", ms.Tenants, n)
	}
	if ms.Hydrated > 4*64 {
		t.Fatalf("hydration cap breached: %d resident", ms.Hydrated)
	}
	if ms.NoTenant != 0 || ms.Unroutable != 0 {
		t.Fatalf("packets leaked out of the tenant set: %+v", ms)
	}
	if ms.Hydrations < int64(n) || ms.Evictions == 0 {
		t.Fatalf("churn never happened: %+v", ms)
	}
	if ms.HydrateFallbacks != 0 {
		t.Fatalf("hydrate fallbacks = %d, want 0", ms.HydrateFallbacks)
	}
	// Every spilled byte is accounted: evict everyone, then make one
	// tenant resident again and check the books line up.
	m.EvictIdle(0)
	if s := m.Stats(); s.Hydrated != 0 || s.SpillBytes == 0 {
		t.Fatalf("final sweep: %+v", s)
	}
}

// TestTenantChurnSeedIndependence: two managers over the same tenant set
// but different template seeds agree on every deterministic verdict
// (marks have no false negatives regardless of hash seeds) while their
// filters differ internally — a cheap guard that per-tenant seed
// derivation actually varies the hash construction.
func TestTenantChurnSeedIndependence(t *testing.T) {
	build := func(seed uint64) *TenantManager {
		m, err := NewTenantManager(TenantManagerConfig{
			Tenant: Config{
				LowMbps: 0.1, HighMbps: 0.5,
				Vectors: 4, VectorBits: 10, RotateEvery: time.Hour, Seed: seed,
			},
			PrefixBits: 24,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			if err := m.AddTenant(TenantConfig{ID: tenantID24(i), Network: tenantNet24(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	a, b := build(1), build(2)
	for i := 0; i < 16; i++ {
		for f := 0; f < 8; f++ {
			ts := time.Duration(i*8+f) * time.Millisecond
			av := a.Process(tenantOutbound(i, f, ts))
			bv := b.Process(tenantOutbound(i, f, ts))
			if av != Pass || bv != Pass {
				t.Fatalf("outbound dropped: %v %v", av, bv)
			}
		}
	}
	a.EvictIdle(0)
	b.EvictIdle(0)
	for i := 0; i < 16; i++ {
		for f := 0; f < 8; f++ {
			ts := time.Second + time.Duration(i*8+f)*time.Millisecond
			if a.Process(tenantInbound(i, f, ts)) != Pass {
				t.Fatalf("seed 1: tenant %d flow %d lost its mark", i, f)
			}
			if b.Process(tenantInbound(i, f, ts)) != Pass {
				t.Fatalf("seed 2: tenant %d flow %d lost its mark", i, f)
			}
		}
	}
	// The spilled bitmaps must differ somewhere: same marks, different
	// hash seeds. (Stats agree; internals must not be identical.)
	var sa, sb bytes.Buffer
	if err := a.SaveTenantState(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveTenantState(&sb); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("different template seeds produced identical filter contents")
	}
}

// tenantNetString guards the helper contract the churn test relies on:
// tenantNet24 and tenantOutbound/tenantInbound must agree on addressing
// for every index used at scale.
func TestTenantAddressHelpers(t *testing.T) {
	for _, i := range []int{0, 1, 255, 256, 9999} {
		want := fmt.Sprintf("10.%d.%d.0/24", (i>>8)&255, i&255)
		if got := tenantNet24(i); got != want {
			t.Fatalf("tenantNet24(%d) = %s, want %s", i, got, want)
		}
		o := tenantOutbound(i, 3, 0)
		a := o.SrcAddr.As4()
		if a[0] != 10 || a[1] != byte(i>>8) || a[2] != byte(i) {
			t.Fatalf("tenantOutbound(%d) src %v outside %s", i, o.SrcAddr, want)
		}
	}
}
