# Developer conveniences. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test lint vet fuzz-smoke bench bench-smoke

all: build lint test

build:
	$(GO) build ./...
	$(GO) build -tags afpacket ./...

test:
	$(GO) test -race ./...

# lint runs the p2pvet static-analysis suite (hotpath, atomicfield,
# exhaustive, bannedimport, publish, confine, lockhold, codecparity)
# over the whole module in standalone mode. Exit status 1 on any
# diagnostic. `go run ./cmd/p2pvet ./...` is the same thing without
# make.
lint:
	$(GO) run ./cmd/p2pvet ./...

# vet runs the same suite through the go vet driver, which caches facts
# per package in the build cache — faster on incremental runs.
vet:
	$(GO) build -o ./p2pvet.bin ./cmd/p2pvet
	$(GO) vet -vettool=$(CURDIR)/p2pvet.bin ./...
	rm -f ./p2pvet.bin

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadPacket -fuzztime 10s ./internal/pcap
	$(GO) test -run '^$$' -fuzz FuzzMMapWalk -fuzztime 10s ./internal/ingest
	$(GO) test -run '^$$' -fuzz FuzzReadFilter -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzWritePrometheus -fuzztime 10s ./internal/metrics
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/replica
	$(GO) test -run '^$$' -fuzz FuzzTenantSnapshot -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzOffloadMap -fuzztime 10s ./internal/offload

# bench runs the root-package benchmarks at a stable benchtime and
# records them as BENCH_p2pbound.json via cmd/benchjson. The committed
# report is the before/after evidence for hot-path performance work;
# regenerate it on a quiet machine and commit the result.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 2s . | $(GO) run ./cmd/benchjson -o BENCH_p2pbound.json

# bench-smoke is the CI form: a fixed tiny iteration count proves the
# benchmarks still run and the JSON pipeline still parses, without
# pretending a shared runner produces meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFilterProcessBatch|BenchmarkIngestEndToEnd|BenchmarkTenantManagerProcessBatch|BenchmarkOffloadEndToEnd' -benchmem -benchtime 5x . | $(GO) run ./cmd/benchjson -o BENCH_smoke.json
	rm -f BENCH_smoke.json
