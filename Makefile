# Developer conveniences. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test lint vet fuzz-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint runs the p2pvet static-analysis suite (hotpath, atomicfield,
# exhaustive, bannedimport) over the whole module in standalone mode.
# Exit status 1 on any diagnostic. `go run ./cmd/p2pvet ./...` is the
# same thing without make.
lint:
	$(GO) run ./cmd/p2pvet ./...

# vet runs the same suite through the go vet driver, which caches facts
# per package in the build cache — faster on incremental runs.
vet:
	$(GO) build -o ./p2pvet.bin ./cmd/p2pvet
	$(GO) vet -vettool=$(CURDIR)/p2pvet.bin ./...
	rm -f ./p2pvet.bin

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadPacket -fuzztime 10s ./internal/pcap
	$(GO) test -run '^$$' -fuzz FuzzReadFilter -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzWritePrometheus -fuzztime 10s ./internal/metrics
