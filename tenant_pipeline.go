package p2pbound

import (
	"sync"
	"sync/atomic"
	"time"

	"p2pbound/internal/metrics"
)

// TenantPipelineConfig parameterizes a TenantPipeline. The zero value
// of every field selects a sensible default.
type TenantPipelineConfig struct {
	// RingSize is the per-shard ring capacity in packets, rounded up to
	// a power of two. Default 2048.
	RingSize int
	// BatchSize is the maximum number of packets a shard worker drains
	// and decides per wakeup. Default 256.
	BatchSize int
	// OnOverload selects the shed policy for packets arriving at a full
	// shard ring. Default ShedBlock (backpressure).
	OnOverload ShedPolicy
	// EvictAfter, when positive, makes each shard worker spill tenants
	// idle for at least this long whenever its ring runs dry — the lazy
	// eviction half of the hydration lifecycle, running on the shard's
	// single writer so it needs no locks against packet processing. Zero
	// disables automatic eviction (call EvictIdle yourself between
	// quiesced batches).
	EvictAfter time.Duration

	// testGate, when non-nil, holds every shard worker at startup until
	// the channel is closed, exactly as in PipelineConfig.
	testGate <-chan struct{}
}

// TenantPipeline is the concurrent driver for a TenantManager: one
// worker goroutine per tenant shard, each fed by a fixed-capacity ring.
// Producers route packets to the ring of the shard owning the packet's
// subscriber (both directions of a subscriber's flows reach the same
// shard), so every tenant's packets are decided by exactly one
// goroutine — the single-writer contract the manager's hydration and
// eviction machinery relies on. Packets matching no subscriber are
// carried to shard 0 and dropped defensively there, preserving the
// manager's counters.
//
// Decisions are asynchronous, as with Pipeline; use the TenantManager
// directly when per-packet verdicts are needed.
type TenantPipeline struct {
	m          *TenantManager
	rings      []*ring
	scratch    sync.Pool // *routeScratch
	wg         sync.WaitGroup
	closed     atomic.Bool //p2p:atomic
	policy     ShedPolicy
	evictAfter time.Duration
	gate       <-chan struct{}

	passed      *metrics.Counter
	dropped     *metrics.Counter
	shedPassed  *metrics.Counter
	shedDropped *metrics.Counter
}

// NewTenantPipeline starts one worker per tenant shard of m. Close must
// be called to stop the workers. The pipeline assumes ownership of
// packet processing on every shard: do not call m.Process,
// m.ProcessBatch, or m.EvictIdle while the pipeline is open.
func NewTenantPipeline(m *TenantManager, pcfg TenantPipelineConfig) *TenantPipeline {
	shards := m.Shards()
	size := pcfg.RingSize
	if size == 0 {
		size = 2048
	}
	if size < 2 {
		size = 2
	}
	for size&(size-1) != 0 {
		size += size & -size
	}
	batch := pcfg.BatchSize
	if batch <= 0 {
		batch = 256
	}
	p := &TenantPipeline{
		m:           m,
		rings:       make([]*ring, shards),
		policy:      pcfg.OnOverload,
		evictAfter:  pcfg.EvictAfter,
		gate:        pcfg.testGate,
		passed:      metrics.NewCounter(shards),
		dropped:     metrics.NewCounter(shards),
		shedPassed:  metrics.NewCounter(shards),
		shedDropped: metrics.NewCounter(shards),
	}
	if m.cfg.Telemetry != nil {
		m.cfg.Telemetry.attachTenantPipeline(p)
	}
	p.scratch.New = func() any {
		sc := &routeScratch{byShard: make([][]Packet, shards)}
		for i := range sc.byShard {
			sc.byShard[i] = make([]Packet, 0, submitChunk)
		}
		return sc
	}
	for i := range p.rings {
		p.rings[i] = newRing(size)
	}
	p.wg.Add(shards)
	for i := 0; i < shards; i++ {
		go p.worker(i, batch)
	}
	return p
}

// shardFor routes one packet to a worker ring: its subscriber's shard,
// or shard 0 for packets with no subscriber (worker 0 applies the
// manager's defensive-drop policy to them).
func (p *TenantPipeline) shardFor(pkt *Packet) int {
	if sh := p.m.shardOf(pkt); sh >= 0 {
		return sh
	}
	return 0
}

// Submit routes one packet to its shard ring, blocking on a full ring
// under ShedBlock and shedding by policy otherwise. It must not be
// called after Close.
func (p *TenantPipeline) Submit(pkt Packet) {
	if p.closed.Load() {
		panic("p2pbound: Submit on closed TenantPipeline")
	}
	sh := p.shardFor(&pkt)
	r := p.rings[sh]
	if p.policy == ShedBlock {
		r.mu.Lock()
		r.push(pkt)
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	ok := r.tryPush(pkt)
	r.mu.Unlock()
	if !ok {
		p.shed(sh, 1)
	}
}

// SubmitBatch routes a slice of packets with per-shard staging, one
// lock acquisition per shard group per chunk — the same amortization as
// Pipeline.SubmitBatch. Packets must be in non-decreasing timestamp
// order per producer. It must not be called after Close.
func (p *TenantPipeline) SubmitBatch(pkts []Packet) {
	if p.closed.Load() {
		panic("p2pbound: SubmitBatch on closed TenantPipeline")
	}
	sc := p.scratch.Get().(*routeScratch)
	for len(pkts) > 0 {
		n := len(pkts)
		if n > submitChunk {
			n = submitChunk
		}
		chunk := pkts[:n]
		pkts = pkts[n:]
		for i := range sc.byShard {
			sc.byShard[i] = sc.byShard[i][:0]
		}
		for i := range chunk {
			sh := p.shardFor(&chunk[i])
			sc.byShard[sh] = append(sc.byShard[sh], chunk[i])
		}
		for sh, group := range sc.byShard {
			if len(group) == 0 {
				continue
			}
			r := p.rings[sh]
			r.mu.Lock()
			if p.policy == ShedBlock {
				r.pushAll(group)
				r.mu.Unlock()
				continue
			}
			accepted := r.tryPushAll(group)
			r.mu.Unlock()
			p.shed(sh, len(group)-accepted)
		}
	}
	p.scratch.Put(sc)
}

// shed records n packets bound for shard sh turned away by the overload
// policy.
func (p *TenantPipeline) shed(sh, n int) {
	if n <= 0 {
		return
	}
	if p.policy == ShedFailOpen {
		p.shedPassed.Add(sh, int64(n))
	} else {
		p.shedDropped.Add(sh, int64(n))
	}
}

// Drain blocks until every packet submitted before the call has been
// decided.
func (p *TenantPipeline) Drain() {
	for _, r := range p.rings {
		target := r.tail.Load()
		for spin := 0; r.done.Load() < target; spin++ {
			idleWait(spin)
		}
	}
}

// Close drains the rings, stops every worker, and waits for them to
// exit. No Submit or SubmitBatch may be issued after (or concurrently
// with) Close. Close is idempotent.
func (p *TenantPipeline) Close() {
	p.closed.Store(true)
	p.wg.Wait()
}

// Verdicts returns the number of passed and dropped packets decided so
// far; shed packets are reported separately by Shed. Safe at any time.
func (p *TenantPipeline) Verdicts() (passed, dropped int64) {
	return p.passed.Value(), p.dropped.Value()
}

// Shed returns the number of packets turned away undecided by the
// overload policy. Safe at any time.
func (p *TenantPipeline) Shed() (passed, dropped int64) {
	return p.shedPassed.Value(), p.shedDropped.Value()
}

// Manager returns the TenantManager the pipeline drives.
func (p *TenantPipeline) Manager() *TenantManager { return p.m }

// worker owns tenant shard sh: it drains the shard ring in batches,
// decides them through the manager (run-grouped per tenant), and — when
// the ring runs dry and EvictAfter is set — spills tenants idle past
// the horizon. Both halves run on this one goroutine, which is what
// lets hydration and eviction share unsynchronized state with packet
// processing.
//
//p2p:confined pipeworker
//p2p:confined tenantshard
func (p *TenantPipeline) worker(sh int, batchSize int) {
	defer p.wg.Done()
	if p.gate != nil {
		<-p.gate
	}
	r := p.rings[sh]
	tsh := p.m.shards[sh]
	batch := make([]Packet, 0, batchSize)
	verdicts := make([]Decision, 0, batchSize)
	spin := 0
	for {
		batch = r.take(batch[:0], batchSize)
		if len(batch) == 0 {
			if p.closed.Load() {
				if batch = r.take(batch[:0], batchSize); len(batch) == 0 {
					return
				}
			} else {
				if spin == 0 && p.evictAfter > 0 {
					p.m.evictIdleShard(tsh, p.evictAfter)
				}
				idleWait(spin)
				spin++
				continue
			}
		}
		spin = 0
		verdicts = p.m.ProcessBatch(batch, verdicts[:0])
		var pass, drop int64
		for _, v := range verdicts {
			if v == Pass {
				pass++
			} else {
				drop++
			}
		}
		p.passed.Add(sh, pass)
		p.dropped.Add(sh, drop)
		r.done.Add(uint64(len(batch)))
	}
}
