package p2pbound

import (
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(Config{ClientNetwork: "10.0.0.0/8"}, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewSharded(Config{}, 4); err == nil {
		t.Fatal("missing client network accepted")
	}
}

// TestShardOfDirectionInvariant property: both directions of a connection
// map to the same shard.
func TestShardOfDirectionInvariant(t *testing.T) {
	s, err := NewSharded(Config{ClientNetwork: "140.112.0.0/16"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b [4]byte, ap, bp uint16, proto bool) bool {
		pr := TCP
		if proto {
			pr = UDP
		}
		fwd := Packet{
			Protocol: pr,
			SrcAddr:  netip.AddrFrom4(a), SrcPort: ap,
			DstAddr: netip.AddrFrom4(b), DstPort: bp,
		}
		rev := Packet{
			Protocol: pr,
			SrcAddr:  netip.AddrFrom4(b), SrcPort: bp,
			DstAddr: netip.AddrFrom4(a), DstPort: ap,
		}
		return s.ShardOf(fwd) == s.ShardOf(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardBalance(t *testing.T) {
	const shards = 8
	s, err := NewSharded(Config{ClientNetwork: "140.112.0.0/16"}, shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < 80000; i++ {
		p := Packet{
			Protocol: TCP,
			SrcAddr:  netip.AddrFrom4([4]byte{140, 112, byte(i >> 8), byte(i)}),
			SrcPort:  uint16(20000 + i%30000),
			DstAddr:  netip.AddrFrom4([4]byte{8, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstPort:  uint16(i % 60000),
		}
		counts[s.ShardOf(p)]++
	}
	want := 80000 / shards
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("shard %d holds %d connections, want ≈%d (imbalanced hash)", i, c, want)
		}
	}
}

// TestShardedSemantics: the positive-listing behaviour survives sharding —
// a response follows its request onto the same shard and passes.
func TestShardedSemantics(t *testing.T) {
	s, err := NewSharded(Config{
		ClientNetwork: "140.112.0.0/16",
		LowMbps:       0.0001, HighMbps: 0.0002, // saturate instantly
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	client := netip.MustParseAddr("140.112.3.3")
	remote := netip.MustParseAddr("7.7.7.7")
	req := Packet{
		Timestamp: 0, Protocol: TCP,
		SrcAddr: client, SrcPort: 40000, DstAddr: remote, DstPort: 80,
		Size: 1_000_000,
	}
	if d := s.Process(req); d != Pass {
		t.Fatalf("outbound = %v", d)
	}
	resp := Packet{
		Timestamp: 10 * time.Millisecond, Protocol: TCP,
		SrcAddr: remote, SrcPort: 80, DstAddr: client, DstPort: 40000,
		Size: 1500,
	}
	if d := s.Process(resp); d != Pass {
		t.Fatalf("response = %v", d)
	}
	// An unsolicited inbound packet on the saturated shard drops. Drive
	// enough distinct connections that every shard saturates.
	for i := 0; i < 4; i++ {
		s.Process(Packet{
			Timestamp: 20 * time.Millisecond, Protocol: TCP,
			SrcAddr: client, SrcPort: uint16(41000 + i), DstAddr: remote, DstPort: 80,
			Size: 1_000_000,
		})
	}
	dropped := 0
	for i := 0; i < 64; i++ {
		d := s.Process(Packet{
			Timestamp: 30 * time.Millisecond, Protocol: TCP,
			SrcAddr: remote, SrcPort: uint16(50000 + i), DstAddr: client, DstPort: uint16(31000 + i),
			Size: 60,
		})
		if d == Drop {
			dropped++
		}
	}
	if dropped < 32 {
		t.Fatalf("only %d/64 unsolicited packets dropped across shards", dropped)
	}
}

// TestShardedConcurrentUse drives every shard from its own goroutine — the
// intended deployment — under the race detector.
func TestShardedConcurrentUse(t *testing.T) {
	const shards = 4
	s, err := NewSharded(Config{ClientNetwork: "140.112.0.0/16"}, shards)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-route packets per shard.
	perShard := make([][]Packet, shards)
	client := netip.MustParseAddr("140.112.1.1")
	for i := 0; i < 20000; i++ {
		p := Packet{
			Timestamp: time.Duration(i) * time.Microsecond,
			Protocol:  TCP,
			SrcAddr:   client, SrcPort: uint16(20000 + i%40000),
			DstAddr: netip.AddrFrom4([4]byte{9, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstPort: 80,
			Size:    1500,
		}
		sh := s.ShardOf(p)
		perShard[sh] = append(perShard[sh], p)
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for _, p := range perShard[sh] {
				s.ProcessOnShard(sh, p)
			}
		}(sh)
	}
	wg.Wait()
	if got := s.Stats().OutboundPackets; got != 20000 {
		t.Fatalf("outbound total = %d, want 20000", got)
	}
	if s.MemoryBytes() != shards*512*1024 {
		t.Fatalf("memory = %d", s.MemoryBytes())
	}
}

func TestShardedAggregates(t *testing.T) {
	s, err := NewSharded(Config{ClientNetwork: "140.112.0.0/16"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 2 {
		t.Fatalf("shards = %d", s.Shards())
	}
	if s.ExpiryHorizon() != 20*time.Second {
		t.Fatalf("T_e = %v", s.ExpiryHorizon())
	}
	client := netip.MustParseAddr("140.112.1.1")
	for i := 0; i < 10; i++ {
		s.Process(Packet{
			Protocol: UDP,
			SrcAddr:  client, SrcPort: uint16(30000 + i),
			DstAddr: netip.AddrFrom4([4]byte{8, 8, 8, 8}), DstPort: 53,
			Size: 1_000_000,
		})
	}
	if got := s.UplinkMbps(); got <= 0 {
		t.Fatalf("aggregate uplink = %g", got)
	}
}
