package p2pbound

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/errfmt"
)

// Tenant snapshot framing ("BMTM"): the whole-manager analogue of a
// Limiter SaveState stream. One frame per registered tenant carries the
// subscriber's identity, its suspended rotation/clamp/rng state, and —
// only for tenants whose filters still hold marks — an embedded v2 core
// snapshot; everything is covered by a CRC32C trailer. Decoding is
// staged: the entire stream is validated (structure, checksum, tenant
// identity, embedded-filter geometry, rng encoding) before any tenant
// is touched, so a restore either applies completely or leaves the
// manager exactly as it was.
//
// Like the core format, tenant counters are NOT persisted: a restore
// folds each tenant's live counters into its limiter base, so Stats
// stays monotone across save/restore cycles instead of rewinding to
// boot-time values.
const (
	tenantSnapshotMagic   = uint32('B') | uint32('M')<<8 | uint32('T')<<16 | uint32('M')<<24
	tenantSnapshotVersion = 1

	// tenantFlagState marks a frame carrying suspended rotation/rng
	// state (any tenant hydrated at least once); tenantFlagBitmap marks
	// an embedded core snapshot (a filter that still held marks).
	tenantFlagState  = 1 << 0
	tenantFlagBitmap = 1 << 1

	// tenantFrameMin is the smallest possible frame (empty id, no
	// state): id length + prefix + flags. Used to bound the declared
	// tenant count against the stream length before allocating.
	tenantFrameMin = 4 + 4 + 1
)

// Typed sentinels for tenant snapshot decoding, matchable with
// errors.Is. A failed RestoreTenantState always unwraps to exactly one
// of these (or to ErrGeometryMismatch for a prefix-width or embedded
// filter geometry conflict) and leaves the manager untouched.
var (
	// ErrTenantSnapshotMagic: the stream does not begin with the tenant
	// snapshot magic — not a tenant snapshot at all.
	ErrTenantSnapshotMagic = errors.New("p2pbound: bad tenant snapshot magic")
	// ErrTenantSnapshotVersion: a tenant snapshot, but a format version
	// this build does not speak.
	ErrTenantSnapshotVersion = errors.New("p2pbound: unsupported tenant snapshot version")
	// ErrTenantSnapshotCorrupt: the structure is internally inconsistent
	// — truncated frames, impossible lengths, undefined flags, malformed
	// embedded state.
	ErrTenantSnapshotCorrupt = errors.New("p2pbound: corrupt tenant snapshot")
	// ErrTenantSnapshotChecksum: well-formed structure, but the CRC32C
	// trailer does not match the stream contents.
	ErrTenantSnapshotChecksum = errors.New("p2pbound: tenant snapshot checksum mismatch")
	// ErrUnknownTenant: the snapshot names a tenant this manager has not
	// registered. Registration is configuration, not state; restore
	// refuses to invent tenants.
	ErrUnknownTenant = errors.New("p2pbound: snapshot names an unregistered tenant")
)

// tenantFrame is one per-tenant record: the encode side snapshots a
// tenant into it, the decode side holds it between the validation and
// apply stages of a restore.
//
//p2p:codec
type tenantFrame struct {
	id     string
	prefix uint32
	flags  byte
	rot    core.RotationState
	rng    []byte
	bitmap []byte
}

// SaveTenantState serializes every registered tenant's suspended state
// so a restarted edge process can resume admitting the flows each
// subscriber's filter was tracking. It is a control-plane call: like
// AddTenants, it must not run concurrently with packet processing
// (quiesce or Drain a TenantPipeline first). Hydrated tenants are
// serialized in place without being evicted.
//
//p2p:confined tenantshard entry
func (m *TenantManager) SaveTenantState(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var buf bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], tenantSnapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], tenantSnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.cfg.PrefixBits))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(m.tenants)))
	buf.Write(hdr[:])
	for _, t := range m.tenants {
		fr, err := snapshotTenantFrame(t)
		if err != nil {
			return fmt.Errorf("p2pbound: save tenant state: tenant %q: %w", t.id, err)
		}
		appendTenantFrame(&buf, &fr)
	}
	sum := crc32.Checksum(buf.Bytes(), tenantCastagnoli)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	buf.Write(trailer[:])
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("p2pbound: save tenant state: %w", err)
	}
	return nil
}

var tenantCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapshotTenantFrame captures one tenant's suspended state into a
// frame, reading live filter state for hydrated tenants and the spilled
// record otherwise.
//
//p2p:confined tenantshard
func snapshotTenantFrame(t *tenant) (tenantFrame, error) {
	fr := tenantFrame{id: t.id, prefix: uint32(t.net.Prefix)}
	switch {
	case t.hydrated:
		f := t.lim.filter.Load()
		fr.flags = tenantFlagState
		fr.rot = f.RotationState()
		b, err := f.RNGState()
		if err != nil {
			return fr, err
		}
		fr.rng = b
		if !f.Empty() {
			var fb bytes.Buffer
			fb.Grow(f.Bytes() + 512)
			if _, err := f.WriteTo(&fb); err != nil {
				return fr, err
			}
			fr.flags |= tenantFlagBitmap
			fr.bitmap = fb.Bytes()
		}
	case t.spilled:
		fr.flags = tenantFlagState
		fr.rot = t.rot
		fr.rng = t.rngState
		if t.spillBitmap != nil {
			fr.flags |= tenantFlagBitmap
			fr.bitmap = t.spillBitmap
		}
	}
	return fr, nil
}

// appendTenantFrame encodes one frame into buf; the exact inverse of
// tenantDecoder.frame.
//
//p2p:codec bmtm encode
func appendTenantFrame(buf *bytes.Buffer, fr *tenantFrame) {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(fr.id)))
	buf.Write(u32[:])
	buf.WriteString(fr.id)
	binary.LittleEndian.PutUint32(u32[:], fr.prefix)
	buf.Write(u32[:])
	buf.WriteByte(fr.flags)
	if fr.flags&tenantFlagState != 0 {
		if fr.rot.Started {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(fr.rot.Index))
		buf.Write(u32[:])
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], uint64(fr.rot.Next))
		buf.Write(u64[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(fr.rot.LastTS))
		buf.Write(u64[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(fr.rng)))
		buf.Write(u32[:])
		buf.Write(fr.rng)
	}
	if fr.flags&tenantFlagBitmap != 0 {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(fr.bitmap)))
		buf.Write(u32[:])
		buf.Write(fr.bitmap)
	}
}

// RestoreTenantState replaces every snapshotted tenant's suspended
// state with the snapshot's. The whole stream is validated first —
// structure, checksum, tenant identity, prefix width, embedded filter
// geometry — and a failure on any frame rejects the entire snapshot,
// leaving the manager untouched (the property FuzzTenantSnapshot pins).
// On success each named tenant is moved to the spilled state carrying
// the snapshot's filter, to be rehydrated verdict-exactly by its next
// packet; currently hydrated filters are folded (counters stay
// monotone) and their vectors recycled. Registered tenants absent from
// the snapshot are left as they are. Control-plane call, like
// SaveTenantState.
//
//p2p:confined tenantshard entry
func (m *TenantManager) RestoreTenantState(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("p2pbound: restore tenant state: %w", err)
	}
	frames, prefixBits, err := decodeTenantSnapshot(b)
	if err != nil {
		return fmt.Errorf("p2pbound: restore tenant state: %w", err)
	}
	if prefixBits != m.cfg.PrefixBits {
		return fmt.Errorf("p2pbound: restore tenant state: %w: snapshot /%d subscribers, manager /%d",
			ErrGeometryMismatch, prefixBits, m.cfg.PrefixBits)
	}
	// Stage 2a: structural validation that needs no tenant identity —
	// rotation bounds, rng encoding, embedded filter geometry. This is
	// the expensive part (ReadFilter re-parses every embedded bitmap),
	// and it depends only on m.coreCfg, which is immutable after
	// construction, so it runs before the manager lock is taken: the
	// p2pvet lockhold analyzer proves no I/O happens under m.mu.
	for i := range frames {
		fr := &frames[i]
		if fr.flags&tenantFlagState != 0 {
			if fr.rot.Index < 0 || fr.rot.Index >= m.coreCfg.K {
				return errfmt.Detail("p2pbound: restore tenant state: tenant "+fr.id+" rotation index out of range", ErrTenantSnapshotCorrupt)
			}
			if err := core.ValidateRNGState(fr.rng); err != nil {
				return errfmt.Detail("p2pbound: restore tenant state: tenant "+fr.id+": "+err.Error(), ErrTenantSnapshotCorrupt)
			}
		}
		if fr.flags&tenantFlagBitmap != 0 {
			f, err := core.ReadFilter(bytes.NewReader(fr.bitmap))
			if err != nil {
				return errfmt.Detail("p2pbound: restore tenant state: tenant "+fr.id+" bitmap: "+err.Error(), ErrTenantSnapshotCorrupt)
			}
			if err := geometryMismatch(m.coreCfg, f.Config()); err != nil {
				return fmt.Errorf("p2pbound: restore tenant state: tenant %q: %w", fr.id, err)
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Stage 2b: resolve and validate every frame's identity against this
	// manager before touching anything.
	for i := range frames {
		fr := &frames[i]
		t := m.byID[fr.id]
		if t == nil {
			return fmt.Errorf("p2pbound: restore tenant state: %w: %q", ErrUnknownTenant, fr.id)
		}
		if fr.prefix != uint32(t.net.Prefix) {
			return errfmt.Detail("p2pbound: restore tenant state: tenant "+fr.id+" prefix mismatch", ErrTenantSnapshotCorrupt)
		}
	}
	// Stage 3: apply. Nothing below can fail.
	for i := range frames {
		fr := &frames[i]
		t := m.byID[fr.id]
		m.applyTenantFrame(t, fr)
	}
	return nil
}

// applyTenantFrame moves one validated frame into its tenant: the
// current filter (hydrated or spilled) is discarded in favour of the
// snapshot's, counters folding into the limiter base on the way out.
//
//p2p:confined tenantshard
func (m *TenantManager) applyTenantFrame(t *tenant, fr *tenantFrame) {
	sh := t.sh
	if t.hydrated {
		f := t.lim.filter.Load()
		t.lim.swapFilter(nil)
		if err := f.ReleaseVectors(sh.arena); err != nil {
			panic("p2pbound: restore tenant state: " + err.Error())
		}
		sh.lruRemove(t)
		t.hydrated = false
		sh.hydrated.Add(-1)
		sh.evictions.Add(1)
	}
	if t.spillBitmap != nil {
		sh.spillBytes.Add(-int64(len(t.spillBitmap)))
		t.spillBitmap = nil
	}
	if fr.flags&tenantFlagState != 0 {
		t.spilled = true
		t.rot = fr.rot
		t.rngState = fr.rng
	} else {
		t.spilled = false
		t.rot = core.RotationState{}
		t.rngState = nil
	}
	if fr.flags&tenantFlagBitmap != 0 {
		t.spillBitmap = fr.bitmap
		sh.spillBytes.Add(int64(len(fr.bitmap)))
	}
}

// decodeTenantSnapshot performs stage 1 of a restore: structural and
// checksum validation of the raw stream, independent of any manager.
// Every return path that is not a fully decoded frame list unwraps to
// one of the tenant snapshot sentinels.
func decodeTenantSnapshot(b []byte) ([]tenantFrame, int, error) {
	if len(b) < 16+4 {
		return nil, 0, errfmt.Detail("p2pbound: tenant snapshot truncated", ErrTenantSnapshotCorrupt)
	}
	if got := binary.LittleEndian.Uint32(b[0:]); got != tenantSnapshotMagic {
		return nil, 0, errfmt.Detail(fmt.Sprintf("p2pbound: bad tenant snapshot magic %#x", got), ErrTenantSnapshotMagic)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != tenantSnapshotVersion {
		return nil, 0, errfmt.Detail(fmt.Sprintf("p2pbound: unsupported tenant snapshot version %d", v), ErrTenantSnapshotVersion)
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.Checksum(body, tenantCastagnoli); got != want {
		return nil, 0, errfmt.Detail(fmt.Sprintf("p2pbound: tenant snapshot checksum mismatch: stored %#x, computed %#x", got, want), ErrTenantSnapshotChecksum)
	}
	prefixBits := int(binary.LittleEndian.Uint32(b[8:]))
	if prefixBits < 1 || prefixBits > 32 {
		return nil, 0, errfmt.Detail("p2pbound: tenant snapshot prefix bits out of range", ErrTenantSnapshotCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(b[12:]))
	rest := body[16:]
	if count < 0 || count > len(rest)/tenantFrameMin {
		return nil, 0, errfmt.Detail("p2pbound: tenant snapshot count exceeds stream", ErrTenantSnapshotCorrupt)
	}
	frames := make([]tenantFrame, 0, count)
	seen := make(map[string]bool, count)
	d := tenantDecoder{b: rest}
	for i := 0; i < count; i++ {
		fr, err := d.frame()
		if err != nil {
			return nil, 0, err
		}
		if seen[fr.id] {
			return nil, 0, errfmt.Detail("p2pbound: tenant snapshot repeats tenant "+fr.id, ErrTenantSnapshotCorrupt)
		}
		seen[fr.id] = true
		frames = append(frames, fr)
	}
	if len(d.b) != 0 {
		return nil, 0, errfmt.Detail("p2pbound: tenant snapshot has trailing bytes", ErrTenantSnapshotCorrupt)
	}
	return frames, prefixBits, nil
}

// tenantDecoder is a bounds-checked cursor over the frame section.
type tenantDecoder struct {
	b []byte
}

func (d *tenantDecoder) u32() (uint32, error) {
	if len(d.b) < 4 {
		return 0, errfmt.Detail("p2pbound: tenant snapshot truncated", ErrTenantSnapshotCorrupt)
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v, nil
}

func (d *tenantDecoder) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, errfmt.Detail("p2pbound: tenant snapshot truncated", ErrTenantSnapshotCorrupt)
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

func (d *tenantDecoder) byte() (byte, error) {
	if len(d.b) < 1 {
		return 0, errfmt.Detail("p2pbound: tenant snapshot truncated", ErrTenantSnapshotCorrupt)
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *tenantDecoder) bytes(n uint32) ([]byte, error) {
	if uint32(len(d.b)) < n {
		return nil, errfmt.Detail("p2pbound: tenant snapshot truncated", ErrTenantSnapshotCorrupt)
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v, nil
}

// maxTenantIDLen bounds a frame's id so a corrupt length field cannot
// force a giant allocation before the bounds check.
const maxTenantIDLen = 4096

// frame decodes one per-tenant record; the exact inverse of
// appendTenantFrame.
//
//p2p:codec bmtm decode
func (d *tenantDecoder) frame() (tenantFrame, error) {
	var fr tenantFrame
	idLen, err := d.u32()
	if err != nil {
		return fr, err
	}
	if idLen > maxTenantIDLen {
		return fr, errfmt.Detail("p2pbound: tenant snapshot id length implausible", ErrTenantSnapshotCorrupt)
	}
	id, err := d.bytes(idLen)
	if err != nil {
		return fr, err
	}
	fr.id = string(id)
	if fr.prefix, err = d.u32(); err != nil {
		return fr, err
	}
	if fr.flags, err = d.byte(); err != nil {
		return fr, err
	}
	if fr.flags&^(tenantFlagState|tenantFlagBitmap) != 0 {
		return fr, errfmt.Detail("p2pbound: tenant snapshot has undefined flags", ErrTenantSnapshotCorrupt)
	}
	if fr.flags&tenantFlagBitmap != 0 && fr.flags&tenantFlagState == 0 {
		return fr, errfmt.Detail("p2pbound: tenant snapshot bitmap without rotation state", ErrTenantSnapshotCorrupt)
	}
	if fr.flags&tenantFlagState != 0 {
		started, err := d.byte()
		if err != nil {
			return fr, err
		}
		if started > 1 {
			return fr, errfmt.Detail("p2pbound: tenant snapshot started flag out of range", ErrTenantSnapshotCorrupt)
		}
		fr.rot.Started = started == 1
		idx, err := d.u32()
		if err != nil {
			return fr, err
		}
		fr.rot.Index = int(int32(idx))
		next, err := d.u64()
		if err != nil {
			return fr, err
		}
		fr.rot.Next = time.Duration(next)
		last, err := d.u64()
		if err != nil {
			return fr, err
		}
		fr.rot.LastTS = time.Duration(last)
		rngLen, err := d.u32()
		if err != nil {
			return fr, err
		}
		if rngLen > 64 {
			return fr, errfmt.Detail("p2pbound: tenant snapshot rng state implausible", ErrTenantSnapshotCorrupt)
		}
		if fr.rng, err = d.bytes(rngLen); err != nil {
			return fr, err
		}
	}
	if fr.flags&tenantFlagBitmap != 0 {
		bmLen, err := d.u32()
		if err != nil {
			return fr, err
		}
		if fr.bitmap, err = d.bytes(bmLen); err != nil {
			return fr, err
		}
	}
	return fr, nil
}
