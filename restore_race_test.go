package p2pbound

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRestoreRacesProcessing drives ProcessBatch, RestoreState /
// AdoptState swaps, Stats polls, and telemetry-style reads all at once.
// Under -race it proves the atomic filter pointer makes state swaps
// safe against a live packet path; with or without -race it asserts
// the swap contract: every Stats counter is monotone non-decreasing
// across swaps (the retired filter's counters fold into the base), and
// MemoryBytes/ExpiryHorizon stay coherent.
func TestRestoreRacesProcessing(t *testing.T) {
	l := newLimiter(t, Config{VectorBits: 12, LowMbps: 1e-9, HighMbps: 2e-9})

	// Pre-capture the snapshot on a quiescent limiter: SaveState is
	// owner-only, so the racing goroutines below restore from this
	// frozen buffer rather than saving live.
	for i := 0; i < 50; i++ {
		l.Process(outPkt(0, uint16(40000+i), 80, 1500))
	}
	var snap bytes.Buffer
	if err := l.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	snapBytes := snap.Bytes()

	const iters = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Processing goroutine: the single owner of the packet path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		batch := make([]Packet, 0, 32)
		dst := make([]Decision, 0, 32)
		for i := 0; i < iters; i++ {
			batch = batch[:0]
			ts := time.Duration(i) * time.Millisecond
			for j := 0; j < 16; j++ {
				batch = append(batch, outPkt(ts, uint16(40000+(i*16+j)%2000), 80, 1500))
				batch = append(batch, inPkt(ts, 80, uint16(40000+(i*16+j)%2000), 1500))
			}
			dst = l.ProcessBatch(batch, dst[:0])
		}
	}()

	// Swapper goroutine: alternates RestoreState and AdoptState from
	// the pre-captured buffer while batches are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = l.RestoreState(bytes.NewReader(snapBytes))
			} else {
				err = l.AdoptState(bytes.NewReader(snapBytes))
			}
			if err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()

	// Stats poller: every counter must be monotone across swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev Stats
		for {
			s := l.Stats()
			for name, pair := range map[string][2]int64{
				"OutboundPackets":  {prev.OutboundPackets, s.OutboundPackets},
				"InboundPackets":   {prev.InboundPackets, s.InboundPackets},
				"InboundMatched":   {prev.InboundMatched, s.InboundMatched},
				"InboundUnmatched": {prev.InboundUnmatched, s.InboundUnmatched},
				"Dropped":          {prev.Dropped, s.Dropped},
				"Rotations":        {prev.Rotations, s.Rotations},
				"Unroutable":       {prev.Unroutable, s.Unroutable},
				"TimeAnomalies":    {prev.TimeAnomalies, s.TimeAnomalies},
			} {
				if pair[1] < pair[0] {
					t.Errorf("%s went backward across a swap: %d -> %d", name, pair[0], pair[1])
					return
				}
			}
			prev = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// Telemetry-style reader: scrape closures load the filter pointer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if l.MemoryBytes() <= 0 {
				t.Error("MemoryBytes not positive during swap")
				return
			}
			if l.ExpiryHorizon() <= 0 {
				t.Error("ExpiryHorizon not positive during swap")
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()

	// Quiescent close-out: a final batch decides against whichever
	// filter won the last swap, and totals are still sane.
	l.Process(outPkt(time.Duration(iters)*time.Millisecond, 39999, 80, 1500))
	s := l.Stats()
	if s.OutboundPackets == 0 || s.InboundPackets == 0 {
		t.Fatalf("no traffic accounted after race: %+v", s)
	}
}

// TestRestoreGeometrySentinel: geometry rejections carry the typed
// ErrGeometryMismatch sentinel through both RestoreState's wrap and
// geometryMismatch's detail text.
func TestRestoreGeometrySentinel(t *testing.T) {
	src := newLimiter(t, Config{VectorBits: 12})
	var snap bytes.Buffer
	if err := src.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	dst := newLimiter(t, Config{VectorBits: 13})
	err := dst.RestoreState(bytes.NewReader(snap.Bytes()))
	if err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("error %v does not match ErrGeometryMismatch", err)
	}
	// AdoptState accepts the foreign geometry instead.
	if err := dst.AdoptState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.MemoryBytes() != src.MemoryBytes() {
		t.Fatalf("adopt did not take snapshot geometry: %d != %d", dst.MemoryBytes(), src.MemoryBytes())
	}
}
