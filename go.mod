module p2pbound

go 1.22
