package p2pbound

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"p2pbound/internal/faultinject"
	"p2pbound/internal/netsim"
)

// chaosTrace builds a deterministic bidirectional trace: client hosts
// inside 140.112.0.0/16 talk to remote servers, with a tail of inbound
// packets that match no outbound flow (the P2P-request shape the filter
// exists to throttle).
func chaosTrace(n int, seed uint64) []Packet {
	pkts := make([]Packet, 0, n)
	for i := 0; i < n; i++ {
		ts := time.Duration(i) * 2 * time.Millisecond
		flow := uint32(seed)*2654435761 + uint32(i/4)
		client := netip.AddrFrom4([4]byte{140, 112, byte(flow >> 8), byte(flow)})
		remote := netip.AddrFrom4([4]byte{8, byte(flow >> 16), byte(flow >> 8), byte(flow)})
		switch i % 4 {
		case 0, 1: // outbound request
			pkts = append(pkts, Packet{
				Timestamp: ts, Protocol: TCP,
				SrcAddr: client, SrcPort: uint16(20000 + flow%20000),
				DstAddr: remote, DstPort: 80, Size: 120,
			})
		case 2: // matching inbound response
			pkts = append(pkts, Packet{
				Timestamp: ts, Protocol: TCP,
				SrcAddr: remote, SrcPort: 80,
				DstAddr: client, DstPort: uint16(20000 + flow%20000), Size: 1400,
			})
		default: // unmatched inbound (P2P-style request)
			pkts = append(pkts, Packet{
				Timestamp: ts, Protocol: TCP,
				SrcAddr: remote, SrcPort: 6881,
				DstAddr: client, DstPort: uint16(40000 + flow%20000), Size: 300,
			})
		}
	}
	return pkts
}

// checkStats asserts the limiter accounting invariants that must hold no
// matter what the trace looked like.
func checkStats(t *testing.T, s Stats, processed int) {
	t.Helper()
	if s.InboundMatched+s.InboundUnmatched != s.InboundPackets {
		t.Fatalf("inbound invariant broken: %d + %d != %d",
			s.InboundMatched, s.InboundUnmatched, s.InboundPackets)
	}
	if got := s.OutboundPackets + s.InboundPackets + s.Unroutable; got != int64(processed) {
		t.Fatalf("packet accounting broken: %d classified, %d processed", got, processed)
	}
	if s.Dropped > s.InboundUnmatched {
		t.Fatalf("dropped %d exceeds unmatched %d", s.Dropped, s.InboundUnmatched)
	}
}

// TestChaosLimiterMutatedTraces runs the limiter over reordered,
// duplicated, and clock-regressed variants of a trace. No mutation may
// panic, break the accounting invariants, or desert a verdict.
func TestChaosLimiterMutatedTraces(t *testing.T) {
	base := chaosTrace(8000, 1)
	mutations := []struct {
		name   string
		mutate func([]Packet) []Packet
	}{
		{"clean", func(p []Packet) []Packet { return p }},
		{"reordered", func(p []Packet) []Packet {
			faultinject.Reorder(p, 16, 2)
			return p
		}},
		{"duplicated", func(p []Packet) []Packet {
			return faultinject.Duplicate(p, 0.15, 3)
		}},
		{"clock-regressed", func(p []Packet) []Packet {
			faultinject.ClockRegress(p, func(q *Packet) *time.Duration { return &q.Timestamp }, 0.2, 3*time.Second, 4)
			return p
		}},
		{"everything", func(p []Packet) []Packet {
			p = faultinject.Duplicate(p, 0.1, 5)
			faultinject.Reorder(p, 32, 6)
			faultinject.ClockRegress(p, func(q *Packet) *time.Duration { return &q.Timestamp }, 0.1, 10*time.Second, 7)
			return p
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			pkts := m.mutate(append([]Packet(nil), base...))
			l, err := New(Config{
				ClientNetwork:    "140.112.0.0/16",
				LowMbps:          0.5,
				HighMbps:         1,
				ReorderTolerance: 40 * time.Millisecond,
				Seed:             9,
			})
			if err != nil {
				t.Fatal(err)
			}
			verdicts := l.ProcessBatch(pkts, nil)
			if len(verdicts) != len(pkts) {
				t.Fatalf("%d verdicts for %d packets", len(verdicts), len(pkts))
			}
			s := l.Stats()
			checkStats(t, s, len(pkts))
			switch m.name {
			case "clean", "reordered", "duplicated":
				// Small reorders sit inside the tolerance window;
				// duplicates are equal timestamps, never anomalies.
				if s.TimeAnomalies != 0 {
					t.Fatalf("unexpected time anomalies: %d", s.TimeAnomalies)
				}
			case "clock-regressed", "everything":
				if s.TimeAnomalies == 0 {
					t.Fatal("multi-second regressions not surfaced in TimeAnomalies")
				}
			}
		})
	}
}

// TestChaosPipelineShed saturates a gated single-shard pipeline and
// verifies that overflow degrades by the configured policy — counted,
// undecided, and without deadlocking the producer.
func TestChaosPipelineShed(t *testing.T) {
	for _, policy := range []ShedPolicy{ShedFailOpen, ShedFailClosed} {
		t.Run(policy.String(), func(t *testing.T) {
			gate := make(chan struct{})
			p, err := NewPipeline(
				Config{ClientNetwork: "140.112.0.0/16", Seed: 1},
				PipelineConfig{Shards: 1, RingSize: 64, OnOverload: policy, testGate: gate},
			)
			if err != nil {
				t.Fatal(err)
			}
			pkts := chaosTrace(256, 2)
			// Workers are gated, so exactly RingSize packets fit and the
			// rest must shed — Submit never blocks.
			doneSubmitting := make(chan struct{})
			go func() {
				defer close(doneSubmitting)
				p.SubmitBatch(pkts[:128])
				for _, pkt := range pkts[128:] {
					p.Submit(pkt)
				}
			}()
			select {
			case <-doneSubmitting:
			case <-time.After(10 * time.Second):
				t.Fatal("submission deadlocked against a saturated ring")
			}
			shedPassed, shedDropped := p.Shed()
			shed := shedPassed + shedDropped
			if shed != int64(len(pkts)-64) {
				t.Fatalf("expected %d shed, got %d", len(pkts)-64, shed)
			}
			if policy == ShedFailOpen && shedDropped != 0 {
				t.Fatalf("fail-open shed counted as dropped: %d", shedDropped)
			}
			if policy == ShedFailClosed && shedPassed != 0 {
				t.Fatalf("fail-closed shed counted as passed: %d", shedPassed)
			}
			close(gate)
			p.Drain()
			passed, dropped := p.Verdicts()
			if passed+dropped != 64 {
				t.Fatalf("decided %d, expected the %d ring-buffered packets", passed+dropped, 64)
			}
			p.Close()
			s := p.Stats()
			checkStats(t, s, 64)
			if s.ShedPassed != shedPassed || s.ShedDropped != shedDropped {
				t.Fatalf("stats shed counters diverge: %d/%d vs %d/%d",
					s.ShedPassed, s.ShedDropped, shedPassed, shedDropped)
			}
		})
	}
}

// TestChaosPipelineTrySubmit: TrySubmit reports a full ring without
// taking or counting the packet, and works again once the ring drains.
func TestChaosPipelineTrySubmit(t *testing.T) {
	gate := make(chan struct{})
	p, err := NewPipeline(
		Config{ClientNetwork: "140.112.0.0/16"},
		PipelineConfig{Shards: 1, RingSize: 4, testGate: gate},
	)
	if err != nil {
		t.Fatal(err)
	}
	pkt := chaosTrace(1, 3)[0]
	for i := 0; i < 4; i++ {
		if !p.TrySubmit(pkt) {
			t.Fatalf("TrySubmit failed with %d/4 slots used", i)
		}
	}
	if p.TrySubmit(pkt) {
		t.Fatal("TrySubmit succeeded on a full ring")
	}
	if sp, sd := p.Shed(); sp != 0 || sd != 0 {
		t.Fatalf("TrySubmit counted shed packets: %d/%d", sp, sd)
	}
	close(gate)
	p.Drain()
	if !p.TrySubmit(pkt) {
		t.Fatal("TrySubmit failed after the ring drained")
	}
	p.Drain()
	p.Close()
	if passed, dropped := p.Verdicts(); passed+dropped != 5 {
		t.Fatalf("decided %d, want 5", passed+dropped)
	}
}

// TestChaosPipelineShedConcurrent hammers a small fail-closed ring from
// several producers under the race detector: every packet must be
// accounted exactly once, as a verdict or as a shed.
func TestChaosPipelineShedConcurrent(t *testing.T) {
	p, err := NewPipeline(
		Config{ClientNetwork: "140.112.0.0/16", Seed: 4},
		PipelineConfig{Shards: 2, RingSize: 32, BatchSize: 8, OnOverload: ShedFailClosed},
	)
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 4, 4000
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			pkts := chaosTrace(perProducer, uint64(100+pr))
			for i := 0; i < len(pkts); i += 50 {
				end := i + 50
				if end > len(pkts) {
					end = len(pkts)
				}
				p.SubmitBatch(pkts[i:end])
			}
		}(pr)
	}
	wg.Wait()
	p.Drain()
	p.Close()
	passed, dropped := p.Verdicts()
	shedPassed, shedDropped := p.Shed()
	total := passed + dropped + shedPassed + shedDropped
	if total != producers*perProducer {
		t.Fatalf("accounting leak: %d accounted, %d submitted", total, producers*perProducer)
	}
	checkStats(t, p.Stats(), int(passed+dropped))
}

// TestChaosSaveStateFaultyWriter: snapshot writes through failing and
// short-writing writers surface errors instead of silently truncating.
func TestChaosSaveStateFaultyWriter(t *testing.T) {
	l, err := New(Config{ClientNetwork: "140.112.0.0/16"})
	if err != nil {
		t.Fatal(err)
	}
	l.ProcessBatch(chaosTrace(500, 5), nil)
	for _, failAfter := range []int64{0, 1, 56, 4096, 100_000} {
		w := &faultinject.Writer{FailAfter: failAfter, W: &bytes.Buffer{}}
		if err := l.SaveState(w); err == nil {
			t.Fatalf("write failing after %d bytes reported success", failAfter)
		}
	}
	// A clean save after the failed attempts restores bit-identically —
	// the failed writes left no state behind in the limiter.
	var slow bytes.Buffer
	if err := l.SaveState(&slow); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Config{ClientNetwork: "140.112.0.0/16"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(bytes.NewReader(slow.Bytes())); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
}

// TestChaosRestoreStateFaultyReader: truncated, bit-flipped, and
// error-injecting snapshot streams are rejected cleanly and leave the
// limiter's previous state untouched.
func TestChaosRestoreStateFaultyReader(t *testing.T) {
	l, err := New(Config{ClientNetwork: "140.112.0.0/16"})
	if err != nil {
		t.Fatal(err)
	}
	l.ProcessBatch(chaosTrace(500, 6), nil)
	var snap bytes.Buffer
	if err := l.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	fresh := func() *Limiter {
		f, err := New(Config{ClientNetwork: "140.112.0.0/16"})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, n := range []int{0, 10, 56, 1000, snap.Len() - 1} {
		if err := fresh().RestoreState(bytes.NewReader(faultinject.Truncate(snap.Bytes(), n))); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for _, bit := range []int{0, 77, 56 * 8, snap.Len()*8 - 1} {
		if err := fresh().RestoreState(bytes.NewReader(faultinject.FlipBit(snap.Bytes(), bit))); err == nil {
			t.Fatalf("bit flip at %d accepted", bit)
		}
	}
	r := &faultinject.Reader{R: bytes.NewReader(snap.Bytes()), FailAfter: 200}
	if err := fresh().RestoreState(r); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("mid-stream read error not propagated: %v", err)
	}
	// Short reads are not errors: a stuttering but complete stream loads.
	r = &faultinject.Reader{R: bytes.NewReader(snap.Bytes()), FailAfter: -1, MaxRead: 3}
	if err := fresh().RestoreState(r); err != nil {
		t.Fatalf("short-reading stream rejected: %v", err)
	}
}

// TestChaosRestoreStateGeometryMismatch: a snapshot from a differently
// configured limiter is refused with a descriptive error unless adopted
// explicitly.
func TestChaosRestoreStateGeometryMismatch(t *testing.T) {
	src, err := New(Config{ClientNetwork: "140.112.0.0/16", Vectors: 2, VectorBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	src.ProcessBatch(chaosTrace(200, 7), nil)
	var snap bytes.Buffer
	if err := src.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	dst, err := New(Config{ClientNetwork: "140.112.0.0/16"}) // default k=4, n=20
	if err != nil {
		t.Fatal(err)
	}
	before := dst.MemoryBytes()
	err = dst.RestoreState(bytes.NewReader(snap.Bytes()))
	if err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if !strings.Contains(err.Error(), "geometry mismatch") {
		t.Fatalf("undescriptive error: %v", err)
	}
	if dst.MemoryBytes() != before {
		t.Fatal("failed restore mutated the limiter")
	}
	if err := dst.AdoptState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("explicit adoption rejected: %v", err)
	}
	if dst.MemoryBytes() != src.MemoryBytes() {
		t.Fatalf("adoption did not take the snapshot geometry: %d vs %d",
			dst.MemoryBytes(), src.MemoryBytes())
	}
}

// TestRestoreStateRejectsSchemeLayoutMismatch: hash scheme and bit
// layout are part of snapshot geometry — marks made under one index
// derivation are meaningless under another, so restoring across a
// scheme or layout change must fail like any other geometry mismatch.
func TestRestoreStateRejectsSchemeLayoutMismatch(t *testing.T) {
	src, err := New(Config{ClientNetwork: "140.112.0.0/16", Layout: LayoutBlocked})
	if err != nil {
		t.Fatal(err)
	}
	src.ProcessBatch(chaosTrace(200, 7), nil)
	var snap bytes.Buffer
	if err := src.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{ClientNetwork: "140.112.0.0/16"},                          // default: per-index classic
		{ClientNetwork: "140.112.0.0/16", HashScheme: HashOneShot}, // one-shot but classic
	} {
		dst, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = dst.RestoreState(bytes.NewReader(snap.Bytes()))
		if err == nil {
			t.Fatalf("cfg %+v: scheme/layout mismatch accepted", cfg)
		}
		if !strings.Contains(err.Error(), "geometry mismatch") {
			t.Fatalf("undescriptive error: %v", err)
		}
	}
	// Matching scheme+layout restores cleanly.
	twin, err := New(Config{ClientNetwork: "140.112.0.0/16", Layout: LayoutBlocked})
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.RestoreState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("matching blocked restore rejected: %v", err)
	}
}

// TestChaosFleetPartitionHeal drives a fleet over a netsim mesh under
// the same seeded partition/heal schedule the replica suite uses
// (faultinject.PartitionSchedule): flows marked on members isolated by
// the cut must still be admitted fleet-wide once the schedule heals,
// and members must never fail open while partitioned away from the
// fleet's state.
func TestChaosFleetPartitionHeal(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		const members, rounds = 3, 24
		part := faultinject.NewPartitionSchedule(faultinject.PartitionConfig{
			Nodes: members, Rounds: rounds / 2, Episodes: 2, AsymmetricProb: 0.5,
		}, seed)
		mesh := netsim.NewMesh(members, netsim.LinkConfig{Partitions: part, Seed: seed})
		fl, err := NewFleet(Config{
			ClientNetwork: "140.112.0.0/16",
			LowMbps:       1e-9, HighMbps: 2e-9, // saturated: only marks admit
			VectorBits: 12,
		}, FleetConfig{Replicas: members, DigestEvery: 1, Transport: mesh})
		if err != nil {
			t.Fatal(err)
		}
		// Saturate every member's meter, then mark flows spread across
		// members and rounds so deltas interleave with the partitions.
		for i := 0; i < members; i++ {
			fl.ProcessOnReplica(i, outPkt(0, 50000, 80, 1500))
		}
		flow := 0
		for r := 0; r < rounds; r++ {
			if r < rounds/2 {
				for i := 0; i < members; i++ {
					p := outPkt(time.Duration(r)*time.Millisecond, uint16(42000+flow), 6881, 1500)
					if d := fl.ProcessOnReplica(i, p); d != Pass {
						t.Fatalf("seed %d: outbound flow %d dropped", seed, flow)
					}
					flow++
				}
			}
			fl.Sync()
			mesh.NextRound()
		}
		if part.HealedAfter() > rounds/2 {
			t.Fatalf("seed %d: schedule not healed within its own horizon", seed)
		}
		for i := 0; i < members; i++ {
			if !fl.Ready(i) {
				t.Fatalf("seed %d: member %d not ready after heal", seed, i)
			}
		}
		// Every flow admitted on every member — including flows marked
		// while the marker was cut off from that member.
		ts := time.Duration(rounds) * time.Millisecond
		for f := 0; f < flow; f++ {
			for i := 0; i < members; i++ {
				if d := fl.ProcessOnReplica(i, inPkt(ts, 6881, uint16(42000+f), 1500)); d != Pass {
					t.Fatalf("seed %d: flow %d dropped on member %d after heal", seed, f, i)
				}
			}
		}
		for i := 0; i < members; i++ {
			if d := fl.ProcessOnReplica(i, inPkt(ts, 1234, 9, 1500)); d != Drop {
				t.Fatalf("seed %d: unmarked inbound passed on member %d", seed, i)
			}
		}
	}
}
