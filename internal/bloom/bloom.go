// Package bloom implements the classic Bloom filter (Bloom, 1970 — the
// paper's reference [9]) that the bitmap filter composes k instances of.
//
// Beyond Add/Test it exposes the analytical machinery of Section 5.1:
// the penetration probability p = U^m of Equation 2, its low-utilization
// approximation p ≈ (c·m/N)^m of Equation 3, the optimal hash count
// m = e⁻¹·N/c of Equation 5, and the capacity bound c/N ≤ −1/(e·ln p) of
// Equation 6.
package bloom

import (
	"fmt"
	"math"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/hashes"
)

// Filter is a standard Bloom filter over byte keys.
type Filter struct {
	vec    *bitvec.Vector
	family *hashes.Family
	scheme hashes.Scheme
	layout hashes.Layout
	sums   []uint32
	adds   int
}

// New builds a Bloom filter with 2^nbits bits and m hash functions of the
// given kind, in the classic per-index scheme and scattered layout.
func New(kind hashes.Kind, m int, nbits uint) (*Filter, error) {
	return NewWithOptions(kind, hashes.SchemePerIndex, hashes.LayoutClassic, m, nbits)
}

// NewWithOptions builds a Bloom filter with an explicit index-derivation
// scheme and bit layout. Zero values select the classic defaults; the
// blocked layout requires (and implies, when the scheme is unset) the
// one-shot scheme, because the block choice consumes the high bits of
// the 64-bit one-shot hash.
func NewWithOptions(kind hashes.Kind, scheme hashes.Scheme, layout hashes.Layout, m int, nbits uint) (*Filter, error) {
	scheme, layout, err := hashes.ResolveSchemeLayout(scheme, layout)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	family, err := hashes.NewFamily(kind, m, nbits)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return &Filter{
		vec:    bitvec.New(1 << nbits),
		family: family,
		scheme: scheme,
		layout: layout,
		sums:   make([]uint32, 0, m),
	}, nil
}

// sum derives the key's m indexes per the configured scheme and layout.
func (f *Filter) sum(key []byte) {
	switch {
	case f.layout == hashes.LayoutBlocked:
		f.sums = f.family.AppendBlocked(f.sums[:0], f.family.Sum64(key))
	case f.scheme == hashes.SchemeOneShot:
		f.sums = f.family.AppendDerived(f.sums[:0], f.family.Sum64(key))
	default:
		f.sums = f.family.Sum(f.sums[:0], key)
	}
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	f.sum(key)
	if f.layout == hashes.LayoutBlocked {
		f.vec.SetAligned(f.sums)
	} else {
		for _, h := range f.sums {
			f.vec.Set(h)
		}
	}
	f.adds++
}

// Test reports whether key may have been added. False positives are
// possible; false negatives are not.
func (f *Filter) Test(key []byte) bool {
	f.sum(key)
	if f.layout == hashes.LayoutBlocked {
		return f.vec.GetAligned(f.sums)
	}
	for _, h := range f.sums {
		if !f.vec.Get(h) {
			return false
		}
	}
	return true
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	f.vec.Clear()
	f.adds = 0
}

// Adds returns the number of Add calls since the last Clear.
func (f *Filter) Adds() int { return f.adds }

// Bits returns the size N of the bit vector.
func (f *Filter) Bits() uint { return f.vec.Len() }

// Bytes returns the memory footprint of the bit vector.
func (f *Filter) Bytes() int { return f.vec.Bytes() }

// M returns the number of hash functions.
func (f *Filter) M() int { return f.family.M() }

// Utilization returns the marked-bit fraction U = b/N.
func (f *Filter) Utilization() float64 { return f.vec.Utilization() }

// PenetrationProbability returns p = U^m (Equation 2): the probability a
// random key not in the filter tests positive, given the current
// utilization.
func (f *Filter) PenetrationProbability() float64 {
	return math.Pow(f.Utilization(), float64(f.M()))
}

// Penetration returns the Equation 3 approximation p ≈ (c·m/N)^m for c
// active connections, m hash functions, and an N-bit vector. It assumes
// hash collisions are rare, i.e. low utilization.
func Penetration(c, m int, n uint) float64 {
	return math.Pow(float64(c)*float64(m)/float64(int(1)<<n), float64(m))
}

// OptimalM returns the real-valued hash count m = e⁻¹·N/c minimizing the
// penetration probability (Equation 5) for c connections in an N-bit
// vector.
func OptimalM(c int, nbits uint) float64 {
	return float64(int(1)<<nbits) / (math.E * float64(c))
}

// CapacityBound returns the maximum number of active connections c
// satisfying c/N ≤ −1/(e·ln p) (Equation 6) so that the optimally-tuned
// filter keeps the penetration probability at or below p.
func CapacityBound(p float64, nbits uint) int {
	if p <= 0 || p >= 1 {
		return 0
	}
	return int(-float64(int(1)<<nbits) / (math.E * math.Log(p)))
}

// UnionFrom ORs another filter's bits into this one, the single-filter
// analogue of the fleet's delta merge: Test(key) is true afterwards for
// every key either filter held, and no key is lost — union can add
// false positives, never false negatives. Both filters must share
// geometry (bit count, hash count, scheme, layout), since the same bit
// must mean the same key material on both sides. It walks the source in
// the 512-bit delta blocks of internal/bitvec and merges only nonzero
// ones, so a sparse source costs its dirty blocks, not its size. After
// a union, Adds is the sum of both sides — an upper bound, since shared
// keys are counted twice; the analytical helpers treat c as a worst
// case anyway.
func (f *Filter) UnionFrom(src *Filter) error {
	if f.Bits() != src.Bits() || f.M() != src.M() ||
		f.scheme != src.scheme || f.layout != src.layout {
		return fmt.Errorf("bloom: union geometry mismatch: %d/%d bits, m %d/%d, scheme %v/%v, layout %v/%v",
			f.Bits(), src.Bits(), f.M(), src.M(), f.scheme, src.scheme, f.layout, src.layout)
	}
	err := src.vec.DiffBlocks(nil, func(blk uint32, xor *[bitvec.DeltaBlockWords]uint64) {
		if _, mergeErr := f.vec.MergeBlock(blk, xor); mergeErr != nil {
			// Unreachable: blk came from an equal-geometry walk.
			panic(mergeErr)
		}
	})
	if err != nil {
		return fmt.Errorf("bloom: union: %w", err)
	}
	f.adds += src.adds
	return nil
}
