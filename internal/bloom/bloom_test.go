package bloom

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"p2pbound/internal/hashes"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(hashes.FNVDouble, 0, 10); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := New(hashes.Kind(77), 3, 10); err == nil {
		t.Fatal("bad kind accepted")
	}
	f, err := New(hashes.FNVDouble, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Bits() != 1024 || f.M() != 3 || f.Bytes() != 128 {
		t.Fatalf("geometry wrong: bits=%d m=%d bytes=%d", f.Bits(), f.M(), f.Bytes())
	}
}

// TestNoFalseNegatives property: every added key tests positive.
func TestNoFalseNegatives(t *testing.T) {
	f, err := New(hashes.FNVDouble, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	check := func(keys [][]byte) bool {
		f.Clear()
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClearAndAdds(t *testing.T) {
	f, err := New(hashes.Mix, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	f.Add([]byte("a"))
	f.Add([]byte("b"))
	if f.Adds() != 2 {
		t.Fatalf("Adds = %d", f.Adds())
	}
	if f.Utilization() == 0 {
		t.Fatal("utilization zero after adds")
	}
	f.Clear()
	if f.Adds() != 0 || f.Utilization() != 0 {
		t.Fatal("Clear did not reset")
	}
	if f.Test([]byte("a")) {
		t.Fatal("key survives Clear")
	}
}

// TestMeasuredFPPMatchesEquation2 fills the filter and compares the
// measured false-positive rate against p = U^m (Equation 2).
func TestMeasuredFPPMatchesEquation2(t *testing.T) {
	f, err := New(hashes.FNVDouble, 3, 14) // 16384 bits
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		f.Add([]byte("member-" + strconv.Itoa(i)))
	}
	predicted := f.PenetrationProbability()
	const probes = 50_000
	hits := 0
	for i := 0; i < probes; i++ {
		if f.Test([]byte("outsider-" + strconv.Itoa(i))) {
			hits++
		}
	}
	measured := float64(hits) / probes
	if predicted <= 0 || measured <= 0 {
		t.Fatalf("degenerate rates: predicted=%g measured=%g", predicted, measured)
	}
	if ratio := measured / predicted; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("measured FPP %.5f vs Equation 2 %.5f (ratio %.2f)", measured, predicted, ratio)
	}
}

// TestPenetrationApproximation: Equation 3 approximates Equation 2 at low
// utilization.
func TestPenetrationApproximation(t *testing.T) {
	f, err := New(hashes.FNVDouble, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	const c = 15_000
	for i := 0; i < c; i++ {
		f.Add([]byte("conn-" + strconv.Itoa(i)))
	}
	exact := f.PenetrationProbability()
	approx := Penetration(c, 3, 20)
	if ratio := exact / approx; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("Equation 2 (%.6g) vs Equation 3 (%.6g): ratio %.2f", exact, approx, ratio)
	}
}

// TestOptimalMMinimizesPenetration property: Equation 5's m yields a lower
// (or equal) analytical penetration than neighbouring integer choices.
func TestOptimalMMinimizesPenetration(t *testing.T) {
	const nbits = 20
	for _, c := range []int{50_000, 100_000, 150_000} {
		opt := OptimalM(c, nbits)
		mOpt := int(math.Round(opt))
		if mOpt < 1 {
			mOpt = 1
		}
		pOpt := Penetration(c, mOpt, nbits)
		for _, m := range []int{mOpt - 2, mOpt - 1, mOpt + 1, mOpt + 2} {
			if m < 1 {
				continue
			}
			if p := Penetration(c, m, nbits); p < pOpt*0.999 {
				t.Errorf("c=%d: m=%d gives p=%.6g better than optimal m=%d (p=%.6g)", c, m, p, mOpt, pOpt)
			}
		}
	}
}

// TestCapacityBoundPaperValues reproduces the Section 5.1 worked example:
// for N=2^20 the capacity bounds at p = 10 %, 5 %, 1 % are roughly 167K,
// 125K (the paper rounds 128K down), and 83K.
func TestCapacityBoundPaperValues(t *testing.T) {
	tests := []struct {
		p      float64
		wantLo int
		wantHi int
	}{
		{0.10, 160_000, 175_000},
		{0.05, 120_000, 135_000},
		{0.01, 80_000, 90_000},
	}
	for _, tt := range tests {
		got := CapacityBound(tt.p, 20)
		if got < tt.wantLo || got > tt.wantHi {
			t.Errorf("CapacityBound(%.2f, 20) = %d, want in [%d, %d]", tt.p, got, tt.wantLo, tt.wantHi)
		}
	}
}

// TestCapacityBoundConsistency property: a filter tuned with the optimal m
// for the bound capacity achieves (approximately) the requested p.
func TestCapacityBoundConsistency(t *testing.T) {
	const nbits = 20
	for _, p := range []float64{0.10, 0.05, 0.01} {
		c := CapacityBound(p, nbits)
		m := OptimalM(c, nbits)
		achieved := math.Pow(float64(c)*m/float64(1<<nbits), m)
		if ratio := achieved / p; ratio < 0.8 || ratio > 1.25 {
			t.Errorf("p=%.2f: achieved %.4f at capacity bound (ratio %.2f)", p, achieved, ratio)
		}
	}
}

func TestCapacityBoundEdges(t *testing.T) {
	if CapacityBound(0, 20) != 0 || CapacityBound(1, 20) != 0 || CapacityBound(-1, 20) != 0 {
		t.Fatal("degenerate p must yield zero capacity")
	}
}

func TestUnionFrom(t *testing.T) {
	newF := func() *Filter {
		f, err := New(hashes.FNVDouble, 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := newF(), newF()
	for i := 0; i < 100; i++ {
		a.Add([]byte{byte(i), 'a'})
		b.Add([]byte{byte(i), 'b'})
	}
	if err := a.UnionFrom(b); err != nil {
		t.Fatal(err)
	}
	// No false negatives: every key of either side tests true.
	for i := 0; i < 100; i++ {
		if !a.Test([]byte{byte(i), 'a'}) || !a.Test([]byte{byte(i), 'b'}) {
			t.Fatalf("union lost key %d", i)
		}
	}
	if a.Adds() != 200 {
		t.Fatalf("union adds = %d, want 200", a.Adds())
	}
	// Union equals adding both key sets directly.
	direct := newF()
	for i := 0; i < 100; i++ {
		direct.Add([]byte{byte(i), 'a'})
		direct.Add([]byte{byte(i), 'b'})
	}
	if direct.Utilization() != a.Utilization() {
		t.Fatalf("union utilization %v != direct %v", a.Utilization(), direct.Utilization())
	}
	// Geometry mismatches are rejected.
	small, err := New(hashes.FNVDouble, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnionFrom(small); err == nil {
		t.Fatal("bit-count mismatch accepted")
	}
	m2, err := New(hashes.FNVDouble, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnionFrom(m2); err == nil {
		t.Fatal("hash-count mismatch accepted")
	}
}
