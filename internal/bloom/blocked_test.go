package bloom

import (
	"encoding/binary"
	"testing"

	"p2pbound/internal/hashes"
)

func key64(buf []byte, v uint64) []byte {
	binary.LittleEndian.PutUint64(buf, v)
	return buf
}

func TestNewWithOptionsValidation(t *testing.T) {
	if _, err := NewWithOptions(hashes.FNVDouble, hashes.SchemePerIndex, hashes.LayoutBlocked, 3, 16); err == nil {
		t.Fatal("blocked layout with per-index scheme must be rejected")
	}
	if _, err := NewWithOptions(hashes.FNVDouble, hashes.Scheme(9), 0, 3, 16); err == nil {
		t.Fatal("unknown scheme must be rejected")
	}
	f, err := NewWithOptions(hashes.FNVDouble, 0, hashes.LayoutBlocked, 3, 16)
	if err != nil {
		t.Fatalf("blocked with unset scheme should resolve to one-shot: %v", err)
	}
	if f == nil {
		t.Fatal("nil filter")
	}
}

// TestBlockedNoFalseNegatives: the Bloom filter contract — every added
// key tests positive — must hold in the blocked layout for every hash
// kind.
func TestBlockedNoFalseNegatives(t *testing.T) {
	for _, kind := range []hashes.Kind{hashes.FNVDouble, hashes.Jenkins, hashes.Mix} {
		f, err := NewWithOptions(kind, hashes.SchemeOneShot, hashes.LayoutBlocked, 4, 16)
		if err != nil {
			t.Fatal(err)
		}
		var buf [8]byte
		for i := uint64(0); i < 5000; i++ {
			f.Add(key64(buf[:], i*0x9e3779b97f4a7c15+i))
		}
		for i := uint64(0); i < 5000; i++ {
			if !f.Test(key64(buf[:], i*0x9e3779b97f4a7c15+i)) {
				t.Fatalf("%v: key %d lost after Add in blocked layout", kind, i)
			}
		}
	}
}

// TestOneShotNoFalseNegatives: same contract for the one-shot scheme in
// the classic layout.
func TestOneShotNoFalseNegatives(t *testing.T) {
	f, err := NewWithOptions(hashes.Mix, hashes.SchemeOneShot, hashes.LayoutClassic, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	for i := uint64(0); i < 5000; i++ {
		f.Add(key64(buf[:], i))
	}
	for i := uint64(0); i < 5000; i++ {
		if !f.Test(key64(buf[:], i)) {
			t.Fatalf("key %d lost after Add in one-shot scheme", i)
		}
	}
}

// TestBlockedFPRWithinBound: the acceptance criterion of the blocked
// layout. Concentrating a key's m bits in one 512-bit line raises the
// false positive rate by the variance of per-line occupancy (Putze et
// al., "Cache-, Hash- and Space-Efficient Bloom Filters"); the bound we
// hold the implementation to is a factor of 2 over the classic layout
// at 50% utilization — the worst operating point the rotation schedule
// is provisioned for.
func TestBlockedFPRWithinBound(t *testing.T) {
	const (
		m      = 4
		nbits  = 16
		probes = 200000
	)
	classic, err := New(hashes.FNVDouble, m, nbits)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := NewWithOptions(hashes.FNVDouble, 0, hashes.LayoutBlocked, m, nbits)
	if err != nil {
		t.Fatal(err)
	}
	// Fill each filter to 50% utilization with a disjoint key stream
	// (high bit set) so probe keys below can never be true members.
	var buf [8]byte
	for i := uint64(0); classic.Utilization() < 0.5; i++ {
		classic.Add(key64(buf[:], 1<<63|i))
	}
	for i := uint64(0); blocked.Utilization() < 0.5; i++ {
		blocked.Add(key64(buf[:], 1<<63|i))
	}

	fpr := func(f *Filter) float64 {
		hits := 0
		for i := uint64(0); i < probes; i++ {
			if f.Test(key64(buf[:], i)) {
				hits++
			}
		}
		return float64(hits) / probes
	}
	classicFPR, blockedFPR := fpr(classic), fpr(blocked)
	t.Logf("classic FPR %.5f, blocked FPR %.5f (ratio %.2f)", classicFPR, blockedFPR, blockedFPR/classicFPR)
	if classicFPR == 0 {
		t.Fatal("degenerate run: classic FPR is zero at 50% utilization")
	}
	if blockedFPR > 2*classicFPR {
		t.Fatalf("blocked FPR %.5f exceeds 2x classic %.5f", blockedFPR, classicFPR)
	}
}
