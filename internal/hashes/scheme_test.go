package hashes

import (
	"encoding/binary"
	"testing"
)

func TestResolveSchemeLayoutDefaults(t *testing.T) {
	cases := []struct {
		name       string
		scheme     Scheme
		layout     Layout
		wantScheme Scheme
		wantLayout Layout
		wantErr    bool
	}{
		{"zero-zero", 0, 0, SchemePerIndex, LayoutClassic, false},
		{"explicit-classic", SchemePerIndex, LayoutClassic, SchemePerIndex, LayoutClassic, false},
		{"oneshot-classic", SchemeOneShot, 0, SchemeOneShot, LayoutClassic, false},
		{"blocked-implies-oneshot", 0, LayoutBlocked, SchemeOneShot, LayoutBlocked, false},
		{"blocked-oneshot", SchemeOneShot, LayoutBlocked, SchemeOneShot, LayoutBlocked, false},
		{"blocked-perindex-rejected", SchemePerIndex, LayoutBlocked, 0, 0, true},
		{"unknown-scheme", Scheme(99), 0, 0, 0, true},
		{"unknown-layout", 0, Layout(99), 0, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scheme, layout, err := ResolveSchemeLayout(tc.scheme, tc.layout)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ResolveSchemeLayout(%v, %v) = %v, %v, nil; want error", tc.scheme, tc.layout, scheme, layout)
				}
				return
			}
			if err != nil {
				t.Fatalf("ResolveSchemeLayout(%v, %v): %v", tc.scheme, tc.layout, err)
			}
			if scheme != tc.wantScheme || layout != tc.wantLayout {
				t.Fatalf("ResolveSchemeLayout(%v, %v) = %v, %v; want %v, %v",
					tc.scheme, tc.layout, scheme, layout, tc.wantScheme, tc.wantLayout)
			}
		})
	}
}

func TestSchemeLayoutStrings(t *testing.T) {
	if got := SchemePerIndex.String(); got != "per-index" {
		t.Errorf("SchemePerIndex.String() = %q", got)
	}
	if got := SchemeOneShot.String(); got != "one-shot" {
		t.Errorf("SchemeOneShot.String() = %q", got)
	}
	if got := LayoutClassic.String(); got != "classic" {
		t.Errorf("LayoutClassic.String() = %q", got)
	}
	if got := LayoutBlocked.String(); got != "blocked" {
		t.Errorf("LayoutBlocked.String() = %q", got)
	}
	if got := Scheme(7).String(); got != "scheme(7)" {
		t.Errorf("Scheme(7).String() = %q", got)
	}
	if got := Layout(7).String(); got != "layout(7)" {
		t.Errorf("Layout(7).String() = %q", got)
	}
}

// TestPerIndexFrozenAgainstOneShot: the FNVDouble per-index family is
// the frozen pre-scheme derivation — the Kirsch–Mitzenmacher expansion
// of mix64(FNV1a64) — because snapshots written before the scheme byte
// existed resolve to SchemePerIndex. It must NOT follow Sum64, which
// the one-shot scheme is free to define as a faster key hash.
func TestPerIndexFrozenAgainstOneShot(t *testing.T) {
	f, err := NewFamily(FNVDouble, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	var key [13]byte
	agree := 0
	for trial := 0; trial < 1000; trial++ {
		binary.LittleEndian.PutUint64(key[:8], uint64(trial)*0x9e3779b97f4a7c15+1)
		binary.LittleEndian.PutUint32(key[8:12], uint32(trial))
		per := f.Sum(nil, key[:])
		// The frozen derivation, written out: expand mix64(FNV1a64(key)).
		h := uint64(0xcbf29ce484222325)
		for _, b := range key {
			h ^= uint64(b)
			h *= 0x100000001b3
		}
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		h1, h2 := uint32(h), uint32(h>>32)|1
		for i := range per {
			if want := (h1 + uint32(i)*h2) & (1<<20 - 1); per[i] != want {
				t.Fatalf("trial %d index %d: per-index %d != frozen %d", trial, i, per[i], want)
			}
		}
		if d := f.AppendDerived(nil, f.Sum64(key[:])); d[0] == per[0] {
			agree++
		}
	}
	if agree > 100 {
		t.Fatalf("one-shot derivation agrees with per-index on %d/1000 keys; Sum64 does not look independent", agree)
	}
}

// TestSumIntoMatchesAppendVariants: the fused *Into batch entry points
// must be bit-identical to their append-style compositions — they exist
// only to collapse function-call boundaries, never to change indexes.
func TestSumIntoMatchesAppendVariants(t *testing.T) {
	for _, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 4, 22)
		if err != nil {
			t.Fatal(err)
		}
		var key [13]byte
		got := make([]uint32, 4)
		for trial := 0; trial < 500; trial++ {
			binary.LittleEndian.PutUint64(key[:8], uint64(trial)*0x2545f4914f6cdd1d+7)
			binary.LittleEndian.PutUint32(key[8:12], uint32(trial)*3)
			f.SumInto(got, key[:])
			if want := f.Sum(nil, key[:]); !equalU32(got, want) {
				t.Fatalf("kind %v trial %d: SumInto %v != Sum %v", kind, trial, got, want)
			}
			f.SumDerivedInto(got, key[:])
			if want := f.AppendDerived(nil, f.Sum64(key[:])); !equalU32(got, want) {
				t.Fatalf("kind %v trial %d: SumDerivedInto %v != AppendDerived %v", kind, trial, got, want)
			}
			f.SumBlockedInto(got, key[:])
			if want := f.AppendBlocked(nil, f.Sum64(key[:])); !equalU32(got, want) {
				t.Fatalf("kind %v trial %d: SumBlockedInto %v != AppendBlocked %v", kind, trial, got, want)
			}
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAppendBlockedConfinedToOneLine: every index of a key must land in
// the same 512-bit block — the property the whole layout exists for.
func TestAppendBlockedConfinedToOneLine(t *testing.T) {
	for _, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 8, 24)
		if err != nil {
			t.Fatal(err)
		}
		var key [13]byte
		for trial := 0; trial < 2000; trial++ {
			binary.LittleEndian.PutUint64(key[:8], uint64(trial)*0x6c62272e07bb0142+3)
			idx := f.AppendBlocked(nil, f.Sum64(key[:]))
			if len(idx) != 8 {
				t.Fatalf("%v: got %d indexes, want 8", kind, len(idx))
			}
			line := idx[0] / LineBits
			for _, i := range idx {
				if i>>24 != 0 {
					t.Fatalf("%v trial %d: index %d out of the 2^24 range", kind, trial, i)
				}
				if i/LineBits != line {
					t.Fatalf("%v trial %d: indexes straddle lines %d and %d", kind, trial, line, i/LineBits)
				}
			}
		}
	}
}

// TestAppendBlockedTinyVector: a vector smaller than one cache line
// degenerates to a single block covering the whole vector.
func TestAppendBlockedTinyVector(t *testing.T) {
	f, err := NewFamily(FNVDouble, 4, 8) // 256-bit vector < 512-bit line
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		key := []byte{byte(trial), byte(trial >> 8), 7}
		for _, i := range f.AppendBlocked(nil, f.Sum64(key)) {
			if i >= 256 {
				t.Fatalf("trial %d: index %d outside the 256-bit vector", trial, i)
			}
		}
	}
}

// TestAppendBlockedSpread: blocks must be chosen roughly uniformly, or
// the layout would concentrate utilization and blow up the false
// positive rate. With 4096 keys over 32768 lines, any line hit by more
// than a handful of keys signals a broken block choice.
func TestAppendBlockedSpread(t *testing.T) {
	f, err := NewFamily(FNVDouble, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4096
	lines := make(map[uint32]int)
	var key [8]byte
	for trial := 0; trial < keys; trial++ {
		binary.LittleEndian.PutUint64(key[:], uint64(trial))
		idx := f.AppendBlocked(nil, f.Sum64(key[:]))
		lines[idx[0]/LineBits]++
	}
	if len(lines) < keys*9/10 {
		t.Fatalf("only %d distinct lines for %d keys; block choice is not spreading", len(lines), keys)
	}
	for line, n := range lines {
		if n > 6 {
			t.Fatalf("line %d chosen by %d keys; expected near-uniform spread", line, n)
		}
	}
}

// TestSum64Deterministic: the one-shot hash must be a pure function of
// the key bytes, identical across kinds (it is the single shared key
// hash; the kind only selects the per-index family), and sensitive to
// key length for the sub-word fallback.
func TestSum64Deterministic(t *testing.T) {
	key := []byte("one-shot determinism probe")
	var ref uint64
	for i, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 3, 16)
		if err != nil {
			t.Fatal(err)
		}
		h := f.Sum64(key)
		if h2 := f.Sum64(key); h2 != h {
			t.Fatalf("%v: Sum64 not deterministic: %#x vs %#x", kind, h, h2)
		}
		if i == 0 {
			ref = h
		} else if h != ref {
			t.Fatalf("%v: Sum64 = %#x, want the kind-independent %#x", kind, h, ref)
		}
		if short := f.Sum64(key[:5]); short == h || short != f.Sum64(key[:5]) {
			t.Fatalf("%v: sub-word fallback broken: %#x vs %#x", kind, short, h)
		}
	}
}
