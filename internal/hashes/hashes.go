// Package hashes implements the m hash functions shared by all bloom
// filters in a bitmap filter (Section 4.2: "All the bloom filters in the
// bitmap share the same m hash functions, each of which should only output
// an n-bit value. An output that exceeds n bits should be truncated.").
//
// Three independent from-scratch hash constructions are provided —
// an FNV-1a based Kirsch–Mitzenmacher double-hashing family, Bob Jenkins'
// lookup3, and a Murmur3-style finalizer hash — so the filter's false
// positive behaviour can be validated across hash families.
package hashes

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Kind selects a hash construction for a Family.
type Kind int

// Supported hash constructions.
const (
	// FNVDouble derives the i-th hash as h1 + i·h2 from two FNV-1a
	// passes (Kirsch–Mitzenmacher double hashing). This is the default:
	// two hash computations serve any m.
	FNVDouble Kind = iota + 1
	// Jenkins uses Bob Jenkins' lookup3 with m distinct seeds.
	Jenkins
	// Mix uses a Murmur3-style avalanche mix with m distinct seeds.
	Mix
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FNVDouble:
		return "fnv-double"
	case Jenkins:
		return "jenkins"
	case Mix:
		return "mix"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Scheme selects how the m bit indexes of a key are obtained.
type Scheme int

// Index-derivation schemes. The zero value means SchemePerIndex, the
// original construction.
const (
	// SchemePerIndex runs the full per-index family: m independent
	// full-key hash computations (Jenkins and Mix) or the classic
	// Kirsch–Mitzenmacher expansion (FNVDouble).
	SchemePerIndex Scheme = iota + 1
	// SchemeOneShot hashes the key once into 64 bits (Sum64) and derives
	// all m indexes arithmetically from that value — one key traversal
	// per packet regardless of m. For FNVDouble the derived indexes are
	// bit-identical to SchemePerIndex; for Jenkins and Mix they differ
	// (two seeded passes are folded into the one-shot value).
	SchemeOneShot
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemePerIndex:
		return "per-index"
	case SchemeOneShot:
		return "one-shot"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Layout selects where a key's m bits land in the bit vector.
type Layout int

// Bit layouts. The zero value means LayoutClassic.
const (
	// LayoutClassic scatters the m indexes uniformly across the whole
	// n-bit vector — the paper's layout, and the textbook Bloom filter.
	LayoutClassic Layout = iota + 1
	// LayoutBlocked confines a key's m bits to a single 512-bit
	// (one-cache-line) block chosen by the high bits of the one-shot
	// hash, so testing or setting a key costs at most one memory stall
	// per bit vector instead of m. The block concentration raises the
	// false positive rate by the block-occupancy variance (Putze et al.;
	// see DESIGN.md §12 for the bound the tests hold it to). Requires
	// SchemeOneShot.
	LayoutBlocked
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutClassic:
		return "classic"
	case LayoutBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// LineBits is the blocked-layout block size in bits: 512 bits = 64
// bytes, one cache line on every mainstream CPU. A vector smaller than
// LineBits degenerates to a single block covering the whole vector.
const LineBits = 512

// ResolveSchemeLayout normalizes zero values to the defaults
// (SchemePerIndex, LayoutClassic) and validates the combination: the
// blocked layout needs the 64-bit one-shot hash for its block choice,
// so an unset scheme is upgraded to SchemeOneShot and an explicit
// SchemePerIndex is rejected.
func ResolveSchemeLayout(scheme Scheme, layout Layout) (Scheme, Layout, error) {
	if layout == 0 {
		layout = LayoutClassic
	}
	switch layout {
	case LayoutClassic, LayoutBlocked:
	default:
		return 0, 0, fmt.Errorf("hashes: unknown layout %d", int(layout))
	}
	if scheme == 0 {
		scheme = SchemePerIndex
		if layout == LayoutBlocked {
			scheme = SchemeOneShot
		}
	}
	switch scheme {
	case SchemePerIndex, SchemeOneShot:
	default:
		return 0, 0, fmt.Errorf("hashes: unknown scheme %d", int(scheme))
	}
	if layout == LayoutBlocked && scheme == SchemePerIndex {
		return 0, 0, fmt.Errorf("hashes: the blocked layout requires the one-shot scheme (the block choice consumes the high hash bits)")
	}
	return scheme, layout, nil
}

// Family computes m independent n-bit hash values per key.
type Family struct {
	kind  Kind
	m     int
	mask  uint32
	nbits uint
}

// NewFamily builds a family of m hash functions truncated to nbits-bit
// outputs. nbits must be in [1, 32]; m must be positive.
func NewFamily(kind Kind, m int, nbits uint) (*Family, error) {
	switch kind {
	case FNVDouble, Jenkins, Mix:
	default:
		return nil, fmt.Errorf("hashes: unknown kind %d", int(kind))
	}
	if m <= 0 {
		return nil, fmt.Errorf("hashes: m must be positive, got %d", m)
	}
	if nbits == 0 || nbits > 32 {
		return nil, fmt.Errorf("hashes: nbits must be in [1,32], got %d", nbits)
	}
	var mask uint32 = ^uint32(0)
	if nbits < 32 {
		mask = 1<<nbits - 1
	}
	return &Family{kind: kind, m: m, mask: mask, nbits: nbits}, nil
}

// M returns the number of hash functions in the family.
func (f *Family) M() int { return f.m }

// Kind returns the construction used by the family.
func (f *Family) Kind() Kind { return f.kind }

// Sum appends the m truncated hash values of key to dst and returns the
// extended slice. Passing a reusable dst[:0] keeps the hot path
// allocation-free.
//
//p2p:hotpath
func (f *Family) Sum(dst []uint32, key []byte) []uint32 {
	switch f.kind {
	case FNVDouble:
		// One 64-bit FNV-1a pass finalized with the splitmix64 mixer;
		// the low and high words give the two independent hashes of the
		// Kirsch–Mitzenmacher construction. (Two 32-bit FNV passes with
		// different bases are affinely related for equal-length keys
		// and collide structurally.) This derivation is frozen: snapshots
		// written before the scheme byte existed resolve to
		// SchemePerIndex, so their marks must keep hashing identically.
		return f.AppendDerived(dst, mix64(FNV1a64(key)))
	case Jenkins:
		for i := 0; i < f.m; i++ {
			dst = append(dst, Lookup3(uint32(i)*0x9e3779b9+1, key)&f.mask) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
		}
	case Mix:
		for i := 0; i < f.m; i++ {
			dst = append(dst, MixHash(uint32(i)*0x85ebca6b+1, key)&f.mask) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
		}
	}
	return dst
}

// Sum64 is the one-shot 64-bit hash of key: two overlapping word loads
// folded through one 64×64→128 multiply and the splitmix64 finalizer,
// so every output bit avalanches. All m indexes of the SchemeOneShot
// derivations (AppendDerived, AppendBlocked) come from this single
// value.
//
// The function is deliberately kind-independent. Per-index hashing
// walks the key once per construction (FNV's byte-serial chain alone is
// a ~50-cycle dependency per 13-byte key); the whole point of the
// one-shot scheme is that index derivation collapses to a handful of
// register operations, so it uses the one fixed short-key hash and the
// kind keeps selecting only the per-index family. SchemeOneShot is
// recorded in snapshots and never the resolved default for pre-scheme
// snapshots, so no stored marks depend on an older one-shot derivation.
//
//p2p:hotpath
func (f *Family) Sum64(key []byte) uint64 {
	if len(key) >= 8 {
		// The two loads overlap for keys shorter than 16 bytes; every
		// key byte reaches at least one word, so distinct keys of equal
		// length map to distinct (a, b) pairs.
		return Sum64Words(
			binary.LittleEndian.Uint64(key),
			binary.LittleEndian.Uint64(key[len(key)-8:]),
			uint64(len(key)))
	}
	return sum64Short(key)
}

// Sum64Words is Sum64 over a key already loaded as its two overlapping
// words — a is bytes [0,8), b is bytes [n-8,n) — for key lengths n in
// [8,16]. Callers that can produce the words from in-register fields
// (packet.SocketPair.KeyWords) skip the key buffer round trip entirely.
//
//p2p:hotpath
func Sum64Words(a, b, n uint64) uint64 {
	hi, lo := bits.Mul64(a^0x9e3779b97f4a7c15, b^0xe7037ed1a0b428db)
	return mix64(hi ^ lo ^ n*0x9ddfea08eb382d69)
}

// sum64Short is the sub-word-key fallback of Sum64, outlined so the
// fast path stays small enough to inline into the batch hash loops.
//
//p2p:hotpath
func sum64Short(key []byte) uint64 {
	return mix64(FNV1a64(key) ^ uint64(len(key))<<56)
}

// AppendDerived appends the m classic-layout indexes derived from the
// one-shot hash h: the Kirsch–Mitzenmacher expansion h1 + i·h2 over the
// low and high words, truncated to n bits.
//
//p2p:hotpath
func (f *Family) AppendDerived(dst []uint32, h uint64) []uint32 {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1 // odd so strides cover the table
	for i := 0; i < f.m; i++ {
		dst = append(dst, (h1+uint32(i)*h2)&f.mask) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
	}
	return dst
}

// AppendBlocked appends the m blocked-layout indexes derived from the
// one-shot hash h. The 512-bit block is chosen by multiply-shift range
// reduction on the high word of h; the in-block offsets double-hash a
// remixed copy of h, so the offset stream is decorrelated from the
// block choice. All m indexes fall in [block·512, block·512+512), i.e.
// one cache line of the bit vector. Vectors smaller than 512 bits use
// the whole vector as the single block.
//
//p2p:hotpath
func (f *Family) AppendBlocked(dst []uint32, h uint64) []uint32 {
	lineBits := uint32(LineBits)
	if n := uint64(1) << f.nbits; n < LineBits {
		lineBits = uint32(n)
	}
	lines := uint32((uint64(1) << f.nbits) / uint64(lineBits))
	base := uint32((uint64(uint32(h>>32))*uint64(lines))>>32) * lineBits
	g := mix64(h ^ 0x9e3779b97f4a7c15)
	g1 := uint32(g)
	g2 := uint32(g>>32) | 1
	off := lineBits - 1
	for i := 0; i < f.m; i++ {
		dst = append(dst, base+((g1+uint32(i)*g2)&off)) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
	}
	return dst
}

// SumDerivedInto fills dst (length M) with the classic-layout indexes
// of key: exactly AppendDerived(Sum64(key)) but as one fused call, so
// the per-key hot path pays a single function-call boundary instead of
// three and the intermediate hash never leaves registers.
//
//p2p:hotpath
func (f *Family) SumDerivedInto(dst []uint32, key []byte) {
	f.DerivedInto(dst, f.Sum64(key))
}

// DerivedInto is AppendDerived writing into a fixed-length dst.
//
//p2p:hotpath
func (f *Family) DerivedInto(dst []uint32, h uint64) {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1
	for i := range dst {
		dst[i] = (h1 + uint32(i)*h2) & f.mask
	}
}

// SumBlockedInto fills dst (length M) with the blocked-layout indexes
// of key: exactly AppendBlocked(Sum64(key)) as one fused call. See
// SumDerivedInto for why the fusion exists.
//
//p2p:hotpath
func (f *Family) SumBlockedInto(dst []uint32, key []byte) {
	f.BlockedInto(dst, f.Sum64(key))
}

// BlockedInto is AppendBlocked writing into a fixed-length dst.
//
//p2p:hotpath
func (f *Family) BlockedInto(dst []uint32, h uint64) {
	lineBits := uint32(LineBits)
	if n := uint64(1) << f.nbits; n < LineBits {
		lineBits = uint32(n)
	}
	lines := uint32((uint64(1) << f.nbits) / uint64(lineBits))
	base := uint32((uint64(uint32(h>>32))*uint64(lines))>>32) * lineBits
	g := mix64(h ^ 0x9e3779b97f4a7c15)
	g1 := uint32(g)
	g2 := uint32(g>>32) | 1
	off := lineBits - 1
	for i := range dst {
		dst[i] = base + ((g1 + uint32(i)*g2) & off)
	}
}

// SumInto fills dst (length M) with the per-index-scheme indexes of
// key, the fused-call equivalent of Sum.
//
//p2p:hotpath
func (f *Family) SumInto(dst []uint32, key []byte) {
	switch f.kind {
	case FNVDouble:
		// The frozen per-index derivation — see Sum, not Sum64.
		h := mix64(FNV1a64(key))
		h1 := uint32(h)
		h2 := uint32(h>>32) | 1
		for i := range dst {
			dst[i] = (h1 + uint32(i)*h2) & f.mask
		}
	case Jenkins:
		for i := range dst {
			dst[i] = Lookup3(uint32(i)*0x9e3779b9+1, key) & f.mask
		}
	case Mix:
		for i := range dst {
			dst[i] = MixHash(uint32(i)*0x85ebca6b+1, key) & f.mask
		}
	}
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection over
// uint64.
//
//p2p:hotpath
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// FNV1a64 is the 64-bit Fowler–Noll–Vo 1a hash.
//
//p2p:hotpath
func FNV1a64(key []byte) uint64 {
	const (
		basis = 0xcbf29ce484222325
		prime = 0x100000001b3
	)
	h := uint64(basis)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// FNV1a is the 32-bit Fowler–Noll–Vo 1a hash with a custom basis.
//
//p2p:hotpath
func FNV1a(basis uint32, key []byte) uint32 {
	const prime = 16777619
	h := basis
	for _, b := range key {
		h ^= uint32(b)
		h *= prime
	}
	return h
}

// MixHash hashes key with a Murmur3-style body and avalanche finalizer.
//
//p2p:hotpath
func MixHash(seed uint32, key []byte) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(key)
	for len(key) >= 4 {
		k := binary.LittleEndian.Uint32(key)
		key = key[4:]
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
		h = h<<13 | h>>19
		h = h*5 + 0xe6546b64
	}
	var k uint32
	switch len(key) {
	case 3:
		k ^= uint32(key[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(key[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(key[0])
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
	}
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Lookup3 is Bob Jenkins' lookup3 hashlittle function over key with the
// given seed.
//
//p2p:hotpath
func Lookup3(seed uint32, key []byte) uint32 {
	a := uint32(0xdeadbeef) + uint32(len(key)) + seed
	b, c := a, a
	for len(key) > 12 {
		a += binary.LittleEndian.Uint32(key[0:4])
		b += binary.LittleEndian.Uint32(key[4:8])
		c += binary.LittleEndian.Uint32(key[8:12])
		// mix
		a -= c
		a ^= c<<4 | c>>28
		c += b
		b -= a
		b ^= a<<6 | a>>26
		a += c
		c -= b
		c ^= b<<8 | b>>24
		b += a
		a -= c
		a ^= c<<16 | c>>16
		c += b
		b -= a
		b ^= a<<19 | a>>13
		a += c
		c -= b
		c ^= b<<4 | b>>28
		b += a
		key = key[12:]
	}
	if len(key) == 0 {
		return c
	}
	var tail [12]byte
	copy(tail[:], key)
	a += binary.LittleEndian.Uint32(tail[0:4])
	b += binary.LittleEndian.Uint32(tail[4:8])
	c += binary.LittleEndian.Uint32(tail[8:12])
	// final
	c ^= b
	c -= b<<14 | b>>18
	a ^= c
	a -= c<<11 | c>>21
	b ^= a
	b -= a<<25 | a>>7
	c ^= b
	c -= b<<16 | b>>16
	a ^= c
	a -= c<<4 | c>>28
	b ^= a
	b -= a<<14 | a>>18
	c ^= b
	c -= b<<24 | b>>8
	return c
}
