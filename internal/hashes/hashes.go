// Package hashes implements the m hash functions shared by all bloom
// filters in a bitmap filter (Section 4.2: "All the bloom filters in the
// bitmap share the same m hash functions, each of which should only output
// an n-bit value. An output that exceeds n bits should be truncated.").
//
// Three independent from-scratch hash constructions are provided —
// an FNV-1a based Kirsch–Mitzenmacher double-hashing family, Bob Jenkins'
// lookup3, and a Murmur3-style finalizer hash — so the filter's false
// positive behaviour can be validated across hash families.
package hashes

import (
	"encoding/binary"
	"fmt"
)

// Kind selects a hash construction for a Family.
type Kind int

// Supported hash constructions.
const (
	// FNVDouble derives the i-th hash as h1 + i·h2 from two FNV-1a
	// passes (Kirsch–Mitzenmacher double hashing). This is the default:
	// two hash computations serve any m.
	FNVDouble Kind = iota + 1
	// Jenkins uses Bob Jenkins' lookup3 with m distinct seeds.
	Jenkins
	// Mix uses a Murmur3-style avalanche mix with m distinct seeds.
	Mix
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FNVDouble:
		return "fnv-double"
	case Jenkins:
		return "jenkins"
	case Mix:
		return "mix"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Family computes m independent n-bit hash values per key.
type Family struct {
	kind Kind
	m    int
	mask uint32
}

// NewFamily builds a family of m hash functions truncated to nbits-bit
// outputs. nbits must be in [1, 32]; m must be positive.
func NewFamily(kind Kind, m int, nbits uint) (*Family, error) {
	switch kind {
	case FNVDouble, Jenkins, Mix:
	default:
		return nil, fmt.Errorf("hashes: unknown kind %d", int(kind))
	}
	if m <= 0 {
		return nil, fmt.Errorf("hashes: m must be positive, got %d", m)
	}
	if nbits == 0 || nbits > 32 {
		return nil, fmt.Errorf("hashes: nbits must be in [1,32], got %d", nbits)
	}
	var mask uint32 = ^uint32(0)
	if nbits < 32 {
		mask = 1<<nbits - 1
	}
	return &Family{kind: kind, m: m, mask: mask}, nil
}

// M returns the number of hash functions in the family.
func (f *Family) M() int { return f.m }

// Kind returns the construction used by the family.
func (f *Family) Kind() Kind { return f.kind }

// Sum appends the m truncated hash values of key to dst and returns the
// extended slice. Passing a reusable dst[:0] keeps the hot path
// allocation-free.
//
//p2p:hotpath
func (f *Family) Sum(dst []uint32, key []byte) []uint32 {
	switch f.kind {
	case FNVDouble:
		// One 64-bit FNV-1a pass finalized with the splitmix64 mixer;
		// the low and high words give the two independent hashes of the
		// Kirsch–Mitzenmacher construction. (Two 32-bit FNV passes with
		// different bases are affinely related for equal-length keys
		// and collide structurally.)
		h := FNV1a64(key)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		h1 := uint32(h)
		h2 := uint32(h>>32) | 1 // odd so strides cover the table
		for i := 0; i < f.m; i++ {
			dst = append(dst, (h1+uint32(i)*h2)&f.mask) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
		}
	case Jenkins:
		for i := 0; i < f.m; i++ {
			dst = append(dst, Lookup3(uint32(i)*0x9e3779b9+1, key)&f.mask) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
		}
	case Mix:
		for i := 0; i < f.m; i++ {
			dst = append(dst, MixHash(uint32(i)*0x85ebca6b+1, key)&f.mask) //p2p:bounded cap(dst) >= m on the reused hot-path buffer
		}
	}
	return dst
}

// FNV1a64 is the 64-bit Fowler–Noll–Vo 1a hash.
//
//p2p:hotpath
func FNV1a64(key []byte) uint64 {
	const (
		basis = 0xcbf29ce484222325
		prime = 0x100000001b3
	)
	h := uint64(basis)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// FNV1a is the 32-bit Fowler–Noll–Vo 1a hash with a custom basis.
//
//p2p:hotpath
func FNV1a(basis uint32, key []byte) uint32 {
	const prime = 16777619
	h := basis
	for _, b := range key {
		h ^= uint32(b)
		h *= prime
	}
	return h
}

// MixHash hashes key with a Murmur3-style body and avalanche finalizer.
//
//p2p:hotpath
func MixHash(seed uint32, key []byte) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(key)
	for len(key) >= 4 {
		k := binary.LittleEndian.Uint32(key)
		key = key[4:]
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
		h = h<<13 | h>>19
		h = h*5 + 0xe6546b64
	}
	var k uint32
	switch len(key) {
	case 3:
		k ^= uint32(key[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(key[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(key[0])
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
	}
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Lookup3 is Bob Jenkins' lookup3 hashlittle function over key with the
// given seed.
//
//p2p:hotpath
func Lookup3(seed uint32, key []byte) uint32 {
	a := uint32(0xdeadbeef) + uint32(len(key)) + seed
	b, c := a, a
	for len(key) > 12 {
		a += binary.LittleEndian.Uint32(key[0:4])
		b += binary.LittleEndian.Uint32(key[4:8])
		c += binary.LittleEndian.Uint32(key[8:12])
		// mix
		a -= c
		a ^= c<<4 | c>>28
		c += b
		b -= a
		b ^= a<<6 | a>>26
		a += c
		c -= b
		c ^= b<<8 | b>>24
		b += a
		a -= c
		a ^= c<<16 | c>>16
		c += b
		b -= a
		b ^= a<<19 | a>>13
		a += c
		c -= b
		c ^= b<<4 | b>>28
		b += a
		key = key[12:]
	}
	if len(key) == 0 {
		return c
	}
	var tail [12]byte
	copy(tail[:], key)
	a += binary.LittleEndian.Uint32(tail[0:4])
	b += binary.LittleEndian.Uint32(tail[4:8])
	c += binary.LittleEndian.Uint32(tail[8:12])
	// final
	c ^= b
	c -= b<<14 | b>>18
	a ^= c
	a -= c<<11 | c>>21
	b ^= a
	b -= a<<25 | a>>7
	c ^= b
	c -= b<<16 | b>>16
	a ^= c
	a -= c<<4 | c>>28
	b ^= a
	b -= a<<14 | a>>18
	c ^= b
	c -= b<<24 | b>>8
	return c
}
