package hashes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFamilyValidation(t *testing.T) {
	tests := []struct {
		name  string
		kind  Kind
		m     int
		nbits uint
		ok    bool
	}{
		{"valid fnv", FNVDouble, 3, 20, true},
		{"valid jenkins", Jenkins, 1, 1, true},
		{"valid mix 32 bits", Mix, 8, 32, true},
		{"zero m", FNVDouble, 0, 20, false},
		{"negative m", FNVDouble, -1, 20, false},
		{"zero nbits", FNVDouble, 3, 0, false},
		{"oversized nbits", FNVDouble, 3, 33, false},
		{"unknown kind", Kind(99), 3, 20, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewFamily(tt.kind, tt.m, tt.nbits)
			if (err == nil) != tt.ok {
				t.Fatalf("NewFamily(%v, %d, %d) error = %v, want ok=%v", tt.kind, tt.m, tt.nbits, err, tt.ok)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{FNVDouble, "fnv-double"},
		{Jenkins, "jenkins"},
		{Mix, "mix"},
		{Kind(42), "kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSumCountAndRange(t *testing.T) {
	for _, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 5, 10)
		if err != nil {
			t.Fatal(err)
		}
		sums := f.Sum(nil, []byte("hello world"))
		if len(sums) != 5 {
			t.Fatalf("%v: got %d sums, want 5", kind, len(sums))
		}
		for _, h := range sums {
			if h >= 1<<10 {
				t.Fatalf("%v: hash %d exceeds 10-bit range", kind, h)
			}
		}
	}
}

func TestSumDeterministic(t *testing.T) {
	for _, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		key := []byte{0x13, 'B', 'i', 't', 0xe3, 0x00, 0xff}
		a := f.Sum(nil, key)
		b := f.Sum(nil, key)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: sums differ at %d", kind, i)
			}
		}
	}
}

func TestSumReusesDst(t *testing.T) {
	f, err := NewFamily(FNVDouble, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint32, 0, 3)
	out := f.Sum(buf, []byte("key"))
	if &out[0] != &buf[:1][0] {
		t.Fatal("Sum did not reuse the destination slice")
	}
}

// TestSumSpread property: for a family with 32-bit output, two different
// keys rarely produce identical full hash vectors.
func TestSumSpread(t *testing.T) {
	for _, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 3, 32)
		if err != nil {
			t.Fatal(err)
		}
		collisions := 0
		trials := 0
		check := func(a, b []byte) bool {
			if string(a) == string(b) {
				return true
			}
			trials++
			ha := f.Sum(nil, a)
			hb := f.Sum(nil, b)
			same := true
			for i := range ha {
				if ha[i] != hb[i] {
					same = false
					break
				}
			}
			if same {
				collisions++
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatal(err)
		}
		if collisions > 0 {
			t.Errorf("%v: %d full-vector collisions in %d trials", kind, collisions, trials)
		}
	}
}

// TestUniformity fills a table with the hashes of sequential keys and
// checks the bucket loads stay near uniform (chi-squared style bound).
func TestUniformity(t *testing.T) {
	const (
		nbits   = 8
		buckets = 1 << nbits
		keys    = 100_000
	)
	for _, kind := range []Kind{FNVDouble, Jenkins, Mix} {
		f, err := NewFamily(kind, 1, nbits)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, buckets)
		key := make([]byte, 13)
		for i := 0; i < keys; i++ {
			key[0] = byte(i)
			key[1] = byte(i >> 8)
			key[2] = byte(i >> 16)
			key[7] = byte(i * 7)
			for _, h := range f.Sum(nil, key) {
				counts[h]++
			}
		}
		mean := float64(keys) / buckets
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - mean
			chi2 += d * d / mean
		}
		// For 255 degrees of freedom the 99.9th percentile is ≈330; give
		// slack for structured keys.
		if chi2 > 400 {
			t.Errorf("%v: chi-squared = %.1f, want < 400 (non-uniform)", kind, chi2)
		}
	}
}

// TestFNVDoubleMatchesDefinition verifies the Kirsch–Mitzenmacher
// construction: hash_i = h1 + i·h2 truncated, with h1 and h2 drawn from
// the finalized 64-bit FNV-1a digest.
func TestFNVDoubleMatchesDefinition(t *testing.T) {
	f, err := NewFamily(FNVDouble, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("abcdef")
	h := FNV1a64(key)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1
	sums := f.Sum(nil, key)
	for i, got := range sums {
		want := (h1 + uint32(i)*h2) & 0xffff
		if got != want {
			t.Fatalf("sum[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestFNV1a64KnownVector(t *testing.T) {
	// fnv1a64("") = offset basis; fnv1a64("a") = 0xaf63dc4c8601ec8c.
	if got := FNV1a64(nil); got != 0xcbf29ce484222325 {
		t.Fatalf("FNV1a64(\"\") = %#x", got)
	}
	if got := FNV1a64([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("FNV1a64(\"a\") = %#x, want 0xaf63dc4c8601ec8c", got)
	}
}

func TestFNV1aKnownVector(t *testing.T) {
	// FNV-1a with the standard 32-bit basis: fnv1a("") = basis,
	// fnv1a("a") = 0xe40c292c.
	if got := FNV1a(0x811c9dc5, nil); got != 0x811c9dc5 {
		t.Fatalf("FNV1a(\"\") = %#x", got)
	}
	if got := FNV1a(0x811c9dc5, []byte("a")); got != 0xe40c292c {
		t.Fatalf("FNV1a(\"a\") = %#x, want 0xe40c292c", got)
	}
}

func TestLookup3AndMixHandleAllLengths(t *testing.T) {
	// Exercise every tail-length branch.
	for n := 0; n <= 40; n++ {
		key := make([]byte, n)
		for i := range key {
			key[i] = byte(i * 31)
		}
		_ = Lookup3(1, key)
		_ = MixHash(1, key)
	}
}

func TestSeedChangesHash(t *testing.T) {
	key := []byte("some key")
	if Lookup3(1, key) == Lookup3(2, key) {
		t.Error("Lookup3 ignores seed")
	}
	if MixHash(1, key) == MixHash(2, key) {
		t.Error("MixHash ignores seed")
	}
}

// TestAvalanche property (loose): flipping one input bit flips a
// substantial number of output bits on average.
func TestAvalanche(t *testing.T) {
	key := make([]byte, 13)
	flips := 0
	trials := 0
	for i := 0; i < len(key)*8; i++ {
		orig := MixHash(7, key)
		key[i/8] ^= 1 << (i % 8)
		flipped := MixHash(7, key)
		key[i/8] ^= 1 << (i % 8)
		diff := orig ^ flipped
		for ; diff != 0; diff &= diff - 1 {
			flips++
		}
		trials++
	}
	avg := float64(flips) / float64(trials)
	if math.Abs(avg-16) > 5 {
		t.Fatalf("average flipped output bits = %.2f, want ≈16", avg)
	}
}
