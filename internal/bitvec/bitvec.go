// Package bitvec provides the fixed-size bit vectors that back the bloom
// filters composing a bitmap filter. Each column of the {k×N}-bitmap in
// Figure 7 of the paper is one Vector.
//
// The implementation stores bits in 64-bit words so that the b.rotate
// clean-up (Algorithm 1) clears a vector with a single memclr-style loop,
// matching the paper's observation that the operation is simple and
// efficient because "the memory space of a bit vector is fixed and
// continuous".
package bitvec

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Vector is a fixed-size bit vector. The zero value is unusable; construct
// with New.
type Vector struct {
	words []uint64
	nbits uint
}

// New returns a Vector with capacity for nbits bits, all zero.
func New(nbits uint) *Vector {
	if nbits == 0 {
		panic("bitvec: vector size must be positive")
	}
	return &Vector{
		words: make([]uint64, (nbits+wordBits-1)/wordBits),
		nbits: nbits,
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() uint { return v.nbits }

// Bytes returns the storage footprint of the vector in bytes.
func (v *Vector) Bytes() int { return len(v.words) * 8 }

// Set marks bit i as 1. Bits are addressed modulo the vector size, so a
// hash output already truncated to n bits maps directly.
func (v *Vector) Set(i uint32) {
	j := uint(i) % v.nbits
	v.words[j/wordBits] |= 1 << (j % wordBits)
}

// Get reports whether bit i is marked.
func (v *Vector) Get(i uint32) bool {
	j := uint(i) % v.nbits
	return v.words[j/wordBits]&(1<<(j%wordBits)) != 0
}

// Clear resets every bit to zero. This is the per-Δt clean-up of the last
// bit vector performed by b.rotate; its cost is O(N) in the vector size but
// independent of the number of tracked connections.
func (v *Vector) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// OnesCount returns the number of marked bits, the quantity b in the
// utilization U = b/N of Equation 2.
func (v *Vector) OnesCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Utilization returns the fraction of marked bits U = b/N.
func (v *Vector) Utilization() float64 {
	return float64(v.OnesCount()) / float64(v.nbits)
}

// CopyFrom overwrites this vector with the contents of src. Both vectors
// must have the same size.
func (v *Vector) CopyFrom(src *Vector) error {
	if v.nbits != src.nbits {
		return fmt.Errorf("bitvec: size mismatch: %d != %d", v.nbits, src.nbits)
	}
	copy(v.words, src.words)
	return nil
}

// Equal reports whether two vectors have identical size and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.nbits != o.nbits {
		return false
	}
	for i, w := range v.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("bitvec(%d bits, %d set)", v.nbits, v.OnesCount())
}
