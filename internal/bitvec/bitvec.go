// Package bitvec provides the fixed-size bit vectors that back the bloom
// filters composing a bitmap filter. Each column of the {k×N}-bitmap in
// Figure 7 of the paper is one Vector.
//
// The implementation is engineered for the packet hot path:
//
//   - Capacities are rounded up to a power of two so bit addressing is a
//     single AND with a mask instead of a modulo.
//   - A ones counter is maintained incrementally on Set, making
//     OnesCount and Utilization O(1) instead of an O(N) popcount sweep.
//   - Clear is O(1): it bumps an epoch instead of zeroing memory. Words
//     are grouped into fixed-size blocks, each stamped with the epoch it
//     was last zeroed in; a block whose stamp is stale reads as all-zero.
//     Set lazily zeroes the one block it touches, and StepClear lets the
//     caller spread the physical memclr over subsequent packet
//     operations — a cleared-up-to watermark. Blocks below the watermark
//     have been zeroed into the new epoch; blocks above it are treated
//     as zero until swept or written.
//
// This bounds the per-packet latency contribution of the Δt rotation
// (Algorithm 1) to one block (clearBlockBytes bytes of memclr) instead of
// a full-vector O(N) spike, while preserving the paper's observation that
// the clean-up stays simple because "the memory space of a bit vector is
// fixed and continuous".
package bitvec

import (
	"errors"
	"math/bits"
	"strconv"
	"sync/atomic"
)

const wordBits = 64

// clearBlockWords is the number of words per lazily-cleared block: 64
// words = 4096 bits = 512 bytes of memclr when a stale block is
// freshened, the bounded unit of deferred clearing work.
const clearBlockWords = 64

// clearBlockBytes is the memclr granularity of deferred clearing.
const clearBlockBytes = clearBlockWords * 8

// Vector is a fixed-size bit vector. The zero value is unusable; construct
// with New.
type Vector struct {
	words []uint64
	// blockEpoch[b] is the epoch in which block b (words
	// [b·clearBlockWords, (b+1)·clearBlockWords)) was last physically
	// zeroed. A block whose stamp differs from epoch is logically
	// all-zero regardless of its physical contents.
	blockEpoch []uint64
	epoch      uint64
	nbits      uint
	mask       uint32 // nbits − 1; nbits is always a power of two
	ones       int    // logical popcount, maintained incrementally
	sweep      int    // clear watermark: blocks below are freshened
	// span is the backing slab slice when the vector was carved from an
	// Arena (words and blockEpoch alias into it); nil for vectors built
	// by New. Arena.Release uses it to recycle the storage.
	span []uint64
}

// New returns a Vector with capacity for nbits bits, all zero. nbits is
// rounded up to the next power of two so that bits can be addressed with
// a mask; Len reports the rounded size.
func New(nbits uint) *Vector {
	if nbits == 0 {
		panic("bitvec: vector size must be positive")
	}
	nbits = ceilPow2(nbits)
	nwords := int((nbits + wordBits - 1) / wordBits)
	nblocks := (nwords + clearBlockWords - 1) / clearBlockWords
	return &Vector{
		words:      make([]uint64, nwords),
		blockEpoch: make([]uint64, nblocks),
		nbits:      nbits,
		mask:       uint32(nbits - 1),
		sweep:      nblocks,
	}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n uint) uint {
	if n&(n-1) == 0 {
		return n
	}
	return 1 << bits.Len(n-1)
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() uint { return v.nbits }

// Bytes returns the storage footprint of the vector's bit words in bytes
// (the epoch stamps add len(words)/clearBlockWords extra words, ~1.6%).
func (v *Vector) Bytes() int { return len(v.words) * 8 }

// Set marks bit i as 1. Bits are addressed by the low log2(Len) bits of
// i, so a hash output already truncated to n bits maps directly. If the
// touched block is stale from a deferred Clear it is zeroed first, so a
// Set never resurrects old-epoch bits; this is the only hot-path work a
// deferred clear can induce, and it is bounded by one block.
//
//p2p:hotpath
func (v *Vector) Set(i uint32) {
	j := uint(i & v.mask)
	w := j / wordBits
	if blk := int(w / clearBlockWords); v.blockEpoch[blk] != v.epoch {
		v.freshen(blk)
	}
	bit := uint64(1) << (j % wordBits)
	if v.words[w]&bit == 0 {
		v.words[w] |= bit
		v.ones++
	}
}

// SetAligned marks every bit in idx, which the caller guarantees all
// fall in one 512-bit cache line of the vector (the blocked-layout
// contract: indexes derived by hashes.AppendBlocked). Because one line
// never straddles a clear block — both are power-of-two sized and
// aligned — the stale-epoch check and any deferred-clear freshening are
// paid once for the whole group instead of once per bit, and the ones
// counter stays exact.
//
//p2p:hotpath
func (v *Vector) SetAligned(idx []uint32) {
	if len(idx) == 0 {
		return
	}
	j0 := uint(idx[0]&v.mask) / wordBits
	if blk := int(j0 / clearBlockWords); v.blockEpoch[blk] != v.epoch {
		v.freshen(blk)
	}
	for _, i := range idx {
		j := uint(i & v.mask)
		w := j / wordBits
		bit := uint64(1) << (j % wordBits)
		if v.words[w]&bit == 0 {
			v.words[w] |= bit
			v.ones++
		}
	}
}

// GetAligned reports whether every bit in idx is marked, under the same
// one-cache-line contract as SetAligned. A stale clear block means the
// whole group logically reads zero, so the answer is false after a
// single stamp comparison.
//
//p2p:hotpath
func (v *Vector) GetAligned(idx []uint32) bool {
	if len(idx) == 0 {
		return true
	}
	j0 := uint(idx[0]&v.mask) / wordBits
	if v.blockEpoch[j0/clearBlockWords] != v.epoch {
		return false
	}
	for _, i := range idx {
		j := uint(i & v.mask)
		if v.words[j/wordBits]&(1<<(j%wordBits)) == 0 {
			return false
		}
	}
	return true
}

// Touch issues demand loads of the cache lines a later Set or Get of
// bit i will need — the word and its epoch stamp — without changing any
// state. Batch pass A calls it for every packet in a chunk so the
// (independent) line fills overlap instead of serializing behind each
// packet's decision in pass B. The loads are atomic only so the
// compiler cannot discard them; the vector remains single-writer.
//
//p2p:hotpath
func (v *Vector) Touch(i uint32) {
	j := uint(i & v.mask)
	w := j / wordBits
	atomic.LoadUint64(&v.blockEpoch[w/clearBlockWords])
	atomic.LoadUint64(&v.words[w])
}

// Get reports whether bit i is marked. A bit in a block not yet swept or
// written since the last Clear reads as zero.
//
//p2p:hotpath
func (v *Vector) Get(i uint32) bool {
	j := uint(i & v.mask)
	w := j / wordBits
	if v.blockEpoch[w/clearBlockWords] != v.epoch {
		return false
	}
	return v.words[w]&(1<<(j%wordBits)) != 0
}

// Clear logically resets every bit to zero in O(1) by advancing the
// epoch; the physical memclr is deferred. Callers that want the O(N)
// work spread across subsequent operations call StepClear repeatedly;
// callers that never do still observe correct all-zero reads, because
// Set and Get treat stale blocks as empty.
//
//p2p:hotpath
func (v *Vector) Clear() {
	v.epoch++
	v.ones = 0
	v.sweep = 0
}

// StepClear advances the deferred-clear watermark by at most nblocks
// blocks, physically zeroing any stale ones, and reports whether the
// sweep has covered the whole vector. Each block is clearBlockBytes
// bytes, so the caller controls exactly how much memclr latency one call
// may add.
//
//p2p:hotpath
func (v *Vector) StepClear(nblocks int) bool {
	for nblocks > 0 && v.sweep < len(v.blockEpoch) {
		if v.blockEpoch[v.sweep] != v.epoch {
			v.freshen(v.sweep)
		}
		v.sweep++
		nblocks--
	}
	return v.sweep >= len(v.blockEpoch)
}

// freshen zeroes block blk and stamps it into the current epoch.
//
//p2p:hotpath
func (v *Vector) freshen(blk int) {
	lo := blk * clearBlockWords
	hi := lo + clearBlockWords
	if hi > len(v.words) {
		hi = len(v.words)
	}
	clear(v.words[lo:hi])
	v.blockEpoch[blk] = v.epoch
}

// normalize completes any deferred clear so the physical words equal the
// logical contents. Cold-path helpers (serialization, comparison,
// copying) call it; the hot path never does.
func (v *Vector) normalize() {
	v.StepClear(len(v.blockEpoch))
}

// OnesCount returns the number of marked bits, the quantity b in the
// utilization U = b/N of Equation 2. The count is maintained
// incrementally, so this is O(1).
//
//p2p:hotpath
func (v *Vector) OnesCount() int { return v.ones }

// Utilization returns the fraction of marked bits U = b/N in O(1).
//
//p2p:hotpath
func (v *Vector) Utilization() float64 {
	return float64(v.ones) / float64(v.nbits)
}

// CopyFrom overwrites this vector with the contents of src. Both vectors
// must have the same size.
func (v *Vector) CopyFrom(src *Vector) error {
	if v.nbits != src.nbits {
		return errors.New("bitvec: size mismatch: " + strconv.FormatUint(uint64(v.nbits), 10) +
			" != " + strconv.FormatUint(uint64(src.nbits), 10))
	}
	src.normalize()
	copy(v.words, src.words)
	for i := range v.blockEpoch {
		v.blockEpoch[i] = v.epoch
	}
	v.sweep = len(v.blockEpoch)
	v.ones = src.ones
	return nil
}

// Equal reports whether two vectors have identical size and logical
// contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.nbits != o.nbits {
		return false
	}
	if v.ones != o.ones {
		return false
	}
	v.normalize()
	o.normalize()
	for i, w := range v.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// String summarizes the vector for debugging.
func (v *Vector) String() string {
	return "bitvec(" + strconv.FormatUint(uint64(v.nbits), 10) + " bits, " +
		strconv.Itoa(v.OnesCount()) + " set)"
}
