// Delta-block operations: the replication layer's view of a vector.
//
// internal/replica ships filter state between fleet members as XOR
// deltas of 512-bit blocks — one cache line, the same unit as the
// blocked layout — and repairs divergence with per-block-range CRC32C
// digests. All of it is cold-path (no //p2p:hotpath): replication runs
// between packet batches on the owning goroutine.
//
// The operations honour lazy-epoch clearing: diffs and digests
// normalize first so deferred clears read as zero, and a merge
// freshens the covering clear block exactly like Set, so merged bits
// can never resurrect old-epoch contents.
package bitvec

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/bits"
	"strconv"
)

const (
	// DeltaBlockWords is the number of 64-bit words per replication
	// delta block: 8 words = 512 bits = 64 bytes, one cache line.
	DeltaBlockWords = 8
	// DeltaBlockBytes is the wire size of one delta block.
	DeltaBlockBytes = DeltaBlockWords * 8
)

// deltaCastagnoli is the CRC32C table behind range digests — the same
// polynomial as the snapshot trailer, so the whole sync stack shares
// one checksum discipline.
var deltaCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBlockRange is returned when a delta block index or its contents
// fall outside the vector — the typed rejection a replica uses to
// discard a frame from a peer with mismatched geometry.
var ErrBlockRange = errors.New("bitvec: delta block out of range")

// DeltaBlocks returns the number of 512-bit delta blocks covering the
// vector. Vectors smaller than one block still count one.
func (v *Vector) DeltaBlocks() int {
	return (len(v.words) + DeltaBlockWords - 1) / DeltaBlockWords
}

// blockSpan returns the word range [lo, hi) of delta block blk.
func (v *Vector) blockSpan(blk int) (lo, hi int) {
	lo = blk * DeltaBlockWords
	hi = lo + DeltaBlockWords
	if hi > len(v.words) {
		hi = len(v.words)
	}
	return lo, hi
}

// tailMask returns the valid-bit mask of the vector's last word: all
// ones unless the vector is smaller than one word.
func (v *Vector) tailMask() uint64 {
	if r := v.nbits % wordBits; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// DiffBlocks calls fn once for every delta block whose logical
// contents differ from base, passing the XOR of the two blocks — for
// a baseline that is a subset (the acked shadow of a monotone
// mark-only vector), exactly the newly set bits. A nil base diffs
// against all-zero, emitting every non-empty block. The pointed-to
// array is reused across calls; fn must consume it before returning.
func (v *Vector) DiffBlocks(base *Vector, fn func(blk uint32, xor *[DeltaBlockWords]uint64)) error {
	if base != nil && base.nbits != v.nbits {
		return errors.New("bitvec: diff size mismatch: " + strconv.FormatUint(uint64(base.nbits), 10) +
			" != " + strconv.FormatUint(uint64(v.nbits), 10))
	}
	v.normalize()
	if base != nil {
		base.normalize()
	}
	var xor [DeltaBlockWords]uint64
	for b := 0; b < v.DeltaBlocks(); b++ {
		lo, hi := v.blockSpan(b)
		diff := false
		for i := lo; i < hi; i++ {
			var bw uint64
			if base != nil {
				bw = base.words[i]
			}
			x := v.words[i] ^ bw
			xor[i-lo] = x
			diff = diff || x != 0
		}
		if diff {
			for i := hi - lo; i < DeltaBlockWords; i++ {
				xor[i] = 0
			}
			fn(uint32(b), &xor)
		}
	}
	return nil
}

// CheckBlock validates a block patch against the vector's geometry
// without applying it: the block index must exist and no bit may fall
// outside the vector (a short final block's padding, or junk beyond a
// sub-word vector's length). Receivers pre-validate every patch of a
// frame with it so a bad frame is rejected whole, before any mutation.
func (v *Vector) CheckBlock(blk uint32, words *[DeltaBlockWords]uint64) error {
	if int(blk) >= v.DeltaBlocks() {
		return ErrBlockRange
	}
	lo, hi := v.blockSpan(int(blk))
	n := hi - lo
	for i := n; i < DeltaBlockWords; i++ {
		if words[i] != 0 {
			return ErrBlockRange
		}
	}
	if hi == len(v.words) && words[n-1]&^v.tailMask() != 0 {
		return ErrBlockRange
	}
	return nil
}

// MergeBlock ORs one delta block into the vector, returning the number
// of newly set bits. The merge is union-only — bits can be added,
// never cleared — so a merged vector is always a superset and a
// replicated flow can never become a false negative. Patches CheckBlock
// rejects are refused before any mutation.
func (v *Vector) MergeBlock(blk uint32, words *[DeltaBlockWords]uint64) (int, error) {
	if err := v.CheckBlock(blk, words); err != nil {
		return 0, err
	}
	lo, hi := v.blockSpan(int(blk))
	// One delta block (8 words) never straddles a clear block (64
	// words, aligned), so a single freshen check suffices — the same
	// invariant Set relies on.
	if cb := lo / clearBlockWords; v.blockEpoch[cb] != v.epoch {
		v.freshen(cb)
	}
	added := 0
	for i := lo; i < hi; i++ {
		w := v.words[i] | words[i-lo]
		added += bits.OnesCount64(w ^ v.words[i])
		v.words[i] = w
	}
	v.ones += added
	return added, nil
}

// XorBlock XORs one delta block into the vector, returning the change
// in the number of set bits (which may be negative — XOR both sets and
// clears). It is the shadow-maintenance primitive of the offload
// publisher: applying the XOR DiffBlocks emitted against a shadow
// brings the shadow to the live vector's logical contents, so the next
// diff is relative to what was actually published. Patches CheckBlock
// rejects are refused before any mutation.
func (v *Vector) XorBlock(blk uint32, words *[DeltaBlockWords]uint64) (int, error) {
	if err := v.CheckBlock(blk, words); err != nil {
		return 0, err
	}
	lo, hi := v.blockSpan(int(blk))
	// Same single-freshen invariant as MergeBlock: one delta block never
	// straddles a clear block.
	if cb := lo / clearBlockWords; v.blockEpoch[cb] != v.epoch {
		v.freshen(cb)
	}
	delta := 0
	for i := lo; i < hi; i++ {
		w := v.words[i] ^ words[i-lo]
		delta += bits.OnesCount64(w) - bits.OnesCount64(v.words[i])
		v.words[i] = w
	}
	v.ones += delta
	return delta, nil
}

// BlockWords copies the logical contents of one delta block into dst,
// zero-filling any padding past a short final block. A block in a
// stale clear block reads as all-zero without materializing it.
func (v *Vector) BlockWords(blk uint32, dst *[DeltaBlockWords]uint64) error {
	if int(blk) >= v.DeltaBlocks() {
		return ErrBlockRange
	}
	lo, hi := v.blockSpan(int(blk))
	if v.blockEpoch[lo/clearBlockWords] != v.epoch {
		*dst = [DeltaBlockWords]uint64{}
		return nil
	}
	for i := lo; i < hi; i++ {
		dst[i-lo] = v.words[i]
	}
	for i := hi - lo; i < DeltaBlockWords; i++ {
		dst[i] = 0
	}
	return nil
}

// RangeCount returns the number of digest ranges AppendRangeDigests
// emits for the given range width.
func (v *Vector) RangeCount(blocksPerRange int) int {
	if blocksPerRange <= 0 {
		blocksPerRange = 1
	}
	return (v.DeltaBlocks() + blocksPerRange - 1) / blocksPerRange
}

// AppendRangeDigests appends one CRC32C per consecutive group of
// blocksPerRange delta blocks, computed over the logical (post-clear)
// little-endian contents. Two vectors with equal logical contents
// yield equal digests regardless of their deferred-clear state, so
// anti-entropy peers can compare state without exchanging it.
func (v *Vector) AppendRangeDigests(blocksPerRange int, dst []uint32) []uint32 {
	if blocksPerRange <= 0 {
		blocksPerRange = 1
	}
	v.normalize()
	var buf [DeltaBlockBytes]byte
	nb := v.DeltaBlocks()
	for lo := 0; lo < nb; lo += blocksPerRange {
		hi := lo + blocksPerRange
		if hi > nb {
			hi = nb
		}
		crc := uint32(0)
		for b := lo; b < hi; b++ {
			wlo, whi := v.blockSpan(b)
			for i := wlo; i < whi; i++ {
				binary.LittleEndian.PutUint64(buf[(i-wlo)*8:], v.words[i])
			}
			for i := (whi - wlo) * 8; i < len(buf); i++ {
				buf[i] = 0
			}
			crc = crc32.Update(crc, deltaCastagnoli, buf[:])
		}
		dst = append(dst, crc)
	}
	return dst
}
