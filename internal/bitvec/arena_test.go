package bitvec

import (
	"math/rand/v2"
	"sync"
	"testing"
	"unsafe"
)

func TestArenaVectorBehavesLikeNew(t *testing.T) {
	a := NewArena(1<<14, 8)
	av := a.NewVector(1 << 14)
	nv := New(1 << 14)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 5000; i++ {
		bit := rng.Uint32()
		av.Set(bit)
		nv.Set(bit)
	}
	if !av.Equal(nv) {
		t.Fatal("arena vector diverged from New vector under identical Sets")
	}
	if av.OnesCount() != nv.OnesCount() {
		t.Fatalf("ones mismatch: arena %d, new %d", av.OnesCount(), nv.OnesCount())
	}
	av.Clear()
	nv.Clear()
	if !av.Equal(nv) {
		t.Fatal("arena vector diverged after Clear")
	}
}

func TestArenaGeometryRounding(t *testing.T) {
	a := NewArena(1000, 4)
	if a.NBits() != 1024 {
		t.Fatalf("NBits = %d, want 1024", a.NBits())
	}
	// Any nbits that rounds to the arena geometry is accepted.
	v := a.NewVector(1000)
	if v.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024", v.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewVector with mismatched geometry did not panic")
		}
	}()
	a.NewVector(2048)
}

func TestArenaSpanAlignment(t *testing.T) {
	a := NewArena(4096, 5)
	for i := 0; i < 20; i++ {
		v := a.NewVector(4096)
		addr := uintptr(unsafe.Pointer(&v.words[0]))
		if addr%64 != 0 {
			t.Fatalf("vector %d words not 64-byte aligned: %#x", i, addr)
		}
	}
}

func TestArenaRecycledVectorReadsZero(t *testing.T) {
	a := NewArena(1<<12, 2)
	v := a.NewVector(1 << 12)
	for i := uint32(0); i < 1<<12; i += 3 {
		v.Set(i)
	}
	if v.OnesCount() == 0 {
		t.Fatal("setup: no bits set")
	}
	if err := a.Release(v); err != nil {
		t.Fatalf("Release: %v", err)
	}
	// The recycled span still physically holds the old bits; the fresh
	// vector must read logically zero everywhere and never resurrect
	// them through Set's read-modify-write.
	w := a.NewVector(1 << 12)
	if w.OnesCount() != 0 {
		t.Fatalf("recycled vector OnesCount = %d, want 0", w.OnesCount())
	}
	for i := uint32(0); i < 1<<12; i++ {
		if w.Get(i) {
			t.Fatalf("recycled vector bit %d reads set", i)
		}
	}
	w.Set(7)
	if got := w.OnesCount(); got != 1 {
		t.Fatalf("after one Set on recycled vector, OnesCount = %d, want 1", got)
	}
	// StepClear must converge without reviving anything.
	for !w.StepClear(1) {
	}
	if got := w.OnesCount(); got != 1 {
		t.Fatalf("after sweep, OnesCount = %d, want 1", got)
	}
	if !w.Get(7) || w.Get(8) {
		t.Fatal("sweep corrupted recycled vector contents")
	}
}

func TestArenaFreeListReuse(t *testing.T) {
	a := NewArena(2048, 4)
	vs := make([]*Vector, 10)
	for i := range vs {
		vs[i] = a.NewVector(2048)
	}
	st := a.Stats()
	if st.Live != 10 {
		t.Fatalf("Live = %d, want 10", st.Live)
	}
	slabs := st.Slabs
	for _, v := range vs {
		if err := a.Release(v); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	st = a.Stats()
	if st.Live != 0 || st.Free != 10 {
		t.Fatalf("after release: Live=%d Free=%d, want 0/10", st.Live, st.Free)
	}
	// Re-carving the same population must not grow new slabs.
	for i := range vs {
		vs[i] = a.NewVector(2048)
	}
	st = a.Stats()
	if st.Slabs != slabs {
		t.Fatalf("reuse allocated new slabs: %d -> %d", slabs, st.Slabs)
	}
	if st.Free != 0 {
		t.Fatalf("free list not drained: %d", st.Free)
	}
}

func TestArenaReleaseErrors(t *testing.T) {
	a := NewArena(1024, 2)
	if err := a.Release(New(1024)); err == nil {
		t.Fatal("releasing a non-arena vector did not error")
	}
	b := NewArena(4096, 2)
	v := b.NewVector(4096)
	if err := a.Release(v); err == nil {
		t.Fatal("cross-arena geometry release did not error")
	}
	w := a.NewVector(1024)
	if err := a.Release(w); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := a.Release(w); err == nil {
		t.Fatal("double release did not error")
	}
}

func TestArenaConcurrentChurn(t *testing.T) {
	a := NewArena(4096, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
			for i := 0; i < 200; i++ {
				v := a.NewVector(4096)
				for j := 0; j < 32; j++ {
					v.Set(rng.Uint32())
				}
				if err := a.Release(v); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	st := a.Stats()
	if st.Live != 0 {
		t.Fatalf("Live = %d after churn, want 0", st.Live)
	}
}
