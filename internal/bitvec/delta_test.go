package bitvec

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// collectDiff gathers DiffBlocks output into a map for assertions.
func collectDiff(t *testing.T, v, base *Vector) map[uint32][DeltaBlockWords]uint64 {
	t.Helper()
	out := make(map[uint32][DeltaBlockWords]uint64)
	err := v.DiffBlocks(base, func(blk uint32, xor *[DeltaBlockWords]uint64) {
		out[blk] = *xor
	})
	if err != nil {
		t.Fatalf("DiffBlocks: %v", err)
	}
	return out
}

func TestDiffMergeRoundTrip(t *testing.T) {
	for _, nbits := range []uint{2, 64, 512, 4096, 1 << 14} {
		src := New(nbits)
		dst := New(nbits)
		rng := rand.New(rand.NewPCG(uint64(nbits), 7))
		for i := 0; i < int(nbits)/3+1; i++ {
			src.Set(uint32(rng.Uint64()))
		}
		n := 0
		err := src.DiffBlocks(nil, func(blk uint32, xor *[DeltaBlockWords]uint64) {
			added, err := dst.MergeBlock(blk, xor)
			if err != nil {
				t.Fatalf("nbits=%d MergeBlock(%d): %v", nbits, blk, err)
			}
			n += added
		})
		if err != nil {
			t.Fatalf("nbits=%d DiffBlocks: %v", nbits, err)
		}
		if n != src.OnesCount() {
			t.Fatalf("nbits=%d merged %d bits, want %d", nbits, n, src.OnesCount())
		}
		if !dst.Equal(src) {
			t.Fatalf("nbits=%d merge of full diff did not reproduce source", nbits)
		}
		if len(collectDiff(t, src, dst)) != 0 {
			t.Fatalf("nbits=%d equal vectors still diff", nbits)
		}
	}
}

// TestDiffAgainstSubsetIsNewBits pins the replication invariant: when
// base is a subset (the acked shadow), the XOR diff is exactly the
// newly set bits, so an OR-merge of the diff is a lossless catch-up.
func TestDiffAgainstSubsetIsNewBits(t *testing.T) {
	cur := New(1 << 12)
	base := New(1 << 12)
	for i := uint32(0); i < 300; i += 3 {
		cur.Set(i * 41)
		base.Set(i * 41)
	}
	for i := uint32(0); i < 100; i++ {
		cur.Set(i*977 + 13)
	}
	peer := New(1 << 12)
	if err := peer.CopyFrom(base); err != nil {
		t.Fatal(err)
	}
	err := cur.DiffBlocks(base, func(blk uint32, xor *[DeltaBlockWords]uint64) {
		if _, err := peer.MergeBlock(blk, xor); err != nil {
			t.Fatalf("MergeBlock(%d): %v", blk, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !peer.Equal(cur) {
		t.Fatal("subset-baseline diff did not converge peer to source")
	}
}

// TestMergeUnderLazyClear proves a merge into a logically cleared (but
// not yet swept) vector cannot resurrect old-epoch bits.
func TestMergeUnderLazyClear(t *testing.T) {
	v := New(1 << 12)
	for i := uint32(0); i < 500; i++ {
		v.Set(i * 7)
	}
	v.Clear() // deferred: physical words still hold the old bits
	var blk [DeltaBlockWords]uint64
	blk[3] = 1 << 17
	added, err := v.MergeBlock(2, &blk)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || v.OnesCount() != 1 {
		t.Fatalf("added=%d ones=%d, want 1/1 (old-epoch bits resurrected?)", added, v.OnesCount())
	}
	if !v.Get(uint32(2*512 + 3*64 + 17)) {
		t.Fatal("merged bit not readable")
	}
}

func TestMergeBlockRejections(t *testing.T) {
	v := New(1 << 10) // 1024 bits = 16 words = 2 delta blocks
	var blk [DeltaBlockWords]uint64
	if _, err := v.MergeBlock(2, &blk); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("out-of-range block: err=%v, want ErrBlockRange", err)
	}
	small := New(2) // sub-word vector: 1 word, tail mask 0b11
	blk[0] = 0b100
	if _, err := small.MergeBlock(0, &blk); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("tail overflow: err=%v, want ErrBlockRange", err)
	}
	blk[0] = 0
	blk[1] = 1 // padding word beyond the 1-word vector
	if _, err := small.MergeBlock(0, &blk); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("padding overflow: err=%v, want ErrBlockRange", err)
	}
	if small.OnesCount() != 0 {
		t.Fatal("rejected merges mutated the vector")
	}
	big := New(128)
	if err := big.DiffBlocks(small, func(uint32, *[DeltaBlockWords]uint64) {}); err == nil {
		t.Fatal("size-mismatched diff accepted")
	}
}

func TestBlockWords(t *testing.T) {
	v := New(1 << 12)
	v.Set(512 + 65) // block 1, word 1, bit 1
	var got [DeltaBlockWords]uint64
	if err := v.BlockWords(1, &got); err != nil {
		t.Fatal(err)
	}
	if got[1] != 1<<1 {
		t.Fatalf("BlockWords read %#x, want %#x", got[1], uint64(1<<1))
	}
	v.Clear()
	if err := v.BlockWords(1, &got); err != nil {
		t.Fatal(err)
	}
	for i, w := range got {
		if w != 0 {
			t.Fatalf("word %d nonzero after Clear: %#x", i, w)
		}
	}
	if err := v.BlockWords(uint32(v.DeltaBlocks()), &got); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("out-of-range read: err=%v, want ErrBlockRange", err)
	}
}

func TestRangeDigestsReflectLogicalContents(t *testing.T) {
	a := New(1 << 13)
	b := New(1 << 13)
	for i := uint32(0); i < 400; i++ {
		a.Set(i * 31)
		b.Set(i * 31)
	}
	da := a.AppendRangeDigests(4, nil)
	db := b.AppendRangeDigests(4, nil)
	if want := a.RangeCount(4); len(da) != want {
		t.Fatalf("got %d digests, want %d", len(da), want)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("equal vectors disagree at range %d", i)
		}
	}
	// A deferred clear must change every digest to the all-zero ones,
	// even though the physical words still hold the old contents.
	b.Clear()
	zero := New(1 << 13).AppendRangeDigests(4, nil)
	db = b.AppendRangeDigests(4, nil)
	for i := range db {
		if db[i] != zero[i] {
			t.Fatalf("cleared vector digest %d differs from empty vector", i)
		}
	}
	// Divergence is localized: flipping one bit changes exactly one range.
	b2 := New(1 << 13)
	b2.Set(4096 + 3)
	d2 := b2.AppendRangeDigests(4, nil)
	diff := 0
	for i := range d2 {
		if d2[i] != zero[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("single-bit divergence touched %d ranges, want 1", diff)
	}
}
