package bitvec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteTo serializes the vector's words in little-endian order. It
// implements io.WriterTo.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), fmt.Errorf("bitvec: write: %w", err)
	}
	return int64(n), nil
}

// ReadFrom overwrites the vector's contents from a stream produced by
// WriteTo on a vector of the same size. It implements io.ReaderFrom.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return int64(n), fmt.Errorf("bitvec: read: %w", err)
	}
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return int64(n), nil
}
