package bitvec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// WriteTo serializes the vector's words in little-endian order. It
// implements io.WriterTo. Any deferred clear is completed first so the
// stream carries the logical contents.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	v.normalize()
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), fmt.Errorf("bitvec: write: %w", err)
	}
	return int64(n), nil
}

// ReadFrom overwrites the vector's contents from a stream produced by
// WriteTo on a vector of the same size. It implements io.ReaderFrom.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return int64(n), fmt.Errorf("bitvec: read: %w", err)
	}
	ones := 0
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
		ones += bits.OnesCount64(v.words[i])
	}
	// The stream carried fully-materialized contents: stamp every block
	// fresh and rebuild the incremental ones count.
	for i := range v.blockEpoch {
		v.blockEpoch[i] = v.epoch
	}
	v.sweep = len(v.blockEpoch)
	v.ones = ones
	return int64(n), nil
}
