package bitvec

import (
	"encoding/binary"
	"errors"
	"io"
	"math/bits"
	"strconv"

	"p2pbound/internal/errfmt"
)

// WriteTo serializes the vector's words in little-endian order. It
// implements io.WriterTo. Any deferred clear is completed first so the
// stream carries the logical contents.
func (v *Vector) WriteTo(w io.Writer) (int64, error) {
	v.normalize()
	buf := make([]byte, 8*len(v.words))
	for i, word := range v.words {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), errfmt.Wrap("bitvec: write", err)
	}
	return int64(n), nil
}

// WriteFrame serializes the vector as a length-framed record: a
// little-endian uint32 byte count followed by the WriteTo payload. The
// explicit length lets a reader detect truncation at the vector boundary
// instead of misparsing the next vector's bytes as this one's tail.
func (v *Vector) WriteFrame(w io.Writer) (int64, error) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(8*len(v.words)))
	n, err := w.Write(hdr[:])
	total := int64(n)
	if err != nil {
		return total, errfmt.Wrap("bitvec: write frame header", err)
	}
	m, err := v.WriteTo(w)
	return total + m, err
}

// ReadFrame overwrites the vector's contents from a WriteFrame record,
// rejecting a frame whose declared length does not match this vector's
// size — a cheap structural check that catches truncated or spliced
// snapshot streams before any bits are adopted.
func (v *Vector) ReadFrame(r io.Reader) (int64, error) {
	var hdr [4]byte
	n, err := io.ReadFull(r, hdr[:])
	total := int64(n)
	if err != nil {
		return total, errfmt.Wrap("bitvec: read frame header", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[:]); got != uint32(8*len(v.words)) {
		return total, errors.New("bitvec: frame length " + strconv.FormatUint(uint64(got), 10) +
			" does not match vector size " + strconv.Itoa(8*len(v.words)))
	}
	m, err := v.ReadFrom(r)
	return total + m, err
}

// ReadFrom overwrites the vector's contents from a stream produced by
// WriteTo on a vector of the same size. It implements io.ReaderFrom.
func (v *Vector) ReadFrom(r io.Reader) (int64, error) {
	buf := make([]byte, 8*len(v.words))
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return int64(n), errfmt.Wrap("bitvec: read", err)
	}
	ones := 0
	for i := range v.words {
		v.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
		ones += bits.OnesCount64(v.words[i])
	}
	// The stream carried fully-materialized contents: stamp every block
	// fresh and rebuild the incremental ones count.
	for i := range v.blockEpoch {
		v.blockEpoch[i] = v.epoch
	}
	v.sweep = len(v.blockEpoch)
	v.ones = ones
	return int64(n), nil
}
