package bitvec

import (
	"math/rand/v2"
	"testing"
)

// alignedGroup derives m indexes confined to one 512-bit line of an
// nbits-bit vector, the contract SetAligned/GetAligned operate under.
func alignedGroup(r *rand.Rand, nbits uint, m int) []uint32 {
	lineBits := uint32(512)
	if uint32(nbits) < lineBits {
		lineBits = uint32(nbits)
	}
	base := (r.Uint32() % (uint32(nbits) / lineBits)) * lineBits
	idx := make([]uint32, m)
	for i := range idx {
		idx[i] = base + r.Uint32()%lineBits
	}
	return idx
}

// TestAlignedMatchesScalar: SetAligned and GetAligned are pure
// optimizations — for any one-line group they must be observationally
// identical to the per-bit Set/Get loop on a second vector.
func TestAlignedMatchesScalar(t *testing.T) {
	const nbits = 1 << 13
	r := rand.New(rand.NewPCG(42, 99))
	a, b := New(nbits), New(nbits)
	for step := 0; step < 5000; step++ {
		switch r.IntN(10) {
		case 0: // logical clear on both
			a.Clear()
			b.Clear()
		case 1, 2: // partial deferred sweep on both
			n := r.IntN(3)
			a.StepClear(n)
			b.StepClear(n)
		default:
			g := alignedGroup(r, nbits, 1+r.IntN(8))
			a.SetAligned(g)
			for _, i := range g {
				b.Set(i)
			}
		}
		probe := alignedGroup(r, nbits, 1+r.IntN(8))
		want := true
		for _, i := range probe {
			if !b.Get(i) {
				want = false
				break
			}
		}
		if got := a.GetAligned(probe); got != want {
			t.Fatalf("step %d: GetAligned = %v, scalar Get loop = %v", step, got, want)
		}
		if a.OnesCount() != b.OnesCount() {
			t.Fatalf("step %d: aligned ones %d != scalar ones %d", step, a.OnesCount(), b.OnesCount())
		}
	}
	if !a.Equal(b) {
		t.Fatal("aligned and scalar vectors diverged")
	}
}

// TestOnesCountExactUnderInterleavedOps: the O(1) OnesCount (and thus
// Utilization, the U of Equation 2) must track the true set cardinality
// exactly through any interleaving of scalar sets, aligned group sets,
// deferred clears, and partial sweeps — including across a uint64 epoch
// wrap, which the test forces by starting the epoch three steps below
// overflow.
func TestOnesCountExactUnderInterleavedOps(t *testing.T) {
	const nbits = 1 << 14
	r := rand.New(rand.NewPCG(7, 11))
	v := New(nbits)
	// Park the epoch at the edge of uint64 so the Clears below wrap it
	// through zero. Stale stamps must still read as logically empty on
	// the far side of the wrap.
	v.epoch = ^uint64(0) - 2
	v.sweep = 0
	ref := make(map[uint32]bool)
	clears := 0
	for step := 0; step < 20000; step++ {
		switch r.IntN(12) {
		case 0:
			if clears < 8 { // enough to cross the wrap, not enough to thrash
				v.Clear()
				ref = make(map[uint32]bool)
				clears++
			}
		case 1, 2:
			v.StepClear(r.IntN(4))
		case 3, 4, 5:
			i := r.Uint32() % nbits
			v.Set(i)
			ref[i] = true
		default:
			g := alignedGroup(r, nbits, 1+r.IntN(6))
			v.SetAligned(g)
			for _, i := range g {
				ref[i] = true
			}
		}
		if v.OnesCount() != len(ref) {
			t.Fatalf("step %d: OnesCount %d, reference %d", step, v.OnesCount(), len(ref))
		}
		if got, want := v.Utilization(), float64(len(ref))/float64(nbits); got != want {
			t.Fatalf("step %d: Utilization %g, want %g", step, got, want)
		}
		// Spot-check membership both ways.
		i := r.Uint32() % nbits
		if v.Get(i) != ref[i] {
			t.Fatalf("step %d: Get(%d) = %v, reference %v", step, i, v.Get(i), ref[i])
		}
	}
	if clears < 4 {
		t.Fatalf("only %d clears; epoch wrap not exercised", clears)
	}
}

// TestTouchIsPure: Touch must not change any observable state — it
// exists only to warm cache lines for batch pass A.
func TestTouchIsPure(t *testing.T) {
	const nbits = 1 << 12
	r := rand.New(rand.NewPCG(3, 5))
	v, w := New(nbits), New(nbits)
	for i := 0; i < 200; i++ {
		n := r.Uint32() % nbits
		v.Set(n)
		w.Set(n)
	}
	v.Clear()
	w.Clear()
	for i := 0; i < 100; i++ {
		n := r.Uint32() % nbits
		v.Set(n)
		w.Set(n)
	}
	for i := uint32(0); i < nbits; i++ {
		v.Touch(i) // including bits in blocks still stale from Clear
	}
	if !v.Equal(w) || v.OnesCount() != w.OnesCount() {
		t.Fatal("Touch changed observable state")
	}
	for i := uint32(0); i < nbits; i++ {
		if v.Get(i) != w.Get(i) {
			t.Fatalf("Touch changed bit %d", i)
		}
	}
}
