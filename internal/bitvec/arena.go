package bitvec

import (
	"errors"
	"strconv"
	"sync"
	"unsafe"
)

// Arena is a slab allocator for fixed-geometry Vectors. A multi-tenant
// control plane hydrating and evicting hundreds of thousands of small
// per-subscriber filters cannot afford one make([]uint64) pair per
// vector per hydration: the allocations fragment the heap, defeat the
// cache-line alignment the blocked layout depends on, and put GC
// pressure on the churn path. An arena instead carves vectors out of
// shared slabs — each span is 512-bit aligned and sized for one vector's
// words plus its clear-block epoch stamps — and recycles released spans
// through a free list, so steady-state tenant churn allocates nothing.
//
// All vectors from one arena share a single size (the nbits fixed at
// construction); that is exactly the multi-tenant shape, where every
// subscriber runs the same compact geometry. The arena is safe for
// concurrent use, but it sits on the hydration/eviction control path,
// never under a packet decision.
type Arena struct {
	mu    sync.Mutex
	nbits uint // per-vector capacity (power of two, as in New)
	// spanWords is the carve unit: word storage plus epoch stamps,
	// rounded up to a multiple of alignWords so every span stays
	// 64-byte aligned within its slab.
	spanWords    int
	nwords       int
	nblocks      int
	spansPerSlab int
	free         [][]uint64 //p2p:confined arena // released spans awaiting reuse
	cur          []uint64   //p2p:confined arena // aligned tail of the newest slab
	slabs        int        //p2p:confined arena
	live         int        //p2p:confined arena
}

// alignWords is the span alignment in words: 8 words = 64 bytes = one
// cache line = the 512-bit block unit of the blocked layout.
const alignWords = 8

// NewArena returns an arena producing vectors of nbits capacity (rounded
// up to a power of two exactly as New does), allocating backing slabs of
// vectorsPerSlab spans at a time. vectorsPerSlab <= 0 selects a default
// sized to keep slabs around 64 spans.
func NewArena(nbits uint, vectorsPerSlab int) *Arena {
	if nbits == 0 {
		panic("bitvec: arena vector size must be positive")
	}
	nbits = ceilPow2(nbits)
	nwords := int((nbits + wordBits - 1) / wordBits)
	nblocks := (nwords + clearBlockWords - 1) / clearBlockWords
	span := nwords + nblocks
	if r := span % alignWords; r != 0 {
		span += alignWords - r
	}
	if vectorsPerSlab <= 0 {
		vectorsPerSlab = 64
	}
	return &Arena{
		nbits:        nbits,
		spanWords:    span,
		nwords:       nwords,
		nblocks:      nblocks,
		spansPerSlab: vectorsPerSlab,
	}
}

// NBits returns the (rounded) per-vector capacity the arena produces.
func (a *Arena) NBits() uint { return a.nbits }

// NewVector carves a zeroed vector out of the arena. nbits must round to
// the arena's configured geometry — the single-size contract is what
// makes span recycling trivial — and is accepted as a parameter only so
// Arena satisfies the allocator seam filters construct through.
//
//p2p:confined arena entry
func (a *Arena) NewVector(nbits uint) *Vector {
	if ceilPow2(nbits) != a.nbits {
		panic("bitvec: arena geometry mismatch: want " + strconv.FormatUint(uint64(a.nbits), 10) +
			" bits, got " + strconv.FormatUint(uint64(nbits), 10))
	}
	a.mu.Lock()
	span := a.take()
	a.live++
	a.mu.Unlock()
	words := span[:a.nwords:a.nwords]
	stamps := span[a.nwords : a.nwords+a.nblocks : a.nwords+a.nblocks]
	// A recycled span carries a retired tenant's bits. Rather than memclr
	// the whole span, reuse the lazy-clear machinery: zero only the epoch
	// stamps and start the vector at epoch 1, so every block reads stale
	// (logically zero) and is physically freshened on first touch or by
	// the deferred sweep — the same discipline Rotate relies on.
	clear(stamps)
	return &Vector{
		words:      words,
		blockEpoch: stamps,
		epoch:      1,
		nbits:      a.nbits,
		mask:       uint32(a.nbits - 1),
		span:       span,
	}
}

// take returns one span, preferring the free list, then the current
// slab's tail, growing a fresh slab only when both are empty. Callers
// hold a.mu.
//
//p2p:confined arena
func (a *Arena) take() []uint64 {
	if n := len(a.free); n > 0 {
		span := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return span
	}
	if len(a.cur) < a.spanWords {
		// One spare alignment unit absorbs the alignment trim below.
		slab := make([]uint64, a.spanWords*a.spansPerSlab+alignWords)
		off := 0
		if rem := int(uintptr(unsafe.Pointer(&slab[0])) % (alignWords * 8)); rem != 0 {
			off = alignWords - rem/8
		}
		a.cur = slab[off:]
		a.slabs++
	}
	span := a.cur[:a.spanWords:a.spanWords]
	a.cur = a.cur[a.spanWords:]
	return span
}

// Release returns a vector's span to the arena for reuse. The vector
// must have been produced by this arena (same geometry) and must not be
// used afterwards; the caller owns that lifecycle — in the tenant
// manager, eviction snapshots the filter before releasing its vectors.
//
//p2p:confined arena entry
func (a *Arena) Release(v *Vector) error {
	if v.span == nil {
		return errors.New("bitvec: release of a non-arena vector")
	}
	if v.nbits != a.nbits {
		return errors.New("bitvec: release geometry mismatch: arena " + strconv.FormatUint(uint64(a.nbits), 10) +
			" bits, vector " + strconv.FormatUint(uint64(v.nbits), 10))
	}
	span := v.span
	v.span = nil
	v.words = nil
	v.blockEpoch = nil
	a.mu.Lock()
	a.free = append(a.free, span)
	a.live--
	a.mu.Unlock()
	return nil
}

// ArenaStats is a point-in-time usage summary.
type ArenaStats struct {
	Slabs int // backing slabs allocated
	Live  int // vectors currently carved out
	Free  int // recycled spans awaiting reuse
}

// Stats reports the arena's current occupancy.
//
//p2p:confined arena entry
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{Slabs: a.slabs, Live: a.live, Free: len(a.free)}
}

// FootprintBytes returns the total backing storage the arena has
// allocated, whether carved out or free.
//
//p2p:confined arena entry
func (a *Arena) FootprintBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slabs * (a.spanWords*a.spansPerSlab + alignWords) * 8
}
