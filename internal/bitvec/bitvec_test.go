package bitvec

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestNewRoundsUpToPowerOfTwo(t *testing.T) {
	tests := []struct {
		in   uint
		want uint
	}{
		{1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128}, {100, 128},
		{1 << 20, 1 << 20}, {1<<20 + 1, 1 << 21},
	}
	for _, tt := range tests {
		if got := New(tt.in).Len(); got != tt.want {
			t.Errorf("New(%d).Len() = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestSetGet(t *testing.T) {
	v := New(128)
	for _, i := range []uint32{0, 1, 63, 64, 127} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.OnesCount(); got != 5 {
		t.Fatalf("OnesCount = %d, want 5", got)
	}
}

func TestSetWrapsWithMask(t *testing.T) {
	v := New(128)
	v.Set(128) // wraps to 0: 128 & 127 == 0
	if !v.Get(0) {
		t.Fatal("Set(128) on a 128-bit vector should set bit 0")
	}
	v.Set(261) // wraps to 5
	if !v.Get(133) {
		t.Fatal("Get must wrap the same way as Set")
	}
}

func TestClear(t *testing.T) {
	v := New(512)
	for i := uint32(0); i < 512; i += 3 {
		v.Set(i)
	}
	if v.OnesCount() == 0 {
		t.Fatal("nothing set")
	}
	v.Clear()
	if got := v.OnesCount(); got != 0 {
		t.Fatalf("OnesCount after Clear = %d", got)
	}
	for i := uint32(0); i < 512; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d readable after Clear", i)
		}
	}
}

func TestUtilization(t *testing.T) {
	v := New(128)
	for i := uint32(0); i < 32; i++ {
		v.Set(i)
	}
	if got := v.Utilization(); got != 0.25 {
		t.Fatalf("Utilization = %g, want 0.25", got)
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		bits uint
		want int
	}{
		{1, 8},
		{64, 8},
		{65, 16},
		{1 << 20, 1 << 17},
	}
	for _, tt := range tests {
		if got := New(tt.bits).Bytes(); got != tt.want {
			t.Errorf("New(%d).Bytes() = %d, want %d", tt.bits, got, tt.want)
		}
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a := New(256)
	b := New(256)
	a.Set(17)
	a.Set(200)
	if a.Equal(b) {
		t.Fatal("different vectors reported equal")
	}
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("copied vectors differ")
	}
	c := New(128)
	if err := c.CopyFrom(a); err == nil {
		t.Fatal("CopyFrom with size mismatch succeeded")
	}
	if a.Equal(c) {
		t.Fatal("vectors of different sizes reported equal")
	}
}

func TestCopyFromPendingClear(t *testing.T) {
	src := New(1 << 15)
	src.Set(3)
	src.Clear() // deferred
	src.Set(9)
	dst := New(1 << 15)
	dst.Set(100)
	dst.Clear() // dst also mid-clear
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if dst.Get(3) || dst.Get(100) || !dst.Get(9) {
		t.Fatalf("CopyFrom ignored deferred clears: Get(3)=%v Get(100)=%v Get(9)=%v",
			dst.Get(3), dst.Get(100), dst.Get(9))
	}
	if dst.OnesCount() != 1 {
		t.Fatalf("OnesCount = %d, want 1", dst.OnesCount())
	}
}

func TestString(t *testing.T) {
	v := New(64)
	v.Set(3)
	if got := v.String(); got != "bitvec(64 bits, 1 set)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestLazyClearSemantics pins the deferred-clear contract: after Clear,
// every read observes zero regardless of sweep progress; Set in a stale
// block never resurrects old-epoch bits; StepClear advances the
// watermark in bounded block units.
func TestLazyClearSemantics(t *testing.T) {
	const n = 1 << 16 // 1024 words = 16 blocks
	v := New(n)
	for i := uint32(0); i < n; i += 7 {
		v.Set(i)
	}
	v.Clear()

	// Reads above the watermark are treated as zero.
	for i := uint32(0); i < n; i += 7 {
		if v.Get(i) {
			t.Fatalf("bit %d visible after Clear before sweep", i)
		}
	}

	// A Set into a stale block freshens exactly that block and must not
	// bring back neighbors from the old epoch.
	v.Set(7) // block 0 held many old-epoch bits
	if !v.Get(7) {
		t.Fatal("Set after Clear lost the new bit")
	}
	if v.Get(14) {
		t.Fatal("Set after Clear resurrected an old-epoch neighbor")
	}
	if v.OnesCount() != 1 {
		t.Fatalf("OnesCount = %d, want 1", v.OnesCount())
	}

	// Chunked sweep: drive the watermark one block at a time.
	steps := 0
	for !v.StepClear(1) {
		steps++
		if steps > 1024 {
			t.Fatal("StepClear never completed")
		}
	}
	if v.OnesCount() != 1 || !v.Get(7) {
		t.Fatal("sweep destroyed the new-epoch bit")
	}
	// After a full sweep the physical words match the logical state.
	for i := uint32(0); i < n; i++ {
		want := i == 7
		if v.Get(i) != want {
			t.Fatalf("Get(%d) = %v after sweep", i, v.Get(i))
		}
	}
}

// TestClearDuringSweep interleaves a second Clear into an unfinished
// sweep; the restart must still observe all-zero.
func TestClearDuringSweep(t *testing.T) {
	const n = 1 << 16
	v := New(n)
	for i := uint32(0); i < n; i += 3 {
		v.Set(i)
	}
	v.Clear()
	v.StepClear(2) // partial
	v.Set(50_000)
	v.Clear() // clear again mid-sweep
	for i := uint32(0); i < n; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d visible after second Clear", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount = %d after second Clear", v.OnesCount())
	}
	for !v.StepClear(4) {
	}
	if v.OnesCount() != 0 {
		t.Fatal("sweep after double Clear exposed bits")
	}
}

// TestOnesCountMatchesSetCardinality property: setting any set of bit
// indices yields OnesCount equal to the number of distinct (wrapped)
// positions.
func TestOnesCountMatchesSetCardinality(t *testing.T) {
	f := func(indices []uint32) bool {
		const n = 4096
		v := New(n)
		distinct := make(map[uint32]struct{}, len(indices))
		for _, i := range indices {
			v.Set(i)
			distinct[i%n] = struct{}{}
		}
		return v.OnesCount() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGetOnlySetBits property: bits never set must read zero.
func TestGetOnlySetBits(t *testing.T) {
	f := func(set []uint32, probe uint32) bool {
		const n = 1 << 14
		v := New(n)
		want := false
		for _, i := range set {
			v.Set(i)
			if i%n == probe%n {
				want = true
			}
		}
		return v.Get(probe) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLazyClearAgainstReference drives a random op sequence through the
// vector and a map-based reference model, with Clear/StepClear
// interleaved at arbitrary points.
func TestLazyClearAgainstReference(t *testing.T) {
	f := func(ops []uint32) bool {
		const n = 1 << 13
		v := New(n)
		ref := make(map[uint32]bool)
		for _, op := range ops {
			i := op % n
			switch op % 11 {
			case 0:
				v.Clear()
				ref = make(map[uint32]bool)
			case 1:
				v.StepClear(int(op%3) + 1)
			default:
				if op%2 == 0 {
					v.Set(i)
					ref[i] = true
				} else if v.Get(i) != ref[i] {
					return false
				}
			}
			if v.OnesCount() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
