package bitvec

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSetGet(t *testing.T) {
	v := New(128)
	for _, i := range []uint32{0, 1, 63, 64, 127} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.OnesCount(); got != 5 {
		t.Fatalf("OnesCount = %d, want 5", got)
	}
}

func TestSetWrapsModuloSize(t *testing.T) {
	v := New(100)
	v.Set(100) // wraps to 0
	if !v.Get(0) {
		t.Fatal("Set(100) on a 100-bit vector should set bit 0")
	}
	v.Set(205) // wraps to 5
	if !v.Get(105) {
		t.Fatal("Get must wrap the same way as Set")
	}
}

func TestClear(t *testing.T) {
	v := New(512)
	for i := uint32(0); i < 512; i += 3 {
		v.Set(i)
	}
	if v.OnesCount() == 0 {
		t.Fatal("nothing set")
	}
	v.Clear()
	if got := v.OnesCount(); got != 0 {
		t.Fatalf("OnesCount after Clear = %d", got)
	}
}

func TestUtilization(t *testing.T) {
	v := New(100)
	for i := uint32(0); i < 25; i++ {
		v.Set(i)
	}
	if got := v.Utilization(); got != 0.25 {
		t.Fatalf("Utilization = %g, want 0.25", got)
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		bits uint
		want int
	}{
		{1, 8},
		{64, 8},
		{65, 16},
		{1 << 20, 1 << 17},
	}
	for _, tt := range tests {
		if got := New(tt.bits).Bytes(); got != tt.want {
			t.Errorf("New(%d).Bytes() = %d, want %d", tt.bits, got, tt.want)
		}
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a := New(256)
	b := New(256)
	a.Set(17)
	a.Set(200)
	if a.Equal(b) {
		t.Fatal("different vectors reported equal")
	}
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("copied vectors differ")
	}
	c := New(128)
	if err := c.CopyFrom(a); err == nil {
		t.Fatal("CopyFrom with size mismatch succeeded")
	}
	if a.Equal(c) {
		t.Fatal("vectors of different sizes reported equal")
	}
}

func TestString(t *testing.T) {
	v := New(64)
	v.Set(3)
	if got := v.String(); got != "bitvec(64 bits, 1 set)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestOnesCountMatchesSetCardinality property: setting any set of bit
// indices yields OnesCount equal to the number of distinct (wrapped)
// positions.
func TestOnesCountMatchesSetCardinality(t *testing.T) {
	f := func(indices []uint32) bool {
		const n = 4096
		v := New(n)
		distinct := make(map[uint32]struct{}, len(indices))
		for _, i := range indices {
			v.Set(i)
			distinct[i%n] = struct{}{}
		}
		return v.OnesCount() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGetOnlySetBits property: bits never set must read zero.
func TestGetOnlySetBits(t *testing.T) {
	f := func(set []uint32, probe uint32) bool {
		const n = 1 << 14
		v := New(n)
		want := false
		for _, i := range set {
			v.Set(i)
			if i%n == probe%n {
				want = true
			}
		}
		return v.Get(probe) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
