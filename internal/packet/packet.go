// Package packet defines the five-tuple socket pairs, packets, and
// direction classification shared by every component of the system.
//
// The terminology follows Section 3.2 of the paper: a network connection is
// identified by a five-tuple socket pair σ = {protocol, source-address,
// source-port, destination-address, destination-port}; the inverse socket
// pair σ̄ identifies the same connection seen from the opposite direction.
package packet

import (
	"fmt"
	"math/bits"
	"net"
	"time"
)

// Proto is an IP transport protocol number.
type Proto uint8

// Transport protocols considered by the traffic analyzer. The paper's
// analyzer focuses only on TCP and UDP, "the major data transmission
// protocols used over Internet".
const (
	TCP Proto = 6
	UDP Proto = 17
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Addr is an IPv4 address in host byte order. The trace collection
// environment in the paper is an IPv4 campus subnet; a fixed-size integer
// address keeps socket-pair keys compact and hashing allocation-free.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
//
//p2p:hotpath
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 string.
func ParseAddr(s string) (Addr, error) {
	ip := net.ParseIP(s)
	if ip == nil {
		return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	v4 := ip.To4()
	if v4 == nil {
		return 0, fmt.Errorf("packet: address %q is not IPv4", s)
	}
	return AddrFrom4(v4[0], v4[1], v4[2], v4[3]), nil
}

// IP converts the address to a net.IP.
func (a Addr) IP() net.IP {
	return net.IPv4(byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Network is an IPv4 prefix used to decide which addresses belong to the
// monitored client network (Figure 1: traffic sent to the campus network is
// inbound, traffic in the other direction is outbound).
type Network struct {
	Prefix Addr
	Mask   Addr
}

// ParseNetwork parses CIDR notation such as "140.112.0.0/16".
func ParseNetwork(s string) (Network, error) {
	_, ipnet, err := net.ParseCIDR(s)
	if err != nil {
		return Network{}, fmt.Errorf("packet: parse network %q: %w", s, err)
	}
	v4 := ipnet.IP.To4()
	if v4 == nil {
		return Network{}, fmt.Errorf("packet: network %q is not IPv4", s)
	}
	ones, _ := ipnet.Mask.Size()
	return CIDR(AddrFrom4(v4[0], v4[1], v4[2], v4[3]), ones), nil
}

// CIDR builds a Network from a prefix address and a prefix length.
func CIDR(prefix Addr, bits int) Network {
	var mask Addr
	if bits > 0 {
		mask = Addr(^uint32(0) << (32 - uint(bits)))
	}
	return Network{Prefix: prefix & mask, Mask: mask}
}

// Contains reports whether addr falls inside the prefix.
//
//p2p:hotpath
func (n Network) Contains(addr Addr) bool {
	return addr&n.Mask == n.Prefix
}

// String renders the network in CIDR notation.
func (n Network) String() string {
	bits := 0
	for m := uint32(n.Mask); m != 0; m <<= 1 {
		bits++
	}
	return fmt.Sprintf("%s/%d", n.Prefix, bits)
}

// SocketPair is the five-tuple σ identifying a connection.
type SocketPair struct {
	Proto   Proto
	SrcAddr Addr
	SrcPort uint16
	DstAddr Addr
	DstPort uint16
}

// Inverse returns σ̄, the same connection viewed from the other end.
//
//p2p:hotpath
func (s SocketPair) Inverse() SocketPair {
	return SocketPair{
		Proto:   s.Proto,
		SrcAddr: s.DstAddr,
		SrcPort: s.DstPort,
		DstAddr: s.SrcAddr,
		DstPort: s.SrcPort,
	}
}

// KeySize is the length in bytes of a full-tuple key.
const KeySize = 13

// HolePunchKeySize is the length in bytes of a partial-tuple key used when
// hole-punching support is enabled (the remote port is omitted so a punched
// hole admits inbound packets from any remote port, Section 4.2).
const HolePunchKeySize = 11

// AppendKey appends the canonical full-tuple byte encoding of σ to dst and
// returns the extended slice. Two socket pairs encode equal keys iff they
// are identical; σ and σ̄ encode different keys.
func (s SocketPair) AppendKey(dst []byte) []byte {
	return append(dst,
		byte(s.Proto),
		byte(s.SrcAddr>>24), byte(s.SrcAddr>>16), byte(s.SrcAddr>>8), byte(s.SrcAddr),
		byte(s.SrcPort>>8), byte(s.SrcPort),
		byte(s.DstAddr>>24), byte(s.DstAddr>>16), byte(s.DstAddr>>8), byte(s.DstAddr),
		byte(s.DstPort>>8), byte(s.DstPort),
	)
}

// Key returns the canonical full-tuple byte encoding as a fixed array,
// suitable for use as a map key without allocation.
func (s SocketPair) Key() [KeySize]byte {
	var k [KeySize]byte
	s.PutKey(&k)
	return k
}

// PutKey writes the canonical full-tuple encoding of σ into dst. It is
// the hot-path form of AppendKey: fixed stores into a caller-owned
// array, no slice growth or bounds-check churn, so a filter can encode
// one key per packet with zero allocations.
//
//p2p:hotpath
func (s SocketPair) PutKey(dst *[KeySize]byte) {
	dst[0] = byte(s.Proto)
	dst[1], dst[2], dst[3], dst[4] = byte(s.SrcAddr>>24), byte(s.SrcAddr>>16), byte(s.SrcAddr>>8), byte(s.SrcAddr)
	dst[5], dst[6] = byte(s.SrcPort>>8), byte(s.SrcPort)
	dst[7], dst[8], dst[9], dst[10] = byte(s.DstAddr>>24), byte(s.DstAddr>>16), byte(s.DstAddr>>8), byte(s.DstAddr)
	dst[11], dst[12] = byte(s.DstPort>>8), byte(s.DstPort)
}

// PutHolePunchKey writes the partial-tuple hole-punch encoding of σ
// ({protocol, source-address, source-port, destination-address}) into
// dst; the fixed-store analogue of AppendHolePunchKey.
//
//p2p:hotpath
func (s SocketPair) PutHolePunchKey(dst *[HolePunchKeySize]byte) {
	dst[0] = byte(s.Proto)
	dst[1], dst[2], dst[3], dst[4] = byte(s.SrcAddr>>24), byte(s.SrcAddr>>16), byte(s.SrcAddr>>8), byte(s.SrcAddr)
	dst[5], dst[6] = byte(s.SrcPort>>8), byte(s.SrcPort)
	dst[7], dst[8], dst[9], dst[10] = byte(s.DstAddr>>24), byte(s.DstAddr>>16), byte(s.DstAddr>>8), byte(s.DstAddr)
}

// KeyEncoder encodes socket pairs into a reusable fixed buffer — the
// single shared encoder behind every filter's hash key construction, so
// the one-shot hash and the per-index family provably consume identical
// key bytes. The hole-punch encoding is exactly the first
// HolePunchKeySize bytes of the full encoding (the remote port is the
// trailing field), so one buffer serves both modes; Outbound and
// Inbound return a slice of the encoder's own storage, valid until the
// next call.
type KeyEncoder struct {
	buf       [KeySize]byte
	holePunch bool
}

// NewKeyEncoder returns an encoder producing full-tuple keys, or
// partial-tuple (remote-port-free) keys when holePunch is set.
func NewKeyEncoder(holePunch bool) KeyEncoder {
	return KeyEncoder{holePunch: holePunch}
}

// Outbound encodes the hash key of an outbound packet's socket pair:
// the canonical PutKey bytes, truncated to the hole-punch prefix when
// the encoder is in hole-punch mode.
//
//p2p:hotpath
func (e *KeyEncoder) Outbound(pair SocketPair) []byte {
	pair.PutKey(&e.buf)
	if e.holePunch {
		return e.buf[:HolePunchKeySize]
	}
	return e.buf[:KeySize]
}

// Inbound encodes the hash key of an inbound packet's socket pair: the
// inverse tuple σ̄, whose encoding coincides with the matching outbound
// key in both full and hole-punch modes ({proto, daddr, dport, saddr}
// of the inbound packet equals {proto, saddr, sport, daddr} of the
// outbound one).
//
//p2p:hotpath
func (e *KeyEncoder) Inbound(pair SocketPair) []byte {
	return e.Outbound(pair.Inverse())
}

// KeyWords returns the full-tuple key as the two overlapping words the
// one-shot hash consumes: a and b are the little-endian loads of bytes
// [0,8) and [5,13) of the PutKey encoding, computed directly from the
// fields. The batch hash loop uses this instead of encoding the key
// into a buffer and loading it back — the byte stores of PutKey and the
// misaligned overlapping loads of the hash defeat store-to-load
// forwarding, so the round trip costs more than the hash itself.
// KeyWordsMatchBytes (keyencoder_test.go) pins the equivalence.
//
//p2p:hotpath
func (s SocketPair) KeyWords() (a, b uint64) {
	sa := bits.ReverseBytes32(uint32(s.SrcAddr))
	da := bits.ReverseBytes32(uint32(s.DstAddr))
	sp := bits.ReverseBytes16(s.SrcPort)
	a = uint64(byte(s.Proto)) | uint64(sa)<<8 | uint64(sp)<<40 | uint64(byte(s.DstAddr>>24))<<56
	b = uint64(sp) | uint64(da)<<16 | uint64(bits.ReverseBytes16(s.DstPort))<<48
	return a, b
}

// HolePunchKeyWords is KeyWords for the partial-tuple hole-punch key:
// the little-endian loads of bytes [0,8) and [3,11) of the
// PutHolePunchKey encoding.
//
//p2p:hotpath
func (s SocketPair) HolePunchKeyWords() (a, b uint64) {
	sa := bits.ReverseBytes32(uint32(s.SrcAddr))
	da := bits.ReverseBytes32(uint32(s.DstAddr))
	sp := bits.ReverseBytes16(s.SrcPort)
	a = uint64(byte(s.Proto)) | uint64(sa)<<8 | uint64(sp)<<40 | uint64(byte(s.DstAddr>>24))<<56
	b = uint64(sa)>>16 | uint64(sp)<<16 | uint64(da)<<32
	return a, b
}

// AppendHolePunchKey appends the partial-tuple encoding used for
// hole-punching mode when σ belongs to an outbound packet:
// {protocol, source-address, source-port, destination-address}.
func (s SocketPair) AppendHolePunchKey(dst []byte) []byte {
	return append(dst,
		byte(s.Proto),
		byte(s.SrcAddr>>24), byte(s.SrcAddr>>16), byte(s.SrcAddr>>8), byte(s.SrcAddr),
		byte(s.SrcPort>>8), byte(s.SrcPort),
		byte(s.DstAddr>>24), byte(s.DstAddr>>16), byte(s.DstAddr>>8), byte(s.DstAddr),
	)
}

// String renders the socket pair as "TCP 1.2.3.4:80 -> 5.6.7.8:1234".
func (s SocketPair) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d", s.Proto, s.SrcAddr, s.SrcPort, s.DstAddr, s.DstPort)
}

// TCPFlags is the set of TCP control bits carried by a segment.
type TCPFlags uint8

// TCP control bits, matching their on-the-wire positions.
const (
	FIN TCPFlags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
)

// Has reports whether all bits in f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

// String renders the flags in tcpdump style, e.g. "SA" for SYN+ACK.
func (t TCPFlags) String() string {
	const names = "FSRPAU"
	buf := make([]byte, 0, 6)
	for i := 0; i < 6; i++ {
		if t&(1<<uint(i)) != 0 {
			buf = append(buf, names[i])
		}
	}
	if len(buf) == 0 {
		return "."
	}
	return string(buf)
}

// Direction classifies a packet relative to the client network.
type Direction int

// Packet directions per the paper's definitions: an outbound packet is sent
// from the client network, an inbound packet is received by it.
const (
	Outbound Direction = iota + 1
	Inbound
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Outbound:
		return "outbound"
	case Inbound:
		return "inbound"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Packet is a single observed packet. TS is an offset from the start of the
// trace; the replay engine and filters are driven entirely by these
// simulated timestamps, never by the wall clock.
type Packet struct {
	TS      time.Duration
	Pair    SocketPair
	Dir     Direction
	Len     int // total bytes on the wire (headers + payload)
	Flags   TCPFlags
	Payload []byte // nil for packets whose payload is irrelevant
}

// IsTCPData reports whether the packet is a TCP segment carrying payload.
//
//p2p:hotpath
func (p *Packet) IsTCPData() bool {
	return p.Pair.Proto == TCP && len(p.Payload) > 0
}

// Classify returns the packet direction implied by the client network: a
// packet whose source lies inside the network is outbound. Packets with
// both or neither endpoint inside the network are resolved in favour of the
// source (hairpin and transit traffic is rare in a client network).
//
//p2p:hotpath
func Classify(pair SocketPair, clientNet Network) Direction {
	if clientNet.Contains(pair.SrcAddr) {
		return Outbound
	}
	return Inbound
}
