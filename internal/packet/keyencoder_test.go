package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

// TestKeyWordsMatchBytes property: KeyWords/HolePunchKeyWords must equal
// the little-endian loads of bytes [0,8) and [len-8,len) of the
// canonical key encodings — the identity that lets the batch hash loop
// consume socket-pair fields directly while the per-packet path hashes
// encoder bytes, with both provably deriving identical indexes.
func TestKeyWordsMatchBytes(t *testing.T) {
	f := func(proto uint8, sa, da uint32, sp, dp uint16) bool {
		s := SocketPair{Proto: Proto(proto), SrcAddr: Addr(sa), SrcPort: sp, DstAddr: Addr(da), DstPort: dp}
		full := s.AppendKey(nil)
		a, b := s.KeyWords()
		if a != binary.LittleEndian.Uint64(full[:8]) || b != binary.LittleEndian.Uint64(full[len(full)-8:]) {
			return false
		}
		hpk := s.AppendHolePunchKey(nil)
		a, b = s.HolePunchKeyWords()
		return a == binary.LittleEndian.Uint64(hpk[:8]) && b == binary.LittleEndian.Uint64(hpk[len(hpk)-8:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeyEncoderMatchesAppendKey property: the encoder's reusable-buffer
// output is byte-identical to the canonical AppendKey/AppendHolePunchKey
// encodings in both modes — it is the single shared key builder, not a
// second encoding.
func TestKeyEncoderMatchesAppendKey(t *testing.T) {
	full := NewKeyEncoder(false)
	hp := NewKeyEncoder(true)
	f := func(proto uint8, sa, da uint32, sp, dp uint16) bool {
		s := SocketPair{Proto: Proto(proto), SrcAddr: Addr(sa), SrcPort: sp, DstAddr: Addr(da), DstPort: dp}
		return bytes.Equal(full.Outbound(s), s.AppendKey(nil)) &&
			bytes.Equal(hp.Outbound(s), s.AppendHolePunchKey(nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeyEncoderInboundMatchesOutbound property: an inbound packet's key
// equals the key of the outbound flow it answers (the inverse tuple), in
// both full and hole-punch modes — the identity the bitmap filter's
// admit-on-match semantics rest on.
func TestKeyEncoderInboundMatchesOutbound(t *testing.T) {
	for _, holePunch := range []bool{false, true} {
		in := NewKeyEncoder(holePunch)
		out := NewKeyEncoder(holePunch)
		f := func(proto uint8, sa, da uint32, sp, dp uint16) bool {
			o := SocketPair{Proto: Proto(proto), SrcAddr: Addr(sa), SrcPort: sp, DstAddr: Addr(da), DstPort: dp}
			return bytes.Equal(in.Inbound(o.Inverse()), out.Outbound(o))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("holePunch=%v: %v", holePunch, err)
		}
	}
}

// TestKeyEncoderHolePunchPrefix: the hole-punch key is exactly the first
// HolePunchKeySize bytes of the full key — the structural fact that lets
// one fixed buffer serve both modes.
func TestKeyEncoderHolePunchPrefix(t *testing.T) {
	full := NewKeyEncoder(false)
	hp := NewKeyEncoder(true)
	s := SocketPair{Proto: UDP, SrcAddr: 0x8c700001, SrcPort: 51413, DstAddr: 0x01020304, DstPort: 6881}
	fk := append([]byte(nil), full.Outbound(s)...)
	hk := hp.Outbound(s)
	if len(fk) != KeySize || len(hk) != HolePunchKeySize {
		t.Fatalf("key lengths %d/%d, want %d/%d", len(fk), len(hk), KeySize, HolePunchKeySize)
	}
	if !bytes.Equal(hk, fk[:HolePunchKeySize]) {
		t.Fatalf("hole-punch key %x is not a prefix of full key %x", hk, fk)
	}
}

// TestKeyEncoderBufferReuse: successive calls overwrite the same
// storage; the previously returned slice observes the new encoding.
// Callers must consume the key before the next call — the documented
// contract that keeps the hot path allocation-free.
func TestKeyEncoderBufferReuse(t *testing.T) {
	e := NewKeyEncoder(false)
	a := SocketPair{Proto: TCP, SrcAddr: 1, SrcPort: 2, DstAddr: 3, DstPort: 4}
	b := SocketPair{Proto: UDP, SrcAddr: 5, SrcPort: 6, DstAddr: 7, DstPort: 8}
	first := e.Outbound(a)
	second := e.Outbound(b)
	if !bytes.Equal(first, second) {
		t.Fatal("encoder did not reuse its buffer")
	}
	if !bytes.Equal(second, b.AppendKey(nil)) {
		t.Fatal("reused buffer does not hold the latest encoding")
	}
}
