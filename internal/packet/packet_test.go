package packet

import (
	"testing"
	"testing/quick"
)

func TestProtoString(t *testing.T) {
	tests := []struct {
		give Proto
		want string
	}{
		{TCP, "TCP"},
		{UDP, "UDP"},
		{Proto(47), "proto(47)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Proto(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	tests := []string{"0.0.0.1", "10.0.0.1", "140.112.3.4", "255.255.255.255"}
	for _, tt := range tests {
		addr, err := ParseAddr(tt)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", tt, err)
		}
		if got := addr.String(); got != tt {
			t.Errorf("ParseAddr(%q).String() = %q", tt, got)
		}
		if got := addr.IP().String(); got != tt {
			t.Errorf("ParseAddr(%q).IP() = %q", tt, got)
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, give := range []string{"", "nonsense", "1.2.3", "::1", "256.1.1.1"} {
		if _, err := ParseAddr(give); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", give)
		}
	}
}

func TestAddrFrom4(t *testing.T) {
	addr := AddrFrom4(140, 112, 1, 2)
	if got := addr.String(); got != "140.112.1.2" {
		t.Fatalf("AddrFrom4 = %s", got)
	}
}

func TestNetworkContains(t *testing.T) {
	net, err := ParseNetwork("140.112.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		give string
		want bool
	}{
		{"140.112.0.1", true},
		{"140.112.255.255", true},
		{"140.113.0.1", false},
		{"8.8.8.8", false},
	}
	for _, tt := range tests {
		addr, err := ParseAddr(tt.give)
		if err != nil {
			t.Fatal(err)
		}
		if got := net.Contains(addr); got != tt.want {
			t.Errorf("%s in %s = %v, want %v", tt.give, net, got, tt.want)
		}
	}
}

func TestNetworkString(t *testing.T) {
	net := CIDR(AddrFrom4(10, 0, 0, 0), 8)
	if got := net.String(); got != "10.0.0.0/8" {
		t.Fatalf("Network.String() = %q", got)
	}
}

func TestNetworkZeroBits(t *testing.T) {
	net := CIDR(AddrFrom4(10, 0, 0, 0), 0)
	if !net.Contains(AddrFrom4(8, 8, 8, 8)) {
		t.Fatal("a /0 network must contain every address")
	}
}

func TestParseNetworkErrors(t *testing.T) {
	for _, give := range []string{"", "140.112.0.0", "140.112.0.0/33", "::/64"} {
		if _, err := ParseNetwork(give); err == nil {
			t.Errorf("ParseNetwork(%q) succeeded, want error", give)
		}
	}
}

func TestSocketPairInverse(t *testing.T) {
	s := SocketPair{Proto: TCP, SrcAddr: 1, SrcPort: 2, DstAddr: 3, DstPort: 4}
	inv := s.Inverse()
	want := SocketPair{Proto: TCP, SrcAddr: 3, SrcPort: 4, DstAddr: 1, DstPort: 2}
	if inv != want {
		t.Fatalf("Inverse() = %+v, want %+v", inv, want)
	}
}

// TestSocketPairInverseInvolution property: the inverse of the inverse is
// the original pair.
func TestSocketPairInverseInvolution(t *testing.T) {
	f := func(proto uint8, sa, da uint32, sp, dp uint16) bool {
		s := SocketPair{Proto: Proto(proto), SrcAddr: Addr(sa), SrcPort: sp, DstAddr: Addr(da), DstPort: dp}
		return s.Inverse().Inverse() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeyInjective property: distinct socket pairs produce distinct keys,
// and a pair and its inverse differ unless the pair is symmetric.
func TestKeyInjective(t *testing.T) {
	f := func(proto uint8, sa, da uint32, sp, dp uint16) bool {
		s := SocketPair{Proto: Proto(proto), SrcAddr: Addr(sa), SrcPort: sp, DstAddr: Addr(da), DstPort: dp}
		symmetric := sa == da && sp == dp
		return (s.Key() == s.Inverse().Key()) == symmetric
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyEncoding(t *testing.T) {
	s := SocketPair{Proto: TCP, SrcAddr: AddrFrom4(1, 2, 3, 4), SrcPort: 0x1234, DstAddr: AddrFrom4(5, 6, 7, 8), DstPort: 0x5678}
	key := s.Key()
	want := [KeySize]byte{6, 1, 2, 3, 4, 0x12, 0x34, 5, 6, 7, 8, 0x56, 0x78}
	if key != want {
		t.Fatalf("Key() = %v, want %v", key, want)
	}
}

// TestHolePunchKeyCorrespondence checks the Section 4.2 property the
// bitmap filter relies on: the outbound partial tuple of σ equals the
// partial tuple of σ̄ for the matching inbound packet.
func TestHolePunchKeyCorrespondence(t *testing.T) {
	f := func(proto uint8, sa, da uint32, sp, dp, rewrittenPort uint16) bool {
		out := SocketPair{Proto: Proto(proto), SrcAddr: Addr(sa), SrcPort: sp, DstAddr: Addr(da), DstPort: dp}
		// Inbound reply from the same remote host but any source port.
		in := SocketPair{Proto: Proto(proto), SrcAddr: Addr(da), SrcPort: rewrittenPort, DstAddr: Addr(sa), DstPort: sp}
		outKey := out.AppendHolePunchKey(nil)
		inKey := in.Inverse().AppendHolePunchKey(nil)
		return string(outKey) == string(inKey)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHolePunchKeySize(t *testing.T) {
	var s SocketPair
	if got := len(s.AppendHolePunchKey(nil)); got != HolePunchKeySize {
		t.Fatalf("hole-punch key length = %d, want %d", got, HolePunchKeySize)
	}
	if got := len(s.AppendKey(nil)); got != KeySize {
		t.Fatalf("full key length = %d, want %d", got, KeySize)
	}
}

func TestTCPFlags(t *testing.T) {
	tests := []struct {
		give TCPFlags
		want string
	}{
		{SYN, "S"},
		{SYN | ACK, "SA"},
		{FIN | ACK, "FA"},
		{RST, "R"},
		{0, "."},
		{FIN | SYN | RST | PSH | ACK | URG, "FSRPAU"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("TCPFlags(%08b).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
	if !(SYN | ACK).Has(SYN) || (SYN | ACK).Has(FIN) {
		t.Fatal("Has misbehaves")
	}
}

func TestClassify(t *testing.T) {
	net := CIDR(AddrFrom4(140, 112, 0, 0), 16)
	inside := AddrFrom4(140, 112, 9, 9)
	outside := AddrFrom4(9, 9, 9, 9)
	if got := Classify(SocketPair{SrcAddr: inside, DstAddr: outside}, net); got != Outbound {
		t.Fatalf("packet from inside = %v, want outbound", got)
	}
	if got := Classify(SocketPair{SrcAddr: outside, DstAddr: inside}, net); got != Inbound {
		t.Fatalf("packet from outside = %v, want inbound", got)
	}
}

func TestDirectionString(t *testing.T) {
	if Outbound.String() != "outbound" || Inbound.String() != "inbound" {
		t.Fatal("direction names wrong")
	}
	if Direction(9).String() != "direction(9)" {
		t.Fatal("unknown direction name wrong")
	}
}

func TestIsTCPData(t *testing.T) {
	p := Packet{Pair: SocketPair{Proto: TCP}, Payload: []byte("x")}
	if !p.IsTCPData() {
		t.Fatal("TCP packet with payload should be data")
	}
	p.Payload = nil
	if p.IsTCPData() {
		t.Fatal("TCP packet without payload is not data")
	}
	p.Pair.Proto = UDP
	p.Payload = []byte("x")
	if p.IsTCPData() {
		t.Fatal("UDP packet is never TCP data")
	}
}

func TestSocketPairString(t *testing.T) {
	s := SocketPair{Proto: UDP, SrcAddr: AddrFrom4(1, 2, 3, 4), SrcPort: 53, DstAddr: AddrFrom4(5, 6, 7, 8), DstPort: 9999}
	want := "UDP 1.2.3.4:53 -> 5.6.7.8:9999"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
