package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"p2pbound/internal/bloom"
	"p2pbound/internal/hashes"
	"p2pbound/internal/stats"
)

// A1Result reproduces the Section 5.1 analysis: the capacity bounds of the
// worked example ("if we adopt a bitmap filter of size N=2^20 with k=4 and
// Δt=5 s, the number of active connections inside a time unit T_e=20 s
// should be less than 167K, 125K and 83K for p≈10%, 5% and 1%"), plus a
// Monte-Carlo cross-check of the penetration probability formula.
type A1Result struct {
	NBits      uint
	K          int
	DeltaTSec  int
	Rows       []A1Row
	MemoryKB   int
	MonteCarlo []A1MonteCarlo
}

// A1Row is one desired-penetration row of the worked example.
type A1Row struct {
	P          float64 // desired penetration probability
	Capacity   int     // Equation 6 bound on c
	PaperBound int     // the value the paper states (thousands rounded)
	OptimalM   float64 // Equation 5 at the capacity bound
}

// A1MonteCarlo cross-checks Equation 3 against a real bloom filter filled
// with c random connection keys.
type A1MonteCarlo struct {
	C          int
	M          int
	Analytical float64 // Equation 3
	Measured   float64 // observed false-positive rate
}

// RunA1 evaluates the closed forms and the Monte-Carlo check.
func RunA1(seed uint64) (*A1Result, error) {
	const (
		nbits = 20
		k     = 4
		dt    = 5
	)
	res := &A1Result{
		NBits:     nbits,
		K:         k,
		DeltaTSec: dt,
		MemoryKB:  k * (1 << nbits) / 8 / 1024,
	}
	for _, row := range []struct {
		p     float64
		paper int
	}{
		{0.10, 167_000},
		{0.05, 125_000},
		{0.01, 83_000},
	} {
		c := bloom.CapacityBound(row.p, nbits)
		res.Rows = append(res.Rows, A1Row{
			P:          row.p,
			Capacity:   c,
			PaperBound: row.paper,
			OptimalM:   bloom.OptimalM(c, nbits),
		})
	}

	// Monte-Carlo: fill a 2^20-bit filter with c random 13-byte keys and
	// measure how often a fresh random key penetrates.
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
	key := make([]byte, 13)
	draw := func() []byte {
		for i := range key {
			key[i] = byte(rng.IntN(256))
		}
		return key
	}
	for _, mc := range []struct{ c, m int }{
		{15_000, 3}, // the trace's average active connections, paper setup
		{83_000, 3},
		{125_000, 3},
	} {
		f, err := bloom.New(hashes.FNVDouble, mc.m, nbits)
		if err != nil {
			return nil, err
		}
		for i := 0; i < mc.c; i++ {
			f.Add(draw())
		}
		const probes = 200_000
		hits := 0
		for i := 0; i < probes; i++ {
			if f.Test(draw()) {
				hits++
			}
		}
		res.MonteCarlo = append(res.MonteCarlo, A1MonteCarlo{
			C:          mc.c,
			M:          mc.m,
			Analytical: bloom.Penetration(mc.c, mc.m, nbits),
			Measured:   float64(hits) / float64(probes),
		})
	}
	return res, nil
}

// Render prints the analysis table.
func (r *A1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A1: capacity bounds for N=2^%d, k=%d, Δt=%d s (T_e=%d s), %d KB bitmap\n",
		r.NBits, r.K, r.DeltaTSec, r.K*r.DeltaTSec, r.MemoryKB)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			stats.Pct(row.P),
			fmt.Sprintf("%d", row.Capacity),
			fmt.Sprintf("%d", row.PaperBound),
			fmt.Sprintf("%.2f", row.OptimalM),
		})
	}
	b.WriteString(stats.Table([]string{"p", "max conns (Eq 6)", "paper", "optimal m (Eq 5)"}, rows))
	b.WriteString("\nA1: Monte-Carlo penetration cross-check (Equation 3 vs measured)\n")
	rows = rows[:0]
	for _, mc := range r.MonteCarlo {
		rows = append(rows, []string{
			fmt.Sprintf("%d", mc.C),
			fmt.Sprintf("%d", mc.M),
			fmt.Sprintf("%.5f", mc.Analytical),
			fmt.Sprintf("%.5f", mc.Measured),
		})
	}
	b.WriteString(stats.Table([]string{"c", "m", "p (Eq 3)", "p measured"}, rows))
	return b.String()
}
