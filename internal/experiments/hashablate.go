package experiments

import (
	"fmt"
	"strings"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
)

// X4Row is one hash construction's measurement.
type X4Row struct {
	Kind  hashes.Kind
	NBits uint
	Div   Divergence
}

// X4Result compares the three hash-function families at a deliberately
// small bit-vector size where hash quality is visible in the
// false-positive rate. The paper leaves the hash construction open ("all
// the bloom filters in the bitmap share the same m hash functions"); this
// ablation shows the choice does not matter for a well-mixed family.
type X4Result struct {
	Rows []X4Row
}

// RunX4 measures divergence from exact state per hash family.
func RunX4(packets []packet.Packet, seed uint64) (*X4Result, error) {
	res := &X4Result{}
	for _, nbits := range []uint{12, 16} {
		for _, kind := range []hashes.Kind{hashes.FNVDouble, hashes.Jenkins, hashes.Mix} {
			cfg := core.Config{
				K: 4, NBits: nbits, M: 3, DeltaT: 5 * time.Second,
				HashKind: kind, Seed: seed,
			}
			div, err := diverge(packets, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, X4Row{Kind: kind, NBits: nbits, Div: div})
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r *X4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kind.String(),
			fmt.Sprintf("2^%d", row.NBits),
			stats.Pct(row.Div.FPRateStateless()),
			stats.Pct(row.Div.FNRate()),
			fmt.Sprintf("%.4f", row.Div.Utilization),
		})
	}
	var b strings.Builder
	b.WriteString("X4: hash-family comparison at collision-prone vector sizes\n")
	b.WriteString(stats.Table([]string{"family", "N", "FP/stateless", "FN rate", "util"}, rows))
	return b.String()
}
