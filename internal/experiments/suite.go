// Package experiments contains one driver per table and figure of the
// paper's evaluation (see the per-experiment index in DESIGN.md): T2 and
// F2–F5 reproduce the Section 3.3 trace measurements, A1 the Section 5.1
// false-positive analysis, F8 and F9 the Section 5.3 simulations, and
// X1–X3 are the ablations this reproduction adds.
//
// Every driver returns a structured result with a Render method that
// prints the same rows or series the paper reports, paired with the
// published values where the paper states them.
package experiments

import (
	"fmt"
	"time"

	"p2pbound/internal/analyzer"
	"p2pbound/internal/packet"
	"p2pbound/internal/trace"
)

// Suite bundles a generated trace with its analyzer report so the
// measurement experiments share one pass.
type Suite struct {
	Trace  *trace.Trace
	Report *analyzer.Report
}

// NewSuite generates the trace for cfg and runs the traffic analyzer over
// it.
func NewSuite(cfg trace.Config) (*Suite, error) {
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	a, err := analyzer.New(analyzer.DefaultConfig(cfg.ClientNet))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i := range tr.Packets {
		a.Feed(&tr.Packets[i])
	}
	a.FinalizePortIdent()
	return &Suite{Trace: tr, Report: a.BuildReport()}, nil
}

// SuiteFromPackets analyzes an existing packet stream (e.g. one read back
// from a pcap file); the Trace field stays nil.
func SuiteFromPackets(packets []packet.Packet, clientNet packet.Network) (*Suite, error) {
	a, err := analyzer.New(analyzer.DefaultConfig(clientNet))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for i := range packets {
		a.Feed(&packets[i])
	}
	a.FinalizePortIdent()
	return &Suite{Report: a.BuildReport()}, nil
}

// DefaultTraceConfig is the standard experiment workload: the paper's
// distribution shapes at the given scale of its 146.7 Mbps / 250 conns-per-
// second load.
func DefaultTraceConfig(duration time.Duration, scale float64, seed uint64) trace.Config {
	return trace.DefaultConfig(duration, scale, seed)
}
