package experiments

import (
	"fmt"
	"strings"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/naive"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
)

// Divergence quantifies how the bitmap filter's admission decisions differ
// from the exact naive timer table with the same expiry T_e = k·Δt.
//
//   - FalsePositives: inbound packets the bitmap admits although exact
//     state has expired or never existed (hash collisions plus the
//     mark-all/rotate window keeping flows alive up to Δt longer).
//   - FalseNegatives: inbound packets the bitmap would subject to the P_d
//     draw although exact state exists (rotation forgetting flows up to
//     Δt early).
type Divergence struct {
	Inbound        int64
	Stateless      int64 // inbound packets with no live exact state
	FalsePositives int64
	FalseNegatives int64
	Utilization    float64 // current bit-vector utilization at the end
}

// FPRate returns the false-positive fraction of inbound packets.
func (d Divergence) FPRate() float64 {
	if d.Inbound == 0 {
		return 0
	}
	return float64(d.FalsePositives) / float64(d.Inbound)
}

// FPRateStateless returns false positives per stateless inbound packet —
// the penetration probability of Section 5.1, measured on real traffic.
func (d Divergence) FPRateStateless() float64 {
	if d.Stateless == 0 {
		return 0
	}
	return float64(d.FalsePositives) / float64(d.Stateless)
}

// FNRate returns the false-negative fraction of inbound packets.
func (d Divergence) FNRate() float64 {
	if d.Inbound == 0 {
		return 0
	}
	return float64(d.FalseNegatives) / float64(d.Inbound)
}

// diverge replays the trace through a bitmap filter and a matched exact
// reference in monitor mode (P_d = 0, so both see identical traffic) and
// tallies decision differences.
func diverge(packets []packet.Packet, cfg core.Config) (Divergence, error) {
	bitmap, err := core.New(cfg)
	if err != nil {
		return Divergence{}, err
	}
	exact, err := naive.New(bitmap.TE(), cfg.HolePunch, cfg.Seed)
	if err != nil {
		return Divergence{}, err
	}
	var d Divergence
	for i := range packets {
		pkt := &packets[i]
		bitmap.Advance(pkt.TS)
		exact.Advance(pkt.TS)
		if pkt.Dir == packet.Inbound {
			d.Inbound++
			bm := bitmap.Contains(pkt.Pair)
			nv := exact.Contains(pkt.Pair, pkt.TS)
			if !nv {
				d.Stateless++
			}
			switch {
			case bm && !nv:
				d.FalsePositives++
			case !bm && nv:
				d.FalseNegatives++
			}
		}
		bitmap.Process(pkt, 0)
		exact.Process(pkt, 0)
	}
	d.Utilization = bitmap.Utilization()
	return d, nil
}

// X1Row is one parameter point of the X1 sweep.
type X1Row struct {
	K      int
	NBits  uint
	M      int
	DeltaT time.Duration
	Bytes  int
	Div    Divergence
}

// X1Result sweeps the bitmap filter's parameters (Section 4.3's k, n, m,
// Δt discussion) and reports the divergence from exact state at each
// point.
type X1Result struct {
	Rows []X1Row
}

// RunX1 executes the sweep on the given trace.
func RunX1(packets []packet.Packet, seed uint64) (*X1Result, error) {
	res := &X1Result{}
	add := func(k int, nbits uint, m int, dt time.Duration) error {
		cfg := core.Config{K: k, NBits: nbits, M: m, DeltaT: dt, Seed: seed}
		div, err := diverge(packets, cfg)
		if err != nil {
			return err
		}
		bitmap, err := core.New(cfg)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, X1Row{K: k, NBits: nbits, M: m, DeltaT: dt, Bytes: bitmap.Bytes(), Div: div})
		return nil
	}
	// Vector-size sweep at the paper's k=4, m=3, Δt=5 s.
	for _, nbits := range []uint{12, 14, 16, 18, 20} {
		if err := add(4, nbits, 3, 5*time.Second); err != nil {
			return nil, err
		}
	}
	// Hash-count sweep at N=2^16 where collisions are visible.
	for _, m := range []int{1, 2, 3, 4, 6} {
		if err := add(4, 16, m, 5*time.Second); err != nil {
			return nil, err
		}
	}
	// Rotation-granularity sweep at fixed T_e = 20 s.
	for _, kdt := range []struct {
		k  int
		dt time.Duration
	}{
		{2, 10 * time.Second},
		{4, 5 * time.Second},
		{10, 2 * time.Second},
		{20, time.Second},
	} {
		if err := add(kdt.k, 20, 3, kdt.dt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints the sweep table.
func (r *X1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.K),
			fmt.Sprintf("2^%d", row.NBits),
			fmt.Sprintf("%d", row.M),
			row.DeltaT.String(),
			fmt.Sprintf("%d KiB", row.Bytes/1024),
			stats.Pct(row.Div.FPRateStateless()),
			stats.Pct(row.Div.FNRate()),
			fmt.Sprintf("%.4f", row.Div.Utilization),
		})
	}
	var b strings.Builder
	b.WriteString("X1: parameter sweep — divergence from exact per-flow state\n")
	b.WriteString(stats.Table(
		[]string{"k", "N", "m", "Δt", "memory", "FP/stateless", "FN rate", "util"}, rows))
	return b.String()
}

// X2Result isolates the rotation-granularity design decision: the paper
// replaces exact per-entry timers with coarse Δt rotation; this measures
// the admission divergence that introduces at the paper's configuration.
type X2Result struct {
	Config core.Config
	Div    Divergence
}

// RunX2 measures the divergence at the paper's Section 5.3 configuration.
func RunX2(packets []packet.Packet, seed uint64) (*X2Result, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	div, err := diverge(packets, cfg)
	if err != nil {
		return nil, err
	}
	return &X2Result{Config: cfg, Div: div}, nil
}

// Render prints the divergence summary.
func (r *X2Result) Render() string {
	return fmt.Sprintf(
		"X2: bitmap vs exact timer table (N=2^%d, k=%d, Δt=%v, T_e=%v)\n"+
			"  inbound packets        %d\n"+
			"  false positives        %d (%s) — admitted without live state\n"+
			"  false negatives        %d (%s) — challenged despite live state\n"+
			"  final bit utilization  %.5f\n",
		r.Config.NBits, r.Config.K, r.Config.DeltaT,
		time.Duration(r.Config.K)*r.Config.DeltaT,
		r.Div.Inbound,
		r.Div.FalsePositives, stats.Pct(r.Div.FPRate()),
		r.Div.FalseNegatives, stats.Pct(r.Div.FNRate()),
		r.Div.Utilization)
}

// X3Result evaluates hole-punching support (Section 4.2's partial-tuple
// hashing): sessions where the peer's reply arrives from a different
// remote port than the client's outbound punch targeted.
type X3Result struct {
	Sessions          int
	AdmittedFull      int // full-tuple hashing (hole punching unsupported)
	AdmittedHolePunch int // partial-tuple hashing
}

// RunX3 synthesizes NAT-traversal sessions and measures admission under
// both hash modes.
func RunX3(sessions int, seed uint64) (*X3Result, error) {
	mk := func(holePunch bool) (*core.Filter, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.HolePunch = holePunch
		return core.New(cfg)
	}
	full, err := mk(false)
	if err != nil {
		return nil, err
	}
	punched, err := mk(true)
	if err != nil {
		return nil, err
	}

	res := &X3Result{Sessions: sessions}
	client := packet.AddrFrom4(140, 112, 1, 9)
	for i := 0; i < sessions; i++ {
		remote := packet.AddrFrom4(8, 8, byte(i>>8), byte(i))
		punchPort := uint16(20000 + i%20000)
		clientPort := uint16(33000 + i%30000)
		// The client punches: outbound UDP to remote:punchPort.
		out := &packet.Packet{
			TS:  time.Duration(i) * time.Millisecond,
			Dir: packet.Outbound,
			Len: 60,
			Pair: packet.SocketPair{
				Proto:   packet.UDP,
				SrcAddr: client, SrcPort: clientPort,
				DstAddr: remote, DstPort: punchPort,
			},
		}
		// The peer replies from a different source port, as a symmetric
		// NAT rewrites it.
		in := &packet.Packet{
			TS:  out.TS + 30*time.Millisecond,
			Dir: packet.Inbound,
			Len: 60,
			Pair: packet.SocketPair{
				Proto:   packet.UDP,
				SrcAddr: remote, SrcPort: punchPort + 7,
				DstAddr: client, DstPort: clientPort,
			},
		}
		for _, f := range []*core.Filter{full, punched} {
			f.Advance(out.TS)
			f.Process(out, 1)
			f.Advance(in.TS)
		}
		if full.Process(in, 1) == core.Pass {
			res.AdmittedFull++
		}
		if punched.Process(in, 1) == core.Pass {
			res.AdmittedHolePunch++
		}
	}
	return res, nil
}

// Render prints the hole-punching comparison.
func (r *X3Result) Render() string {
	return fmt.Sprintf(
		"X3: hole-punching support (%d NAT-traversal sessions, peer replies from a shifted port)\n"+
			"  admitted with full-tuple hashing     %d\n"+
			"  admitted with partial-tuple hashing  %d (hole punching enabled)\n",
		r.Sessions, r.AdmittedFull, r.AdmittedHolePunch)
}
