package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/netsim"
	"p2pbound/internal/packet"
	"p2pbound/internal/red"
	"p2pbound/internal/spi"
	"p2pbound/internal/stats"
)

// F8Result reproduces Figure 8: the per-time-unit packet drop rates of the
// SPI filter and the bitmap filter on the same trace, which the paper
// shows hugging a slope-1 line with averages of 1.56 % (SPI) and 1.51 %
// (bitmap).
type F8Result struct {
	SPIDropRate    float64
	BitmapDropRate float64
	// Scatter pairs each time bucket's SPI drop rate (x) with the bitmap
	// filter's (y).
	Scatter []stats.Point
	// Slope is the least-squares slope through the origin; Corr the
	// Pearson correlation of the two series.
	Slope float64
	Corr  float64
	// SPIPeakFlows is the baseline's peak exact-state table size — the
	// O(n) cost the bitmap filter's fixed memory replaces.
	SPIPeakFlows int
	BitmapBytes  int
}

// RunF8 replays the trace through both filters with the paper's Figure 8
// settings: the SPI filter deletes idle connections after 240 s, the
// bitmap filter is the 512 KB {4×2^20} configuration with T_e=20 s and
// Δt=5 s, and both drop every stateless inbound packet (P_d = 1).
func RunF8(packets []packet.Packet, seed uint64) (*F8Result, error) {
	spiFilter, err := spi.New(spi.Config{IdleTimeout: 240 * time.Second, Seed: seed})
	if err != nil {
		return nil, err
	}
	bmCfg := core.DefaultConfig()
	bmCfg.Seed = seed
	bitmap, err := core.New(bmCfg)
	if err != nil {
		return nil, err
	}

	// Five-second drop-rate buckets: single seconds are dominated by a
	// handful of events at small scale, and the paper's Figure 8 plots
	// per-time-unit rates, not per-second ones.
	replayCfg := netsim.Config{Prober: red.Always(1), SeriesBucket: 5 * time.Second}
	spiRes, err := netsim.Replay(packets, spiFilter, replayCfg)
	if err != nil {
		return nil, err
	}
	bmRes, err := netsim.Replay(packets, bitmap, replayCfg)
	if err != nil {
		return nil, err
	}

	res := &F8Result{
		SPIDropRate:    spiRes.DropRate(),
		BitmapDropRate: bmRes.DropRate(),
		SPIPeakFlows:   spiFilter.Stats().PeakFlows,
		BitmapBytes:    bitmap.Bytes(),
	}
	xs := spiRes.DropRateSeries()
	ys := bmRes.DropRateSeries()
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var sxx, sxy, sx, sy float64
	for i := 0; i < n; i++ {
		res.Scatter = append(res.Scatter, stats.Point{X: xs[i], Y: ys[i]})
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		sx += xs[i]
		sy += ys[i]
	}
	if sxx > 0 {
		res.Slope = sxy / sxx
	}
	if n > 1 {
		mx, my := sx/float64(n), sy/float64(n)
		var cov, vx, vy float64
		for i := 0; i < n; i++ {
			cov += (xs[i] - mx) * (ys[i] - my)
			vx += (xs[i] - mx) * (xs[i] - mx)
			vy += (ys[i] - my) * (ys[i] - my)
		}
		if vx > 0 && vy > 0 {
			res.Corr = cov / math.Sqrt(vx*vy)
		}
	}
	return res, nil
}

// Render prints the Figure 8 comparison with the drop-rate scatter.
func (r *F8Result) Render() string {
	plot := stats.AsciiPlot{Width: 56, Height: 10, XLabel: "SPI drop rate", YLabel: "bitmap drop rate"}
	scatter := plot.Lines([]stats.Series{{Name: "per-second drop rates", Glyph: 'o', Points: r.Scatter}})
	return fmt.Sprintf(
		"F8: SPI vs bitmap filter drop rates (P_d = 1, no throughput limit)\n"+
			"  SPI average drop rate     %7s  (paper: 1.56%%)\n"+
			"  bitmap average drop rate  %7s  (paper: 1.51%%)\n"+
			"  scatter slope (origin)    %7.3f  (paper: ≈1.0)\n"+
			"  correlation               %7.3f\n"+
			"  SPI peak tracked flows    %7d  (O(n) state)\n"+
			"  bitmap memory             %7d bytes (constant)\n%s",
		stats.Pct(r.SPIDropRate), stats.Pct(r.BitmapDropRate),
		r.Slope, r.Corr, r.SPIPeakFlows, r.BitmapBytes, scatter)
}

// F9Result reproduces Figure 9: upload throughput before and after the
// bitmap filter limits inbound connections with the RED-style P_d ramp and
// the blocked-connection memory.
type F9Result struct {
	LowBps, HighBps float64
	// Means and maxima of the original and filtered series, bits/sec.
	OriginalUpMean, FilteredUpMean     float64
	OriginalUpMax, FilteredUpMax       float64
	OriginalDownMean, FilteredDownMean float64
	// UpSeries pairs per-second original (X) and filtered (Y) upload
	// throughput for plotting the two Figure 9 panels.
	UpSeries      []stats.Point
	FilterDropped int64
	Blocked       int64
	// OverHighFrac is the fraction of filtered per-second upload samples
	// exceeding H — how well the bound holds.
	OverHighFrac float64
}

// RunF9 replays the trace through the paper's Figure 9 configuration: the
// {4×2^20} bitmap filter, P_d ramping linearly between lowBps and highBps
// of measured uplink throughput, and blocked connections staying blocked.
func RunF9(packets []packet.Packet, lowBps, highBps float64, seed uint64) (*F9Result, error) {
	bmCfg := core.DefaultConfig()
	bmCfg.Seed = seed
	bitmap, err := core.New(bmCfg)
	if err != nil {
		return nil, err
	}
	prober, err := red.NewLinear(lowBps, highBps)
	if err != nil {
		return nil, err
	}
	resSim, err := netsim.Replay(packets, bitmap, netsim.Config{
		Prober:           prober,
		BlockConnections: true,
	})
	if err != nil {
		return nil, err
	}

	res := &F9Result{
		LowBps:           lowBps,
		HighBps:          highBps,
		OriginalUpMean:   resSim.OriginalUp.MeanRate(),
		FilteredUpMean:   resSim.FilteredUp.MeanRate(),
		OriginalUpMax:    resSim.OriginalUp.MaxRate(),
		FilteredUpMax:    resSim.FilteredUp.MaxRate(),
		OriginalDownMean: resSim.OriginalDown.MeanRate(),
		FilteredDownMean: resSim.FilteredDown.MeanRate(),
		FilterDropped:    resSim.FilterDropped,
		Blocked:          resSim.Blocked,
	}
	orig := resSim.OriginalUp.Rates()
	filt := resSim.FilteredUp.Rates()
	over := 0
	for i := range filt {
		x := 0.0
		if i < len(orig) {
			x = orig[i]
		}
		res.UpSeries = append(res.UpSeries, stats.Point{X: x, Y: filt[i]})
		if filt[i] > highBps {
			over++
		}
	}
	if len(filt) > 0 {
		res.OverHighFrac = float64(over) / float64(len(filt))
	}
	return res, nil
}

// Render prints the Figure 9 limiting summary.
func (r *F9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"F9: upload limiting with L=%s, H=%s (blocked connections stay blocked)\n"+
			"  original upload    mean %10s  max %10s\n"+
			"  filtered upload    mean %10s  max %10s\n"+
			"  original download  mean %10s\n"+
			"  filtered download  mean %10s  (paper: download shrinks too)\n"+
			"  filter drops %d, blocked-connection drops %d\n"+
			"  filtered seconds above H: %s\n",
		stats.Mbps(r.LowBps), stats.Mbps(r.HighBps),
		stats.Mbps(r.OriginalUpMean), stats.Mbps(r.OriginalUpMax),
		stats.Mbps(r.FilteredUpMean), stats.Mbps(r.FilteredUpMax),
		stats.Mbps(r.OriginalDownMean), stats.Mbps(r.FilteredDownMean),
		r.FilterDropped, r.Blocked, stats.Pct(r.OverHighFrac))
	orig := make([]float64, len(r.UpSeries))
	filt := make([]float64, len(r.UpSeries))
	for i, p := range r.UpSeries {
		orig[i] = p.X / 1e6
		filt[i] = p.Y / 1e6
	}
	plot := stats.AsciiPlot{Width: 56, Height: 10, XLabel: "seconds", YLabel: "upload Mbps"}
	b.WriteString(plot.Lines([]stats.Series{
		stats.SeriesFromRates("original", '.', orig),
		stats.SeriesFromRates("filtered", '#', filt),
	}))
	return b.String()
}
