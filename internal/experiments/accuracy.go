package experiments

import (
	"fmt"
	"sort"
	"strings"

	"p2pbound/internal/analyzer"
	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
	"p2pbound/internal/trace"
)

// T1Row is one application's identification accuracy.
type T1Row struct {
	App       l7.App
	Truth     int // ground-truth connections of this application
	Predicted int // connections the analyzer labelled with it
	Correct   int // intersection
}

// Precision is the fraction of predictions that were right.
func (r T1Row) Precision() float64 {
	if r.Predicted == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Predicted)
}

// Recall is the fraction of true connections that were found.
func (r T1Row) Recall() float64 {
	if r.Truth == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Truth)
}

// T1Result evaluates the Table 1 identification pipeline against the
// generator's ground truth: for every connection both the analyzer and
// the generator know about, does the assigned application match? The
// paper could not do this (no ground truth on a live campus link); the
// synthetic substitution makes the classifier testable.
type T1Result struct {
	Rows []T1Row
	// Matched is the number of connections present in both views.
	Matched int
	// MethodCounts tallies how connections were identified.
	MethodCounts map[string]int
}

// RunT1Accuracy matches analyzer connections against ground-truth flows
// by five tuple. Flows whose packets were entirely clipped by the capture
// window are skipped.
func (s *Suite) RunT1Accuracy() *T1Result {
	if s.Trace == nil {
		return &T1Result{MethodCounts: map[string]int{}}
	}
	a, err := analyzer.New(analyzer.DefaultConfig(s.Trace.Config.ClientNet))
	if err != nil {
		return &T1Result{MethodCounts: map[string]int{}}
	}
	for i := range s.Trace.Packets {
		a.Feed(&s.Trace.Packets[i])
	}
	a.FinalizePortIdent()

	byKey := make(map[[packet.KeySize]byte]*analyzer.Connection)
	for _, c := range a.Connections() {
		byKey[c.Pair.Key()] = c
	}

	res := &T1Result{MethodCounts: make(map[string]int)}
	rows := make(map[l7.App]*T1Row)
	row := func(app l7.App) *T1Row {
		r, ok := rows[app]
		if !ok {
			r = &T1Row{App: app}
			rows[app] = r
		}
		return r
	}
	for i := range s.Trace.Flows {
		f := &s.Trace.Flows[i]
		conn := lookupFlow(byKey, f)
		if conn == nil {
			continue // clipped by the capture window
		}
		res.Matched++
		row(f.App).Truth++
		row(conn.App).Predicted++
		if conn.App == f.App {
			row(f.App).Correct++
		}
		res.MethodCounts[conn.Method.String()]++
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, *r)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Truth > res.Rows[j].Truth })
	return res
}

// lookupFlow finds the analyzer connection matching a ground-truth flow
// in either orientation.
func lookupFlow(byKey map[[packet.KeySize]byte]*analyzer.Connection, f *trace.Flow) *analyzer.Connection {
	pair := f.Pair()
	if c, ok := byKey[pair.Key()]; ok {
		return c
	}
	if c, ok := byKey[pair.Inverse().Key()]; ok {
		return c
	}
	return nil
}

// Render prints the per-application precision/recall table.
func (r *T1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.App.String(),
			fmt.Sprintf("%d", row.Truth),
			fmt.Sprintf("%d", row.Predicted),
			stats.Pct(row.Precision()),
			stats.Pct(row.Recall()),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T1: identification accuracy vs ground truth (%d matched connections)\n", r.Matched)
	b.WriteString(stats.Table([]string{"application", "truth", "predicted", "precision", "recall"}, rows))
	if len(r.MethodCounts) > 0 {
		methods := make([]string, 0, len(r.MethodCounts))
		for m := range r.MethodCounts {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		b.WriteString("  identification methods: ")
		for i, m := range methods {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %d", m, r.MethodCounts[m])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
