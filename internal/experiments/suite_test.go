package experiments

import (
	"testing"
	"time"

	"p2pbound/internal/trace"
)

func TestSuiteFromPackets(t *testing.T) {
	tr, err := trace.Generate(trace.DefaultConfig(10*time.Second, 0.03, 3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SuiteFromPackets(tr.Packets, tr.Config.ClientNet)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trace != nil {
		t.Fatal("packet-built suite must not claim a trace")
	}
	if got := s.RunSummary().Connections; got < 50 {
		t.Fatalf("connections = %d", got)
	}
	// Measurement experiments work without a trace...
	if len(s.RunT2().Rows) == 0 {
		t.Fatal("T2 empty")
	}
	if s.RunF4().N == 0 {
		t.Fatal("F4 empty")
	}
	// ...and the ground-truth experiment degrades gracefully.
	if acc := s.RunT1Accuracy(); acc.Matched != 0 {
		t.Fatalf("accuracy without ground truth matched %d", acc.Matched)
	}
}

func TestNewSuiteRejectsBadConfig(t *testing.T) {
	cfg := DefaultTraceConfig(0, 1, 1) // zero duration
	if _, err := NewSuite(cfg); err == nil {
		t.Fatal("invalid trace config accepted")
	}
}

// TestSuiteDeterminism: two suites over the same config agree on the
// headline report numbers.
func TestSuiteDeterminism(t *testing.T) {
	cfg := DefaultTraceConfig(10*time.Second, 0.03, 99)
	a, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Summary != b.Report.Summary {
		t.Fatalf("summaries differ:\n%+v\n%+v", a.Report.Summary, b.Report.Summary)
	}
}
