package experiments

import (
	"fmt"
	"strings"

	"p2pbound/internal/l7"
	"p2pbound/internal/stats"
)

// T2Result reproduces Table 2: the protocol distribution of the trace.
type T2Result struct {
	Rows  []T2Row
	Total int
}

// T2Row pairs the measured shares with the published values.
type T2Row struct {
	Group         string
	ConnFrac      float64
	ByteFrac      float64
	PaperConnFrac float64
	PaperByteFrac float64
}

// paperTable2 holds the published Table 2 values.
var paperTable2 = map[string][2]float64{
	"HTTP":       {0.0217, 0.05},
	"bittorrent": {0.4790, 0.18},
	"gnutella":   {0.0756, 0.16},
	"edonkey":    {0.2200, 0.21},
	"UNKNOWN":    {0.1755, 0.35},
	"Others":     {0.0282, 0.05},
}

// RunT2 derives the Table 2 distribution from the suite's report.
func (s *Suite) RunT2() *T2Result {
	res := &T2Result{Total: s.Report.Summary.Connections}
	for _, row := range s.Report.Table2 {
		paper := paperTable2[row.Group]
		res.Rows = append(res.Rows, T2Row{
			Group:         row.Group,
			ConnFrac:      row.Connections,
			ByteFrac:      row.Utilization,
			PaperConnFrac: paper[0],
			PaperByteFrac: paper[1],
		})
	}
	return res
}

// Render prints the Table 2 reproduction.
func (r *T2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Group,
			stats.Pct(row.ConnFrac), stats.Pct(row.PaperConnFrac),
			stats.Pct(row.ByteFrac), stats.Pct(row.PaperByteFrac),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T2: protocol distribution (%d connections)\n", r.Total)
	b.WriteString(stats.Table(
		[]string{"Protocol", "Conns", "(paper)", "Bytes", "(paper)"}, rows))
	return b.String()
}

// PortCDFResult reproduces Figure 2 (TCP) or Figure 3 (UDP): the port
// number CDF per class.
type PortCDFResult struct {
	Figure  string
	Classes map[string][]stats.Point
	// Checkpoints samples F(port) at structurally meaningful ports.
	Checkpoints []PortCheckpoint
}

// PortCheckpoint is F(port) for one class at one port.
type PortCheckpoint struct {
	Class string
	Port  int
	Frac  float64
}

// RunF2 builds the TCP port CDFs of Figure 2.
func (s *Suite) RunF2() *PortCDFResult { return s.portCDF("F2", true) }

// RunF3 builds the UDP port CDFs of Figure 3.
func (s *Suite) RunF3() *PortCDFResult { return s.portCDF("F3", false) }

func (s *Suite) portCDF(figure string, tcp bool) *PortCDFResult {
	res := &PortCDFResult{Figure: figure, Classes: make(map[string][]stats.Point, l7.NumClasses)}
	src := &s.Report.UDPPorts
	if tcp {
		src = &s.Report.TCPPorts
	}
	for class := l7.Class(0); int(class) < l7.NumClasses; class++ {
		cdf := &src[class]
		if cdf.N() == 0 {
			continue
		}
		res.Classes[class.String()] = cdf.Points(40)
		for _, port := range []int{443, 1024, 4662, 6881, 10000, 40000} {
			res.Checkpoints = append(res.Checkpoints, PortCheckpoint{
				Class: class.String(), Port: port, Frac: cdf.At(float64(port)),
			})
		}
	}
	return res
}

// Render prints the checkpoint table (the CDF curves are in Classes for
// plotting).
func (r *PortCDFResult) Render() string {
	byClass := make(map[string][]PortCheckpoint)
	var order []string
	for _, cp := range r.Checkpoints {
		if _, ok := byClass[cp.Class]; !ok {
			order = append(order, cp.Class)
		}
		byClass[cp.Class] = append(byClass[cp.Class], cp)
	}
	rows := make([][]string, 0, len(order))
	for _, class := range order {
		row := []string{class}
		for _, cp := range byClass[class] {
			row = append(row, fmt.Sprintf("%.3f", cp.Frac))
		}
		rows = append(rows, row)
	}
	proto := "TCP destination ports"
	if r.Figure == "F3" {
		proto = "UDP ports (src+dst)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: cumulative port distribution, %s — F(port)\n", r.Figure, proto)
	b.WriteString(stats.Table(
		[]string{"Class", "≤443", "≤1024", "≤4662", "≤6881", "≤10000", "≤40000"}, rows))
	return b.String()
}

// F4Result reproduces Figure 4: the connection lifetime distribution.
type F4Result struct {
	N          int
	Mean       float64
	F45        float64 // paper: ≈0.90
	F240       float64 // paper: ≈0.95
	TailBeyond float64 // fraction > 810 s; paper: < 0.01
	Histogram  []stats.Point
}

// RunF4 summarizes the lifetime CDF.
func (s *Suite) RunF4() *F4Result {
	lt := &s.Report.Lifetimes
	return &F4Result{
		N:          lt.N(),
		Mean:       lt.Mean(),
		F45:        lt.At(45),
		F240:       lt.At(240),
		TailBeyond: 1 - lt.At(810),
		Histogram:  lt.Points(30),
	}
}

// Render prints the Figure 4 summary with the paper's milestones and the
// lifetime CDF curve.
func (r *F4Result) Render() string {
	plot := stats.AsciiPlot{Width: 56, Height: 10, XLabel: "lifetime (s)", YLabel: "F(t)"}
	curve := plot.Lines([]stats.Series{{Name: "lifetime CDF", Glyph: '*', Points: r.Histogram}})
	return fmt.Sprintf(
		"F4: connection lifetime (n=%d closed TCP connections)\n"+
			"  mean lifetime       %8.2f s   (paper: 45.84 s)\n"+
			"  F(45 s)             %8.3f     (paper: ≈0.90)\n"+
			"  F(240 s)            %8.3f     (paper: ≈0.95)\n"+
			"  fraction > 810 s    %8.4f     (paper: <0.01)\n%s",
		r.N, r.Mean, r.F45, r.F240, r.TailBeyond, curve)
}

// F5Result reproduces Figure 5: the out-in packet delay distribution and
// its port-reuse peaks.
type F5Result struct {
	N    int
	P50  float64
	P99  float64
	F2p8 float64 // paper: 0.99 of delays under 2.8 s
	// MinutePeaks counts delay samples within ±5 s of each whole minute
	// (the Figure 5-a port-reuse peaks).
	MinutePeaks map[int]int
	CDF         []stats.Point
}

// RunF5 summarizes the delay CDF.
func (s *Suite) RunF5() *F5Result {
	d := &s.Report.DelayCDF
	res := &F5Result{
		N:           d.N(),
		P50:         d.Quantile(0.5),
		P99:         d.Quantile(0.99),
		F2p8:        d.At(2.8),
		MinutePeaks: make(map[int]int),
		CDF:         d.Points(40),
	}
	for k := 1; k <= 9; k++ {
		m := float64(k * 60)
		count := int(float64(d.N()) * (d.At(m+5) - d.At(m-5)))
		if count > 0 {
			res.MinutePeaks[k] = count
		}
	}
	return res
}

// Render prints the Figure 5 summary.
func (r *F5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"F5: out-in packet delay (n=%d samples)\n"+
			"  median delay  %8.3f s\n"+
			"  p99 delay     %8.3f s\n"+
			"  F(2.8 s)      %8.4f    (paper: 0.99)\n",
		r.N, r.P50, r.P99, r.F2p8)
	if len(r.MinutePeaks) > 0 {
		b.WriteString("  port-reuse peaks (samples within ±5 s of k·60 s):\n")
		for k := 1; k <= 9; k++ {
			if n, ok := r.MinutePeaks[k]; ok {
				fmt.Fprintf(&b, "    %3d s: %d\n", k*60, n)
			}
		}
	}
	return b.String()
}

// SummaryResult reports the headline Section 3.3 aggregates.
type SummaryResult struct {
	Connections     int
	TCPConnFrac     float64
	TCPByteFrac     float64
	UploadByteFrac  float64
	UploadOnInbound float64
	MeanMbps        float64
}

// RunSummary extracts the aggregate statistics.
func (s *Suite) RunSummary() *SummaryResult {
	sum := s.Report.Summary
	return &SummaryResult{
		Connections:     sum.Connections,
		TCPConnFrac:     sum.TCPConnFrac,
		TCPByteFrac:     sum.TCPByteFrac,
		UploadByteFrac:  sum.UploadByteFrac,
		UploadOnInbound: sum.UploadOnInbound,
		MeanMbps:        sum.MeanMbps,
	}
}

// Render prints the aggregates next to the published ones.
func (r *SummaryResult) Render() string {
	return fmt.Sprintf(
		"S0: trace aggregates (%d connections, %.1f Mbps mean)\n"+
			"  TCP connection share   %7s  (paper: 29.8%%)\n"+
			"  TCP byte share         %7s  (paper: 99.5%%)\n"+
			"  upload byte share      %7s  (paper: 89.8%%)\n"+
			"  upload on inbound-init %7s  (paper: 80%%)\n",
		r.Connections, r.MeanMbps,
		stats.Pct(r.TCPConnFrac), stats.Pct(r.TCPByteFrac),
		stats.Pct(r.UploadByteFrac), stats.Pct(r.UploadOnInbound))
}
