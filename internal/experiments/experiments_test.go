package experiments

import (
	"strings"
	"testing"
	"time"
)

// expSuite is shared by the experiment tests; generating and analyzing a
// trace is the expensive part.
var expSuite = func() *Suite {
	s, err := NewSuite(DefaultTraceConfig(60*time.Second, 0.05, 11))
	if err != nil {
		panic(err)
	}
	return s
}()

func TestRunSummaryShape(t *testing.T) {
	r := expSuite.RunSummary()
	if r.Connections < 500 {
		t.Fatalf("connections = %d", r.Connections)
	}
	if r.TCPConnFrac < 0.2 || r.TCPConnFrac > 0.4 {
		t.Fatalf("TCP conn frac = %g", r.TCPConnFrac)
	}
	if r.UploadByteFrac < 0.7 {
		t.Fatalf("upload byte frac = %g — the trace must be upload-dominated", r.UploadByteFrac)
	}
	if !strings.Contains(r.Render(), "paper: 89.8%") {
		t.Fatal("render must cite the paper's value")
	}
}

func TestRunT2CoversAllGroups(t *testing.T) {
	r := expSuite.RunT2()
	groups := make(map[string]bool, len(r.Rows))
	var connSum float64
	for _, row := range r.Rows {
		groups[row.Group] = true
		connSum += row.ConnFrac
	}
	for _, g := range []string{"HTTP", "bittorrent", "gnutella", "edonkey", "UNKNOWN", "Others"} {
		if !groups[g] {
			t.Errorf("group %s missing", g)
		}
	}
	if connSum < 0.999 || connSum > 1.001 {
		t.Fatalf("connection shares sum to %g", connSum)
	}
	if !strings.Contains(r.Render(), "bittorrent") {
		t.Fatal("render incomplete")
	}
}

func TestRunF2F3Structure(t *testing.T) {
	f2 := expSuite.RunF2()
	f3 := expSuite.RunF3()
	for _, r := range []*PortCDFResult{f2, f3} {
		if len(r.Classes["ALL"]) == 0 {
			t.Fatalf("%s: no ALL curve", r.Figure)
		}
		if len(r.Checkpoints) == 0 {
			t.Fatalf("%s: no checkpoints", r.Figure)
		}
		if r.Render() == "" {
			t.Fatalf("%s: empty render", r.Figure)
		}
	}
	// Figure 2 structure: Non-P2P concentrates under 1024; P2P does not.
	var nonP2P1024, p2p1024 float64
	for _, cp := range f2.Checkpoints {
		if cp.Port != 1024 {
			continue
		}
		switch cp.Class {
		case "Non-P2P":
			nonP2P1024 = cp.Frac
		case "P2P":
			p2p1024 = cp.Frac
		}
	}
	if nonP2P1024 < 0.5 {
		t.Errorf("Non-P2P F(1024) = %g, want > 0.5", nonP2P1024)
	}
	if p2p1024 > 0.2 {
		t.Errorf("P2P F(1024) = %g, want < 0.2", p2p1024)
	}
}

func TestRunF4Milestones(t *testing.T) {
	r := expSuite.RunF4()
	if r.N < 100 {
		t.Fatalf("lifetime samples = %d", r.N)
	}
	if r.F45 < 0.8 {
		t.Fatalf("F(45s) = %g", r.F45)
	}
	if r.F240 < r.F45 {
		t.Fatal("CDF not monotone")
	}
	if r.TailBeyond > 0.05 {
		t.Fatalf("tail beyond 810s = %g", r.TailBeyond)
	}
}

func TestRunF5Milestones(t *testing.T) {
	r := expSuite.RunF5()
	if r.N < 1000 {
		t.Fatalf("delay samples = %d", r.N)
	}
	if r.F2p8 < 0.95 {
		t.Fatalf("F(2.8s) = %g, paper says 0.99", r.F2p8)
	}
	if r.P50 > 0.5 {
		t.Fatalf("median delay = %g s", r.P50)
	}
}

func TestRunA1MatchesPaperBounds(t *testing.T) {
	r, err := RunA1(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemoryKB != 512 {
		t.Fatalf("memory = %d KB, want 512", r.MemoryKB)
	}
	for _, row := range r.Rows {
		// The paper rounds to whole thousands; stay within 5 %.
		lo := float64(row.PaperBound) * 0.95
		hi := float64(row.PaperBound) * 1.05
		if f := float64(row.Capacity); f < lo || f > hi {
			t.Errorf("p=%.2f: capacity %d vs paper %d", row.P, row.Capacity, row.PaperBound)
		}
	}
	for _, mc := range r.MonteCarlo {
		if mc.Analytical == 0 {
			continue
		}
		if ratio := mc.Measured / mc.Analytical; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("c=%d m=%d: measured %.5f vs analytical %.5f", mc.C, mc.M, mc.Measured, mc.Analytical)
		}
	}
	if !strings.Contains(r.Render(), "167000") {
		t.Fatal("render must include the paper bounds")
	}
}

// TestRunF8Shape: both filters land on the slope-≈1 line, with the SPI
// rate at or slightly above the bitmap rate (the Figure 8 relationship).
func TestRunF8Shape(t *testing.T) {
	r, err := RunF8(expSuite.Trace.Packets, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.SPIDropRate <= 0 || r.BitmapDropRate <= 0 {
		t.Fatalf("degenerate drop rates: spi=%g bitmap=%g", r.SPIDropRate, r.BitmapDropRate)
	}
	if r.BitmapDropRate > r.SPIDropRate*1.1 {
		t.Errorf("bitmap drop rate %.4f exceeds SPI %.4f — the SPI filter drops more precisely",
			r.BitmapDropRate, r.SPIDropRate)
	}
	if ratio := r.BitmapDropRate / r.SPIDropRate; ratio < 0.6 {
		t.Errorf("drop-rate ratio %.2f too far below 1 (paper: 1.51/1.56)", ratio)
	}
	if r.Slope < 0.7 || r.Slope > 1.3 {
		t.Errorf("scatter slope = %.3f, want ≈1", r.Slope)
	}
	if r.Corr < 0.8 {
		t.Errorf("correlation = %.3f, want high", r.Corr)
	}
	if r.BitmapBytes != 512*1024 {
		t.Errorf("bitmap memory = %d", r.BitmapBytes)
	}
	if r.SPIPeakFlows <= 0 {
		t.Error("SPI peak flows not tracked")
	}
}

// TestRunF9Limits: filtered upload is substantially below the original,
// and download shrinks too.
func TestRunF9Limits(t *testing.T) {
	scale := 0.05
	low, high := 50e6*scale, 100e6*scale
	r, err := RunF9(expSuite.Trace.Packets, low, high, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.OriginalUpMean <= high {
		t.Skipf("trace upload %.1f Mbps below H; limiting not exercised", r.OriginalUpMean/1e6)
	}
	if r.FilteredUpMean >= r.OriginalUpMean*0.95 {
		t.Fatalf("filtered upload %.1f Mbps barely below original %.1f Mbps",
			r.FilteredUpMean/1e6, r.OriginalUpMean/1e6)
	}
	if r.Blocked == 0 {
		t.Fatal("no connections were blocked")
	}
	if r.FilteredDownMean > r.OriginalDownMean {
		t.Fatal("filtered download exceeds original")
	}
}

func TestRunX1SweepStructure(t *testing.T) {
	r, err := RunX1(expSuite.Trace.Packets, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 10 {
		t.Fatalf("sweep rows = %d", len(r.Rows))
	}
	// Utilization must fall as N grows (same trace, same marks).
	var prev float64 = 1
	for _, row := range r.Rows[:5] {
		if row.Div.Utilization > prev*1.01 {
			t.Errorf("utilization did not fall with N: %v", row)
		}
		prev = row.Div.Utilization
	}
	// FN rate grows as Δt shrinks at fixed T_e (coarser retention floor).
	last4 := r.Rows[len(r.Rows)-4:]
	if last4[0].Div.FNRate() > last4[3].Div.FNRate()+0.01 {
		t.Errorf("FN rate fell with finer rotation: k=2 %.4f vs k=20 %.4f",
			last4[0].Div.FNRate(), last4[3].Div.FNRate())
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestRunX2SmallDivergence: at the paper's configuration the bitmap filter
// tracks the exact reference almost perfectly on this workload.
func TestRunX2SmallDivergence(t *testing.T) {
	r, err := RunX2(expSuite.Trace.Packets, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Div.Inbound == 0 {
		t.Fatal("no inbound packets measured")
	}
	if fp := r.Div.FPRate(); fp > 0.01 {
		t.Errorf("FP rate = %.4f, want < 1%%", fp)
	}
	if fn := r.Div.FNRate(); fn > 0.01 {
		t.Errorf("FN rate = %.4f, want < 1%%", fn)
	}
}

// TestRunX3HolePunch: partial-tuple hashing admits essentially every
// shifted-port reply, full-tuple hashing essentially none.
func TestRunX3HolePunch(t *testing.T) {
	r, err := RunX3(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.AdmittedHolePunch < r.Sessions*99/100 {
		t.Fatalf("hole-punch mode admitted %d/%d", r.AdmittedHolePunch, r.Sessions)
	}
	if r.AdmittedFull > r.Sessions/100 {
		t.Fatalf("full-tuple mode admitted %d/%d", r.AdmittedFull, r.Sessions)
	}
}

// TestRunX4HashFamilies: every family keeps false positives low at 2^16
// and shows measurable collisions only at 2^12.
func TestRunX4HashFamilies(t *testing.T) {
	r, err := RunX4(expSuite.Trace.Packets, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.NBits == 16 && row.Div.FPRate() > 0.002 {
			t.Errorf("%v at 2^16: FP rate %.5f too high", row.Kind, row.Div.FPRate())
		}
		if row.Div.FNRate() > 0.001 {
			t.Errorf("%v: FN rate %.5f — hash choice must not cause false negatives", row.Kind, row.Div.FNRate())
		}
		// All families mark essentially the same number of distinct bits.
		if row.Div.Utilization <= 0 {
			t.Errorf("%v: zero utilization", row.Kind)
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestRunT1Accuracy: the Table 1 pipeline must identify the signature-
// bearing protocols with high precision and recall against ground truth.
func TestRunT1Accuracy(t *testing.T) {
	r := expSuite.RunT1Accuracy()
	if r.Matched < 500 {
		t.Fatalf("matched connections = %d", r.Matched)
	}
	byApp := make(map[string]T1Row, len(r.Rows))
	for _, row := range r.Rows {
		byApp[row.App.String()] = row
	}
	for _, app := range []string{"bittorrent", "edonkey", "gnutella", "http"} {
		row, ok := byApp[app]
		if !ok {
			t.Errorf("no accuracy row for %s", app)
			continue
		}
		if p := row.Precision(); p < 0.85 {
			t.Errorf("%s precision = %.3f, want >= 0.85", app, p)
		}
		if rec := row.Recall(); rec < 0.75 {
			t.Errorf("%s recall = %.3f, want >= 0.75", app, rec)
		}
	}
	if len(r.MethodCounts) == 0 || r.MethodCounts["pattern"] == 0 {
		t.Fatalf("method counts missing pattern identifications: %v", r.MethodCounts)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
