// Package offload implements the kernel-offload fast path of the
// two-tier NFQUEUE/XDP split (DESIGN.md §17): a flat, self-describing
// export of one or more core.Filter bitmaps that a dumb per-packet
// stage — an XDP program consulting a BPF array map, a DPDK core, or
// the in-process FastPath simulator here — can probe with no pointer
// chasing, while the Go side keeps ownership of marking, RED
// thresholds, and rotation.
//
// The export is a single contiguous buffer of 64-bit words: a header
// carrying the full filter geometry (k, n, m, hash kind/scheme/layout,
// hole punching), a directory of per-tenant sections keyed by route
// key and BMTM tenant-id hash, and per section a small header plus the
// raw bit-vector words of all k vectors. Coherence is by seqlock, not
// locking: each section has a generation word that its single writer
// makes odd before mutating and even after, and a reader retries
// whenever it observes an odd or changed generation — so a probe never
// sees a torn rotation (a current-index bump paired with a half-cleared
// vector). Steady-state publication is incremental: the publisher diffs
// each live vector against a shadow of what it last published
// (bitvec.DiffBlocks) and rewrites only the dirty 512-bit blocks, so
// export cost is proportional to bits touched, not filter size.
//
// Escalation contract: the fast path never drops. A probe either Hits
// (every relevant bit set — pass with no slow-path involvement) or
// Escalates (new flow, post-rotation re-mark, dead section, or a map
// lagging the filter); escalated packets travel a bounded MissRing to
// the Go slow path, whose verdict is authoritative. Staleness therefore
// only costs extra escalations, never a wrongly dropped packet.
package offload

import (
	"errors"
	"strconv"
	"sync/atomic"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/core"
	"p2pbound/internal/errfmt"
	"p2pbound/internal/hashes"
)

// Flat-map format constants. All offsets are in 64-bit words; the file
// serialization (WriteTo/OpenBytes) is the little-endian image of the
// word array.
const (
	// mapMagic spells "P2POFLD1" when the first word is written
	// little-endian.
	mapMagic   = 0x31444c464f503250
	mapVersion = 1

	// headerWords is the fixed map header: magic, version, packed
	// geometry, words per vector, section count, prefix bits, and two
	// reserved words.
	headerWords = 8
	// dirEntryWords is one directory entry: route key, BMTM tenant-id
	// hash, section offset in words.
	dirEntryWords = 3
	// sectionHeaderWords is one section header: generation (seqlock),
	// rotation count, current vector index, flags.
	sectionHeaderWords = 4

	hdrMagic    = 0
	hdrVersion  = 1
	hdrGeom     = 2
	hdrVecWords = 3
	hdrSections = 4
	hdrPrefix   = 5

	secGen       = 0
	secRotations = 1
	secCurIdx    = 2
	secFlags     = 3

	// flagLive marks a section whose tenant currently holds a hydrated
	// filter. A probe against a non-live section always escalates, so an
	// evicted tenant's stale bits are unreachable until rehydration
	// republishes them.
	flagLive = 1
)

// Geometry caps mirroring the snapshot caps in internal/core: a decode
// must bound what a hostile header can demand before validation.
const (
	maxMapK        = 1024
	maxMapM        = 1024
	maxMapSections = 1 << 20
)

// Typed decode sentinels, errors.Is-matchable through the errfmt detail
// wrappers (the same rejected-input discipline as core.ErrSnapshot*).
var (
	// ErrMapMagic rejects a buffer that is not a flat verdict map.
	ErrMapMagic = errors.New("offload: bad map magic")
	// ErrMapVersion rejects an unsupported format version.
	ErrMapVersion = errors.New("offload: unsupported map version")
	// ErrMapTruncated rejects a buffer whose length disagrees with the
	// geometry it declares.
	ErrMapTruncated = errors.New("offload: truncated map")
	// ErrMapGeometry rejects an implausible or inconsistent geometry.
	ErrMapGeometry = errors.New("offload: bad map geometry")
	// ErrMapCorrupt rejects a structurally invalid map: a directory
	// offset that disagrees with the layout, an out-of-range current
	// vector index, unknown section flags, or unsorted route keys.
	ErrMapCorrupt = errors.New("offload: corrupt map")
	// ErrMapTorn rejects a serialized map whose generation word is odd —
	// the image was taken mid-publish and may mix two rotations.
	ErrMapTorn = errors.New("offload: torn map generation")
	// ErrMapReadOnly rejects Publish on a map reconstructed by
	// OpenBytes: its shadow state does not cover the imported contents,
	// so an incremental publish could leave stale blocks behind.
	ErrMapReadOnly = errors.New("offload: map is read-only")
)

// Geometry is the filter shape a flat map carries, self-describing
// enough for a consumer to derive the exact bit indexes the Go filter
// derives: hash kind, index-derivation scheme, bit layout, and the
// hole-punch key mode all change which bits a socket pair maps to.
type Geometry struct {
	K         int
	NBits     uint
	M         int
	Kind      hashes.Kind
	Scheme    hashes.Scheme
	Layout    hashes.Layout
	HolePunch bool
}

// GeometryOf extracts the resolved geometry of a core configuration.
func GeometryOf(cfg core.Config) Geometry {
	kind := cfg.HashKind
	if kind == 0 {
		kind = hashes.FNVDouble
	}
	scheme, layout, err := hashes.ResolveSchemeLayout(cfg.HashScheme, cfg.Layout)
	if err != nil {
		// An unresolvable combination cannot have built a filter; keep
		// the raw values and let NewMap's validation report it.
		scheme, layout = cfg.HashScheme, cfg.Layout
	}
	return Geometry{
		K:         cfg.K,
		NBits:     cfg.NBits,
		M:         cfg.M,
		Kind:      kind,
		Scheme:    scheme,
		Layout:    layout,
		HolePunch: cfg.HolePunch,
	}
}

// pack encodes the geometry into the single header word.
//
//p2p:codec offloadmap encode
func (g Geometry) pack() uint64 {
	w := uint64(uint16(g.K))
	w |= uint64(uint8(g.NBits)) << 16
	w |= uint64(uint16(g.M)) << 24
	w |= uint64(uint8(g.Kind)) << 40
	w |= uint64(uint8(g.Scheme)) << 48
	w |= uint64(uint8(g.Layout)) << 56 & (0xf << 56)
	if g.HolePunch {
		w |= 1 << 60
	}
	return w
}

// unpackGeometry decodes the geometry header word.
//
//p2p:codec offloadmap decode
func unpackGeometry(w uint64) Geometry {
	return Geometry{
		K:         int(uint16(w)),
		NBits:     uint(uint8(w >> 16)),
		M:         int(uint16(w >> 24)),
		Kind:      hashes.Kind(uint8(w >> 40)),
		Scheme:    hashes.Scheme(uint8(w >> 48)),
		Layout:    hashes.Layout(uint8(w>>56) & 0xf),
		HolePunch: w&(1<<60) != 0,
	}
}

// validate checks the geometry against the caps and the hash package's
// own rules, returning the family a fast path would probe with.
func (g Geometry) validate() (*hashes.Family, error) {
	if g.K < 1 || g.K > maxMapK {
		return nil, errfmt.Detail("offload: k="+strconv.Itoa(g.K), ErrMapGeometry)
	}
	if g.M < 1 || g.M > maxMapM {
		return nil, errfmt.Detail("offload: m="+strconv.Itoa(g.M), ErrMapGeometry)
	}
	if g.NBits < 1 || g.NBits > 32 {
		return nil, errfmt.Detail("offload: nbits="+strconv.FormatUint(uint64(g.NBits), 10), ErrMapGeometry)
	}
	scheme, layout, err := hashes.ResolveSchemeLayout(g.Scheme, g.Layout)
	if err != nil || scheme != g.Scheme || layout != g.Layout {
		// The map must carry the resolved values: a consumer cannot be
		// asked to re-run default resolution to know what to probe.
		return nil, errfmt.Detail("offload: scheme/layout", ErrMapGeometry)
	}
	fam, err := hashes.NewFamily(g.Kind, g.M, g.NBits)
	if err != nil {
		return nil, errfmt.Detail("offload: "+err.Error(), ErrMapGeometry)
	}
	return fam, nil
}

// vecWords returns the number of 64-bit words per bit vector.
func (g Geometry) vecWords() int {
	n := (uint64(1)<<g.NBits + 63) / 64
	return int(n)
}

// Map is a flat verdict map: the publisher-side owner of the word
// buffer. The word array is shared with any in-process FastPath
// readers; every access to it — publisher stores, probe loads,
// serialization — is a sync/atomic word operation, so the seqlock
// protocol is also race-detector-clean.
type Map struct {
	words       []uint64
	geom        Geometry
	fam         *hashes.Family
	wordsPerVec int
	secWords    int
	prefixBits  int
	secs        []Section
	// opened marks a map reconstructed by OpenBytes: probe-only, since
	// no shadow state covers the imported bits (see ErrMapReadOnly).
	opened bool
}

// NewMap allocates a flat map for `sections` filter sections of the
// given geometry. prefixBits, when non-zero, declares that directory
// route keys are subscriber prefixes of that width (addr >>
// (32−prefixBits)), enabling routed section lookup; zero means the
// caller addresses sections by index (single-filter or per-shard use).
func NewMap(g Geometry, sections, prefixBits int) (*Map, error) {
	fam, err := g.validate()
	if err != nil {
		return nil, err
	}
	if sections < 1 || sections > maxMapSections {
		return nil, errfmt.Detail("offload: sections="+strconv.Itoa(sections), ErrMapGeometry)
	}
	if prefixBits < 0 || prefixBits > 32 {
		return nil, errfmt.Detail("offload: prefix bits="+strconv.Itoa(prefixBits), ErrMapGeometry)
	}
	wpv := g.vecWords()
	secWords := sectionHeaderWords + g.K*wpv
	total := headerWords + sections*dirEntryWords + sections*secWords
	m := &Map{
		words:       make([]uint64, total),
		geom:        g,
		fam:         fam,
		wordsPerVec: wpv,
		secWords:    secWords,
		prefixBits:  prefixBits,
		secs:        make([]Section, sections),
	}
	m.words[hdrMagic] = mapMagic
	m.words[hdrVersion] = mapVersion
	m.words[hdrGeom] = g.pack()
	m.words[hdrVecWords] = uint64(wpv)
	m.words[hdrSections] = uint64(sections)
	m.words[hdrPrefix] = uint64(prefixBits)
	for i := range m.secs {
		base := m.sectionBase(i)
		m.words[headerWords+i*dirEntryWords+2] = uint64(base)
		m.secs[i] = Section{m: m, base: base}
	}
	return m, nil
}

// sectionBase returns the word offset of section i's header.
//
//p2p:hotpath
func (m *Map) sectionBase(i int) int {
	return headerWords + len(m.secs)*dirEntryWords + i*m.secWords
}

// Geometry returns the filter geometry the map carries.
func (m *Map) Geometry() Geometry { return m.geom }

// Sections returns the number of filter sections.
func (m *Map) Sections() int { return len(m.secs) }

// PrefixBits returns the subscriber prefix width of the directory route
// keys, or zero for an index-addressed map.
func (m *Map) PrefixBits() int { return m.prefixBits }

// Size returns the serialized size of the map in bytes.
func (m *Map) Size() int { return len(m.words) * 8 }

// Section returns the publisher handle for section i.
func (m *Map) Section(i int) *Section { return &m.secs[i] }

// SetSectionKey sets section i's directory entry: the route key a
// consumer looks sections up by (for a tenant map, the subscriber
// prefix shifted to prefixBits; for a shard map, the shard index) and
// the FNV-1a hash of the BMTM tenant id, which correlates the section
// with the tenant snapshot format across process boundaries. Call it
// during setup, before readers attach; routed lookup requires keys to
// be registered in ascending order.
func (m *Map) SetSectionKey(i int, key uint32, id string) {
	e := headerWords + i*dirEntryWords
	atomic.StoreUint64(&m.words[e], uint64(key))
	var h uint64
	if id != "" {
		h = hashes.FNV1a64([]byte(id))
	}
	atomic.StoreUint64(&m.words[e+1], h)
}

// SectionKey returns section i's directory route key and id hash.
func (m *Map) SectionKey(i int) (key uint32, idHash uint64) {
	e := headerWords + i*dirEntryWords
	return uint32(atomic.LoadUint64(&m.words[e])), atomic.LoadUint64(&m.words[e+1])
}

// Section publishes one filter into its slice of the map. All methods
// must be called from the filter's owning goroutine (the publisher is
// the single writer of the section's words); probes may run
// concurrently from any number of FastPath readers.
type Section struct {
	m    *Map
	base int
	// shadow holds the logical contents this section last published,
	// one vector per filter vector; DiffBlocks against it makes steady-
	// state publication proportional to bits touched. Allocated on the
	// first Publish so consumer-side sections stay lightweight.
	shadow  []*bitvec.Vector
	scratch [bitvec.DeltaBlockWords]uint64
}

// Publish exports f's current state — rotation count, current vector
// index, and every dirty 512-bit block of its k vectors — under the
// section's seqlock. The filter must match the map geometry. Publish
// runs on the filter's owning goroutine between packet batches; it
// holds no locks (readers are never blocked, they retry), and its cost
// is proportional to the bits marked or cleared since the last publish.
func (s *Section) Publish(f *core.Filter) error {
	m := s.m
	if m.opened {
		return ErrMapReadOnly
	}
	if g := GeometryOf(f.Config()); g != m.geom {
		return errfmt.Detail("offload: publish filter geometry != map geometry", ErrMapGeometry)
	}
	if s.shadow == nil {
		s.shadow = make([]*bitvec.Vector, m.geom.K)
		for i := range s.shadow {
			s.shadow[i] = bitvec.New(1 << m.geom.NBits)
		}
	}
	w := m.words
	gen := atomic.LoadUint64(&w[s.base+secGen])
	atomic.StoreUint64(&w[s.base+secGen], gen+1)
	atomic.StoreUint64(&w[s.base+secRotations], uint64(f.Rotations()))
	atomic.StoreUint64(&w[s.base+secCurIdx], uint64(f.Index()))
	atomic.StoreUint64(&w[s.base+secFlags], flagLive)
	var firstErr error
	for i := 0; i < m.geom.K; i++ {
		vecBase := s.base + sectionHeaderWords + i*m.wordsPerVec
		sh := s.shadow[i]
		err := f.Vector(i).DiffBlocks(sh, func(blk uint32, xor *[bitvec.DeltaBlockWords]uint64) {
			if firstErr != nil {
				return
			}
			if err := sh.BlockWords(blk, &s.scratch); err != nil {
				firstErr = err
				return
			}
			lo := int(blk) * bitvec.DeltaBlockWords
			n := m.wordsPerVec - lo
			if n > bitvec.DeltaBlockWords {
				n = bitvec.DeltaBlockWords
			}
			for j := 0; j < n; j++ {
				atomic.StoreUint64(&w[vecBase+lo+j], s.scratch[j]^xor[j])
			}
			if _, err := sh.XorBlock(blk, xor); err != nil {
				firstErr = err
			}
		})
		if firstErr == nil {
			firstErr = err
		}
	}
	// The generation goes even again on every path — a section left odd
	// would spin readers forever. On error the section content may lag
	// the filter, which the escalation contract already tolerates.
	atomic.StoreUint64(&w[s.base+secGen], gen+2)
	return firstErr
}

// SetLive publishes the section's liveness flag under the seqlock. A
// tenant manager marks a section dead when its tenant spills its
// filter: probes then escalate unconditionally, making the stale bits
// unreachable, until rehydration republishes and re-arms the flag.
func (s *Section) SetLive(live bool) {
	w := s.m.words
	gen := atomic.LoadUint64(&w[s.base+secGen])
	atomic.StoreUint64(&w[s.base+secGen], gen+1)
	var flags uint64
	if live {
		flags = flagLive
	}
	atomic.StoreUint64(&w[s.base+secFlags], flags)
	atomic.StoreUint64(&w[s.base+secGen], gen+2)
}

// Live reports the section's published liveness flag.
func (s *Section) Live() bool {
	return atomic.LoadUint64(&s.m.words[s.base+secFlags])&flagLive != 0
}

// Generation returns the section's current seqlock generation (even
// when stable, odd while a publish is in flight).
func (s *Section) Generation() uint64 {
	return atomic.LoadUint64(&s.m.words[s.base+secGen])
}
