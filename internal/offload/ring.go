package offload

import "sync/atomic"

// MissRing is the bounded escalation queue between the fast path and
// the Go slow path: a lock-free single-producer/single-consumer ring.
// The fast-path goroutine TryPushes packets its map cannot admit; the
// slow-path goroutine Drains them into Limiter.ProcessBatch, which
// marks, draws P_d, and rotates. The ring models the kernel boundary's
// bounded queue (an XDP program's perf/ring buffer to userspace): when
// it is full the push fails and the overflow counter advances, and the
// caller chooses the shed policy — in a deployment, whether an
// unqueueable new-connection packet is passed (fail-open) or dropped
// (fail-closed), the same trade as Pipeline's ShedPolicy.
type MissRing[T any] struct {
	buf  []T
	mask uint64
	// head is the consumer cursor, tail the producer cursor; both only
	// ever advance. tail−head is the occupancy.
	head     atomic.Uint64 //p2p:atomic
	tail     atomic.Uint64 //p2p:atomic
	overflow atomic.Uint64 //p2p:atomic
}

// NewMissRing returns a ring with capacity rounded up to a power of
// two (minimum 2).
func NewMissRing[T any](capacity int) *MissRing[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &MissRing[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *MissRing[T]) Cap() int { return len(r.buf) }

// TryPush enqueues v, returning false (and counting the overflow) when
// the ring is full. Producer-side only.
//
//p2p:hotpath
func (r *MissRing[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		r.overflow.Add(1)
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Drain appends every queued element to dst and returns the extended
// slice. Consumer-side only; pass a reusable dst[:0] to keep the slow
// path allocation-free at steady state.
func (r *MissRing[T]) Drain(dst []T) []T {
	h := r.head.Load()
	t := r.tail.Load()
	for ; h != t; h++ {
		dst = append(dst, r.buf[h&r.mask])
	}
	r.head.Store(h)
	return dst
}

// Len returns the current occupancy (approximate under concurrency).
func (r *MissRing[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Overflow returns how many pushes failed on a full ring.
func (r *MissRing[T]) Overflow() uint64 { return r.overflow.Load() }
