package offload

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/packet"
)

// TestSeqlockNoTornVerdict is the coherence proof the seqlock exists
// for: while a publisher mutates the map through marks and rotations,
// concurrent probers must never return a verdict that mixes two
// publications. Every probe is tagged with the (even) generation it
// was computed under; the writer records, after each publish, the
// ground-truth verdict of every probe key for that generation. Any
// observation that disagrees with the table for its own generation is
// a torn read. Run it under -race: the all-atomic word discipline of
// the map is part of what is being proven.
func TestSeqlockNoTornVerdict(t *testing.T) {
	cfg := core.Config{K: 4, NBits: 8, M: 2, DeltaT: time.Second, Seed: 3}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMap(GeometryOf(cfg), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := testPairs(16)

	// expected[gen][pair][dir] is the coherent verdict for that
	// generation; guarded by mu.
	type verdicts [16][2]Verdict
	var mu sync.Mutex
	expected := make(map[uint64]verdicts)

	truth, err := NewFastPath(m)
	if err != nil {
		t.Fatal(err)
	}
	record := func() {
		gen := m.Section(0).Generation()
		var v verdicts
		for i, p := range pairs {
			v[i][0] = truth.Probe(p, packet.Outbound)
			v[i][1] = truth.Probe(p.Inverse(), packet.Inbound)
		}
		mu.Lock()
		expected[gen] = v
		mu.Unlock()
	}

	var done atomic.Bool
	type obs struct {
		gen  uint64
		pair int
		dir  int
		v    Verdict
	}
	const readers = 3
	results := make([][]obs, readers)
	var counts [readers]atomic.Uint64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		fp, err := NewFastPath(m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for !done.Load() {
				pi := i % len(pairs)
				var v Verdict
				var g uint64
				var d int
				if i&1 == 0 {
					v, g = fp.ProbeSectionTagged(0, pairs[pi], packet.Outbound)
				} else {
					v, g = fp.ProbeSectionTagged(0, pairs[pi].Inverse(), packet.Inbound)
					d = 1
				}
				results[r] = append(results[r], obs{gen: g, pair: pi, dir: d, v: v})
				counts[r].Add(1)
				i++
			}
		}()
	}

	// Writer: alternate marking (flips probes toward Hit) and rotating
	// (clears the new current vector, flipping probes back toward
	// Escalate), so verdicts genuinely differ between generations and a
	// mixed read cannot masquerade as a coherent one.
	record() // generation 0: the empty, non-live map
	for step := 0; ; step++ {
		switch step % 8 {
		case 3:
			f.Rotate()
		default:
			f.Mark(pairs[(step*7)%len(pairs)])
		}
		if err := m.Section(0).Publish(f); err != nil {
			t.Fatal(err)
		}
		record()
		if step >= 400 {
			min := counts[0].Load()
			for r := 1; r < readers; r++ {
				if c := counts[r].Load(); c < min {
					min = c
				}
			}
			// Keep the publisher colliding with the probers until every
			// reader has a real sample, but never unboundedly.
			if min >= 1000 || step >= 200000 {
				break
			}
		}
	}
	done.Store(true)
	wg.Wait()

	checked := 0
	for r := range results {
		for _, o := range results[r] {
			want, ok := expected[o.gen]
			if !ok {
				// Generations advance only through Publish, and every
				// publish was recorded.
				t.Fatalf("reader %d observed unrecorded generation %d", r, o.gen)
			}
			if o.v != want[o.pair][o.dir] {
				t.Fatalf("torn verdict: reader %d pair %d dir %d gen %d: got %v, want %v",
					r, o.pair, o.dir, o.gen, o.v, want[o.pair][o.dir])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("readers made no observations")
	}
	t.Logf("checked %d tagged verdicts across %d generations", checked, len(expected))
}

// TestProbeSpinsWhileGenOdd pins the reader half of the protocol: a
// probe that observes an odd generation must not return — it spins
// until the publish lands — and counts the collision in Retries.
func TestProbeSpinsWhileGenOdd(t *testing.T) {
	cfg := core.Config{K: 2, NBits: 8, M: 2, DeltaT: time.Second}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMap(GeometryOf(cfg), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pair := testPairs(1)[0]
	f.Mark(pair)
	if err := m.Section(0).Publish(f); err != nil {
		t.Fatal(err)
	}
	base := m.sectionBase(0)
	gen := atomic.LoadUint64(&m.words[base+secGen])

	// Freeze the section mid-publish.
	atomic.StoreUint64(&m.words[base+secGen], gen+1)

	fp, err := NewFastPath(m)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Verdict)
	go func() {
		v, _ := fp.ProbeSectionTagged(0, pair, packet.Outbound)
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("probe returned %v while generation was odd", v)
	case <-time.After(20 * time.Millisecond):
	}

	// Land the publish; the probe must complete with the coherent verdict.
	atomic.StoreUint64(&m.words[base+secGen], gen+2)
	select {
	case v := <-got:
		if v != Hit {
			t.Fatalf("post-publish verdict %v, want Hit", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("probe still spinning after generation went even")
	}
	if fp.Retries() == 0 {
		t.Fatal("spin left no trace in Retries")
	}
}
