package offload

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

// fuzzMapSeeds builds the seed corpus: one valid image per geometry
// family plus the classic corruptions — truncation, bit flips in every
// structural region, generation tears, and headers whose geometry lies
// about the body that follows.
func fuzzMapSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	image := func(cfg core.Config, sections, prefixBits, marks int) []byte {
		f, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMap(GeometryOf(cfg), sections, prefixBits)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < sections; s++ {
			m.SetSectionKey(s, uint32(s+1), "tenant-"+strconv.Itoa(s))
		}
		for _, p := range testPairs(marks) {
			f.Mark(p)
		}
		if err := m.Section(0).Publish(f); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	classic := image(core.Config{K: 3, NBits: 10, M: 4, DeltaT: time.Second}, 1, 0, 32)
	routed := image(core.Config{K: 2, NBits: 8, M: 2, DeltaT: time.Second}, 3, 8, 16)
	blocked := image(core.Config{K: 2, NBits: 12, M: 3, DeltaT: time.Second,
		Layout: hashes.LayoutBlocked, HolePunch: true}, 1, 0, 48)
	subword := image(core.Config{K: 2, NBits: 4, M: 2, DeltaT: time.Second}, 1, 0, 4)

	flip := func(b []byte, i int, mask byte) []byte {
		out := append([]byte(nil), b...)
		out[i%len(out)] ^= mask
		return out
	}
	seeds := map[string][]byte{
		"classic":        classic,
		"routed":         routed,
		"blocked":        blocked,
		"subword":        subword,
		"empty":          {},
		"short":          classic[:17],
		"header-only":    classic[:headerWords*8],
		"truncated-body": classic[:len(classic)-16],
		"magic-flip":     flip(classic, 0, 0x01),
		"version-flip":   flip(classic, 8, 0x02),
		"geom-flip":      flip(classic, hdrGeom*8, 0x40),
		"geom-k-lie":     flip(classic, hdrGeom*8, 0xff),
		"sections-lie":   flip(routed, hdrSections*8, 0x04),
		"prefix-lie":     flip(routed, hdrPrefix*8, 0x3f),
		"dir-key-flip":   flip(routed, (headerWords+dirEntryWords)*8, 0xff),
		"dir-off-flip":   flip(routed, (headerWords+2)*8, 0x10),
		"gen-tear":       flip(classic, (headerWords+dirEntryWords+secGen)*8, 0x01),
		"curidx-flip":    flip(classic, (headerWords+dirEntryWords+secCurIdx)*8, 0x07),
		"flags-flip":     flip(classic, (headerWords+dirEntryWords+secFlags)*8, 0xfe),
		"body-flip":      flip(classic, len(classic)-24, 0x80),
		"subword-spill":  flip(subword, (headerWords+dirEntryWords+sectionHeaderWords)*8+3, 0xff),
	}
	return seeds
}

// FuzzOffloadMap throws arbitrary bytes at the flat-map decoder and
// holds it to the typed-sentinel-or-valid contract: every rejection is
// errors.Is-matchable to an ErrMap* sentinel, and every accepted map
// is fully probeable (no panic, no out-of-section read) and reproduces
// its own image byte-for-byte through WriteTo.
func FuzzOffloadMap(f *testing.F) {
	for _, seed := range fuzzMapSeeds(f) {
		f.Add(seed)
	}
	sentinels := []error{
		ErrMapMagic, ErrMapVersion, ErrMapTruncated,
		ErrMapGeometry, ErrMapCorrupt, ErrMapTorn,
	}
	probes := testPairs(8)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := OpenBytes(data)
		if err != nil {
			for _, s := range sentinels {
				if errors.Is(err, s) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		fp, err := NewFastPath(m)
		if err != nil {
			t.Fatalf("validated map rejected by NewFastPath: %v", err)
		}
		for _, p := range probes {
			sec := fp.SectionFor(p)
			if sec < 0 {
				sec = 0
			}
			if v := fp.ProbeSection(sec, p, packet.Outbound); v != Hit && v != Escalate {
				t.Fatalf("probe returned non-verdict %d", v)
			}
			if v := fp.ProbeSection(sec, p, packet.Inbound); v != Hit && v != Escalate {
				t.Fatalf("probe returned non-verdict %d", v)
			}
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of accepted map: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("accepted map does not round-trip byte-identically")
		}
		if _, err := OpenBytes(buf.Bytes()); err != nil {
			t.Fatalf("round-tripped image rejected: %v", err)
		}
	})
}

// TestRegenOffloadFuzzCorpus rewrites the checked-in seed corpus so a
// cold checkout fuzzes every map shape and corruption class. Run with
//
//	P2PBOUND_REGEN_CORPUS=1 go test -run TestRegenOffloadFuzzCorpus ./internal/offload/
//
// after changing the flat-map format, and commit the result.
func TestRegenOffloadFuzzCorpus(t *testing.T) {
	if os.Getenv("P2PBOUND_REGEN_CORPUS") == "" {
		t.Skip("set P2PBOUND_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzOffloadMap")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fuzzMapSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
