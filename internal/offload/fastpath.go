package offload

import (
	"sync/atomic"

	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

// Verdict is a fast-path probe result. The fast path never drops: it
// either admits a packet on its own (Hit) or hands it to the Go slow
// path (Escalate), whose decision — including the RED P_d draw — is
// authoritative.
type Verdict uint8

// Fast-path verdicts.
const (
	// Hit: every relevant bit is set in the published map — an inbound
	// packet of a tracked flow (all m bits in the current vector), or an
	// outbound packet whose marks are already present in all k vectors
	// and needs no re-marking. Pass without slow-path involvement.
	Hit Verdict = iota + 1
	// Escalate: at least one bit is missing, or the section is not
	// live. The packet must travel the miss ring to the slow path.
	Escalate
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Hit:
		return "HIT"
	case Escalate:
		return "ESCALATE"
	default:
		return "verdict(?)"
	}
}

// FastPath answers mark/verdict probes from a flat map and nothing
// else — it models the kernel-side stage of the two-tier split, which
// has the map words and the geometry header but no access to the Go
// filter, its meter, or its rng. A FastPath is owned by one probing
// goroutine (it carries key-encoding and index scratch); run one per
// consumer. Any number of FastPaths may read the same Map concurrently
// with its publisher.
type FastPath struct {
	m   *Map
	fam *hashes.Family
	enc packet.KeyEncoder
	// sums is the per-probe index scratch, preallocated to m.
	sums    []uint32
	blocked bool
	oneShot bool
	k       int
	wpv     int
	shift   uint

	// Probe accounting, owned by the probing goroutine; read them from
	// the same goroutine or after it stops.
	hits        uint64
	escalations uint64
	retries     uint64
}

// NewFastPath builds a prober over m. The hash family and key encoder
// are reconstructed purely from the map's geometry header — the same
// information a kernel consumer would read — so probe indexes are
// derived exactly as the publishing filter derives them.
func NewFastPath(m *Map) (*FastPath, error) {
	fam, err := m.geom.validate()
	if err != nil {
		return nil, err
	}
	return &FastPath{
		m:       m,
		fam:     fam,
		enc:     packet.NewKeyEncoder(m.geom.HolePunch),
		sums:    make([]uint32, 0, m.geom.M),
		blocked: m.geom.Layout == hashes.LayoutBlocked,
		oneShot: m.geom.Scheme == hashes.SchemeOneShot,
		k:       m.geom.K,
		wpv:     m.wordsPerVec,
		shift:   uint(32 - m.prefixBits),
	}, nil
}

// Map returns the flat map the prober reads.
func (fp *FastPath) Map() *Map { return fp.m }

// Hits returns the number of probes answered Hit.
func (fp *FastPath) Hits() uint64 { return fp.hits }

// Escalations returns the number of probes answered Escalate.
func (fp *FastPath) Escalations() uint64 { return fp.escalations }

// Retries returns the number of seqlock retries across all probes — a
// measure of publisher/reader collision, not of errors.
func (fp *FastPath) Retries() uint64 { return fp.retries }

// SectionFor routes a packet to its map section by directory key:
// source prefix first (the outbound view, matching TenantManager.route
// and packet.Classify's source preference), then destination. Returns
// −1 when neither prefix is registered. An index-addressed map
// (PrefixBits 0) always routes to section 0.
//
//p2p:hotpath
func (fp *FastPath) SectionFor(pair packet.SocketPair) int {
	if fp.m.prefixBits == 0 {
		return 0
	}
	if s := fp.lookup(uint32(pair.SrcAddr) >> fp.shift); s >= 0 {
		return s
	}
	return fp.lookup(uint32(pair.DstAddr) >> fp.shift)
}

// lookup binary-searches the directory (sorted ascending by route key)
// for key.
//
//p2p:hotpath
func (fp *FastPath) lookup(key uint32) int {
	w := fp.m.words
	lo, hi := 0, len(fp.m.secs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if uint32(atomic.LoadUint64(&w[headerWords+mid*dirEntryWords])) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(fp.m.secs) && uint32(atomic.LoadUint64(&w[headerWords+lo*dirEntryWords])) == key {
		return lo
	}
	return -1
}

// Probe answers a verdict probe against section 0 — the single-filter
// form of ProbeSection.
//
//p2p:hotpath
func (fp *FastPath) Probe(pair packet.SocketPair, dir packet.Direction) Verdict {
	v, _ := fp.ProbeSectionTagged(0, pair, dir)
	return v
}

// ProbeSection answers a verdict probe against section sec.
//
//p2p:hotpath
func (fp *FastPath) ProbeSection(sec int, pair packet.SocketPair, dir packet.Direction) Verdict {
	v, _ := fp.ProbeSectionTagged(sec, pair, dir)
	return v
}

// ProbeSectionTagged is ProbeSection returning also the (even) seqlock
// generation the verdict was computed under: the whole probe — flags,
// current index, every bit load — happened between two reads of that
// generation, so the verdict is guaranteed to reflect a single
// published state, never a mix of two rotations. The race proofs key
// their expected-verdict tables on it.
//
//p2p:hotpath
func (fp *FastPath) ProbeSectionTagged(sec int, pair packet.SocketPair, dir packet.Direction) (Verdict, uint64) {
	// Index derivation is generation-independent (pure function of key
	// bytes and geometry), so it happens once, outside the retry loop.
	// Inbound packets probe the inverse tuple σ̄, exactly as the filter
	// does.
	var key []byte
	if dir == packet.Outbound {
		key = fp.enc.Outbound(pair)
	} else {
		key = fp.enc.Inbound(pair)
	}
	switch {
	case fp.blocked:
		fp.sums = fp.fam.AppendBlocked(fp.sums[:0], fp.fam.Sum64(key))
	case fp.oneShot:
		fp.sums = fp.fam.AppendDerived(fp.sums[:0], fp.fam.Sum64(key))
	default:
		fp.sums = fp.fam.Sum(fp.sums[:0], key)
	}
	w := fp.m.words
	base := fp.m.sectionBase(sec)
	for {
		g1 := atomic.LoadUint64(&w[base+secGen])
		if g1&1 != 0 {
			// A publish is in flight; spin until it lands. Publication
			// is bounded, lock-free work between packet batches, so the
			// window is microseconds.
			fp.retries++
			continue
		}
		v := fp.probeOnce(base, dir)
		if atomic.LoadUint64(&w[base+secGen]) == g1 {
			if v == Hit {
				fp.hits++
			} else {
				fp.escalations++
			}
			return v, g1
		}
		fp.retries++
	}
}

// probeOnce computes a candidate verdict from the section's current
// words. The caller validates the seqlock generation around it; any
// value read here may be torn and is therefore range-guarded before
// use, and the result is discarded on generation mismatch.
//
//p2p:hotpath
func (fp *FastPath) probeOnce(base int, dir packet.Direction) Verdict {
	w := fp.m.words
	if atomic.LoadUint64(&w[base+secFlags])&flagLive == 0 {
		return Escalate
	}
	if dir == packet.Outbound {
		// Outbound: pass without escalation only if the flow is already
		// marked in all k vectors — then the slow-path re-mark would be
		// a no-op. A fresh flow, or one whose newest vector was cleared
		// by rotation, escalates so the slow path re-marks it.
		for v := 0; v < fp.k; v++ {
			vecBase := base + sectionHeaderWords + v*fp.wpv
			for _, h := range fp.sums {
				if atomic.LoadUint64(&w[vecBase+int(h/64)])&(1<<(h%64)) == 0 {
					return Escalate
				}
			}
		}
		return Hit
	}
	cur := atomic.LoadUint64(&w[base+secCurIdx])
	if cur >= uint64(fp.k) {
		// Torn or hostile index: never read out of the section. The
		// generation check will retry a torn read; a corrupt map simply
		// escalates everything.
		return Escalate
	}
	vecBase := base + sectionHeaderWords + int(cur)*fp.wpv
	for _, h := range fp.sums {
		if atomic.LoadUint64(&w[vecBase+int(h/64)])&(1<<(h%64)) == 0 {
			return Escalate
		}
	}
	return Hit
}
