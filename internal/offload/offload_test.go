package offload

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

// offloadConfigs spans every index-derivation path a map must describe:
// the classic per-index family, the one-shot derived scheme, the
// blocked cache-line layout, and hole punching (which changes the key
// bytes, not the hashing).
func offloadConfigs() map[string]core.Config {
	return map[string]core.Config{
		"classic": {K: 3, NBits: 12, M: 4, DeltaT: time.Second, Seed: 1},
		"oneshot": {K: 3, NBits: 12, M: 4, DeltaT: time.Second, Seed: 1,
			HashScheme: hashes.SchemeOneShot},
		"blocked": {K: 3, NBits: 12, M: 4, DeltaT: time.Second, Seed: 1,
			Layout: hashes.LayoutBlocked},
		"holepunch": {K: 3, NBits: 12, M: 4, DeltaT: time.Second, Seed: 1,
			HolePunch: true},
		"subword": {K: 2, NBits: 5, M: 2, DeltaT: time.Second, Seed: 1},
		"jenkins": {K: 4, NBits: 10, M: 3, DeltaT: time.Second, Seed: 1,
			HashKind: hashes.Jenkins},
	}
}

// testPairs returns a deterministic spread of socket pairs.
func testPairs(n int) []packet.SocketPair {
	pairs := make([]packet.SocketPair, n)
	for i := range pairs {
		u := uint64(i)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		pairs[i] = packet.SocketPair{
			Proto:   packet.TCP,
			SrcAddr: packet.Addr(0x0a000000 | uint32(u)&0xffff),
			SrcPort: uint16(u>>16) | 1,
			DstAddr: packet.Addr(0xc0a80000 | uint32(u>>24)&0xffff),
			DstPort: uint16(u>>40) | 1,
		}
	}
	return pairs
}

func TestGeometryPackRoundTrip(t *testing.T) {
	for name, cfg := range offloadConfigs() {
		g := GeometryOf(cfg)
		if got := unpackGeometry(g.pack()); got != g {
			t.Errorf("%s: pack/unpack mismatch: %+v != %+v", name, got, g)
		}
		if _, err := g.validate(); err != nil {
			t.Errorf("%s: validate: %v", name, err)
		}
	}
}

func TestNewMapRejects(t *testing.T) {
	good := GeometryOf(core.Config{K: 2, NBits: 8, M: 2})
	cases := []struct {
		name     string
		geom     Geometry
		sections int
		prefix   int
		want     error
	}{
		{"zero k", Geometry{NBits: 8, M: 2, Kind: hashes.FNVDouble, Scheme: hashes.SchemePerIndex, Layout: hashes.LayoutClassic}, 1, 0, ErrMapGeometry},
		{"huge m", Geometry{K: 2, NBits: 8, M: maxMapM + 1, Kind: hashes.FNVDouble, Scheme: hashes.SchemePerIndex, Layout: hashes.LayoutClassic}, 1, 0, ErrMapGeometry},
		{"nbits 0", Geometry{K: 2, M: 2, Kind: hashes.FNVDouble, Scheme: hashes.SchemePerIndex, Layout: hashes.LayoutClassic}, 1, 0, ErrMapGeometry},
		{"unresolved scheme", Geometry{K: 2, NBits: 8, M: 2, Kind: hashes.FNVDouble, Layout: hashes.LayoutClassic}, 1, 0, ErrMapGeometry},
		{"blocked perindex", Geometry{K: 2, NBits: 8, M: 2, Kind: hashes.FNVDouble, Scheme: hashes.SchemePerIndex, Layout: hashes.LayoutBlocked}, 1, 0, ErrMapGeometry},
		{"zero sections", good, 0, 0, ErrMapGeometry},
		{"too many sections", good, maxMapSections + 1, 0, ErrMapGeometry},
		{"prefix too wide", good, 1, 33, ErrMapGeometry},
	}
	for _, tc := range cases {
		if _, err := NewMap(tc.geom, tc.sections, tc.prefix); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestPublishProbeParity is the core correctness property: after a
// Publish, a FastPath probe answers Hit exactly when the filter itself
// would find every bit set — for inbound, precisely Filter.Contains;
// for outbound, only when a re-mark would be a no-op.
func TestPublishProbeParity(t *testing.T) {
	for name, cfg := range offloadConfigs() {
		t.Run(name, func(t *testing.T) {
			f, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMap(GeometryOf(cfg), 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := NewFastPath(m)
			if err != nil {
				t.Fatal(err)
			}
			pairs := testPairs(256)
			for i := 0; i < len(pairs); i += 2 {
				f.Mark(pairs[i])
			}
			if err := m.Section(0).Publish(f); err != nil {
				t.Fatal(err)
			}
			checkParity(t, f, fp, pairs)

			// Incremental republish after more marks and a rotation: the
			// diff-based publish must converge to the filter's new state,
			// including the bits rotation cleared.
			f.Rotate()
			for i := 1; i < len(pairs); i += 4 {
				f.Mark(pairs[i])
			}
			if err := m.Section(0).Publish(f); err != nil {
				t.Fatal(err)
			}
			checkParity(t, f, fp, pairs)
		})
	}
}

func checkParity(t *testing.T, f *core.Filter, fp *FastPath, pairs []packet.SocketPair) {
	t.Helper()
	for i, p := range pairs {
		wantIn := Escalate
		if f.Contains(p.Inverse()) {
			wantIn = Hit
		}
		if got := fp.Probe(p.Inverse(), packet.Inbound); got != wantIn {
			t.Fatalf("pair %d inbound: got %v, want %v", i, got, wantIn)
		}
		// Outbound ground truth: Hit only when marking is a no-op in
		// every vector (total set-bit count unchanged by a Mark).
		wantOut := Hit
		ones := 0
		for v := 0; v < f.VectorCount(); v++ {
			ones += f.Vector(v).OnesCount()
		}
		f.Mark(p)
		after := 0
		for v := 0; v < f.VectorCount(); v++ {
			after += f.Vector(v).OnesCount()
		}
		if after != ones {
			wantOut = Escalate
		}
		if got := fp.Probe(p, packet.Outbound); got != wantOut {
			t.Fatalf("pair %d outbound: got %v, want %v", i, got, wantOut)
		}
		// The ground-truth check marked the pair; republish so later
		// iterations (and the next checkParity call) stay in sync.
		if err := fp.Map().Section(0).Publish(f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublishRejects(t *testing.T) {
	cfg := core.Config{K: 2, NBits: 8, M: 2, DeltaT: time.Second}
	m, err := NewMap(GeometryOf(cfg), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.New(core.Config{K: 3, NBits: 8, M: 2, DeltaT: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Section(0).Publish(other); !errors.Is(err, ErrMapGeometry) {
		t.Fatalf("geometry mismatch: got %v, want ErrMapGeometry", err)
	}
}

func TestSetLiveGatesProbes(t *testing.T) {
	cfg := core.Config{K: 2, NBits: 8, M: 2, DeltaT: time.Second}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMap(GeometryOf(cfg), 1, 0)
	fp, _ := NewFastPath(m)
	pair := testPairs(1)[0]
	f.Mark(pair)

	// Before any publish the section is not live: everything escalates.
	if got := fp.Probe(pair, packet.Outbound); got != Escalate {
		t.Fatalf("pre-publish probe: got %v, want Escalate", got)
	}
	if err := m.Section(0).Publish(f); err != nil {
		t.Fatal(err)
	}
	if got := fp.Probe(pair, packet.Outbound); got != Hit {
		t.Fatalf("post-publish probe: got %v, want Hit", got)
	}
	m.Section(0).SetLive(false)
	if m.Section(0).Live() {
		t.Fatal("section still live after SetLive(false)")
	}
	if got := fp.Probe(pair, packet.Outbound); got != Escalate {
		t.Fatalf("dead-section probe: got %v, want Escalate", got)
	}
	m.Section(0).SetLive(true)
	if got := fp.Probe(pair, packet.Outbound); got != Hit {
		t.Fatalf("revived-section probe: got %v, want Hit", got)
	}
}

func TestSectionRouting(t *testing.T) {
	cfg := core.Config{K: 2, NBits: 8, M: 2, DeltaT: time.Second}
	const prefixBits = 8
	m, err := NewMap(GeometryOf(cfg), 3, prefixBits)
	if err != nil {
		t.Fatal(err)
	}
	// Keys must be registered ascending for routed lookup.
	m.SetSectionKey(0, 10, "tenant-a")
	m.SetSectionKey(1, 20, "tenant-b")
	m.SetSectionKey(2, 30, "tenant-c")
	fp, err := NewFastPath(m)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(src, dst uint32) packet.SocketPair {
		return packet.SocketPair{Proto: packet.TCP, SrcAddr: packet.Addr(src), SrcPort: 1, DstAddr: packet.Addr(dst), DstPort: 2}
	}
	cases := []struct {
		pair packet.SocketPair
		want int
	}{
		{mk(10<<24|5, 99<<24), 0},       // src prefix registered
		{mk(99<<24, 20<<24|7), 1},       // dst prefix fallback
		{mk(30<<24, 10<<24), 2},         // src wins over dst
		{mk(99<<24, 98<<24), -1},        // neither registered
		{mk(21<<24, 19<<24), -1},        // between keys
	}
	for i, tc := range cases {
		if got := fp.SectionFor(tc.pair); got != tc.want {
			t.Errorf("case %d: SectionFor = %d, want %d", i, got, tc.want)
		}
	}
	if key, idh := m.SectionKey(1); key != 20 || idh != hashes.FNV1a64([]byte("tenant-b")) {
		t.Fatalf("SectionKey(1) = %d, %#x", key, idh)
	}
}

func TestWriteToOpenBytesRoundTrip(t *testing.T) {
	for name, cfg := range offloadConfigs() {
		t.Run(name, func(t *testing.T) {
			f, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := NewMap(GeometryOf(cfg), 2, 0)
			m.SetSectionKey(0, 0, "t0")
			m.SetSectionKey(1, 1, "t1")
			pairs := testPairs(64)
			for _, p := range pairs[:32] {
				f.Mark(p)
			}
			if err := m.Section(0).Publish(f); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := m.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(m.Size()) {
				t.Fatalf("WriteTo wrote %d bytes, Size says %d", n, m.Size())
			}
			re, err := OpenBytes(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if re.Geometry() != m.Geometry() || re.Sections() != m.Sections() {
				t.Fatal("reopened map header mismatch")
			}
			// The reopened map is probe-only.
			if err := re.Section(0).Publish(f); !errors.Is(err, ErrMapReadOnly) {
				t.Fatalf("Publish on opened map: got %v, want ErrMapReadOnly", err)
			}
			// Verdict equivalence between the live map and its image.
			live, _ := NewFastPath(m)
			img, _ := NewFastPath(re)
			for _, p := range pairs {
				for _, dir := range []packet.Direction{packet.Outbound, packet.Inbound} {
					if lv, iv := live.ProbeSection(0, p, dir), img.ProbeSection(0, p, dir); lv != iv {
						t.Fatalf("verdict divergence %v: live %v, image %v", dir, lv, iv)
					}
				}
			}
			// A second serialization of the image is byte-identical.
			var buf2 bytes.Buffer
			if _, err := re.WriteTo(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("WriteTo image not stable across reopen")
			}
		})
	}
}

func TestOpenBytesRejects(t *testing.T) {
	cfg := core.Config{K: 2, NBits: 8, M: 2, DeltaT: time.Second}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := func() []byte {
		m, _ := NewMap(GeometryOf(cfg), 2, 4)
		m.SetSectionKey(0, 1, "a")
		m.SetSectionKey(1, 2, "b")
		if err := m.Section(0).Publish(f); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	put := func(b []byte, word int, v uint64) []byte {
		out := append([]byte(nil), b...)
		for i := 0; i < 8; i++ {
			out[word*8+i] = byte(v >> (8 * i))
		}
		return out
	}
	img := base()
	if _, err := OpenBytes(img); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	secBase := func(s int) int { return headerWords + 2*dirEntryWords + s*(sectionHeaderWords+2*4) }
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrMapTruncated},
		{"short", img[:40], ErrMapTruncated},
		{"unaligned", img[:41], ErrMapTruncated},
		{"truncated body", img[:len(img)-8], ErrMapTruncated},
		{"trailing junk", append(append([]byte(nil), img...), make([]byte, 8)...), ErrMapTruncated},
		{"bad magic", put(img, hdrMagic, 0xdead), ErrMapMagic},
		{"bad version", put(img, hdrVersion, 99), ErrMapVersion},
		{"geometry lie k=0", put(img, hdrGeom, unpackGeometryZeroK(img)), ErrMapGeometry},
		{"vecwords lie", put(img, hdrVecWords, 7), ErrMapGeometry},
		{"sections lie", put(img, hdrSections, 3), ErrMapTruncated},
		{"prefix lie", put(img, hdrPrefix, 40), ErrMapGeometry},
		{"reserved dirty", put(img, hdrPrefix+1, 1), ErrMapCorrupt},
		{"unsorted keys", put(img, headerWords+dirEntryWords, 1), ErrMapCorrupt},
		{"key overflow", put(img, headerWords, 1 << 40), ErrMapCorrupt},
		{"bad offset", put(img, headerWords+2, 9999), ErrMapCorrupt},
		{"torn generation", put(img, secBase(0)+secGen, 3), ErrMapTorn},
		{"curidx out of range", put(img, secBase(0)+secCurIdx, 2), ErrMapCorrupt},
		{"unknown flags", put(img, secBase(0)+secFlags, 0x10), ErrMapCorrupt},
	}
	for _, tc := range cases {
		if _, err := OpenBytes(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Sub-word vectors must have no bits beyond 2^n.
	subCfg := core.Config{K: 1, NBits: 4, M: 1, DeltaT: time.Second}
	sm, _ := NewMap(GeometryOf(subCfg), 1, 0)
	sf, _ := core.New(subCfg)
	if err := sm.Section(0).Publish(sf); err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if _, err := sm.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	simg := put(sb.Bytes(), headerWords+dirEntryWords+sectionHeaderWords, 1<<20)
	if _, err := OpenBytes(simg); !errors.Is(err, ErrMapCorrupt) {
		t.Fatalf("overlong sub-word vector: got %v, want ErrMapCorrupt", err)
	}
}

// unpackGeometryZeroK rewrites an image's geometry word with K forced
// to zero, keeping the rest intact — a "geometry lies" mutation.
func unpackGeometryZeroK(img []byte) uint64 {
	var w uint64
	for i := 0; i < 8; i++ {
		w |= uint64(img[hdrGeom*8+i]) << (8 * i)
	}
	return w &^ 0xffff
}

func TestMissRing(t *testing.T) {
	r := NewMissRing[int](3) // rounds up to 4
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push accepted on full ring")
	}
	if r.Overflow() != 1 {
		t.Fatalf("Overflow = %d, want 1", r.Overflow())
	}
	got := r.Drain(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drain[%d] = %d, want %d (FIFO)", i, v, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
	// Wraparound reuse.
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			r.TryPush(round*10 + i)
		}
		got = r.Drain(got[:0])
		if len(got) != 3 || got[0] != round*10 {
			t.Fatalf("round %d: drain %v", round, got)
		}
	}
}

func TestProbeZeroAlloc(t *testing.T) {
	cfg := core.Config{K: 4, NBits: 16, M: 3, DeltaT: time.Second}
	f, _ := core.New(cfg)
	m, _ := NewMap(GeometryOf(cfg), 1, 0)
	fp, _ := NewFastPath(m)
	pairs := testPairs(32)
	for _, p := range pairs {
		f.Mark(p)
	}
	if err := m.Section(0).Publish(f); err != nil {
		t.Fatal(err)
	}
	ring := NewMissRing[packet.SocketPair](64)
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		p := pairs[i%len(pairs)]
		i++
		if fp.Probe(p, packet.Inbound) == Escalate {
			ring.TryPush(p)
		}
		_ = fp.SectionFor(p)
	}); n != 0 {
		t.Fatalf("probe path allocates %.1f/op, want 0", n)
	}
}
