package offload

import (
	"encoding/binary"
	"io"
	"strconv"
	"sync/atomic"

	"p2pbound/internal/errfmt"
)

// WriteTo serializes a seqlock-coherent snapshot of the map as the
// little-endian image of its word array, suitable for OpenBytes or an
// external consumer. Each section is copied under its generation — the
// copy retries until a read of the generation brackets the section
// contents unchanged — so the written image never mixes two
// publications even while publishers are running. It implements
// io.WriterTo; the daemon's -offload-map mode feeds it through the
// same atomic tmp+rename+fsync publication as state snapshots.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, m.Size())
	// Header and directory words are setup-time constants; copy them
	// atomically anyway so WriteTo may overlap SetSectionKey without a
	// race report.
	fixed := headerWords + len(m.secs)*dirEntryWords
	for i := 0; i < fixed; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], atomic.LoadUint64(&m.words[i]))
	}
	for s := range m.secs {
		base := m.sectionBase(s)
		for {
			g1 := atomic.LoadUint64(&m.words[base+secGen])
			if g1&1 != 0 {
				continue
			}
			binary.LittleEndian.PutUint64(buf[(base+secGen)*8:], g1)
			for i := base + 1; i < base+m.secWords; i++ {
				binary.LittleEndian.PutUint64(buf[i*8:], atomic.LoadUint64(&m.words[i]))
			}
			if atomic.LoadUint64(&m.words[base+secGen]) == g1 {
				break
			}
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// OpenBytes reconstructs a probe-ready map from a WriteTo image,
// validating every structural invariant before any use: magic,
// version, geometry (through the same resolution rules the filter
// applies), exact length, directory offsets, route-key ordering,
// section generations (an odd generation means the image was torn
// mid-publish and is rejected), current-index ranges, and flag bits.
// Any invalid input yields one of the ErrMap* sentinels wrapped with
// detail — never a panic, an unbounded allocation, or a map whose
// probes misbehave. The returned map is read-only: probe it with
// NewFastPath; Publish on it is refused (ErrMapReadOnly).
//
//p2p:codec offloadmap decode
func OpenBytes(data []byte) (*Map, error) {
	if len(data) < headerWords*8 || len(data)%8 != 0 {
		return nil, errfmt.Detail("offload: "+strconv.Itoa(len(data))+" bytes", ErrMapTruncated)
	}
	word := func(i int) uint64 { return binary.LittleEndian.Uint64(data[i*8:]) }
	if got := word(hdrMagic); got != mapMagic {
		return nil, errfmt.Detail("offload: magic 0x"+strconv.FormatUint(got, 16), ErrMapMagic)
	}
	if v := word(hdrVersion); v != mapVersion {
		return nil, errfmt.Detail("offload: version "+strconv.FormatUint(v, 10), ErrMapVersion)
	}
	g := unpackGeometry(word(hdrGeom))
	fam, err := g.validate()
	if err != nil {
		return nil, err
	}
	wpv := g.vecWords()
	if got := word(hdrVecWords); got != uint64(wpv) {
		return nil, errfmt.Detail("offload: words/vector "+strconv.FormatUint(got, 10)+" != "+strconv.Itoa(wpv), ErrMapGeometry)
	}
	sections := word(hdrSections)
	if sections < 1 || sections > maxMapSections {
		return nil, errfmt.Detail("offload: sections="+strconv.FormatUint(sections, 10), ErrMapGeometry)
	}
	prefixBits := word(hdrPrefix)
	if prefixBits > 32 {
		return nil, errfmt.Detail("offload: prefix bits="+strconv.FormatUint(prefixBits, 10), ErrMapGeometry)
	}
	if word(hdrPrefix+1) != 0 || word(hdrPrefix+2) != 0 {
		return nil, errfmt.Detail("offload: reserved header words", ErrMapCorrupt)
	}
	secWords := sectionHeaderWords + g.K*wpv
	total := headerWords + int(sections)*(dirEntryWords+secWords)
	if len(data) != total*8 {
		return nil, errfmt.Detail("offload: "+strconv.Itoa(len(data))+" bytes != "+strconv.Itoa(total*8)+" for declared geometry", ErrMapTruncated)
	}
	m := &Map{
		words:       make([]uint64, total),
		geom:        g,
		fam:         fam,
		wordsPerVec: wpv,
		secWords:    secWords,
		prefixBits:  int(prefixBits),
		secs:        make([]Section, sections),
		opened:      true,
	}
	for i := range m.words {
		m.words[i] = word(i)
	}
	// tailMask zeroes the invalid high bits of a sub-word vector
	// (NBits < 6); a publisher never writes them, so set bits there mean
	// corruption.
	tailMask := ^uint64(0)
	if g.NBits < 6 {
		tailMask = 1<<(1<<g.NBits) - 1
	}
	var prevKey uint32
	for s := 0; s < int(sections); s++ {
		e := headerWords + s*dirEntryWords
		key := m.words[e]
		if key > uint64(^uint32(0)) {
			return nil, errfmt.Detail("offload: section "+strconv.Itoa(s)+" route key overflow", ErrMapCorrupt)
		}
		if prefixBits > 0 {
			if s > 0 && uint32(key) <= prevKey {
				return nil, errfmt.Detail("offload: directory keys not strictly ascending", ErrMapCorrupt)
			}
			prevKey = uint32(key)
		}
		base := m.sectionBase(s)
		if m.words[e+2] != uint64(base) {
			return nil, errfmt.Detail("offload: section "+strconv.Itoa(s)+" offset "+strconv.FormatUint(m.words[e+2], 10)+" != "+strconv.Itoa(base), ErrMapCorrupt)
		}
		if gen := m.words[base+secGen]; gen&1 != 0 {
			return nil, errfmt.Detail("offload: section "+strconv.Itoa(s)+" generation "+strconv.FormatUint(gen, 10), ErrMapTorn)
		}
		if cur := m.words[base+secCurIdx]; cur >= uint64(g.K) {
			return nil, errfmt.Detail("offload: section "+strconv.Itoa(s)+" current index "+strconv.FormatUint(cur, 10), ErrMapCorrupt)
		}
		if flags := m.words[base+secFlags]; flags&^uint64(flagLive) != 0 {
			return nil, errfmt.Detail("offload: section "+strconv.Itoa(s)+" flags 0x"+strconv.FormatUint(m.words[base+secFlags], 16), ErrMapCorrupt)
		}
		if tailMask != ^uint64(0) {
			for v := 0; v < g.K; v++ {
				if m.words[base+sectionHeaderWords+v*wpv]&^tailMask != 0 {
					return nil, errfmt.Detail("offload: section "+strconv.Itoa(s)+" vector "+strconv.Itoa(v)+" has bits beyond 2^n", ErrMapCorrupt)
				}
			}
		}
		m.secs[s] = Section{m: m, base: base}
	}
	return m, nil
}
