package netsim

import (
	"testing"

	"p2pbound/internal/faultinject"
)

func TestMeshLossAndPartition(t *testing.T) {
	part := faultinject.NewPartitionSchedule(faultinject.PartitionConfig{Nodes: 2, Rounds: 1, Episodes: 1, MaxSpan: 1}, 3)
	// With 2 nodes the bipartition must cut 0↔1 in some direction
	// during round 0; find a blocked direction.
	from, to := 0, 1
	if !part.Blocked(0, 0, 1) {
		from, to = 1, 0
	}
	if !part.Blocked(0, from, to) {
		t.Fatal("single-episode 2-node schedule cut nothing in round 0")
	}
	m := NewMesh(2, LinkConfig{Partitions: part, Seed: 1})
	m.Send(from, to, []byte("x"))
	got := 0
	m.Deliver(to, func([]byte) { got++ })
	if got != 0 {
		t.Fatal("frame crossed a cut link")
	}
	m.NextRound() // beyond the schedule: healed
	m.Send(from, to, []byte("x"))
	m.Deliver(to, func([]byte) { got++ })
	if got != 1 {
		t.Fatalf("healed link delivered %d frames, want 1", got)
	}
}

func TestMeshDupAndReorderDeterministic(t *testing.T) {
	run := func() []byte {
		m := NewMesh(2, LinkConfig{DupProb: 0.3, ReorderWindow: 4, LossProb: 0.1, Seed: 99})
		for i := byte(0); i < 50; i++ {
			m.Send(0, 1, []byte{i})
		}
		var order []byte
		m.Deliver(1, func(f []byte) { order = append(order, f[0]) })
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
	if len(a) == 50 {
		t.Fatal("no loss or duplication observed at these probabilities (suspicious)")
	}
	sent, delivered, dropped, duplicated := NewMesh(2, LinkConfig{}).Counters()
	if sent != 0 || delivered != 0 || dropped != 0 || duplicated != 0 {
		t.Fatal("fresh mesh has nonzero counters")
	}
}

// TestMeshSenderBufferReuse: frames are copied on Send, so a sender
// reusing its encode buffer cannot corrupt in-flight frames.
func TestMeshSenderBufferReuse(t *testing.T) {
	m := NewMesh(2, LinkConfig{})
	buf := []byte{1}
	m.Send(0, 1, buf)
	buf[0] = 2
	m.Send(0, 1, buf)
	var got []byte
	m.Deliver(1, func(f []byte) { got = append(got, f[0]) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}
