package netsim

import (
	"math/rand/v2"
	"sync"

	"p2pbound/internal/faultinject"
)

// LinkConfig parameterizes the frame-level fault model of a Mesh.
type LinkConfig struct {
	// LossProb drops each frame independently with this probability.
	LossProb float64
	// DupProb enqueues each delivered frame twice with this
	// probability — a retransmit or a mirrored tap.
	DupProb float64
	// ReorderWindow bounds the shuffle applied to each destination's
	// queue at delivery time: a frame ends up strictly less than this
	// many positions from where it arrived. ≤1 preserves order.
	ReorderWindow int
	// Partitions, when non-nil, cuts links per its round schedule; the
	// caller advances rounds with NextRound.
	Partitions *faultinject.PartitionSchedule
	// Seed drives loss, duplication, and reorder draws.
	Seed uint64
}

// Mesh is a deterministic N-node frame fabric for replication chaos
// tests: unicast with per-frame loss, duplication, bounded reorder,
// and a partition schedule, all seeded. Frames are copied on Send, so
// senders may reuse their encode buffer. Methods are mutex-guarded so
// replicas may run on their own goroutines; determinism holds whenever
// the send order is deterministic (a single driving goroutine, or
// barriers between rounds).
type Mesh struct {
	mu    sync.Mutex
	n     int
	cfg   LinkConfig
	rng   *rand.Rand
	round int
	queue [][][]byte // per destination

	sent, delivered, dropped, duplicated int64
}

// NewMesh builds a fabric connecting nodes 0..nodes-1.
func NewMesh(nodes int, cfg LinkConfig) *Mesh {
	return &Mesh{
		n:     nodes,
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa0761d6478bd642f)),
		queue: make([][][]byte, nodes),
	}
}

// Send queues one frame from node `from` to node `to`, subject to the
// partition schedule, loss, and duplication. Out-of-range destinations
// are dropped silently, like any misrouted datagram.
func (m *Mesh) Send(from, to int, frame []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent++
	if to < 0 || to >= m.n || from == to {
		m.dropped++
		return
	}
	if p := m.cfg.Partitions; p != nil && p.Blocked(m.round, from, to) {
		m.dropped++
		return
	}
	if m.cfg.LossProb > 0 && m.rng.Float64() < m.cfg.LossProb {
		m.dropped++
		return
	}
	cp := append([]byte(nil), frame...)
	m.queue[to] = append(m.queue[to], cp)
	if m.cfg.DupProb > 0 && m.rng.Float64() < m.cfg.DupProb {
		m.queue[to] = append(m.queue[to], cp) // same backing bytes: receivers must not mutate
		m.duplicated++
	}
}

// Deliver drains every frame queued for node `to`, applying the
// bounded reorder, and hands each to fn. Frames sent while fn runs are
// not delivered in this call (fn runs outside the lock, so a handler
// may Send replies through the same mesh).
func (m *Mesh) Deliver(to int, fn func(frame []byte)) {
	m.mu.Lock()
	if to < 0 || to >= m.n || len(m.queue[to]) == 0 {
		m.mu.Unlock()
		return
	}
	pending := m.queue[to]
	m.queue[to] = nil
	if m.cfg.ReorderWindow > 1 {
		faultinject.Reorder(pending, m.cfg.ReorderWindow, m.rng.Uint64())
	}
	m.delivered += int64(len(pending))
	m.mu.Unlock()
	for _, f := range pending {
		fn(f)
	}
}

// NextRound advances the partition schedule's round counter.
func (m *Mesh) NextRound() {
	m.mu.Lock()
	m.round++
	m.mu.Unlock()
}

// Round returns the current partition round.
func (m *Mesh) Round() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.round
}

// Counters reports lifetime frame accounting: sent includes dropped;
// delivered counts frames handed to Deliver callbacks (duplicates
// included once queued).
func (m *Mesh) Counters() (sent, delivered, dropped, duplicated int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent, m.delivered, m.dropped, m.duplicated
}
