// Package netsim replays packet traces through a filter installed at the
// edge of a client network, reproducing the simulation methodology of
// Section 5.3: the filter sees every packet in timestamp order, the
// dropping probability is derived from the measured (post-filter) uplink
// throughput, and — optionally — a dropped inbound packet pins its socket
// pair so that every future packet matching σ or σ̄ is dropped without
// consulting the filter, emulating a blocked connection in a replayed
// trace.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/ingest"
	"p2pbound/internal/packet"
	"p2pbound/internal/red"
	"p2pbound/internal/stats"
	"p2pbound/internal/throughput"
)

// Filter is the packet-admission interface shared by the bitmap filter,
// the SPI baseline, and the naive timer table.
type Filter interface {
	// Advance moves the filter's clock to simulated time ts.
	Advance(ts time.Duration)
	// Process decides one packet's fate given the current conditional
	// dropping probability.
	Process(pkt *packet.Packet, pd float64) core.Verdict
}

// Config parameterizes a replay run.
type Config struct {
	// Prober maps uplink throughput to P_d. Nil means red.Always(1):
	// drop every stateless inbound packet (the Figure 8 setting).
	Prober red.Prober
	// BlockConnections enables the Section 5.3 blocked-connection
	// memory (used for the Figure 9 throughput-limiting simulation).
	BlockConnections bool
	// SeriesBucket is the resolution of the reported throughput and
	// drop-rate series; zero means one second.
	SeriesBucket time.Duration
	// MeterWindow is the uplink throughput averaging window feeding the
	// prober; zero means five one-second buckets.
	MeterWindow time.Duration
}

// Result is the outcome of one replay.
type Result struct {
	// OriginalUp/OriginalDown are the unfiltered throughput series (the
	// Figure 9-a curves); FilteredUp/FilteredDown the post-filter ones
	// (Figure 9-b).
	OriginalUp, OriginalDown *stats.TimeSeries
	FilteredUp, FilteredDown *stats.TimeSeries

	TotalPackets    int64
	InboundPackets  int64
	OutboundPackets int64
	FilterDropped   int64 // dropped by the filter's own decision
	Blocked         int64 // dropped by the blocked-connection memory

	// Per-bucket drop accounting for the Figure 8 scatter.
	bucket      time.Duration
	bucketTotal []int64
	bucketDrop  []int64
}

// DropRate returns the overall fraction of packets dropped (filter drops
// plus blocked-connection drops).
func (r *Result) DropRate() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.FilterDropped+r.Blocked) / float64(r.TotalPackets)
}

// DropRateSeries returns the per-bucket drop rates: the data behind one
// axis of the Figure 8 scatter plot. Buckets with no packets yield 0.
func (r *Result) DropRateSeries() []float64 {
	out := make([]float64, len(r.bucketTotal))
	for i, total := range r.bucketTotal {
		if total > 0 {
			out[i] = float64(r.bucketDrop[i]) / float64(total)
		}
	}
	return out
}

// run is the per-packet replay state machine shared by the slice and
// batch entry points.
type run struct {
	f       Filter
	prober  red.Prober
	upMeter *throughput.Meter
	blocked map[[packet.KeySize]byte]struct{}
	r       *Result
}

func newRun(f Filter, cfg Config) (*run, error) {
	prober := cfg.Prober
	if prober == nil {
		prober = red.Always(1)
	}
	bucket := cfg.SeriesBucket
	if bucket <= 0 {
		bucket = time.Second
	}
	meterWindow := cfg.MeterWindow
	if meterWindow <= 0 {
		meterWindow = 5 * time.Second
	}
	nBuckets := int(meterWindow / time.Second)
	if nBuckets < 1 {
		nBuckets = 1
	}
	upMeter, err := throughput.NewMeter(time.Second, nBuckets)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}

	r := &Result{bucket: bucket}
	for _, name := range []**stats.TimeSeries{&r.OriginalUp, &r.OriginalDown, &r.FilteredUp, &r.FilteredDown} {
		ts, err := stats.NewTimeSeries(bucket)
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		*name = ts
	}

	var blocked map[[packet.KeySize]byte]struct{}
	if cfg.BlockConnections {
		blocked = make(map[[packet.KeySize]byte]struct{})
	}
	return &run{f: f, prober: prober, upMeter: upMeter, blocked: blocked, r: r}, nil
}

// step replays one packet.
func (s *run) step(pkt *packet.Packet) {
	r := s.r
	s.f.Advance(pkt.TS)
	r.TotalPackets++
	bi := int(pkt.TS / r.bucket)
	for len(r.bucketTotal) <= bi {
		r.bucketTotal = append(r.bucketTotal, 0)
		r.bucketDrop = append(r.bucketDrop, 0)
	}
	r.bucketTotal[bi]++

	if pkt.Dir == packet.Outbound {
		r.OutboundPackets++
		r.OriginalUp.Add(pkt.TS, pkt.Len)
	} else {
		r.InboundPackets++
		r.OriginalDown.Add(pkt.TS, pkt.Len)
	}

	// Blocked-connection memory: both orientations of a blocked
	// socket pair are dropped without consulting the filter.
	if s.blocked != nil {
		_, hit := s.blocked[pkt.Pair.Key()]
		if !hit {
			_, hit = s.blocked[pkt.Pair.Inverse().Key()]
		}
		if hit {
			r.Blocked++
			r.bucketDrop[bi]++
			return
		}
	}

	pd := s.prober.Pd(s.upMeter.Rate(pkt.TS))
	if s.f.Process(pkt, pd) == core.Drop {
		r.FilterDropped++
		r.bucketDrop[bi]++
		if s.blocked != nil {
			s.blocked[pkt.Pair.Key()] = struct{}{}
		}
		return
	}

	// The packet passed: it contributes to the post-filter series
	// and, if outbound, to the uplink throughput that drives P_d.
	if pkt.Dir == packet.Outbound {
		r.FilteredUp.Add(pkt.TS, pkt.Len)
		s.upMeter.Add(pkt.TS, pkt.Len)
	} else {
		r.FilteredDown.Add(pkt.TS, pkt.Len)
	}
}

// Replay feeds every packet through the filter and collects the result.
// Packets must be sorted by timestamp.
func Replay(packets []packet.Packet, f Filter, cfg Config) (*Result, error) {
	s, err := newRun(f, cfg)
	if err != nil {
		return nil, err
	}
	for i := range packets {
		s.step(&packets[i])
	}
	return s.r, nil
}

// ReplayIngest streams batches out of src through the filter — the
// constant-memory path: only one batch of packets is live at a time, so
// replaying a multi-gigabyte trace costs a batch plus the source's own
// buffers. Packets must arrive in timestamp order, as every Ingest
// source over a capture file guarantees.
func ReplayIngest(src ingest.Ingest, f Filter, cfg Config) (*Result, error) {
	s, err := newRun(f, cfg)
	if err != nil {
		return nil, err
	}
	b := ingest.NewBatch(0)
	for {
		n, err := src.ReadBatch(b)
		for i := 0; i < n; i++ {
			s.step(&b.Pkts[i])
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return s.r, nil
			}
			return s.r, fmt.Errorf("netsim: %w", err)
		}
	}
}
