// Package netsim replays packet traces through a filter installed at the
// edge of a client network, reproducing the simulation methodology of
// Section 5.3: the filter sees every packet in timestamp order, the
// dropping probability is derived from the measured (post-filter) uplink
// throughput, and — optionally — a dropped inbound packet pins its socket
// pair so that every future packet matching σ or σ̄ is dropped without
// consulting the filter, emulating a blocked connection in a replayed
// trace.
package netsim

import (
	"fmt"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/packet"
	"p2pbound/internal/red"
	"p2pbound/internal/stats"
	"p2pbound/internal/throughput"
)

// Filter is the packet-admission interface shared by the bitmap filter,
// the SPI baseline, and the naive timer table.
type Filter interface {
	// Advance moves the filter's clock to simulated time ts.
	Advance(ts time.Duration)
	// Process decides one packet's fate given the current conditional
	// dropping probability.
	Process(pkt *packet.Packet, pd float64) core.Verdict
}

// Config parameterizes a replay run.
type Config struct {
	// Prober maps uplink throughput to P_d. Nil means red.Always(1):
	// drop every stateless inbound packet (the Figure 8 setting).
	Prober red.Prober
	// BlockConnections enables the Section 5.3 blocked-connection
	// memory (used for the Figure 9 throughput-limiting simulation).
	BlockConnections bool
	// SeriesBucket is the resolution of the reported throughput and
	// drop-rate series; zero means one second.
	SeriesBucket time.Duration
	// MeterWindow is the uplink throughput averaging window feeding the
	// prober; zero means five one-second buckets.
	MeterWindow time.Duration
}

// Result is the outcome of one replay.
type Result struct {
	// OriginalUp/OriginalDown are the unfiltered throughput series (the
	// Figure 9-a curves); FilteredUp/FilteredDown the post-filter ones
	// (Figure 9-b).
	OriginalUp, OriginalDown *stats.TimeSeries
	FilteredUp, FilteredDown *stats.TimeSeries

	TotalPackets    int64
	InboundPackets  int64
	OutboundPackets int64
	FilterDropped   int64 // dropped by the filter's own decision
	Blocked         int64 // dropped by the blocked-connection memory

	// Per-bucket drop accounting for the Figure 8 scatter.
	bucket      time.Duration
	bucketTotal []int64
	bucketDrop  []int64
}

// DropRate returns the overall fraction of packets dropped (filter drops
// plus blocked-connection drops).
func (r *Result) DropRate() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.FilterDropped+r.Blocked) / float64(r.TotalPackets)
}

// DropRateSeries returns the per-bucket drop rates: the data behind one
// axis of the Figure 8 scatter plot. Buckets with no packets yield 0.
func (r *Result) DropRateSeries() []float64 {
	out := make([]float64, len(r.bucketTotal))
	for i, total := range r.bucketTotal {
		if total > 0 {
			out[i] = float64(r.bucketDrop[i]) / float64(total)
		}
	}
	return out
}

// Replay feeds every packet through the filter and collects the result.
// Packets must be sorted by timestamp.
func Replay(packets []packet.Packet, f Filter, cfg Config) (*Result, error) {
	prober := cfg.Prober
	if prober == nil {
		prober = red.Always(1)
	}
	bucket := cfg.SeriesBucket
	if bucket <= 0 {
		bucket = time.Second
	}
	meterWindow := cfg.MeterWindow
	if meterWindow <= 0 {
		meterWindow = 5 * time.Second
	}
	nBuckets := int(meterWindow / time.Second)
	if nBuckets < 1 {
		nBuckets = 1
	}
	upMeter, err := throughput.NewMeter(time.Second, nBuckets)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}

	r := &Result{bucket: bucket}
	for _, name := range []**stats.TimeSeries{&r.OriginalUp, &r.OriginalDown, &r.FilteredUp, &r.FilteredDown} {
		ts, err := stats.NewTimeSeries(bucket)
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		*name = ts
	}

	var blocked map[[packet.KeySize]byte]struct{}
	if cfg.BlockConnections {
		blocked = make(map[[packet.KeySize]byte]struct{})
	}

	for i := range packets {
		pkt := &packets[i]
		f.Advance(pkt.TS)
		r.TotalPackets++
		bi := int(pkt.TS / bucket)
		for len(r.bucketTotal) <= bi {
			r.bucketTotal = append(r.bucketTotal, 0)
			r.bucketDrop = append(r.bucketDrop, 0)
		}
		r.bucketTotal[bi]++

		if pkt.Dir == packet.Outbound {
			r.OutboundPackets++
			r.OriginalUp.Add(pkt.TS, pkt.Len)
		} else {
			r.InboundPackets++
			r.OriginalDown.Add(pkt.TS, pkt.Len)
		}

		// Blocked-connection memory: both orientations of a blocked
		// socket pair are dropped without consulting the filter.
		if blocked != nil {
			_, hit := blocked[pkt.Pair.Key()]
			if !hit {
				_, hit = blocked[pkt.Pair.Inverse().Key()]
			}
			if hit {
				r.Blocked++
				r.bucketDrop[bi]++
				continue
			}
		}

		pd := prober.Pd(upMeter.Rate(pkt.TS))
		if f.Process(pkt, pd) == core.Drop {
			r.FilterDropped++
			r.bucketDrop[bi]++
			if blocked != nil {
				blocked[pkt.Pair.Key()] = struct{}{}
			}
			continue
		}

		// The packet passed: it contributes to the post-filter series
		// and, if outbound, to the uplink throughput that drives P_d.
		if pkt.Dir == packet.Outbound {
			r.FilteredUp.Add(pkt.TS, pkt.Len)
			upMeter.Add(pkt.TS, pkt.Len)
		} else {
			r.FilteredDown.Add(pkt.TS, pkt.Len)
		}
	}
	return r, nil
}
