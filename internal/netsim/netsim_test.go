package netsim

import (
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/naive"
	"p2pbound/internal/packet"
	"p2pbound/internal/red"
	"p2pbound/internal/spi"
)

var (
	clientNet = packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)
	client    = packet.AddrFrom4(140, 112, 0, 10)
	remote    = packet.AddrFrom4(99, 1, 2, 3)
)

func mkPair(cp, rp uint16) packet.SocketPair {
	return packet.SocketPair{Proto: packet.TCP, SrcAddr: client, SrcPort: cp, DstAddr: remote, DstPort: rp}
}

func out(ts time.Duration, pair packet.SocketPair, n int) packet.Packet {
	return packet.Packet{TS: ts, Pair: pair, Dir: packet.Outbound, Len: n}
}

func in(ts time.Duration, pair packet.SocketPair, n int) packet.Packet {
	return packet.Packet{TS: ts, Pair: pair.Inverse(), Dir: packet.Inbound, Len: n}
}

func newBitmap(t *testing.T) *core.Filter {
	t.Helper()
	f, err := core.New(core.Config{K: 4, NBits: 16, M: 3, DeltaT: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestReplayCountsAndSeries(t *testing.T) {
	pair := mkPair(40000, 80)
	packets := []packet.Packet{
		out(0, pair, 1000),
		in(100*time.Millisecond, pair, 2000),
		out(time.Second, pair, 500),
	}
	res, err := Replay(packets, newBitmap(t), Config{Prober: red.Always(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPackets != 3 || res.OutboundPackets != 2 || res.InboundPackets != 1 {
		t.Fatalf("counts: %+v", res)
	}
	if res.FilterDropped != 0 {
		t.Fatalf("response dropped: %d", res.FilterDropped)
	}
	if got := res.OriginalUp.TotalBytes(); got != 1500 {
		t.Fatalf("original up bytes = %d", got)
	}
	if got := res.FilteredUp.TotalBytes(); got != 1500 {
		t.Fatalf("filtered up bytes = %d", got)
	}
	if got := res.OriginalDown.TotalBytes(); got != 2000 {
		t.Fatalf("original down bytes = %d", got)
	}
}

func TestReplayDropsUnsolicited(t *testing.T) {
	var packets []packet.Packet
	for i := 0; i < 200; i++ {
		packets = append(packets, in(time.Duration(i)*time.Millisecond, mkPair(uint16(41000+i), 80), 1500))
	}
	res, err := Replay(packets, newBitmap(t), Config{Prober: red.Always(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterDropped < 195 {
		t.Fatalf("dropped %d/200 unsolicited packets", res.FilterDropped)
	}
	if res.FilteredDown.TotalBytes() >= res.OriginalDown.TotalBytes() {
		t.Fatal("filtered series not reduced")
	}
	if got := res.DropRate(); got < 0.97 {
		t.Fatalf("drop rate = %g", got)
	}
}

// TestBlockedConnectionMemory reproduces the Section 5.3 rule: once an
// inbound packet of a connection is dropped, every later packet matching
// σ or σ̄ — in both directions — is dropped without consulting the filter.
func TestBlockedConnectionMemory(t *testing.T) {
	pair := mkPair(42000, 6881)
	inboundInit := pair.Inverse() // remote initiates
	packets := []packet.Packet{
		{TS: 0, Pair: inboundInit, Dir: packet.Inbound, Len: 40, Flags: packet.SYN},
		// The client's SYN-ACK (outbound) must also be dropped once the
		// connection is blocked.
		{TS: 10 * time.Millisecond, Pair: pair, Dir: packet.Outbound, Len: 40, Flags: packet.SYN | packet.ACK},
		{TS: 20 * time.Millisecond, Pair: inboundInit, Dir: packet.Inbound, Len: 40, Flags: packet.ACK},
		{TS: 30 * time.Millisecond, Pair: pair, Dir: packet.Outbound, Len: 1500},
	}
	res, err := Replay(packets, newBitmap(t), Config{Prober: red.Always(1), BlockConnections: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterDropped != 1 {
		t.Fatalf("filter dropped = %d, want 1 (the SYN)", res.FilterDropped)
	}
	if res.Blocked != 3 {
		t.Fatalf("blocked = %d, want 3 (every later packet of the connection)", res.Blocked)
	}
	if got := res.FilteredUp.TotalBytes(); got != 0 {
		t.Fatalf("upload leaked through a blocked connection: %d bytes", got)
	}
}

// TestProberSeesFilteredUplink: P_d is driven by the post-filter uplink
// throughput, so drops begin only after measured upload exceeds L.
func TestProberSeesFilteredUplink(t *testing.T) {
	prober, err := red.NewLinear(1e6, 2e6) // L=1 Mbps, H=2 Mbps
	if err != nil {
		t.Fatal(err)
	}
	established := mkPair(43000, 80)
	var packets []packet.Packet
	// Seed the filter with an outbound flow, then upload heavily on it
	// while unsolicited inbound packets arrive each second.
	packets = append(packets, out(0, established, 100))
	for s := 1; s <= 20; s++ {
		ts := time.Duration(s) * time.Second
		for i := 0; i < 40; i++ {
			packets = append(packets, out(ts+time.Duration(i)*10*time.Millisecond, established, 1500))
		}
		packets = append(packets, in(ts+900*time.Millisecond, mkPair(uint16(44000+s), 80), 40))
	}
	res, err := Replay(packets, newBitmap(t), Config{Prober: prober})
	if err != nil {
		t.Fatal(err)
	}
	// Upload runs at ≈0.48 Mbps per second window... with 40×1500 B/s =
	// 0.48 Mbps < L, nothing drops; the established flow must never drop
	// regardless.
	if res.FilterDropped != 0 && res.FilterDropped == res.InboundPackets {
		t.Fatalf("all inbound dropped despite low uplink: %d", res.FilterDropped)
	}
}

func TestDropRateSeries(t *testing.T) {
	var packets []packet.Packet
	// Second 0: two admitted outbound packets. Second 1: two unsolicited
	// inbound drops.
	pair := mkPair(45000, 80)
	packets = append(packets,
		out(0, pair, 100),
		out(100*time.Millisecond, pair, 100),
		in(time.Second, mkPair(45001, 81), 100),
		in(time.Second+100*time.Millisecond, mkPair(45002, 82), 100),
	)
	res, err := Replay(packets, newBitmap(t), Config{Prober: red.Always(1)})
	if err != nil {
		t.Fatal(err)
	}
	series := res.DropRateSeries()
	if len(series) != 2 {
		t.Fatalf("series buckets = %d", len(series))
	}
	if series[0] != 0 || series[1] < 0.99 {
		t.Fatalf("series = %v", series)
	}
}

func TestReplayDefaults(t *testing.T) {
	// Nil prober and zero windows must apply the Figure 8 defaults.
	res, err := Replay([]packet.Packet{in(0, mkPair(46000, 80), 40)}, newBitmap(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterDropped != 1 {
		t.Fatalf("default prober did not drop: %+v", res)
	}
}

// TestFilterConformance replays the same stream through all three filter
// implementations: each must satisfy the Filter contract (outbound always
// passes; solicited inbound passes; unsolicited inbound drops at P_d=1).
func TestFilterConformance(t *testing.T) {
	mk := map[string]func(t *testing.T) Filter{
		"bitmap": func(t *testing.T) Filter { return newBitmap(t) },
		"spi": func(t *testing.T) Filter {
			f, err := spi.New(spi.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"naive": func(t *testing.T) Filter {
			f, err := naive.New(20*time.Second, false, 0)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}
	solicited := mkPair(47000, 80)
	packets := []packet.Packet{
		out(0, solicited, 100),
		in(50*time.Millisecond, solicited, 1500),
		in(100*time.Millisecond, mkPair(47001, 81), 1500), // unsolicited
	}
	for name, build := range mk {
		t.Run(name, func(t *testing.T) {
			res, err := Replay(packets, build(t), Config{Prober: red.Always(1)})
			if err != nil {
				t.Fatal(err)
			}
			if res.FilterDropped != 1 {
				t.Fatalf("%s dropped %d packets, want exactly the unsolicited one", name, res.FilterDropped)
			}
			if res.FilteredUp.TotalBytes() != 100 {
				t.Fatalf("%s mangled outbound traffic", name)
			}
		})
	}
}
