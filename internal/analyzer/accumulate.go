package analyzer

import (
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
)

// accumulator carries every aggregate a Report needs, so connections can
// be folded in incrementally and evicted from the live table. The paper's
// analyzer ran online against a gigabit link; this is what keeps our
// implementation's memory bounded in the same setting.
type accumulator struct {
	conns              int
	tcpConns, udpConns int
	tcpBytes, allBytes int64
	upBytes, downBytes int64
	upOnInbound        int64
	groupConns         map[string]int
	groupBytes         map[string]int64
	firstSeen          time.Duration
	lastSeen           time.Duration
	seenAny            bool
	lifetimes          stats.CDF
	tcpPorts           [l7.NumClasses]stats.CDF
	udpPorts           [l7.NumClasses]stats.CDF
}

func newAccumulator() *accumulator {
	return &accumulator{
		groupConns: make(map[string]int),
		groupBytes: make(map[string]int64),
	}
}

// fold absorbs one finalized connection. The connection must already have
// gone through port identification (identifyByPort).
func (acc *accumulator) fold(c *Connection) {
	acc.conns++
	total := c.BytesOut + c.BytesIn
	acc.allBytes += total
	acc.upBytes += c.BytesOut
	acc.downBytes += c.BytesIn
	if c.Initiator == packet.Inbound {
		acc.upOnInbound += c.BytesOut
	}
	switch c.Pair.Proto {
	case packet.TCP:
		acc.tcpConns++
		acc.tcpBytes += total
	case packet.UDP:
		acc.udpConns++
	}

	group := c.App.Table2Group()
	if !c.identified {
		group = l7.Unknown.Table2Group()
	}
	acc.groupConns[group]++
	acc.groupBytes[group] += total

	if !acc.seenAny || c.FirstSeen < acc.firstSeen {
		acc.firstSeen = c.FirstSeen
	}
	if c.LastSeen > acc.lastSeen {
		acc.lastSeen = c.LastSeen
	}
	acc.seenAny = true

	if lt, ok := c.Lifetime(); ok {
		acc.lifetimes.AddDuration(lt)
	}

	class := l7.ClassOf(c.App)
	if !c.identified {
		class = l7.ClassUnknown
	}
	switch c.Pair.Proto {
	case packet.TCP:
		// Only the service provider's port (destination of the SYN) is
		// counted; TCP source ports are randomly generated.
		acc.tcpPorts[l7.ClassAll].Add(float64(c.Pair.DstPort))
		acc.tcpPorts[class].Add(float64(c.Pair.DstPort))
	case packet.UDP:
		// UDP has no connection-direction signal, so both source and
		// destination ports are counted.
		for _, p := range []uint16{c.Pair.SrcPort, c.Pair.DstPort} {
			acc.udpPorts[l7.ClassAll].Add(float64(p))
			acc.udpPorts[class].Add(float64(p))
		}
	}
}

// merge absorbs another accumulator.
func (acc *accumulator) merge(o *accumulator) {
	acc.conns += o.conns
	acc.tcpConns += o.tcpConns
	acc.udpConns += o.udpConns
	acc.tcpBytes += o.tcpBytes
	acc.allBytes += o.allBytes
	acc.upBytes += o.upBytes
	acc.downBytes += o.downBytes
	acc.upOnInbound += o.upOnInbound
	for g, n := range o.groupConns {
		acc.groupConns[g] += n
	}
	for g, n := range o.groupBytes {
		acc.groupBytes[g] += n
	}
	if o.seenAny {
		if !acc.seenAny || o.firstSeen < acc.firstSeen {
			acc.firstSeen = o.firstSeen
		}
		if o.lastSeen > acc.lastSeen {
			acc.lastSeen = o.lastSeen
		}
		acc.seenAny = true
	}
	acc.lifetimes.Merge(&o.lifetimes)
	for i := range acc.tcpPorts {
		acc.tcpPorts[i].Merge(&o.tcpPorts[i])
		acc.udpPorts[i].Merge(&o.udpPorts[i])
	}
}
