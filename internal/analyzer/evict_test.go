package analyzer

import (
	"math"
	"testing"
	"time"

	"p2pbound/internal/packet"
	"p2pbound/internal/trace"
)

// TestEvictPreservesReport replays the same trace through two analyzers —
// one evicting idle connections aggressively, one never — and requires
// byte-identical reports: eviction bounds memory without losing a single
// statistic.
func TestEvictPreservesReport(t *testing.T) {
	tr, err := trace.Generate(trace.DefaultConfig(60*time.Second, 0.04, 17))
	if err != nil {
		t.Fatal(err)
	}

	plain, err := New(DefaultConfig(tr.Config.ClientNet))
	if err != nil {
		t.Fatal(err)
	}
	evicting, err := New(DefaultConfig(tr.Config.ClientNet))
	if err != nil {
		t.Fatal(err)
	}

	peak := 0
	for i := range tr.Packets {
		pkt := &tr.Packets[i]
		plain.Feed(pkt)
		evicting.Feed(pkt)
		if i%2000 == 1999 {
			// Evict anything idle for 30 s — long enough that no
			// tracked statistic can still change for the connection
			// except LastSeen updates, which only occur on non-idle
			// connections.
			evicting.Evict(30 * time.Second)
		}
		if n := evicting.Live(); n > peak {
			peak = n
		}
	}
	if evicting.Live() >= plain.Live() {
		t.Fatalf("eviction kept the table at %d (plain %d)", evicting.Live(), plain.Live())
	}
	t.Logf("live tables: plain=%d evicting=%d (peak %d)", plain.Live(), evicting.Live(), peak)

	a := plain.BuildReport()
	b := evicting.BuildReport()

	if a.Summary != b.Summary {
		t.Fatalf("summaries diverge:\nplain   %+v\nevicted %+v", a.Summary, b.Summary)
	}
	if len(a.Table2) != len(b.Table2) {
		t.Fatalf("table2 row counts diverge: %d vs %d", len(a.Table2), len(b.Table2))
	}
	for i := range a.Table2 {
		ra, rb := a.Table2[i], b.Table2[i]
		if ra.Group != rb.Group ||
			math.Abs(ra.Connections-rb.Connections) > 1e-12 ||
			math.Abs(ra.Utilization-rb.Utilization) > 1e-12 {
			t.Fatalf("table2 row %d diverges: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Lifetimes.N() != b.Lifetimes.N() {
		t.Fatalf("lifetime sample counts diverge: %d vs %d", a.Lifetimes.N(), b.Lifetimes.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Lifetimes.Quantile(q) != b.Lifetimes.Quantile(q) {
			t.Fatalf("lifetime q%.2f diverges", q)
		}
	}
	for class := range a.TCPPorts {
		if a.TCPPorts[class].N() != b.TCPPorts[class].N() {
			t.Fatalf("tcp port class %d sample counts diverge", class)
		}
		if a.UDPPorts[class].N() != b.UDPPorts[class].N() {
			t.Fatalf("udp port class %d sample counts diverge", class)
		}
	}
	if a.DelayCDF.N() != b.DelayCDF.N() {
		t.Fatalf("delay sample counts diverge: %d vs %d", a.DelayCDF.N(), b.DelayCDF.N())
	}
}

// TestEvictRemovesIdleOnly: a connection still receiving packets must not
// be evicted.
func TestEvictRemovesIdleOnly(t *testing.T) {
	a := newAnalyzer(t)
	hot := clientPair(40100, 80)
	cold := clientPair(40101, 81)
	feedTCP(a, 0, cold, nil, 0)
	feedTCP(a, 0, hot, nil, 0)
	// Keep the hot connection alive for two minutes.
	for s := 1; s <= 120; s++ {
		pkt := packetAt(hot, time.Duration(s)*time.Second)
		a.Feed(&pkt)
	}
	if n := a.Evict(60 * time.Second); n != 1 {
		t.Fatalf("evicted %d connections, want 1 (the cold one)", n)
	}
	if a.Live() != 1 {
		t.Fatalf("live = %d", a.Live())
	}
	// The report still counts both.
	if r := a.BuildReport(); r.Summary.Connections != 2 {
		t.Fatalf("report connections = %d, want 2", r.Summary.Connections)
	}
}

// TestEvictPrunesDelayStamps: stale out-in stamps beyond the delay expiry
// are dropped by Evict.
func TestEvictPrunesDelayStamps(t *testing.T) {
	cfg := DefaultConfig(testNet)
	cfg.DelayExpiry = 10 * time.Second
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := clientPair(40102, 82)
	pkt := packetAt(pair, 0)
	a.Feed(&pkt)
	if len(a.lastOut) != 1 {
		t.Fatalf("stamps = %d", len(a.lastOut))
	}
	// Time passes far beyond the expiry; another connection advances now.
	other := clientPair(40103, 83)
	pkt2 := packetAt(other, 60*time.Second)
	a.Feed(&pkt2)
	a.Evict(time.Hour) // evict nothing by idleness, but prune stamps
	if len(a.lastOut) != 1 {
		t.Fatalf("stale stamp not pruned: %d stamps", len(a.lastOut))
	}
}

// packetAt builds a bare outbound packet for pair at ts.
func packetAt(pair packet.SocketPair, ts time.Duration) packet.Packet {
	return packet.Packet{TS: ts, Pair: pair, Dir: packet.Outbound, Len: 60}
}
