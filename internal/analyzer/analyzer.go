// Package analyzer implements the customized traffic analyzer of Section
// 3.2: it classifies packets into connections, identifies the application
// of each connection (payload patterns first, well-known ports second,
// plus the two file-exchange strategies: P2P service-endpoint propagation
// and FTP data-connection tracking), and measures the fundamental
// connection properties used in Section 3.3 — direction, per-direction
// packets and bytes, lifetime, and out-in packet delay.
package analyzer

import (
	"fmt"
	"regexp"
	"strconv"
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
)

// IdentMethod records how a connection's application was determined.
type IdentMethod int

// Identification methods, in the order the analyzer attempts them.
const (
	IdentNone IdentMethod = iota
	IdentPattern
	IdentPort
	IdentPropagated // strategy 1: future connections to an identified P2P B:y
	IdentFTPData    // strategy 2: data connection announced on an FTP control channel
)

// String names the method.
func (m IdentMethod) String() string {
	switch m {
	case IdentNone:
		return "none"
	case IdentPattern:
		return "pattern"
	case IdentPort:
		return "port"
	case IdentPropagated:
		return "propagated"
	case IdentFTPData:
		return "ftp-data"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Connection aggregates the per-connection measurements of Section 3.2.
// Pair is oriented from the connection initiator to the responder.
type Connection struct {
	Pair      packet.SocketPair
	App       l7.App
	Method    IdentMethod
	Initiator packet.Direction // Outbound: initiated by an inner client
	SawSYN    bool
	FirstSeen time.Duration
	LastSeen  time.Duration
	ClosedAt  time.Duration // time of the first valid FIN or RST
	Closed    bool

	// Byte and packet counts relative to the client network: "out" is
	// upload (sent by the client network), "in" is download.
	PktsOut, PktsIn   int64
	BytesOut, BytesIn int64

	prefix     []byte // concatenated first TCP data payloads
	prefixPkts int
	identified bool
	isFTPCtl   bool
}

// Lifetime returns the SYN-to-close duration for closed TCP connections
// and false otherwise, matching the Figure 4 methodology.
func (c *Connection) Lifetime() (time.Duration, bool) {
	if c.Pair.Proto != packet.TCP || !c.SawSYN || !c.Closed {
		return 0, false
	}
	return c.ClosedAt - c.FirstSeen, true
}

// serviceKey identifies a service endpoint B:y (strategy 1) or an expected
// FTP data endpoint (strategy 2).
type serviceKey struct {
	proto packet.Proto
	addr  packet.Addr
	port  uint16
}

// Config parameterizes the analyzer.
type Config struct {
	// ClientNet is the monitored client network of Figure 1.
	ClientNet packet.Network
	// MaxPrefixPackets caps how many leading TCP data packets are
	// concatenated for pattern matching; the paper uses at most four.
	MaxPrefixPackets int
	// MaxPrefixBytes caps the concatenated stream prefix size.
	MaxPrefixBytes int
	// DelayExpiry is the expiry timer T_e of the out-in delay
	// measurement; the paper uses a deliberately large 600 s so the
	// port-reuse peaks of Figure 5 stay visible.
	DelayExpiry time.Duration
}

// DefaultConfig returns the paper's measurement settings for the given
// client network.
func DefaultConfig(clientNet packet.Network) Config {
	return Config{
		ClientNet:        clientNet,
		MaxPrefixPackets: 4,
		MaxPrefixBytes:   512,
		DelayExpiry:      600 * time.Second,
	}
}

// Analyzer consumes a packet stream and accumulates connection state.
type Analyzer struct {
	cfg Config
	lib *l7.Library

	conns map[[packet.KeySize]byte]*Connection

	// Strategy 1: once a connection to B:y is identified as P2P, all
	// future connections to B:y are the same application.
	p2pServices map[serviceKey]l7.App
	// Strategy 2: endpoints announced in FTP control payloads; value is
	// the announcement time (entries are valid for a short horizon).
	ftpExpected map[serviceKey]time.Duration

	// Out-in delay measurement state (Section 3.3): last outbound
	// timestamp per socket pair.
	lastOut map[[packet.KeySize]byte]time.Duration
	delays  []time.Duration

	// acc holds the aggregates of connections evicted from the live
	// table; BuildReport merges it with the remaining live connections.
	acc *accumulator
	now time.Duration

	keyBuf []byte
}

// ftpPassiveRe extracts the (h1,h2,h3,h4,p1,p2) endpoint from "227
// Entering Passive Mode" replies and from client PORT commands.
var ftpPassiveRe = regexp.MustCompile(`\((\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3})\)|PORT (\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3}),(\d{1,3})`)

// New builds an analyzer for cfg.
func New(cfg Config) (*Analyzer, error) {
	if cfg.MaxPrefixPackets <= 0 {
		return nil, fmt.Errorf("analyzer: MaxPrefixPackets must be positive, got %d", cfg.MaxPrefixPackets)
	}
	if cfg.MaxPrefixBytes <= 0 {
		return nil, fmt.Errorf("analyzer: MaxPrefixBytes must be positive, got %d", cfg.MaxPrefixBytes)
	}
	if cfg.DelayExpiry <= 0 {
		return nil, fmt.Errorf("analyzer: DelayExpiry must be positive, got %v", cfg.DelayExpiry)
	}
	return &Analyzer{
		cfg:         cfg,
		lib:         l7.NewLibrary(),
		conns:       make(map[[packet.KeySize]byte]*Connection, 4096),
		p2pServices: make(map[serviceKey]l7.App),
		ftpExpected: make(map[serviceKey]time.Duration),
		lastOut:     make(map[[packet.KeySize]byte]time.Duration, 4096),
		acc:         newAccumulator(),
	}, nil
}

// Feed processes one packet. Packets must arrive in timestamp order.
func (a *Analyzer) Feed(pkt *packet.Packet) {
	a.now = pkt.TS
	conn := a.connectionFor(pkt)
	a.account(conn, pkt)
	a.trackDelay(pkt)
	if conn.identified {
		if conn.isFTPCtl {
			a.parseFTPControl(conn, pkt)
		}
		return
	}
	a.identify(conn, pkt)
}

// Connections returns every tracked connection. The returned slice is
// freshly allocated but shares the Connection values.
func (a *Analyzer) Connections() []*Connection {
	out := make([]*Connection, 0, len(a.conns))
	for _, c := range a.conns {
		out = append(out, c)
	}
	return out
}

// Delays returns the recorded out-in packet delays.
func (a *Analyzer) Delays() []time.Duration { return a.delays }

// connectionFor finds or creates the connection a packet belongs to.
// Connections are stored under the initiator-oriented key; lookups try
// both orientations.
func (a *Analyzer) connectionFor(pkt *packet.Packet) *Connection {
	key := pkt.Pair.Key()
	if c, ok := a.conns[key]; ok {
		return c
	}
	if c, ok := a.conns[pkt.Pair.Inverse().Key()]; ok {
		return c
	}
	c := &Connection{
		Pair:      pkt.Pair,
		Initiator: pkt.Dir,
		FirstSeen: pkt.TS,
		SawSYN:    pkt.Pair.Proto == packet.TCP && pkt.Flags.Has(packet.SYN) && !pkt.Flags.Has(packet.ACK),
	}
	a.conns[key] = c

	// Strategy 1: a brand-new connection to an already-identified P2P
	// service endpoint inherits the application.
	if app, ok := a.p2pServices[serviceKey{pkt.Pair.Proto, pkt.Pair.DstAddr, pkt.Pair.DstPort}]; ok {
		c.App = app
		c.Method = IdentPropagated
		c.identified = true
		return c
	}
	// Strategy 2: a connection to an endpoint announced on an FTP
	// control channel is the FTP data connection.
	if ts, ok := a.ftpExpected[serviceKey{pkt.Pair.Proto, pkt.Pair.DstAddr, pkt.Pair.DstPort}]; ok {
		if pkt.TS-ts <= 2*time.Minute {
			c.App = l7.FTP
			c.Method = IdentFTPData
			c.identified = true
		}
		delete(a.ftpExpected, serviceKey{pkt.Pair.Proto, pkt.Pair.DstAddr, pkt.Pair.DstPort})
	}
	return c
}

// account updates the per-connection counters and close tracking.
func (a *Analyzer) account(c *Connection, pkt *packet.Packet) {
	c.LastSeen = pkt.TS
	if pkt.Dir == packet.Outbound {
		c.PktsOut++
		c.BytesOut += int64(pkt.Len)
	} else {
		c.PktsIn++
		c.BytesIn += int64(pkt.Len)
	}
	if pkt.Pair.Proto == packet.TCP && !c.Closed &&
		(pkt.Flags.Has(packet.FIN) || pkt.Flags.Has(packet.RST)) {
		c.Closed = true
		c.ClosedAt = pkt.TS
	}
}

// identify runs the payload identification pipeline on an unidentified
// connection.
func (a *Analyzer) identify(c *Connection, pkt *packet.Packet) {
	switch pkt.Pair.Proto {
	case packet.UDP:
		// The payload of each UDP packet is always examined.
		if len(pkt.Payload) == 0 {
			return
		}
		if app := a.lib.MatchPayload(pkt.Payload); app != l7.Unknown {
			a.setApp(c, app, IdentPattern)
		}
	case packet.TCP:
		// Only connections with an explicit TCP-SYN are examined, and
		// only the first MaxPrefixPackets data packets are concatenated.
		if !c.SawSYN || len(pkt.Payload) == 0 || c.prefixPkts >= a.cfg.MaxPrefixPackets {
			return
		}
		c.prefixPkts++
		room := a.cfg.MaxPrefixBytes - len(c.prefix)
		if room > 0 {
			chunk := pkt.Payload
			if len(chunk) > room {
				chunk = chunk[:room]
			}
			c.prefix = append(c.prefix, chunk...)
		}
		if app := a.lib.MatchPayload(c.prefix); app != l7.Unknown {
			a.setApp(c, app, IdentPattern)
			if app == l7.FTP {
				c.isFTPCtl = true
				a.parseFTPControl(c, pkt)
			}
			c.prefix = nil // identified; stop buffering
		}
	}
}

// setApp records an identification and feeds strategy 1's endpoint table.
func (a *Analyzer) setApp(c *Connection, app l7.App, m IdentMethod) {
	c.App = app
	c.Method = m
	c.identified = true
	if app.IsP2P() {
		// The service provider B:y is the destination of the initiating
		// packet.
		a.p2pServices[serviceKey{c.Pair.Proto, c.Pair.DstAddr, c.Pair.DstPort}] = app
	}
}

// parseFTPControl scans an FTP control payload for announced data-channel
// endpoints (PASV 227 replies and PORT commands) and registers them so the
// matching data connection is identified as FTP (strategy 2).
func (a *Analyzer) parseFTPControl(c *Connection, pkt *packet.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	for _, m := range ftpPassiveRe.FindAllSubmatch(pkt.Payload, -1) {
		fields := m[1:7]
		if m[7] != nil {
			fields = m[7:13]
		}
		var nums [6]int
		ok := true
		for i, f := range fields {
			v, err := strconv.Atoi(string(f))
			if err != nil || v > 255 {
				ok = false
				break
			}
			nums[i] = v
		}
		if !ok {
			continue
		}
		a.ftpExpected[serviceKey{
			proto: packet.TCP,
			addr:  packet.AddrFrom4(byte(nums[0]), byte(nums[1]), byte(nums[2]), byte(nums[3])),
			port:  uint16(nums[4])<<8 | uint16(nums[5]),
		}] = pkt.TS
	}
}

// trackDelay implements the Section 3.3 out-in packet delay measurement:
// outbound packets stamp their socket pair; an inbound packet whose
// inverse pair was stamped within T_e records the delay t − t₀.
func (a *Analyzer) trackDelay(pkt *packet.Packet) {
	switch pkt.Dir {
	case packet.Outbound:
		a.lastOut[pkt.Pair.Key()] = pkt.TS
	case packet.Inbound:
		key := pkt.Pair.Inverse().Key()
		t0, ok := a.lastOut[key]
		if !ok {
			return
		}
		if d := pkt.TS - t0; d <= a.cfg.DelayExpiry {
			a.delays = append(a.delays, d)
		} else {
			// Expired socket pairs are deleted to limit port-reuse
			// artifacts.
			delete(a.lastOut, key)
		}
	}
}

// FinalizePortIdent applies the second identification stage — matching
// well-known port numbers — to every live connection the payload stage
// left unidentified. Call once after the trace has been fully fed (or let
// BuildReport do it implicitly).
func (a *Analyzer) FinalizePortIdent() {
	for _, c := range a.conns {
		a.identifyByPort(c)
	}
}

// Evict folds every connection idle for longer than idleFor into the
// running aggregates and removes it from the live table, together with
// its stale out-in delay stamps. This bounds the analyzer's memory during
// long online runs without changing any reported statistic: BuildReport
// merges the aggregates back in. It returns the number of connections
// evicted.
func (a *Analyzer) Evict(idleFor time.Duration) int {
	evicted := 0
	for key, c := range a.conns {
		if a.now-c.LastSeen <= idleFor {
			continue
		}
		a.identifyByPort(c)
		a.acc.fold(c)
		delete(a.conns, key)
		evicted++
	}
	for key, t0 := range a.lastOut {
		if a.now-t0 > a.cfg.DelayExpiry {
			delete(a.lastOut, key)
		}
	}
	return evicted
}

// Live returns the current size of the live connection table.
func (a *Analyzer) Live() int { return len(a.conns) }
