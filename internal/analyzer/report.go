package analyzer

import (
	"sort"
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
	"p2pbound/internal/stats"
)

// Table2Row is one row of the paper's Table 2: the share of connections
// and of bytes ("utilization") attributed to a protocol group.
type Table2Row struct {
	Group       string
	Connections float64
	Utilization float64
}

// Summary bundles the aggregate trace statistics reported in Section 3.3.
type Summary struct {
	Connections     int
	TCPConnFrac     float64 // fraction of connections that are TCP
	UDPConnFrac     float64
	TCPByteFrac     float64 // fraction of bytes carried by TCP
	UploadByteFrac  float64 // fraction of bytes that are outbound
	MeanMbps        float64 // average throughput over the trace span
	UploadOnInbound float64 // fraction of outbound bytes on inbound-initiated connections
	Span            time.Duration
}

// Report computes every Section 3.3 statistic over all connections seen —
// both the live table and anything already evicted into the running
// aggregates.
type Report struct {
	Summary   Summary
	Table2    []Table2Row
	Lifetimes stats.CDF // seconds, closed TCP connections only (Figure 4)
	DelayCDF  stats.CDF // seconds, out-in packet delays (Figure 5)
	// TCPPorts and UDPPorts hold the port samples per class for the
	// Figure 2 and Figure 3 CDFs.
	TCPPorts [l7.NumClasses]stats.CDF
	UDPPorts [l7.NumClasses]stats.CDF
}

// BuildReport assembles the full measurement report from the evicted
// aggregates plus the live connection table. FinalizePortIdent is applied
// to live connections implicitly.
func (a *Analyzer) BuildReport() *Report {
	total := newAccumulator()
	total.merge(a.acc)
	for _, c := range a.conns {
		a.identifyByPort(c)
		total.fold(c)
	}

	r := &Report{
		Lifetimes: total.lifetimes,
		TCPPorts:  total.tcpPorts,
		UDPPorts:  total.udpPorts,
	}
	for _, d := range a.delays {
		r.DelayCDF.AddDuration(d)
	}

	r.Summary = Summary{
		Connections: total.conns,
		Span:        total.lastSeen - total.firstSeen,
	}
	if total.conns > 0 {
		r.Summary.TCPConnFrac = float64(total.tcpConns) / float64(total.conns)
		r.Summary.UDPConnFrac = float64(total.udpConns) / float64(total.conns)
	}
	if total.allBytes > 0 {
		r.Summary.TCPByteFrac = float64(total.tcpBytes) / float64(total.allBytes)
		r.Summary.UploadByteFrac = float64(total.upBytes) / float64(total.allBytes)
	}
	if total.upBytes > 0 {
		r.Summary.UploadOnInbound = float64(total.upOnInbound) / float64(total.upBytes)
	}
	if r.Summary.Span > 0 {
		r.Summary.MeanMbps = float64(total.allBytes*8) / r.Summary.Span.Seconds() / 1e6
	}

	// Table 2 rows in the paper's order, with any extra groups appended.
	order := []string{"HTTP", "bittorrent", "gnutella", "edonkey", "UNKNOWN", "Others"}
	seen := make(map[string]bool, len(order))
	for _, g := range order {
		seen[g] = true
	}
	var extra []string
	for g := range total.groupConns {
		if !seen[g] {
			extra = append(extra, g)
		}
	}
	sort.Strings(extra)
	for _, g := range append(order, extra...) {
		if total.groupConns[g] == 0 && total.groupBytes[g] == 0 {
			continue
		}
		row := Table2Row{Group: g}
		if total.conns > 0 {
			row.Connections = float64(total.groupConns[g]) / float64(total.conns)
		}
		if total.allBytes > 0 {
			row.Utilization = float64(total.groupBytes[g]) / float64(total.allBytes)
		}
		r.Table2 = append(r.Table2, row)
	}
	return r
}

// identifyByPort applies the second identification stage — matching
// well-known port numbers — to a connection the payload stage left
// unidentified. Idempotent.
func (a *Analyzer) identifyByPort(c *Connection) {
	if c.identified {
		return
	}
	switch c.Pair.Proto {
	case packet.TCP:
		if app := a.lib.MatchPort(packet.TCP, c.Pair.DstPort); app != l7.Unknown {
			c.App = app
			c.Method = IdentPort
			c.identified = true
		}
	case packet.UDP:
		app := a.lib.MatchPort(packet.UDP, c.Pair.DstPort)
		if app == l7.Unknown {
			app = a.lib.MatchPort(packet.UDP, c.Pair.SrcPort)
		}
		if app != l7.Unknown {
			c.App = app
			c.Method = IdentPort
			c.identified = true
		}
	}
}
