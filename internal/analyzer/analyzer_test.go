package analyzer

import (
	"testing"
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
)

var testNet = packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)

func newAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := New(DefaultConfig(testNet))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

var (
	client = packet.AddrFrom4(140, 112, 1, 1)
	server = packet.AddrFrom4(8, 8, 4, 4)
)

// feedTCP replays a client-initiated TCP connection: handshake, the given
// payload exchanges, and an optional close.
func feedTCP(a *Analyzer, t0 time.Duration, pair packet.SocketPair, payloads [][]byte, closeAt time.Duration) {
	dir := packet.Classify(pair, testNet)
	rev := pair.Inverse()
	revDir := packet.Inbound
	if dir == packet.Inbound {
		revDir = packet.Outbound
	}
	a.Feed(&packet.Packet{TS: t0, Pair: pair, Dir: dir, Len: 40, Flags: packet.SYN})
	a.Feed(&packet.Packet{TS: t0 + 10*time.Millisecond, Pair: rev, Dir: revDir, Len: 40, Flags: packet.SYN | packet.ACK})
	a.Feed(&packet.Packet{TS: t0 + 15*time.Millisecond, Pair: pair, Dir: dir, Len: 40, Flags: packet.ACK})
	ts := t0 + 20*time.Millisecond
	for i, p := range payloads {
		// Alternate directions: even payloads from the initiator.
		if i%2 == 0 {
			a.Feed(&packet.Packet{TS: ts, Pair: pair, Dir: dir, Len: 40 + len(p), Flags: packet.ACK | packet.PSH, Payload: p})
		} else {
			a.Feed(&packet.Packet{TS: ts, Pair: rev, Dir: revDir, Len: 40 + len(p), Flags: packet.ACK | packet.PSH, Payload: p})
		}
		ts += 10 * time.Millisecond
	}
	if closeAt > 0 {
		a.Feed(&packet.Packet{TS: closeAt, Pair: pair, Dir: dir, Len: 40, Flags: packet.FIN | packet.ACK})
	}
}

func clientPair(srcPort, dstPort uint16) packet.SocketPair {
	return packet.SocketPair{Proto: packet.TCP, SrcAddr: client, SrcPort: srcPort, DstAddr: server, DstPort: dstPort}
}

func TestNewValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.MaxPrefixPackets = 0 },
		func(c *Config) { c.MaxPrefixBytes = 0 },
		func(c *Config) { c.DelayExpiry = 0 },
	} {
		cfg := DefaultConfig(testNet)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestPatternIdentification(t *testing.T) {
	a := newAnalyzer(t)
	feedTCP(a, 0, clientPair(40000, 28123), [][]byte{
		[]byte("GNUTELLA CONNECT/0.6\r\n\r\n"),
	}, time.Second)
	conns := a.Connections()
	if len(conns) != 1 {
		t.Fatalf("connections = %d", len(conns))
	}
	c := conns[0]
	if c.App != l7.Gnutella || c.Method != IdentPattern {
		t.Fatalf("app=%v method=%v", c.App, c.Method)
	}
}

// TestStreamPrefixConcatenation: a signature split across the first data
// packets matches, but one arriving after the fourth data packet does not
// (the paper concatenates at most four).
func TestStreamPrefixConcatenation(t *testing.T) {
	a := newAnalyzer(t)
	feedTCP(a, 0, clientPair(40001, 28124), [][]byte{
		[]byte("GNUTELLA CON"),
		[]byte("NECT/0.6\r\n\r\n"),
	}, 0)
	if c := a.Connections()[0]; c.App != l7.Gnutella {
		t.Fatalf("split signature not matched: %v", c.App)
	}

	b := newAnalyzer(t)
	feedTCP(b, 0, clientPair(40002, 28125), [][]byte{
		[]byte("xxxx"), []byte("yyyy"), []byte("zzzz"), []byte("wwww"),
		[]byte("GNUTELLA CONNECT/0.6\r\n\r\n"), // fifth data packet: ignored
	}, 0)
	if c := b.Connections()[0]; c.App == l7.Gnutella {
		t.Fatal("signature beyond the fourth data packet must not match")
	}
}

// TestNoSYNNoPayloadExamination: TCP connections without an observed SYN
// are not payload-identified (the paper requires an explicit TCP-SYN).
func TestNoSYNNoPayloadExamination(t *testing.T) {
	a := newAnalyzer(t)
	pair := clientPair(40003, 28126)
	a.Feed(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound, Len: 80, Flags: packet.ACK | packet.PSH,
		Payload: []byte("GNUTELLA CONNECT/0.6\r\n\r\n")})
	if c := a.Connections()[0]; c.App != l7.Unknown {
		t.Fatalf("mid-stream connection identified as %v", c.App)
	}
}

func TestUDPPerPacketIdentification(t *testing.T) {
	a := newAnalyzer(t)
	pair := packet.SocketPair{Proto: packet.UDP, SrcAddr: client, SrcPort: 40004, DstAddr: server, DstPort: 28127}
	a.Feed(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound, Len: 80,
		Payload: []byte("d1:ad2:id20:aaaaaaaaaaaaaaaaaaaae1:q4:ping1:t2:aa1:y1:qe")})
	if c := a.Connections()[0]; c.App != l7.BitTorrent || c.Method != IdentPattern {
		t.Fatalf("UDP DHT packet: app=%v method=%v", c.App, c.Method)
	}
}

// TestPortFallback: an unidentified connection to a well-known port gets
// identified in the FinalizePortIdent pass.
func TestPortFallback(t *testing.T) {
	a := newAnalyzer(t)
	feedTCP(a, 0, clientPair(40005, 22), [][]byte{[]byte("SSH-2.0-OpenSSH\r\n")}, 0)
	if c := a.Connections()[0]; c.App != l7.Unknown {
		t.Fatalf("pre-finalize app = %v", c.App)
	}
	a.FinalizePortIdent()
	c := a.Connections()[0]
	if c.App != l7.SSH || c.Method != IdentPort {
		t.Fatalf("post-finalize app=%v method=%v", c.App, c.Method)
	}
}

// TestP2PServicePropagation (strategy 1): once a connection to B:y is
// identified as P2P, a later connection to the same B:y inherits the
// application without any payload.
func TestP2PServicePropagation(t *testing.T) {
	a := newAnalyzer(t)
	feedTCP(a, 0, clientPair(40006, 31000), [][]byte{
		append([]byte{0x13}, []byte("BitTorrent protocol........................................")...),
	}, time.Second)
	// Second connection, different client port, same B:y, opaque payload.
	feedTCP(a, 2*time.Second, clientPair(40007, 31000), [][]byte{{0x7f, 0x00, 0x41}}, 0)

	var propagated *Connection
	for _, c := range a.Connections() {
		if c.Pair.SrcPort == 40007 {
			propagated = c
		}
	}
	if propagated == nil {
		t.Fatal("second connection missing")
	}
	if propagated.App != l7.BitTorrent || propagated.Method != IdentPropagated {
		t.Fatalf("propagated: app=%v method=%v", propagated.App, propagated.Method)
	}
}

// TestFTPDataConnection (strategy 2): the endpoint announced in a 227
// passive reply identifies the subsequent data connection as FTP.
func TestFTPDataConnection(t *testing.T) {
	a := newAnalyzer(t)
	ctl := clientPair(40010, 21)
	// The server banner is the first payload on a real FTP control
	// channel (payload slots alternate initiator/responder, so slot 0 is
	// left empty).
	feedTCP(a, 0, ctl, [][]byte{
		nil,
		[]byte("220 ProFTPD Server (FTP) ready.\r\n"),
		[]byte("PASV\r\n"),
		[]byte("227 Entering Passive Mode (8,8,4,4,78,32).\r\n"),
	}, 0)
	dataPort := uint16(78)<<8 | 32
	feedTCP(a, time.Second, clientPair(40011, dataPort), [][]byte{{0x7f, 0x10, 0x32}}, 0)

	var data *Connection
	for _, c := range a.Connections() {
		if c.Pair.DstPort == dataPort {
			data = c
		}
	}
	if data == nil {
		t.Fatal("data connection missing")
	}
	if data.App != l7.FTP || data.Method != IdentFTPData {
		t.Fatalf("ftp data: app=%v method=%v", data.App, data.Method)
	}
}

func TestByteAndPacketAccounting(t *testing.T) {
	a := newAnalyzer(t)
	pair := clientPair(40020, 80)
	a.Feed(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound, Len: 100, Flags: packet.SYN})
	a.Feed(&packet.Packet{TS: time.Millisecond, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 1500, Flags: packet.ACK})
	a.Feed(&packet.Packet{TS: 2 * time.Millisecond, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 500, Flags: packet.ACK})
	c := a.Connections()[0]
	if c.PktsOut != 1 || c.PktsIn != 2 || c.BytesOut != 100 || c.BytesIn != 2000 {
		t.Fatalf("accounting: %+v", c)
	}
	if c.Initiator != packet.Outbound {
		t.Fatalf("initiator = %v", c.Initiator)
	}
}

// TestLifetime: SYN to first FIN/RST, only for closed connections.
func TestLifetime(t *testing.T) {
	a := newAnalyzer(t)
	pair := clientPair(40021, 80)
	feedTCP(a, time.Second, pair, nil, 31*time.Second)
	c := a.Connections()[0]
	lt, ok := c.Lifetime()
	if !ok {
		t.Fatal("closed connection has no lifetime")
	}
	if lt != 30*time.Second {
		t.Fatalf("lifetime = %v, want 30s", lt)
	}

	// An open connection has no lifetime.
	b := newAnalyzer(t)
	feedTCP(b, 0, pair, nil, 0)
	if _, ok := b.Connections()[0].Lifetime(); ok {
		t.Fatal("open connection reported a lifetime")
	}
}

// TestOutInDelay implements the Section 3.3 example: the delay is measured
// from the last outbound packet of a socket pair to the next inbound
// packet of its inverse.
func TestOutInDelay(t *testing.T) {
	a := newAnalyzer(t)
	pair := clientPair(40022, 80)
	a.Feed(&packet.Packet{TS: 10 * time.Second, Pair: pair, Dir: packet.Outbound, Len: 40, Flags: packet.SYN})
	a.Feed(&packet.Packet{TS: 10*time.Second + 80*time.Millisecond, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 40, Flags: packet.SYN | packet.ACK})
	delays := a.Delays()
	if len(delays) != 1 {
		t.Fatalf("delays = %d", len(delays))
	}
	if delays[0] != 80*time.Millisecond {
		t.Fatalf("delay = %v", delays[0])
	}
}

// TestOutInDelayExpiry: a stale stamp beyond T_e records nothing and is
// deleted.
func TestOutInDelayExpiry(t *testing.T) {
	cfg := DefaultConfig(testNet)
	cfg.DelayExpiry = 100 * time.Second
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := clientPair(40023, 80)
	a.Feed(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound, Len: 40})
	a.Feed(&packet.Packet{TS: 200 * time.Second, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 40})
	if len(a.Delays()) != 0 {
		t.Fatal("expired stamp produced a delay sample")
	}
	// The stale stamp was deleted, so a fresh inbound packet still
	// records nothing.
	a.Feed(&packet.Packet{TS: 201 * time.Second, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 40})
	if len(a.Delays()) != 0 {
		t.Fatal("deleted stamp still matched")
	}
}

// TestPortReuseDelayArtifact: an inbound packet on a reused tuple within
// T_e records the large stale delay — the Figure 5 peak mechanism.
func TestPortReuseDelayArtifact(t *testing.T) {
	a := newAnalyzer(t)
	pair := clientPair(40024, 31001)
	a.Feed(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound, Len: 40})
	// The remote "reuses" the pair 120 s later (within the 600 s T_e).
	a.Feed(&packet.Packet{TS: 120 * time.Second, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 40, Flags: packet.SYN})
	delays := a.Delays()
	if len(delays) != 1 || delays[0] != 120*time.Second {
		t.Fatalf("stale delay not recorded: %v", delays)
	}
}

func TestReportAggregates(t *testing.T) {
	a := newAnalyzer(t)
	// One HTTP download and one inbound-initiated upload.
	feedTCP(a, 0, clientPair(40030, 80), [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
		[]byte("HTTP/1.1 200 OK\r\n\r\n"),
	}, time.Second)
	inbound := packet.SocketPair{Proto: packet.TCP, SrcAddr: server, SrcPort: 50000, DstAddr: client, DstPort: 31999}
	feedTCP(a, 2*time.Second, inbound, nil, 0)
	// Upload data on the inbound-initiated connection.
	up := inbound.Inverse()
	a.Feed(&packet.Packet{TS: 3 * time.Second, Pair: up, Dir: packet.Outbound, Len: 1500, Flags: packet.ACK})
	a.Feed(&packet.Packet{TS: 4 * time.Second, Pair: up, Dir: packet.Outbound, Len: 1500, Flags: packet.ACK})

	a.FinalizePortIdent()
	r := a.BuildReport()
	if r.Summary.Connections != 2 {
		t.Fatalf("connections = %d", r.Summary.Connections)
	}
	if r.Summary.TCPConnFrac != 1 {
		t.Fatalf("tcp conn frac = %g", r.Summary.TCPConnFrac)
	}
	if r.Summary.UploadOnInbound < 0.9 {
		t.Fatalf("upload on inbound = %g, want ≈1 (all bulk upload was inbound-initiated)", r.Summary.UploadOnInbound)
	}
	var httpRow *Table2Row
	for i := range r.Table2 {
		if r.Table2[i].Group == "HTTP" {
			httpRow = &r.Table2[i]
		}
	}
	if httpRow == nil || httpRow.Connections != 0.5 {
		t.Fatalf("HTTP row: %+v", httpRow)
	}
}

func TestIdentMethodString(t *testing.T) {
	names := map[IdentMethod]string{
		IdentNone:       "none",
		IdentPattern:    "pattern",
		IdentPort:       "port",
		IdentPropagated: "propagated",
		IdentFTPData:    "ftp-data",
		IdentMethod(42): "method(42)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("IdentMethod(%d) = %q, want %q", m, got, want)
		}
	}
}
