// Package errfmt builds error values without importing fmt. The
// packet-path packages (internal/core, internal/bitvec, internal/red,
// internal/throughput) are barred from fmt by the bannedimport analyzer
// — fmt allocates on every call and drags reflection into the binary —
// so their cold error paths compose messages from string concatenation
// and strconv, and use Wrap here where fmt.Errorf("...: %w", err) would
// otherwise preserve an error chain.
package errfmt

// wrapped is an error with a fixed prefix that unwraps to its cause,
// matching the chain behaviour of fmt.Errorf with %w.
type wrapped struct {
	prefix string
	err    error
}

func (e *wrapped) Error() string { return e.prefix + ": " + e.err.Error() }
func (e *wrapped) Unwrap() error { return e.err }

// Wrap returns an error whose message is prefix+": "+err.Error() and
// which unwraps to err, so errors.Is/As see through it.
func Wrap(prefix string, err error) error { return &wrapped{prefix: prefix, err: err} }

// detailed is an error whose message is entirely the caller's but which
// unwraps to a typed sentinel — the inverse of wrapped, for rejection
// sites whose diagnostics (offsets, hex dumps) should not be prefixed
// by the sentinel text.
type detailed struct {
	msg string
	err error
}

func (e *detailed) Error() string { return e.msg }
func (e *detailed) Unwrap() error { return e.err }

// Detail returns an error whose message is msg and which unwraps to
// cause, so callers can match the typed cause with errors.Is while the
// message carries full diagnostics.
func Detail(msg string, cause error) error { return &detailed{msg: msg, err: cause} }
