package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"p2pbound/internal/bitvec"
)

// replayStep drives one seeded traffic step against f and returns the
// verdict (or 0 for an outbound mark step). Both filters in a
// differential pair must be fed from identically-seeded rngs.
func replayStep(f *Filter, rng *rand.Rand, now time.Duration) Verdict {
	pair := pairN(uint32(rng.IntN(4096)))
	f.Advance(now)
	if rng.IntN(3) == 0 {
		f.Process(outPkt(now, pair), 0)
		return 0
	}
	return f.Process(inPkt(now, pair), 0.5)
}

// TestArenaFilterMatchesHeapFilter pins that a filter whose vectors are
// carved from a bitvec.Arena is verdict-for-verdict identical to a
// plain New filter.
func TestArenaFilterMatchesHeapFilter(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 42
	arena := bitvec.NewArena(1<<cfg.NBits, 0)
	af, err := NewWith(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewPCG(7, 9))
	rngB := rand.New(rand.NewPCG(7, 9))
	var now time.Duration
	for i := 0; i < 50_000; i++ {
		now += time.Duration(rngA.IntN(3000)) * time.Microsecond
		rngB.IntN(3000)
		va := replayStep(af, rngA, now)
		vb := replayStep(hf, rngB, now)
		if va != vb {
			t.Fatalf("step %d: arena verdict %v, heap verdict %v", i, va, vb)
		}
	}
	if af.Stats() != hf.Stats() {
		t.Fatalf("stats diverged: arena %+v, heap %+v", af.Stats(), hf.Stats())
	}
	if err := af.ReleaseVectors(arena); err != nil {
		t.Fatal(err)
	}
	if st := arena.Stats(); st.Live != 0 || st.Free != cfg.K {
		t.Fatalf("arena after release: %+v", st)
	}
}

// TestSuspendResumeVerdictExact pins the full evict/rehydrate state
// loop: v2 snapshot + RotationState + RNGState restores a filter whose
// subsequent verdicts and stats deltas are bit-identical to the filter
// that never stopped.
func TestSuspendResumeVerdictExact(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 99
	cont, err := New(cfg) // never suspended
	if err != nil {
		t.Fatal(err)
	}
	live, err := New(cfg) // suspended/resumed every epoch below
	if err != nil {
		t.Fatal(err)
	}
	arena := bitvec.NewArena(1<<cfg.NBits, 0)
	rngA := rand.New(rand.NewPCG(3, 5))
	rngB := rand.New(rand.NewPCG(3, 5))
	var now time.Duration
	for epoch := 0; epoch < 8; epoch++ {
		for i := 0; i < 5_000; i++ {
			now += time.Duration(rngA.IntN(2500)) * time.Microsecond
			rngB.IntN(2500)
			va := replayStep(cont, rngA, now)
			vb := replayStep(live, rngB, now)
			if va != vb {
				t.Fatalf("epoch %d step %d: verdicts diverged (%v vs %v)", epoch, i, va, vb)
			}
		}
		// Evict: spill bitmap + temporal + rng state, then rebuild from
		// the spill into arena-backed vectors.
		var buf bytes.Buffer
		if _, err := live.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		rot := live.RotationState()
		rngState, err := live.RNGState()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ReadFilterWith(&buf, arena)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.SetRotationState(rot); err != nil {
			t.Fatal(err)
		}
		if err := resumed.SetRNGState(rngState); err != nil {
			t.Fatal(err)
		}
		live = resumed
	}
	// Counters are not part of the spill (the limiter folds them); only
	// compare verdict-visible rotation state.
	if cont.RotationState() != live.RotationState() {
		t.Fatalf("rotation state diverged: %+v vs %+v", cont.RotationState(), live.RotationState())
	}
}

// TestEmptyReportsLogicalZero pins that Empty tracks logical contents
// through lazy clears.
func TestEmptyReportsLogicalZero(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Empty() {
		t.Fatal("fresh filter not Empty")
	}
	f.Advance(0)
	f.Process(outPkt(0, pairN(1)), 0)
	if f.Empty() {
		t.Fatal("marked filter reports Empty")
	}
	// K due rotations wipe every vector logically; Empty must see that
	// without waiting for the physical sweep.
	f.Advance(time.Duration(f.cfg.K+1) * f.cfg.DeltaT)
	if !f.Empty() {
		t.Fatal("fully rotated filter not Empty")
	}
}

// TestRotationStateValidation pins the index range check.
func TestRotationStateValidation(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetRotationState(RotationState{Index: f.cfg.K}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := f.SetRotationState(RotationState{Index: -1}); err == nil {
		t.Fatal("negative index accepted")
	}
}

// TestReadFilterWithReleasesOnError pins the no-leak contract: a
// corrupt stream must leave the arena with no live spans.
func TestReadFilterWithReleasesOnError(t *testing.T) {
	cfg := testConfig()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0xff // corrupt the checksum trailer
	arena := bitvec.NewArena(1<<cfg.NBits, 0)
	if _, err := ReadFilterWith(bytes.NewReader(b), arena); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if st := arena.Stats(); st.Live != 0 {
		t.Fatalf("decode error leaked %d arena spans", st.Live)
	}
}
