// Package core implements the paper's primary contribution: the
// {k×N}-bitmap filter of Section 4, a composite of k equal-size bloom
// filter bit vectors sharing m hash functions.
//
// Outbound packets mark their socket pair in all k bit vectors (so a flow
// stays admitted for between T_e − Δt and T_e = k·Δt after its last
// outbound packet); inbound packets are looked up in the current bit
// vector only; every Δt the b.rotate algorithm clears the oldest vector
// and makes it current. An inbound packet whose inverse socket pair is not
// marked is dropped with probability P_d supplied by the caller — in the
// full system, a RED-style ramp over the measured uplink throughput.
//
// All operations are constant time in the number of tracked connections;
// only the Δt-periodic rotation is O(N) in the vector size.
package core

import (
	"errors"
	"math/rand/v2"
	"strconv"
	"sync/atomic"
	"time"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/errfmt"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

// Verdict is the filtering decision for a packet.
type Verdict int

// Filtering decisions. Outbound packets are always passed; inbound packets
// may be dropped.
const (
	Pass Verdict = iota + 1
	Drop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "PASS"
	case Drop:
		return "DROP"
	default:
		return "verdict(" + strconv.Itoa(int(v)) + ")"
	}
}

// Config parameterizes a bitmap filter. The paper's simulation setup
// (Section 5.3) is NBits=20, K=4, DeltaT=5s, M=3: a 512 KiB filter with
// T_e = 20 s.
//
//p2p:codec
type Config struct {
	// K is the number of bit vectors (columns in Figure 7).
	K int
	// NBits is n: each bit vector holds N = 2^n bits.
	NBits uint
	// M is the number of shared hash functions.
	M int
	// DeltaT is the rotation period Δt.
	DeltaT time.Duration
	// HashKind selects the hash construction; zero value means FNVDouble.
	HashKind hashes.Kind
	// HashScheme selects how the m indexes are derived per key: the
	// per-index family (zero value) or the one-shot 64-bit hash expanded
	// arithmetically (hashes.SchemeOneShot — one key traversal per
	// packet regardless of m). Snapshots record the resolved scheme.
	HashScheme hashes.Scheme
	// Layout selects where a key's m bits land: scattered across the
	// whole vector (zero value) or confined to one 512-bit cache line
	// (hashes.LayoutBlocked — at most one memory stall per vector
	// instead of m, for a bounded false-positive-rate increase; see
	// DESIGN.md §12). The blocked layout implies the one-shot scheme.
	Layout hashes.Layout
	// HolePunch enables partial-tuple hashing (remote port excluded) so
	// NAT hole punching keeps working behind the filter (Section 4.2).
	HolePunch bool
	// Seed seeds the deterministic random source used for P_d draws.
	Seed uint64
	// ReorderTolerance is the capture-reorder window for backward
	// timestamps. Real capture clocks regress — NTP steps, multi-queue
	// NICs delivering slightly out of order — so Advance never requires
	// monotonic input: a timestamp behind the monotonic high-water mark
	// is clamped to it, and only a regression larger than this window is
	// counted in Stats.TimeAnomalies. The default 0 counts every
	// backward step.
	//
	//p2p:codecskip operational knob, not filter identity — deliberately not persisted
	ReorderTolerance time.Duration
}

// DefaultConfig returns the paper's Section 5.3 configuration.
func DefaultConfig() Config {
	return Config{K: 4, NBits: 20, M: 3, DeltaT: 5 * time.Second}
}

// Stats counts filter activity since construction.
//
// Accounting invariant: every inspected inbound packet is classified as
// exactly one hit or one miss — InboundHits + InboundMisses ==
// InboundPackets. A packet that draws a drop on its first unmarked bit
// and one that survives several unmarked bits each contribute a single
// miss; Dropped ≤ InboundMisses counts the subset of misses that lost a
// P_d draw.
type Stats struct {
	OutboundPackets int64 // outbound packets marked and passed
	InboundPackets  int64 // inbound packets inspected
	InboundHits     int64 // inbound packets fully marked in the current vector
	InboundMisses   int64 // inbound packets with at least one unmarked bit
	Dropped         int64 // inbound packets dropped
	Rotations       int64 // b.rotate invocations
	// TimeAnomalies counts Advance calls whose timestamp regressed behind
	// the monotonic high-water mark by more than the configured
	// ReorderTolerance. Such timestamps are clamped, never propagated, so
	// the rotation schedule only moves forward.
	TimeAnomalies int64
}

// counters is the live storage behind Stats. Every field is an atomic so
// Stats can be snapshotted from a scrape or monitoring goroutine while
// the owning goroutine processes packets: each counter read is torn-free
// and monotone. The filter itself remains single-writer; the atomics buy
// concurrent readers, not concurrent writers.
type counters struct {
	outbound      atomic.Int64 //p2p:atomic
	inbound       atomic.Int64 //p2p:atomic
	hits          atomic.Int64 //p2p:atomic
	misses        atomic.Int64 //p2p:atomic
	dropped       atomic.Int64 //p2p:atomic
	rotations     atomic.Int64 //p2p:atomic
	timeAnomalies atomic.Int64 //p2p:atomic
}

// snapshot loads every counter into a Stats value.
func (c *counters) snapshot() Stats {
	return Stats{
		OutboundPackets: c.outbound.Load(),
		InboundPackets:  c.inbound.Load(),
		InboundHits:     c.hits.Load(),
		InboundMisses:   c.misses.Load(),
		Dropped:         c.dropped.Load(),
		Rotations:       c.rotations.Load(),
		TimeAnomalies:   c.timeAnomalies.Load(),
	}
}

// Filter is a {k×N}-bitmap filter. It is driven by simulated packet
// timestamps via Advance and is not safe for concurrent use; wrap it or
// shard per flow hash for multi-queue deployments.
type Filter struct {
	cfg     Config
	vectors []*bitvec.Vector
	idx     int // index of the current bit vector
	family  *hashes.Family
	scheme  hashes.Scheme
	layout  hashes.Layout
	rng     *rand.Rand
	// pcg is the source behind rng, retained so suspend/resume paths can
	// marshal the exact draw position (RNGState); rand.Rand itself does
	// not expose its source.
	pcg  *rand.PCG
	sums []uint32
	// enc is the reusable socket-pair key encoder; each packet encodes
	// its key exactly once and the m hash sums derived from it are
	// shared by the mark fan-out across all k vectors (outbound) or the
	// current-vector lookup (inbound).
	enc packet.KeyEncoder
	// pend accumulates the per-packet counter deltas of processSums as
	// plain single-writer increments; FlushStats publishes them into the
	// atomic counters. Batching the publication turns up to two LOCK-
	// prefixed read-modify-writes per packet into a handful per chunk.
	pend struct {
		outbound, inbound, hits, misses, dropped int64
	}
	// bsums is the pass-A scratch of the two-pass batch path: the m
	// derived indexes of each packet in the current chunk, laid out
	// [i·m, i·m+m). Preallocated to BatchChunk·m at construction, so
	// HashBatch never grows it.
	bsums []uint32
	// touch gates pass A's advisory cache-line touches on the filter's
	// bit footprint (see touchMinBytes): when the vectors fit in the
	// last-level cache, the touches cannot hide any DRAM latency and are
	// pure extra loads, so small filters hash ahead without touching.
	touch bool
	// hashed is the number of packets pass A stored in bsums.
	hashed int
	// sweepVec is the index of the vector whose deferred clear is being
	// swept across packet calls, or −1 when no sweep is pending. Each
	// Process call advances the sweep by one block, bounding the
	// per-packet clearing work instead of paying the O(N) memclr of
	// Algorithm 1 inside a single packet decision.
	sweepVec int
	next     time.Duration // simulated time of the next rotation
	lastTS   time.Duration // monotonic high-water mark of Advance input
	started  bool
	stats    counters
}

// New builds a bitmap filter from cfg with heap-allocated bit vectors;
// NewWith selects a pooled allocator instead.
func New(cfg Config) (*Filter, error) {
	return newFilter(cfg, nil)
}

func newFilter(cfg Config, alloc VectorAllocator) (*Filter, error) {
	if cfg.K <= 0 {
		return nil, errors.New("core: K must be positive, got " + strconv.Itoa(cfg.K))
	}
	if cfg.NBits == 0 || cfg.NBits > 32 {
		return nil, errors.New("core: NBits must be in [1,32], got " + strconv.FormatUint(uint64(cfg.NBits), 10))
	}
	if cfg.M <= 0 {
		return nil, errors.New("core: M must be positive, got " + strconv.Itoa(cfg.M))
	}
	if cfg.DeltaT <= 0 {
		return nil, errors.New("core: DeltaT must be positive, got " + cfg.DeltaT.String())
	}
	kind := cfg.HashKind
	if kind == 0 {
		kind = hashes.FNVDouble
	}
	scheme, layout, err := hashes.ResolveSchemeLayout(cfg.HashScheme, cfg.Layout)
	if err != nil {
		return nil, errfmt.Wrap("core", err)
	}
	// Store the resolved values back so Config() — and therefore
	// snapshot round-trips and geometry comparisons — never see the
	// ambiguous zero defaults.
	cfg.HashScheme, cfg.Layout = scheme, layout
	family, err := hashes.NewFamily(kind, cfg.M, cfg.NBits)
	if err != nil {
		return nil, errfmt.Wrap("core", err)
	}
	vectors := make([]*bitvec.Vector, cfg.K)
	for i := range vectors {
		if alloc != nil {
			vectors[i] = alloc.NewVector(1 << cfg.NBits)
		} else {
			vectors[i] = bitvec.New(1 << cfg.NBits)
		}
	}
	pcg := rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)
	return &Filter{
		cfg:      cfg,
		vectors:  vectors,
		family:   family,
		scheme:   scheme,
		layout:   layout,
		pcg:      pcg,
		rng:      rand.New(pcg),
		sums:     make([]uint32, 0, cfg.M),
		enc:      packet.NewKeyEncoder(cfg.HolePunch),
		bsums:    make([]uint32, BatchChunk*cfg.M),
		touch:    int64(cfg.K)<<cfg.NBits>>3 > touchMinBytes,
		sweepVec: -1,
	}, nil
}

// touchMinBytes is the bit-vector footprint above which pass A of the
// two-pass batch path issues its advisory line touches. Below it the
// vectors are resident in any mainstream last-level cache, the out-of-
// order window already hides the (hit) latency of pass B's accesses,
// and the touches are measurably pure overhead; above it the batch of
// independent line fills is what keeps the filter off the DRAM latency
// critical path.
const touchMinBytes = 16 << 20

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }

// HashScheme returns the resolved index-derivation scheme (never zero).
func (f *Filter) HashScheme() hashes.Scheme { return f.scheme }

// Layout returns the resolved bit layout (never zero).
func (f *Filter) Layout() hashes.Layout { return f.layout }

// SetReorderTolerance adjusts the backward-timestamp tolerance window
// (see Config.ReorderTolerance). It is an operational knob, not filter
// state: snapshots do not carry it, so restore paths reapply it.
func (f *Filter) SetReorderTolerance(d time.Duration) {
	f.cfg.ReorderTolerance = d
}

// TE returns the effective expiry timer T_e = k·Δt (Section 4.3).
func (f *Filter) TE() time.Duration {
	return f.cfg.DeltaT * time.Duration(f.cfg.K)
}

// Bytes returns the memory footprint of the bitmap, (k×N)/8 bytes.
func (f *Filter) Bytes() int {
	return f.cfg.K * f.vectors[0].Bytes()
}

// Stats returns a snapshot of the activity counters. It may be called
// from any goroutine, concurrently with packet processing: each counter
// is loaded atomically, so individual values are never torn and only
// ever increase.
func (f *Filter) Stats() Stats { return f.stats.snapshot() }

// Rotations returns the vector-rotation count alone — the filter's epoch,
// cheap enough to read per sampled decision trace.
//
//p2p:hotpath
func (f *Filter) Rotations() int64 { return f.stats.rotations.Load() }

// Utilization returns the marked-bit fraction of the current bit vector,
// the U = b/N of Equation 2.
//
//p2p:hotpath
func (f *Filter) Utilization() float64 {
	return f.vectors[f.idx].Utilization()
}

// VectorCount returns k, the number of bit vectors.
func (f *Filter) VectorCount() int { return f.cfg.K }

// Vector returns the i-th bit vector. This is the replication layer's
// cold-path window into the bitmap: delta export, OR-merge, and digest
// computation (internal/replica) operate on the vectors directly.
// Callers must honour the filter's single-writer discipline — sync
// work runs on the owning goroutine, between packet batches — and must
// only ever add bits (union merge), so replicated state stays a
// superset and false negatives remain structurally impossible.
func (f *Filter) Vector(i int) *bitvec.Vector { return f.vectors[i] }

// Index returns the index of the current (lookup) bit vector.
func (f *Filter) Index() int { return f.idx }

// AlignRotations fast-forwards the filter to a peer's rotation count
// (the fleet epoch), performing the rotations the local clock has not
// yet driven. The fleet convention derives each vector's generation
// from the count alone, so replicas that processed different local
// timelines still agree on which vector holds which age of marks. A
// jump of k or more takes the same clear-everything path as an idle
// gap — a fail-closed wipe the anti-entropy exchange then repairs from
// peers. A target at or behind the current count is a no-op: epochs,
// like timestamps, only move forward.
func (f *Filter) AlignRotations(target int64) {
	cur := f.stats.rotations.Load()
	if target <= cur {
		return
	}
	due := target - cur
	if due >= int64(f.cfg.K) {
		for _, v := range f.vectors {
			v.Clear()
		}
		f.idx = int((int64(f.idx) + due) % int64(f.cfg.K))
		f.sweepVec = f.idx
		f.stats.rotations.Add(due)
		if f.started {
			f.next += time.Duration(due) * f.cfg.DeltaT
		}
		return
	}
	for ; due > 0; due-- {
		f.Rotate()
		if f.started {
			f.next += f.cfg.DeltaT
		}
	}
}

// AlignIndex re-anchors the current-vector index to the fleet
// convention idx ≡ rotations (mod K). A fresh filter satisfies it by
// construction and Rotate preserves it, but a snapshot restore resets
// the rotation count to zero while keeping the stored index, and no
// amount of forward rotation can repair the skew (rotating advances
// both sides together). Re-anchoring relabels which vector is
// "current" without clearing anything: vector ages are scrambled for
// at most K rotations, which can only add false positives — marks are
// never invented — and a replica attaching afterwards stays
// fail-closed until anti-entropy digests match anyway.
func (f *Filter) AlignIndex() {
	want := int(f.stats.rotations.Load() % int64(f.cfg.K))
	if f.idx == want {
		return
	}
	// The deferred clear (sweepVec) keeps materializing whichever
	// vector it was already on; relabeling does not change contents.
	f.idx = want
}

// Advance performs every rotation due at simulated time ts; the replay
// engine calls it once per packet. Timestamps need not be monotonic: a
// backward timestamp is clamped to the high-water mark of all previous
// calls (counting in Stats.TimeAnomalies when the regression exceeds
// Config.ReorderTolerance), so the rotation schedule never runs
// backwards even when the capture clock does. An idle gap spanning k or
// more rotation periods takes the O(k) fast path — every vector is
// cleared and the index repositioned — instead of rotating period by
// period through the gap.
//
//p2p:hotpath
func (f *Filter) Advance(ts time.Duration) {
	if f.started && ts >= f.lastTS && ts < f.next {
		// Steady state: time moved forward within the current rotation
		// period. Kept tiny so the once-per-packet call inlines; first
		// call, clock regressions, and due rotations take the outlined
		// slow path.
		f.lastTS = ts
		return
	}
	f.advanceSlow(ts)
}

//p2p:hotpath
func (f *Filter) advanceSlow(ts time.Duration) {
	if !f.started {
		f.started = true
		f.lastTS = ts
		f.next = ts - ts%f.cfg.DeltaT + f.cfg.DeltaT
		return
	}
	if ts < f.lastTS {
		if f.lastTS-ts > f.cfg.ReorderTolerance {
			f.stats.timeAnomalies.Add(1)
		}
		ts = f.lastTS
	} else {
		f.lastTS = ts
	}
	if ts < f.next {
		return
	}
	due := int64((ts-f.next)/f.cfg.DeltaT) + 1
	if due >= int64(f.cfg.K) {
		for _, v := range f.vectors {
			v.Clear()
		}
		f.idx = int((int64(f.idx) + due) % int64(f.cfg.K))
		// All vectors are freshly cleared; sweep the one that is about
		// to collect the longest-lived marks (the new current vector).
		f.sweepVec = f.idx
		f.stats.rotations.Add(due)
		f.next += time.Duration(due) * f.cfg.DeltaT
		return
	}
	for ts >= f.next {
		f.Rotate()
		f.next += f.cfg.DeltaT
	}
}

// Rotate implements Algorithm 1 (the timer handler b.rotate): the vector
// that was current becomes "last" and is cleared, and the index advances
// to the next bit vector, which — having been cleared k rotations ago and
// marked by every outbound packet since — carries the marks of the
// previous k−1 periods. A flow therefore stays admitted for between
// (k−1)·Δt and k·Δt after its last outbound packet.
//
// The clear is logical and O(1): the vector's epoch advances and the
// physical memclr is deferred, swept one block per subsequent Process
// call. Reads and writes against the cleared vector observe all-zero
// immediately (see bitvec), so rotation no longer injects an O(N)
// latency spike into the packet decision that triggered it.
//
//p2p:hotpath
func (f *Filter) Rotate() {
	last := f.idx
	f.idx = (f.idx + 1) % f.cfg.K
	f.vectors[last].Clear()
	f.sweepVec = last
	f.stats.rotations.Add(1)
}

// stepSweep advances the deferred clear of the most recently rotated
// vector by one block (a bounded, cache-friendly memclr unit), retiring
// the sweep once the vector is fully materialized.
//
//p2p:hotpath
func (f *Filter) stepSweep() {
	if f.sweepVec >= 0 && f.vectors[f.sweepVec].StepClear(1) {
		f.sweepVec = -1
	}
}

// Process implements Algorithm 2 (the filtering function b.filter) for one
// packet, with the conditional dropping probability pd supplied by the
// caller. Outbound packets mark all bit vectors and pass; inbound packets
// are looked up in the current bit vector and each unmarked bit triggers an
// independent P_d drop draw, exactly as in the paper's pseudocode.
//
// Miss accounting: a packet contributes exactly one InboundHits or one
// InboundMisses increment — the drop path that returns early on the
// first losing draw and the survive path that walked every unmarked bit
// both record a single miss, preserving InboundHits + InboundMisses ==
// InboundPackets (see Stats).
//
//p2p:hotpath
func (f *Filter) Process(pkt *packet.Packet, pd float64) Verdict {
	if pkt.Dir == packet.Outbound {
		f.sums = f.appendSums(f.sums[:0], f.enc.Outbound(pkt.Pair))
	} else {
		f.sums = f.appendSums(f.sums[:0], f.enc.Inbound(pkt.Pair))
	}
	v := f.processSums(pkt, f.sums, pd)
	f.FlushStats()
	return v
}

// appendSums derives the m filter indexes of key per the configured
// scheme and layout, appending them to dst. This is the single point
// where a key's bytes become bit positions — Process, Mark, Contains,
// and the batch pass A all route through it, so every path provably
// derives identical indexes for identical keys.
//
//p2p:hotpath
func (f *Filter) appendSums(dst []uint32, key []byte) []uint32 {
	switch {
	case f.layout == hashes.LayoutBlocked:
		return f.family.AppendBlocked(dst, f.family.Sum64(key))
	case f.scheme == hashes.SchemeOneShot:
		return f.family.AppendDerived(dst, f.family.Sum64(key))
	default:
		return f.family.Sum(dst, key)
	}
}

// processSums is pass B of the packet decision: Algorithm 2 over
// already-derived indexes. Shared by Process (which derives inline) and
// ProcessHashed (which reads the pass-A scratch); both therefore make
// bit-identical decisions and draw from the rng in the same order.
//
//p2p:hotpath
func (f *Filter) processSums(pkt *packet.Packet, sums []uint32, pd float64) Verdict {
	f.stepSweep()
	if pkt.Dir == packet.Outbound {
		f.pend.outbound++
		f.markSums(sums)
		return Pass
	}
	f.pend.inbound++
	cur := f.vectors[f.idx]
	if f.layout == hashes.LayoutBlocked && cur.GetAligned(sums) {
		// Fast path for the blocked layout: the whole group reads from
		// one line, so a full match needs no per-bit epoch checks. A
		// partial match falls through to the per-bit loop below, which
		// draws from the rng exactly as the classic path does.
		f.pend.hits++
		return Pass
	}
	miss := false
	for _, h := range sums {
		if cur.Get(h) {
			continue
		}
		miss = true
		if pd > 0 && f.rng.Float64() < pd {
			f.pend.misses++
			f.pend.dropped++
			return Drop
		}
	}
	if miss {
		f.pend.misses++
	} else {
		f.pend.hits++
	}
	return Pass
}

// FlushStats publishes the counter deltas accumulated since the last
// flush into the atomic counters Stats reads. Process flushes itself;
// callers driving the two-pass batch API (HashBatch/ProcessHashed)
// directly must call it once per chunk — ProcessBatch does. Until the
// flush, pending deltas are invisible to concurrent Stats readers,
// which only weakens a snapshot by at most one chunk of packets.
//
//p2p:hotpath
func (f *Filter) FlushStats() {
	if f.pend.outbound != 0 {
		f.stats.outbound.Add(f.pend.outbound)
		f.pend.outbound = 0
	}
	if f.pend.inbound != 0 {
		f.stats.inbound.Add(f.pend.inbound)
		f.pend.inbound = 0
	}
	if f.pend.hits != 0 {
		f.stats.hits.Add(f.pend.hits)
		f.pend.hits = 0
	}
	if f.pend.misses != 0 {
		f.stats.misses.Add(f.pend.misses)
		f.pend.misses = 0
	}
	if f.pend.dropped != 0 {
		f.stats.dropped.Add(f.pend.dropped)
		f.pend.dropped = 0
	}
}

// Mark records an outbound socket pair in all k bit vectors.
//
//p2p:hotpath
func (f *Filter) Mark(pair packet.SocketPair) {
	f.sums = f.appendSums(f.sums[:0], f.enc.Outbound(pair))
	f.markSums(f.sums)
}

// markSums sets the derived indexes in all k bit vectors. In the
// blocked layout the per-vector group shares one cache line, so the set
// fan-out costs one potential memory stall per vector instead of m.
//
//p2p:hotpath
func (f *Filter) markSums(sums []uint32) {
	if f.layout == hashes.LayoutBlocked {
		for _, v := range f.vectors {
			v.SetAligned(sums)
		}
		return
	}
	for _, h := range sums {
		for _, v := range f.vectors {
			v.Set(h)
		}
	}
}

// Contains reports whether every hash bit of the inverse of an inbound
// socket pair is marked in the current bit vector — i.e. whether an inbound
// packet with this pair would be admitted unconditionally.
//
//p2p:hotpath
func (f *Filter) Contains(inboundPair packet.SocketPair) bool {
	f.sums = f.appendSums(f.sums[:0], f.enc.Inbound(inboundPair))
	cur := f.vectors[f.idx]
	if f.layout == hashes.LayoutBlocked {
		return cur.GetAligned(f.sums)
	}
	for _, h := range f.sums {
		if !cur.Get(h) {
			return false
		}
	}
	return true
}

// BatchChunk is the pass-A window of the two-pass batch path: the
// number of packets whose indexes are derived and whose target cache
// lines are touched ahead of the decision loop. Large enough that the
// independent line fills of a chunk overlap deeply in the memory
// subsystem, small enough that the scratch (BatchChunk·m indexes) and
// the touched lines stay resident until pass B consumes them.
const BatchChunk = 64

// HashBatch is pass A: it derives the indexes of up to BatchChunk
// packets into the filter's preallocated scratch and touches each
// packet's target cache lines, returning the number of packets hashed.
// Index derivation depends only on key bytes and configuration — never
// on rotation state — so hashing ahead of the per-packet Advance in
// pass B cannot change any decision; the touches are advisory loads
// (never writes), so a rotation between the passes at worst wastes a
// prefetch. Callers run the two passes back to back per chunk:
//
//	n := f.HashBatch(pkts)
//	for i := 0; i < n; i++ {
//		f.Advance(pkts[i].TS)
//		dst = append(dst, f.ProcessHashed(i, &pkts[i], pd))
//	}
//
//p2p:hotpath
func (f *Filter) HashBatch(pkts []packet.Packet) int {
	n := len(pkts)
	if n > BatchChunk {
		n = BatchChunk
	}
	m := f.cfg.M
	// The scratch goes through a local header so stores to it are not
	// pinned behind the opaque hash calls. One-shot derivations hash
	// from the socket-pair fields directly (KeyWords): the key never
	// round-trips through the encoder buffer, whose byte stores and
	// overlapping word loads defeat store-to-load forwarding. Per-index
	// families walk key bytes and keep the encoder path.
	sums := f.bsums
	cur := f.vectors[f.idx]
	blocked := f.layout == hashes.LayoutBlocked
	oneshot := f.scheme == hashes.SchemeOneShot
	hp := f.cfg.HolePunch
	klen := uint64(packet.KeySize)
	if hp {
		klen = packet.HolePunchKeySize
	}
	fam := f.family
	for i := 0; i < n; i++ {
		// Inverting inbound pairs inline keeps the encoder call a leaf
		// (Outbound inlines here; the Inbound wrapper does not).
		pair := pkts[i].Pair
		out := pkts[i].Dir == packet.Outbound
		if !out {
			pair = pair.Inverse()
		}
		group := sums[i*m : i*m+m]
		if oneshot {
			var a, b uint64
			if hp {
				a, b = pair.HolePunchKeyWords()
			} else {
				a, b = pair.KeyWords()
			}
			h := hashes.Sum64Words(a, b, klen)
			if blocked {
				fam.BlockedInto(group, h)
			} else {
				fam.DerivedInto(group, h)
			}
		} else {
			fam.SumInto(group, f.enc.Outbound(pair))
		}
		if !f.touch {
			continue
		}
		if blocked {
			// All m bits share one line per vector; one touch covers them.
			group = group[:1]
		}
		if out {
			for _, v := range f.vectors {
				for _, h := range group {
					v.Touch(h)
				}
			}
		} else {
			for _, h := range group {
				cur.Touch(h)
			}
		}
	}
	f.hashed = n
	return n
}

// ProcessHashed is pass B for the i-th packet of the chunk most
// recently hashed by HashBatch: the Algorithm 2 decision over the
// pass-A indexes. pkt must be the same packet passed to HashBatch at
// position i. Verdicts, statistics, and rng draws are identical to
// calling Process on the same sequence.
//
//p2p:hotpath
func (f *Filter) ProcessHashed(i int, pkt *packet.Packet, pd float64) Verdict {
	m := f.cfg.M
	return f.processSums(pkt, f.bsums[i*m:i*m+m], pd)
}

// ProcessBatch runs Advance and Process over a timestamp-sorted slice of
// packets with one constant dropping probability, appending one verdict
// per packet to dst and returning the extended slice. Passing a reusable
// dst[:0] keeps the batch path allocation-free. It is the replay/batch
// form of the per-packet loop: the rotation check amortizes to a single
// comparison per packet and the caller evaluates P_d once per batch
// instead of once per packet (appropriate whenever the throughput meter
// feeding P_d is updated at batch granularity, as in trace replay).
//
// Internally the batch is decided in two passes per BatchChunk window —
// hash-and-touch, then test-and-set — so the random cache-line fills of
// independent packets overlap instead of serializing; verdicts and
// counters are identical to the one-packet-at-a-time loop (see
// HashBatch for why the split is safe under rotation).
func (f *Filter) ProcessBatch(pkts []packet.Packet, pd float64, dst []Verdict) []Verdict {
	for len(pkts) > 0 {
		n := f.HashBatch(pkts)
		for i := 0; i < n; i++ {
			f.Advance(pkts[i].TS)
			dst = append(dst, f.ProcessHashed(i, &pkts[i], pd))
		}
		f.FlushStats()
		pkts = pkts[n:]
	}
	return dst
}
