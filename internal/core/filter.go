// Package core implements the paper's primary contribution: the
// {k×N}-bitmap filter of Section 4, a composite of k equal-size bloom
// filter bit vectors sharing m hash functions.
//
// Outbound packets mark their socket pair in all k bit vectors (so a flow
// stays admitted for between T_e − Δt and T_e = k·Δt after its last
// outbound packet); inbound packets are looked up in the current bit
// vector only; every Δt the b.rotate algorithm clears the oldest vector
// and makes it current. An inbound packet whose inverse socket pair is not
// marked is dropped with probability P_d supplied by the caller — in the
// full system, a RED-style ramp over the measured uplink throughput.
//
// All operations are constant time in the number of tracked connections;
// only the Δt-periodic rotation is O(N) in the vector size.
package core

import (
	"errors"
	"math/rand/v2"
	"strconv"
	"sync/atomic"
	"time"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/errfmt"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

// Verdict is the filtering decision for a packet.
type Verdict int

// Filtering decisions. Outbound packets are always passed; inbound packets
// may be dropped.
const (
	Pass Verdict = iota + 1
	Drop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "PASS"
	case Drop:
		return "DROP"
	default:
		return "verdict(" + strconv.Itoa(int(v)) + ")"
	}
}

// Config parameterizes a bitmap filter. The paper's simulation setup
// (Section 5.3) is NBits=20, K=4, DeltaT=5s, M=3: a 512 KiB filter with
// T_e = 20 s.
type Config struct {
	// K is the number of bit vectors (columns in Figure 7).
	K int
	// NBits is n: each bit vector holds N = 2^n bits.
	NBits uint
	// M is the number of shared hash functions.
	M int
	// DeltaT is the rotation period Δt.
	DeltaT time.Duration
	// HashKind selects the hash construction; zero value means FNVDouble.
	HashKind hashes.Kind
	// HolePunch enables partial-tuple hashing (remote port excluded) so
	// NAT hole punching keeps working behind the filter (Section 4.2).
	HolePunch bool
	// Seed seeds the deterministic random source used for P_d draws.
	Seed uint64
	// ReorderTolerance is the capture-reorder window for backward
	// timestamps. Real capture clocks regress — NTP steps, multi-queue
	// NICs delivering slightly out of order — so Advance never requires
	// monotonic input: a timestamp behind the monotonic high-water mark
	// is clamped to it, and only a regression larger than this window is
	// counted in Stats.TimeAnomalies. The default 0 counts every
	// backward step.
	ReorderTolerance time.Duration
}

// DefaultConfig returns the paper's Section 5.3 configuration.
func DefaultConfig() Config {
	return Config{K: 4, NBits: 20, M: 3, DeltaT: 5 * time.Second}
}

// Stats counts filter activity since construction.
//
// Accounting invariant: every inspected inbound packet is classified as
// exactly one hit or one miss — InboundHits + InboundMisses ==
// InboundPackets. A packet that draws a drop on its first unmarked bit
// and one that survives several unmarked bits each contribute a single
// miss; Dropped ≤ InboundMisses counts the subset of misses that lost a
// P_d draw.
type Stats struct {
	OutboundPackets int64 // outbound packets marked and passed
	InboundPackets  int64 // inbound packets inspected
	InboundHits     int64 // inbound packets fully marked in the current vector
	InboundMisses   int64 // inbound packets with at least one unmarked bit
	Dropped         int64 // inbound packets dropped
	Rotations       int64 // b.rotate invocations
	// TimeAnomalies counts Advance calls whose timestamp regressed behind
	// the monotonic high-water mark by more than the configured
	// ReorderTolerance. Such timestamps are clamped, never propagated, so
	// the rotation schedule only moves forward.
	TimeAnomalies int64
}

// counters is the live storage behind Stats. Every field is an atomic so
// Stats can be snapshotted from a scrape or monitoring goroutine while
// the owning goroutine processes packets: each counter read is torn-free
// and monotone. The filter itself remains single-writer; the atomics buy
// concurrent readers, not concurrent writers.
type counters struct {
	outbound      atomic.Int64 //p2p:atomic
	inbound       atomic.Int64 //p2p:atomic
	hits          atomic.Int64 //p2p:atomic
	misses        atomic.Int64 //p2p:atomic
	dropped       atomic.Int64 //p2p:atomic
	rotations     atomic.Int64 //p2p:atomic
	timeAnomalies atomic.Int64 //p2p:atomic
}

// snapshot loads every counter into a Stats value.
func (c *counters) snapshot() Stats {
	return Stats{
		OutboundPackets: c.outbound.Load(),
		InboundPackets:  c.inbound.Load(),
		InboundHits:     c.hits.Load(),
		InboundMisses:   c.misses.Load(),
		Dropped:         c.dropped.Load(),
		Rotations:       c.rotations.Load(),
		TimeAnomalies:   c.timeAnomalies.Load(),
	}
}

// Filter is a {k×N}-bitmap filter. It is driven by simulated packet
// timestamps via Advance and is not safe for concurrent use; wrap it or
// shard per flow hash for multi-queue deployments.
type Filter struct {
	cfg     Config
	vectors []*bitvec.Vector
	idx     int // index of the current bit vector
	family  *hashes.Family
	rng     *rand.Rand
	sums    []uint32
	// key and hpKey are the reusable socket-pair key buffers; each
	// packet encodes its key exactly once into one of them and the m
	// hash sums derived from it are shared by the mark fan-out across
	// all k vectors (outbound) or the current-vector lookup (inbound).
	key   [packet.KeySize]byte
	hpKey [packet.HolePunchKeySize]byte
	// sweepVec is the index of the vector whose deferred clear is being
	// swept across packet calls, or −1 when no sweep is pending. Each
	// Process call advances the sweep by one block, bounding the
	// per-packet clearing work instead of paying the O(N) memclr of
	// Algorithm 1 inside a single packet decision.
	sweepVec int
	next     time.Duration // simulated time of the next rotation
	lastTS   time.Duration // monotonic high-water mark of Advance input
	started  bool
	stats    counters
}

// New builds a bitmap filter from cfg.
func New(cfg Config) (*Filter, error) {
	if cfg.K <= 0 {
		return nil, errors.New("core: K must be positive, got " + strconv.Itoa(cfg.K))
	}
	if cfg.NBits == 0 || cfg.NBits > 32 {
		return nil, errors.New("core: NBits must be in [1,32], got " + strconv.FormatUint(uint64(cfg.NBits), 10))
	}
	if cfg.M <= 0 {
		return nil, errors.New("core: M must be positive, got " + strconv.Itoa(cfg.M))
	}
	if cfg.DeltaT <= 0 {
		return nil, errors.New("core: DeltaT must be positive, got " + cfg.DeltaT.String())
	}
	kind := cfg.HashKind
	if kind == 0 {
		kind = hashes.FNVDouble
	}
	family, err := hashes.NewFamily(kind, cfg.M, cfg.NBits)
	if err != nil {
		return nil, errfmt.Wrap("core", err)
	}
	vectors := make([]*bitvec.Vector, cfg.K)
	for i := range vectors {
		vectors[i] = bitvec.New(1 << cfg.NBits)
	}
	return &Filter{
		cfg:      cfg,
		vectors:  vectors,
		family:   family,
		rng:      rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		sums:     make([]uint32, 0, cfg.M),
		sweepVec: -1,
	}, nil
}

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }

// SetReorderTolerance adjusts the backward-timestamp tolerance window
// (see Config.ReorderTolerance). It is an operational knob, not filter
// state: snapshots do not carry it, so restore paths reapply it.
func (f *Filter) SetReorderTolerance(d time.Duration) {
	f.cfg.ReorderTolerance = d
}

// TE returns the effective expiry timer T_e = k·Δt (Section 4.3).
func (f *Filter) TE() time.Duration {
	return f.cfg.DeltaT * time.Duration(f.cfg.K)
}

// Bytes returns the memory footprint of the bitmap, (k×N)/8 bytes.
func (f *Filter) Bytes() int {
	return f.cfg.K * f.vectors[0].Bytes()
}

// Stats returns a snapshot of the activity counters. It may be called
// from any goroutine, concurrently with packet processing: each counter
// is loaded atomically, so individual values are never torn and only
// ever increase.
func (f *Filter) Stats() Stats { return f.stats.snapshot() }

// Rotations returns the vector-rotation count alone — the filter's epoch,
// cheap enough to read per sampled decision trace.
//
//p2p:hotpath
func (f *Filter) Rotations() int64 { return f.stats.rotations.Load() }

// Utilization returns the marked-bit fraction of the current bit vector,
// the U = b/N of Equation 2.
//
//p2p:hotpath
func (f *Filter) Utilization() float64 {
	return f.vectors[f.idx].Utilization()
}

// Advance performs every rotation due at simulated time ts; the replay
// engine calls it once per packet. Timestamps need not be monotonic: a
// backward timestamp is clamped to the high-water mark of all previous
// calls (counting in Stats.TimeAnomalies when the regression exceeds
// Config.ReorderTolerance), so the rotation schedule never runs
// backwards even when the capture clock does. An idle gap spanning k or
// more rotation periods takes the O(k) fast path — every vector is
// cleared and the index repositioned — instead of rotating period by
// period through the gap.
//
//p2p:hotpath
func (f *Filter) Advance(ts time.Duration) {
	if !f.started {
		f.started = true
		f.lastTS = ts
		f.next = ts - ts%f.cfg.DeltaT + f.cfg.DeltaT
		return
	}
	if ts < f.lastTS {
		if f.lastTS-ts > f.cfg.ReorderTolerance {
			f.stats.timeAnomalies.Add(1)
		}
		ts = f.lastTS
	} else {
		f.lastTS = ts
	}
	if ts < f.next {
		return
	}
	due := int64((ts-f.next)/f.cfg.DeltaT) + 1
	if due >= int64(f.cfg.K) {
		for _, v := range f.vectors {
			v.Clear()
		}
		f.idx = int((int64(f.idx) + due) % int64(f.cfg.K))
		// All vectors are freshly cleared; sweep the one that is about
		// to collect the longest-lived marks (the new current vector).
		f.sweepVec = f.idx
		f.stats.rotations.Add(due)
		f.next += time.Duration(due) * f.cfg.DeltaT
		return
	}
	for ts >= f.next {
		f.Rotate()
		f.next += f.cfg.DeltaT
	}
}

// Rotate implements Algorithm 1 (the timer handler b.rotate): the vector
// that was current becomes "last" and is cleared, and the index advances
// to the next bit vector, which — having been cleared k rotations ago and
// marked by every outbound packet since — carries the marks of the
// previous k−1 periods. A flow therefore stays admitted for between
// (k−1)·Δt and k·Δt after its last outbound packet.
//
// The clear is logical and O(1): the vector's epoch advances and the
// physical memclr is deferred, swept one block per subsequent Process
// call. Reads and writes against the cleared vector observe all-zero
// immediately (see bitvec), so rotation no longer injects an O(N)
// latency spike into the packet decision that triggered it.
//
//p2p:hotpath
func (f *Filter) Rotate() {
	last := f.idx
	f.idx = (f.idx + 1) % f.cfg.K
	f.vectors[last].Clear()
	f.sweepVec = last
	f.stats.rotations.Add(1)
}

// stepSweep advances the deferred clear of the most recently rotated
// vector by one block (a bounded, cache-friendly memclr unit), retiring
// the sweep once the vector is fully materialized.
//
//p2p:hotpath
func (f *Filter) stepSweep() {
	if f.sweepVec >= 0 && f.vectors[f.sweepVec].StepClear(1) {
		f.sweepVec = -1
	}
}

// Process implements Algorithm 2 (the filtering function b.filter) for one
// packet, with the conditional dropping probability pd supplied by the
// caller. Outbound packets mark all bit vectors and pass; inbound packets
// are looked up in the current bit vector and each unmarked bit triggers an
// independent P_d drop draw, exactly as in the paper's pseudocode.
//
// Miss accounting: a packet contributes exactly one InboundHits or one
// InboundMisses increment — the drop path that returns early on the
// first losing draw and the survive path that walked every unmarked bit
// both record a single miss, preserving InboundHits + InboundMisses ==
// InboundPackets (see Stats).
//
//p2p:hotpath
func (f *Filter) Process(pkt *packet.Packet, pd float64) Verdict {
	f.stepSweep()
	if pkt.Dir == packet.Outbound {
		f.stats.outbound.Add(1)
		f.Mark(pkt.Pair)
		return Pass
	}
	f.stats.inbound.Add(1)
	f.sums = f.family.Sum(f.sums[:0], f.inboundKey(pkt.Pair))
	cur := f.vectors[f.idx]
	miss := false
	for _, h := range f.sums {
		if cur.Get(h) {
			continue
		}
		miss = true
		if pd > 0 && f.rng.Float64() < pd {
			f.stats.misses.Add(1)
			f.stats.dropped.Add(1)
			return Drop
		}
	}
	if miss {
		f.stats.misses.Add(1)
	} else {
		f.stats.hits.Add(1)
	}
	return Pass
}

// Mark records an outbound socket pair in all k bit vectors.
//
//p2p:hotpath
func (f *Filter) Mark(pair packet.SocketPair) {
	f.sums = f.family.Sum(f.sums[:0], f.outboundKey(pair))
	for _, h := range f.sums {
		for _, v := range f.vectors {
			v.Set(h)
		}
	}
}

// Contains reports whether every hash bit of the inverse of an inbound
// socket pair is marked in the current bit vector — i.e. whether an inbound
// packet with this pair would be admitted unconditionally.
//
//p2p:hotpath
func (f *Filter) Contains(inboundPair packet.SocketPair) bool {
	f.sums = f.family.Sum(f.sums[:0], f.inboundKey(inboundPair))
	cur := f.vectors[f.idx]
	for _, h := range f.sums {
		if !cur.Get(h) {
			return false
		}
	}
	return true
}

// ProcessBatch runs Advance and Process over a timestamp-sorted slice of
// packets with one constant dropping probability, appending one verdict
// per packet to dst and returning the extended slice. Passing a reusable
// dst[:0] keeps the batch path allocation-free. It is the replay/batch
// form of the per-packet loop: the rotation check amortizes to a single
// comparison per packet and the caller evaluates P_d once per batch
// instead of once per packet (appropriate whenever the throughput meter
// feeding P_d is updated at batch granularity, as in trace replay).
func (f *Filter) ProcessBatch(pkts []packet.Packet, pd float64, dst []Verdict) []Verdict {
	for i := range pkts {
		f.Advance(pkts[i].TS)
		dst = append(dst, f.Process(&pkts[i], pd))
	}
	return dst
}

// outboundKey encodes the hash key for an outbound packet's socket pair
// into the filter's fixed key buffer: the full tuple, or {proto, saddr,
// sport, daddr} in hole-punch mode. Each packet is encoded exactly once.
//
//p2p:hotpath
func (f *Filter) outboundKey(pair packet.SocketPair) []byte {
	if f.cfg.HolePunch {
		pair.PutHolePunchKey(&f.hpKey)
		return f.hpKey[:]
	}
	pair.PutKey(&f.key)
	return f.key[:]
}

// inboundKey encodes the hash key for an inbound packet's socket pair: the
// inverse tuple σ̄, whose encoding coincides with the matching outbound
// key in both full and hole-punch modes ({proto, daddr, dport, saddr} of
// the inbound packet equals {proto, saddr, sport, daddr} of the outbound
// one).
//
//p2p:hotpath
func (f *Filter) inboundKey(pair packet.SocketPair) []byte {
	return f.outboundKey(pair.Inverse())
}
