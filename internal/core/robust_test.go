package core

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

// smallSnapshot returns a marked filter with a compact geometry and its
// version-2 snapshot bytes.
func smallSnapshot(t *testing.T) (*Filter, []byte) {
	t.Helper()
	f, err := New(Config{K: 2, NBits: 10, M: 2, DeltaT: time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(0)
	for i := uint32(0); i < 200; i++ {
		f.Process(outPkt(time.Duration(i)*5*time.Millisecond, pairN(i)), 1)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

// TestSnapshotV2BitFlipRejected: CRC32C catches every single-bit flip
// anywhere in the stream, including header, frame lengths, vector
// payload, and the trailer itself.
func TestSnapshotV2BitFlipRejected(t *testing.T) {
	_, snap := smallSnapshot(t)
	mut := make([]byte, len(snap))
	for i := range snap {
		for bit := 0; bit < 8; bit++ {
			copy(mut, snap)
			mut[i] ^= 1 << bit
			if _, err := ReadFilter(bytes.NewReader(mut)); err == nil {
				t.Fatalf("flipped bit %d of byte %d/%d accepted", bit, i, len(snap))
			}
		}
	}
}

// TestSnapshotV2TruncationRejected: every proper prefix of a snapshot is
// rejected with an error, never a short-read panic or a silent partial
// load.
func TestSnapshotV2TruncationRejected(t *testing.T) {
	_, snap := smallSnapshot(t)
	for n := 0; n < len(snap); n++ {
		if _, err := ReadFilter(bytes.NewReader(snap[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(snap))
		}
	}
}

// TestSnapshotV1StillReadable: the legacy unchecksummed stream loads and
// agrees with the source filter.
func TestSnapshotV1StillReadable(t *testing.T) {
	f, _ := smallSnapshot(t)
	var v1 bytes.Buffer
	if _, err := f.writeToV1(&v1); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFilter(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	for i := uint32(0); i < 400; i++ {
		pair := pairN(i).Inverse()
		if f.Contains(pair) != restored.Contains(pair) {
			t.Fatalf("lookup %d diverges after v1 restore", i)
		}
	}
}

// TestSnapshotGeometryCapRejected: a header demanding an absurd
// allocation is refused before any vector memory is reserved.
func TestSnapshotGeometryCapRejected(t *testing.T) {
	_, snap := smallSnapshot(t)
	for _, tc := range []struct {
		name   string
		offset int
		value  uint32
	}{
		{"huge K", 8, 1 << 20},
		{"huge total", 8, maxSnapshotK}, // k=1024 at the seed's NBits is fine; bump NBits too
	} {
		mut := append([]byte(nil), snap...)
		binary.LittleEndian.PutUint32(mut[tc.offset:], tc.value)
		if tc.name == "huge total" {
			binary.LittleEndian.PutUint32(mut[12:], 30) // 1024 × 128 MiB
		}
		_, err := ReadFilter(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
		if !strings.Contains(err.Error(), "implausible") {
			t.Fatalf("%s: expected geometry error, got %v", tc.name, err)
		}
	}
}

// TestAdvanceBackwardTimestamps: backward and duplicate timestamps are
// clamped, counted only beyond the tolerance window, and never move the
// rotation schedule backwards.
func TestAdvanceBackwardTimestamps(t *testing.T) {
	f, err := New(Config{K: 4, NBits: 10, M: 2, DeltaT: 5 * time.Second, ReorderTolerance: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(time.Second)
	f.Advance(time.Second) // duplicate: never an anomaly
	if got := f.Stats().TimeAnomalies; got != 0 {
		t.Fatalf("duplicate timestamp counted as anomaly: %d", got)
	}
	f.Advance(time.Second - 50*time.Millisecond) // inside the window
	if got := f.Stats().TimeAnomalies; got != 0 {
		t.Fatalf("in-tolerance reorder counted as anomaly: %d", got)
	}
	f.Advance(500 * time.Millisecond) // 500 ms behind: anomaly
	if got := f.Stats().TimeAnomalies; got != 1 {
		t.Fatalf("beyond-tolerance regression not counted: %d", got)
	}
	// The schedule never rewound: the first rotation still fires at 5 s.
	f.Advance(4900 * time.Millisecond)
	if got := f.Stats().Rotations; got != 0 {
		t.Fatalf("rotated early after regression: %d", got)
	}
	f.Advance(5 * time.Second)
	if got := f.Stats().Rotations; got != 1 {
		t.Fatalf("missed rotation after regression: %d", got)
	}
}

// TestProcessAfterClockRegressionKeepsInvariant: a clock-regressed
// interleaving of outbound and inbound packets preserves the hit/miss
// accounting invariant.
func TestProcessAfterClockRegressionKeepsInvariant(t *testing.T) {
	f, err := New(Config{K: 3, NBits: 12, M: 3, DeltaT: time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := []time.Duration{0, 2 * time.Second, time.Second, 3 * time.Second, 500 * time.Millisecond, 4 * time.Second}
	for round, now := range ts {
		f.Advance(now)
		for i := uint32(0); i < 50; i++ {
			f.Process(outPkt(now, pairN(i)), 0.5)
			f.Process(inPkt(now, pairN(i)), 0.5)
			f.Process(inPkt(now, pairN(i+10000)), 0.5) // never marked
		}
		s := f.Stats()
		if s.InboundHits+s.InboundMisses != s.InboundPackets {
			t.Fatalf("round %d: hit/miss invariant broken: %d + %d != %d",
				round, s.InboundHits, s.InboundMisses, s.InboundPackets)
		}
		if s.Dropped > s.InboundMisses {
			t.Fatalf("round %d: dropped %d exceeds misses %d", round, s.Dropped, s.InboundMisses)
		}
	}
	if got := f.Stats().TimeAnomalies; got != 2 {
		t.Fatalf("expected 2 time anomalies, got %d", got)
	}
}
