package core

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"strconv"
	"time"

	"p2pbound/internal/errfmt"
	"p2pbound/internal/hashes"
)

// hex renders v as 0x-prefixed lowercase hexadecimal, the fmt %#x form
// used in snapshot diagnostics.
func hex(v uint64) string { return "0x" + strconv.FormatUint(v, 16) }

// Snapshot format constants. The format is versioned so deployed state
// files survive library upgrades that do not touch the layout.
//
// Version 2 hardens the format for crash-safe edge operation: each bit
// vector is length-framed (bitvec.WriteFrame) and the whole stream —
// header and frames — is covered by a trailing CRC32C, so a torn write,
// a truncated file, or a single flipped bit is rejected with a clean
// error instead of silently loading a corrupt admission table (which
// would convert false negatives into dropped legitimate traffic).
// Version 1 streams remain readable; they carry no checksum.
const (
	snapshotMagic = 0x424d4631 // "BMF1"
	snapshotV1    = 1
	snapshotV2    = 2
	// snapshotVersion is the version WriteTo emits.
	snapshotVersion = snapshotV2

	snapshotHeaderLen  = 56
	snapshotTrailerLen = 4
)

// Snapshot geometry caps. ReadFilter must allocate the filter before it
// can verify the checksum, so a corrupt or hostile header could other-
// wise demand an absurd allocation. Real deployments sit far below both
// caps (the paper's configuration is k=4, 128 KiB per vector).
const (
	maxSnapshotK     = 1024
	maxSnapshotM     = 1024
	maxSnapshotBytes = 1 << 28 // 256 MiB of vector payload
)

// castagnoli is the CRC32C table shared by snapshot writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the filter — configuration, rotation state, and all
// k bit vectors — so a restarted edge router can resume admitting the
// flows it was already tracking instead of challenging every client for
// the first T_e after boot. Counters are not persisted. The stream is
// the version-2 format: length-framed vectors and a CRC32C trailer over
// every preceding byte. It implements io.WriterTo.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.New(castagnoli)
	cw := io.MultiWriter(w, crc)

	hdr := f.encodeHeader(snapshotV2)
	total := int64(0)
	n, err := cw.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, errfmt.Wrap("core: write snapshot header", err)
	}
	for _, v := range f.vectors {
		m, err := v.WriteFrame(cw)
		total += m
		if err != nil {
			return total, errfmt.Wrap("core: write snapshot vectors", err)
		}
	}
	var trailer [snapshotTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	n, err = w.Write(trailer[:])
	total += int64(n)
	if err != nil {
		return total, errfmt.Wrap("core: write snapshot trailer", err)
	}
	return total, nil
}

// encodeHeader renders the fixed snapshot header for the given version.
//
//p2p:codec snapshotv2 encode
func (f *Filter) encodeHeader(version uint32) [snapshotHeaderLen]byte {
	var hdr [snapshotHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.cfg.K))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(f.cfg.NBits))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(f.cfg.M))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(f.cfg.DeltaT))
	kind := f.cfg.HashKind
	if kind == 0 {
		kind = hashes.FNVDouble
	}
	binary.LittleEndian.PutUint32(hdr[28:], uint32(kind))
	if f.cfg.HolePunch {
		hdr[32] = 1
	}
	if f.started {
		hdr[33] = 1
	}
	// Bytes 34 and 35 were reserved-zero until the blocked-layout
	// release; they now carry the resolved index-derivation scheme and
	// bit layout. Older streams read as zero, which maps back to the
	// defaults, so every previously written snapshot keeps its meaning.
	// newFilter resolves cfg.HashScheme/cfg.Layout in place, so these
	// equal f.scheme/f.layout; reading the cfg copies keeps the codec
	// field sets symmetric with readFilter's Config literal.
	hdr[34] = byte(f.cfg.HashScheme)
	hdr[35] = byte(f.cfg.Layout)
	binary.LittleEndian.PutUint32(hdr[36:], uint32(f.idx))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(f.next))
	binary.LittleEndian.PutUint64(hdr[48:], f.cfg.Seed)
	return hdr
}

// writeToV1 emits the legacy unframed, unchecksummed version-1 stream.
// It exists so the version-1 read path stays covered by tests; new
// snapshots are always version 2.
func (f *Filter) writeToV1(w io.Writer) (int64, error) {
	hdr := f.encodeHeader(snapshotV1)
	total := int64(0)
	n, err := w.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, errfmt.Wrap("core: write snapshot header", err)
	}
	for _, v := range f.vectors {
		m, err := v.WriteTo(w)
		total += m
		if err != nil {
			return total, errfmt.Wrap("core: write snapshot vectors", err)
		}
	}
	return total, nil
}

// ReadFilter reconstructs a filter from a WriteTo stream. The embedded
// configuration is authoritative; the returned filter continues rotating
// on the schedule the snapshot recorded.
//
// Robustness contract (held by FuzzReadFilter): any corrupt, truncated,
// or hostile input yields a descriptive error — never a panic, an
// unbounded allocation, or a filter whose later operations misbehave.
// For version-2 streams every byte is covered by the CRC32C trailer, so
// a snapshot that survived a torn write or bit rot is always rejected;
// callers should treat the error as a cold start, not a fatal condition.
func ReadFilter(r io.Reader) (*Filter, error) {
	return ReadFilterWith(r, nil)
}

// ReadFilterWith is ReadFilter with the filter's bit vectors drawn from
// alloc (nil selects plain heap vectors). The tenant rehydration path
// uses it so a filter restored from a spill frame lands back in the
// arena it was evicted from. On any decode error vectors already carved
// from alloc are released before returning, so a rejected snapshot
// leaks no spans.
func ReadFilterWith(r io.Reader, alloc VectorAllocator) (*Filter, error) {
	f, err := readFilter(r, alloc)
	if err != nil && f != nil && alloc != nil {
		_ = f.ReleaseVectors(alloc)
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

//p2p:codec snapshotv2 decode
func readFilter(r io.Reader, alloc VectorAllocator) (*Filter, error) {
	crc := crc32.New(castagnoli)
	tee := io.TeeReader(r, crc)

	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(tee, hdr[:]); err != nil {
		return nil, errfmt.Wrap("core: read snapshot header", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != snapshotMagic {
		return nil, errfmt.Detail("core: bad snapshot magic "+hex(uint64(got)), ErrSnapshotMagic)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != snapshotV1 && version != snapshotV2 {
		return nil, errfmt.Detail("core: unsupported snapshot version "+strconv.FormatUint(uint64(version), 10), ErrSnapshotVersion)
	}
	cfg := Config{
		K:          int(binary.LittleEndian.Uint32(hdr[8:])),
		NBits:      uint(binary.LittleEndian.Uint32(hdr[12:])),
		M:          int(binary.LittleEndian.Uint32(hdr[16:])),
		DeltaT:     time.Duration(binary.LittleEndian.Uint64(hdr[20:])),
		HashKind:   hashes.Kind(binary.LittleEndian.Uint32(hdr[28:])),
		HashScheme: hashes.Scheme(hdr[34]),
		Layout:     hashes.Layout(hdr[35]),
		HolePunch:  hdr[32] == 1,
		Seed:       binary.LittleEndian.Uint64(hdr[48:]),
	}
	if cfg.K > maxSnapshotK {
		return nil, errfmt.Detail("core: implausible snapshot geometry: k="+strconv.Itoa(cfg.K)+" exceeds "+strconv.Itoa(maxSnapshotK), ErrSnapshotGeometry)
	}
	// M is capped before New runs because the filter pre-sizes its batch
	// hash scratch proportionally to M — an unchecked corrupt header
	// could demand an absurd allocation before the checksum is verified.
	if cfg.M > maxSnapshotM {
		return nil, errfmt.Detail("core: implausible snapshot geometry: m="+strconv.Itoa(cfg.M)+" exceeds "+strconv.Itoa(maxSnapshotM), ErrSnapshotGeometry)
	}
	if cfg.K > 0 && cfg.NBits > 0 && cfg.NBits <= 32 {
		if bytes := (int64(cfg.K) << cfg.NBits) / 8; bytes > maxSnapshotBytes {
			return nil, errfmt.Detail("core: implausible snapshot geometry: "+strconv.FormatInt(bytes, 10)+" vector bytes exceed "+strconv.Itoa(maxSnapshotBytes), ErrSnapshotGeometry)
		}
	}
	f, err := newFilter(cfg, alloc)
	if err != nil {
		return nil, errfmt.Detail("core: snapshot config: "+err.Error(), ErrSnapshotCorrupt)
	}
	f.started = hdr[33] == 1
	f.idx = int(binary.LittleEndian.Uint32(hdr[36:]))
	if f.idx < 0 || f.idx >= cfg.K {
		return f, errfmt.Detail("core: snapshot index "+strconv.Itoa(f.idx)+" out of range", ErrSnapshotCorrupt)
	}
	f.next = time.Duration(binary.LittleEndian.Uint64(hdr[40:]))

	for _, v := range f.vectors {
		if version == snapshotV1 {
			_, err = v.ReadFrom(r)
		} else {
			_, err = v.ReadFrame(tee)
		}
		if err != nil {
			return f, errfmt.Wrap("core: read snapshot vectors", err)
		}
	}
	if version == snapshotV2 {
		want := crc.Sum32()
		var trailer [snapshotTrailerLen]byte
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			return f, errfmt.Wrap("core: read snapshot trailer", err)
		}
		if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
			return f, errfmt.Detail("core: snapshot checksum mismatch: stored "+hex(uint64(got))+", computed "+hex(uint64(want)), ErrSnapshotChecksum)
		}
	}
	return f, nil
}
