package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"p2pbound/internal/hashes"
)

// Snapshot format constants. The format is versioned so deployed state
// files survive library upgrades that do not touch the layout.
const (
	snapshotMagic   = 0x424d4631 // "BMF1"
	snapshotVersion = 1
)

// WriteTo serializes the filter — configuration, rotation state, and all
// k bit vectors — so a restarted edge router can resume admitting the
// flows it was already tracking instead of challenging every client for
// the first T_e after boot. Counters are not persisted. It implements
// io.WriterTo.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var hdr [56]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.cfg.K))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(f.cfg.NBits))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(f.cfg.M))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(f.cfg.DeltaT))
	kind := f.cfg.HashKind
	if kind == 0 {
		kind = hashes.FNVDouble
	}
	binary.LittleEndian.PutUint32(hdr[28:], uint32(kind))
	if f.cfg.HolePunch {
		hdr[32] = 1
	}
	if f.started {
		hdr[33] = 1
	}
	binary.LittleEndian.PutUint32(hdr[36:], uint32(f.idx))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(f.next))
	binary.LittleEndian.PutUint64(hdr[48:], f.cfg.Seed)

	total := int64(0)
	n, err := w.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("core: write snapshot header: %w", err)
	}
	for _, v := range f.vectors {
		m, err := v.WriteTo(w)
		total += m
		if err != nil {
			return total, fmt.Errorf("core: write snapshot vectors: %w", err)
		}
	}
	return total, nil
}

// ReadFilter reconstructs a filter from a WriteTo stream. The embedded
// configuration is authoritative; the returned filter continues rotating
// on the schedule the snapshot recorded.
func ReadFilter(r io.Reader) (*Filter, error) {
	var hdr [56]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: read snapshot header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", got)
	}
	cfg := Config{
		K:         int(binary.LittleEndian.Uint32(hdr[8:])),
		NBits:     uint(binary.LittleEndian.Uint32(hdr[12:])),
		M:         int(binary.LittleEndian.Uint32(hdr[16:])),
		DeltaT:    time.Duration(binary.LittleEndian.Uint64(hdr[20:])),
		HashKind:  hashes.Kind(binary.LittleEndian.Uint32(hdr[28:])),
		HolePunch: hdr[32] == 1,
		Seed:      binary.LittleEndian.Uint64(hdr[48:]),
	}
	f, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot config: %w", err)
	}
	f.started = hdr[33] == 1
	f.idx = int(binary.LittleEndian.Uint32(hdr[36:]))
	if f.idx < 0 || f.idx >= cfg.K {
		return nil, fmt.Errorf("core: snapshot index %d out of range", f.idx)
	}
	f.next = time.Duration(binary.LittleEndian.Uint64(hdr[40:]))
	for _, v := range f.vectors {
		if _, err := v.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("core: read snapshot vectors: %w", err)
		}
	}
	return f, nil
}
