package core

import (
	"bytes"
	"testing"
	"time"

	"p2pbound/internal/hashes"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{K: 3, NBits: 14, M: 2, DeltaT: 2 * time.Second, HolePunch: true, Seed: 9}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(0)
	for i := uint32(0); i < 500; i++ {
		f.Process(outPkt(time.Duration(i)*10*time.Millisecond, pairN(i)), 1)
		f.Advance(time.Duration(i) * 10 * time.Millisecond)
	}

	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot normalizes the zero HashKind to the default family and
	// the zero scheme/layout to the classic defaults.
	wantCfg := cfg
	wantCfg.HashKind = hashes.FNVDouble
	wantCfg.HashScheme = hashes.SchemePerIndex
	wantCfg.Layout = hashes.LayoutClassic
	if restored.Config() != wantCfg {
		t.Fatalf("config drift: %+v vs %+v", restored.Config(), wantCfg)
	}
	// Every tracked flow must still be admitted by the restored filter,
	// and both filters must agree on arbitrary lookups.
	for i := uint32(0); i < 2000; i++ {
		pair := pairN(i).Inverse()
		if f.Contains(pair) != restored.Contains(pair) {
			t.Fatalf("lookup %d diverges after restore", i)
		}
	}
	if restored.Utilization() != f.Utilization() {
		t.Fatalf("utilization drift: %g vs %g", restored.Utilization(), f.Utilization())
	}
}

// TestSnapshotRotationScheduleSurvives: the restored filter rotates at the
// same simulated instants the original would have.
func TestSnapshotRotationScheduleSurvives(t *testing.T) {
	f, err := New(Config{K: 4, NBits: 12, M: 3, DeltaT: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(time.Second)
	f.Advance(12 * time.Second) // two rotations done; next at 15 s

	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored.Advance(14 * time.Second)
	if got := restored.Stats().Rotations; got != 0 {
		t.Fatalf("restored filter rotated early: %d", got)
	}
	restored.Advance(15 * time.Second)
	if got := restored.Stats().Rotations; got != 1 {
		t.Fatalf("restored filter missed its schedule: %d rotations", got)
	}
}

func TestReadFilterRejectsGarbage(t *testing.T) {
	if _, err := ReadFilter(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := ReadFilter(bytes.NewReader(make([]byte, 56))); err == nil {
		t.Fatal("zero header accepted")
	}
	// A valid header with truncated vector data must fail cleanly.
	f, err := New(Config{K: 2, NBits: 12, M: 2, DeltaT: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFilter(bytes.NewReader(buf.Bytes()[:100])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
