package core

import "errors"

// Typed snapshot-rejection sentinels. ReadFilter wraps each rejection
// in a diagnostic message that unwraps (errors.Is) to exactly one of
// these, so operators and the replication layer can distinguish "this
// file is not a snapshot" from "this snapshot rotted on disk" from
// "this snapshot demands an implausible allocation" without string
// matching. The corruption fuzz tests assert the mapping.
var (
	// ErrSnapshotMagic: the stream does not begin with the snapshot
	// magic — not a snapshot at all.
	ErrSnapshotMagic = errors.New("core: bad snapshot magic")
	// ErrSnapshotVersion: a snapshot, but a format version this build
	// does not read.
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
	// ErrSnapshotGeometry: the header's geometry exceeds the
	// allocation caps (k, m, or total vector bytes) — corrupt or
	// hostile, rejected before any allocation.
	ErrSnapshotGeometry = errors.New("core: implausible snapshot geometry")
	// ErrSnapshotCorrupt: the structure is internally inconsistent — a
	// configuration New rejects, or a rotation index outside [0, k).
	ErrSnapshotCorrupt = errors.New("core: corrupt snapshot structure")
	// ErrSnapshotChecksum: the CRC32C trailer does not match the
	// stream — a torn write, truncation inside the covered region, or
	// bit rot.
	ErrSnapshotChecksum = errors.New("core: snapshot checksum mismatch")
)
