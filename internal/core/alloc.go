package core

import (
	"math/rand/v2"
	"time"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/errfmt"
)

// VectorAllocator abstracts where a filter's bit vectors come from. The
// default (nil) allocator is bitvec.New — one heap allocation pair per
// vector, right for a handful of long-lived filters. A multi-tenant
// control plane hydrating and evicting filters by the hundred thousand
// passes a *bitvec.Arena instead, so vector storage is carved from
// pooled 512-bit-aligned slabs and recycled across tenant generations.
type VectorAllocator interface {
	// NewVector returns a zeroed vector of nbits capacity.
	NewVector(nbits uint) *bitvec.Vector
	// Release returns a vector's storage for reuse. The vector must not
	// be used afterwards.
	Release(v *bitvec.Vector) error
}

// NewWith builds a bitmap filter whose bit vectors come from alloc; a
// nil alloc selects plain heap vectors, making NewWith(cfg, nil)
// identical to New(cfg). The filter does not retain alloc — the caller
// that owns the allocator also owns the filter's lifecycle and calls
// ReleaseVectors when retiring it.
func NewWith(cfg Config, alloc VectorAllocator) (*Filter, error) {
	return newFilter(cfg, alloc)
}

// ReleaseVectors returns every bit vector's storage to alloc and leaves
// the filter unusable; callers retire the filter afterwards. It is the
// eviction half of arena-backed construction: the tenant manager
// snapshots the filter first, then recycles its spans.
func (f *Filter) ReleaseVectors(alloc VectorAllocator) error {
	for _, v := range f.vectors {
		if err := alloc.Release(v); err != nil {
			return errfmt.Wrap("core: release vectors", err)
		}
	}
	f.vectors = nil
	return nil
}

// Empty reports whether no bit is marked in any vector — the gate for
// the evict fast path that spills only rotation and rng state instead
// of a full snapshot. Ones counts are logical (a lazily-cleared vector
// reads zero), and O(1) per vector.
func (f *Filter) Empty() bool {
	for _, v := range f.vectors {
		if v.OnesCount() != 0 {
			return false
		}
	}
	return true
}

// RotationState is the part of a filter's temporal state that the v2
// snapshot format does not fully carry but verdict-exact suspend/resume
// needs: the monotonic clamp high-water mark (LastTS) on top of the
// rotation schedule (Started/Index/Next) the snapshot header already
// records. A tenant manager evicting an idle tenant saves this plus the
// rng state; restoring both makes the rehydrated filter's subsequent
// verdicts, rotations, and anomaly accounting bit-identical to a filter
// that was never evicted.
//
//p2p:codec
type RotationState struct {
	Started bool
	Index   int
	Next    time.Duration
	LastTS  time.Duration
}

// RotationState returns the filter's current rotation/clamp state.
func (f *Filter) RotationState() RotationState {
	return RotationState{Started: f.started, Index: f.idx, Next: f.next, LastTS: f.lastTS}
}

// SetRotationState overwrites the rotation/clamp state. The index must
// be in range for the filter's K.
func (f *Filter) SetRotationState(st RotationState) error {
	if st.Index < 0 || st.Index >= f.cfg.K {
		return errfmt.Detail("core: rotation state index out of range", ErrSnapshotCorrupt)
	}
	f.started = st.Started
	f.idx = st.Index
	f.next = st.Next
	f.lastTS = st.LastTS
	return nil
}

// RNGState serializes the P_d draw source. The paper's Algorithm 2
// draws one uniform variate per unmarked bit; replaying the exact draw
// sequence across an evict/rehydrate cycle requires carrying the PCG
// position, which the v2 snapshot (deliberately, for fleet use) does
// not.
func (f *Filter) RNGState() ([]byte, error) {
	b, err := f.pcg.MarshalBinary()
	if err != nil {
		return nil, errfmt.Wrap("core: marshal rng state", err)
	}
	return b, nil
}

// SetRNGState restores a P_d draw source serialized by RNGState.
func (f *Filter) SetRNGState(b []byte) error {
	if err := f.pcg.UnmarshalBinary(b); err != nil {
		return errfmt.Detail("core: rng state: "+err.Error(), ErrSnapshotCorrupt)
	}
	return nil
}

// ValidateRNGState reports whether b is a well-formed RNGState encoding
// without touching any filter — the staged-validation half of a
// multi-tenant snapshot restore, which must prove every frame applies
// cleanly before applying any.
func ValidateRNGState(b []byte) error {
	var pcg rand.PCG
	if err := pcg.UnmarshalBinary(b); err != nil {
		return errfmt.Detail("core: rng state: "+err.Error(), ErrSnapshotCorrupt)
	}
	return nil
}
