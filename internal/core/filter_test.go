package core

import (
	"testing"
	"testing/quick"
	"time"

	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

func testConfig() Config {
	return Config{K: 4, NBits: 16, M: 3, DeltaT: 5 * time.Second}
}

func pairN(i uint32) packet.SocketPair {
	return packet.SocketPair{
		Proto:   packet.TCP,
		SrcAddr: packet.AddrFrom4(140, 112, byte(i>>8), byte(i)),
		SrcPort: uint16(30000 + i%10000),
		DstAddr: packet.AddrFrom4(8, byte(i>>16), byte(i>>8), byte(i)),
		DstPort: uint16(10000 + i%20000),
	}
}

func outPkt(ts time.Duration, pair packet.SocketPair) *packet.Packet {
	return &packet.Packet{TS: ts, Pair: pair, Dir: packet.Outbound, Len: 60}
}

func inPkt(ts time.Duration, pair packet.SocketPair) *packet.Packet {
	return &packet.Packet{TS: ts, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 60}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero K", func(c *Config) { c.K = 0 }, false},
		{"zero NBits", func(c *Config) { c.NBits = 0 }, false},
		{"huge NBits", func(c *Config) { c.NBits = 33 }, false},
		{"zero M", func(c *Config) { c.M = 0 }, false},
		{"zero DeltaT", func(c *Config) { c.DeltaT = 0 }, false},
		{"bad hash kind", func(c *Config) { c.HashKind = 99 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			_, err := New(cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("New error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Bytes(); got != 512*1024 {
		t.Fatalf("default filter memory = %d bytes, want 512 KiB (the paper's 512K)", got)
	}
	if got := f.TE(); got != 20*time.Second {
		t.Fatalf("default T_e = %v, want 20s", got)
	}
}

func TestOutboundAlwaysPasses(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		if v := f.Process(outPkt(0, pairN(i)), 1); v != Pass {
			t.Fatalf("outbound packet %d: %v", i, v)
		}
	}
	if got := f.Stats().OutboundPackets; got != 100 {
		t.Fatalf("outbound counter = %d", got)
	}
}

func TestInboundResponseAdmitted(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(7)
	f.Process(outPkt(0, pair), 1)
	if v := f.Process(inPkt(time.Second, pair), 1); v != Pass {
		t.Fatalf("response to outbound request dropped: %v", v)
	}
	if got := f.Stats().InboundHits; got != 1 {
		t.Fatalf("inbound hits = %d", got)
	}
}

func TestUnsolicitedInboundDropped(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for i := uint32(0); i < 1000; i++ {
		f.Advance(time.Duration(i) * time.Millisecond)
		if f.Process(inPkt(time.Duration(i)*time.Millisecond, pairN(i)), 1) == Drop {
			dropped++
		}
	}
	// With P_d = 1 and an empty filter, essentially everything must
	// drop; allow a handful of hash-collision escapes.
	if dropped < 990 {
		t.Fatalf("dropped %d/1000 unsolicited inbound packets", dropped)
	}
}

func TestPdZeroNeverDrops(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 500; i++ {
		if f.Process(inPkt(0, pairN(i)), 0) == Drop {
			t.Fatal("packet dropped with P_d = 0")
		}
	}
	if missed := f.Stats().InboundMisses; missed != 500 {
		t.Fatalf("misses = %d, want 500", missed)
	}
}

// TestPdFractionalDropRate property: with P_d = p, roughly a p-fraction of
// fully-unmarked inbound packets is dropped (each of the m unmarked bits
// draws independently, so the per-packet drop probability is
// 1-(1-p)^m for an m-hash filter — the paper's Algorithm 2 semantics).
func TestPdFractionalDropRate(t *testing.T) {
	cfg := testConfig()
	cfg.NBits = 20 // keep collisions negligible
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	const pd = 0.2
	dropped := 0
	for i := uint32(0); i < n; i++ {
		if f.Process(inPkt(0, pairN(i)), pd) == Drop {
			dropped++
		}
	}
	want := 1 - (1-pd)*(1-pd)*(1-pd) // m = 3
	got := float64(dropped) / n
	if got < want-0.03 || got > want+0.03 {
		t.Fatalf("drop fraction = %.3f, want ≈%.3f", got, want)
	}
}

// TestRetentionWindow pins the Algorithm 1 semantics: a flow marked once
// stays admitted for at least (k−1)·Δt and at most k·Δt.
func TestRetentionWindow(t *testing.T) {
	cfg := testConfig() // k=4, Δt=5s → window [15s, 20s]
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(1)
	f.Advance(0)
	f.Process(outPkt(0, pair), 1)

	// Just before (k−1)·Δt: must still be admitted.
	f.Advance(14 * time.Second)
	if !f.Contains(pair.Inverse()) {
		t.Fatal("flow forgotten before (k−1)·Δt")
	}
	// Beyond k·Δt: must be forgotten.
	f.Advance(21 * time.Second)
	if f.Contains(pair.Inverse()) {
		t.Fatal("flow remembered beyond k·Δt")
	}
}

// TestRemarkExtendsRetention: traffic keeps a flow alive indefinitely.
func TestRemarkExtendsRetention(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(2)
	for s := 0; s < 300; s += 3 {
		ts := time.Duration(s) * time.Second
		f.Advance(ts)
		f.Process(outPkt(ts, pair), 1)
		if v := f.Process(inPkt(ts+time.Second, pair), 1); v != Pass {
			t.Fatalf("active flow dropped at %v", ts)
		}
	}
}

func TestRotateCountsAndClears(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(0)
	f.Mark(pairN(3))
	if f.Utilization() == 0 {
		t.Fatal("mark did not set bits")
	}
	for i := 0; i < 4; i++ {
		f.Rotate()
	}
	if got := f.Stats().Rotations; got != 4 {
		t.Fatalf("rotations = %d", got)
	}
	if f.Utilization() != 0 {
		t.Fatal("bits survive k rotations without remarking")
	}
}

func TestAdvanceRotatesOnSchedule(t *testing.T) {
	f, err := New(testConfig()) // Δt = 5s
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(time.Second) // start clock
	f.Advance(4 * time.Second)
	if got := f.Stats().Rotations; got != 0 {
		t.Fatalf("rotated too early: %d", got)
	}
	f.Advance(5 * time.Second)
	if got := f.Stats().Rotations; got != 1 {
		t.Fatalf("rotations after 5s = %d, want 1", got)
	}
	f.Advance(26 * time.Second)
	if got := f.Stats().Rotations; got != 5 {
		t.Fatalf("rotations after 26s = %d, want 5", got)
	}
}

// TestHolePunchAdmitsShiftedPort: with HolePunch on, an inbound reply from
// a rewritten remote port is admitted; with it off, it is challenged.
func TestHolePunchAdmitsShiftedPort(t *testing.T) {
	out := packet.SocketPair{
		Proto:   packet.UDP,
		SrcAddr: packet.AddrFrom4(140, 112, 0, 5), SrcPort: 40000,
		DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 3478,
	}
	shifted := packet.SocketPair{
		Proto:   packet.UDP,
		SrcAddr: out.DstAddr, SrcPort: 3999, // NAT-rewritten source port
		DstAddr: out.SrcAddr, DstPort: out.SrcPort,
	}
	for _, holePunch := range []bool{false, true} {
		cfg := testConfig()
		cfg.HolePunch = holePunch
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.Process(&packet.Packet{TS: 0, Pair: out, Dir: packet.Outbound}, 1)
		got := f.Contains(shifted)
		if got != holePunch {
			t.Errorf("holePunch=%v: Contains(shifted-port reply) = %v", holePunch, got)
		}
	}
}

// TestNoFalseNegativesWithinWindow property: any marked pair is admitted
// while within the retention window, for every hash kind.
func TestNoFalseNegativesWithinWindow(t *testing.T) {
	for _, kind := range []int{1, 2, 3} {
		cfg := testConfig()
		cfg.HashKind = hashes.Kind(kind)
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check := func(i uint32) bool {
			pair := pairN(i)
			f.Mark(pair)
			return f.Contains(pair.Inverse())
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Pass.String() != "PASS" || Drop.String() != "DROP" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() != "verdict(9)" {
		t.Fatal("unknown verdict name wrong")
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() []Verdict {
		cfg := testConfig()
		cfg.Seed = 99
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []Verdict
		for i := uint32(0); i < 200; i++ {
			out = append(out, f.Process(inPkt(0, pairN(i)), 0.5))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identical runs", i)
		}
	}
}

// TestInboundAccountingInvariant pins the Stats contract: every
// inspected inbound packet is exactly one hit or one miss, whether it
// survives, drops on its first unmarked bit, or drops on a later one —
// InboundHits + InboundMisses == InboundPackets, and Dropped never
// exceeds InboundMisses.
func TestInboundAccountingInvariant(t *testing.T) {
	for _, pd := range []float64{0, 0.3, 0.7, 1} {
		cfg := testConfig()
		cfg.Seed = 21
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := time.Duration(0)
		for i := uint32(0); i < 20_000; i++ {
			ts += 300 * time.Microsecond
			f.Advance(ts)
			switch i % 5 {
			case 0:
				f.Process(outPkt(ts, pairN(i)), pd)
			case 1:
				f.Process(inPkt(ts, pairN(i-1)), pd) // likely hit
			default:
				f.Process(inPkt(ts, pairN(1_000_000+i)), pd) // likely miss
			}
		}
		s := f.Stats()
		if s.InboundHits+s.InboundMisses != s.InboundPackets {
			t.Fatalf("pd=%g: hits %d + misses %d != inbound %d",
				pd, s.InboundHits, s.InboundMisses, s.InboundPackets)
		}
		if s.Dropped > s.InboundMisses {
			t.Fatalf("pd=%g: dropped %d > misses %d", pd, s.Dropped, s.InboundMisses)
		}
		if pd == 1 && s.Dropped != s.InboundMisses {
			t.Fatalf("pd=1: dropped %d != misses %d", s.Dropped, s.InboundMisses)
		}
		if pd == 0 && s.Dropped != 0 {
			t.Fatalf("pd=0: dropped %d", s.Dropped)
		}
	}
}

// TestProcessBatchMatchesSequential pins Filter.ProcessBatch to the
// per-packet Advance+Process loop: identical verdicts and counters on
// the same deterministic workload.
func TestProcessBatchMatchesSequential(t *testing.T) {
	mk := func() *Filter {
		cfg := testConfig()
		cfg.Seed = 7
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	var pkts []packet.Packet
	ts := time.Duration(0)
	for i := uint32(0); i < 30_000; i++ {
		ts += 700 * time.Microsecond
		if i%3 == 0 {
			pkts = append(pkts, *outPkt(ts, pairN(i)))
		} else {
			pkts = append(pkts, *inPkt(ts, pairN(i/2)))
		}
	}
	const pd = 0.4

	seq := mk()
	var want []Verdict
	for i := range pkts {
		seq.Advance(pkts[i].TS)
		want = append(want, seq.Process(&pkts[i], pd))
	}

	bat := mk()
	var got []Verdict
	for lo := 0; lo < len(pkts); lo += 257 {
		hi := lo + 257
		if hi > len(pkts) {
			hi = len(pkts)
		}
		got = bat.ProcessBatch(pkts[lo:hi], pd, got)
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: batch %v, sequential %v", i, got[i], want[i])
		}
	}
	if seq.Stats() != bat.Stats() {
		t.Fatalf("stats diverged:\nsequential %+v\nbatch      %+v", seq.Stats(), bat.Stats())
	}
}

// TestAdvanceLongGapFastPath pins the O(k) idle-gap fast path to the
// rotate-by-rotate loop: same rotation count, same index, same logical
// contents (everything cleared once the gap exceeds T_e).
func TestAdvanceLongGapFastPath(t *testing.T) {
	cfg := testConfig()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(0)
	f.Mark(pairN(1))
	f.Advance(cfg.DeltaT) // one normal rotation
	if f.Stats().Rotations != 1 {
		t.Fatalf("rotations = %d, want 1", f.Stats().Rotations)
	}
	// Jump a year ahead: rotations due = gap/Δt, all vectors cleared.
	gap := 365 * 24 * time.Hour
	f.Advance(cfg.DeltaT + gap)
	wantRot := int64(1 + gap/cfg.DeltaT)
	if got := f.Stats().Rotations; got != wantRot {
		t.Fatalf("rotations after gap = %d, want %d", got, wantRot)
	}
	if f.Contains(pairN(1).Inverse()) {
		t.Fatal("mark survived a gap beyond T_e")
	}
	if f.Utilization() != 0 {
		t.Fatalf("utilization %g after full expiry", f.Utilization())
	}
	// The filter keeps rotating on schedule after the jump.
	f.Mark(pairN(2))
	f.Advance(cfg.DeltaT + gap + cfg.DeltaT)
	if got := f.Stats().Rotations; got != wantRot+1 {
		t.Fatalf("rotations after resume = %d, want %d", got, wantRot+1)
	}
}
