package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestSnapshotRejectionTypes pins the typed-error contract of
// ReadFilter: each rejection cause unwraps to exactly its sentinel, so
// callers can distinguish "not a snapshot" / "wrong version" /
// "implausible geometry" / "structurally corrupt" / "failed checksum"
// with errors.Is instead of string matching.
func TestSnapshotRejectionTypes(t *testing.T) {
	_, snap := smallSnapshot(t)
	sentinels := []error{ErrSnapshotMagic, ErrSnapshotVersion, ErrSnapshotGeometry, ErrSnapshotCorrupt, ErrSnapshotChecksum}
	cases := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"bad magic", func(b []byte) { b[0] ^= 0xff }, ErrSnapshotMagic},
		{"future version", func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) }, ErrSnapshotVersion},
		{"k over cap", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 1<<20) }, ErrSnapshotGeometry},
		{"m over cap", func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 1<<20) }, ErrSnapshotGeometry},
		{"bytes over cap", func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], maxSnapshotK)
			binary.LittleEndian.PutUint32(b[12:], 30)
		}, ErrSnapshotGeometry},
		{"zero m config", func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 0) }, ErrSnapshotCorrupt},
		{"zero rotation period", func(b []byte) { binary.LittleEndian.PutUint64(b[20:], 0) }, ErrSnapshotCorrupt},
		{"rotation index out of range", func(b []byte) { binary.LittleEndian.PutUint32(b[36:], 7) }, ErrSnapshotCorrupt},
		{"flipped payload bit", func(b []byte) { b[snapshotHeaderLen+9] ^= 0x04 }, ErrSnapshotChecksum},
		{"flipped trailer bit", func(b []byte) { b[len(b)-1] ^= 0x80 }, ErrSnapshotChecksum},
	}
	for _, tc := range cases {
		mut := append([]byte(nil), snap...)
		tc.mutate(mut)
		_, err := ReadFilter(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err=%v, not errors.Is %v", tc.name, err, tc.want)
		}
		for _, s := range sentinels {
			if s != tc.want && errors.Is(err, s) {
				t.Fatalf("%s: err=%v matches extra sentinel %v", tc.name, err, s)
			}
		}
	}
}

// TestAlignRotations proves the fleet epoch-alignment contract: from
// any starting count, aligning to a peer's count lands on the same
// (count, current-index) pair the fleet convention dictates — index ≡
// count mod k — whether the gap is bridged rotation by rotation or by
// the clear-everything jump path, and a backward target is a no-op.
func TestAlignRotations(t *testing.T) {
	mk := func() *Filter {
		f, err := New(Config{K: 4, NBits: 10, M: 2, DeltaT: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, target := range []int64{1, 2, 3, 4, 5, 17, 4096} {
		f := mk()
		f.AlignRotations(target)
		if got := f.Rotations(); got != target {
			t.Fatalf("target %d: rotations=%d", target, got)
		}
		if got, want := f.Index(), int(target%4); got != want {
			t.Fatalf("target %d: idx=%d, want %d", target, got, want)
		}
		f.AlignRotations(target - 1) // backward: no-op
		if got := f.Rotations(); got != target {
			t.Fatalf("backward align moved rotations to %d", got)
		}
	}
	// Incremental alignment matches one big jump.
	a, b := mk(), mk()
	for r := int64(1); r <= 9; r++ {
		a.AlignRotations(r)
	}
	b.AlignRotations(9)
	if a.Index() != b.Index() || a.Rotations() != b.Rotations() {
		t.Fatalf("incremental (%d,%d) != jump (%d,%d)", a.Rotations(), a.Index(), b.Rotations(), b.Index())
	}
	// The k-or-more jump wipes every vector: fail-closed, no stale marks.
	f := mk()
	f.Advance(0)
	f.Mark(pairN(1))
	f.AlignRotations(100)
	if f.Contains(pairN(1).Inverse()) {
		t.Fatal("mark survived a clear-everything alignment jump")
	}
}
