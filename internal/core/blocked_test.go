package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

// TestBlockedNeverFalseNegative replays a synthetic trace through a
// classic-layout and a blocked-layout filter side by side, with an exact
// per-pair timer model as ground truth and P_d pinned to 1 so every
// unmatched inbound packet is dropped deterministically. The contract:
// the blocked layout may shift which *false positives* occur (different
// indexes), but it must never introduce a false negative — an inbound
// packet whose flow is younger than the retention floor (k−1)·Δt passes
// in both layouts, on the full trace replay.
func TestBlockedNeverFalseNegative(t *testing.T) {
	const (
		k      = 4
		deltaT = 2 * time.Second
		floor  = time.Duration(k-1) * deltaT
	)
	newFilter := func(layout hashes.Layout) *Filter {
		f, err := New(Config{K: k, NBits: 18, M: 3, DeltaT: deltaT, Seed: 5, Layout: layout})
		if err != nil {
			t.Fatal(err)
		}
		f.Advance(0)
		return f
	}
	classic := newFilter(hashes.LayoutClassic)
	blocked := newFilter(hashes.LayoutBlocked)

	rng := rand.New(rand.NewPCG(21, 34))
	lastOut := make(map[packet.SocketPair]time.Duration)
	var now time.Duration
	inFloor := 0
	for step := 0; step < 150_000; step++ {
		now += time.Duration(rng.IntN(1500)) * time.Microsecond
		pair := pairN(uint32(rng.IntN(4096)))
		if rng.IntN(2) == 0 {
			out := outPkt(now, pair)
			classic.Advance(now)
			blocked.Advance(now)
			if classic.Process(out, 1) != Pass || blocked.Process(out, 1) != Pass {
				t.Fatalf("step %d: outbound packet not passed", step)
			}
			lastOut[pair] = now
			continue
		}
		in := inPkt(now, pair)
		classic.Advance(now)
		blocked.Advance(now)
		cv := classic.Process(in, 1)
		bv := blocked.Process(in, 1)
		if t0, seen := lastOut[pair]; seen && now-t0 <= floor {
			inFloor++
			if cv != Pass {
				t.Fatalf("step %d: classic false negative at age %v", step, now-t0)
			}
			if bv != Pass {
				t.Fatalf("step %d: blocked false negative at age %v", step, now-t0)
			}
		}
	}
	if inFloor < 1000 {
		t.Fatalf("only %d within-floor inbound checks; trace too sparse to be meaningful", inFloor)
	}
}

// TestProcessBatchMatchesSequentialLayouts: the two-pass batch path
// must be verdict- and counter-identical to feeding the same packets
// through Process one at a time — for both layouts, including the P_d
// random draws (same seed, same draw order), across randomized batch
// boundaries.
func TestProcessBatchMatchesSequentialLayouts(t *testing.T) {
	for _, layout := range []hashes.Layout{hashes.LayoutClassic, hashes.LayoutBlocked} {
		t.Run(layout.String(), func(t *testing.T) {
			cfg := Config{K: 3, NBits: 14, M: 4, DeltaT: time.Second, Seed: 77, Layout: layout}
			batchF, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seqF, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewPCG(13, 17))
			var now time.Duration
			pkts := make([]packet.Packet, 0, 5000)
			for i := 0; i < cap(pkts); i++ {
				now += time.Duration(rng.IntN(800)) * time.Microsecond
				pair := pairN(uint32(rng.IntN(512)))
				if rng.IntN(2) == 0 {
					pkts = append(pkts, *outPkt(now, pair))
				} else {
					pkts = append(pkts, *inPkt(now, pair))
				}
			}

			const pd = 0.5
			batchF.Advance(0)
			seqF.Advance(0)
			// Odd batch sizes force every chunk-boundary case, including
			// batches larger than, equal to, and smaller than BatchChunk.
			got := make([]Verdict, 0, len(pkts))
			for lo := 0; lo < len(pkts); {
				n := 1 + rng.IntN(3*BatchChunk)
				if lo+n > len(pkts) {
					n = len(pkts) - lo
				}
				got = batchF.ProcessBatch(pkts[lo:lo+n], pd, got)
				lo += n
			}
			for i := range pkts {
				seqF.Advance(pkts[i].TS)
				want := seqF.Process(&pkts[i], pd)
				if got[i] != want {
					t.Fatalf("packet %d (%v): batch %v, sequential %v", i, pkts[i].Dir, got[i], want)
				}
			}
			if bs, ss := batchF.Stats(), seqF.Stats(); bs != ss {
				t.Fatalf("stats diverge: batch %+v, sequential %+v", bs, ss)
			}
			if batchF.Utilization() != seqF.Utilization() {
				t.Fatalf("utilization diverges: %g vs %g", batchF.Utilization(), seqF.Utilization())
			}
		})
	}
}

// TestHashBatchTouchSafeAcrossRotation: pass A's prefetch touches are
// advisory — hashing a chunk, rotating the filter, then deciding the
// chunk must equal deciding after rotation with fresh hashes, because
// index derivation is independent of rotation state.
func TestHashBatchTouchSafeAcrossRotation(t *testing.T) {
	cfg := Config{K: 3, NBits: 12, M: 3, DeltaT: time.Second, Seed: 3, Layout: hashes.LayoutBlocked}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(0)
	g.Advance(0)
	pkts := make([]packet.Packet, BatchChunk)
	for i := range pkts {
		pkts[i] = *outPkt(0, pairN(uint32(i)))
	}
	// f: hash before the rotation, decide after.
	n := f.HashBatch(pkts)
	if n != BatchChunk {
		t.Fatalf("HashBatch took %d packets, want %d", n, BatchChunk)
	}
	rot := 2500 * time.Millisecond // crosses two rotation boundaries
	f.Advance(rot)
	g.Advance(rot)
	for i := range pkts {
		pkts[i].TS = rot
		fv := f.ProcessHashed(i, &pkts[i], 1)
		gv := g.Process(&pkts[i], 1)
		if fv != gv {
			t.Fatalf("packet %d: hashed-before-rotation verdict %v, fresh verdict %v", i, fv, gv)
		}
	}
	if !filtersEqual(f, g) {
		t.Fatal("filter state diverged after cross-rotation batch")
	}
}

// filtersEqual compares the serialized state of two filters.
func filtersEqual(a, b *Filter) bool {
	var ab, bb bytes.Buffer
	if _, err := a.WriteTo(&ab); err != nil {
		return false
	}
	if _, err := b.WriteTo(&bb); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

// TestSnapshotRoundTripBlocked: a blocked-geometry filter must survive
// the snapshot round trip with its scheme/layout intact and agree with
// the original on arbitrary lookups.
func TestSnapshotRoundTripBlocked(t *testing.T) {
	cfg := Config{K: 3, NBits: 14, M: 2, DeltaT: 2 * time.Second, Seed: 9, Layout: hashes.LayoutBlocked}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Advance(0)
	for i := uint32(0); i < 500; i++ {
		f.Process(outPkt(time.Duration(i)*10*time.Millisecond, pairN(i)), 1)
		f.Advance(time.Duration(i) * 10 * time.Millisecond)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.HashScheme() != hashes.SchemeOneShot || restored.Layout() != hashes.LayoutBlocked {
		t.Fatalf("restored scheme/layout = %v/%v, want one-shot/blocked", restored.HashScheme(), restored.Layout())
	}
	for i := uint32(0); i < 2000; i++ {
		pair := pairN(i).Inverse()
		if f.Contains(pair) != restored.Contains(pair) {
			t.Fatalf("lookup %d diverges after blocked restore", i)
		}
	}
}

// TestSnapshotRejectsCorruptSchemeLayout: header bytes 34/35 are
// validated through ResolveSchemeLayout, so a snapshot claiming an
// unknown scheme or an impossible combination is rejected instead of
// silently defaulting.
func TestSnapshotRejectsCorruptSchemeLayout(t *testing.T) {
	f, err := New(Config{K: 2, NBits: 10, M: 2, DeltaT: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := func(scheme, layout byte) error {
		b := append([]byte(nil), buf.Bytes()...)
		b[34], b[35] = scheme, layout
		_, err := ReadFilter(bytes.NewReader(b))
		return err
	}
	if err := corrupt(99, 1); err == nil {
		t.Fatal("unknown scheme byte accepted")
	}
	if err := corrupt(1, 99); err == nil {
		t.Fatal("unknown layout byte accepted")
	}
	if err := corrupt(byte(hashes.SchemePerIndex), byte(hashes.LayoutBlocked)); err == nil {
		t.Fatal("per-index + blocked combination accepted")
	}
}
