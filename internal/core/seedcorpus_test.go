package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"p2pbound/internal/hashes"
)

// TestRegenFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzReadFilter. The corpus mirrors the f.Add seeds so
// CI machines — which run seeds but not the mutation engine — exercise
// the interesting snapshot shapes from a cold checkout. Run with
//
//	P2PBOUND_REGEN_CORPUS=1 go test -run TestRegenFuzzCorpus ./internal/core
//
// after changing the snapshot format, and commit the result.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("P2PBOUND_REGEN_CORPUS") == "" {
		t.Skip("set P2PBOUND_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	src, err := New(Config{K: 2, NBits: 10, M: 2, DeltaT: time.Second, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	src.Advance(0)
	for i := uint32(0); i < 100; i++ {
		src.Process(outPkt(time.Duration(i)*time.Millisecond, pairN(i)), 1)
	}
	var v2, v1 bytes.Buffer
	if _, err := src.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	if _, err := src.writeToV1(&v1); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[60] ^= 0x10

	// A blocked-geometry snapshot, so the fuzzer mutates header bytes
	// 34/35 (scheme/layout) from a stream where they are non-zero.
	blockedSrc, err := New(Config{K: 2, NBits: 10, M: 2, DeltaT: time.Second, Seed: 11, Layout: hashes.LayoutBlocked})
	if err != nil {
		t.Fatal(err)
	}
	blockedSrc.Advance(0)
	for i := uint32(0); i < 100; i++ {
		blockedSrc.Process(outPkt(time.Duration(i)*time.Millisecond, pairN(i)), 1)
	}
	var v2blocked bytes.Buffer
	if _, err := blockedSrc.WriteTo(&v2blocked); err != nil {
		t.Fatal(err)
	}

	writeSeedCorpus(t, filepath.Join("testdata", "fuzz", "FuzzReadFilter"), map[string][]byte{
		"seed-v2":         v2.Bytes(),
		"seed-v1":         v1.Bytes(),
		"seed-v2-blocked": v2blocked.Bytes(),
		"seed-truncated":  v2.Bytes()[:40],
		"seed-flipped":    flipped,
		"seed-empty":      {},
	})
}

// writeSeedCorpus writes each entry in the `go test fuzz v1` format the
// fuzzing engine loads from testdata/fuzz/<FuzzName>/.
func writeSeedCorpus(t *testing.T, dir string, seeds map[string][]byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
