package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzReadFilter feeds arbitrary bytes to the snapshot reader. The
// contract: ReadFilter must error or succeed — never panic, never
// allocate unboundedly (the geometry caps), and a filter it does return
// must survive subsequent operation. Run with
// `go test -fuzz FuzzReadFilter ./internal/core`.
func FuzzReadFilter(f *testing.F) {
	// Seeds: a valid v2 snapshot, a valid v1 snapshot, and mutations.
	src, err := New(Config{K: 2, NBits: 10, M: 2, DeltaT: time.Second, Seed: 11})
	if err != nil {
		f.Fatal(err)
	}
	src.Advance(0)
	for i := uint32(0); i < 100; i++ {
		src.Process(outPkt(time.Duration(i)*time.Millisecond, pairN(i)), 1)
	}
	var v2 bytes.Buffer
	if _, err := src.WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if _, err := src.writeToV1(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:40])
	f.Add(v2.Bytes()[:80])
	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[60] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		filter, err := ReadFilter(bytes.NewReader(data))
		if err != nil {
			if filter != nil {
				t.Fatal("ReadFilter returned both a filter and an error")
			}
			// Typed-rejection contract: the sentinels are mutually
			// exclusive — an error never claims two causes.
			matched := 0
			for _, s := range []error{ErrSnapshotMagic, ErrSnapshotVersion, ErrSnapshotGeometry, ErrSnapshotCorrupt, ErrSnapshotChecksum} {
				if errors.Is(err, s) {
					matched++
				}
			}
			if matched > 1 {
				t.Fatalf("rejection %v matches %d sentinels", err, matched)
			}
			return
		}
		// A filter the reader vouched for must hold up under use: advance
		// through several rotations, mark and look up flows, and keep the
		// accounting invariant.
		for i := uint32(0); i < 64; i++ {
			ts := time.Duration(i) * filter.Config().DeltaT / 4
			filter.Advance(ts)
			filter.Process(outPkt(ts, pairN(i)), 0.5)
			filter.Process(inPkt(ts, pairN(i)), 0.5)
		}
		s := filter.Stats()
		if s.InboundHits+s.InboundMisses != s.InboundPackets {
			t.Fatalf("restored filter broke invariant: %d + %d != %d",
				s.InboundHits, s.InboundMisses, s.InboundPackets)
		}
	})
}
