package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"p2pbound/internal/packet"
)

// TestDifferentialAgainstExactTimers replays random traffic through the
// bitmap filter and an exact per-pair timer model side by side and pins
// the approximation contract of Algorithm 1/2:
//
//   - no false negatives while a pair's last outbound packet is younger
//     than the retention floor (k−1)·Δt;
//   - no retention beyond the ceiling T_e = k·Δt — up to hash false
//     positives, which must stay rare at this table size;
//   - in the ambiguous band between floor and ceiling either answer is
//     legal (it depends on the rotation phase).
func TestDifferentialAgainstExactTimers(t *testing.T) {
	const (
		k      = 4
		deltaT = 2 * time.Second
		floor  = time.Duration(k-1) * deltaT
		ceil   = time.Duration(k) * deltaT
	)
	f, err := New(Config{K: k, NBits: 18, M: 3, DeltaT: deltaT, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(99, 7))
	lastOut := make(map[packet.SocketPair]time.Duration)

	var (
		now            time.Duration
		checks         int
		falsePositives int
	)
	f.Advance(0)
	for step := 0; step < 200_000; step++ {
		now += time.Duration(rng.IntN(2000)) * time.Microsecond
		f.Advance(now)

		pair := packet.SocketPair{
			Proto:   packet.TCP,
			SrcAddr: packet.AddrFrom4(140, 112, byte(rng.IntN(4)), byte(rng.IntN(64))),
			SrcPort: uint16(30000 + rng.IntN(256)),
			DstAddr: packet.AddrFrom4(9, 9, byte(rng.IntN(4)), byte(rng.IntN(64))),
			DstPort: uint16(10000 + rng.IntN(256)),
		}

		if rng.IntN(2) == 0 {
			f.Process(&packet.Packet{TS: now, Pair: pair, Dir: packet.Outbound, Len: 60}, 0)
			lastOut[pair] = now
			continue
		}

		// Query the inbound view of the pair.
		admitted := f.Contains(pair.Inverse())
		t0, seen := lastOut[pair]
		checks++
		switch {
		case seen && now-t0 <= floor:
			if !admitted {
				t.Fatalf("false negative: pair %v, age %v <= floor %v", pair, now-t0, floor)
			}
		case !seen || now-t0 > ceil:
			if admitted {
				falsePositives++
			}
		default:
			// Ambiguous band — both answers are legal.
		}
	}
	if checks == 0 {
		t.Fatal("no inbound checks performed")
	}
	// 2^18 bits with a few thousand live marks: false positives must be
	// well under a tenth of a percent.
	if rate := float64(falsePositives) / float64(checks); rate > 0.001 {
		t.Fatalf("false positive rate %.5f over %d checks", rate, checks)
	}
}

// TestRetentionPhaseSweep pins the exact retention behaviour across every
// rotation phase: for each offset of the mark within its Δt period, the
// pair must be admitted at age floor and forgotten just past T_e.
func TestRetentionPhaseSweep(t *testing.T) {
	const (
		k      = 4
		deltaT = time.Second
	)
	for phaseMs := 0; phaseMs < 1000; phaseMs += 97 {
		f, err := New(Config{K: k, NBits: 16, M: 3, DeltaT: deltaT})
		if err != nil {
			t.Fatal(err)
		}
		pair := packet.SocketPair{
			Proto:   packet.UDP,
			SrcAddr: packet.AddrFrom4(140, 112, 0, 1), SrcPort: 1111,
			DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 2222,
		}
		f.Advance(0)
		markAt := time.Duration(phaseMs) * time.Millisecond
		f.Advance(markAt)
		f.Mark(pair)

		// At age just under (k−1)·Δt the pair must still be admitted.
		f.Advance(markAt + 3*deltaT - time.Millisecond)
		if !f.Contains(pair.Inverse()) {
			t.Fatalf("phase %dms: forgotten before the floor", phaseMs)
		}
		// At age just past k·Δt it must be gone.
		f.Advance(markAt + 4*deltaT + time.Millisecond)
		if f.Contains(pair.Inverse()) {
			t.Fatalf("phase %dms: retained past T_e", phaseMs)
		}
	}
}
