// Package spi implements the stateful packet inspection (SPI) baseline the
// paper compares the bitmap filter against: a positive-listing firewall
// that keeps exact per-flow state for every outbound connection, tracks TCP
// state transitions, "knows the exact time of closed connections", and
// deletes idle connections after a configurable timeout (the Figure 8
// simulation uses 240 seconds, the default TIME_WAIT timeout of Microsoft
// Windows).
//
// Both the storage and the per-sweep computation grow linearly with the
// number of concurrent flows — the O(n) cost that motivates the constant-
// space bitmap filter.
package spi

import (
	"fmt"
	"math/rand/v2"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/packet"
)

// State is the tracked lifecycle state of a flow.
type State int

// TCP flow states. UDP flows stay in StateEstablished until they idle out.
const (
	StateSynSent State = iota + 1
	StateEstablished
	StateFinWait
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSynSent:
		return "SYN_SENT"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// entry is the exact per-flow state kept by the SPI filter.
type entry struct {
	state    State
	lastSeen time.Duration
	closedAt time.Duration
	localFin bool
	peerFin  bool
}

// entryOverhead approximates the per-flow storage of the filter in bytes:
// the key, the entry struct, and hash-table bucket overhead. It is used
// only for memory-footprint reporting in the scaling experiments.
const entryOverhead = 64

// Config parameterizes the SPI filter.
type Config struct {
	// IdleTimeout deletes flows with no packets in either direction for
	// this long. The paper's simulation uses 240 s.
	IdleTimeout time.Duration
	// CloseLinger keeps a closed flow matchable for a short TIME_WAIT-
	// style window so the closing handshake's final ACK still passes;
	// zero selects the 2 s default.
	CloseLinger time.Duration
	// Seed seeds the deterministic random source used for P_d draws.
	Seed uint64
}

// DefaultConfig returns the paper's Figure 8 configuration.
func DefaultConfig() Config {
	return Config{IdleTimeout: 240 * time.Second, CloseLinger: 2 * time.Second}
}

// Stats counts filter activity since construction.
type Stats struct {
	OutboundPackets int64
	InboundPackets  int64
	InboundHits     int64
	InboundMisses   int64
	Dropped         int64
	FlowsCreated    int64
	FlowsClosed     int64 // closed precisely by FIN/RST observation
	FlowsExpired    int64 // reaped by the idle sweep
	PeakFlows       int
}

// Filter is the exact-state SPI baseline.
type Filter struct {
	cfg       Config
	entries   map[[packet.KeySize]byte]*entry
	rng       *rand.Rand
	now       time.Duration
	lastSweep time.Duration
	stats     Stats
}

// New builds an SPI filter from cfg.
func New(cfg Config) (*Filter, error) {
	if cfg.IdleTimeout <= 0 {
		return nil, fmt.Errorf("spi: idle timeout must be positive, got %v", cfg.IdleTimeout)
	}
	if cfg.CloseLinger <= 0 {
		cfg.CloseLinger = 2 * time.Second
	}
	return &Filter{
		cfg:     cfg,
		entries: make(map[[packet.KeySize]byte]*entry, 4096),
		rng:     rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xbf58476d1ce4e5b9)),
	}, nil
}

// Len returns the current number of tracked flows.
func (f *Filter) Len() int { return len(f.entries) }

// Bytes approximates the filter's current storage footprint.
func (f *Filter) Bytes() int { return len(f.entries) * entryOverhead }

// Stats returns a snapshot of the activity counters.
func (f *Filter) Stats() Stats { return f.stats }

// Advance moves the clock to simulated time ts and, at most once per
// second of simulated time, sweeps flows idle longer than the timeout.
func (f *Filter) Advance(ts time.Duration) {
	f.now = ts
	if ts-f.lastSweep < time.Second {
		return
	}
	for k, e := range f.entries {
		switch {
		case e.state == StateClosed && ts-e.closedAt > f.cfg.CloseLinger:
			delete(f.entries, k)
		case ts-e.lastSeen > f.cfg.IdleTimeout:
			delete(f.entries, k)
			f.stats.FlowsExpired++
		}
	}
	f.lastSweep = ts
}

// Process applies SPI positive listing to one packet: outbound packets
// create or refresh exact flow state and always pass; inbound packets pass
// only when they match a live tracked flow, and otherwise face a P_d drop
// draw.
func (f *Filter) Process(pkt *packet.Packet, pd float64) core.Verdict {
	if pkt.Dir == packet.Outbound {
		f.stats.OutboundPackets++
		f.processOutbound(pkt)
		return core.Pass
	}
	f.stats.InboundPackets++
	key := pkt.Pair.Inverse().Key()
	e, ok := f.entries[key]
	if ok && f.live(e, pkt.TS) {
		f.stats.InboundHits++
		f.updateInbound(key, e, pkt)
		return core.Pass
	}
	f.stats.InboundMisses++
	if pd > 0 && f.rng.Float64() < pd {
		f.stats.Dropped++
		return core.Drop
	}
	return core.Pass
}

// Contains reports whether an inbound packet with this socket pair would
// currently match live flow state.
func (f *Filter) Contains(inboundPair packet.SocketPair) bool {
	e, ok := f.entries[inboundPair.Inverse().Key()]
	return ok && f.live(e, f.now)
}

// live reports whether a flow entry still admits packets at time ts: open
// flows always do, closed flows only within the linger window.
func (f *Filter) live(e *entry, ts time.Duration) bool {
	return e.state != StateClosed || ts-e.closedAt <= f.cfg.CloseLinger
}

func (f *Filter) processOutbound(pkt *packet.Packet) {
	key := pkt.Pair.Key()
	e, ok := f.entries[key]
	if !ok {
		e = &entry{state: StateEstablished}
		if pkt.Pair.Proto == packet.TCP {
			if pkt.Flags.Has(packet.SYN) && !pkt.Flags.Has(packet.ACK) {
				e.state = StateSynSent
			}
		}
		f.entries[key] = e
		f.stats.FlowsCreated++
		if len(f.entries) > f.stats.PeakFlows {
			f.stats.PeakFlows = len(f.entries)
		}
	}
	e.lastSeen = pkt.TS
	if pkt.Pair.Proto != packet.TCP {
		return
	}
	switch {
	case pkt.Flags.Has(packet.RST):
		f.close(e)
	case pkt.Flags.Has(packet.FIN):
		e.localFin = true
		if e.peerFin {
			f.close(e)
		} else {
			e.state = StateFinWait
		}
	case e.state == StateSynSent && !pkt.Flags.Has(packet.SYN):
		// Data or bare ACK after our SYN: the three-way handshake
		// completed.
		e.state = StateEstablished
	}
}

func (f *Filter) updateInbound(key [packet.KeySize]byte, e *entry, pkt *packet.Packet) {
	e.lastSeen = pkt.TS
	if pkt.Pair.Proto != packet.TCP {
		return
	}
	switch {
	case pkt.Flags.Has(packet.RST):
		f.close(e)
	case pkt.Flags.Has(packet.FIN):
		e.peerFin = true
		if e.localFin {
			f.close(e)
		} else {
			e.state = StateFinWait
		}
	case e.state == StateSynSent && pkt.Flags.Has(packet.SYN) && pkt.Flags.Has(packet.ACK):
		e.state = StateEstablished
	}
}

// close marks a flow closed at the exact moment the close is observed —
// the precision advantage the paper credits for the SPI filter's slightly
// higher drop rate in Figure 8. The entry lingers briefly (TIME_WAIT
// style) so the closing handshake completes, then stops matching and is
// reaped by the sweep.
func (f *Filter) close(e *entry) {
	if e.state == StateClosed {
		return
	}
	e.state = StateClosed
	e.closedAt = e.lastSeen
	f.stats.FlowsClosed++
}
