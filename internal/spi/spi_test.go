package spi

import (
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/packet"
)

func pairN(i uint32) packet.SocketPair {
	return packet.SocketPair{
		Proto:   packet.TCP,
		SrcAddr: packet.AddrFrom4(140, 112, byte(i>>8), byte(i)),
		SrcPort: uint16(30000 + i%10000),
		DstAddr: packet.AddrFrom4(9, byte(i>>16), byte(i>>8), byte(i)),
		DstPort: 80,
	}
}

func pkt(ts time.Duration, pair packet.SocketPair, dir packet.Direction, flags packet.TCPFlags) *packet.Packet {
	return &packet.Packet{TS: ts, Pair: pair, Dir: dir, Len: 60, Flags: flags}
}

func outP(ts time.Duration, pair packet.SocketPair, flags packet.TCPFlags) *packet.Packet {
	return pkt(ts, pair, packet.Outbound, flags)
}

func inP(ts time.Duration, pair packet.SocketPair, flags packet.TCPFlags) *packet.Packet {
	return pkt(ts, pair.Inverse(), packet.Inbound, flags)
}

func newFilter(t *testing.T) *Filter {
	t.Helper()
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero idle timeout accepted")
	}
}

func TestPositiveListing(t *testing.T) {
	f := newFilter(t)
	pair := pairN(1)
	// Unsolicited inbound SYN: dropped with P_d = 1.
	if v := f.Process(inP(0, pair, packet.SYN), 1); v != core.Drop {
		t.Fatalf("unsolicited inbound = %v, want DROP", v)
	}
	// Outbound SYN creates state; the SYN-ACK then passes.
	if v := f.Process(outP(time.Second, pair, packet.SYN), 1); v != core.Pass {
		t.Fatal("outbound packet dropped")
	}
	if v := f.Process(inP(time.Second+50*time.Millisecond, pair, packet.SYN|packet.ACK), 1); v != core.Pass {
		t.Fatalf("SYN-ACK to tracked flow dropped")
	}
	if f.Len() != 1 {
		t.Fatalf("tracked flows = %d", f.Len())
	}
}

func TestTCPStateMachine(t *testing.T) {
	f := newFilter(t)
	pair := pairN(2)
	f.Process(outP(0, pair, packet.SYN), 1)
	f.Process(inP(time.Millisecond, pair, packet.SYN|packet.ACK), 1)
	f.Process(outP(2*time.Millisecond, pair, packet.ACK), 1)
	if !f.Contains(pair.Inverse()) {
		t.Fatal("established flow not tracked")
	}
	// Close: FIN both ways.
	f.Process(outP(time.Second, pair, packet.FIN|packet.ACK), 1)
	f.Process(inP(time.Second+time.Millisecond, pair, packet.FIN|packet.ACK), 1)
	stats := f.Stats()
	if stats.FlowsClosed != 1 {
		t.Fatalf("flows closed = %d", stats.FlowsClosed)
	}
}

// TestCloseLinger: the final ACK of the closing handshake passes within
// the linger, and late stragglers beyond it are dropped precisely — the
// Figure 8 mechanism.
func TestCloseLinger(t *testing.T) {
	f := newFilter(t)
	pair := pairN(3)
	f.Process(outP(0, pair, packet.SYN), 1)
	f.Process(inP(time.Millisecond, pair, packet.SYN|packet.ACK), 1)
	f.Process(outP(time.Second, pair, packet.FIN|packet.ACK), 1)
	f.Process(inP(time.Second+10*time.Millisecond, pair, packet.FIN|packet.ACK), 1)
	// Final inbound ACK 20 ms later: within the 2 s linger → passes.
	if v := f.Process(inP(time.Second+30*time.Millisecond, pair, packet.ACK), 1); v != core.Pass {
		t.Fatalf("closing handshake ACK dropped: %v", v)
	}
	// Straggler 10 s later: past the linger → dropped, while the idle
	// timeout (240 s) alone would still admit it.
	if v := f.Process(inP(11*time.Second, pair, packet.ACK), 1); v != core.Drop {
		t.Fatalf("late straggler = %v, want DROP", v)
	}
}

func TestRSTClosesImmediately(t *testing.T) {
	f := newFilter(t)
	pair := pairN(4)
	f.Process(outP(0, pair, packet.SYN), 1)
	f.Process(inP(time.Millisecond, pair, packet.RST), 1)
	if got := f.Stats().FlowsClosed; got != 1 {
		t.Fatalf("flows closed after RST = %d", got)
	}
	if v := f.Process(inP(10*time.Second, pair, packet.ACK), 1); v != core.Drop {
		t.Fatal("packet after RST+linger not dropped")
	}
}

func TestIdleExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 30 * time.Second
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(5)
	f.Process(outP(0, pair, packet.SYN), 1)
	f.Advance(29 * time.Second)
	if !f.Contains(pair.Inverse()) {
		t.Fatal("flow expired too early")
	}
	f.Advance(31 * time.Second)
	if f.Contains(pair.Inverse()) {
		t.Fatal("idle flow not expired")
	}
	if got := f.Stats().FlowsExpired; got != 1 {
		t.Fatalf("flows expired = %d", got)
	}
}

func TestUDPTracking(t *testing.T) {
	f := newFilter(t)
	pair := packet.SocketPair{
		Proto:   packet.UDP,
		SrcAddr: packet.AddrFrom4(140, 112, 0, 1), SrcPort: 5353,
		DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 53,
	}
	f.Process(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound, Len: 60}, 1)
	reply := &packet.Packet{TS: 20 * time.Millisecond, Pair: pair.Inverse(), Dir: packet.Inbound, Len: 120}
	if v := f.Process(reply, 1); v != core.Pass {
		t.Fatalf("DNS reply dropped: %v", v)
	}
}

func TestPdControlsDropProbability(t *testing.T) {
	f := newFilter(t)
	dropped := 0
	const n = 10000
	for i := uint32(0); i < n; i++ {
		if f.Process(inP(0, pairN(i+100), packet.SYN), 0.5) == core.Drop {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction at P_d=0.5: %.3f", frac)
	}
}

func TestStatsAndMemory(t *testing.T) {
	f := newFilter(t)
	for i := uint32(0); i < 50; i++ {
		f.Process(outP(0, pairN(i+1000), packet.SYN), 1)
	}
	s := f.Stats()
	if s.FlowsCreated != 50 || s.PeakFlows != 50 {
		t.Fatalf("created=%d peak=%d", s.FlowsCreated, s.PeakFlows)
	}
	if f.Bytes() != 50*entryOverhead {
		t.Fatalf("bytes = %d", f.Bytes())
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		give State
		want string
	}{
		{StateSynSent, "SYN_SENT"},
		{StateEstablished, "ESTABLISHED"},
		{StateFinWait, "FIN_WAIT"},
		{StateClosed, "CLOSED"},
		{State(42), "state(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("State.String() = %q, want %q", got, tt.want)
		}
	}
}

// TestOutboundDoesNotResurrectClosedFlow: positive listing must not let
// the final outbound ACK of a closed connection reopen admission.
func TestOutboundDoesNotResurrectClosedFlow(t *testing.T) {
	f := newFilter(t)
	pair := pairN(6)
	f.Process(outP(0, pair, packet.SYN), 1)
	f.Process(inP(time.Millisecond, pair, packet.SYN|packet.ACK), 1)
	f.Process(inP(time.Second, pair, packet.FIN|packet.ACK), 1)
	f.Process(outP(time.Second+time.Millisecond, pair, packet.FIN|packet.ACK), 1)
	// Final outbound ACK after both FINs.
	f.Process(outP(time.Second+2*time.Millisecond, pair, packet.ACK), 1)
	// Linger passes; the connection must stay closed.
	if v := f.Process(inP(20*time.Second, pair, packet.ACK), 1); v != core.Drop {
		t.Fatalf("closed flow resurrected by trailing outbound ACK: %v", v)
	}
}
