package metrics

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterStriping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", 4)
	for stripe := 0; stripe < 4; stripe++ {
		for i := 0; i <= stripe; i++ {
			c.Inc(stripe)
		}
	}
	if got := c.Value(); got != 1+2+3+4 {
		t.Fatalf("Value = %d, want 10", got)
	}
	if got := c.StripeValue(2); got != 3 {
		t.Fatalf("StripeValue(2) = %d, want 3", got)
	}
	// Stripe indices wrap instead of panicking.
	c.Add(4, 5)
	if got := c.StripeValue(0); got != 1+5 {
		t.Fatalf("wrapped stripe = %d, want 6", got)
	}
}

func TestStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := stripeCount(tc.in); got != tc.want {
			t.Errorf("stripeCount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "temperature")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %g", got)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatal("gauge lost +Inf")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10}, 2)
	h.Observe(0, 0.05)        // le=0.1
	h.Observe(0, 0.1)         // le=0.1 (boundary is inclusive)
	h.Observe(1, 0.5)         // le=1
	h.Observe(1, 100)         // +Inf
	h.Observe(0, math.NaN())  // +Inf bucket, excluded from sum
	h.Observe(0, math.Inf(1)) // +Inf bucket, excluded from sum
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	var got []string
	h.collect(func(s sample) {
		got = append(got, s.suffix+":"+formatFloat(s.value))
	})
	want := []string{"_bucket:2", "_bucket:3", "_bucket:3", "_bucket:6", "_sum:100.65", "_count:6"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("collect = %v, want %v", got, want)
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	r := NewRegistry()
	// Unsorted, with NaN and +Inf that must be discarded.
	h := r.Histogram("x", "", []float64{10, math.NaN(), 1, math.Inf(1), 0.1}, 1)
	if len(h.bounds) != 3 || h.bounds[0] != 0.1 || h.bounds[2] != 10 {
		t.Fatalf("bounds = %v", h.bounds)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("p2pbound_dropped_total", "Dropped packets.", 1, L("verdict", "drop"))
	c.Add(0, 7)
	g := r.Gauge("p2pbound_pd", "Current drop probability.")
	g.Set(0.25)
	r.GaugeFunc("p2pbound_uplink_bps", "Uplink rate.", func() float64 { return 1e6 }, L("shard", "0"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP p2pbound_dropped_total Dropped packets.
# TYPE p2pbound_dropped_total counter
p2pbound_dropped_total{verdict="drop"} 7
# HELP p2pbound_pd Current drop probability.
# TYPE p2pbound_pd gauge
p2pbound_pd 0.25
# HELP p2pbound_uplink_bps Uplink rate.
# TYPE p2pbound_uplink_bps gauge
p2pbound_uplink_bps{shard="0"} 1e+06
`
	if b.String() != want {
		t.Fatalf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestFamilySharesOneTypeHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("verdicts_total", "Verdicts.", 1, L("verdict", "pass")).Add(0, 1)
	r.Counter("verdicts_total", "Verdicts.", 1, L("verdict", "drop")).Add(0, 2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE verdicts_total counter") != 1 {
		t.Fatalf("family split across TYPE headers:\n%s", out)
	}
	if !strings.Contains(out, `verdicts_total{verdict="pass"} 1`) ||
		!strings.Contains(out, `verdicts_total{verdict="drop"} 2`) {
		t.Fatalf("missing member series:\n%s", out)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("bad name!", "multi\nline \\help", L("k-ey", "va\"l\\ue\nx"))
	g.Set(math.NaN())
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP bad_name_ multi\\nline \\\\help\n") {
		t.Fatalf("help not escaped:\n%q", out)
	}
	if !strings.Contains(out, `bad_name_{k_ey="va\"l\\ue\nx"} NaN`) {
		t.Fatalf("label value not escaped:\n%q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.NaN(), "NaN"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
		{0, "0"}, {0.5, "0.5"}, {1e21, "1e+21"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "_"}, {"ok_name:x9", "ok_name:x9"}, {"9lead", "_9lead"},
		{"sp ace", "sp_ace"}, {"unicode\u00e9", "unicode__"},
	} {
		if got := sanitizeName(tc.in); got != tc.want {
			t.Errorf("sanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", 1, L("a", "b")).Add(0, 3)
	h := r.Histogram("h", "h", []float64{1}, 1)
	h.Observe(0, 0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"name": "c_total"`, `"a": "b"`, `"value": 3`, `"histogram"`, `"count": 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", 1).Add(0, 1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/":                    "/metrics",
		"/metrics":             "c_total 1",
		"/metrics.json":        `"c_total"`,
		"/debug/vars":          "memstats",
		"/debug/pprof/":        "profiles",
		"/debug/pprof/cmdline": "metrics",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Fatalf("GET %s: body missing %q:\n%s", path, want, body[:n])
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// TestRecordPathsAllocationFree pins the zero-allocation guarantee of
// every record path.
func TestRecordPathsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", 8)
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{0.1, 0.5, 1, 5}, 8)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		c.Add(i, 1)
		g.Set(float64(i))
		h.Observe(i, float64(i%7)/3)
		i++
	}); avg != 0 {
		t.Fatalf("record path allocates %.2f allocs/op, want 0", avg)
	}
}

// TestConcurrentRecordAndCollect hammers every instrument from many
// goroutines while the encoders run — the -race proof that recording and
// scraping never need external synchronization.
func TestConcurrentRecordAndCollect(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", 8)
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{0.1, 0.5, 1}, 8)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(stripe)
				g.Set(float64(i))
				h.Observe(stripe, float64(i%10)/10)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			if err := r.WriteJSON(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentRegistration proves registration itself is goroutine-safe
// and collection sees a consistent family list.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Counter("c"+strconv.Itoa(w)+"_total", "", 1, L("i", strconv.Itoa(i))).Add(0, 1)
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}(w)
	}
	wg.Wait()
}
