package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
)

// WriteJSON renders every registered series as one JSON array of
// {name, labels, value} objects (histograms carry buckets/sum/count
// instead of value) — the machine-readable twin of the Prometheus text
// format, served at /metrics.json.
func (r *Registry) WriteJSON(w io.Writer) error {
	type jsonHist struct {
		Buckets map[string]float64 `json:"buckets"`
		Sum     any                `json:"sum"`
		Count   float64            `json:"count"`
	}
	type jsonSeries struct {
		Name   string            `json:"name"`
		Kind   string            `json:"kind"`
		Labels map[string]string `json:"labels,omitempty"`
		Value  any               `json:"value,omitempty"`
		Hist   *jsonHist         `json:"histogram,omitempty"`
	}
	var out []jsonSeries
	for _, fam := range r.snapshot() {
		for _, m := range fam.members {
			if fam.kind == KindHistogram {
				h := jsonHist{Buckets: make(map[string]float64)}
				var labels map[string]string
				m.collect(func(s sample) {
					switch s.suffix {
					case "_bucket":
						le := ""
						for _, l := range s.labels {
							if l.Key == "le" {
								le = l.Value
							}
						}
						h.Buckets[le] = s.value
					case "_sum":
						h.Sum = jsonValue(s.value)
					case "_count":
						h.Count = s.value
						labels = labelMap(s.labels)
					}
				})
				out = append(out, jsonSeries{Name: fam.name, Kind: fam.kind.String(), Labels: labels, Hist: &h})
				continue
			}
			m.collect(func(s sample) {
				out = append(out, jsonSeries{
					Name: fam.name, Kind: fam.kind.String(),
					Labels: labelMap(s.labels), Value: jsonValue(s.value),
				})
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonValue maps a sample value into something encoding/json accepts:
// finite floats pass through, NaN and the infinities become the strings
// the Prometheus text format uses.
func jsonValue(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return formatFloat(v)
	}
	return v
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Handler returns the observability endpoint for one registry:
//
//	/metrics        Prometheus text format
//	/metrics.json   the same series as JSON
//	/debug/vars     expvar JSON (process-wide cmdline + memstats)
//	/debug/pprof/   the standard pprof index, profiles, and traces
//
// The handler is safe to serve while the instrumented hot path records.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "p2pbound observability\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}
