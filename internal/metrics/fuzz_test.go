package metrics

import (
	"math"
	"strings"
	"testing"
)

// FuzzWritePrometheus hunts for text-format violations: whatever metric
// names, help strings, label pairs, bucket bounds, and values (including
// NaN and the infinities) a caller registers, the encoder must emit a
// parseable exposition — every line a well-formed comment or sample, all
// emitted names inside the legal charset, label values quote-balanced.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("name_total", "help text", "label", "value", 1.5, 0.5)
	f.Add("", "", "", "", math.NaN(), math.Inf(1))
	f.Add("9 weird\nname", "help\\with\nnewline", "l-k", "v\"q\\uote\n", math.Inf(-1), -1.0)
	f.Add("a:b", "h", "le", "+Inf", 1e308, 1e-308)
	f.Fuzz(func(t *testing.T, name, help, lkey, lval string, v, bound float64) {
		r := NewRegistry()
		c := r.Counter(name, help, 2, L(lkey, lval))
		c.Add(0, 3)
		g := r.Gauge(name+"_g", help, L(lkey, lval))
		g.Set(v)
		h := r.Histogram(name+"_h", help, []float64{bound, 0, v}, 2, L(lkey, lval))
		h.Observe(0, v)
		h.Observe(1, bound)
		r.GaugeFunc(name+"_f", help, func() float64 { return v })

		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		checkExposition(t, b.String())

		var jb strings.Builder
		if err := r.WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
	})
}

// checkExposition asserts the structural invariants of the text format.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	if out == "" {
		t.Fatal("empty exposition")
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition does not end in newline")
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# HELP "):]
			name, _, _ := strings.Cut(rest, " ")
			checkName(t, name, line)
			continue
		}
		// Sample line: name[{labels}] value
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("sample line without value separator: %q", line)
		}
		series, value := line[:idx], line[idx+1:]
		switch value {
		case "NaN", "+Inf", "-Inf":
		default:
			if !isFloatToken(value) {
				t.Fatalf("unparseable value %q in line %q", value, line)
			}
		}
		name := series
		if brace := strings.IndexByte(series, '{'); brace >= 0 {
			name = series[:brace]
			labels := series[brace:]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			if n := countUnescapedQuotes(labels); n%2 != 0 {
				t.Fatalf("unbalanced quotes (%d) in %q", n, line)
			}
		}
		checkName(t, name, line)
	}
}

func checkName(t *testing.T, name, line string) {
	t.Helper()
	if name == "" {
		t.Fatalf("empty metric name in line %q", line)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			t.Fatalf("illegal rune %q in metric name %q (line %q)", c, name, line)
		}
	}
}

func isFloatToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
		case c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E':
		default:
			return false
		}
	}
	return true
}

func countUnescapedQuotes(s string) int {
	n := 0
	escaped := false
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case s[i] == '\\':
			escaped = true
		case s[i] == '"':
			n++
		}
	}
	return n
}
