// Package metrics is the observability substrate of the limiter stack:
// sharded atomic counters, gauges, and fixed-bucket histograms with zero
// heap allocations on every record path, collected into a Registry that
// renders Prometheus text format and JSON and serves both (plus
// net/http/pprof) over HTTP.
//
// The package is deliberately small and dependency-free. Instruments are
// created through a Registry and recorded against a stripe index — in the
// limiter stack, the pipeline shard — so concurrent writers on different
// shards never contend on a cache line. Reading (Value, the encoders) sums
// the stripes; reads are torn-free per series because every cell is an
// atomic, and may run concurrently with recording.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one static key/value pair attached to a series at registration
// time. The record paths never touch labels.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// sample is one encoded series value handed to the exporters.
type sample struct {
	suffix string  // appended to the family name ("_bucket", "_sum", …)
	labels []Label // static labels plus any synthetic ones (le)
	value  float64
}

// metric is the collection interface every instrument implements.
type metric interface {
	collect(emit func(sample))
}

// cacheLine is the assumed coherence granularity for stripe padding.
const cacheLine = 64

// padded is an atomic counter cell padded to a full cache line so
// adjacent stripes never false-share.
type padded struct {
	n atomic.Int64 //p2p:atomic
	_ [cacheLine - 8]byte
}

// stripeCount rounds n up to a power of two (minimum 1) so stripe
// selection is a mask, not a modulo.
func stripeCount(n int) int {
	if n < 1 {
		n = 1
	}
	for n&(n-1) != 0 {
		n += n & -n
	}
	return n
}

// Counter is a monotonically increasing counter striped across
// cache-line-padded atomic cells. Add/Inc are wait-free and
// allocation-free; Value sums the stripes.
type Counter struct {
	cells  []padded
	mask   uint32
	labels []Label
}

// Add records n occurrences on the given stripe. Stripe indices wrap, so
// any non-negative shard id is a valid stripe.
//
//p2p:hotpath
func (c *Counter) Add(stripe int, n int64) {
	c.cells[uint32(stripe)&c.mask].n.Add(n)
}

// Inc records one occurrence on the given stripe.
//
//p2p:hotpath
func (c *Counter) Inc(stripe int) { c.Add(stripe, 1) }

// Value returns the sum over all stripes.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// StripeValue returns the count recorded on one stripe, for callers that
// export per-shard views of a shared counter.
//
//p2p:hotpath
func (c *Counter) StripeValue(stripe int) int64 {
	return c.cells[uint32(stripe)&c.mask].n.Load()
}

func (c *Counter) collect(emit func(sample)) {
	emit(sample{labels: c.labels, value: float64(c.Value())})
}

// Gauge is a single float64 value stored as atomic bits. Set and Value
// are allocation-free and safe from any goroutine.
type Gauge struct {
	bits   atomic.Uint64 //p2p:atomic
	labels []Label
}

// Set stores v.
//
//p2p:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value loads the current value.
//
//p2p:hotpath
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) collect(emit func(sample)) {
	emit(sample{labels: g.labels, value: g.Value()})
}

// funcMetric samples a callback at collection time. It is the zero-cost
// wiring for values another component already maintains atomically (e.g.
// the limiter's stats counters): the hot path pays nothing, the scrape
// pays one closure call.
type funcMetric struct {
	fn     func() float64
	labels []Label
}

func (f *funcMetric) collect(emit func(sample)) {
	emit(sample{labels: f.labels, value: f.fn()})
}

// histStripe is one stripe of a histogram: per-bucket counts plus a
// float64-bits CAS-accumulated sum. Stripes are separate allocations, so
// concurrent shards write disjoint cache lines.
type histStripe struct {
	counts []atomic.Int64 // len(bounds)+1; last cell is the +Inf bucket
	sum    atomic.Uint64  //p2p:atomic (float64 bits)
}

// Histogram is a fixed-bucket histogram striped like Counter. Observe is
// allocation-free: a short linear scan over the bounds, one atomic add,
// and one CAS on the stripe's sum. With one writer per stripe — the
// limiter stack's sharding discipline — the CAS never retries.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	stripes []*histStripe
	mask    uint32
	labels  []Label
}

// Observe records v on the given stripe. Following Prometheus semantics a
// value lands in the first bucket whose upper bound is >= v; NaN lands in
// the +Inf bucket and is excluded from the sum.
//
//p2p:hotpath
func (h *Histogram) Observe(stripe int, v float64) {
	s := h.stripes[uint32(stripe)&h.mask]
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if math.IsNaN(v) {
		i = len(h.bounds)
	}
	s.counts[i].Add(1)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations across stripes.
func (h *Histogram) Count() int64 {
	var n int64
	for _, s := range h.stripes {
		for i := range s.counts {
			n += s.counts[i].Load()
		}
	}
	return n
}

// Sum returns the sum of all non-NaN, finite observations.
func (h *Histogram) Sum() float64 {
	var sum float64
	for _, s := range h.stripes {
		sum += math.Float64frombits(s.sum.Load())
	}
	return sum
}

func (h *Histogram) collect(emit func(sample)) {
	cum := int64(0)
	for i := range h.bounds {
		var n int64
		for _, s := range h.stripes {
			n += s.counts[i].Load()
		}
		cum += n
		emit(sample{
			suffix: "_bucket",
			labels: append(append([]Label(nil), h.labels...), Label{Key: "le", Value: formatFloat(h.bounds[i])}),
			value:  float64(cum),
		})
	}
	var inf int64
	for _, s := range h.stripes {
		inf += s.counts[len(h.bounds)].Load()
	}
	cum += inf
	emit(sample{
		suffix: "_bucket",
		labels: append(append([]Label(nil), h.labels...), Label{Key: "le", Value: "+Inf"}),
		value:  float64(cum),
	})
	emit(sample{suffix: "_sum", labels: h.labels, value: h.Sum()})
	emit(sample{suffix: "_count", labels: h.labels, value: float64(cum)})
}

// family groups all series registered under one metric name, carrying the
// HELP and TYPE metadata the text format emits once per name.
type family struct {
	name    string
	help    string
	kind    Kind
	members []metric
}

// Registry holds registered instruments in registration order. All
// methods are safe for concurrent use; collection may run concurrently
// with recording.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// register adds a member to the (name, kind) family, creating it on first
// use. Names and label keys are sanitized to the Prometheus charset, so
// any string is accepted.
func (r *Registry) register(name, help string, kind Kind, m metric) {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "\x00" + kind.String()
	fam := r.index[key]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.index[key] = fam
		r.families = append(r.families, fam)
	}
	fam.members = append(fam.members, m)
}

// Counter creates and registers a striped counter. stripes is rounded up
// to a power of two; pass the shard count (or 1 for single-writer use).
func (r *Registry) Counter(name, help string, stripes int, labels ...Label) *Counter {
	c := NewCounter(stripes)
	c.labels = sanitizeLabels(labels)
	r.register(name, help, KindCounter, c)
	return c
}

// NewCounter returns an unregistered striped counter, for components that
// want the contention-free accounting regardless of whether a registry is
// attached (e.g. the pipeline's verdict counters).
func NewCounter(stripes int) *Counter {
	n := stripeCount(stripes)
	return &Counter{cells: make([]padded, n), mask: uint32(n - 1)}
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: sanitizeLabels(labels)}
	r.register(name, help, KindGauge, g)
	return g
}

// CounterFunc registers a counter series sampled from fn at collection
// time — the wiring for counters another component already maintains
// atomically.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindCounter, &funcMetric{fn: fn, labels: sanitizeLabels(labels)})
}

// GaugeFunc registers a gauge series sampled from fn at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, &funcMetric{fn: fn, labels: sanitizeLabels(labels)})
}

// Histogram creates and registers a striped fixed-bucket histogram.
// bounds are ascending upper bucket bounds (the +Inf bucket is implicit);
// they are copied, deduplicated of NaN, and sorted defensively.
func (r *Registry) Histogram(name, help string, bounds []float64, stripes int, labels ...Label) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, +1) {
			continue // the +Inf bucket is implicit; NaN is unorderable
		}
		bs = append(bs, b)
	}
	sortFloats(bs)
	n := stripeCount(stripes)
	h := &Histogram{bounds: bs, stripes: make([]*histStripe, n), mask: uint32(n - 1), labels: sanitizeLabels(labels)}
	for i := range h.stripes {
		h.stripes[i] = &histStripe{counts: make([]atomic.Int64, len(bs)+1)}
	}
	r.register(name, help, KindHistogram, h)
	return h
}

// sortFloats is an insertion sort: bucket lists are tiny and this avoids
// pulling in package sort for one call.
func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// snapshot returns the family list under the lock. Family contents
// (members) are append-only, so iterating the returned slice without the
// lock is safe.
// snapshot copies the family list AND each family's member list: a
// concurrent register may append to a family's members, which rewrites
// the slice header a collector would otherwise read unsynchronized.
func (r *Registry) snapshot() []family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]family, len(r.families))
	for i, f := range r.families {
		out[i] = family{
			name:    f.name,
			help:    f.help,
			kind:    f.kind,
			members: append([]metric(nil), f.members...),
		}
	}
	return out
}
