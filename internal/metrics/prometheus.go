package metrics

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per family,
// then one sample line per series. Collection may run concurrently with
// recording; each series value is a torn-free atomic read.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 4096)
	for _, fam := range r.snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(fam.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.kind.String())
		bw.WriteByte('\n')
		for _, m := range fam.members {
			m.collect(func(s sample) {
				writeSample(bw, fam.name, s)
			})
		}
	}
	return bw.Flush()
}

// writeSample renders one series line: name{labels} value.
func writeSample(bw *bufio.Writer, name string, s sample) {
	bw.WriteString(name)
	bw.WriteString(s.suffix)
	if len(s.labels) > 0 {
		bw.WriteByte('{')
		for i, l := range s.labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(s.value))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value. The text format spells the
// non-finite values NaN, +Inf, and -Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline. HELP text is
// not quoted, so quotes pass through unescaped.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabelValue escapes a quoted label value: backslash, double
// quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeName maps an arbitrary string onto the metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become underscores; an empty or
// digit-led result is prefixed with an underscore.
func sanitizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sanitizeLabelKey maps an arbitrary string onto the label-name charset
// [a-zA-Z_][a-zA-Z0-9_]* (no colons).
func sanitizeLabelKey(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sanitizeLabels copies and sanitizes a label set at registration time so
// record and collect paths never re-validate.
func sanitizeLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Key: sanitizeLabelKey(l.Key), Value: l.Value}
	}
	return out
}
