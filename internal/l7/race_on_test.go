//go:build race

package l7

// raceEnabled gates allocation-count assertions: under the race
// detector sync.Pool (ours and regexp's machine pools) deliberately
// drops items to widen interleavings, so steady-state alloc counts
// are not meaningful.
const raceEnabled = true
