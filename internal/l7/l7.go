// Package l7 provides the application-identification machinery of the
// paper's traffic analyzer (Section 3.2): a library of payload signatures
// adopted from the L7-filter project (Table 1) plus the well-known-port
// fallback table used when pattern matching fails.
//
// Pattern matching for TCP operates on a short stream formed by
// concatenating the payloads of at most the first four data packets of a
// connection; UDP payloads are matched per packet. Both rules are
// implemented by the analyzer package on top of this library.
package l7

import (
	"fmt"
	"io"
	"regexp"
	"sync"

	"p2pbound/internal/packet"
)

// App identifies a network application.
type App int

// Applications distinguished by the analyzer. The paper's Table 2 groups
// traffic into HTTP, bittorrent, gnutella, edonkey, UNKNOWN and Others;
// FastTrack, FTP, DNS and the remaining classic services fall under
// "Others" in that grouping.
const (
	Unknown App = iota
	BitTorrent
	EDonkey
	Gnutella
	FastTrack
	HTTP
	FTP
	DNS
	SMTP
	POP3
	IMAP
	SSH
	HTTPS
	NTP
	numApps
)

// NumApps is the number of distinct App values, for sizing tally arrays.
const NumApps = int(numApps)

// String names the application.
func (a App) String() string {
	switch a {
	case Unknown:
		return "UNKNOWN"
	case BitTorrent:
		return "bittorrent"
	case EDonkey:
		return "edonkey"
	case Gnutella:
		return "gnutella"
	case FastTrack:
		return "fasttrack"
	case HTTP:
		return "http"
	case FTP:
		return "ftp"
	case DNS:
		return "dns"
	case SMTP:
		return "smtp"
	case POP3:
		return "pop3"
	case IMAP:
		return "imap"
	case SSH:
		return "ssh"
	case HTTPS:
		return "https"
	case NTP:
		return "ntp"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// IsP2P reports whether the application is a peer-to-peer protocol — the
// "P2P" port class of Figures 2 and 3.
func (a App) IsP2P() bool {
	switch a {
	case BitTorrent, EDonkey, Gnutella, FastTrack:
		return true
	default:
		return false
	}
}

// Class is the port-number class of Figures 2 and 3.
type Class int

// Port classes: every connection is ALL; identified connections are P2P or
// Non-P2P; unidentified ones are UNKNOWN.
const (
	ClassAll Class = iota
	ClassP2P
	ClassNonP2P
	ClassUnknown
	numClasses
)

// NumClasses is the number of Class values.
const NumClasses = int(numClasses)

// String names the class as in the figures.
func (c Class) String() string {
	switch c {
	case ClassAll:
		return "ALL"
	case ClassP2P:
		return "P2P"
	case ClassNonP2P:
		return "Non-P2P"
	case ClassUnknown:
		return "UNKNOWN"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ClassOf maps an identified application to its port class.
func ClassOf(a App) Class {
	switch {
	case a == Unknown:
		return ClassUnknown
	case a.IsP2P():
		return ClassP2P
	default:
		return ClassNonP2P
	}
}

// Table2Group maps an application to its row label in Table 2.
func (a App) Table2Group() string {
	switch a {
	case HTTP:
		return "HTTP"
	case BitTorrent:
		return "bittorrent"
	case Gnutella:
		return "gnutella"
	case EDonkey:
		return "edonkey"
	case Unknown:
		return "UNKNOWN"
	default:
		return "Others"
	}
}

// signature pairs an application with its compiled payload pattern.
type signature struct {
	app App
	re  *regexp.Regexp
}

// Library holds the compiled signatures and the well-known-port table.
type Library struct {
	sigs     []signature
	tcpPorts map[uint16]App
	udpPorts map[uint16]App
}

// NewLibrary compiles the Table 1 signature set. Patterns follow the
// L7-filter originals the paper adopts, transliterated to Go regexp syntax
// (case-insensitive, with "." spanning the whole stream prefix).
func NewLibrary() *Library {
	mk := func(expr string) *regexp.Regexp {
		return regexp.MustCompile(`(?is)` + expr)
	}
	return &Library{
		sigs: []signature{
			// Table 1, bittorrent: protocol handshake, DHT queries,
			// Azureus keepalive, and tracker scrape requests.
			{BitTorrent, mk(`^\x13bittorrent protocol|^azver\x01$|^get /scrape\?info_hash=|d1:ad2:id20:`)},
			// Table 1, edonkey: an eDonkey/eMule frame starts with a
			// marker byte (0xc5, 0xd4, 0xe3–0xe5) followed by a 4-byte
			// little-endian length and a known opcode.
			{EDonkey, mk(`^[\xc5\xd4\xe3-\xe5]....[\x01\x02\x05\x14\x15\x16\x18\x19\x1a\x1b\x1c\x20\x21\x32\x33\x34\x35\x36\x38\x40\x41\x42\x43\x46\x47\x48\x49\x4a\x4b\x4c\x4d\x4e\x4f\x50\x51\x52\x53\x54\x55\x56\x57\x58\x60\x81\x82\x90\x91\x92\x93\x94\x96\x97\x98\x99\x9a\x9b\x9c\x9e\xa0\xa1\xa2\xa3\xa4]`)},
			// Table 1, fasttrack: KaZaA-style HTTP-ish requests and the
			// GIVE upload handshake.
			{FastTrack, mk(`^get (/\.hash=[0-9a-f]*|/\.supernode|/\.status|/\.network|/\.files|/\.download/.*) http/1\.1|^give [0-9]{8,}`)},
			// Table 1, gnutella: binary gnd frames, CONNECT handshake,
			// uri-res requests, known user agents, and GIV responses.
			{Gnutella, mk(`^gnd[\x01\x02]?..?\x01|^gnutella connect/[012]\.[0-9]\x0d\x0a|^get /uri-res/n2r\?urn:sha1:|^get /.*user-agent: (gtk-gnutella|bearshare|mactella|gnucleus|gnotella|limewire|imesh)|^get /.*content-type: application/x-gnutella-packets|^giv [0-9]*:[0-9a-f]*`)},
			// FTP before HTTP: an FTP banner ("220 ... FTP") must not be
			// swallowed by a generic response pattern.
			{FTP, mk(`^220[\x09-\x0d -~]*ftp`)},
			// Table 1, http/http-proxy: request lines with a version
			// suffix or status-line responses.
			{HTTP, mk(`^(get|post|head|put|delete|options|connect) [\x09-\x0d -~]* http/[01]\.[019]|^http/[01]\.[019] [1-5][0-9][0-9]`)},
		},
		tcpPorts: map[uint16]App{
			// Table 1 port column plus the classic services observed in
			// the trace.
			21:   FTP,
			22:   SSH,
			25:   SMTP,
			53:   DNS,
			80:   HTTP,
			110:  POP3,
			143:  IMAP,
			443:  HTTPS,
			3128: HTTP,
			4661: EDonkey,
			4662: EDonkey,
			6346: Gnutella,
			6347: Gnutella,
			6881: BitTorrent,
			6882: BitTorrent,
			6883: BitTorrent,
			6884: BitTorrent,
			6885: BitTorrent,
			6886: BitTorrent,
			6887: BitTorrent,
			6888: BitTorrent,
			6889: BitTorrent,
			8080: HTTP,
		},
		udpPorts: map[uint16]App{
			53:   DNS,
			123:  NTP,
			4665: EDonkey,
			4672: EDonkey,
			6881: BitTorrent,
		},
	}
}

// MatchPayload matches a payload (a UDP datagram or a concatenated TCP
// stream prefix) against all signatures and returns the first matching
// application, or Unknown.
//
// Payload bytes are decoded as Latin-1 while matching so that a pattern
// escape like \xe3 matches the raw wire byte 0xe3. (Go's regexp engine
// decodes string and []byte input as UTF-8, under which a lone high
// byte becomes the replacement rune and binary signatures would never
// match.) The decoding happens through a pooled io.RuneReader that
// widens bytes on the fly instead of materializing a widened string, so
// matching allocates nothing at steady state.
func (l *Library) MatchPayload(b []byte) App {
	if len(b) == 0 {
		return Unknown
	}
	r := readerPool.Get().(*latin1Reader)
	app := Unknown
	for _, sig := range l.sigs {
		r.b, r.i = b, 0
		if sig.re.MatchReader(r) {
			app = sig.app
			break
		}
	}
	r.b = nil // do not pin the payload while pooled
	readerPool.Put(r)
	return app
}

// latin1Reader widens each payload byte to the rune with the same
// value, presenting the payload to the regexp engine as a Latin-1 rune
// stream. Reported sizes are 1 so match positions stay byte offsets.
type latin1Reader struct {
	b []byte
	i int
}

// ReadRune implements io.RuneReader.
func (r *latin1Reader) ReadRune() (rune, int, error) {
	if r.i >= len(r.b) {
		return 0, 0, io.EOF
	}
	c := r.b[r.i]
	r.i++
	return rune(c), 1, nil
}

// readerPool recycles latin1Readers across MatchPayload calls; the
// analyzer identifies every connection's stream prefix through here, so
// the matcher must not allocate per call.
var readerPool = sync.Pool{New: func() any { return new(latin1Reader) }}

// MatchPort returns the application registered for a well-known service
// port, or Unknown. For TCP the caller passes the destination port of the
// SYN (the service provider's port); for UDP both ports are worth trying.
func (l *Library) MatchPort(proto packet.Proto, port uint16) App {
	switch proto {
	case packet.TCP:
		return l.tcpPorts[port]
	case packet.UDP:
		return l.udpPorts[port]
	default:
		return Unknown
	}
}
