package l7

import (
	"testing"

	"p2pbound/internal/packet"
)

// TestTable1Signatures exercises every Table 1 pattern with payloads shaped
// like the real protocols emit them.
func TestTable1Signatures(t *testing.T) {
	lib := NewLibrary()
	tests := []struct {
		name    string
		payload []byte
		want    App
	}{
		{
			name:    "bittorrent peer-wire handshake",
			payload: append([]byte{0x13}, []byte("BitTorrent protocol\x00\x00\x00\x00\x00\x00\x00\x00infohashinfohashinf.peeridpeeridpeerid..")...),
			want:    BitTorrent,
		},
		{
			name:    "bittorrent DHT query",
			payload: []byte("d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe"),
			want:    BitTorrent,
		},
		{
			name:    "bittorrent azureus keepalive",
			payload: []byte("AZVER\x01"),
			want:    BitTorrent,
		},
		{
			name:    "bittorrent tracker scrape",
			payload: []byte("GET /scrape?info_hash=xyzzy HTTP/1.0\r\n\r\n"),
			want:    BitTorrent,
		},
		{
			name:    "edonkey hello frame",
			payload: []byte{0xe3, 0x29, 0x00, 0x00, 0x00, 0x01, 0x10, 0x0f},
			want:    EDonkey,
		},
		{
			name:    "edonkey emule extension frame",
			payload: []byte{0xc5, 0x05, 0x00, 0x00, 0x00, 0x92, 0xff},
			want:    EDonkey,
		},
		{
			name:    "edonkey udp get-sources",
			payload: []byte{0xe3, 0x00, 0x00, 0x00, 0x00, 0x46, 0xaa, 0xbb},
			want:    EDonkey,
		},
		{
			name:    "gnutella connect",
			payload: []byte("GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire\r\n\r\n"),
			want:    Gnutella,
		},
		{
			name:    "gnutella GND udp frame",
			payload: []byte{'G', 'N', 'D', 0x01, 0x41, 0x42, 0x01, 0x00},
			want:    Gnutella,
		},
		{
			name:    "gnutella uri-res request",
			payload: []byte("GET /uri-res/N2R?urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB HTTP/1.1\r\n\r\n"),
			want:    Gnutella,
		},
		{
			name:    "gnutella user-agent request",
			payload: []byte("GET /get/1/file.mp3 HTTP/1.1\r\nUser-Agent: BearShare 5.1\r\n\r\n"),
			want:    Gnutella,
		},
		{
			name:    "gnutella giv response",
			payload: []byte("GIV 42:ABCDEF0123456789ABCDEF0123456789/file.mp3\n\n"),
			want:    Gnutella,
		},
		{
			name:    "fasttrack supernode request",
			payload: []byte("GET /.supernode HTTP/1.1\r\n\r\n"),
			want:    FastTrack,
		},
		{
			name:    "fasttrack give",
			payload: []byte("GIVE 1234567890"),
			want:    FastTrack,
		},
		{
			name:    "http get",
			payload: []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"),
			want:    HTTP,
		},
		{
			name:    "http response",
			payload: []byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n<html>"),
			want:    HTTP,
		},
		{
			name:    "ftp banner",
			payload: []byte("220 ProFTPD 1.3.0 Server (FTP) ready.\r\n"),
			want:    FTP,
		},
		{
			name:    "smtp banner is not ftp",
			payload: []byte("220 mail.example.com ESMTP Postfix\r\n"),
			want:    Unknown,
		},
		{
			name:    "encrypted noise",
			payload: []byte{0x7f, 0x01, 0x9a, 0x44, 0x31, 0x5c, 0xee, 0x02, 0x88},
			want:    Unknown,
		},
		{
			name:    "empty payload",
			payload: nil,
			want:    Unknown,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := lib.MatchPayload(tt.payload); got != tt.want {
				t.Fatalf("MatchPayload = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestHighBytePatternsMatchRawBytes guards the Latin-1 widening: raw wire
// bytes ≥ 0x80 must match their \xNN pattern escapes.
func TestHighBytePatternsMatchRawBytes(t *testing.T) {
	lib := NewLibrary()
	for _, marker := range []byte{0xc5, 0xd4, 0xe3, 0xe4, 0xe5} {
		payload := []byte{marker, 0x01, 0x00, 0x00, 0x00, 0x01}
		if got := lib.MatchPayload(payload); got != EDonkey {
			t.Fatalf("marker %#x: MatchPayload = %v, want edonkey", marker, got)
		}
	}
}

func TestMatchPort(t *testing.T) {
	lib := NewLibrary()
	tests := []struct {
		proto packet.Proto
		port  uint16
		want  App
	}{
		{packet.TCP, 80, HTTP},
		{packet.TCP, 8080, HTTP},
		{packet.TCP, 3128, HTTP},
		{packet.TCP, 21, FTP},
		{packet.TCP, 4662, EDonkey},
		{packet.TCP, 6881, BitTorrent},
		{packet.TCP, 6346, Gnutella},
		{packet.TCP, 22, SSH},
		{packet.TCP, 443, HTTPS},
		{packet.TCP, 31337, Unknown},
		{packet.UDP, 53, DNS},
		{packet.UDP, 123, NTP},
		{packet.UDP, 4672, EDonkey},
		{packet.UDP, 80, Unknown}, // HTTP is not registered for UDP
		{packet.Proto(47), 80, Unknown},
	}
	for _, tt := range tests {
		if got := lib.MatchPort(tt.proto, tt.port); got != tt.want {
			t.Errorf("MatchPort(%v, %d) = %v, want %v", tt.proto, tt.port, got, tt.want)
		}
	}
}

func TestIsP2P(t *testing.T) {
	for _, app := range []App{BitTorrent, EDonkey, Gnutella, FastTrack} {
		if !app.IsP2P() {
			t.Errorf("%v.IsP2P() = false", app)
		}
	}
	for _, app := range []App{HTTP, FTP, DNS, SSH, Unknown} {
		if app.IsP2P() {
			t.Errorf("%v.IsP2P() = true", app)
		}
	}
}

func TestClassOf(t *testing.T) {
	tests := []struct {
		give App
		want Class
	}{
		{BitTorrent, ClassP2P},
		{HTTP, ClassNonP2P},
		{Unknown, ClassUnknown},
	}
	for _, tt := range tests {
		if got := ClassOf(tt.give); got != tt.want {
			t.Errorf("ClassOf(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestTable2Group(t *testing.T) {
	tests := []struct {
		give App
		want string
	}{
		{HTTP, "HTTP"},
		{BitTorrent, "bittorrent"},
		{Gnutella, "gnutella"},
		{EDonkey, "edonkey"},
		{Unknown, "UNKNOWN"},
		{FTP, "Others"},
		{FastTrack, "Others"},
		{DNS, "Others"},
	}
	for _, tt := range tests {
		if got := tt.give.Table2Group(); got != tt.want {
			t.Errorf("%v.Table2Group() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestAppString(t *testing.T) {
	if BitTorrent.String() != "bittorrent" || Unknown.String() != "UNKNOWN" {
		t.Fatal("app names wrong")
	}
	if App(99).String() != "app(99)" {
		t.Fatal("unknown app name wrong")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassAll:     "ALL",
		ClassP2P:     "P2P",
		ClassNonP2P:  "Non-P2P",
		ClassUnknown: "UNKNOWN",
	}
	for class, want := range names {
		if got := class.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", class, got, want)
		}
	}
	if Class(9).String() != "class(9)" {
		t.Fatal("unknown class name wrong")
	}
}

// TestStreamPrefixMatching: a signature split across concatenated packets
// still matches — the reason the analyzer concatenates up to four data
// packets.
func TestStreamPrefixMatching(t *testing.T) {
	lib := NewLibrary()
	part1 := []byte("GNUTELLA CON")
	part2 := []byte("NECT/0.6\r\n\r\n")
	if got := lib.MatchPayload(part1); got != Unknown {
		t.Fatalf("first fragment alone matched %v", got)
	}
	if got := lib.MatchPayload(append(part1, part2...)); got != Gnutella {
		t.Fatalf("concatenated stream = %v, want gnutella", got)
	}
}

// TestMatchPayloadZeroAlloc pins the matcher's steady-state allocation
// count at zero: the analyzer runs MatchPayload on every connection's
// stream prefix, so a single per-call allocation shows up directly in
// the ingest profile.
func TestMatchPayloadZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are not meaningful")
	}
	lib := NewLibrary()
	payloads := [][]byte{
		append([]byte{0x13}, []byte("BitTorrent protocol.....................................")...),
		{0xe3, 0x29, 0, 0, 0, 0x01, 0xaa, 0xbb, 0xcc},
		[]byte("GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire\r\n\r\n"),
		[]byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"),
		[]byte("220 ProFTPD 1.3.0 Server (FTP) ready.\r\n"),
		{0x7f, 0x11, 0x99, 0x42, 0x37, 0x5b, 0x02, 0x60, 0x12, 0x7d}, // opaque
	}
	// Warm the pool and the regexp engines' lazily built machines.
	for _, p := range payloads {
		lib.MatchPayload(p)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		lib.MatchPayload(payloads[i%len(payloads)])
		i++
	})
	if avg != 0 {
		t.Fatalf("MatchPayload allocates %.2f objects/op, want 0", avg)
	}
}
