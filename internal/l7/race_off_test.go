//go:build !race

package l7

// See race_on_test.go.
const raceEnabled = false
