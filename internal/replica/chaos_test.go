package replica

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/faultinject"
	"p2pbound/internal/hashes"
	"p2pbound/internal/netsim"
	"p2pbound/internal/packet"
)

// chaosFault names one fault dimension of the chaos matrix.
type chaosFault struct {
	name string
	link netsim.LinkConfig
	// clockRegress injects backward epochs: a random node is
	// AlignRotations'd ahead of the fleet mid-run, so everyone else
	// observes a "future" epoch and must fast-forward monotonically.
	clockRegress bool
	// restart replaces a random node mid-run with a fresh filter+node
	// (crash without snapshot) and requires it to heal via repair.
	restart bool
}

// chaosFleet is an in-process fleet of replicas wired through a
// netsim.Mesh. Node IDs are 1..n; mesh addresses are ID-1.
type chaosFleet struct {
	t       *testing.T
	cfg     core.Config
	filters []*core.Filter
	nodes   []*Node
	mesh    *netsim.Mesh
}

func newChaosFleet(t *testing.T, n int, cfg core.Config, link netsim.LinkConfig) *chaosFleet {
	t.Helper()
	fl := &chaosFleet{t: t, cfg: cfg, mesh: netsim.NewMesh(n, link)}
	for i := 0; i < n; i++ {
		fl.filters = append(fl.filters, mustFilter(t, cfg))
		fl.nodes = append(fl.nodes, mustNode(t, fl.filters[i], i+1, n))
	}
	return fl
}

func mustFilter(tb testing.TB, cfg core.Config) *core.Filter {
	tb.Helper()
	f, err := core.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

func mustNode(tb testing.TB, f *core.Filter, id, n int) *Node {
	tb.Helper()
	var peers []uint32
	for p := 1; p <= n; p++ {
		if p != id {
			peers = append(peers, uint32(p))
		}
	}
	node, err := NewNode(f, Config{ID: uint32(id), Peers: peers, DigestEvery: 2, SuspectAfter: 8})
	if err != nil {
		tb.Fatal(err)
	}
	return node
}

// outFor adapts a node's Outbox onto the mesh (IDs are 1-based).
func (fl *chaosFleet) outFor(i int) Outbox {
	return func(to uint32, frame []byte) {
		fl.mesh.Send(i, int(to)-1, frame)
	}
}

// round runs one fleet round: every node ticks, then every node drains
// its inbox (handler errors are expected under corruption-free chaos
// only for stale generations, which Handle does not error on — so any
// error here fails the test), then the mesh advances its partition
// round.
func (fl *chaosFleet) round() {
	for i, n := range fl.nodes {
		n.Tick(fl.outFor(i))
	}
	for i, n := range fl.nodes {
		node, out := n, fl.outFor(i)
		fl.mesh.Deliver(i, func(frame []byte) {
			if err := node.Handle(frame, out); err != nil {
				fl.t.Fatalf("node %d: %v", node.ID(), err)
			}
		})
	}
	fl.mesh.NextRound()
}

// converged reports whether all fleet filters are bitwise identical.
func (fl *chaosFleet) converged() bool {
	for i := 1; i < len(fl.filters); i++ {
		if !filtersEqual(fl.filters[0], fl.filters[i]) {
			return false
		}
	}
	return true
}

func chaosConfig(layout hashes.Layout) core.Config {
	return core.Config{K: 4, NBits: 12, M: 3, DeltaT: time.Second, Layout: layout}
}

func chaosFaults(seed uint64) []chaosFault {
	nodes, rounds := 4, 40
	part := func(asym float64) *faultinject.PartitionSchedule {
		return faultinject.NewPartitionSchedule(faultinject.PartitionConfig{
			Nodes: nodes, Rounds: rounds / 2, Episodes: 2, AsymmetricProb: asym,
		}, seed)
	}
	return []chaosFault{
		{name: "clean"},
		{name: "loss", link: netsim.LinkConfig{LossProb: 0.3, Seed: seed}},
		{name: "reorder", link: netsim.LinkConfig{ReorderWindow: 6, Seed: seed}},
		{name: "duplicate", link: netsim.LinkConfig{DupProb: 0.4, Seed: seed}},
		{name: "partition-sym", link: netsim.LinkConfig{Partitions: part(0), Seed: seed}},
		{name: "partition-asym", link: netsim.LinkConfig{Partitions: part(1), Seed: seed}},
		{name: "clock-regress", link: netsim.LinkConfig{LossProb: 0.1, Seed: seed}, clockRegress: true},
		{name: "restart", link: netsim.LinkConfig{LossProb: 0.1, Seed: seed}, restart: true},
		{name: "everything", link: netsim.LinkConfig{
			LossProb: 0.15, DupProb: 0.15, ReorderWindow: 4,
			Partitions: part(0.5), Seed: seed,
		}, clockRegress: true, restart: true},
	}
}

// TestChaosConvergence is the fleet's partition/rejoin proof: for
// every seeded fault schedule, a 4-node fleet that marks disjoint
// flows on each member converges to the bitwise union within a
// bounded number of rounds after the faults end, with zero cross-peer
// false negatives and an FPR within 2× of a single box holding the
// same union (it is the same bits, so the check is structural).
func TestChaosConvergence(t *testing.T) {
	for _, layout := range []hashes.Layout{hashes.LayoutClassic, hashes.LayoutBlocked} {
		for _, seed := range []uint64{1, 7, 42} {
			for _, fault := range chaosFaults(seed) {
				name := fmt.Sprintf("%s/seed%d/%s", layout, seed, fault.name)
				t.Run(name, func(t *testing.T) {
					runChaos(t, chaosConfig(layout), seed, fault)
				})
			}
		}
	}
}

func runChaos(t *testing.T, cfg core.Config, seed uint64, fault chaosFault) {
	const nodes, flowsPer, rounds = 4, 120, 40
	fl := newChaosFleet(t, nodes, cfg, fault.link)
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	restartAt, regressAt := rounds/3, rounds/2
	victim := int(rng.Uint64() % nodes)

	marked := make([][]packet.SocketPair, nodes)
	for r := 0; r < rounds; r++ {
		// Each node marks its own disjoint flow slice over the first
		// half of the run, spread across rounds so deltas interleave
		// with the fault schedule.
		if r < rounds/2 {
			for i := 0; i < nodes; i++ {
				for j := 0; j < 2*flowsPer/rounds; j++ {
					p := pairN(uint32(i*flowsPer + len(marked[i])))
					fl.filters[i].Mark(p)
					marked[i] = append(marked[i], p)
				}
			}
		}
		if fault.restart && r == restartAt {
			// Crash-without-snapshot: the victim loses every replicated
			// bit and re-learns them via anti-entropy. Its own live
			// flows keep sending traffic after the restart, so their
			// next outbound packets re-mark them — without that, marks
			// that never left the box (same-round, or cut off by a
			// partition) would be genuinely lost, which is crash
			// semantics, not a replication defect.
			fl.filters[victim] = mustFilter(t, cfg)
			fl.nodes[victim] = mustNode(t, fl.filters[victim], victim+1, nodes)
			for _, p := range marked[victim] {
				fl.filters[victim].Mark(p)
			}
		}
		if fault.clockRegress && r == regressAt {
			// One node's rotation clock jumps ahead (an NTP step); the
			// fleet must follow monotonically, never backward.
			fl.filters[victim].AlignRotations(fl.filters[victim].Rotations() + 1)
		}
		fl.round()
	}
	// Fault schedules are over (partitions healed, no more chaos
	// injections). Give the fleet K repair rounds on a clean mesh.
	fl.mesh = netsim.NewMesh(nodes, netsim.LinkConfig{})
	const healRounds = 12
	healed := -1
	for r := 0; r < healRounds; r++ {
		fl.round()
		if fl.converged() {
			healed = r
			break
		}
	}
	if healed < 0 {
		t.Fatalf("fleet not converged %d rounds after faults ended", healRounds)
	}
	for i, n := range fl.nodes {
		if !n.Ready() {
			// Readiness can trail convergence by one digest exchange.
			for r := 0; r < 4 && !n.Ready(); r++ {
				fl.round()
			}
			if !n.Ready() {
				t.Fatalf("node %d converged but never Ready", i+1)
			}
		}
	}
	// Zero false negatives across peers: every flow marked anywhere and
	// still within its retention window must be admitted everywhere.
	// Marks stopped at rounds/2 and epochs only advanced via the
	// clock-regress fault (+1), so all marks are within k rotations.
	// (Under the restart fault the victim's own pre-crash marks survive
	// only via the fleet; they had rounds to replicate before the
	// crash, so they are held to the same standard.)
	for i := range marked {
		for _, p := range marked[i] {
			for j, f := range fl.filters {
				if !f.Contains(p.Inverse()) {
					t.Fatalf("false negative: flow marked on node %d missing on node %d", i+1, j+1)
				}
			}
		}
	}
	// FPR within budget: converged fleet filters are bitwise equal to
	// each other; compare utilization (the FPR driver) against a single
	// box that marked the union directly. Replication may only add the
	// union's bits, so utilization must not exceed the single box's —
	// equality up to marks lost to the restart fault.
	single := mustFilter(t, cfg)
	for i := range marked {
		for _, p := range marked[i] {
			single.Mark(p)
		}
	}
	su, fu := single.Utilization(), fl.filters[0].Utilization()
	if fu > 2*su {
		t.Fatalf("fleet utilization %.4f more than 2× single-box %.4f", fu, su)
	}
	// Probe FPR directly on unmarked flows.
	fpSingle, fpFleet := 0, 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		q := pairN(uint32(900000 + i))
		if single.Contains(q.Inverse()) {
			fpSingle++
		}
		if fl.filters[0].Contains(q.Inverse()) {
			fpFleet++
		}
	}
	if fpFleet > 2*fpSingle+probes/100 {
		t.Fatalf("fleet FPR %d/%d more than 2× single-box %d/%d", fpFleet, probes, fpSingle, probes)
	}
}
