package replica

import (
	"bytes"
	"testing"
	"time"

	"p2pbound/internal/core"
)

// steadyCfg is the paper-scale geometry (N = 2^18 bits per vector)
// where shipping full snapshots would dominate the sync budget.
func steadyCfg() core.Config {
	return core.Config{K: 4, NBits: 18, M: 3, DeltaT: time.Second}
}

// TestDeltaSyncCheaperThanSnapshots: at steady state — a trickle of
// new flows per tick — the measured delta bytes (from the node's own
// telemetry counters) must be far below what shipping a snapshot per
// tick would cost. This is the acceptance bar for the delta encoder:
// if it regresses to shipping whole vectors, this fails.
func TestDeltaSyncCheaperThanSnapshots(t *testing.T) {
	fa := mustFilter(t, steadyCfg())
	fb := mustFilter(t, steadyCfg())
	na, err := NewNode(fa, Config{ID: 1, Peers: []uint32{2}})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNode(fb, Config{ID: 2, Peers: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	fab := newFabric(na, nb)
	// Warm up: an initial population, fully synced and acked.
	for i := uint32(0); i < 2000; i++ {
		fa.Mark(pairN(i))
	}
	for r := 0; r < 4; r++ {
		na.Tick(fab.out)
		nb.Tick(fab.out)
		fab.pump(t)
	}
	var snap bytes.Buffer
	if _, err := fa.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	snapBytes := int64(snap.Len())

	// Steady state: 20 new flows per tick for 50 ticks.
	base := na.Metrics().DeltaBytesSent
	next := uint32(2000)
	const ticks = 50
	for r := 0; r < ticks; r++ {
		for j := 0; j < 20; j++ {
			fa.Mark(pairN(next))
			next++
		}
		na.Tick(fab.out)
		nb.Tick(fab.out)
		fab.pump(t)
	}
	deltaPerTick := (na.Metrics().DeltaBytesSent - base) / ticks
	if deltaPerTick == 0 {
		t.Fatal("no delta traffic measured")
	}
	if deltaPerTick >= snapBytes/4 {
		t.Fatalf("steady-state delta %d B/tick not meaningfully cheaper than a %d B snapshot", deltaPerTick, snapBytes)
	}
	if !filtersEqual(fa, fb) {
		t.Fatal("steady-state sync diverged")
	}
	t.Logf("delta %d B/tick vs snapshot %d B (%.1f%%)", deltaPerTick, snapBytes, 100*float64(deltaPerTick)/float64(snapBytes))
}

// BenchmarkDeltaTick measures one steady-state sync round (20 new
// flows, diff + encode + merge + ack) between two replicas.
func BenchmarkDeltaTick(b *testing.B) {
	fa := mustFilter(b, steadyCfg())
	fb := mustFilter(b, steadyCfg())
	na, _ := NewNode(fa, Config{ID: 1, Peers: []uint32{2}})
	nb, _ := NewNode(fb, Config{ID: 2, Peers: []uint32{1}})
	var queue [][]byte
	outA := func(to uint32, frame []byte) { queue = append(queue, append([]byte(nil), frame...)) }
	sink := func(uint32, []byte) {}
	next := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 20; j++ {
			fa.Mark(pairN(next))
			next++
		}
		na.Tick(outA)
		for _, fr := range queue {
			if err := nb.Handle(fr, sink); err != nil {
				b.Fatal(err)
			}
		}
		queue = queue[:0]
	}
	m := na.Metrics()
	b.ReportMetric(float64(m.DeltaBytesSent)/float64(b.N), "deltaB/tick")
}

// BenchmarkSnapshotTick is the baseline BenchmarkDeltaTick displaces:
// shipping and restoring a full snapshot per sync round.
func BenchmarkSnapshotTick(b *testing.B) {
	fa := mustFilter(b, steadyCfg())
	next := uint32(0)
	var buf bytes.Buffer
	total := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 20; j++ {
			fa.Mark(pairN(next))
			next++
		}
		buf.Reset()
		if _, err := fa.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		total += int64(buf.Len())
		if _, err := core.ReadFilter(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "snapB/tick")
}
