package replica

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/core"
	"p2pbound/internal/hashes"
	"p2pbound/internal/packet"
)

func testCfg() core.Config {
	return core.Config{K: 4, NBits: 12, M: 3, DeltaT: time.Second}
}

func pairN(i uint32) packet.SocketPair {
	return packet.SocketPair{
		Proto:   packet.TCP,
		SrcAddr: packet.AddrFrom4(140, 112, byte(i>>8), byte(i)),
		SrcPort: uint16(30000 + i%10000),
		DstAddr: packet.AddrFrom4(8, byte(i>>16), byte(i>>8), byte(i)),
		DstPort: uint16(10000 + i%20000),
	}
}

// fabric is a zero-fault, in-order test transport. Frames are copied
// (nodes reuse their encode buffer) and queued, so reentrant replies
// cannot clobber a broadcast in flight.
type fabric struct {
	nodes map[uint32]*Node
	queue []struct {
		to    uint32
		frame []byte
	}
}

func newFabric(nodes ...*Node) *fabric {
	f := &fabric{nodes: make(map[uint32]*Node, len(nodes))}
	for _, n := range nodes {
		f.nodes[n.ID()] = n
	}
	return f
}

func (f *fabric) out(to uint32, frame []byte) {
	f.queue = append(f.queue, struct {
		to    uint32
		frame []byte
	}{to, append([]byte(nil), frame...)})
}

// pump delivers queued frames (including replies to replies) to
// completion and fails the test on any handler error.
func (f *fabric) pump(t *testing.T) {
	t.Helper()
	for len(f.queue) > 0 {
		q := f.queue[0]
		f.queue = f.queue[1:]
		n, ok := f.nodes[q.to]
		if !ok {
			continue
		}
		if err := n.Handle(q.frame, f.out); err != nil {
			t.Fatalf("node %d handle: %v", q.to, err)
		}
	}
}

func vecEqual(a, b *bitvec.Vector) bool {
	if a.DeltaBlocks() != b.DeltaBlocks() {
		return false
	}
	var wa, wb [bitvec.DeltaBlockWords]uint64
	for blk := 0; blk < a.DeltaBlocks(); blk++ {
		if a.BlockWords(uint32(blk), &wa) != nil || b.BlockWords(uint32(blk), &wb) != nil {
			return false
		}
		if wa != wb {
			return false
		}
	}
	return true
}

func filtersEqual(a, b *core.Filter) bool {
	if a.VectorCount() != b.VectorCount() || a.Index() != b.Index() {
		return false
	}
	for v := 0; v < a.VectorCount(); v++ {
		if !vecEqual(a.Vector(v), b.Vector(v)) {
			return false
		}
	}
	return true
}

func twoNodes(t *testing.T) (*core.Filter, *core.Filter, *Node, *Node, *fabric) {
	t.Helper()
	fa, err := core.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fb, err := core.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	na, err := NewNode(fa, Config{ID: 1, Peers: []uint32{2}, DigestEvery: 1, SuspectAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNode(fb, Config{ID: 2, Peers: []uint32{1}, DigestEvery: 1, SuspectAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fa, fb, na, nb, newFabric(na, nb)
}

func TestGenAt(t *testing.T) {
	for _, k := range []int{1, 2, 4, 5} {
		for epoch := int64(0); epoch < int64(6*k); epoch++ {
			for v := 0; v < k; v++ {
				// Brute force: the last rotation r ≤ epoch with
				// (r-1) mod k == v, or 0 if none.
				want := int64(0)
				for r := int64(1); r <= epoch; r++ {
					if int((r-1)%int64(k)) == v {
						want = r
					}
				}
				if got := genAt(epoch, v, k); got != want {
					t.Fatalf("genAt(%d, %d, %d) = %d, want %d", epoch, v, k, got, want)
				}
			}
		}
	}
}

func TestFingerprint(t *testing.T) {
	base := Fingerprint(testCfg())
	mut := []func(*core.Config){
		func(c *core.Config) { c.K = 2 },
		func(c *core.Config) { c.NBits = 13 },
		func(c *core.Config) { c.M = 4 },
		func(c *core.Config) { c.DeltaT = 2 * time.Second },
		func(c *core.Config) { c.HashKind = hashes.FNVDouble + 1 },
		func(c *core.Config) { c.Layout = hashes.LayoutBlocked },
		func(c *core.Config) { c.HolePunch = true },
	}
	for i, m := range mut {
		c := testCfg()
		m(&c)
		if Fingerprint(c) == base {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
	}
	// Operational knobs must not fragment the fleet.
	c := testCfg()
	c.Seed = 99
	c.ReorderTolerance = time.Second
	if Fingerprint(c) != base {
		t.Fatal("seed/tolerance changed the fingerprint")
	}
	// The zero HashKind resolves to FNVDouble, and the resolved scheme
	// matches the explicit one.
	c = testCfg()
	c.HashKind = hashes.FNVDouble
	if Fingerprint(c) != base {
		t.Fatal("explicit FNVDouble fingerprint differs from default")
	}
}

func TestTwoNodeDeltaSyncConverges(t *testing.T) {
	fa, fb, na, nb, fab := twoNodes(t)
	for i := uint32(0); i < 200; i++ {
		fa.Mark(pairN(i))
	}
	for i := uint32(500); i < 600; i++ {
		fb.Mark(pairN(i))
	}
	for round := 0; round < 3; round++ {
		na.Tick(fab.out)
		nb.Tick(fab.out)
		fab.pump(t)
	}
	if !filtersEqual(fa, fb) {
		t.Fatal("filters did not converge to the union")
	}
	for i := uint32(0); i < 200; i++ {
		if !fb.Contains(pairN(i).Inverse()) {
			t.Fatalf("flow %d marked on A is a false negative on B", i)
		}
	}
	for i := uint32(500); i < 600; i++ {
		if !fa.Contains(pairN(i).Inverse()) {
			t.Fatalf("flow %d marked on B is a false negative on A", i)
		}
	}
	if !na.Ready() || !nb.Ready() {
		t.Fatal("converged nodes not Ready")
	}
	m := na.Metrics()
	if m.DeltaFramesSent == 0 || m.DeltaBlocksMerged == 0 {
		t.Fatalf("missing delta telemetry: %+v", m)
	}
}

// TestSteadyStateQuiesces: once every delta is acked and folded, a
// tick with no new marks sends no delta frames.
func TestSteadyStateQuiesces(t *testing.T) {
	fa, _, na, nb, fab := twoNodes(t)
	for i := uint32(0); i < 50; i++ {
		fa.Mark(pairN(i))
	}
	for round := 0; round < 4; round++ {
		na.Tick(fab.out)
		nb.Tick(fab.out)
		fab.pump(t)
	}
	before := na.Metrics().DeltaFramesSent + nb.Metrics().DeltaFramesSent
	na.Tick(fab.out)
	nb.Tick(fab.out)
	fab.pump(t)
	after := na.Metrics().DeltaFramesSent + nb.Metrics().DeltaFramesSent
	if after != before {
		t.Fatalf("steady state still sent %d delta frames", after-before)
	}
}

func TestCorruptFrameLeavesStateUntouched(t *testing.T) {
	fa, fb, na, nb, fab := twoNodes(t)
	for i := uint32(0); i < 50; i++ {
		fa.Mark(pairN(i))
	}
	// Capture a valid delta frame off the wire.
	na.Tick(fab.out)
	var delta []byte
	for _, q := range fab.queue {
		if fr, err := DecodeFrame(q.frame); err == nil && fr.Type == FrameDelta {
			delta = q.frame
		}
	}
	if delta == nil {
		t.Fatal("no delta frame captured")
	}
	snap := func() []byte {
		var buf bytes.Buffer
		if _, err := fb.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	before := snap()
	rejected := nb.Metrics().FramesRejected
	for i := range delta {
		bad := append([]byte(nil), delta...)
		bad[i] ^= 0x10
		if err := nb.Handle(bad, fab.out); err == nil {
			// A flip in the CRC-covered region that still decodes can
			// only be... nothing: every byte is covered.
			t.Fatalf("corrupt frame (byte %d) accepted", i)
		}
	}
	if got := nb.Metrics().FramesRejected; got != rejected+int64(len(delta)) {
		t.Fatalf("FramesRejected = %d, want %d", got, rejected+int64(len(delta)))
	}
	if !bytes.Equal(before, snap()) {
		t.Fatal("corrupt frames mutated filter state")
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	_, _, _, nb, fab := twoNodes(t)
	frame := EncodeHello(nil, 1, 0, Fingerprint(testCfg())+1)
	if err := nb.Handle(frame, fab.out); !errors.Is(err, ErrGeometry) {
		t.Fatalf("got %v, want ErrGeometry", err)
	}
	ownID := EncodeHello(nil, 2, 0, Fingerprint(testCfg()))
	if err := nb.Handle(ownID, fab.out); !errors.Is(err, ErrGeometry) {
		t.Fatalf("own-ID frame: got %v, want ErrGeometry", err)
	}
}

// TestStaleSectionSkipped: a delta from an older epoch whose vector
// generation changed is acknowledged but not merged.
func TestStaleSectionSkipped(t *testing.T) {
	fa, fb, na, nb, fab := twoNodes(t)
	_ = fa
	fb.AlignRotations(5)
	// Sender epoch 1: vector 0's generation there (1) differs from its
	// generation at epoch 5 on the receiver.
	sec := []VectorSection{{Vec: 0, Blocks: []BlockPatch{{Blk: 0, Words: [8]uint64{1}}}}}
	frame := EncodeSections(nil, FrameDelta, na.ID(), 1, Fingerprint(testCfg()), 9, sec)
	if err := nb.Handle(frame, fab.out); err != nil {
		t.Fatal(err)
	}
	m := nb.Metrics()
	if m.StaleSections != 1 || m.DeltaBlocksMerged != 0 {
		t.Fatalf("stale=%d merged=%d, want 1, 0", m.StaleSections, m.DeltaBlocksMerged)
	}
	var w [bitvec.DeltaBlockWords]uint64
	if err := fb.Vector(0).BlockWords(0, &w); err != nil || w[0] != 0 {
		t.Fatalf("stale section leaked into the vector: %v %v", w, err)
	}
}

// TestBadBlockRejectsWholeFrame: a frame mixing a valid patch with an
// out-of-range one must apply neither.
func TestBadBlockRejectsWholeFrame(t *testing.T) {
	_, fb, na, nb, fab := twoNodes(t)
	good := BlockPatch{Blk: 0, Words: [8]uint64{1}}
	bad := BlockPatch{Blk: 1 << 20, Words: [8]uint64{1}}
	sec := []VectorSection{{Vec: 0, Blocks: []BlockPatch{good, bad}}}
	frame := EncodeSections(nil, FrameDelta, na.ID(), 0, Fingerprint(testCfg()), 1, sec)
	if err := nb.Handle(frame, fab.out); !errors.Is(err, ErrGeometry) {
		t.Fatalf("got %v, want ErrGeometry", err)
	}
	var w [bitvec.DeltaBlockWords]uint64
	if err := fb.Vector(0).BlockWords(0, &w); err != nil || w[0] != 0 {
		t.Fatal("rejected frame partially applied")
	}
	if len(fab.queue) != 0 {
		t.Fatal("rejected delta was acked")
	}
}

// TestEpochFastForward: a frame from a newer epoch fast-forwards the
// receiver's rotation count — fail-closed, clearing overdue vectors.
func TestEpochFastForward(t *testing.T) {
	fa, _, na, nb, fab := twoNodes(t)
	fa.Mark(pairN(1))
	if !fa.Contains(pairN(1).Inverse()) {
		t.Fatal("mark not visible")
	}
	frame := EncodeHello(nil, nb.ID(), 7, Fingerprint(testCfg()))
	if err := na.Handle(frame, fab.out); err != nil {
		t.Fatal(err)
	}
	if got := fa.Rotations(); got != 7 {
		t.Fatalf("Rotations() = %d, want 7", got)
	}
	if fa.Contains(pairN(1).Inverse()) {
		t.Fatal("fast-forward kept bits from wiped generations")
	}
	if na.Metrics().SyncLagEpochs != 7 {
		t.Fatalf("SyncLagEpochs = %d, want 7", na.Metrics().SyncLagEpochs)
	}
}

// TestDigestRepairHeals: blow away one node's vector contents behind
// the sync protocol's back (via a fresh filter) and prove the digest
// exchange repairs it without a full snapshot.
func TestDigestRepairHeals(t *testing.T) {
	fa, fb, na, nb, fab := twoNodes(t)
	for i := uint32(0); i < 100; i++ {
		fa.Mark(pairN(i))
	}
	for round := 0; round < 3; round++ {
		na.Tick(fab.out)
		nb.Tick(fab.out)
		fab.pump(t)
	}
	if !filtersEqual(fa, fb) {
		t.Fatal("setup: no initial convergence")
	}
	// Divergence: B loses its state (fresh filter, fresh node — a crash
	// without a snapshot). The rejoining node must not be Ready until a
	// digest round completes, then must recover every bit from repair.
	fb2, err := core.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	nb2, err := NewNode(fb2, Config{ID: 2, Peers: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if nb2.Ready() {
		t.Fatal("rejoined node Ready before any digest round")
	}
	fab2 := newFabric(na, nb2)
	for round := 0; round < 4; round++ {
		na.Tick(fab2.out)
		nb2.Tick(fab2.out)
		fab2.pump(t)
	}
	if !filtersEqual(fa, fb2) {
		t.Fatal("anti-entropy did not heal the wiped node")
	}
	if !nb2.Ready() {
		t.Fatal("healed node still not Ready")
	}
	if nb2.Metrics().RepairBlocksMerged == 0 && nb2.Metrics().DeltaBlocksMerged == 0 {
		t.Fatal("healing happened without repair or delta traffic?")
	}
	if na.Metrics().DigestMismatchRanges == 0 {
		t.Fatal("divergence never detected by digests")
	}
}

func TestSingleNodeFleetReadyImmediately(t *testing.T) {
	f, err := core.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(f, Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !n.Ready() {
		t.Fatal("fleet of one not Ready")
	}
	n.Tick(func(uint32, []byte) { t.Fatal("fleet of one sent a frame") })
}

func TestNewNodeRejectsSelfPeer(t *testing.T) {
	f, err := core.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(f, Config{ID: 1, Peers: []uint32{1}}); err == nil {
		t.Fatal("self-peer config accepted")
	}
}

// TestNewNodeAlignsRestoredIndex: a snapshot restore resets the
// rotation count but keeps the vector index; attaching a node must
// re-establish idx ≡ rotations (mod k) by rotating forward.
func TestNewNodeAlignsRestoredIndex(t *testing.T) {
	src, err := core.New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	src.Rotate()
	src.Rotate()
	src.Rotate()
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := core.ReadFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Index() != 3 || f.Rotations() != 0 {
		t.Fatalf("restore gave idx=%d rotations=%d", f.Index(), f.Rotations())
	}
	if _, err := NewNode(f, Config{ID: 1, Peers: []uint32{2}}); err != nil {
		t.Fatal(err)
	}
	if got := f.Index() % f.VectorCount(); int64(got) != f.Rotations()%int64(f.VectorCount()) {
		t.Fatalf("idx %d not congruent to rotations %d", f.Index(), f.Rotations())
	}
}

// TestSuspectPeerDoesNotWedgeFold: a dead peer must not keep the
// pending delta open forever.
func TestSuspectPeerDoesNotWedgeFold(t *testing.T) {
	fa, _, na, _, _ := twoNodes(t)
	fa.Mark(pairN(1))
	sink := func(uint32, []byte) {}
	// Peer 2 never responds; after SuspectAfter ticks it is excluded
	// and the pending delta folds, so ticks go quiet.
	for i := 0; i < 3*4+2; i++ {
		na.Tick(sink)
	}
	before := na.Metrics().DeltaFramesSent
	na.Tick(sink)
	if got := na.Metrics().DeltaFramesSent; got != before {
		t.Fatalf("suspect peer still forcing delta retransmits (%d → %d)", before, got)
	}
	if na.Ready() {
		t.Fatal("node with no live peers became Ready")
	}
}
