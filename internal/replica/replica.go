package replica

import (
	"fmt"
	"sync/atomic"

	"p2pbound/internal/bitvec"
	"p2pbound/internal/core"
	"p2pbound/internal/hashes"
)

// Config parameterizes one fleet member.
type Config struct {
	// ID is this node's replica ID, unique within the fleet.
	ID uint32
	// Peers lists the other members' IDs (not including ID). An empty
	// fleet of one is Ready immediately.
	Peers []uint32
	// DigestEvery is the anti-entropy cadence in ticks: every
	// DigestEvery-th Tick broadcasts range digests. Default 4.
	DigestEvery int
	// SuspectAfter is the liveness horizon in ticks: a peer unheard for
	// longer is excluded from ack quorums and readiness checks.
	// Default 3×DigestEvery.
	SuspectAfter int
	// RangeBlocks is the digest range width in 512-bit delta blocks.
	// Default 16 (one CRC per KiB of vector).
	RangeBlocks int
}

// Outbox carries an encoded frame toward peer `to`. The byte slice is
// reused across calls; the transport must copy it before returning
// (netsim.Mesh and the in-process fleet transport both do).
type Outbox func(to uint32, frame []byte)

// peerState tracks what we know about one fleet member.
type peerState struct {
	// ack is the highest delta sequence the peer acknowledged.
	ack uint64
	// lastHeard is the local tick of the last valid frame, -1 never.
	lastHeard int
	// heardDigest and digestOK drive readiness: a node activates when
	// every live peer's most recent digest matched its own state.
	heardDigest bool
	digestOK    bool
}

// Metrics is a point-in-time snapshot of a node's replication
// telemetry (all lifetime counters except the gauges noted).
type Metrics struct {
	DeltaFramesSent   int64
	DeltaBytesSent    int64
	DeltaBlocksSent   int64
	DeltaBlocksMerged int64
	AckFramesSent     int64

	DigestFramesSent     int64
	DigestFramesReceived int64
	DigestMismatchRanges int64
	RepairRounds         int64

	RepairFramesSent   int64
	RepairBytesSent    int64
	RepairBlocksMerged int64

	StaleSections  int64
	FramesRejected int64

	// SyncLagEpochs is a gauge: how far behind the fleet's newest
	// rotation count this node last observed itself.
	SyncLagEpochs int64
	// Ready mirrors Ready() for scrapes.
	Ready bool
}

// metrics is the node-internal atomic mirror of Metrics. The fields
// are atomics only so telemetry scrapes may read them from another
// goroutine; all writers run on the node's own goroutine.
type metrics struct {
	deltaFramesSent   atomic.Int64 //p2p:atomic
	deltaBytesSent    atomic.Int64 //p2p:atomic
	deltaBlocksSent   atomic.Int64 //p2p:atomic
	deltaBlocksMerged atomic.Int64 //p2p:atomic
	ackFramesSent     atomic.Int64 //p2p:atomic

	digestFramesSent     atomic.Int64 //p2p:atomic
	digestFramesReceived atomic.Int64 //p2p:atomic
	digestMismatchRanges atomic.Int64 //p2p:atomic
	repairRounds         atomic.Int64 //p2p:atomic

	repairFramesSent   atomic.Int64 //p2p:atomic
	repairBytesSent    atomic.Int64 //p2p:atomic
	repairBlocksMerged atomic.Int64 //p2p:atomic

	staleSections  atomic.Int64 //p2p:atomic
	framesRejected atomic.Int64 //p2p:atomic

	syncLagEpochs atomic.Int64 //p2p:atomic
	ready         atomic.Int64 //p2p:atomic
}

// Node replicates one Limiter's filter across a fleet. It is NOT
// safe for concurrent use: Tick and Handle must run on the goroutine
// that owns the filter (the same discipline as core.Filter itself).
// Metrics and Ready are safe to read from anywhere.
type Node struct {
	f    *core.Filter
	id   uint32
	k    int
	geom uint64

	peerIDs      []uint32
	peers        map[uint32]*peerState //p2p:confined replnode
	digestEvery  int
	suspectAfter int
	rangeBlocks  int

	// shadow is the last fleet-acknowledged image of each vector — by
	// construction a subset of the live vector within a generation, so
	// XOR(live, shadow) is exactly the bits not yet acked everywhere.
	//p2p:confined replnode
	shadow      []*bitvec.Vector
	shadowEpoch int64 //p2p:confined replnode

	// pending is the last delta broadcast, kept until the live-peer
	// min-ack covers pendingSeq, then folded into shadow.
	//p2p:confined replnode
	pending     []VectorSection
	pendingSeq  uint64 //p2p:confined replnode
	pendingOpen bool   //p2p:confined replnode

	seq       uint64 //p2p:confined replnode
	tick      int    //p2p:confined replnode
	helloSent bool   //p2p:confined replnode
	active    bool   //p2p:confined replnode

	buf     []byte   //p2p:confined replnode // reused frame encode buffer
	scratch []uint32 //p2p:confined replnode // reused digest buffer

	m metrics
}

// NewNode attaches replication state to a filter. The filter's
// rotation index is re-anchored to its rotation count (idx ≡
// rotations mod k) so vector generations derived from the count name
// the same physical vector on every member.
//
//p2p:confined replnode entry
func NewNode(f *core.Filter, cfg Config) (*Node, error) {
	k := f.VectorCount()
	if cfg.DigestEvery <= 0 {
		cfg.DigestEvery = 4
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.DigestEvery
	}
	if cfg.RangeBlocks <= 0 {
		cfg.RangeBlocks = 16
	}
	for _, p := range cfg.Peers {
		if p == cfg.ID {
			return nil, fmt.Errorf("replica: node %d lists itself as a peer", cfg.ID)
		}
	}
	// Re-anchor idx ≡ rotations (mod k): generations are derived from
	// the rotation count alone, so every member must map count→vector
	// identically. Restores break the congruence (count resets to zero,
	// the index does not); AlignIndex relabels without clearing, and
	// the readiness gate keeps the node fail-closed until anti-entropy
	// confirms the relabeled state against the fleet.
	f.AlignIndex()
	n := &Node{
		f:            f,
		id:           cfg.ID,
		k:            k,
		geom:         Fingerprint(f.Config()),
		peerIDs:      append([]uint32(nil), cfg.Peers...),
		peers:        make(map[uint32]*peerState, len(cfg.Peers)),
		digestEvery:  cfg.DigestEvery,
		suspectAfter: cfg.SuspectAfter,
		rangeBlocks:  cfg.RangeBlocks,
		shadow:       make([]*bitvec.Vector, k),
		shadowEpoch:  f.Rotations(),
		active:       len(cfg.Peers) == 0,
	}
	nbits := uint(1) << f.Config().NBits
	for i := range n.shadow {
		n.shadow[i] = bitvec.New(nbits)
	}
	for _, p := range cfg.Peers {
		n.peers[p] = &peerState{lastHeard: -1}
	}
	n.m.ready.Store(b2i(n.active))
	return n, nil
}

// Fingerprint hashes the replication-relevant filter geometry: two
// nodes merge state only when their fingerprints agree, so a delta
// can never be interpreted against mismatched vector shapes. Seed and
// timing tolerances are deliberately excluded — they do not change
// where a key's bits land... except Seed under the paper's shared-hash
// design, where hashing is seed-independent (FNV et al. take no seed).
func Fingerprint(cfg core.Config) uint64 {
	scheme, layout, err := hashes.ResolveSchemeLayout(cfg.HashScheme, cfg.Layout)
	if err != nil {
		scheme, layout = cfg.HashScheme, cfg.Layout
	}
	kind := cfg.HashKind
	if kind == 0 {
		kind = hashes.FNVDouble
	}
	fields := [...]uint64{
		uint64(cfg.K), uint64(cfg.NBits), uint64(cfg.M),
		uint64(cfg.DeltaT), uint64(kind), uint64(scheme), uint64(layout),
		uint64(b2i(cfg.HolePunch)),
	}
	// FNV-1a over the field words: stable, dependency-free, and more
	// than enough to catch accidental config drift.
	h := uint64(14695981039346656037)
	for _, f := range fields {
		for s := 0; s < 64; s += 8 {
			h ^= (f >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// ID returns the node's replica ID.
func (n *Node) ID() uint32 { return n.id }

// Ready reports whether the node may serve traffic un-degraded: false
// while (re)joining, true once every live peer's latest digest matched
// this node's state. A not-Ready node's limiter runs fail-closed
// (P_d = 1) so a stale filter can never wave through traffic the
// fleet already marked. A totally isolated joiner therefore stays
// fail-closed — the safe choice for an enforcement box.
func (n *Node) Ready() bool { return n.m.ready.Load() != 0 }

// Epoch returns the node's rotation count (the fleet logical clock).
func (n *Node) Epoch() int64 { return n.f.Rotations() }

// Metrics snapshots the replication telemetry.
func (n *Node) Metrics() Metrics {
	return Metrics{
		DeltaFramesSent:      n.m.deltaFramesSent.Load(),
		DeltaBytesSent:       n.m.deltaBytesSent.Load(),
		DeltaBlocksSent:      n.m.deltaBlocksSent.Load(),
		DeltaBlocksMerged:    n.m.deltaBlocksMerged.Load(),
		AckFramesSent:        n.m.ackFramesSent.Load(),
		DigestFramesSent:     n.m.digestFramesSent.Load(),
		DigestFramesReceived: n.m.digestFramesReceived.Load(),
		DigestMismatchRanges: n.m.digestMismatchRanges.Load(),
		RepairRounds:         n.m.repairRounds.Load(),
		RepairFramesSent:     n.m.repairFramesSent.Load(),
		RepairBytesSent:      n.m.repairBytesSent.Load(),
		RepairBlocksMerged:   n.m.repairBlocksMerged.Load(),
		StaleSections:        n.m.staleSections.Load(),
		FramesRejected:       n.m.framesRejected.Load(),
		SyncLagEpochs:        n.m.syncLagEpochs.Load(),
		Ready:                n.Ready(),
	}
}

// genAt returns the generation of vector vec at rotation count epoch:
// the 1-based index of the last rotation that cleared it, 0 if it has
// never been cleared. Rotation r clears vector (r-1) mod k, so two
// nodes agree on a vector's generation from rotation counts alone —
// no per-vector version numbers on the wire.
func genAt(epoch int64, vec, k int) int64 {
	if epoch <= 0 {
		return 0
	}
	r := epoch - floorMod(epoch-1-int64(vec), int64(k))
	if r < 1 {
		return 0
	}
	return r
}

func floorMod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// live reports whether a peer counts toward quorums: heard from
// within SuspectAfter ticks, with a joining grace period before the
// first frame.
//
//p2p:confined replnode
func (n *Node) live(p *peerState) bool {
	return n.tick-p.lastHeard <= n.suspectAfter
}

// catchUpShadow re-bases the acked shadow onto the filter's current
// rotation count: any vector whose generation changed since
// shadowEpoch was cleared by rotation, so its shadow is cleared too
// and any pending (unacked) patches for it are dropped — re-sending
// them would resurrect a dead generation's bits on peers.
//
//p2p:confined replnode
func (n *Node) catchUpShadow() {
	cur := n.f.Rotations()
	if cur == n.shadowEpoch {
		return
	}
	for v := 0; v < n.k; v++ {
		if genAt(cur, v, n.k) != genAt(n.shadowEpoch, v, n.k) {
			n.shadow[v].Clear()
			if n.pendingOpen {
				for i := range n.pending {
					if n.pending[i].Vec == uint32(v) {
						n.pending[i].Blocks = nil
					}
				}
			}
		}
	}
	n.shadowEpoch = cur
}

// tryFold folds the pending delta into the shadow once every live
// peer acked it. Suspect peers are excluded — a dead peer must not
// wedge the quorum — and re-learn the skipped bits from anti-entropy
// digests after they return and re-ack.
//
//p2p:confined replnode
func (n *Node) tryFold() {
	if !n.pendingOpen {
		return
	}
	for _, p := range n.peers {
		if n.live(p) && p.ack < n.pendingSeq {
			return
		}
	}
	for _, sec := range n.pending {
		for i := range sec.Blocks {
			// The shadow has the live vector's geometry, so a patch
			// diffed from it can only fail the range check if pruning
			// missed a generation change — which catchUpShadow runs
			// before every fold precisely to rule out.
			if _, err := n.shadow[sec.Vec].MergeBlock(sec.Blocks[i].Blk, &sec.Blocks[i].Words); err != nil {
				panic("replica: pending fold out of range: " + err.Error())
			}
		}
	}
	n.pending = n.pending[:0]
	n.pendingOpen = false
}

// Tick runs one replication round on the filter-owning goroutine:
// fold acked deltas, broadcast the cumulative unacked delta, and on
// the digest cadence broadcast range digests. The first tick also
// broadcasts Hello so peers reset their view of this (re)started node.
//
//p2p:confined replnode entry
func (n *Node) Tick(out Outbox) {
	n.catchUpShadow()
	n.tryFold()
	epoch := n.f.Rotations()

	if !n.helloSent {
		n.buf = EncodeHello(n.buf, n.id, epoch, n.geom)
		n.broadcast(out, n.buf)
		n.helloSent = true
	}

	// Cumulative delta: XOR against the acked shadow covers everything
	// unacked, so a lost delta frame is automatically retransmitted by
	// the next tick — no per-sequence retransmit buffers.
	secs := n.pending[:0]
	for v := 0; v < n.k; v++ {
		var blocks []BlockPatch
		err := n.f.Vector(v).DiffBlocks(n.shadow[v], func(blk uint32, xor *[bitvec.DeltaBlockWords]uint64) {
			blocks = append(blocks, BlockPatch{Blk: blk, Words: *xor})
		})
		if err != nil {
			panic("replica: shadow diff: " + err.Error())
		}
		if len(blocks) > 0 {
			secs = append(secs, VectorSection{Vec: uint32(v), Blocks: blocks})
		}
	}
	if len(secs) > 0 && len(n.peerIDs) > 0 {
		n.seq++
		n.buf = EncodeSections(n.buf, FrameDelta, n.id, epoch, n.geom, n.seq, secs)
		nblk := 0
		for _, s := range secs {
			nblk += len(s.Blocks)
		}
		n.m.deltaFramesSent.Add(int64(len(n.peerIDs)))
		n.m.deltaBytesSent.Add(int64(len(n.buf) * len(n.peerIDs)))
		n.m.deltaBlocksSent.Add(int64(nblk * len(n.peerIDs)))
		n.broadcast(out, n.buf)
		n.pending = secs
		n.pendingSeq = n.seq
		n.pendingOpen = true
	}

	if n.digestEvery > 0 && n.tick%n.digestEvery == 0 && len(n.peerIDs) > 0 {
		n.buf = n.encodeOwnDigest(epoch)
		n.m.digestFramesSent.Add(int64(len(n.peerIDs)))
		n.broadcast(out, n.buf)
	}
	n.tick++
}

//p2p:confined replnode
func (n *Node) broadcast(out Outbox, frame []byte) {
	for _, to := range n.peerIDs {
		out(to, frame)
	}
}

//p2p:confined replnode
func (n *Node) encodeOwnDigest(epoch int64) []byte {
	digests := make([]VectorDigest, n.k)
	for v := 0; v < n.k; v++ {
		n.scratch = n.f.Vector(v).AppendRangeDigests(n.rangeBlocks, n.scratch[:0])
		digests[v] = VectorDigest{Vec: uint32(v), CRCs: append([]uint32(nil), n.scratch...)}
	}
	return EncodeDigest(n.buf, n.id, epoch, n.geom, uint32(n.rangeBlocks), digests)
}

// Handle processes one incoming frame, replying through out. Errors
// are returned for observability; the filter is untouched by any
// frame that fails validation (checksum, geometry, or block bounds).
//
//p2p:confined replnode entry
func (n *Node) Handle(data []byte, out Outbox) error {
	fr, err := DecodeFrame(data)
	if err != nil {
		n.m.framesRejected.Add(1)
		return err
	}
	if fr.Geom != n.geom {
		n.m.framesRejected.Add(1)
		return fmt.Errorf("%w: fingerprint %#x, ours %#x", ErrGeometry, fr.Geom, n.geom)
	}
	if fr.Sender == n.id {
		n.m.framesRejected.Add(1)
		return fmt.Errorf("%w: frame from own ID %d", ErrGeometry, n.id)
	}
	// Validate the whole payload against local geometry before touching
	// any state — including the rotation clock. A frame either passes
	// every check and is applied in full, or fails one and leaves the
	// filter (vectors and epoch alike) byte-for-byte untouched.
	switch fr.Type {
	case FrameDelta, FrameRepair:
		err = n.validateSections(fr)
	case FrameDigest:
		err = n.validateDigest(fr)
	case FrameHello, FrameAck:
	default:
		err = fmt.Errorf("%w: unhandled type %d", ErrFrameMalformed, int(fr.Type))
	}
	if err != nil {
		n.m.framesRejected.Add(1)
		return err
	}
	// Epoch alignment before interpreting payload: the fleet logical
	// clock only moves forward. A frame from a newer epoch fast-forwards
	// local rotation (clearing overdue vectors — fail-closed); a frame
	// from an older epoch is handled at our epoch, its stale sections
	// skipped by the generation check.
	if remote := int64(fr.Epoch); remote > n.f.Rotations() {
		n.m.syncLagEpochs.Store(remote - n.f.Rotations())
		n.f.AlignRotations(remote)
		n.catchUpShadow()
	} else {
		n.m.syncLagEpochs.Store(0)
	}

	p := n.peers[fr.Sender]
	if p == nil {
		// A member not in our config (rolling reconfiguration): track it
		// for liveness/readiness but don't add it to the broadcast list —
		// membership is config-owned.
		p = &peerState{lastHeard: -1}
		n.peers[fr.Sender] = p
	}
	p.lastHeard = n.tick

	switch fr.Type {
	case FrameHello:
		// A (re)started peer: everything we knew about its acks and
		// digests is void. Fail its digest state so our readiness can't
		// ride on a pre-restart match, and answer with a unicast digest
		// so it can start repairing immediately.
		p.ack = 0
		p.heardDigest = false
		p.digestOK = false
		n.buf = n.encodeOwnDigest(n.f.Rotations())
		n.m.digestFramesSent.Add(1)
		out(fr.Sender, n.buf)
	case FrameAck:
		if fr.Seq > p.ack {
			p.ack = fr.Seq
		}
	case FrameDelta, FrameRepair:
		n.mergeSections(fr)
		if fr.Type == FrameDelta {
			n.buf = EncodeAck(n.buf, n.id, n.f.Rotations(), n.geom, fr.Seq)
			n.m.ackFramesSent.Add(1)
			out(fr.Sender, n.buf)
		}
	case FrameDigest:
		n.m.digestFramesReceived.Add(1)
		n.handleDigest(fr, p, out)
	default:
		// Unreachable: the validation switch above already rejected
		// unknown types; kept for the enum analyzer's exhaustiveness.
	}
	return nil
}

// validateSections checks every patch of every section — stale or not
// — against local geometry, touching nothing.
func (n *Node) validateSections(fr *Frame) error {
	for _, sec := range fr.Sections {
		if int(sec.Vec) >= n.k {
			return fmt.Errorf("%w: vector %d of %d", ErrGeometry, sec.Vec, n.k)
		}
		v := n.f.Vector(int(sec.Vec))
		for i := range sec.Blocks {
			if err := v.CheckBlock(sec.Blocks[i].Blk, &sec.Blocks[i].Words); err != nil {
				return fmt.Errorf("%w: vector %d block %d: %v", ErrGeometry, sec.Vec, sec.Blocks[i].Blk, err)
			}
		}
	}
	return nil
}

// validateDigest checks a digest frame's shape against local geometry,
// touching nothing.
func (n *Node) validateDigest(fr *Frame) error {
	if int(fr.BlocksPerRange) != n.rangeBlocks {
		return fmt.Errorf("%w: digest range width %d, ours %d", ErrGeometry, fr.BlocksPerRange, n.rangeBlocks)
	}
	for _, d := range fr.Digests {
		if int(d.Vec) >= n.k {
			return fmt.Errorf("%w: digest vector %d of %d", ErrGeometry, d.Vec, n.k)
		}
		if want := n.f.Vector(int(d.Vec)).RangeCount(n.rangeBlocks); len(d.CRCs) != want {
			return fmt.Errorf("%w: %d range digests, want %d", ErrGeometry, len(d.CRCs), want)
		}
	}
	return nil
}

// mergeSections applies a pre-validated Delta or Repair frame's
// patches, skipping sections whose vector generation differs.
func (n *Node) mergeSections(fr *Frame) {
	own := n.f.Rotations()
	merged := int64(0)
	for _, sec := range fr.Sections {
		// Merge only sections whose vector is the same generation at the
		// sender's epoch and ours — otherwise the bits describe a rotation
		// that one side has already cleared.
		if genAt(int64(fr.Epoch), int(sec.Vec), n.k) != genAt(own, int(sec.Vec), n.k) {
			n.m.staleSections.Add(1)
			continue
		}
		v := n.f.Vector(int(sec.Vec))
		for i := range sec.Blocks {
			if _, err := v.MergeBlock(sec.Blocks[i].Blk, &sec.Blocks[i].Words); err != nil {
				panic("replica: checked merge failed: " + err.Error())
			}
			merged++
		}
	}
	if fr.Type == FrameRepair {
		n.m.repairBlocksMerged.Add(merged)
	} else {
		n.m.deltaBlocksMerged.Add(merged)
	}
}

// handleDigest compares a pre-validated peer digest against local
// state, pushes repair blocks for divergent ranges, and updates
// readiness.
//
//p2p:confined replnode
func (n *Node) handleDigest(fr *Frame, p *peerState, out Outbox) {
	own := n.f.Rotations()
	seen := make([]bool, n.k)
	allMatch := true
	var repairs []VectorSection
	for _, d := range fr.Digests {
		seen[d.Vec] = true
		if genAt(int64(fr.Epoch), int(d.Vec), n.k) != genAt(own, int(d.Vec), n.k) {
			// Different generations legitimately hold different bits;
			// comparing them would trigger useless repair storms. The
			// epoch alignment above makes this transient.
			n.m.staleSections.Add(1)
			allMatch = false
			continue
		}
		v := n.f.Vector(int(d.Vec))
		n.scratch = v.AppendRangeDigests(n.rangeBlocks, n.scratch[:0])
		var blocks []BlockPatch
		for r := range d.CRCs {
			if d.CRCs[r] == n.scratch[r] {
				continue
			}
			allMatch = false
			n.m.digestMismatchRanges.Add(1)
			lo := r * n.rangeBlocks
			hi := lo + n.rangeBlocks
			if nb := v.DeltaBlocks(); hi > nb {
				hi = nb
			}
			for b := lo; b < hi; b++ {
				var patch BlockPatch
				patch.Blk = uint32(b)
				if err := v.BlockWords(uint32(b), &patch.Words); err != nil {
					panic("replica: digest block read: " + err.Error())
				}
				var zero [bitvec.DeltaBlockWords]uint64
				if patch.Words != zero {
					blocks = append(blocks, patch)
				}
			}
		}
		if len(blocks) > 0 {
			repairs = append(repairs, VectorSection{Vec: d.Vec, Blocks: blocks})
		}
	}
	for _, s := range seen {
		if !s {
			allMatch = false // partial digest can't prove convergence
		}
	}
	if len(repairs) > 0 {
		n.m.repairRounds.Add(1)
		n.buf = EncodeSections(n.buf, FrameRepair, n.id, own, n.geom, 0, repairs)
		n.m.repairFramesSent.Add(1)
		n.m.repairBytesSent.Add(int64(len(n.buf)))
		out(fr.Sender, n.buf)
	}
	p.heardDigest = true
	p.digestOK = allMatch
	if !n.active {
		n.reevaluateReadiness()
	}
}

// reevaluateReadiness promotes Joining→Active once every live peer's
// latest digest fully matched local state. Activation is one-way: a
// later divergence is repaired, not demoted — demotion would let a
// blip of packet loss flap the data path between open and fail-closed.
//
//p2p:confined replnode
func (n *Node) reevaluateReadiness() {
	anyLive := false
	for _, p := range n.peers {
		if !n.live(p) {
			continue
		}
		anyLive = true
		if !p.heardDigest || !p.digestOK {
			return
		}
	}
	if !anyLive {
		return // isolated joiner: stay fail-closed
	}
	n.active = true
	n.m.ready.Store(1)
}
