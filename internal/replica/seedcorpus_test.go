package replica

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzDecodeFrame, mirroring the f.Add seeds so CI
// machines — which run seeds but not the mutation engine — exercise
// every frame type and the classic corruptions from a cold checkout.
// Run with
//
//	P2PBOUND_REGEN_CORPUS=1 go test -run TestRegenFuzzCorpus ./internal/replica
//
// after changing the frame format, and commit the result.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("P2PBOUND_REGEN_CORPUS") == "" {
		t.Skip("set P2PBOUND_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fuzzSeedFrames(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
