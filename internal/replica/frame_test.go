package replica

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

func sampleSections() []VectorSection {
	return []VectorSection{
		{Vec: 0, Blocks: []BlockPatch{
			{Blk: 3, Words: [8]uint64{1, 0, 0xdeadbeef, 0, 0, 0, 0, 1 << 63}},
			{Blk: 17, Words: [8]uint64{0, 2, 0, 0, 0, 0, 0, 0}},
		}},
		{Vec: 2, Blocks: []BlockPatch{
			{Blk: 0, Words: [8]uint64{^uint64(0), 0, 0, 0, 0, 0, 0, 0}},
		}},
	}
}

func TestFrameRoundTrips(t *testing.T) {
	const sender, geom = uint32(7), uint64(0xabcdef0123456789)
	cases := []struct {
		name   string
		encode func() []byte
		check  func(t *testing.T, fr *Frame)
	}{
		{"hello", func() []byte { return EncodeHello(nil, sender, 42, geom) },
			func(t *testing.T, fr *Frame) {
				if fr.Type != FrameHello || len(fr.Sections) != 0 || len(fr.Digests) != 0 {
					t.Fatalf("bad hello: %+v", fr)
				}
			}},
		{"ack", func() []byte { return EncodeAck(nil, sender, 42, geom, 991) },
			func(t *testing.T, fr *Frame) {
				if fr.Type != FrameAck || fr.Seq != 991 {
					t.Fatalf("bad ack: %+v", fr)
				}
			}},
		{"delta", func() []byte { return EncodeSections(nil, FrameDelta, sender, 42, geom, 55, sampleSections()) },
			func(t *testing.T, fr *Frame) {
				if fr.Type != FrameDelta || fr.Seq != 55 || !reflect.DeepEqual(fr.Sections, sampleSections()) {
					t.Fatalf("bad delta: %+v", fr)
				}
			}},
		{"repair", func() []byte { return EncodeSections(nil, FrameRepair, sender, 42, geom, 0, sampleSections()) },
			func(t *testing.T, fr *Frame) {
				if fr.Type != FrameRepair || !reflect.DeepEqual(fr.Sections, sampleSections()) {
					t.Fatalf("bad repair: %+v", fr)
				}
			}},
		{"digest", func() []byte {
			return EncodeDigest(nil, sender, 42, geom, 16, []VectorDigest{
				{Vec: 0, CRCs: []uint32{1, 2, 3}},
				{Vec: 3, CRCs: []uint32{0xffffffff}},
			})
		},
			func(t *testing.T, fr *Frame) {
				if fr.Type != FrameDigest || fr.BlocksPerRange != 16 ||
					len(fr.Digests) != 2 || fr.Digests[1].CRCs[0] != 0xffffffff {
					t.Fatalf("bad digest: %+v", fr)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.encode()
			fr, err := DecodeFrame(data)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Sender != sender || fr.Epoch != 42 || fr.Geom != geom {
				t.Fatalf("header mismatch: %+v", fr)
			}
			tc.check(t, fr)
		})
	}
}

// TestFrameEncodeReusesBuffer: encoding into a previously returned
// buffer must not leave stale bytes behind.
func TestFrameEncodeReusesBuffer(t *testing.T) {
	buf := EncodeSections(nil, FrameDelta, 1, 9, 5, 3, sampleSections())
	buf = EncodeHello(buf, 2, 10, 6)
	fr, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != FrameHello || fr.Sender != 2 || fr.Epoch != 10 || fr.Geom != 6 {
		t.Fatalf("reused-buffer hello decoded wrong: %+v", fr)
	}
}

func refix(data []byte) []byte {
	// Recompute payload length and CRC after a structural mutation so
	// only the targeted defect remains.
	return finish(data[:len(data)-frameTrailerLen])
}

func TestFrameRejections(t *testing.T) {
	good := func() []byte { return EncodeSections(nil, FrameDelta, 1, 2, 3, 4, sampleSections()) }
	digest := func() []byte {
		return EncodeDigest(nil, 1, 2, 3, 16, []VectorDigest{{Vec: 0, CRCs: []uint32{1}}})
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", good()[:frameHeaderLen+frameTrailerLen-1], ErrFrameMalformed},
		{"magic", func() []byte { d := good(); d[0] ^= 0xff; return refix(d) }(), ErrFrameMagic},
		{"version", func() []byte { d := good(); d[4] = 9; return refix(d) }(), ErrFrameVersion},
		{"paylen", func() []byte {
			d := good()
			binary.LittleEndian.PutUint32(d[28:], 1<<30)
			// CRC left stale on purpose: length is checked first.
			return d
		}(), ErrFrameMalformed},
		{"checksum", func() []byte { d := good(); d[frameHeaderLen+3] ^= 1; return d }(), ErrFrameChecksum},
		{"trailer", func() []byte { d := good(); d[len(d)-1] ^= 1; return d }(), ErrFrameChecksum},
		{"unknown-type", func() []byte { d := good(); d[5] = 99; return refix(d) }(), ErrFrameMalformed},
		{"hello-payload", func() []byte {
			d := EncodeHello(nil, 1, 2, 3)
			return finish(append(d[:len(d)-frameTrailerLen], 0xaa))
		}(), ErrFrameMalformed},
		{"ack-short", func() []byte {
			d := EncodeAck(nil, 1, 2, 3, 4)
			return finish(d[:len(d)-frameTrailerLen-1])
		}(), ErrFrameMalformed},
		{"section-count", func() []byte {
			d := good()
			binary.LittleEndian.PutUint32(d[frameHeaderLen+8:], 1<<31)
			return refix(d)
		}(), ErrFrameMalformed},
		{"block-count", func() []byte {
			d := good()
			binary.LittleEndian.PutUint32(d[frameHeaderLen+16:], 1<<31)
			return refix(d)
		}(), ErrFrameMalformed},
		{"section-trailing", func() []byte {
			d := good()
			d = append(d[:len(d)-frameTrailerLen], 0xbb)
			return refix(d)
		}(), ErrFrameMalformed},
		{"digest-count", func() []byte {
			d := digest()
			binary.LittleEndian.PutUint32(d[frameHeaderLen+4:], 1<<31)
			return refix(d)
		}(), ErrFrameMalformed},
		{"digest-crc-count", func() []byte {
			d := digest()
			binary.LittleEndian.PutUint32(d[frameHeaderLen+12:], 1<<31)
			return refix(d)
		}(), ErrFrameMalformed},
	}
	sentinels := []error{ErrFrameMagic, ErrFrameVersion, ErrFrameChecksum, ErrFrameMalformed, ErrGeometry}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr, err := DecodeFrame(tc.data)
			if err == nil {
				t.Fatalf("decoded a %s frame: %+v", tc.name, fr)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			matched := 0
			for _, s := range sentinels {
				if errors.Is(err, s) {
					matched++
				}
			}
			if matched != 1 {
				t.Fatalf("error %v matches %d sentinels, want exactly 1", err, matched)
			}
		})
	}
}

func TestFrameTypeString(t *testing.T) {
	for _, tc := range []struct {
		t    FrameType
		want string
	}{
		{FrameHello, "hello"}, {FrameDelta, "delta"}, {FrameAck, "ack"},
		{FrameDigest, "digest"}, {FrameRepair, "repair"}, {FrameType(77), "frametype(77)"},
	} {
		if got := tc.t.String(); got != tc.want {
			t.Fatalf("FrameType(%d).String() = %q, want %q", tc.t, got, tc.want)
		}
	}
}

// TestFrameEncodeInverse: Frame.Encode must reproduce, byte for byte,
// the wire form a decoded frame came from, for every frame type.
func TestFrameEncodeInverse(t *testing.T) {
	wires := map[string][]byte{
		"hello":  EncodeHello(nil, 7, 42, 0xabcdef0123456789),
		"ack":    EncodeAck(nil, 7, 42, 0xabcdef0123456789, 991),
		"delta":  EncodeSections(nil, FrameDelta, 7, 42, 0xabcdef0123456789, 55, sampleSections()),
		"repair": EncodeSections(nil, FrameRepair, 7, 42, 0xabcdef0123456789, 0, sampleSections()),
		"digest": EncodeDigest(nil, 7, 42, 0xabcdef0123456789, 16, []VectorDigest{{Vec: 0, CRCs: []uint32{1, 2, 3}}}),
	}
	for name, wire := range wires {
		t.Run(name, func(t *testing.T) {
			fr, err := DecodeFrame(wire)
			if err != nil {
				t.Fatal(err)
			}
			out, err := fr.Encode(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out, wire) {
				t.Fatalf("re-encode differs:\n got %x\nwant %x", out, wire)
			}
		})
	}
	if _, err := (&Frame{Type: FrameType(77)}).Encode(nil); !errors.Is(err, ErrFrameMalformed) {
		t.Fatalf("unknown type: got %v, want ErrFrameMalformed", err)
	}
}
