// Package replica turns a fleet of bitmap-filter limiters behind ECMP
// into one logical filter. Each node exports the XOR of dirty 512-bit
// blocks since the last fleet-acknowledged state (delta sync), peers
// periodically exchange per-block-range CRC32C digests and push only
// divergent ranges (anti-entropy repair), and a membership handshake
// aligns rotation epochs and fail-closes rejoining nodes until their
// first full digest round matches (see DESIGN.md §14).
//
// The one invariant everything here defends: replication may add
// false positives, never false negatives. Merges are bitwise-OR
// unions, vector generations are derived from the rotation count so a
// delta can never land in a vector of a different age, and a frame
// that fails any validation is rejected whole — the filter is not
// touched by a single byte of it.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"p2pbound/internal/bitvec"
)

// FrameType discriminates replication frames.
type FrameType uint8

// Frame types.
const (
	// FrameHello announces (re)joining: carries only the header. A
	// receiver answers with a unicast digest so the joiner repairs
	// without waiting for the next digest round.
	FrameHello FrameType = iota + 1
	// FrameDelta carries XOR'd dirty blocks since the sender's acked
	// shadow, tagged with a cumulative sequence number.
	FrameDelta
	// FrameAck acknowledges every delta up to a sequence number.
	FrameAck
	// FrameDigest carries per-vector, per-block-range CRC32C digests
	// of the sender's state.
	FrameDigest
	// FrameRepair pushes full block contents for ranges a digest
	// exchange found divergent.
	FrameRepair
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameDelta:
		return "delta"
	case FrameAck:
		return "ack"
	case FrameDigest:
		return "digest"
	case FrameRepair:
		return "repair"
	default:
		return fmt.Sprintf("frametype(%d)", int(t))
	}
}

// Wire format. Little-endian, mirroring the snapshot format; the
// trailing CRC32C (Castagnoli, same polynomial as snapshots) covers
// every preceding byte, so a corrupt frame is rejected before any of
// it is interpreted against filter state.
//
//	offset size  field
//	0      4     magic "RPF1"
//	4      1     version (1)
//	5      1     frame type
//	6      2     flags (reserved, zero)
//	8      4     sender replica ID
//	12     8     epoch: the sender's rotation count
//	20     8     geometry fingerprint (see Fingerprint)
//	28     4     payload length
//	32     n     payload (per-type, see decodePayload)
//	32+n   4     CRC32C over bytes [0, 32+n)
const (
	frameMagic      = 0x52504631 // "RPF1"
	frameVersion    = 1
	frameHeaderLen  = 32
	frameTrailerLen = 4
)

// castagnoli is the shared CRC32C table.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed decode-rejection sentinels, fuzz-asserted like the snapshot
// ones in internal/core.
var (
	// ErrFrameMagic: not a replication frame.
	ErrFrameMagic = errors.New("replica: bad frame magic")
	// ErrFrameVersion: a frame from an incompatible protocol version.
	ErrFrameVersion = errors.New("replica: unsupported frame version")
	// ErrFrameChecksum: the CRC32C trailer does not match.
	ErrFrameChecksum = errors.New("replica: frame checksum mismatch")
	// ErrFrameMalformed: truncation, length mismatch, or a payload
	// whose structure contradicts its framing.
	ErrFrameMalformed = errors.New("replica: malformed frame")
	// ErrGeometry: a structurally valid frame whose geometry
	// fingerprint or block coordinates do not fit this node's filter.
	ErrGeometry = errors.New("replica: frame geometry mismatch")
)

// BlockPatch is one 512-bit block of delta or repair payload.
//
//p2p:codec
type BlockPatch struct {
	Blk   uint32
	Words [bitvec.DeltaBlockWords]uint64
}

// VectorSection groups the patches of one bit vector.
//
//p2p:codec
type VectorSection struct {
	Vec    uint32
	Blocks []BlockPatch
}

// VectorDigest is one vector's range digests.
//
//p2p:codec
type VectorDigest struct {
	Vec  uint32
	CRCs []uint32
}

// Frame is a decoded replication frame. Frame.Encode is DecodeFrame's
// inverse; the codecparity analyzer holds the two field sets equal.
//
//p2p:codec
type Frame struct {
	Type   FrameType
	Sender uint32
	// Epoch is the sender's rotation count, the fleet's logical clock
	// for vector generations.
	Epoch uint64
	// Geom fingerprints the sender's filter geometry; a receiver
	// rejects frames whose fingerprint differs from its own.
	Geom uint64
	// Seq is the cumulative delta sequence (Delta) or the acknowledged
	// sequence (Ack).
	Seq uint64
	// BlocksPerRange is the digest range width (Digest only).
	BlocksPerRange uint32
	// Sections carry block patches (Delta, Repair).
	Sections []VectorSection
	// Digests carry range CRCs (Digest only).
	Digests []VectorDigest
}

// sectionHeaderLen and patchLen size the Delta/Repair payload pieces.
const (
	sectionHeaderLen = 8 // vec u32 + nblocks u32
	patchLen         = 4 + bitvec.DeltaBlockBytes
)

// appendHeader writes the fixed header (sans payload length, patched
// later) and returns dst.
func appendHeader(dst []byte, t FrameType, sender uint32, epoch int64, geom uint64) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = frameVersion
	hdr[5] = byte(t)
	binary.LittleEndian.PutUint32(hdr[8:], sender)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(epoch))
	binary.LittleEndian.PutUint64(hdr[20:], geom)
	return append(dst, hdr[:]...)
}

// finish patches the payload length and appends the CRC trailer.
func finish(frame []byte) []byte {
	binary.LittleEndian.PutUint32(frame[28:], uint32(len(frame)-frameHeaderLen))
	var tr [frameTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(frame, castagnoli))
	return append(frame, tr[:]...)
}

// EncodeHello renders a Hello frame into dst[:0]'s storage.
func EncodeHello(dst []byte, sender uint32, epoch int64, geom uint64) []byte {
	return finish(appendHeader(dst[:0], FrameHello, sender, epoch, geom))
}

// EncodeAck renders an Ack frame.
func EncodeAck(dst []byte, sender uint32, epoch int64, geom uint64, seq uint64) []byte {
	frame := appendHeader(dst[:0], FrameAck, sender, epoch, geom)
	frame = binary.LittleEndian.AppendUint64(frame, seq)
	return finish(frame)
}

// EncodeSections renders a Delta (with its sequence number) or Repair
// (seq 0) frame from per-vector block patches.
//
//p2p:codec replframe encode
func EncodeSections(dst []byte, t FrameType, sender uint32, epoch int64, geom uint64, seq uint64, secs []VectorSection) []byte {
	frame := appendHeader(dst[:0], t, sender, epoch, geom)
	frame = binary.LittleEndian.AppendUint64(frame, seq)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(secs)))
	for _, sec := range secs {
		frame = binary.LittleEndian.AppendUint32(frame, sec.Vec)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(sec.Blocks)))
		for _, p := range sec.Blocks {
			frame = binary.LittleEndian.AppendUint32(frame, p.Blk)
			for _, w := range p.Words {
				frame = binary.LittleEndian.AppendUint64(frame, w)
			}
		}
	}
	return finish(frame)
}

// EncodeDigest renders a Digest frame.
//
//p2p:codec replframe encode
func EncodeDigest(dst []byte, sender uint32, epoch int64, geom uint64, blocksPerRange uint32, digests []VectorDigest) []byte {
	frame := appendHeader(dst[:0], FrameDigest, sender, epoch, geom)
	frame = binary.LittleEndian.AppendUint32(frame, blocksPerRange)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(digests)))
	for _, d := range digests {
		frame = binary.LittleEndian.AppendUint32(frame, d.Vec)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(d.CRCs)))
		for _, c := range d.CRCs {
			frame = binary.LittleEndian.AppendUint32(frame, c)
		}
	}
	return finish(frame)
}

// Encode renders the frame through the per-type encoder matching its
// Type, the inverse of DecodeFrame. Protocol senders build frames with
// the scalar Encode* helpers directly; Encode exists so a fully decoded
// frame round-trips (proxying, capture replay, tests) and so the
// codecparity analyzer can match the encoded field set against the
// decoders'.
//
//p2p:codec replframe encode
func (fr *Frame) Encode(dst []byte) ([]byte, error) {
	switch fr.Type {
	case FrameHello:
		return EncodeHello(dst, fr.Sender, int64(fr.Epoch), fr.Geom), nil
	case FrameAck:
		return EncodeAck(dst, fr.Sender, int64(fr.Epoch), fr.Geom, fr.Seq), nil
	case FrameDelta, FrameRepair:
		return EncodeSections(dst, fr.Type, fr.Sender, int64(fr.Epoch), fr.Geom, fr.Seq, fr.Sections), nil
	case FrameDigest:
		return EncodeDigest(dst, fr.Sender, int64(fr.Epoch), fr.Geom, fr.BlocksPerRange, fr.Digests), nil
	default:
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrFrameMalformed, int(fr.Type))
	}
}

// DecodeFrame parses and fully validates one frame. On any error the
// returned frame is nil: a frame is either completely decoded —
// structure, lengths, and checksum all verified — or completely
// rejected, so a receiver can never half-apply a corrupt frame.
// Robustness contract (held by FuzzDecodeFrame): arbitrary input
// yields a typed error or a valid frame, never a panic and never an
// allocation beyond the input's own framing.
//
//p2p:codec replframe decode
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < frameHeaderLen+frameTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrFrameMalformed, len(data), frameHeaderLen+frameTrailerLen)
	}
	if got := binary.LittleEndian.Uint32(data[0:]); got != frameMagic {
		return nil, fmt.Errorf("%w: %#x", ErrFrameMagic, got)
	}
	if data[4] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrFrameVersion, data[4])
	}
	plen := binary.LittleEndian.Uint32(data[28:])
	if uint64(plen) != uint64(len(data)-frameHeaderLen-frameTrailerLen) {
		return nil, fmt.Errorf("%w: payload length %d in a %d-byte frame", ErrFrameMalformed, plen, len(data))
	}
	body := data[:len(data)-frameTrailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-frameTrailerLen:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: stored %#x, computed %#x", ErrFrameChecksum, want, got)
	}
	fr := &Frame{
		Type:   FrameType(data[5]),
		Sender: binary.LittleEndian.Uint32(data[8:]),
		Epoch:  binary.LittleEndian.Uint64(data[12:]),
		Geom:   binary.LittleEndian.Uint64(data[20:]),
	}
	if err := fr.decodePayload(body[frameHeaderLen:]); err != nil {
		return nil, err
	}
	return fr, nil
}

// decodePayload parses the per-type payload, already checksummed.
//
//p2p:codec replframe decode
func (fr *Frame) decodePayload(p []byte) error {
	switch fr.Type {
	case FrameHello:
		if len(p) != 0 {
			return fmt.Errorf("%w: hello with %d payload bytes", ErrFrameMalformed, len(p))
		}
		return nil
	case FrameAck:
		if len(p) != 8 {
			return fmt.Errorf("%w: ack payload %d bytes, want 8", ErrFrameMalformed, len(p))
		}
		fr.Seq = binary.LittleEndian.Uint64(p)
		return nil
	case FrameDelta, FrameRepair:
		return fr.decodeSections(p)
	case FrameDigest:
		return fr.decodeDigests(p)
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrFrameMalformed, int(fr.Type))
	}
}

//p2p:codec replframe decode
func (fr *Frame) decodeSections(p []byte) error {
	if len(p) < 12 {
		return fmt.Errorf("%w: section payload %d bytes", ErrFrameMalformed, len(p))
	}
	fr.Seq = binary.LittleEndian.Uint64(p)
	nsec := binary.LittleEndian.Uint32(p[8:])
	p = p[12:]
	// Every section costs ≥ sectionHeaderLen bytes, so nsec is bounded
	// by the (checksummed) payload itself — no allocation amplification.
	if uint64(nsec)*sectionHeaderLen > uint64(len(p)) {
		return fmt.Errorf("%w: %d sections in %d payload bytes", ErrFrameMalformed, nsec, len(p))
	}
	fr.Sections = make([]VectorSection, 0, nsec)
	for s := uint32(0); s < nsec; s++ {
		if len(p) < sectionHeaderLen {
			return fmt.Errorf("%w: truncated section header", ErrFrameMalformed)
		}
		vec := binary.LittleEndian.Uint32(p)
		nblk := binary.LittleEndian.Uint32(p[4:])
		p = p[sectionHeaderLen:]
		if uint64(nblk)*patchLen > uint64(len(p)) {
			return fmt.Errorf("%w: %d blocks in %d payload bytes", ErrFrameMalformed, nblk, len(p))
		}
		sec := VectorSection{Vec: vec, Blocks: make([]BlockPatch, nblk)}
		for b := uint32(0); b < nblk; b++ {
			sec.Blocks[b].Blk = binary.LittleEndian.Uint32(p)
			for w := range sec.Blocks[b].Words {
				sec.Blocks[b].Words[w] = binary.LittleEndian.Uint64(p[4+8*w:])
			}
			p = p[patchLen:]
		}
		fr.Sections = append(fr.Sections, sec)
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFrameMalformed, len(p))
	}
	return nil
}

//p2p:codec replframe decode
func (fr *Frame) decodeDigests(p []byte) error {
	if len(p) < 8 {
		return fmt.Errorf("%w: digest payload %d bytes", ErrFrameMalformed, len(p))
	}
	fr.BlocksPerRange = binary.LittleEndian.Uint32(p)
	nvec := binary.LittleEndian.Uint32(p[4:])
	p = p[8:]
	if uint64(nvec)*8 > uint64(len(p)) {
		return fmt.Errorf("%w: %d digest vectors in %d payload bytes", ErrFrameMalformed, nvec, len(p))
	}
	fr.Digests = make([]VectorDigest, 0, nvec)
	for v := uint32(0); v < nvec; v++ {
		if len(p) < 8 {
			return fmt.Errorf("%w: truncated digest header", ErrFrameMalformed)
		}
		vec := binary.LittleEndian.Uint32(p)
		ncrc := binary.LittleEndian.Uint32(p[4:])
		p = p[8:]
		if uint64(ncrc)*4 > uint64(len(p)) {
			return fmt.Errorf("%w: %d range digests in %d payload bytes", ErrFrameMalformed, ncrc, len(p))
		}
		d := VectorDigest{Vec: vec, CRCs: make([]uint32, ncrc)}
		for c := uint32(0); c < ncrc; c++ {
			d.CRCs[c] = binary.LittleEndian.Uint32(p)
			p = p[4:]
		}
		fr.Digests = append(fr.Digests, d)
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFrameMalformed, len(p))
	}
	return nil
}
