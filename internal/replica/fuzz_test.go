package replica

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"p2pbound/internal/core"
)

func fuzzCfg() core.Config {
	return core.Config{K: 2, NBits: 10, M: 2, DeltaT: time.Second}
}

// fuzzSeedFrames builds the seed frames shared by FuzzDecodeFrame and
// the checked-in corpus: one valid frame of every type against the
// fuzz filter's real geometry, plus classic mutations.
func fuzzSeedFrames(tb testing.TB) map[string][]byte {
	tb.Helper()
	geom := Fingerprint(fuzzCfg())
	secs := []VectorSection{
		{Vec: 0, Blocks: []BlockPatch{{Blk: 1, Words: [8]uint64{2, 0, 0, 1, 0, 0, 0, 4}}}},
		{Vec: 1, Blocks: []BlockPatch{{Blk: 0, Words: [8]uint64{1}}}},
	}
	f, err := core.New(fuzzCfg())
	if err != nil {
		tb.Fatal(err)
	}
	ncrc := f.Vector(0).RangeCount(16)
	digests := make([]VectorDigest, 2)
	for v := range digests {
		digests[v] = VectorDigest{Vec: uint32(v), CRCs: make([]uint32, ncrc)}
	}
	delta := EncodeSections(nil, FrameDelta, 2, 0, geom, 3, secs)
	flipped := append([]byte(nil), delta...)
	flipped[len(flipped)/2] ^= 0x20
	return map[string][]byte{
		"seed-hello":     EncodeHello(nil, 2, 0, geom),
		"seed-ack":       EncodeAck(nil, 2, 0, geom, 7),
		"seed-delta":     delta,
		"seed-repair":    EncodeSections(nil, FrameRepair, 2, 0, geom, 0, secs),
		"seed-digest":    EncodeDigest(nil, 2, 0, geom, 16, digests),
		"seed-badgeom":   EncodeHello(nil, 2, 0, geom+1),
		"seed-truncated": delta[:len(delta)-9],
		"seed-flipped":   flipped,
		"seed-empty":     {},
	}
}

// FuzzDecodeFrame holds the frame robustness contract: arbitrary bytes
// yield either a valid frame or exactly one typed sentinel, never a
// panic; a decoded frame re-encodes to a frame that decodes equal; and
// any input a Node rejects leaves its filter — vectors, index, and
// rotation count — byte-for-byte untouched.
func FuzzDecodeFrame(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	filter, err := core.New(fuzzCfg())
	if err != nil {
		f.Fatal(err)
	}
	node, err := NewNode(filter, Config{ID: 1, Peers: []uint32{2}})
	if err != nil {
		f.Fatal(err)
	}
	snapshot := func() []byte {
		var buf bytes.Buffer
		if _, err := filter.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	sentinels := []error{ErrFrameMagic, ErrFrameVersion, ErrFrameChecksum, ErrFrameMalformed, ErrGeometry}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if fr != nil {
				t.Fatal("decode returned a frame AND an error")
			}
			matched := 0
			for _, s := range sentinels {
				if errors.Is(err, s) {
					matched++
				}
			}
			if matched != 1 {
				t.Fatalf("error %v matches %d sentinels, want exactly 1", err, matched)
			}
		} else {
			// Canonical re-encode: the decoded value survives a round
			// trip (flags are reserved-zero, so equality is exact).
			var re []byte
			switch fr.Type {
			case FrameHello:
				re = EncodeHello(nil, fr.Sender, int64(fr.Epoch), fr.Geom)
			case FrameAck:
				re = EncodeAck(nil, fr.Sender, int64(fr.Epoch), fr.Geom, fr.Seq)
			case FrameDelta, FrameRepair:
				re = EncodeSections(nil, fr.Type, fr.Sender, int64(fr.Epoch), fr.Geom, fr.Seq, fr.Sections)
			case FrameDigest:
				re = EncodeDigest(nil, fr.Sender, int64(fr.Epoch), fr.Geom, fr.BlocksPerRange, fr.Digests)
			default:
				t.Fatalf("decoded unknown type %d", fr.Type)
			}
			fr2, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-encode failed to decode: %v", err)
			}
			if !reflect.DeepEqual(fr, fr2) {
				t.Fatalf("re-encode round trip diverged:\n%+v\n%+v", fr, fr2)
			}
		}
		// Atomic rejection at the node level: a rejected frame leaves
		// filter state untouched (accepted frames may mutate freely).
		before := snapshot()
		if err := node.Handle(data, func(uint32, []byte) {}); err != nil {
			if !bytes.Equal(before, snapshot()) {
				t.Fatalf("rejected frame (%v) mutated filter state", err)
			}
		}
	})
}
