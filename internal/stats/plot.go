package stats

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders an (x, y) series as a fixed-size ASCII chart, used by
// benchreport to show each figure's shape directly in the terminal.
type AsciiPlot struct {
	Width  int // plot columns (default 60)
	Height int // plot rows (default 12)
	XLabel string
	YLabel string
}

// Lines renders one or more series into the same axes, each with its own
// glyph. Series are drawn in order, so later ones overdraw earlier ones.
func (p AsciiPlot) Lines(series []Series) string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range series {
		for _, pt := range s.Points {
			empty = false
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	if empty {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		for _, pt := range s.Points {
			col := int(float64(width-1) * (pt.X - minX) / (maxX - minX))
			row := int(float64(height-1) * (pt.Y - minY) / (maxY - minY))
			grid[height-1-row][col] = glyph
		}
	}

	var b strings.Builder
	if p.YLabel != "" {
		fmt.Fprintf(&b, "  %s\n", p.YLabel)
	}
	for i, row := range grid {
		y := maxY - (maxY-minY)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10.3g |%s|\n", y, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	if p.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", p.XLabel)
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		if s.Name == "" {
			continue
		}
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		legend = append(legend, fmt.Sprintf("%c = %s", glyph, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%10s  [%s]\n", "", strings.Join(legend, ", "))
	}
	return b.String()
}

// Series is one named point set for AsciiPlot.
type Series struct {
	Name   string
	Glyph  byte
	Points []Point
}

// SeriesFromRates converts a per-bucket rate slice into (second, value)
// points.
func SeriesFromRates(name string, glyph byte, rates []float64) Series {
	pts := make([]Point, len(rates))
	for i, r := range rates {
		pts[i] = Point{X: float64(i), Y: r}
	}
	return Series{Name: name, Glyph: glyph, Points: pts}
}
