package stats

import (
	"strings"
	"testing"
)

func TestAsciiPlotEmpty(t *testing.T) {
	var p AsciiPlot
	if got := p.Lines(nil); got != "(no data)\n" {
		t.Fatalf("empty plot = %q", got)
	}
	if got := p.Lines([]Series{{Name: "x"}}); got != "(no data)\n" {
		t.Fatalf("empty series plot = %q", got)
	}
}

func TestAsciiPlotGeometry(t *testing.T) {
	p := AsciiPlot{Width: 20, Height: 5, XLabel: "t", YLabel: "v"}
	out := p.Lines([]Series{{
		Name:  "ramp",
		Glyph: '*',
		Points: []Point{
			{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3},
		},
	}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// ylabel + 5 rows + axis + xscale + xlabel + legend = 10 lines
	if len(lines) != 10 {
		t.Fatalf("plot lines = %d:\n%s", len(lines), out)
	}
	// A monotone ramp must place glyphs on the rising diagonal: the top
	// row holds the max, the bottom data row the min.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("top row missing glyph:\n%s", out)
	}
	if !strings.Contains(lines[5], "*") {
		t.Fatalf("bottom row missing glyph:\n%s", out)
	}
	if !strings.Contains(out, "[* = ramp]") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "v") || !strings.Contains(out, "t") {
		t.Fatal("axis labels missing")
	}
}

func TestAsciiPlotMultipleSeries(t *testing.T) {
	p := AsciiPlot{Width: 10, Height: 4}
	out := p.Lines([]Series{
		{Name: "a", Glyph: '.', Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}},
		{Name: "b", Glyph: '#', Points: []Point{{X: 0, Y: 1}, {X: 1, Y: 1}}},
	})
	if !strings.Contains(out, ".") || !strings.Contains(out, "#") {
		t.Fatalf("both glyphs must appear:\n%s", out)
	}
}

func TestAsciiPlotDegenerateRanges(t *testing.T) {
	p := AsciiPlot{Width: 10, Height: 4}
	// A single point (zero x and y span) must not divide by zero.
	out := p.Lines([]Series{{Points: []Point{{X: 5, Y: 7}}}})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestSeriesFromRates(t *testing.T) {
	s := SeriesFromRates("up", '#', []float64{1, 2, 3})
	if len(s.Points) != 3 || s.Points[2].X != 2 || s.Points[2].Y != 3 {
		t.Fatalf("series = %+v", s)
	}
}
