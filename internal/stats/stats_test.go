package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Max()) {
		t.Fatal("empty CDF must yield NaN summaries")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF Points != nil")
	}
}

func TestCDFBasics(t *testing.T) {
	var c CDF
	for _, x := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.Add(x)
	}
	if got := c.N(); got != 10 {
		t.Fatalf("N = %d", got)
	}
	if got := c.At(5); got != 0.5 {
		t.Fatalf("At(5) = %g", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %g", got)
	}
	if got := c.At(100); got != 1 {
		t.Fatalf("At(100) = %g", got)
	}
	if got := c.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %g", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %g", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %g", got)
	}
	if got := c.Mean(); got != 5.5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := c.Max(); got != 10 {
		t.Fatalf("Max = %g", got)
	}
}

func TestCDFAddDuration(t *testing.T) {
	var c CDF
	c.AddDuration(1500 * time.Millisecond)
	if got := c.Quantile(1); got != 1.5 {
		t.Fatalf("duration sample = %g", got)
	}
}

// TestCDFMonotonic property: At is monotone non-decreasing and Quantile is
// consistent with At.
func TestCDFMonotonic(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		if len(samples) == 0 {
			return true
		}
		var c CDF
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			c.Add(s)
		}
		if c.N() == 0 {
			return true
		}
		if a > b {
			a, b = b, a
		}
		if c.At(a) > c.At(b) {
			return false
		}
		q := c.Quantile(0.5)
		return c.At(q) >= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y }) {
		t.Fatal("points not monotone in Y")
	}
	if last := pts[len(pts)-1]; last.X != 100 || last.Y != 1 {
		t.Fatalf("last point = %+v", last)
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 5); err == nil {
		t.Fatal("zero width accepted")
	}
	h, err := NewHistogram(10, 3) // bins [0,10) [10,20) [20,30)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 5, 9.99, 15, 25, 31, -3} {
		h.Add(x)
	}
	counts := h.Counts()
	if counts[0] != 4 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if h.Overflow() != 1 || h.Total() != 7 {
		t.Fatalf("overflow=%d total=%d", h.Overflow(), h.Total())
	}
	if h.BinStart(2) != 20 {
		t.Fatalf("BinStart(2) = %g", h.BinStart(2))
	}
}

func TestTimeSeries(t *testing.T) {
	if _, err := NewTimeSeries(0); err == nil {
		t.Fatal("zero bucket accepted")
	}
	ts, err := NewTimeSeries(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts.Add(0, 125_000)              // 1 Mbit in second 0
	ts.Add(500*time.Millisecond, 0) // same bucket
	ts.Add(2*time.Second, 250_000)  // 2 Mbit in second 2
	rates := ts.Rates()
	if len(rates) != 3 {
		t.Fatalf("buckets = %d", len(rates))
	}
	if rates[0] != 1e6 || rates[1] != 0 || rates[2] != 2e6 {
		t.Fatalf("rates = %v", rates)
	}
	if got := ts.TotalBytes(); got != 375_000 {
		t.Fatalf("total = %d", got)
	}
	if got := ts.MeanRate(); got != 1e6 {
		t.Fatalf("mean rate = %g", got)
	}
	if got := ts.MaxRate(); got != 2e6 {
		t.Fatalf("max rate = %g", got)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts, err := NewTimeSeries(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ts.MeanRate() != 0 || ts.MaxRate() != 0 || ts.TotalBytes() != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestFormatters(t *testing.T) {
	if got := Mbps(146.7e6); got != "146.70 Mbps" {
		t.Fatalf("Mbps = %q", got)
	}
	if got := Pct(0.0151); got != "1.51%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"Name", "Value"}, [][]string{
		{"alpha", "1"},
		{"beta-long", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	// Columns align: "Value" starts at the same offset in every row.
	col := strings.Index(lines[0], "Value")
	if lines[2][col:col+1] != "1" && lines[3][col:col+2] != "22" {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
