// Package stats provides the small statistical toolkit shared by the
// experiments: empirical CDFs and quantiles (for the port, lifetime and
// delay distributions of Figures 2–5), fixed-width histograms, and
// time-bucketed throughput series (for the Figure 9 plots).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// AddDuration appends a duration sample in seconds.
func (c *CDF) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

// Merge appends every sample of o.
func (c *CDF) Merge(o *CDF) {
	if len(o.samples) == 0 {
		return
	}
	c.samples = append(c.samples, o.samples...)
	c.sorted = false
}

// At returns the fraction of samples ≤ x (0 when empty).
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	// First index with sample > x.
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-quantile (q in [0,1]) by the nearest-rank method.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.samples[rank]
}

// Mean returns the sample mean (NaN when empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range c.samples {
		sum += x
	}
	return sum / float64(len(c.samples))
}

// Max returns the largest sample (NaN when empty).
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Points returns up to n evenly spaced (x, F(x)) points suitable for
// plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		rank := (i + 1) * len(c.samples) / n
		if rank == 0 {
			rank = 1
		}
		pts = append(pts, Point{
			X: c.samples[rank-1],
			Y: float64(rank) / float64(len(c.samples)),
		})
	}
	return pts
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Point is an (x, y) pair of a plotted series.
type Point struct {
	X, Y float64
}

// Histogram counts samples into fixed-width bins over [0, width·bins);
// samples beyond the range accumulate in an overflow bin.
type Histogram struct {
	width    float64
	counts   []int64
	overflow int64
	total    int64
}

// NewHistogram builds a histogram of n bins of the given width.
func NewHistogram(width float64, n int) (*Histogram, error) {
	if width <= 0 || n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive width and bins, got %g×%d", width, n)
	}
	return &Histogram{width: width, counts: make([]int64, n)}, nil
}

// Add counts a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Overflow returns the count of samples beyond the binned range.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Total returns the total number of samples.
func (h *Histogram) Total() int64 { return h.total }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return float64(i) * h.width }

// TimeSeries accumulates per-bucket byte counts over simulated time and
// reports them as a bits-per-second series — the black/gray curves of
// Figure 9.
type TimeSeries struct {
	bucket  time.Duration
	buckets []int64
}

// NewTimeSeries builds a series with the given bucket width.
func NewTimeSeries(bucket time.Duration) (*TimeSeries, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("stats: bucket width must be positive, got %v", bucket)
	}
	return &TimeSeries{bucket: bucket}, nil
}

// Add accounts n bytes at simulated time ts.
func (t *TimeSeries) Add(ts time.Duration, n int) {
	i := int(ts / t.bucket)
	if i < 0 {
		i = 0
	}
	for len(t.buckets) <= i {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[i] += int64(n)
}

// Rates returns the per-bucket throughput in bits per second.
func (t *TimeSeries) Rates() []float64 {
	out := make([]float64, len(t.buckets))
	secs := t.bucket.Seconds()
	for i, b := range t.buckets {
		out[i] = float64(b*8) / secs
	}
	return out
}

// TotalBytes returns the sum over all buckets.
func (t *TimeSeries) TotalBytes() int64 {
	var sum int64
	for _, b := range t.buckets {
		sum += b
	}
	return sum
}

// MeanRate returns the average throughput in bits per second across the
// series (0 when empty).
func (t *TimeSeries) MeanRate() float64 {
	if len(t.buckets) == 0 {
		return 0
	}
	span := t.bucket.Seconds() * float64(len(t.buckets))
	return float64(t.TotalBytes()*8) / span
}

// MaxRate returns the peak bucket throughput in bits per second.
func (t *TimeSeries) MaxRate() float64 {
	max := 0.0
	for _, r := range t.Rates() {
		if r > max {
			max = r
		}
	}
	return max
}

// Mbps formats a bits-per-second value as megabits per second.
func Mbps(bps float64) string {
	return fmt.Sprintf("%.2f Mbps", bps/1e6)
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string {
	return fmt.Sprintf("%.2f%%", f*100)
}

// Table renders rows of cells as an aligned text table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
