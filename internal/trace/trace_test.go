package trace

import (
	"testing"
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig(10*time.Second, 0.05, 1)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"zero rate", func(c *Config) { c.ConnsPerSec = 0 }},
		{"zero bandwidth", func(c *Config) { c.TargetMbps = 0 }},
		{"zero clients", func(c *Config) { c.Clients = 0 }},
		{"bad reuse prob", func(c *Config) { c.PortReuseProb = 1.5 }},
		{"bad slow prob", func(c *Config) { c.SlowResponseProb = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestGenerateTinyTrace(t *testing.T) {
	cfg := DefaultConfig(time.Second, 0.004, 2) // ≈1 connection
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) == 0 {
		t.Fatal("tiny trace produced no flows")
	}
}

func TestGenerateSingleClient(t *testing.T) {
	cfg := DefaultConfig(5*time.Second, 0.03, 6)
	cfg.Clients = 1
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.ClientNet.Prefix + 2
	for i := range tr.Flows {
		if tr.Flows[i].Client != want {
			t.Fatalf("flow %d uses client %v, want %v", i, tr.Flows[i].Client, want)
		}
	}
}

func TestGroupsOverride(t *testing.T) {
	cfg := DefaultConfig(10*time.Second, 0.05, 3)
	cfg.Groups = map[string]GroupShare{
		"HTTP": {ConnFrac: 1.0, ByteFrac: 1.0},
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) == 0 {
		t.Fatal("no flows")
	}
	for i := range tr.Flows {
		if tr.Flows[i].App != l7.HTTP {
			t.Fatalf("flow %d is %v, want pure-HTTP trace", i, tr.Flows[i].App)
		}
	}
}

// TestFlowPairOrientation: a flow's Pair() puts the initiator as source.
func TestFlowPairOrientation(t *testing.T) {
	f := Flow{
		Proto:      packet.TCP,
		Client:     packet.AddrFrom4(140, 112, 0, 2),
		ClientPort: 1000,
		Remote:     packet.AddrFrom4(8, 8, 8, 8),
		RemotePort: 2000,
		Initiator:  packet.Outbound,
	}
	pair := f.Pair()
	if pair.SrcAddr != f.Client || pair.DstAddr != f.Remote {
		t.Fatalf("outbound-initiated pair = %v", pair)
	}
	f.Initiator = packet.Inbound
	pair = f.Pair()
	if pair.SrcAddr != f.Remote || pair.DstAddr != f.Client {
		t.Fatalf("inbound-initiated pair = %v", pair)
	}
}

// TestFlowsMatchPackets: every flow with a Start inside the window emits
// at least one packet carrying its five tuple (in some orientation).
func TestFlowsMatchPackets(t *testing.T) {
	tr, err := Generate(DefaultConfig(20*time.Second, 0.03, 12))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[packet.SocketPair]bool, len(tr.Packets))
	for i := range tr.Packets {
		seen[tr.Packets[i].Pair] = true
	}
	missing := 0
	for i := range tr.Flows {
		f := &tr.Flows[i]
		if f.Start >= tr.Config.Duration {
			continue
		}
		pair := f.Pair()
		if !seen[pair] && !seen[pair.Inverse()] {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d in-window flows emitted no packets", missing)
	}
}

// TestTraceString smoke-checks the Stringer.
func TestTraceString(t *testing.T) {
	tr, err := Generate(DefaultConfig(time.Second, 0.01, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() == "" {
		t.Fatal("empty String()")
	}
}
