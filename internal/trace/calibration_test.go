package trace

import (
	"math"
	"testing"
	"time"

	"p2pbound/internal/analyzer"
	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
)

// calibTrace generates the shared calibration trace once per test binary.
var calibTrace = func() *Trace {
	cfg := DefaultConfig(120*time.Second, 0.08, 42)
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}()

func calibReport(t *testing.T) *analyzer.Report {
	t.Helper()
	a, err := analyzer.New(analyzer.DefaultConfig(calibTrace.Config.ClientNet))
	if err != nil {
		t.Fatal(err)
	}
	for i := range calibTrace.Packets {
		a.Feed(&calibTrace.Packets[i])
	}
	a.FinalizePortIdent()
	return a.BuildReport()
}

// within asserts got ∈ [lo, hi].
func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.4f, want within [%.4f, %.4f]", name, got, lo, hi)
	}
}

// TestCalibrationSummary checks the Section 3.3 aggregate statistics: the
// TCP/UDP connection mix, the byte shares, and the dominance of upload
// traffic carried on inbound-initiated connections.
func TestCalibrationSummary(t *testing.T) {
	r := calibReport(t)
	s := r.Summary
	t.Logf("connections=%d span=%v meanMbps=%.1f", s.Connections, s.Span, s.MeanMbps)
	t.Logf("tcpConn=%.3f udpConn=%.3f tcpBytes=%.4f upBytes=%.3f upOnInbound=%.3f",
		s.TCPConnFrac, s.UDPConnFrac, s.TCPByteFrac, s.UploadByteFrac, s.UploadOnInbound)

	if s.Connections < 1000 {
		t.Fatalf("trace too small: %d connections", s.Connections)
	}
	// Paper: 29.8 % TCP / 70.1 % UDP connections.
	within(t, "TCP connection fraction", s.TCPConnFrac, 0.24, 0.36)
	// Paper: 99.5 % of bytes are TCP.
	within(t, "TCP byte fraction", s.TCPByteFrac, 0.985, 1.0)
	// Paper: 89.8 % of bytes are upload.
	within(t, "upload byte fraction", s.UploadByteFrac, 0.78, 0.95)
	// Paper: 80 % of outbound bytes ride inbound-initiated connections.
	within(t, "upload on inbound-initiated", s.UploadOnInbound, 0.68, 0.90)
}

// TestCalibrationTable2 checks that the analyzer reconstructs the Table 2
// protocol distribution from the generated packets.
func TestCalibrationTable2(t *testing.T) {
	want := map[string]GroupShare{
		"HTTP":       {ConnFrac: 0.0217, ByteFrac: 0.05},
		"bittorrent": {ConnFrac: 0.4790, ByteFrac: 0.18},
		"gnutella":   {ConnFrac: 0.0756, ByteFrac: 0.16},
		"edonkey":    {ConnFrac: 0.2200, ByteFrac: 0.21},
		"UNKNOWN":    {ConnFrac: 0.1755, ByteFrac: 0.35},
		"Others":     {ConnFrac: 0.0282, ByteFrac: 0.05},
	}
	r := calibReport(t)
	got := make(map[string]analyzer.Table2Row, len(r.Table2))
	for _, row := range r.Table2 {
		got[row.Group] = row
		t.Logf("%-11s conns=%.4f bytes=%.4f", row.Group, row.Connections, row.Utilization)
	}
	for group, share := range want {
		row, ok := got[group]
		if !ok {
			t.Errorf("group %s missing from Table 2", group)
			continue
		}
		// Identification is imperfect by design (truncated flows missing
		// their SYN stay UNKNOWN), so allow generous relative bands.
		within(t, group+" connection share", row.Connections, share.ConnFrac*0.6, share.ConnFrac*1.45+0.02)
		within(t, group+" utilization", row.Utilization, share.ByteFrac*0.5, share.ByteFrac*1.6+0.03)
	}
}

// TestCalibrationLifetimes checks the Figure 4 lifetime distribution:
// ≈90 % under 45 s, ≈95 % under 4 minutes, below 2 % beyond 810 s.
func TestCalibrationLifetimes(t *testing.T) {
	r := calibReport(t)
	lt := &r.Lifetimes
	if lt.N() < 300 {
		t.Fatalf("too few closed TCP connections: %d", lt.N())
	}
	t.Logf("lifetimes n=%d mean=%.2fs p50=%.2fs p90=%.2fs p95=%.2fs f(45)=%.3f f(240)=%.3f f(810)=%.3f",
		lt.N(), lt.Mean(), lt.Quantile(0.5), lt.Quantile(0.9), lt.Quantile(0.95),
		lt.At(45), lt.At(240), lt.At(810))
	within(t, "F(45s)", lt.At(45), 0.84, 0.985) // capture-window truncation biases high
	within(t, "F(240s)", lt.At(240), 0.93, 1.0)
	if tail := 1 - lt.At(810); tail > 0.02 {
		t.Errorf("lifetime tail beyond 810s = %.4f, want <= 0.02", tail)
	}
	// Paper's mean is 45.84 s; the capture window truncates long flows,
	// so accept a band around it.
	within(t, "mean lifetime", lt.Mean(), 5, 60)
}

// TestCalibrationDelays checks the Figure 5 out-in delay distribution:
// the bulk of delays is sub-second and ≈99 % fall under a few seconds.
func TestCalibrationDelays(t *testing.T) {
	r := calibReport(t)
	d := &r.DelayCDF
	if d.N() < 1000 {
		t.Fatalf("too few delay samples: %d", d.N())
	}
	t.Logf("delays n=%d p50=%.3fs p90=%.3fs p99=%.3fs max=%.1fs",
		d.N(), d.Quantile(0.5), d.Quantile(0.9), d.Quantile(0.99), d.Max())
	within(t, "delay p50", d.Quantile(0.5), 0, 0.5)
	// Paper: 99 % of out-in delays are under 2.8 s.
	within(t, "F(2.8s)", d.At(2.8), 0.97, 1.0)
}

// TestCalibrationPorts checks the Figure 2/3 port-distribution structure:
// Non-P2P TCP connections concentrate on well-known ports while P2P and
// UNKNOWN spread across the 10000–40000 band.
func TestCalibrationPorts(t *testing.T) {
	r := calibReport(t)
	nonP2P := &r.TCPPorts[l7.ClassNonP2P]
	p2p := &r.TCPPorts[l7.ClassP2P]
	unknown := &r.TCPPorts[l7.ClassUnknown]
	if nonP2P.N() == 0 || p2p.N() == 0 || unknown.N() == 0 {
		t.Fatalf("empty port class: nonP2P=%d p2p=%d unknown=%d", nonP2P.N(), p2p.N(), unknown.N())
	}
	t.Logf("tcp ports: nonP2P F(1024)=%.3f, p2p F(10000)=%.3f F(40000)=%.3f, unknown F(10000)=%.3f",
		nonP2P.At(1024), p2p.At(10000), p2p.At(40000), unknown.At(10000))
	// Most Non-P2P service ports are well-known (<1024 plus proxies).
	within(t, "Non-P2P F(8080)", nonP2P.At(8080), 0.95, 1.0)
	// P2P service ports: a well-known cluster plus the random band; by
	// 40000 nearly everything is covered.
	within(t, "P2P F(40000)", p2p.At(40000), 0.95, 1.0)
	if spread := p2p.At(40000) - p2p.At(10000); spread < 0.4 {
		t.Errorf("P2P random-band spread = %.3f, want >= 0.4", spread)
	}
	// The UNKNOWN distribution resembles P2P, the paper's core hint that
	// unidentified traffic is largely peer-to-peer.
	if diff := unknown.At(20000) - p2p.At(20000); diff < -0.35 || diff > 0.35 {
		t.Errorf("UNKNOWN vs P2P F(20000) differ by %.3f, want within ±0.35", diff)
	}
	// UDP ports include the well-known DNS/eDonkey spikes.
	udpAll := &r.UDPPorts[l7.ClassAll]
	if udpAll.N() == 0 {
		t.Fatal("no UDP port samples")
	}
}

// TestGenerateDeterministic verifies that the same config yields the
// identical packet stream.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(10*time.Second, 0.05, 7)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("packet counts differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		pa, pb := &a.Packets[i], &b.Packets[i]
		if pa.TS != pb.TS || pa.Pair != pb.Pair || pa.Len != pb.Len || pa.Dir != pb.Dir {
			t.Fatalf("packet %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
}

// TestGenerateSorted verifies the packet stream is time ordered and inside
// the capture window.
func TestGenerateSorted(t *testing.T) {
	for i := 1; i < len(calibTrace.Packets); i++ {
		if calibTrace.Packets[i].TS < calibTrace.Packets[i-1].TS {
			t.Fatalf("packets out of order at %d: %v < %v", i, calibTrace.Packets[i].TS, calibTrace.Packets[i-1].TS)
		}
	}
	for i := range calibTrace.Packets {
		ts := calibTrace.Packets[i].TS
		if ts < 0 || ts > calibTrace.Config.Duration {
			t.Fatalf("packet %d outside window: %v", i, ts)
		}
	}
}

// TestGenerateDirections verifies direction labels are consistent with the
// client network prefix.
func TestGenerateDirections(t *testing.T) {
	net := calibTrace.Config.ClientNet
	for i := range calibTrace.Packets {
		pkt := &calibTrace.Packets[i]
		want := packet.Classify(pkt.Pair, net)
		if pkt.Dir != want {
			t.Fatalf("packet %d: dir=%v but classification says %v (%v)", i, pkt.Dir, want, pkt.Pair)
		}
	}
}

// TestBurstinessShapesLoad: the bursty envelope must raise the variance
// of per-second flow arrivals versus a flat arrival rate. (Arrival
// counts measure the envelope directly; per-second bytes are dominated
// by individual heavy flows and too noisy at test scale.)
func TestBurstinessShapesLoad(t *testing.T) {
	arrivalCV := func(burstiness float64, seed uint64) float64 {
		cfg := DefaultConfig(120*time.Second, 0.08, seed)
		cfg.Burstiness = burstiness
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		perSec := make([]float64, int(cfg.Duration/time.Second)+1)
		for i := range tr.Flows {
			// FTP data flows can be scheduled just past the window; they
			// emit no packets there.
			if tr.Flows[i].Start >= cfg.Duration {
				continue
			}
			perSec[int(tr.Flows[i].Start/time.Second)]++
		}
		var sum, sum2 float64
		for _, c := range perSec {
			sum += c
			sum2 += c * c
		}
		n := float64(len(perSec))
		mean := sum / n
		variance := sum2/n - mean*mean
		return math.Sqrt(variance) / mean
	}
	for _, seed := range []uint64{21, 22, 23} {
		flat := arrivalCV(0, seed)
		bursty := arrivalCV(0.6, seed)
		t.Logf("seed %d arrival CV: flat=%.3f bursty=%.3f", seed, flat, bursty)
		if bursty <= flat {
			t.Errorf("seed %d: burstiness did not raise arrival variability: %.3f <= %.3f", seed, bursty, flat)
		}
	}
}

// TestBurstinessValidation rejects out-of-range values.
func TestBurstinessValidation(t *testing.T) {
	cfg := DefaultConfig(10*time.Second, 0.05, 1)
	cfg.Burstiness = 1.0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("burstiness 1.0 accepted")
	}
	cfg.Burstiness = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative burstiness accepted")
	}
}
