package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
)

// Trace is a generated workload: the time-ordered packet stream plus the
// ground-truth flow labels the analyzer is evaluated against.
type Trace struct {
	Config  Config
	Packets []packet.Packet
	Flows   []Flow
}

// Generate renders the synthetic trace described by cfg. The same config
// (including Seed) always produces the identical trace.
func Generate(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	groups := cfg.Groups
	if groups == nil {
		groups = paperGroups()
	}
	gen := &generator{
		cfg: cfg,
		g:   newRNG(cfg.Seed),
		exp: &expander{window: cfg.Duration},
	}
	gen.pl = payloads{g: gen.g}
	gen.makeClients()

	durSec := cfg.Duration.Seconds()
	nConns := int(cfg.ConnsPerSec * durSec)
	if nConns < 1 {
		nConns = 1
	}
	totalBytes := cfg.TargetMbps * 1e6 / 8 * durSec

	// Cumulative rounding splits nConns across groups without the
	// truncation loss a per-group floor would cause (a 1-connection
	// trace still gets its connection).
	var cum, prevFloor float64
	for _, group := range []string{"HTTP", "bittorrent", "gnutella", "edonkey", "UNKNOWN", "Others"} {
		share, ok := groups[group]
		if !ok {
			continue
		}
		cum += share.ConnFrac * float64(nConns)
		n := int(cum) - int(prevFloor)
		prevFloor = float64(int(cum))
		budget := share.ByteFrac * totalBytes
		switch group {
		case "HTTP":
			gen.planHTTP(n, budget)
		case "Others":
			gen.planOthers(n, budget)
		default:
			gen.planP2P(group, n, budget)
		}
	}

	sort.SliceStable(gen.exp.packets, func(i, j int) bool {
		return gen.exp.packets[i].TS < gen.exp.packets[j].TS
	})
	return &Trace{Config: cfg, Packets: gen.exp.packets, Flows: gen.flows}, nil
}

// generator carries the state of one Generate run.
type generator struct {
	cfg     Config
	g       *rng
	pl      payloads
	exp     *expander
	flows   []Flow
	clients []packet.Addr
	// peerPools gives each group a recurring set of remote peers so that
	// service endpoints B:y repeat and strategy-1 propagation triggers.
	peerPools map[string][]packet.Addr
}

func (gen *generator) makeClients() {
	gen.clients = make([]packet.Addr, gen.cfg.Clients)
	for i := range gen.clients {
		gen.clients[i] = gen.cfg.ClientNet.Prefix + packet.Addr(i+2)
	}
	gen.peerPools = make(map[string][]packet.Addr)
}

func (gen *generator) client() packet.Addr {
	return gen.clients[gen.g.intn(len(gen.clients))]
}

// remoteFor samples a remote peer address, reusing a per-group pool.
func (gen *generator) remoteFor(group string) packet.Addr {
	pool := gen.peerPools[group]
	if len(pool) < 8 || (len(pool) < 4096 && gen.g.prob(0.15)) {
		addr := gen.randomRemote()
		gen.peerPools[group] = append(pool, addr)
		return addr
	}
	return pool[gen.g.intn(len(pool))]
}

func (gen *generator) randomRemote() packet.Addr {
	for {
		a := packet.AddrFrom4(
			byte(1+gen.g.intn(222)),
			byte(gen.g.intn(256)),
			byte(gen.g.intn(256)),
			byte(1+gen.g.intn(254)),
		)
		if !gen.cfg.ClientNet.Contains(a) && byte(a>>24) != 127 {
			return a
		}
	}
}

// start samples a flow arrival time over the capture window. With zero
// burstiness arrivals are uniform; otherwise they follow a sinusoidal
// rate envelope (two incommensurate swells) via rejection sampling,
// giving the load the peaks and troughs visible in the paper's Figure 9
// series.
func (gen *generator) start() time.Duration {
	b := gen.cfg.Burstiness
	if b == 0 {
		return time.Duration(gen.g.float() * float64(gen.cfg.Duration))
	}
	peak := 1 + b + b/2
	for {
		x := gen.g.float()
		rate := 1 + b*math.Sin(2*math.Pi*3*x) + b/2*math.Sin(2*math.Pi*7.3*x+1.1)
		if gen.g.float()*peak < rate {
			return time.Duration(x * float64(gen.cfg.Duration))
		}
	}
}

// knownTCPPorts lists the well-known listening ports per P2P app, used for
// the fraction of peers that do not randomize their port.
func knownTCPPorts(app l7.App) []uint16 {
	switch app {
	case l7.BitTorrent:
		return []uint16{6881, 6882, 6883, 6884, 6885, 6886, 6887, 6888, 6889}
	case l7.EDonkey:
		return []uint16{4661, 4662}
	case l7.Gnutella:
		return []uint16{6346, 6347}
	default:
		return nil
	}
}

func knownUDPPorts(app l7.App) []uint16 {
	switch app {
	case l7.BitTorrent:
		return []uint16{6881}
	case l7.EDonkey:
		return []uint16{4665, 4672}
	case l7.Gnutella:
		return []uint16{6346}
	default:
		return nil
	}
}

// p2pApp maps a Table 2 group to its ground-truth application.
func p2pApp(group string) l7.App {
	switch group {
	case "bittorrent":
		return l7.BitTorrent
	case "gnutella":
		return l7.Gnutella
	case "edonkey":
		return l7.EDonkey
	default:
		return l7.Unknown
	}
}

// p2pTCPHandshake returns the initiator and responder opening payloads of
// a P2P (or opaque) data connection.
func (gen *generator) p2pTCPHandshake(app l7.App) (init, resp []byte) {
	switch app {
	case l7.BitTorrent:
		return gen.pl.btHandshake(), gen.pl.btHandshake()
	case l7.EDonkey:
		return gen.pl.edonkeyHello(), gen.pl.edonkeyHello()
	case l7.Gnutella:
		return gen.pl.gnutellaConnect(), []byte("GNUTELLA/0.6 200 OK\r\nUser-Agent: LimeWire/4.12.6\r\n\r\n")
	default:
		return gen.pl.opaque(80 + gen.g.intn(80)), gen.pl.opaque(60 + gen.g.intn(60))
	}
}

// p2pUDPPayloads returns the query and reply datagrams of a P2P overlay
// exchange.
func (gen *generator) p2pUDPPayloads(app l7.App) (query, reply []byte) {
	switch app {
	case l7.BitTorrent:
		return gen.pl.btDHTQuery(), gen.pl.btDHTQuery()
	case l7.EDonkey:
		return gen.pl.edonkeyUDPPing(), gen.pl.edonkeyUDPPing()
	case l7.Gnutella:
		return gen.pl.gnutellaUDP(), gen.pl.gnutellaUDP()
	default:
		return gen.pl.opaque(40 + gen.g.intn(200)), gen.pl.opaque(40 + gen.g.intn(200))
	}
}

// planP2P plans one P2P (or UNKNOWN) group: a minority of TCP data
// connections carrying nearly all the group's bytes — dominated by uploads
// triggered by inbound requests — plus a majority of small UDP overlay
// exchanges.
func (gen *generator) planP2P(group string, n int, budget float64) {
	const (
		tcpFrac     = 0.28 // yields the global ≈30 % TCP connection share
		uploadFrac  = 0.95 // P2P data flows that upload from the client
		inboundFrac = 0.78 // upload flows initiated by inbound requests
	)
	app := p2pApp(group)
	nTCP := int(float64(n) * tcpFrac)
	nUDP := n - nTCP
	udpBytes := float64(nUDP) * 330 // small overlay datagrams
	tcpBudget := budget - udpBytes
	if tcpBudget < 0 {
		tcpBudget = 0
	}
	meanTCP := 2000.0
	if nTCP > 0 && tcpBudget/float64(nTCP) > meanTCP {
		meanTCP = tcpBudget / float64(nTCP)
	}

	for i := 0; i < nTCP; i++ {
		gen.planP2PTCP(group, app, meanTCP, uploadFrac, inboundFrac)
	}
	for i := 0; i < nUDP; i++ {
		gen.planP2PUDP(group, app)
	}
}

func (gen *generator) planP2PTCP(group string, app l7.App, meanBytes, uploadFrac, inboundFrac float64) {
	life := gen.g.lifetime()
	dataBytes := gen.g.flowBytes(meanBytes, life)
	upload := gen.g.prob(uploadFrac)

	f := Flow{
		App:      app,
		Group:    group,
		Proto:    packet.TCP,
		Client:   gen.client(),
		Remote:   gen.remoteFor(group),
		Start:    gen.start(),
		Lifetime: life,
	}
	switch {
	case upload && gen.g.prob(inboundFrac):
		// A remote peer connects in and the client uploads: the client
		// listens on its (often random) P2P service port.
		f.Initiator = packet.Inbound
		f.ClientPort = gen.g.p2pPort(knownTCPPorts(app))
		f.RemotePort = gen.g.ephemeralPort()
	case upload:
		// The client connects out but still uploads (seeding on an
		// outgoing connection) — the "actively sent out" 20 % of
		// Section 3.3.
		f.Initiator = packet.Outbound
		f.ClientPort = gen.g.ephemeralPort()
		f.RemotePort = gen.g.p2pPort(knownTCPPorts(app))
	case gen.g.prob(0.35):
		// Some P2P download traffic arrives on inbound connections
		// (push-style transfers) — the reason Figure 9 shows the
		// downlink shrinking under filtering as well.
		f.Initiator = packet.Inbound
		f.ClientPort = gen.g.p2pPort(knownTCPPorts(app))
		f.RemotePort = gen.g.ephemeralPort()
	default:
		// The client downloads from a remote peer.
		f.Initiator = packet.Outbound
		f.ClientPort = gen.g.ephemeralPort()
		f.RemotePort = gen.g.p2pPort(knownTCPPorts(app))
	}
	dataDir := packet.Inbound
	if upload {
		dataDir = packet.Outbound
	}

	initPayload, respPayload := gen.p2pTCPHandshake(app)
	spec := tcpFlowSpec{
		flow:        f,
		initPayload: initPayload,
		respPayload: respPayload,
		dataDir:     dataDir,
		dataBytes:   dataBytes,
		rtt:         gen.g.rtt(),
	}
	if gen.g.prob(gen.cfg.SlowResponseProb) {
		spec.respDelay = gen.g.slowResponse()
	}
	gen.finishTCP(&spec)
}

func (gen *generator) planP2PUDP(group string, app l7.App) {
	query, reply := gen.p2pUDPPayloads(app)
	f := Flow{
		App:    app,
		Group:  group,
		Proto:  packet.UDP,
		Client: gen.client(),
		Remote: gen.remoteFor(group),
		Start:  gen.start(),
	}
	if gen.g.prob(0.5) {
		// A remote peer queries the client's overlay port.
		f.Initiator = packet.Inbound
		f.ClientPort = gen.g.p2pPort(knownUDPPorts(app))
		f.RemotePort = gen.g.ephemeralPort()
	} else {
		f.Initiator = packet.Outbound
		f.ClientPort = gen.g.ephemeralPort()
		f.RemotePort = gen.g.p2pPort(knownUDPPorts(app))
	}
	spec := udpFlowSpec{
		flow:         f,
		queryPayload: query,
		replyPayload: reply,
		exchanges:    1 + gen.g.intn(2),
		rtt:          gen.g.rtt(),
	}
	spec.flow.Lifetime = spec.rtt * 4 * time.Duration(spec.exchanges)
	gen.recordUDP(&spec)
	gen.exp.expandUDP(&spec)
}

// planHTTP plans client-initiated web downloads.
func (gen *generator) planHTTP(n int, budget float64) {
	mean := 4000.0
	if n > 0 && budget/float64(n) > mean {
		mean = budget / float64(n)
	}
	for i := 0; i < n; i++ {
		life := gen.g.lifetime()
		size := gen.g.flowBytes(mean, life)
		remote := gen.remoteFor("HTTP")
		f := Flow{
			App:        l7.HTTP,
			Group:      "HTTP",
			Proto:      packet.TCP,
			Client:     gen.client(),
			ClientPort: gen.g.ephemeralPort(),
			Remote:     remote,
			RemotePort: 80,
			Initiator:  packet.Outbound,
			Start:      gen.start(),
			Lifetime:   life,
		}
		if gen.g.prob(0.15) {
			f.RemotePort = []uint16{8080, 3128}[gen.g.intn(2)]
		}
		spec := tcpFlowSpec{
			flow:        f,
			initPayload: gen.pl.httpRequest(remote.String()),
			respPayload: gen.pl.httpResponse(size),
			dataDir:     packet.Inbound,
			dataBytes:   size,
			rtt:         gen.g.rtt(),
		}
		if gen.g.prob(gen.cfg.SlowResponseProb) {
			spec.respDelay = gen.g.slowResponse()
		}
		gen.finishTCP(&spec)
	}
}

// planOthers plans the classic-service mix behind Table 2's "Others" row:
// DNS and NTP lookups, FTP sessions (control plus announced data
// connection), and SMTP/SSH/HTTPS connections.
func (gen *generator) planOthers(n int, budget float64) {
	nDNS := int(float64(n) * 0.55)
	nNTP := int(float64(n) * 0.05)
	nFTP := int(float64(n) * 0.12 / 2) // each session is two connections
	nTCPMisc := n - nDNS - nNTP - nFTP*2
	if nTCPMisc < 0 {
		nTCPMisc = 0
	}

	for i := 0; i < nDNS; i++ {
		gen.planSimpleUDP(l7.DNS, 53, gen.pl.dnsQuery(), gen.pl.opaqueDNSReply())
	}
	for i := 0; i < nNTP; i++ {
		ntp := make([]byte, 48)
		ntp[0] = 0x1b
		gen.planSimpleUDP(l7.NTP, 123, ntp, append([]byte{0x1c}, make([]byte, 47)...))
	}

	ftpBudget := budget * 0.6
	meanFTP := 20000.0
	if nFTP > 0 && ftpBudget/float64(nFTP) > meanFTP {
		meanFTP = ftpBudget / float64(nFTP)
	}
	for i := 0; i < nFTP; i++ {
		gen.planFTPSession(meanFTP)
	}

	miscBudget := budget * 0.4
	meanMisc := 5000.0
	if nTCPMisc > 0 && miscBudget/float64(nTCPMisc) > meanMisc {
		meanMisc = miscBudget / float64(nTCPMisc)
	}
	miscApps := []struct {
		app  l7.App
		port uint16
		init []byte
		resp []byte
	}{
		{l7.SMTP, 25, []byte("EHLO client.example\r\n"), []byte("250-mail.example\r\n250 OK\r\n")},
		{l7.SSH, 22, []byte("SSH-2.0-OpenSSH_4.3\r\n"), []byte("SSH-2.0-OpenSSH_4.2\r\n")},
		{l7.HTTPS, 443, nil, nil},
		{l7.POP3, 110, []byte("USER alice\r\n"), []byte("+OK POP3 ready\r\n")},
	}
	for i := 0; i < nTCPMisc; i++ {
		m := miscApps[gen.g.intn(len(miscApps))]
		life := gen.g.lifetime()
		initPayload := m.init
		respPayload := m.resp
		if m.app == l7.HTTPS {
			initPayload = gen.pl.opaque(180)
			respPayload = gen.pl.opaque(900)
		}
		spec := tcpFlowSpec{
			flow: Flow{
				App:        m.app,
				Group:      "Others",
				Proto:      packet.TCP,
				Client:     gen.client(),
				ClientPort: gen.g.ephemeralPort(),
				Remote:     gen.remoteFor("Others"),
				RemotePort: m.port,
				Initiator:  packet.Outbound,
				Start:      gen.start(),
				Lifetime:   life,
			},
			initPayload: initPayload,
			respPayload: respPayload,
			dataDir:     packet.Inbound,
			dataBytes:   gen.g.flowBytes(meanMisc, life),
			rtt:         gen.g.rtt(),
		}
		if gen.g.prob(0.5) {
			spec.dataDir = packet.Outbound // e.g. mail submission, scp push
		}
		gen.finishTCP(&spec)
	}
}

func (gen *generator) planSimpleUDP(app l7.App, port uint16, query, reply []byte) {
	spec := udpFlowSpec{
		flow: Flow{
			App:        app,
			Group:      "Others",
			Proto:      packet.UDP,
			Client:     gen.client(),
			ClientPort: gen.g.ephemeralPort(),
			Remote:     gen.remoteFor("Others"),
			RemotePort: port,
			Initiator:  packet.Outbound,
			Start:      gen.start(),
		},
		queryPayload: query,
		replyPayload: reply,
		exchanges:    1,
		rtt:          gen.g.rtt(),
	}
	spec.flow.Lifetime = spec.rtt * 4
	gen.recordUDP(&spec)
	gen.exp.expandUDP(&spec)
}

// planFTPSession plans an FTP control connection that announces a passive
// data endpoint, then the matching data connection — the strategy-2 case
// of Section 3.2.
func (gen *generator) planFTPSession(meanBytes float64) {
	client := gen.client()
	server := gen.remoteFor("Others")
	rtt := gen.g.rtt()
	dataPort := uint16(20000 + gen.g.intn(20000))
	ctlLife := gen.g.lifetime()

	ctl := tcpFlowSpec{
		flow: Flow{
			App:        l7.FTP,
			Group:      "Others",
			Proto:      packet.TCP,
			Client:     client,
			ClientPort: gen.g.ephemeralPort(),
			Remote:     server,
			RemotePort: 21,
			Initiator:  packet.Outbound,
			Start:      gen.start(),
			Lifetime:   ctlLife,
		},
		// The server banner arrives first; USER/PASS and PASV follow.
		respPayload: gen.pl.ftpBanner(),
		rtt:         rtt,
		extraExchanges: []exchange{
			{fromInitiator: []byte("USER anonymous\r\n"), fromResponder: []byte("331 Password required.\r\n")},
			{fromInitiator: []byte("PASS guest@\r\n"), fromResponder: []byte("230 User logged in.\r\n")},
			{
				fromInitiator: []byte("PASV\r\n"),
				fromResponder: gen.pl.ftpPasvReply(byte(server>>24), byte(server>>16), byte(server>>8), byte(server), dataPort),
			},
			{fromInitiator: []byte("RETR pub/file.iso\r\n"), fromResponder: []byte("150 Opening BINARY mode data connection.\r\n")},
		},
	}
	gen.finishTCP(&ctl)

	dataLife := gen.g.lifetime()
	if dataLife > ctlLife {
		dataLife = ctlLife
	}
	data := tcpFlowSpec{
		flow: Flow{
			App:        l7.FTP,
			Group:      "Others",
			Proto:      packet.TCP,
			Client:     client,
			ClientPort: gen.g.ephemeralPort(),
			Remote:     server,
			RemotePort: dataPort,
			Initiator:  packet.Outbound,
			// The data connection opens just after the PASV exchange.
			Start:    ctl.flow.Start + rtt*12,
			Lifetime: dataLife,
		},
		dataDir:   packet.Inbound,
		dataBytes: gen.g.flowBytes(meanBytes, dataLife),
		rtt:       rtt,
	}
	if gen.g.prob(0.3) {
		data.dataDir = packet.Outbound // STOR upload
	}
	gen.finishTCP(&data)
}

// finishTCP records the flow's ground truth, expands it to packets, and
// possibly schedules a port-reuse follow-up.
func (gen *generator) finishTCP(spec *tcpFlowSpec) {
	if gen.g.prob(0.10) {
		n := 1 + gen.g.intn(2)
		for i := 0; i < n; i++ {
			spec.stragglers = append(spec.stragglers, seconds(0.5+gen.g.float()*12))
		}
	}
	gen.recordTCP(spec)
	gen.exp.expandTCP(spec)
	gen.maybeReuse(spec)
}

// maybeReuse models ephemeral-port reuse: some multiple of roughly a
// minute after an outbound-initiated connection closes, the remote peer
// initiates a fresh connection over the identical five tuple. The stale
// out-in delay samples this produces are the Figure 5 port-reuse peaks.
func (gen *generator) maybeReuse(spec *tcpFlowSpec) {
	if spec.flow.Initiator != packet.Outbound || !gen.g.prob(gen.cfg.PortReuseProb) {
		return
	}
	k := 1 + gen.g.intn(5)
	start := spec.flow.End() + time.Duration(k)*time.Minute + seconds(gen.g.float()*2)
	if start >= gen.cfg.Duration {
		return
	}
	life := gen.g.lifetime()
	reuse := tcpFlowSpec{
		flow: Flow{
			App:        spec.flow.App,
			Group:      spec.flow.Group,
			Proto:      packet.TCP,
			Client:     spec.flow.Client,
			ClientPort: spec.flow.ClientPort,
			Remote:     spec.flow.Remote,
			RemotePort: spec.flow.RemotePort,
			Initiator:  packet.Inbound,
			Start:      start,
			Lifetime:   life,
		},
		initPayload: spec.initPayload,
		respPayload: spec.respPayload,
		dataDir:     packet.Outbound,
		dataBytes:   gen.g.flowBytes(20000, life),
		rtt:         spec.rtt,
	}
	gen.recordTCP(&reuse)
	gen.exp.expandTCP(&reuse)
}

// recordTCP logs a TCP flow's ground truth with its planned byte volumes.
func (gen *generator) recordTCP(spec *tcpFlowSpec) {
	f := spec.flow
	up, down := int64(0), int64(0)
	if spec.dataDir == packet.Outbound {
		up = spec.dataBytes
	} else {
		down = spec.dataBytes
	}
	initLen, respLen := int64(len(spec.initPayload)), int64(len(spec.respPayload))
	if f.Initiator == packet.Outbound {
		up += initLen
		down += respLen
	} else {
		up += respLen
		down += initLen
	}
	f.UploadBytes, f.DownloadBytes = up, down
	gen.flows = append(gen.flows, f)
}

// recordUDP logs a UDP flow's ground truth.
func (gen *generator) recordUDP(spec *udpFlowSpec) {
	f := spec.flow
	q := int64(len(spec.queryPayload) * spec.exchanges)
	r := int64(len(spec.replyPayload) * spec.exchanges)
	if f.Initiator == packet.Outbound {
		f.UploadBytes, f.DownloadBytes = q, r
	} else {
		f.UploadBytes, f.DownloadBytes = r, q
	}
	gen.flows = append(gen.flows, f)
}

// opaqueDNSReply builds a short DNS-like answer payload.
func (p payloads) opaqueDNSReply() []byte {
	b := p.dnsQuery()
	b[2] |= 0x80 // QR: response
	return append(b, 0xc0, 0x0c, 0, 1, 0, 1, 0, 0, 1, 0x2c, 0, 4, 93, 184, 216, 34)
}

// String summarizes the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("trace(%d packets, %d flows, %v)", len(t.Packets), len(t.Flows), t.Config.Duration)
}
