package trace

import (
	"time"

	"p2pbound/internal/packet"
)

// expander turns flow specs into time-stamped packets, clipping everything
// past the capture window.
type expander struct {
	window  time.Duration
	packets []packet.Packet
}

// emit appends one packet unless it falls outside the capture window.
// dir is relative to the client network; pair is oriented in the packet's
// travel direction (source = sender).
func (e *expander) emit(ts time.Duration, pair packet.SocketPair, dir packet.Direction, flags packet.TCPFlags, payload []byte, wireLen int) {
	if ts < 0 || ts > e.window {
		return
	}
	e.packets = append(e.packets, packet.Packet{
		TS:      ts,
		Pair:    pair,
		Dir:     dir,
		Len:     wireLen,
		Flags:   flags,
		Payload: payload,
	})
}

// expandTCP renders a complete TCP connection: three-way handshake,
// opening payload exchange, scripted extra exchanges, paced bulk data with
// periodic ACKs from the receiver, and a FIN close at the flow's end time.
func (e *expander) expandTCP(spec *tcpFlowSpec) {
	f := &spec.flow
	fwd := f.Pair()       // initiator -> responder
	rev := fwd.Inverse()  // responder -> initiator
	fwdDir := f.Initiator // direction of initiator->responder packets
	revDir := otherDir(fwdDir)

	t := f.Start
	e.emit(t, fwd, fwdDir, packet.SYN, nil, tcpHeaderLen)
	t += spec.rtt
	e.emit(t, rev, revDir, packet.SYN|packet.ACK, nil, tcpHeaderLen)
	t += spec.rtt / 2
	e.emit(t, fwd, fwdDir, packet.ACK, nil, tcpHeaderLen)

	if len(spec.initPayload) > 0 {
		t += time.Millisecond
		e.emit(t, fwd, fwdDir, packet.ACK|packet.PSH, spec.initPayload, tcpHeaderLen+len(spec.initPayload))
	}
	if len(spec.respPayload) > 0 {
		t += spec.rtt/2 + spec.respDelay
		e.emit(t, rev, revDir, packet.ACK|packet.PSH, spec.respPayload, tcpHeaderLen+len(spec.respPayload))
	}
	for _, ex := range spec.extraExchanges {
		if len(ex.fromInitiator) > 0 {
			t += spec.rtt
			e.emit(t, fwd, fwdDir, packet.ACK|packet.PSH, ex.fromInitiator, tcpHeaderLen+len(ex.fromInitiator))
		}
		if len(ex.fromResponder) > 0 {
			t += spec.rtt
			e.emit(t, rev, revDir, packet.ACK|packet.PSH, ex.fromResponder, tcpHeaderLen+len(ex.fromResponder))
		}
	}

	lastData := e.expandBulk(spec, t)

	// Close at the planned end time — or after the last data segment
	// when the opening exchange overran the lifetime (a connection
	// cannot close before its payload): the initiator sends FIN, the
	// responder FIN+ACKs, the initiator completes the close.
	end := f.End()
	if lastData+spec.rtt > end {
		end = lastData + spec.rtt
	}
	e.emit(end, fwd, fwdDir, packet.FIN|packet.ACK, nil, tcpHeaderLen)
	e.emit(end+spec.rtt, rev, revDir, packet.FIN|packet.ACK, nil, tcpHeaderLen)
	e.emit(end+spec.rtt*3/2, fwd, fwdDir, packet.ACK, nil, tcpHeaderLen)

	// Post-close stragglers: late duplicate ACKs or retransmissions from
	// the remote side arriving after the connection is gone. An exact
	// SPI filter (state deleted at close) drops these precisely; the
	// bitmap filter keeps admitting them for up to T_e — the mechanism
	// behind the paper's Figure 8 gap (SPI 1.56 % vs bitmap 1.51 %).
	inPair, inDir := rev, revDir
	if inDir != packet.Inbound {
		inPair, inDir = fwd, fwdDir
	}
	for _, off := range spec.stragglers {
		e.emit(end+off, inPair, inDir, packet.ACK, nil, tcpHeaderLen)
	}
}

// maxPaceStep bounds the inter-segment gap of a paced bulk transfer.
const maxPaceStep = 6 * time.Second

// expandBulk paces the bulk payload of a TCP flow uniformly between the
// end of the opening exchange and just before the close, acknowledging
// every ackEvery segments from the opposite side.
func (e *expander) expandBulk(spec *tcpFlowSpec, setupDone time.Duration) time.Duration {
	if spec.dataBytes <= 0 {
		return 0
	}
	const ackEvery = 2
	f := &spec.flow
	nSegs := int((spec.dataBytes + mss - 1) / mss)
	if nSegs < 1 {
		nSegs = 1
	}

	// Orient the data stream: sender pair has the data sender as source.
	var dataPair packet.SocketPair
	if spec.dataDir == f.Initiator {
		dataPair = f.Pair()
	} else {
		dataPair = f.Pair().Inverse()
	}
	ackPair := dataPair.Inverse()
	ackDir := otherDir(spec.dataDir)

	start := setupDone + spec.rtt
	end := f.End() - spec.rtt
	if end <= start {
		end = start + time.Millisecond
	}
	step := (end - start) / time.Duration(nSegs)
	if step <= 0 {
		step = time.Microsecond
	}
	// Real connections do not trickle one segment per half minute: cap
	// the pacing step so a flow finishes its transfer early and idles
	// until the close instead of leaving >T_e inbound gaps mid-flow.
	if step > maxPaceStep {
		step = maxPaceStep
	}

	remaining := spec.dataBytes
	var last time.Duration
	for i := 0; i < nSegs; i++ {
		segLen := int64(mss)
		if segLen > remaining {
			segLen = remaining
		}
		remaining -= segLen
		ts := start + step*time.Duration(i)
		e.emit(ts, dataPair, spec.dataDir, packet.ACK, nil, tcpHeaderLen+int(segLen))
		last = ts
		if i%ackEvery == ackEvery-1 || i == nSegs-1 {
			e.emit(ts+spec.rtt/2, ackPair, ackDir, packet.ACK, nil, tcpHeaderLen)
			last = ts + spec.rtt/2
		}
	}
	return last
}

// expandUDP renders a UDP request/response mini-flow.
func (e *expander) expandUDP(spec *udpFlowSpec) {
	f := &spec.flow
	fwd := f.Pair()
	rev := fwd.Inverse()
	fwdDir := f.Initiator
	revDir := otherDir(fwdDir)

	t := f.Start
	for i := 0; i < spec.exchanges; i++ {
		e.emit(t, fwd, fwdDir, 0, spec.queryPayload, udpHeaderLen+len(spec.queryPayload))
		if len(spec.replyPayload) > 0 {
			e.emit(t+spec.rtt, rev, revDir, 0, spec.replyPayload, udpHeaderLen+len(spec.replyPayload))
		}
		t += spec.rtt * 4
	}
}

func otherDir(d packet.Direction) packet.Direction {
	if d == packet.Outbound {
		return packet.Inbound
	}
	return packet.Outbound
}
