package trace

import (
	"time"

	"p2pbound/internal/l7"
	"p2pbound/internal/packet"
)

// Flow is the ground-truth description of one generated connection. The
// analyzer never sees this; tests compare its output against these labels.
type Flow struct {
	App        l7.App // ground truth; Unknown for opaque flows
	Group      string // Table 2 group label
	Proto      packet.Proto
	Client     packet.Addr
	ClientPort uint16
	Remote     packet.Addr
	RemotePort uint16
	// Initiator is Outbound when the inner client opened the connection
	// and Inbound when a remote peer did.
	Initiator packet.Direction
	Start     time.Duration
	Lifetime  time.Duration
	// UploadBytes and DownloadBytes are the planned payload volumes in
	// each direction (headers excluded).
	UploadBytes   int64
	DownloadBytes int64
}

// Pair returns the five tuple oriented from the initiator.
func (f *Flow) Pair() packet.SocketPair {
	if f.Initiator == packet.Outbound {
		return packet.SocketPair{
			Proto:   f.Proto,
			SrcAddr: f.Client, SrcPort: f.ClientPort,
			DstAddr: f.Remote, DstPort: f.RemotePort,
		}
	}
	return packet.SocketPair{
		Proto:   f.Proto,
		SrcAddr: f.Remote, SrcPort: f.RemotePort,
		DstAddr: f.Client, DstPort: f.ClientPort,
	}
}

// End returns the flow's planned close time.
func (f *Flow) End() time.Duration { return f.Start + f.Lifetime }

// Header sizes added to every payload to compute wire lengths.
const (
	tcpHeaderLen = 40 // IPv4 + TCP, no options
	udpHeaderLen = 28 // IPv4 + UDP
	mss          = 1460
)

// tcpFlowSpec carries everything expandTCP needs beyond the Flow itself.
type tcpFlowSpec struct {
	flow Flow
	// initPayload travels from the initiator right after the handshake;
	// respPayload answers it. Either may be nil.
	initPayload []byte
	respPayload []byte
	// dataDir is the direction of the bulk payload relative to the
	// client network (Outbound = upload); dataBytes is its volume.
	dataDir   packet.Direction
	dataBytes int64
	rtt       time.Duration
	respDelay time.Duration // server think time before respPayload
	// extraExchanges appends scripted payload exchanges after the
	// opening exchange (used by the FTP control channel).
	extraExchanges []exchange
	// stragglers are offsets after the close at which the remote side
	// sends one more late packet (duplicate ACK / retransmission).
	stragglers []time.Duration
}

// exchange is one scripted request/response payload pair on an
// established TCP connection.
type exchange struct {
	fromInitiator []byte
	fromResponder []byte
}

// udpFlowSpec describes a UDP request/response mini-flow.
type udpFlowSpec struct {
	flow Flow
	// queryPayload travels from the initiator, replyPayload back.
	queryPayload []byte
	replyPayload []byte
	exchanges    int
	rtt          time.Duration
}
