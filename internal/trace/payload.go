package trace

import (
	"fmt"
)

// payloads builds the application-layer handshake bytes each flow model
// emits in its first data packets. The bytes are crafted to match the
// Table 1 signatures exactly the way the real protocols do, so the
// analyzer's pattern stage exercises the same code path it would on live
// traffic.
type payloads struct {
	g *rng
}

// btHandshake is the 68-byte BitTorrent peer-wire handshake:
// <19>"BitTorrent protocol"<8 reserved><20 info-hash><20 peer-id>.
func (p payloads) btHandshake() []byte {
	b := make([]byte, 0, 68)
	b = append(b, 0x13)
	b = append(b, "BitTorrent protocol"...)
	b = append(b, make([]byte, 8)...)
	for i := 0; i < 40; i++ {
		b = append(b, byte(p.g.intn(256)))
	}
	return b
}

// btDHTQuery is a bencoded DHT find_node query containing the
// "d1:ad2:id20:" prefix the bittorrent signature keys on.
func (p payloads) btDHTQuery() []byte {
	id := make([]byte, 20)
	for i := range id {
		id[i] = byte('a' + p.g.intn(26))
	}
	return []byte(fmt.Sprintf("d1:ad2:id20:%s6:target20:%se1:q9:find_node1:t2:aa1:y1:qe", id, id))
}

// edonkeyHello is an eDonkey frame: marker 0xe3, a 4-byte little-endian
// length, and the OP_HELLO opcode 0x01 followed by hash/tag filler.
func (p payloads) edonkeyHello() []byte {
	body := make([]byte, 40)
	for i := range body {
		body[i] = byte(p.g.intn(256))
	}
	b := make([]byte, 0, 46)
	b = append(b, 0xe3)
	n := uint32(len(body) + 1)
	b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	b = append(b, 0x01) // OP_HELLO
	return append(b, body...)
}

// edonkeyUDPPing is the UDP server ping: marker 0xe3 plus the
// OP_GLOBGETSOURCES opcode 0x46 in the position the signature checks.
func (p payloads) edonkeyUDPPing() []byte {
	b := []byte{0xe3, 0x00, 0x00, 0x00, 0x00, 0x46}
	hash := make([]byte, 16)
	for i := range hash {
		hash[i] = byte(p.g.intn(256))
	}
	return append(b, hash...)
}

// gnutellaConnect is the Gnutella 0.6 connection handshake.
func (p payloads) gnutellaConnect() []byte {
	return []byte("GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire/4.12.6\r\nX-Ultrapeer: False\r\n\r\n")
}

// gnutellaUDP is a GND UDP deflate-capable ping frame.
func (p payloads) gnutellaUDP() []byte {
	return []byte{'G', 'N', 'D', 0x01, byte(p.g.intn(256)), byte(p.g.intn(256)), 0x01, 0x00}
}

// httpRequest is a plain HTTP/1.1 GET.
func (p payloads) httpRequest(host string) []byte {
	return []byte(fmt.Sprintf(
		"GET /index%d.html HTTP/1.1\r\nHost: %s\r\nUser-Agent: Mozilla/5.0\r\nAccept: */*\r\n\r\n",
		p.g.intn(1000), host))
}

// httpResponse is the status line and headers of an HTTP/1.1 reply.
func (p payloads) httpResponse(length int64) []byte {
	return []byte(fmt.Sprintf(
		"HTTP/1.1 200 OK\r\nServer: Apache/2.0\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n", length))
}

// ftpBanner is the server greeting matched by the Table 1 ftp signature.
func (p payloads) ftpBanner() []byte {
	return []byte("220 ProFTPD 1.3.0 Server (FTP) ready.\r\n")
}

// ftpPasvExchange is the client PASV command and the server 227 reply
// announcing the data endpoint (a, b, c, d are the server address octets).
func (p payloads) ftpPasvReply(a, b, c, d byte, port uint16) []byte {
	return []byte(fmt.Sprintf("227 Entering Passive Mode (%d,%d,%d,%d,%d,%d).\r\n",
		a, b, c, d, port>>8, port&0xff))
}

// dnsQuery is a minimal DNS query datagram (identified by port, not
// pattern — DNS is "Others" in Table 2).
func (p payloads) dnsQuery() []byte {
	b := make([]byte, 12, 29)
	b[0] = byte(p.g.intn(256)) // transaction ID
	b[1] = byte(p.g.intn(256))
	b[2] = 0x01 // RD
	b[5] = 0x01 // one question
	b = append(b, 3, 'w', 'w', 'w', 7)
	for i := 0; i < 7; i++ {
		b = append(b, byte('a'+p.g.intn(26)))
	}
	return append(b, 3, 'c', 'o', 'm', 0, 0, 1, 0, 1)
}

// opaque builds a high-entropy payload that matches no Table 1 signature:
// the first byte avoids the eDonkey and BitTorrent markers, and the rest
// is random. This models the encrypted/proprietary protocols behind the
// trace's 35 % UNKNOWN utilization.
func (p payloads) opaque(n int) []byte {
	if n < 1 {
		n = 1
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(p.g.intn(256))
	}
	for isMarker(b[0]) {
		b[0] = byte(p.g.intn(256))
	}
	return b
}

// isMarker reports whether a first byte would collide with a Table 1
// signature anchor.
func isMarker(b byte) bool {
	switch b {
	case 0x13, 0xc5, 0xd4, 0xe3, 0xe4, 0xe5:
		return true
	case 'G', 'g', 'P', 'p', 'H', 'h', 'A', 'a', '2', 'D', 'd':
		// Letters that begin GET/GIV/GND/POST/HTTP/azver/220/d1:ad2.
		return true
	default:
		return false
	}
}
