package trace

import (
	"math"
	"math/rand/v2"
	"time"
)

// rng wraps the deterministic PRNG with the samplers the generator needs.
type rng struct {
	r *rand.Rand
}

func newRNG(seed uint64) *rng {
	return &rng{r: rand.New(rand.NewPCG(seed, seed^0x94d049bb133111eb))}
}

func (g *rng) float() float64      { return g.r.Float64() }
func (g *rng) prob(p float64) bool { return g.r.Float64() < p }
func (g *rng) intn(n int) int      { return g.r.IntN(n) }

// lognormal samples exp(N(mu, sigma²)).
func (g *rng) lognormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// lognormalMean samples a lognormal with the given mean and shape sigma.
func (g *rng) lognormalMean(mean, sigma float64) float64 {
	mu := math.Log(mean) - sigma*sigma/2
	return g.lognormal(mu, sigma)
}

// duration converts seconds to a time.Duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// lifetime samples the Figure 4 connection-lifetime distribution: a
// two-component lognormal mixture calibrated so that ≈90 % of lifetimes
// fall under 45 s, ≈95 % under 4 minutes, under 1 % beyond 810 s, and the
// mean lands near the paper's 45.84 s; samples are capped at the six-hour
// maximum observed in the trace.
func (g *rng) lifetime() time.Duration {
	var s float64
	if g.prob(0.92) {
		s = g.lognormal(math.Log(5), 1.3)
	} else {
		s = g.lognormal(math.Log(120), 1.5)
	}
	if s < 0.005 {
		s = 0.005
	}
	if s > 21600 {
		s = 21600
	}
	return seconds(s)
}

// rtt samples a per-flow round-trip time: mostly tens of milliseconds
// (Figure 5: 99 % of out-in delays are under 2.8 s).
func (g *rng) rtt() time.Duration {
	s := g.lognormal(math.Log(0.060), 0.8)
	if s < 0.001 {
		s = 0.001
	}
	if s > 3 {
		s = 3
	}
	return seconds(s)
}

// slowResponse samples the occasional 0.5–5 s server think time that
// thickens the delay tail.
func (g *rng) slowResponse() time.Duration {
	return seconds(0.5 + g.float()*4.5)
}

// flowBytes samples a heavy-tailed transfer size with the given mean,
// clipped to what the flow can plausibly move within its lifetime.
func (g *rng) flowBytes(mean float64, life time.Duration) int64 {
	const perFlowBps = 8e6 // 8 Mbit/s single-flow ceiling
	b := g.lognormalMean(mean, 1.1)
	if b < 200 {
		b = 200
	}
	if ceiling := life.Seconds() * perFlowBps / 8; b > ceiling {
		b = ceiling
	}
	return int64(b)
}

// ephemeralPort samples a client-side ephemeral port.
func (g *rng) ephemeralPort() uint16 {
	return uint16(32768 + g.intn(28000))
}

// p2pPort samples the service port of a P2P peer: a well-known P2P port
// some of the time, otherwise a random port in the 10000–40000 band the
// paper observes (Figure 2).
func (g *rng) p2pPort(known []uint16) uint16 {
	if len(known) > 0 && g.prob(0.35) {
		return known[g.intn(len(known))]
	}
	return uint16(10000 + g.intn(30000))
}
