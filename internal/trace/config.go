// Package trace generates synthetic client-network packet traces whose
// aggregate statistics reproduce the measurements of Section 3.3: the
// protocol mix of Table 2, the port-number distributions of Figures 2–3,
// the connection-lifetime distribution of Figure 4, the out-in packet
// delay distribution of Figure 5, the TCP/UDP connection and byte shares,
// the upload-dominated byte mix, and the fact that most outbound bytes
// ride connections initiated by inbound requests.
//
// The paper's evaluation replays a 7.5-hour campus trace that cannot be
// redistributed; this generator is the substitution documented in
// DESIGN.md. Everything is driven by a seeded deterministic PRNG, so a
// (Config, Seed) pair always yields the identical trace.
package trace

import (
	"fmt"
	"time"

	"p2pbound/internal/packet"
)

// GroupShare describes one Table 2 row's calibration targets.
type GroupShare struct {
	// ConnFrac is the group's share of all connections.
	ConnFrac float64
	// ByteFrac is the group's share of all bytes ("utilization").
	ByteFrac float64
}

// Config parameterizes trace generation.
type Config struct {
	// Duration is the simulated trace span. Flows still open at the end
	// are truncated without a FIN, exactly as a capture window would.
	Duration time.Duration
	// ConnsPerSec is the mean connection arrival rate. The paper's trace
	// averages ≈250 connections/second (6,739,733 over 7.5 h).
	ConnsPerSec float64
	// TargetMbps is the mean total throughput. The paper's trace
	// averages 146.7 Mbps.
	TargetMbps float64
	// Clients is the number of hosts in the client network.
	Clients int
	// ClientNet is the monitored prefix clients are drawn from.
	ClientNet packet.Network
	// Seed drives every random choice.
	Seed uint64
	// Groups overrides the Table 2 calibration; nil means the paper's
	// published shares.
	Groups map[string]GroupShare
	// PortReuseProb is the per-TCP-flow probability of spawning a
	// follow-up flow that reuses the identical five tuple a multiple of
	// ~60 s later — the port-reuse artifact visible as the Figure 5
	// peaks.
	PortReuseProb float64
	// SlowResponseProb is the per-flow probability of an abnormally slow
	// first response (0.5–5 s), thickening the out-in delay tail.
	SlowResponseProb float64
	// Burstiness in [0, 1) modulates the flow arrival rate with slow
	// sinusoidal swells, giving the load the visible peaks and troughs
	// of the paper's Figure 9 time series. 0 is a flat arrival rate.
	Burstiness float64
}

// DefaultConfig returns a scaled-down rendering of the paper's trace: the
// published distribution shapes at scale times the published rates.
// scale = 1 reproduces the full 146.7 Mbps / 250 conns-per-second load.
func DefaultConfig(duration time.Duration, scale float64, seed uint64) Config {
	return Config{
		Duration:         duration,
		ConnsPerSec:      250 * scale,
		TargetMbps:       146.7 * scale,
		Clients:          200,
		ClientNet:        packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16),
		Seed:             seed,
		PortReuseProb:    0.004,
		SlowResponseProb: 0.02,
		Burstiness:       0.3,
	}
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("trace: duration must be positive, got %v", c.Duration)
	case c.ConnsPerSec <= 0:
		return fmt.Errorf("trace: conns/sec must be positive, got %g", c.ConnsPerSec)
	case c.TargetMbps <= 0:
		return fmt.Errorf("trace: target Mbps must be positive, got %g", c.TargetMbps)
	case c.Clients <= 0:
		return fmt.Errorf("trace: client count must be positive, got %d", c.Clients)
	case c.PortReuseProb < 0 || c.PortReuseProb > 1:
		return fmt.Errorf("trace: port-reuse probability out of range: %g", c.PortReuseProb)
	case c.SlowResponseProb < 0 || c.SlowResponseProb > 1:
		return fmt.Errorf("trace: slow-response probability out of range: %g", c.SlowResponseProb)
	case c.Burstiness < 0 || c.Burstiness >= 1:
		return fmt.Errorf("trace: burstiness must be in [0,1), got %g", c.Burstiness)
	}
	return nil
}

// paperGroups returns the Table 2 shares: connection and byte fractions
// per protocol group.
func paperGroups() map[string]GroupShare {
	return map[string]GroupShare{
		"HTTP":       {ConnFrac: 0.0217, ByteFrac: 0.05},
		"bittorrent": {ConnFrac: 0.4790, ByteFrac: 0.18},
		"gnutella":   {ConnFrac: 0.0756, ByteFrac: 0.16},
		"edonkey":    {ConnFrac: 0.2200, ByteFrac: 0.21},
		"UNKNOWN":    {ConnFrac: 0.1755, ByteFrac: 0.35},
		"Others":     {ConnFrac: 0.0282, ByteFrac: 0.05},
	}
}
