package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestReaderFailsAtBoundary(t *testing.T) {
	src := strings.NewReader("hello, world")
	r := &Reader{R: src, FailAfter: 5}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("delivered %q before failing", got)
	}
}

func TestReaderShortReads(t *testing.T) {
	r := &Reader{R: strings.NewReader("abcdef"), FailAfter: -1, MaxRead: 2}
	buf := make([]byte, 6)
	n, _ := r.Read(buf)
	if n != 2 {
		t.Fatalf("short read not applied: n=%d", n)
	}
	rest, err := io.ReadAll(r)
	if err != nil || string(buf[:n])+string(rest) != "abcdef" {
		t.Fatalf("stream corrupted: %q + %q, err %v", buf[:n], rest, err)
	}
}

func TestWriterFailsAtBoundary(t *testing.T) {
	var dst bytes.Buffer
	w := &Writer{W: &dst, FailAfter: 7}
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	if n != 7 || dst.String() != "0123456" {
		t.Fatalf("partial write wrong: n=%d, wrote %q", n, dst.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("writer recovered after failure: %v", err)
	}
}

func TestWriterShortWrites(t *testing.T) {
	var dst bytes.Buffer
	w := &Writer{W: &dst, FailAfter: -1, MaxWrite: 3}
	n, err := w.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("expected short write of 3, got n=%d err=%v", n, err)
	}
}

func TestTruncateAndFlipBit(t *testing.T) {
	b := []byte{0xff, 0x00}
	tr := Truncate(b, 1)
	if len(tr) != 1 || &tr[0] == &b[0] {
		t.Fatal("Truncate must copy")
	}
	fl := FlipBit(b, 9)
	if fl[1] != 0x02 || b[1] != 0x00 {
		t.Fatalf("FlipBit wrong or mutated input: %v, %v", fl, b)
	}
}

func TestReorderBounded(t *testing.T) {
	const n, window = 500, 8
	pkts := make([]int, n)
	for i := range pkts {
		pkts[i] = i
	}
	Reorder(pkts, window, 42)
	seen := make([]bool, n)
	moved := 0
	for i, v := range pkts {
		if seen[v] {
			t.Fatalf("element %d duplicated", v)
		}
		seen[v] = true
		d := i - v
		if d < 0 {
			d = -d
		}
		if d >= window {
			t.Fatalf("element %d displaced %d >= %d", v, d, window)
		}
		if d != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("reorder was a no-op")
	}
}

func TestDuplicate(t *testing.T) {
	pkts := make([]int, 1000)
	for i := range pkts {
		pkts[i] = i
	}
	out := Duplicate(pkts, 0.2, 7)
	if len(out) <= len(pkts) || len(out) > len(pkts)*2 {
		t.Fatalf("unexpected duplication: %d -> %d", len(pkts), len(out))
	}
	last := -1
	for _, v := range out {
		if v < last {
			t.Fatalf("duplication reordered: %d after %d", v, last)
		}
		last = v
	}
}

type stamped struct{ ts time.Duration }

func TestClockRegress(t *testing.T) {
	pkts := make([]stamped, 1000)
	for i := range pkts {
		pkts[i].ts = time.Duration(i) * time.Millisecond
	}
	ClockRegress(pkts, func(p *stamped) *time.Duration { return &p.ts }, 0.3, 50*time.Millisecond, 13)
	regressed := 0
	for i := range pkts {
		want := time.Duration(i) * time.Millisecond
		if pkts[i].ts > want {
			t.Fatalf("timestamp %d moved forward", i)
		}
		if pkts[i].ts < 0 {
			t.Fatalf("timestamp %d negative", i)
		}
		if pkts[i].ts != want {
			regressed++
		}
	}
	if regressed == 0 {
		t.Fatal("no timestamps regressed")
	}
}
