// Package faultinject provides the fault-injection primitives behind the
// repo's chaos tests: io.Reader/io.Writer wrappers that fail or
// short-transfer at controlled points, and deterministic trace mutators
// (bounded reorder, duplication, clock regression) that reproduce the
// pathologies of real capture pipelines — NTP steps, multi-queue NICs,
// SIGKILLed writers, torn state files.
//
// Everything is deterministic: wrappers fail at exact byte offsets and
// mutators draw from a seeded PCG, so a chaos test that fails once fails
// every time.
package faultinject

import (
	"errors"
	"io"
	"math/rand/v2"
	"time"
)

// ErrInjected is the default error injected by Reader and Writer when no
// explicit Err is configured.
var ErrInjected = errors.New("faultinject: injected fault")

// Reader wraps R, failing with Err once FailAfter bytes have been
// delivered. A read crossing the boundary delivers the bytes up to it
// first and fails on the next call, the way a truncated file or a dying
// socket behaves. MaxRead, when positive, caps the bytes per Read call
// to exercise short-read handling in callers that wrongly assume full
// buffers.
type Reader struct {
	R io.Reader
	// FailAfter is the number of bytes delivered before reads fail.
	// Negative means never fail (short reads only).
	FailAfter int64
	// Err is the error returned at the failure point; nil selects
	// ErrInjected.
	Err error
	// MaxRead caps the size of any single read when positive.
	MaxRead int

	delivered int64
}

// Read implements io.Reader with the configured faults.
func (r *Reader) Read(p []byte) (int, error) {
	if r.FailAfter >= 0 && r.delivered >= r.FailAfter {
		return 0, r.err()
	}
	if r.MaxRead > 0 && len(p) > r.MaxRead {
		p = p[:r.MaxRead]
	}
	if r.FailAfter >= 0 {
		if remain := r.FailAfter - r.delivered; int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	n, err := r.R.Read(p)
	r.delivered += int64(n)
	return n, err
}

func (r *Reader) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Writer wraps W, failing with Err once FailAfter bytes have been
// accepted. A write crossing the boundary performs the partial write and
// reports the fault with a short count, the way ENOSPC and torn writes
// surface. MaxWrite, when positive, caps the bytes per Write call.
type Writer struct {
	W io.Writer
	// FailAfter is the number of bytes accepted before writes fail.
	// Negative means never fail (short writes only).
	FailAfter int64
	// Err is the error returned at the failure point; nil selects
	// ErrInjected.
	Err error
	// MaxWrite caps the size of any single write when positive.
	MaxWrite int

	accepted int64
}

// Write implements io.Writer with the configured faults.
func (w *Writer) Write(p []byte) (int, error) {
	if w.FailAfter >= 0 && w.accepted >= w.FailAfter {
		return 0, w.err()
	}
	short := false
	if w.MaxWrite > 0 && len(p) > w.MaxWrite {
		p = p[:w.MaxWrite]
		short = true
	}
	truncated := false
	if w.FailAfter >= 0 {
		if remain := w.FailAfter - w.accepted; int64(len(p)) > remain {
			p = p[:remain]
			truncated = true
		}
	}
	n, err := w.W.Write(p)
	w.accepted += int64(n)
	if err != nil {
		return n, err
	}
	if truncated {
		return n, w.err()
	}
	if short {
		// A short write without an error violates io.Writer; report the
		// injected fault so callers observe the partial transfer.
		return n, io.ErrShortWrite
	}
	return n, nil
}

func (w *Writer) err() error {
	if w.Err != nil {
		return w.Err
	}
	return ErrInjected
}

// Truncate returns the first n bytes of b (all of b when n exceeds its
// length) as a fresh slice — a crashed writer's torn file.
func Truncate(b []byte, n int) []byte {
	if n > len(b) {
		n = len(b)
	}
	return append([]byte(nil), b[:n]...)
}

// FlipBit returns a copy of b with one bit inverted — bit rot, a bad
// sector, a cosmic ray. bit indexes the stream bitwise, little-endian
// within each byte.
func FlipBit(b []byte, bit int) []byte {
	out := append([]byte(nil), b...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Reorder performs an in-place bounded shuffle: the slice is cut into
// consecutive blocks of window elements and each block is shuffled
// independently, so every element ends up strictly less than window
// positions from where it started — the signature of multi-queue capture
// hardware merging per-queue streams. window ≤ 1 leaves pkts untouched.
func Reorder[T any](pkts []T, window int, seed uint64) {
	if window <= 1 || len(pkts) < 2 {
		return
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	for lo := 0; lo < len(pkts); lo += window {
		hi := lo + window
		if hi > len(pkts) {
			hi = len(pkts)
		}
		block := pkts[lo:hi]
		for i := len(block) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			block[i], block[j] = block[j], block[i]
		}
	}
}

// Duplicate returns pkts with approximately frac of its elements
// repeated immediately after themselves — retransmitted frames, a
// capture tap seeing both directions of a mirror port.
func Duplicate[T any](pkts []T, frac float64, seed uint64) []T {
	rng := rand.New(rand.NewPCG(seed, seed^0xbf58476d1ce4e5b9))
	out := make([]T, 0, len(pkts)+int(frac*float64(len(pkts)))+1)
	for _, p := range pkts {
		out = append(out, p)
		if rng.Float64() < frac {
			out = append(out, p)
		}
	}
	return out
}

// ClockRegress rewinds approximately frac of the timestamps by up to
// maxStep — an NTP step or a capture clock read racing a settimeofday.
// ts must return a pointer to the element's timestamp field; the
// mutation is in place.
func ClockRegress[T any](pkts []T, ts func(*T) *time.Duration, frac float64, maxStep time.Duration, seed uint64) {
	if maxStep <= 0 {
		return
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x94d049bb133111eb))
	for i := range pkts {
		if rng.Float64() >= frac {
			continue
		}
		p := ts(&pkts[i])
		step := time.Duration(rng.Int64N(int64(maxStep))) + 1
		*p -= step
		if *p < 0 {
			*p = 0
		}
	}
}
