package faultinject

import "testing"

func TestPartitionScheduleDeterministic(t *testing.T) {
	cfg := PartitionConfig{Nodes: 5, Rounds: 40, Episodes: 3, AsymmetricProb: 0.5}
	a := NewPartitionSchedule(cfg, 42)
	b := NewPartitionSchedule(cfg, 42)
	c := NewPartitionSchedule(cfg, 43)
	same, diff := true, false
	for r := 0; r < 40; r++ {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if a.Blocked(r, i, j) != b.Blocked(r, i, j) {
					same = false
				}
				if a.Blocked(r, i, j) != c.Blocked(r, i, j) {
					diff = true
				}
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestPartitionScheduleShape(t *testing.T) {
	s := NewPartitionSchedule(PartitionConfig{Nodes: 4, Rounds: 30, Episodes: 4}, 7)
	cuts := 0
	for r := 0; r < 30; r++ {
		for i := 0; i < 4; i++ {
			if s.Blocked(r, i, i) {
				t.Fatal("self-link cut")
			}
			for j := 0; j < 4; j++ {
				if s.Blocked(r, i, j) {
					cuts++
					if r >= s.HealedAfter() {
						t.Fatalf("cut at round %d, HealedAfter=%d", r, s.HealedAfter())
					}
				}
			}
		}
	}
	if cuts == 0 {
		t.Fatal("schedule with 4 episodes cut nothing")
	}
	// Out-of-schedule queries are healed, out-of-range nodes unblocked.
	if s.Blocked(30, 0, 1) || s.Blocked(-1, 0, 1) || s.Blocked(0, 9, 1) || s.Blocked(0, 0, -1) {
		t.Fatal("out-of-range query reported a cut")
	}
}

// TestPartitionScheduleAsymmetric: with AsymmetricProb 1 every episode
// cuts one direction only, so some blocked (from,to) has an open
// reverse link.
func TestPartitionScheduleAsymmetric(t *testing.T) {
	s := NewPartitionSchedule(PartitionConfig{Nodes: 4, Rounds: 30, Episodes: 4, AsymmetricProb: 1}, 11)
	oneWay := false
	for r := 0; r < 30 && !oneWay; r++ {
		for i := 0; i < 4 && !oneWay; i++ {
			for j := 0; j < 4; j++ {
				if s.Blocked(r, i, j) && !s.Blocked(r, j, i) {
					oneWay = true
					break
				}
			}
		}
	}
	if !oneWay {
		t.Fatal("fully asymmetric schedule produced no one-way cut")
	}
	sym := NewPartitionSchedule(PartitionConfig{Nodes: 4, Rounds: 30, Episodes: 4, AsymmetricProb: 0}, 11)
	for r := 0; r < 30; r++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if sym.Blocked(r, i, j) != sym.Blocked(r, j, i) {
					t.Fatal("symmetric schedule produced a one-way cut")
				}
			}
		}
	}
}
